package repro_test

import (
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/core"
)

// Topology-seam benchmarks: cost of one engine Step now that every layer
// reaches geometry through the topology.Network interface. The engine
// precomputes a per-(node, port) link table at construction, so the
// per-flit hot path is a slice load either way; Config.NoLinkCache is the
// ablation that dispatches through the interface per flit — an upper bound
// on what the seam would cost without the table (the seed's concrete
// *Torus calls sit between the two). Results are bit-identical across all
// of these knobs (TestLinkCacheMatchesDispatch); only Step cost differs.

func stepBenchTopo(b *testing.B, topo string, noCache, noArena bool) {
	b.Helper()
	c := core.DefaultConfig(24, 2, 0.0002)
	c.Topology = topo
	c.V = 4
	c.NoLinkCache = noCache
	c.NoArena = noArena
	stepEngine(b, c, 2000)
}

func BenchmarkStepTorusLinkCache(b *testing.B)   { stepBenchTopo(b, "torus:k=24,n=2", false, false) }
func BenchmarkStepTorusNoLinkCache(b *testing.B) { stepBenchTopo(b, "torus:k=24,n=2", true, false) }
func BenchmarkStepMesh(b *testing.B)             { stepBenchTopo(b, "mesh:k=24,n=2", false, false) }

// BenchmarkStepTorusNoArena is the allocation ablation's A side: the same
// 24-ary 2-cube point with every message on the garbage-collected heap, as
// the engine originally ran. Compare its B/op and allocs/op columns against
// BenchmarkStepTorusLinkCache (arena on) for the win the arena buys.
func BenchmarkStepTorusNoArena(b *testing.B) { stepBenchTopo(b, "torus:k=24,n=2", false, true) }

// BenchmarkStepLargeTorus is the scale point: a 32-ary 3-cube (32,768
// routers) under moderate load — the paper's topology family pushed to a
// size where per-cycle engine overheads and allocation pressure would
// dominate without the active-set scheduler and the arena. FIGURES.md
// records the measured wall-clock recipe.
func BenchmarkStepLargeTorus(b *testing.B) {
	c := core.DefaultConfig(32, 3, 0.0005)
	c.Topology = "torus:k=32,n=3"
	c.V = 4
	stepEngine(b, c, 2000)
}

// BenchmarkStepLargeTorusParallel steps the same 32,768-router scale point
// under the phase-barriered worker pool at 1, 2, 4 and 8 domains. Results
// are bit-identical at every width (TestParallelMatchesSerial); only
// wall-clock differs, so the sub-benchmark ratios are the engine's
// multi-core scaling curve. Meaningful speedups need as many idle cores
// as workers — on fewer cores the extra widths measure barrier+mailbox
// overhead, which is itself worth tracking.
func BenchmarkStepLargeTorusParallel(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			c := core.DefaultConfig(32, 3, 0.0005)
			c.Topology = "torus:k=32,n=3"
			c.V = 4
			c.Workers = w
			stepEngine(b, c, 2000)
		})
	}
}

// TestLinkCacheOverheadGuard is the A/B regression gate on the torus hot
// path: a loaded run with the link table must not cost materially more
// than the same run dispatching through the topology interface per flit.
// The interface-dispatch run is strictly more work than the seed's
// concrete method calls were, so staying within a few percent of it
// bounds the seam's cost against the seed too; in practice the cached
// path wins outright (measured ~1% faster). Wall times are min-of-3 to
// shrug off scheduler noise; because shared CI runners still jitter at
// the several-percent level, the hard gate defaults to 20% slack and
// REPRO_TIMING_STRICT=1 tightens it to the 5% claim for quiet local
// boxes (the A/B numbers print either way).
func TestLinkCacheOverheadGuard(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("timing guard")
	}
	slack := 1.20
	if os.Getenv("REPRO_TIMING_STRICT") == "1" {
		slack = 1.05
	}
	run := func(noCache bool) time.Duration {
		best := time.Duration(1<<62 - 1)
		for i := 0; i < 3; i++ {
			c := core.DefaultConfig(16, 2, 0.008)
			c.NoLinkCache = noCache
			c.MeasureMessages = 1 << 30
			c.MaxCycles = 10_000
			c.SaturationBacklog = 1 << 30
			start := time.Now()
			if _, err := core.Run(c); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	cached := run(false)
	dispatch := run(true)
	t.Logf("10k cycles, 16-ary 2-cube at λ=0.008: link cache %v, interface dispatch %v (ratio %.3f)",
		cached, dispatch, float64(cached)/float64(dispatch))
	if float64(cached) > slack*float64(dispatch) {
		t.Errorf("link-cache Step path %v exceeds %.0f%% of the interface-dispatch path %v",
			cached, slack*100, dispatch)
	}
}
