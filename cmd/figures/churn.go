package main

import (
	"fmt"

	"repro/internal/core"
)

// figChurn measures routing under dynamic faults: the same 8-ary 2-cube
// swept across λ while an MTBF/MTTR renewal process fails and heals
// components mid-run (repair time fixed at a tenth of the failure
// interval). The latency table shows the cost of churn; the chaos rows
// below it report how the network absorbed it — transitions applied,
// worms re-injected or lost, mean rerouting convergence time and the
// worst availability window.
func (h *harness) figChurn() {
	type level struct {
		name string
		spec string
	}
	levels := []level{
		{"static", ""},
		{"mtbf 50k", "mtbf:mtbf=50000,mttr=5000"},
		{"mtbf 20k", "mtbf:mtbf=20000,mttr=2000"},
		{"mtbf 10k", "mtbf:mtbf=10000,mttr=1000"},
		{"mtbf 5k", "mtbf:mtbf=5000,mttr=500"},
	}
	grid := h.lambdaGrid(4)
	label := func(lv level, l float64) string { return fmt.Sprintf("churn|%s|l%g", lv.name, l) }
	var points []core.Point
	for _, lv := range levels {
		for _, l := range grid {
			cfg := h.base(8, 2, l)
			cfg.Algorithm = "adaptive"
			cfg.FaultSchedule = lv.spec
			points = append(points, core.Point{Label: label(lv, l), Config: cfg})
		}
	}
	res := h.run("Churn", points)
	cols := make([]string, len(levels))
	for i, lv := range levels {
		cols[i] = lv.name
	}
	rows := make([]string, len(grid))
	for i, l := range grid {
		rows[i] = fmt.Sprintf("%g", l)
	}
	printTable("Churn: mean latency vs fault churn (adaptive, 8-ary 2-cube, V=4; * = saturated)",
		cols, rows, func(ri, ci int) string { return latencyCell(res[label(levels[ci], grid[ri])]) })

	mid := grid[len(grid)/2]
	fmt.Printf("\nchaos metrics at λ=%g:\n", mid)
	fmt.Println("level,transitions,reinjected,lost,mean_convergence,min_availability")
	for _, lv := range levels[1:] {
		r := res[label(lv, mid)]
		if r.Err != nil {
			fmt.Printf("%s,err\n", lv.name)
			continue
		}
		m := r.Results
		fmt.Printf("%s,%d,%d,%d,%.1f,%.4f\n",
			lv.name, m.Transitions, m.Reinjected, m.Lost, m.MeanConvergence, m.MinAvailability)
	}
}
