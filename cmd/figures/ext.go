package main

import (
	"fmt"

	"repro/internal/core"
)

// figExt runs the extended experiments the paper alludes to but does not
// plot ("numerous experiments have been performed for different sizes of
// the network and message length", §5.2): larger radix, higher
// dimensionality, and non-uniform traffic patterns under faults.
func (h *harness) figExt() {
	fmt.Println("\n===== Extended experiments (sizes and patterns beyond the plotted figures) =====")
	h.extSizes()
	h.extPatterns()
}

func (h *harness) extSizes() {
	type netCase struct {
		k, n, nf int
		v        int
	}
	cases := []netCase{
		{16, 2, 0, 6}, {16, 2, 8, 6}, // larger radix
		{4, 4, 0, 6}, {4, 4, 12, 6}, // higher dimensionality
	}
	grid := []float64{0.002, 0.004, 0.006, 0.008}
	var points []core.Point
	label := func(c netCase, adaptive bool, l float64) string {
		return fmt.Sprintf("%dx%d|nf%d|a%v|l%g", c.k, c.n, c.nf, adaptive, l)
	}
	for _, c := range cases {
		for _, adaptive := range []bool{false, true} {
			for _, l := range grid {
				cfg := h.base(c.k, c.n, l)
				cfg.V = c.v
				cfg.Adaptive = adaptive
				cfg.Faults.RandomNodes = c.nf
				cfg.Seed = 1001
				points = append(points, core.Point{Label: label(c, adaptive, l), Config: cfg})
			}
		}
	}
	res := h.run(points)
	var cols []string
	type curve struct {
		c        netCase
		adaptive bool
	}
	var curves []curve
	for _, c := range cases {
		for _, adaptive := range []bool{false, true} {
			mode := "det"
			if adaptive {
				mode = "adp"
			}
			cols = append(cols, fmt.Sprintf("%d-ary %d, nf%d %s", c.k, c.n, c.nf, mode))
			curves = append(curves, curve{c, adaptive})
		}
	}
	rows := make([]string, len(grid))
	for i, l := range grid {
		rows[i] = fmt.Sprintf("%g", l)
	}
	printTable("Ext A: latency across network sizes (mean cycles; * = saturated)", cols, rows,
		func(ri, ci int) string {
			cu := curves[ci]
			return latencyCell(res[label(cu.c, cu.adaptive, grid[ri])])
		})
}

func (h *harness) extPatterns() {
	patterns := []string{"uniform", "transpose", "hotspot"}
	grid := []float64{0.002, 0.004, 0.006}
	var points []core.Point
	label := func(p string, adaptive bool, l float64) string {
		return fmt.Sprintf("%s|a%v|l%g", p, adaptive, l)
	}
	for _, p := range patterns {
		for _, adaptive := range []bool{false, true} {
			for _, l := range grid {
				cfg := h.base(8, 2, l)
				cfg.V = 6
				cfg.Adaptive = adaptive
				cfg.Pattern = p
				cfg.Faults.RandomNodes = 4
				cfg.Seed = 1002
				points = append(points, core.Point{Label: label(p, adaptive, l), Config: cfg})
			}
		}
	}
	res := h.run(points)
	var cols []string
	type curve struct {
		p        string
		adaptive bool
	}
	var curves []curve
	for _, p := range patterns {
		for _, adaptive := range []bool{false, true} {
			mode := "det"
			if adaptive {
				mode = "adp"
			}
			cols = append(cols, fmt.Sprintf("%s %s", p, mode))
			curves = append(curves, curve{p, adaptive})
		}
	}
	rows := make([]string, len(grid))
	for i, l := range grid {
		rows[i] = fmt.Sprintf("%g", l)
	}
	printTable("Ext B: traffic patterns under 4 random faults, 8-ary 2-cube, V=6 (mean cycles)", cols, rows,
		func(ri, ci int) string {
			cu := curves[ci]
			return latencyCell(res[label(cu.p, cu.adaptive, grid[ri])])
		})
}
