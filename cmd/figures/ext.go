package main

import (
	"fmt"

	"repro/internal/core"
)

// figExt runs the extended experiments the paper alludes to but does not
// plot ("numerous experiments have been performed for different sizes of
// the network and message length", §5.2): larger radix, higher
// dimensionality, and non-uniform traffic patterns under faults — the
// latter across every interesting registry algorithm, which is where the
// Valiant two-phase baseline earns its keep.
func (h *harness) figExt() {
	fmt.Println("\n===== Extended experiments (sizes and patterns beyond the plotted figures) =====")
	h.extSizes()
	h.extPatterns()
	h.extSources()
}

func (h *harness) extSizes() {
	type netCase struct {
		k, n, nf int
		v        int
	}
	cases := []netCase{
		{16, 2, 0, 6}, {16, 2, 8, 6}, // larger radix
		{4, 4, 0, 6}, {4, 4, 12, 6}, // higher dimensionality
	}
	grid := []float64{0.002, 0.004, 0.006, 0.008}
	algs := []string{"det", "adaptive"}
	var points []core.Point
	label := func(c netCase, alg string, l float64) string {
		return fmt.Sprintf("%dx%d|nf%d|%s|l%g", c.k, c.n, c.nf, alg, l)
	}
	for _, c := range cases {
		for _, alg := range algs {
			for _, l := range grid {
				cfg := h.base(c.k, c.n, l)
				cfg.V = c.v
				cfg.Algorithm = alg
				cfg.Faults.RandomNodes = c.nf
				cfg.Seed = 1001
				points = append(points, core.Point{Label: label(c, alg, l), Config: cfg})
			}
		}
	}
	res := h.run("Ext A sizes", points)
	var cols []string
	type curve struct {
		c   netCase
		alg string
	}
	var curves []curve
	for _, c := range cases {
		for _, alg := range algs {
			cols = append(cols, fmt.Sprintf("%d-ary %d, nf%d %s", c.k, c.n, c.nf, shortAlg(alg)))
			curves = append(curves, curve{c, alg})
		}
	}
	rows := make([]string, len(grid))
	for i, l := range grid {
		rows[i] = fmt.Sprintf("%g", l)
	}
	printTable("Ext A: latency across network sizes (mean cycles; * = saturated)", cols, rows,
		func(ri, ci int) string {
			cu := curves[ci]
			return latencyCell(res[label(cu.c, cu.alg, grid[ri])])
		})
}

// extPatterns compares every latency-relevant registry algorithm across
// traffic patterns under faults. Uniform traffic favours minimal routing;
// transpose and hotspot are where Valiant's two-phase load balancing is
// designed to pay off.
func (h *harness) extPatterns() {
	patterns := []string{"uniform", "transpose", "hotspot:frac=0.1"}
	algs := []string{"det", "adaptive", "valiant", "valiant-adaptive"}
	grid := []float64{0.002, 0.004, 0.006}
	var points []core.Point
	label := func(p, alg string, l float64) string {
		return fmt.Sprintf("%s|%s|l%g", p, alg, l)
	}
	for _, p := range patterns {
		for _, alg := range algs {
			for _, l := range grid {
				cfg := h.base(8, 2, l)
				cfg.V = 6
				cfg.Algorithm = alg
				cfg.Pattern = p
				cfg.Faults.RandomNodes = 4
				cfg.Seed = 1002
				points = append(points, core.Point{Label: label(p, alg, l), Config: cfg})
			}
		}
	}
	res := h.run("Ext B patterns", points)
	var cols []string
	type curve struct {
		p, alg string
	}
	var curves []curve
	for _, p := range patterns {
		for _, alg := range algs {
			cols = append(cols, fmt.Sprintf("%s %s", p, shortAlg(alg)))
			curves = append(curves, curve{p, alg})
		}
	}
	rows := make([]string, len(grid))
	for i, l := range grid {
		rows[i] = fmt.Sprintf("%g", l)
	}
	printTable("Ext B: traffic patterns under 4 random faults, 8-ary 2-cube, V=6 (mean cycles)", cols, rows,
		func(ri, ci int) string {
			cu := curves[ci]
			return latencyCell(res[label(cu.p, cu.alg, grid[ri])])
		})
}

// extSources compares arrival processes at equal offered load: smooth
// deterministic intervals, the paper's Poisson baseline, and MMPP on/off
// bursts whose ON rate is scaled so the long-run rate still equals λ. The
// spread between the three columns at a fixed λ is pure burstiness cost.
func (h *harness) extSources() {
	sources := []string{"interval", "poisson", "burst:on=50,off=200"}
	algs := []string{"det", "adaptive"}
	grid := []float64{0.002, 0.004, 0.006}
	var points []core.Point
	label := func(s, alg string, l float64) string {
		return fmt.Sprintf("%s|%s|l%g", s, alg, l)
	}
	for _, s := range sources {
		for _, alg := range algs {
			for _, l := range grid {
				cfg := h.base(8, 2, l)
				cfg.V = 6
				cfg.Algorithm = alg
				cfg.Traffic = s
				cfg.Faults.RandomNodes = 4
				cfg.Seed = 1003
				points = append(points, core.Point{Label: label(s, alg, l), Config: cfg})
			}
		}
	}
	res := h.run("Ext C sources", points)
	var cols []string
	type curve struct {
		s, alg string
	}
	var curves []curve
	for _, s := range sources {
		for _, alg := range algs {
			cols = append(cols, fmt.Sprintf("%s %s", s, shortAlg(alg)))
			curves = append(curves, curve{s, alg})
		}
	}
	rows := make([]string, len(grid))
	for i, l := range grid {
		rows[i] = fmt.Sprintf("%g", l)
	}
	printTable("Ext C: arrival processes at equal offered load, 4 random faults, 8-ary 2-cube, V=6 (mean cycles)", cols, rows,
		func(ri, ci int) string {
			cu := curves[ci]
			return latencyCell(res[label(cu.s, cu.alg, grid[ri])])
		})
}
