package main

import (
	"fmt"
	"os"

	"repro/internal/sweep"
)

// figSat is the capacity table the paper implies but never tabulates:
// the saturation rate λ* of the 8-ary 2-cube for each routing algorithm
// and VC count, found by the sweep subsystem's bisection auto-search
// instead of reading it off a fixed λ grid. λ* is the λ where mean
// latency first crosses 3× the zero-load latency (or the engine's
// saturation guard trips) — the load where the paper's latency curves
// go vertical, and the basis for capacity experiments like Fig. 6,
// whose offered load must sit past λ*.
func (h *harness) figSat() {
	fmt.Println("\n===== Saturation points: λ* by algorithm and V, 8-ary 2-cube, M=32 (auto-search) =====")
	fmt.Printf("\n%-10s%-6s%14s%14s%14s%10s\n", "alg", "V", "sat λ*", "zero-load", "threshold", "probes")
	combo := 0
	for _, algName := range []string{"det", "adaptive"} {
		for _, v := range []int{4, 6, 10} {
			// A search's probes are sequential (each depends on the last),
			// so -shard splits whole (alg, V) searches, not probes. With a
			// checkpoint, a merged render replays every search from the
			// journal and fills the skipped rows in.
			mine := h.shard.Owns(combo)
			combo++
			if !mine {
				fmt.Printf("%-10s%-6d%14s%14s%14s%10s\n", algName, v, skippedCell, skippedCell, skippedCell, skippedCell)
				continue
			}
			base := h.base(8, 2, 0.001) // λ is owned by the search
			base.V = v
			base.MsgLen = 32
			base.Algorithm = algName
			base.Seed = 1001
			sat, err := sweep.FindSaturation(
				fmt.Sprintf("sat|%s|v%d", algName, v), base,
				sweep.SaturationOptions{Tol: 0.05, Run: h.sweepOptions()})
			if err != nil {
				fmt.Fprintf(os.Stderr, "figures: saturation %s V=%d: %v\n", algName, v, err)
				fmt.Printf("%-10s%-6d%14s%14s%14s%10s\n", algName, v, "err", "", "", "")
				continue
			}
			lstar := fmt.Sprintf("%.5f", sat.Lambda)
			if !sat.Converged {
				lstar += "~" // probe budget exhausted: bracket wider than Tol
			}
			fmt.Printf("%-10s%-6d%14s%14.1f%14.1f%10d\n",
				algName, v, lstar, sat.ZeroLoad, sat.Threshold, len(sat.Probes))
		}
	}
	fmt.Println("\n(λ* = load where mean latency crosses 3x zero-load latency; bisection to 5% brackets,")
	fmt.Println(" ~ marks a search that ran out of probes before reaching that width.")
	if h.shard.Count > 1 {
		fmt.Println(" - rows belong to other shards; after merging journals, re-run -fig sat without")
		fmt.Println(" -shard to replay every search from the checkpoint and fill them in.")
	}
	fmt.Println(" Fig. 6's offered load λ=0.012 sits above the V=6 16-ary saturation point by design.)")
}
