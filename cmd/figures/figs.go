package main

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/routing"
	"repro/internal/sweep"
	"repro/internal/topology"
	"repro/internal/viz"
)

// fig1 reproduces Fig. 1: examples of coalesced fault regions in a 2-D
// torus, rendered as ASCII planes with convex/concave classification.
func (h *harness) fig1() {
	fmt.Println("\n===== Fig. 1: coalesced fault regions in a 2-D torus =====")
	t := topology.New(16, 2)
	examples := []struct {
		name string
		spec fault.ShapeSpec
	}{
		{"|-shaped (convex)", fault.ShapeSpec{Shape: fault.ShapeBar, A: 4, AnchorA: 2, AnchorB: 2}},
		{"||-shaped (convex x2)", fault.ShapeSpec{Shape: fault.ShapeDoubleBar, A: 4, AnchorA: 2, AnchorB: 2}},
		{"square-shaped (convex)", fault.ShapeSpec{Shape: fault.ShapeRect, A: 3, B: 3, AnchorA: 2, AnchorB: 2}},
		{"L-shaped (concave)", fault.ShapeSpec{Shape: fault.ShapeL, A: 4, B: 4, AnchorA: 2, AnchorB: 2}},
		{"U-shaped (concave)", fault.ShapeSpec{Shape: fault.ShapeU, A: 4, B: 5, AnchorA: 2, AnchorB: 2}},
		{"+-shaped (concave)", fault.ShapeSpec{Shape: fault.ShapePlus, A: 5, B: 5, AnchorA: 2, AnchorB: 2}},
		{"T-shaped (concave)", fault.ShapeSpec{Shape: fault.ShapeT, A: 5, B: 3, AnchorA: 2, AnchorB: 2}},
		{"H-shaped (concave)", fault.ShapeSpec{Shape: fault.ShapeH, A: 5, B: 5, AnchorA: 2, AnchorB: 2}},
	}
	for _, ex := range examples {
		fs := fault.NewSet(t)
		if _, err := fault.StampShape(fs, 0, 0, 1, ex.spec); err != nil {
			fmt.Printf("%s: %v\n", ex.name, err)
			continue
		}
		fmt.Printf("\n-- %s --\n%s%s", ex.name, viz.RenderPlane(fs, 0, 0, 1), viz.RenderRegions(fs))
	}
}

// latencyFigure renders one latency-vs-traffic figure: a panel per
// (routing algorithm, V), curves per (M, nf). Faulted curves average over
// h.seeds random placements ("to make the results independent of relative
// positions of failures", §5.2); a point prints as saturated when at least
// half its placements saturate.
func (h *harness) latencyFigure(figName string, k, n int, vs []int, ms []int, nfs []int) {
	for _, algName := range []string{"det", "adaptive"} {
		info, _ := routing.Lookup(algName)
		for _, v := range vs {
			if v < info.MinV {
				continue
			}
			grid := h.lambdaGrid(v)
			var points []core.Point
			label := func(m, nf int, l float64, s int) string {
				return fmt.Sprintf("%s|v%d|m%d|nf%d|l%g|s%d", algName, v, m, nf, l, s)
			}
			seedsFor := func(nf int) int {
				if nf == 0 {
					return 1 // fault-free: placement is irrelevant
				}
				return h.seeds
			}
			for _, m := range ms {
				for _, nf := range nfs {
					for _, l := range grid {
						for s := 0; s < seedsFor(nf); s++ {
							c := h.base(k, n, l)
							c.V = v
							c.MsgLen = m
							c.Algorithm = algName
							c.Faults.RandomNodes = nf
							c.Seed = uint64(1000 + s)
							points = append(points, core.Point{Label: label(m, nf, l, s), Config: c})
						}
					}
				}
			}
			res := h.run(fmt.Sprintf("%s %s v%d", figName, algName, v), points)
			var cols []string
			type curve struct{ m, nf int }
			var curves []curve
			for _, m := range ms {
				for _, nf := range nfs {
					cols = append(cols, fmt.Sprintf("M=%d,nf=%d", m, nf))
					curves = append(curves, curve{m, nf})
				}
			}
			rows := make([]string, len(grid))
			for i, l := range grid {
				rows[i] = fmt.Sprintf("%g", l)
			}
			// vals[ci][ri]: mean latency (NaN = missing); satMask flags
			// points where at least half the placements saturated;
			// skipMask flags cells whose points all belong to other
			// shards; partialMask flags cells averaged over only the
			// placements this shard owns (a shard splits each cell's
			// seeds, so a plain number would be indistinguishable from
			// the complete post-merge average).
			vals := make([][]float64, len(curves))
			satMask := make([][]bool, len(curves))
			skipMask := make([][]bool, len(curves))
			partialMask := make([][]bool, len(curves))
			for ci, cu := range curves {
				vals[ci] = make([]float64, len(grid))
				satMask[ci] = make([]bool, len(grid))
				skipMask[ci] = make([]bool, len(grid))
				partialMask[ci] = make([]bool, len(grid))
				for ri := range grid {
					sum, cnt, sat, skipped, failed := 0.0, 0, 0, 0, 0
					for s := 0; s < seedsFor(cu.nf); s++ {
						r, ok := res[label(cu.m, cu.nf, grid[ri], s)]
						if !ok || r.Err != nil {
							if ok && errors.Is(r.Err, sweep.ErrSkipped) {
								skipped++
							} else {
								failed++
							}
							continue
						}
						if r.Results.Saturated {
							sat++
						}
						sum += r.Results.MeanLatency
						cnt++
					}
					if cnt == 0 {
						vals[ci][ri] = math.NaN()
						// "-" promises the merge will fill the cell in; a
						// real failure among the owned points must stay "err".
						skipMask[ci][ri] = skipped > 0 && failed == 0
						continue
					}
					vals[ci][ri] = sum / float64(cnt)
					satMask[ci][ri] = 2*sat >= cnt
					partialMask[ci][ri] = skipped > 0
				}
			}
			printTable(
				fmt.Sprintf("%s: %s routing, %d-ary %d-cube, V=%d (mean latency, cycles; * = saturated)", figName, algName, k, n, v),
				cols, rows,
				func(ri, ci int) string {
					v := vals[ci][ri]
					var cell string
					switch {
					case skipMask[ci][ri]:
						return skippedCell
					case math.IsNaN(v):
						return "err"
					case satMask[ci][ri]:
						cell = fmt.Sprintf("%.0f*", v)
					default:
						cell = fmt.Sprintf("%.1f", v)
					}
					if partialMask[ci][ri] {
						cell += partialMark
					}
					return cell
				})
			if h.plot {
				ch := viz.NewChart(grid, 6, 14)
				for ci, cu := range curves {
					ys := make([]float64, len(grid))
					for ri := range grid {
						if satMask[ci][ri] {
							ys[ri] = math.Inf(1)
						} else {
							ys[ri] = vals[ci][ri]
						}
					}
					ch.Add(fmt.Sprintf("M%d/nf%d", cu.m, cu.nf), ys)
				}
				fmt.Println()
				fmt.Print(ch.Render())
			}
		}
	}
}

// fig3: mean message latency vs traffic rate in an 8-ary 2-cube;
// deterministic and adaptive; M in {32,64}; V in {4,6,10}; nf in {0,3,5}.
func (h *harness) fig3() {
	fmt.Println("\n===== Fig. 3: latency vs traffic, 8-ary 2-cube, random faults =====")
	h.latencyFigure("Fig 3", 8, 2, []int{4, 6, 10}, []int{32, 64}, []int{0, 3, 5})
}

// fig4: same in an 8-ary 3-cube with nf in {0,12}.
func (h *harness) fig4() {
	fmt.Println("\n===== Fig. 4: latency vs traffic, 8-ary 3-cube, random faults =====")
	h.latencyFigure("Fig 4", 8, 3, []int{4, 6, 10}, []int{32, 64}, []int{0, 12})
}

// fig5: latency vs traffic for the five fault-region shapes of the paper
// (8-ary 2-cube, M=32, V=10, deterministic and adaptive).
func (h *harness) fig5() {
	fmt.Println("\n===== Fig. 5: latency vs traffic with fault regions, 8-ary 2-cube, M=32, V=10 =====")
	specs := fault.PaperFig5Specs()
	order := []string{"rect-shaped", "T-shaped", "Plus-shaped", "L-shaped", "U-shaped"}
	grid := h.lambdaGrid(10)
	var points []core.Point
	label := func(routing, shape string, l float64) string {
		return fmt.Sprintf("%s|%s|l%g", routing, shape, l)
	}
	for _, algName := range []string{"det", "adaptive"} {
		short := shortAlg(algName)
		for _, shape := range order {
			for _, l := range grid {
				c := h.base(8, 2, l)
				c.V = 10
				c.MsgLen = 32
				c.Algorithm = algName
				c.Faults.Shapes = []core.ShapeStamp{{Spec: specs[shape], DimA: 0, DimB: 1}}
				points = append(points, core.Point{Label: label(short, shape, l), Config: c})
			}
		}
	}
	res := h.run("Fig 5 shapes", points)
	var cols []string
	type curve struct{ routing, shape string }
	var curves []curve
	for _, routing := range []string{"det", "adp"} {
		for _, shape := range order {
			nf, _ := specs[shape].CellCount()
			cols = append(cols, fmt.Sprintf("%s %s(%d)", routing, shortShape(shape), nf))
			curves = append(curves, curve{routing, shape})
		}
	}
	rows := make([]string, len(grid))
	for i, l := range grid {
		rows[i] = fmt.Sprintf("%g", l)
	}
	printTable("Fig 5: mean latency (cycles; * = saturated)", cols, rows, func(ri, ci int) string {
		cu := curves[ci]
		return latencyCell(res[label(cu.routing, cu.shape, grid[ri])])
	})
}

// shortAlg maps registry algorithm names to the two-to-three letter column
// tags the figure tables use.
func shortAlg(name string) string {
	switch name {
	case "det":
		return "det"
	case "adaptive":
		return "adp"
	case "valiant":
		return "val"
	case "valiant-adaptive":
		return "vla"
	}
	return name
}

func shortShape(s string) string {
	switch s {
	case "rect-shaped":
		return "rect"
	case "T-shaped":
		return "T"
	case "Plus-shaped":
		return "+"
	case "L-shaped":
		return "L"
	case "U-shaped":
		return "U"
	}
	return s
}

// fig6: overall throughput vs number of random faulty nodes in a 16-ary
// 2-cube (M=32, V=6), deterministic vs adaptive, averaged over fault
// placements. Offered load sits past the fault-free saturation point so the
// measured delivery rate is the network's capacity.
func (h *harness) fig6() {
	fmt.Println("\n===== Fig. 6: throughput vs faulty nodes, 16-ary 2-cube, M=32, V=6 =====")
	const lambda = 0.012
	nfs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	var points []core.Point
	label := func(routing string, nf, seed int) string {
		return fmt.Sprintf("%s|nf%d|s%d", routing, nf, seed)
	}
	for _, algName := range []string{"det", "adaptive"} {
		short := shortAlg(algName)
		for _, nf := range nfs {
			for s := 0; s < h.seeds; s++ {
				c := h.base(16, 2, lambda)
				c.V = 6
				c.MsgLen = 32
				c.Algorithm = algName
				c.Faults.RandomNodes = nf
				c.Seed = uint64(1000 + s)
				// Throughput runs are capacity measurements: let them run a
				// fixed horizon rather than stopping at a backlog.
				c.SaturationBacklog = 1 << 30
				c.MaxCycles = int64(h.scale.measure) * 40
				points = append(points, core.Point{Label: label(short, nf, s), Config: c})
			}
		}
	}
	res := h.run("Fig 6 throughput", points)
	fmt.Printf("\n== Fig 6: throughput (messages/node/cycle) at offered λ=%g ==\n", lambda)
	fmt.Printf("%-8s%14s%14s\n", "nf", "deterministic", "adaptive")
	for _, nf := range nfs {
		cell := func(routing string) string {
			return h.seedCell(
				func(s int) (core.PointResult, bool) { r, ok := res[label(routing, nf, s)]; return r, ok },
				func(m metrics.Results) (float64, bool) { return m.Throughput, true },
				"%.5f")
		}
		fmt.Printf("%-8d%14s%14s\n", nf, cell("det"), cell("adp"))
	}
}

// fig7: number of messages queued (absorbed) vs number of random faulty
// nodes in an 8-ary 3-cube (M=32, V=10) for two generation rates. The
// paper's "generation rate = g" is read as g messages per node per 10,000
// cycles (λ = g/10000), which keeps rate 100 above rate 70 as in the
// paper's legend (see EXPERIMENTS.md); counts are scaled to the paper's
// 100,000-message protocol for comparability.
func (h *harness) fig7() {
	fmt.Println("\n===== Fig. 7: messages queued vs faulty nodes, 8-ary 3-cube, M=32, V=10 =====")
	rates := []int{70, 100}
	nfs := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	var points []core.Point
	label := func(routing string, rate, nf, seed int) string {
		return fmt.Sprintf("%s|g%d|nf%d|s%d", routing, rate, nf, seed)
	}
	for _, algName := range []string{"det", "adaptive"} {
		short := shortAlg(algName)
		for _, rate := range rates {
			for _, nf := range nfs {
				for s := 0; s < h.seeds; s++ {
					c := h.base(8, 3, float64(rate)/10000.0)
					c.V = 10
					c.MsgLen = 32
					c.Algorithm = algName
					c.Faults.RandomNodes = nf
					c.Seed = uint64(2000 + s)
					points = append(points, core.Point{Label: label(short, rate, nf, s), Config: c})
				}
			}
		}
	}
	res := h.run("Fig 7 queued", points)
	fmt.Println("\n== Fig 7: messages queued, scaled to per-100k-messages (paper's protocol) ==")
	fmt.Printf("%-8s%16s%16s%16s%16s\n", "nf", "adp g=100", "det g=100", "adp g=70", "det g=70")
	for _, nf := range nfs {
		cell := func(routing string, rate int) string {
			return h.seedCell(
				func(s int) (core.PointResult, bool) { r, ok := res[label(routing, rate, nf, s)]; return r, ok },
				func(m metrics.Results) (float64, bool) {
					if m.Delivered == 0 {
						return 0, false
					}
					return float64(m.QueuedTotal()) / float64(m.Delivered) * 100000, true
				},
				"%.0f")
		}
		fmt.Printf("%-8d%16s%16s%16s%16s\n", nf,
			cell("adp", 100), cell("det", 100), cell("adp", 70), cell("det", 70))
	}
}
