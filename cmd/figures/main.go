// Command figures regenerates every figure of the paper's evaluation
// section (Figs. 1, 3, 4, 5, 6, 7) from the simulator, printing the same
// rows/series the paper plots, plus extended experiments and a
// saturation-point capacity table. See FIGURES.md for the full
// figure-by-figure reproduction guide.
//
//	figures -fig 3              # mean latency vs traffic, 8-ary 2-cube
//	figures -fig 6 -seeds 5     # throughput vs faults, averaged placements
//	figures -fig all -scale quick
//
// Scales: quick (2k measured messages/point), default (10k), full (90k —
// the paper's 100,000-message protocol).
//
// Long runs checkpoint and shard through the sweep subsystem: with
// -checkpoint, every completed point is journalled and a re-run (after a
// crash, SIGKILL, or preemption) resumes instead of recomputing; with
// -shard i/n, independent processes or hosts each run a slice of the
// same figure; -merge combines shard journals, after which a final run
// renders the complete tables entirely from the checkpoint:
//
//	figures -fig 3 -scale full -shard 0/2 -checkpoint s0.jsonl   # host A
//	figures -fig 3 -scale full -shard 1/2 -checkpoint s1.jsonl   # host B
//	figures -fig 3 -scale full -checkpoint all.jsonl -merge s0.jsonl,s1.jsonl
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sweep"
	"repro/internal/topology"
)

func main() {
	var (
		fig        = flag.String("fig", "all", "figure to regenerate: 1|3|4|5|6|7|ext|sat|churn|all")
		scale      = flag.String("scale", "default", "measurement scale: quick|default|full")
		workers    = flag.Int("workers", 0, "sweep workers (0 = GOMAXPROCS)")
		seeds      = flag.Int("seeds", 3, "random fault placements averaged across figures")
		csv        = flag.Bool("csv", false, "also print raw CSV rows per point")
		plot       = flag.Bool("plot", false, "render ASCII charts under the latency tables")
		checkpoint = flag.String("checkpoint", "", "JSONL checkpoint journal: completed points are skipped on re-run")
		shardSpec  = flag.String("shard", "", "run only shard i of n ('i/n') of each figure's sweep")
		mergeList  = flag.String("merge", "", "comma-separated shard journals to merge into -checkpoint before rendering")
		topo       = flag.String("topo", "", "topology family overriding every figure's torus (e.g. mesh); each figure's k/n are rewritten into the spec, other parameters (latmap) kept; fault-region figures need the shapes to fit the network")
		coordURL   = flag.String("coordinator", "", "submit every figure sweep to a coordinator fleet (swsim -serve / -worker) instead of simulating locally")
	)
	flag.Parse()

	sc, ok := scales[*scale]
	if !ok {
		fmt.Fprintf(os.Stderr, "figures: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	shard, err := sweep.ParseShard(*shardSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(2)
	}
	if shard.Count > 1 && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "figures: -shard requires -checkpoint (without a journal the shard's results cannot be merged)")
		os.Exit(2)
	}
	if *mergeList != "" {
		if *checkpoint == "" {
			fmt.Fprintln(os.Stderr, "figures: -merge requires -checkpoint (the journal to merge into)")
			os.Exit(2)
		}
		total, err := sweep.MergeJournals(*checkpoint, strings.Split(*mergeList, ",")...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "figures: merged into %s (%d distinct points)\n", *checkpoint, total)
	}
	if *coordURL != "" && (*checkpoint != "" || shard.Count > 1 || *mergeList != "") {
		fmt.Fprintln(os.Stderr, "figures: -coordinator conflicts with -checkpoint/-shard/-merge (the coordinator owns the journal; its workers are the shards)")
		os.Exit(2)
	}
	h := &harness{scale: sc, workers: *workers, seeds: *seeds, csv: *csv, plot: *plot,
		checkpoint: *checkpoint, shard: shard, topo: *topo, coordinator: *coordURL}

	start := time.Now()
	switch *fig {
	case "1":
		h.fig1()
	case "3":
		h.fig3()
	case "4":
		h.fig4()
	case "5":
		h.fig5()
	case "6":
		h.fig6()
	case "7":
		h.fig7()
	case "ext":
		h.figExt()
	case "sat":
		h.figSat()
	case "churn":
		h.figChurn()
	case "all":
		h.fig1()
		h.fig3()
		h.fig4()
		h.fig5()
		h.fig6()
		h.fig7()
		h.figExt()
		h.figSat()
		h.figChurn()
	default:
		fmt.Fprintf(os.Stderr, "figures: unknown figure %q\n", *fig)
		os.Exit(2)
	}
	if h.shard.Count > 1 {
		fmt.Fprintf(os.Stderr, "figures: shard %s complete; until the other shards' journals are merged (-merge), cells they own render as %q and cells averaged from this shard's placements only are marked %q\n",
			h.shard, skippedCell, partialMark)
	}
	fmt.Printf("\n(total wall time %v)\n", time.Since(start).Round(time.Second))
}

// scaleSpec sets the measurement protocol; the paper's is warmup=10000,
// measure=90000 ("a total of 100,000 messages ... first 10,000 inhibited").
type scaleSpec struct {
	warmup, measure int
	thin            int // keep every thin-th lambda point (1 = all)
}

var scales = map[string]scaleSpec{
	"quick":   {warmup: 200, measure: 2000, thin: 2},
	"default": {warmup: 1000, measure: 10000, thin: 1},
	"full":    {warmup: 10000, measure: 90000, thin: 1},
}

type harness struct {
	scale      scaleSpec
	workers    int
	seeds      int
	csv        bool
	plot       bool
	checkpoint string
	shard      sweep.Shard
	// topo, when set, overrides every figure's k-ary n-cube with a
	// registry topology spec (mesh-vs-torus comparisons). Each figure
	// still chooses its own network size: topoFor rewrites the spec's
	// k/n parameters per point, so size-varying figures keep truthful
	// labels.
	topo string
	// coordinator, when set, is the base URL of a sweep coordinator
	// (swsim -serve); every figure sweep is submitted there and served by
	// the worker fleet (and, on repeat runs, by the result cache) instead
	// of simulating locally.
	coordinator string
}

// topoFor resolves the -topo override for a figure point of the given
// size: empty when no override is set, otherwise the spec with its k and
// n parameters replaced by the figure's values (other parameters, e.g. a
// latmap, are preserved). Specs whose factory rejects a k parameter
// (hypercube) surface that as a per-point error rather than silently
// simulating a mislabeled size.
func (h *harness) topoFor(k, n int) string {
	if h.topo == "" {
		return ""
	}
	spec, err := topology.ParseSpec(h.topo)
	if err != nil {
		return h.topo // let core.Validate report the parse error
	}
	params := []topology.Param{
		{Key: "k", Value: strconv.Itoa(k)},
		{Key: "n", Value: strconv.Itoa(n)},
	}
	for _, p := range spec.Params {
		if p.Key != "k" && p.Key != "n" {
			params = append(params, p)
		}
	}
	spec.Params = params
	return spec.String()
}

// lambdaGrid returns the traffic-rate axis used for a V value, mirroring
// the x-axis ranges of the paper's panels (V=4 to 0.014, V=6 to ~0.016-0.02,
// V=10 to ~0.02).
func (h *harness) lambdaGrid(v int) []float64 {
	var grid []float64
	switch {
	case v <= 4:
		grid = []float64{0.002, 0.004, 0.006, 0.008, 0.010, 0.012, 0.014}
	case v <= 6:
		grid = []float64{0.002, 0.004, 0.006, 0.008, 0.010, 0.012, 0.014, 0.016}
	default:
		grid = []float64{0.002, 0.004, 0.008, 0.012, 0.014, 0.016, 0.018, 0.020}
	}
	if h.scale.thin <= 1 {
		return grid
	}
	var out []float64
	for i, l := range grid {
		if i%h.scale.thin == 0 || i == len(grid)-1 {
			out = append(out, l)
		}
	}
	return out
}

func (h *harness) base(k, n int, lambda float64) core.Config {
	c := core.DefaultConfig(k, n, lambda)
	c.Topology = h.topoFor(k, n)
	c.WarmupMessages = h.scale.warmup
	c.MeasureMessages = h.scale.measure
	return c
}

// sweepOptions assembles the checkpoint/shard/worker options shared by
// every figure's sweep.
func (h *harness) sweepOptions() sweep.Options {
	return sweep.Options{Workers: h.workers, Checkpoint: h.checkpoint, Shard: h.shard, Log: os.Stderr}
}

// run executes the named figure sweep through the sweep subsystem
// (resumable via -checkpoint, splittable via -shard) and indexes results
// by label. Points owned by other shards carry sweep.ErrSkipped and
// render as skippedCell. With -coordinator the plan goes to the fleet
// instead; point identity is the content digest, so a figure re-render
// against a warm coordinator is pure cache.
func (h *harness) run(name string, points []core.Point) map[string]core.PointResult {
	plan := sweep.Plan{Name: name, Points: points}
	var res []core.PointResult
	var err error
	if h.coordinator != "" {
		c := coord.NewClient(h.coordinator)
		c.Log = os.Stderr
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		res, err = c.RunPlan(ctx, plan)
		stop()
	} else {
		res, err = sweep.Run(plan, h.sweepOptions())
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "figures: %s: %v\n", name, err)
		os.Exit(1)
	}
	out := make(map[string]core.PointResult, len(res))
	for _, r := range res {
		if r.Err != nil && !errors.Is(r.Err, sweep.ErrSkipped) {
			fmt.Fprintf(os.Stderr, "figures: point %s: %v\n", r.Label, r.Err)
		}
		out[r.Label] = r
		if h.csv && r.Err == nil {
			fmt.Printf("csv,%s,%.2f,%.6f,%d,%d,%v\n", r.Label,
				r.Results.MeanLatency, r.Results.Throughput,
				r.Results.QueuedFault, r.Results.QueuedVia, r.Results.Saturated)
		}
	}
	return out
}

// skippedCell marks a table cell whose points all belong to another
// shard and have not been merged into this run's checkpoint yet;
// partialMark is appended to a cell averaged over only the placements
// this shard owns (a shard splits each cell's seeds, so the value will
// shift once the other shards' journals are merged in).
const (
	skippedCell = "-"
	partialMark = "?"
)

// seedCell averages one metric over a table cell's seeded fault
// placements, rendering the shard states consistently: skippedCell when
// every missing placement belongs to another shard, "err" when any
// owned placement failed and none succeeded, and a partialMark suffix
// when the average covers only this shard's placements. lookup fetches
// the result for seed s; value extracts the metric (ok=false drops that
// placement, e.g. a run that delivered nothing); format renders the
// average.
func (h *harness) seedCell(lookup func(s int) (core.PointResult, bool), value func(metrics.Results) (float64, bool), format string) string {
	sum, n, skipped, failed := 0.0, 0, 0, 0
	for s := 0; s < h.seeds; s++ {
		r, ok := lookup(s)
		switch {
		case ok && r.Err == nil:
			if v, vok := value(r.Results); vok {
				sum += v
				n++
			}
		case ok && errors.Is(r.Err, sweep.ErrSkipped):
			skipped++
		default:
			failed++
		}
	}
	if n == 0 {
		if skipped > 0 && failed == 0 {
			return skippedCell
		}
		return "err"
	}
	cell := fmt.Sprintf(format, sum/float64(n))
	if skipped > 0 {
		cell += partialMark
	}
	return cell
}

// latencyCell formats one latency entry; saturated points are flagged the
// way the paper's curves go vertical.
func latencyCell(r core.PointResult) string {
	if errors.Is(r.Err, sweep.ErrSkipped) {
		return skippedCell
	}
	if r.Err != nil {
		return "err"
	}
	if r.Results.Saturated {
		return fmt.Sprintf("%.0f*", r.Results.MeanLatency)
	}
	return fmt.Sprintf("%.1f", r.Results.MeanLatency)
}

func printTable(title string, colNames []string, rowNames []string, cell func(row, col int) string) {
	width := 14
	for _, c := range colNames {
		if len(c)+2 > width {
			width = len(c) + 2
		}
	}
	fmt.Printf("\n== %s ==\n", title)
	fmt.Printf("%-10s", "lambda")
	for _, c := range colNames {
		fmt.Printf("%*s", width, c)
	}
	fmt.Println()
	for i, rn := range rowNames {
		fmt.Printf("%-10s", rn)
		for j := range colNames {
			fmt.Printf("%*s", width, cell(i, j))
		}
		fmt.Println()
	}
}
