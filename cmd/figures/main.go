// Command figures regenerates every figure of the paper's evaluation
// section (Figs. 1, 3, 4, 5, 6, 7) from the simulator, printing the same
// rows/series the paper plots.
//
//	figures -fig 3              # mean latency vs traffic, 8-ary 2-cube
//	figures -fig 6 -seeds 5     # throughput vs faults, averaged placements
//	figures -fig all -scale quick
//
// Scales: quick (2k measured messages/point), default (10k), full (90k —
// the paper's 100,000-message protocol).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure to regenerate: 1|3|4|5|6|7|ext|all")
		scale   = flag.String("scale", "default", "measurement scale: quick|default|full")
		workers = flag.Int("workers", 0, "sweep workers (0 = GOMAXPROCS)")
		seeds   = flag.Int("seeds", 3, "random fault placements averaged across figures")
		csv     = flag.Bool("csv", false, "also print raw CSV rows per point")
		plot    = flag.Bool("plot", false, "render ASCII charts under the latency tables")
	)
	flag.Parse()

	sc, ok := scales[*scale]
	if !ok {
		fmt.Fprintf(os.Stderr, "figures: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	h := &harness{scale: sc, workers: *workers, seeds: *seeds, csv: *csv, plot: *plot}

	start := time.Now()
	switch *fig {
	case "1":
		h.fig1()
	case "3":
		h.fig3()
	case "4":
		h.fig4()
	case "5":
		h.fig5()
	case "6":
		h.fig6()
	case "7":
		h.fig7()
	case "ext":
		h.figExt()
	case "all":
		h.fig1()
		h.fig3()
		h.fig4()
		h.fig5()
		h.fig6()
		h.fig7()
		h.figExt()
	default:
		fmt.Fprintf(os.Stderr, "figures: unknown figure %q\n", *fig)
		os.Exit(2)
	}
	fmt.Printf("\n(total wall time %v)\n", time.Since(start).Round(time.Second))
}

// scaleSpec sets the measurement protocol; the paper's is warmup=10000,
// measure=90000 ("a total of 100,000 messages ... first 10,000 inhibited").
type scaleSpec struct {
	warmup, measure int
	thin            int // keep every thin-th lambda point (1 = all)
}

var scales = map[string]scaleSpec{
	"quick":   {warmup: 200, measure: 2000, thin: 2},
	"default": {warmup: 1000, measure: 10000, thin: 1},
	"full":    {warmup: 10000, measure: 90000, thin: 1},
}

type harness struct {
	scale   scaleSpec
	workers int
	seeds   int
	csv     bool
	plot    bool
}

// lambdaGrid returns the traffic-rate axis used for a V value, mirroring
// the x-axis ranges of the paper's panels (V=4 to 0.014, V=6 to ~0.016-0.02,
// V=10 to ~0.02).
func (h *harness) lambdaGrid(v int) []float64 {
	var grid []float64
	switch {
	case v <= 4:
		grid = []float64{0.002, 0.004, 0.006, 0.008, 0.010, 0.012, 0.014}
	case v <= 6:
		grid = []float64{0.002, 0.004, 0.006, 0.008, 0.010, 0.012, 0.014, 0.016}
	default:
		grid = []float64{0.002, 0.004, 0.008, 0.012, 0.014, 0.016, 0.018, 0.020}
	}
	if h.scale.thin <= 1 {
		return grid
	}
	var out []float64
	for i, l := range grid {
		if i%h.scale.thin == 0 || i == len(grid)-1 {
			out = append(out, l)
		}
	}
	return out
}

func (h *harness) base(k, n int, lambda float64) core.Config {
	c := core.DefaultConfig(k, n, lambda)
	c.WarmupMessages = h.scale.warmup
	c.MeasureMessages = h.scale.measure
	return c
}

// run executes points and indexes results by label.
func (h *harness) run(points []core.Point) map[string]core.PointResult {
	res := core.RunSweep(points, h.workers)
	out := make(map[string]core.PointResult, len(res))
	for _, r := range res {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "figures: point %s: %v\n", r.Label, r.Err)
		}
		out[r.Label] = r
		if h.csv {
			fmt.Printf("csv,%s,%.2f,%.6f,%d,%d,%v\n", r.Label,
				r.Results.MeanLatency, r.Results.Throughput,
				r.Results.QueuedFault, r.Results.QueuedVia, r.Results.Saturated)
		}
	}
	return out
}

// latencyCell formats one latency entry; saturated points are flagged the
// way the paper's curves go vertical.
func latencyCell(r core.PointResult) string {
	if r.Err != nil {
		return "err"
	}
	if r.Results.Saturated {
		return fmt.Sprintf("%.0f*", r.Results.MeanLatency)
	}
	return fmt.Sprintf("%.1f", r.Results.MeanLatency)
}

func printTable(title string, colNames []string, rowNames []string, cell func(row, col int) string) {
	width := 14
	for _, c := range colNames {
		if len(c)+2 > width {
			width = len(c) + 2
		}
	}
	fmt.Printf("\n== %s ==\n", title)
	fmt.Printf("%-10s", "lambda")
	for _, c := range colNames {
		fmt.Printf("%*s", width, c)
	}
	fmt.Println()
	for i, rn := range rowNames {
		fmt.Printf("%-10s", rn)
		for j := range colNames {
			fmt.Printf("%*s", width, cell(i, j))
		}
		fmt.Println()
	}
}
