// Command benchdiff parses `go test -bench` text output into a JSON
// snapshot and gates benchmark regressions against a committed baseline.
// It is the local half of the bench-regression CI job — the same compare
// runs on a laptop:
//
//	go test -run xxx -bench 'BenchmarkStep|BenchmarkSourcePoll' \
//	    -benchtime 5000x -benchmem -count 5 . > bench.txt
//	benchdiff -in bench.txt -out BENCH_$(git rev-parse --short HEAD).json \
//	    -baseline bench_baseline.json -policy bench_policy.json
//
// The -policy file names the gated benchmarks with per-benchmark
// thresholds (see Policy); the repo's bench_policy.json is the committed
// gate set. The flag trio -gate/-max-regress/-require-mem remains as the
// uniform-threshold shorthand:
//
//	benchdiff -in bench.txt -baseline bench_baseline.json \
//	    -gate BenchmarkStepTorusLinkCache -max-regress 15 -require-mem
//
// The snapshot keeps every raw benchmark line (feed `jq -r '.lines[]'`
// into benchstat for the usual statistics) plus per-benchmark ns/op
// samples and their median, which is what the compare uses so a single
// noisy -count repeat cannot flip the gate. Runs produced with -benchmem
// additionally carry B/op and allocs/op samples; for gated benchmarks the
// median allocs/op must not exceed the baseline's at all — time gets a
// noise tolerance, allocations do not, because the hot path's allocs/op
// is exactly 0 and any nonzero count is a real leak into the steady
// state, not jitter. Only the benchmarks named in -gate fail the run;
// everything else is reported informationally.
//
// Absolute ns/op medians only compare within one machine class, so a
// baseline is only meaningful against runs from the same class: CI gates
// against a baseline refreshed from a CI artifact, local runs against a
// locally generated `-out bench_baseline.json`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

func main() {
	var (
		in         = flag.String("in", "", "benchmark text output to parse ('-' for stdin)")
		out        = flag.String("out", "", "write the parsed snapshot JSON here")
		baseline   = flag.String("baseline", "", "baseline snapshot JSON to compare against")
		gate       = flag.String("gate", "", "comma-separated benchmark names whose regression fails the run (default: report only)")
		maxRegress = flag.Float64("max-regress", 15, "maximum tolerated median ns/op regression, percent")
		requireMem = flag.Bool("require-mem", false, "fail when a gated benchmark lacks allocs/op samples in either snapshot (instead of skipping the alloc gate)")
		policyPath = flag.String("policy", "", "JSON gate policy file with per-benchmark thresholds (mutually exclusive with -gate/-max-regress/-require-mem)")
	)
	flag.Parse()
	if err := run(*in, *out, *baseline, *gate, *maxRegress, *requireMem, *policyPath, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(in, out, baseline, gate string, maxRegress float64, requireMem bool, policyPath string, w io.Writer) error {
	if in == "" {
		return fmt.Errorf("-in is required (benchmark text output, '-' for stdin)")
	}
	var src io.Reader = os.Stdin
	if in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	cur, err := ParseBench(src)
	if err != nil {
		return err
	}
	if len(cur.Benchmarks) == 0 {
		return fmt.Errorf("%s: no benchmark result lines found", in)
	}
	if out != "" {
		blob, err := json.MarshalIndent(cur, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s (%d benchmarks)\n", out, len(cur.Benchmarks))
	}
	if baseline == "" {
		return nil
	}
	base, err := ReadSnapshot(baseline)
	if err != nil {
		return err
	}
	var pol *Policy
	if policyPath != "" {
		if gate != "" {
			return fmt.Errorf("-policy and -gate are mutually exclusive (the policy file names the gated benchmarks)")
		}
		if pol, err = ReadPolicy(policyPath); err != nil {
			return err
		}
	} else {
		pol = &Policy{
			DefaultMaxRegressPct: maxRegress,
			RequireMem:           requireMem,
			Gates:                map[string]*GatePolicy{},
		}
		for _, g := range strings.Split(gate, ",") {
			if g = strings.TrimSpace(g); g != "" {
				pol.Gates[g] = &GatePolicy{}
			}
		}
	}
	report, failures := ComparePolicy(base, cur, pol)
	fmt.Fprint(w, report)
	if len(failures) > 0 {
		return fmt.Errorf("benchmark regression gate failed: %s", strings.Join(failures, "; "))
	}
	return nil
}

// Policy is the gate configuration: which benchmarks fail the run and at
// what thresholds. The -gate/-max-regress/-require-mem flags build a
// uniform policy; a -policy JSON file carries per-benchmark entries, which
// is how a slow scale benchmark gets a looser ns/op tolerance than the
// tight hot-path gates without loosening those:
//
//	{
//	  "default_max_regress_pct": 15,
//	  "require_mem": true,
//	  "gates": {
//	    "BenchmarkStepTorusLinkCache": {},
//	    "BenchmarkStepLargeTorus": {"max_regress_pct": 50},
//	    "BenchmarkStepLargeTorusParallel/workers=4": {"max_regress_pct": 60, "skip_allocs": true}
//	  }
//	}
type Policy struct {
	// DefaultMaxRegressPct is the median-ns/op regression limit for gated
	// benchmarks without their own max_regress_pct.
	DefaultMaxRegressPct float64 `json:"default_max_regress_pct"`
	// RequireMem fails any gated benchmark lacking allocs/op samples in
	// either snapshot (instead of skipping its alloc gate with a note).
	RequireMem bool `json:"require_mem,omitempty"`
	// Gates names the benchmarks whose regression fails the run.
	Gates map[string]*GatePolicy `json:"gates"`
}

// GatePolicy carries one gated benchmark's thresholds. The zero value
// inherits the policy defaults.
type GatePolicy struct {
	// MaxRegressPct overrides Policy.DefaultMaxRegressPct for this
	// benchmark.
	MaxRegressPct *float64 `json:"max_regress_pct,omitempty"`
	// SkipAllocs exempts this benchmark from the zero-tolerance allocs/op
	// gate — for benchmarks with inherent small per-op allocations (the
	// parallel engine's per-phase goroutine spawns) where only ns/op is
	// meaningful.
	SkipAllocs bool `json:"skip_allocs,omitempty"`
}

// limitFor resolves the ns/op regression limit for one gated benchmark.
func (p *Policy) limitFor(name string) float64 {
	if g := p.Gates[name]; g != nil && g.MaxRegressPct != nil {
		return *g.MaxRegressPct
	}
	return p.DefaultMaxRegressPct
}

// ReadPolicy loads and validates a gate policy JSON file.
func ReadPolicy(path string) (*Policy, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p Policy
	if err := json.Unmarshal(blob, &p); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if p.DefaultMaxRegressPct <= 0 {
		return nil, fmt.Errorf("%s: default_max_regress_pct must be > 0", path)
	}
	if len(p.Gates) == 0 {
		return nil, fmt.Errorf("%s: policy gates no benchmarks", path)
	}
	for name, g := range p.Gates {
		if g != nil && g.MaxRegressPct != nil && *g.MaxRegressPct <= 0 {
			return nil, fmt.Errorf("%s: gate %q: max_regress_pct must be > 0", path, name)
		}
	}
	return &p, nil
}

// Bench is one benchmark's samples across -count repeats.
type Bench struct {
	// NsPerOp holds one ns/op sample per -count repeat.
	NsPerOp []float64 `json:"ns_per_op"`
	// MedianNsPerOp is the compare statistic: robust to one noisy repeat.
	MedianNsPerOp float64 `json:"median_ns_per_op"`
	// BytesPerOp and AllocsPerOp hold the -benchmem samples, one per
	// repeat; empty for runs (or old baselines) taken without -benchmem.
	BytesPerOp        []float64 `json:"bytes_per_op,omitempty"`
	MedianBytesPerOp  float64   `json:"median_bytes_per_op,omitempty"`
	AllocsPerOp       []float64 `json:"allocs_per_op,omitempty"`
	MedianAllocsPerOp float64   `json:"median_allocs_per_op,omitempty"`
}

// Snapshot is the parsed form of one `go test -bench` run.
type Snapshot struct {
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Lines preserves the raw benchmark result lines in Go's standard
	// benchmark format, so the snapshot remains benchstat-consumable:
	// jq -r '.lines[]' BENCH_x.json | benchstat /dev/stdin
	Lines []string `json:"lines"`
	// Benchmarks maps the name (GOMAXPROCS suffix stripped) to samples.
	Benchmarks map[string]*Bench `json:"benchmarks"`
}

// ParseBench reads `go test -bench` text output: the goos/goarch/pkg/cpu
// header and every "BenchmarkName-N  iters  value ns/op  ..." result
// line. Repeats of one name (-count) accumulate as samples.
func ParseBench(r io.Reader) (*Snapshot, error) {
	s := &Snapshot{Benchmarks: map[string]*Bench{}}
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	for lineNo, line := range strings.Split(string(buf), "\n") {
		line = strings.TrimRight(line, "\r")
		switch {
		case strings.HasPrefix(line, "goos: "):
			s.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			s.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			s.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			s.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			name, r, ok, err := parseResultLine(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
			}
			if !ok {
				continue // a "BenchmarkFoo" announcement line without results (-v)
			}
			s.Lines = append(s.Lines, line)
			b := s.Benchmarks[name]
			if b == nil {
				b = &Bench{}
				s.Benchmarks[name] = b
			}
			b.NsPerOp = append(b.NsPerOp, r.ns)
			if r.hasBytes {
				b.BytesPerOp = append(b.BytesPerOp, r.bytes)
			}
			if r.hasAllocs {
				b.AllocsPerOp = append(b.AllocsPerOp, r.allocs)
			}
		}
	}
	for _, b := range s.Benchmarks {
		b.MedianNsPerOp = median(b.NsPerOp)
		b.MedianBytesPerOp = median(b.BytesPerOp)
		b.MedianAllocsPerOp = median(b.AllocsPerOp)
	}
	return s, nil
}

// result is the measurements carried by one benchmark output line: ns/op
// always, B/op and allocs/op only when the run used -benchmem.
type result struct {
	ns, bytes, allocs   float64
	hasBytes, hasAllocs bool
}

// parseResultLine splits one benchmark result line into its normalized
// name and measurements. ok is false for lines that carry no ns/op value
// (verbose-mode RUN announcements).
func parseResultLine(line string) (name string, r result, ok bool, err error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", result{}, false, nil
	}
	name = normalizeName(fields[0])
	// fields[1] is the iteration count; after it come value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		var dst *float64
		switch fields[i+1] {
		case "ns/op":
			dst, ok = &r.ns, true
		case "B/op":
			dst, r.hasBytes = &r.bytes, true
		case "allocs/op":
			dst, r.hasAllocs = &r.allocs, true
		default:
			continue // custom ReportMetric units (msgs/kcycle etc.)
		}
		if _, err := fmt.Sscanf(fields[i], "%g", dst); err != nil {
			return "", result{}, false, fmt.Errorf("bad %s value %q in %q", fields[i+1], fields[i], line)
		}
	}
	if !ok {
		return "", result{}, false, nil
	}
	return name, r, true, nil
}

// normalizeName strips the trailing -N GOMAXPROCS suffix Go appends to
// benchmark names, so snapshots from machines with different core counts
// compare.
func normalizeName(s string) string {
	i := strings.LastIndexByte(s, '-')
	if i < 0 {
		return s
	}
	for _, c := range s[i+1:] {
		if c < '0' || c > '9' {
			return s
		}
	}
	if i+1 == len(s) {
		return s
	}
	return s[:i]
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// ReadSnapshot loads a snapshot JSON written by -out.
func ReadSnapshot(path string) (*Snapshot, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(blob, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	for _, b := range s.Benchmarks {
		if b.MedianNsPerOp == 0 {
			b.MedianNsPerOp = median(b.NsPerOp)
		}
		if b.MedianBytesPerOp == 0 {
			b.MedianBytesPerOp = median(b.BytesPerOp)
		}
		if b.MedianAllocsPerOp == 0 {
			b.MedianAllocsPerOp = median(b.AllocsPerOp)
		}
	}
	return &s, nil
}

// Compare evaluates a uniform gate: every benchmark in gates at the same
// maxRegress/requireMem thresholds. Kept as the simple front door (and the
// shape the legacy flags build); ComparePolicy is the general form.
func Compare(base, cur *Snapshot, gates []string, maxRegress float64, requireMem bool) (report string, failures []string) {
	p := &Policy{
		DefaultMaxRegressPct: maxRegress,
		RequireMem:           requireMem,
		Gates:                map[string]*GatePolicy{},
	}
	for _, g := range gates {
		p.Gates[g] = &GatePolicy{}
	}
	return ComparePolicy(base, cur, p)
}

// ComparePolicy renders a delta table over the benchmarks the two
// snapshots share and evaluates the gate policy: every gated benchmark
// must exist in both snapshots, its median ns/op must not regress by more
// than its resolved limit, and — when both snapshots carry -benchmem
// samples and the gate doesn't opt out via skip_allocs — its median
// allocs/op must not exceed the baseline's at all (zero tolerance: the
// hot path allocates nothing in steady state, so any increase is a leak,
// not noise). With RequireMem, a gated benchmark missing allocs/op
// samples on either side is itself a failure; otherwise the alloc gate is
// skipped for it with a note in the report. Returned failures are empty
// when the gate holds.
func ComparePolicy(base, cur *Snapshot, pol *Policy) (report string, failures []string) {
	var sb strings.Builder
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var notes []string
	fmt.Fprintf(&sb, "%-55s %14s %14s %8s %12s %12s\n",
		"benchmark", "base ns/op", "cur ns/op", "delta", "base allocs", "cur allocs")
	for _, name := range names {
		b, c := base.Benchmarks[name], cur.Benchmarks[name]
		delta := 100 * (c.MedianNsPerOp - b.MedianNsPerOp) / b.MedianNsPerOp
		mark := ""
		if g, ok := pol.Gates[name]; ok {
			mark = "  [gate]"
			limit := pol.limitFor(name)
			if delta > limit {
				mark = "  [FAIL]"
				failures = append(failures,
					fmt.Sprintf("%s regressed %.1f%% (limit %.0f%%)", name, delta, limit))
			}
			switch {
			case g != nil && g.SkipAllocs:
				// ns/op-only gate by policy; no alloc comparison.
			case len(b.AllocsPerOp) == 0 || len(c.AllocsPerOp) == 0:
				side := "baseline"
				if len(b.AllocsPerOp) > 0 {
					side = "current run"
				}
				if pol.RequireMem {
					mark = "  [FAIL]"
					failures = append(failures,
						fmt.Sprintf("%s has no allocs/op samples in the %s (run with -benchmem)", name, side))
				} else {
					notes = append(notes,
						fmt.Sprintf("note: %s has no allocs/op samples in the %s; alloc gate skipped", name, side))
				}
			case c.MedianAllocsPerOp > b.MedianAllocsPerOp:
				mark = "  [FAIL]"
				failures = append(failures,
					fmt.Sprintf("%s allocs/op regressed %.1f -> %.1f (zero tolerance)",
						name, b.MedianAllocsPerOp, c.MedianAllocsPerOp))
			}
		}
		fmt.Fprintf(&sb, "%-55s %14.1f %14.1f %+7.1f%% %12s %12s%s\n",
			name, b.MedianNsPerOp, c.MedianNsPerOp, delta,
			allocCol(b), allocCol(c), mark)
	}
	gateNames := make([]string, 0, len(pol.Gates))
	for g := range pol.Gates {
		gateNames = append(gateNames, g)
	}
	sort.Strings(gateNames)
	for _, g := range gateNames {
		if _, inCur := cur.Benchmarks[g]; !inCur {
			failures = append(failures, fmt.Sprintf("gated benchmark %s missing from current run", g))
		} else if _, inBase := base.Benchmarks[g]; !inBase {
			failures = append(failures, fmt.Sprintf("gated benchmark %s missing from baseline", g))
		}
	}
	for _, n := range notes {
		sb.WriteString(n + "\n")
	}
	return sb.String(), failures
}

// allocCol formats one snapshot's median allocs/op for the report table,
// "-" when the run carried no -benchmem samples.
func allocCol(b *Bench) string {
	if len(b.AllocsPerOp) == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", b.MedianAllocsPerOp)
}
