package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleRun = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkStepTorusLinkCache-8   	    5000	      9000 ns/op	       3 B/op	       0 allocs/op
BenchmarkStepTorusLinkCache-8   	    5000	      9200 ns/op	       2 B/op	       0 allocs/op
BenchmarkStepTorusLinkCache-8   	    5000	      8800 ns/op	       2 B/op	       0 allocs/op
BenchmarkStepVCActiveSet/mod-k8-v6-8         	    5000	     14209 ns/op	       0 B/op	       0 allocs/op
BenchmarkSourcePoll/poisson-8 	 1000000	       940.5 ns/op	        10.00 msgs/kcycle
PASS
ok  	repro	4.236s
`

func TestParseBench(t *testing.T) {
	s, err := ParseBench(strings.NewReader(sampleRun))
	if err != nil {
		t.Fatal(err)
	}
	if s.Goos != "linux" || s.Pkg != "repro" || s.CPU == "" {
		t.Fatalf("header not parsed: %+v", s)
	}
	if len(s.Lines) != 5 {
		t.Fatalf("raw lines = %d, want 5", len(s.Lines))
	}
	b := s.Benchmarks["BenchmarkStepTorusLinkCache"]
	if b == nil {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	if len(b.NsPerOp) != 3 || b.MedianNsPerOp != 9000 {
		t.Fatalf("samples %v median %g, want 3 samples median 9000", b.NsPerOp, b.MedianNsPerOp)
	}
	sub := s.Benchmarks["BenchmarkStepVCActiveSet/mod-k8-v6"]
	if sub == nil || sub.MedianNsPerOp != 14209 {
		t.Fatalf("sub-benchmark not parsed: %+v", sub)
	}
	poll := s.Benchmarks["BenchmarkSourcePoll/poisson"]
	if poll == nil || math.Abs(poll.MedianNsPerOp-940.5) > 1e-9 {
		t.Fatalf("fractional ns/op not parsed: %+v", poll)
	}
	// -benchmem columns become samples with medians; a line without them
	// (the custom-metric poll benchmark) simply carries none.
	if len(b.BytesPerOp) != 3 || b.MedianBytesPerOp != 2 || b.MedianAllocsPerOp != 0 || len(b.AllocsPerOp) != 3 {
		t.Fatalf("memory samples not parsed: %+v", b)
	}
	if len(poll.BytesPerOp) != 0 || len(poll.AllocsPerOp) != 0 {
		t.Fatalf("phantom memory samples on benchmem-less line: %+v", poll)
	}
}

func TestParseBenchSkipsAnnouncements(t *testing.T) {
	s, err := ParseBench(strings.NewReader("BenchmarkFoo\nBenchmarkFoo-4 100 5 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Benchmarks) != 1 || len(s.Benchmarks["BenchmarkFoo"].NsPerOp) != 1 {
		t.Fatalf("verbose announcement line miscounted: %+v", s.Benchmarks)
	}
}

func snap(t *testing.T, text string) *Snapshot {
	t.Helper()
	s, err := ParseBench(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCompareGate(t *testing.T) {
	base := snap(t, "BenchmarkStepTorusLinkCache-8 5000 9000 ns/op\nBenchmarkOther-8 100 100 ns/op\n")
	gates := []string{"BenchmarkStepTorusLinkCache"}

	// Within tolerance: +10% on the gate, 3x on an ungated benchmark.
	cur := snap(t, "BenchmarkStepTorusLinkCache-8 5000 9900 ns/op\nBenchmarkOther-8 100 300 ns/op\n")
	report, failures := Compare(base, cur, gates, 15, false)
	if len(failures) != 0 {
		t.Fatalf("within-tolerance run failed the gate: %v\n%s", failures, report)
	}
	if !strings.Contains(report, "[gate]") || !strings.Contains(report, "BenchmarkOther") {
		t.Fatalf("report missing expected rows:\n%s", report)
	}

	// Injected 2x slowdown on the gated benchmark must fail.
	slow := snap(t, "BenchmarkStepTorusLinkCache-8 5000 18000 ns/op\n")
	report, failures = Compare(base, slow, gates, 15, false)
	if len(failures) != 1 || !strings.Contains(failures[0], "regressed 100.0%") {
		t.Fatalf("2x slowdown not caught: %v\n%s", failures, report)
	}
	if !strings.Contains(report, "[FAIL]") {
		t.Fatalf("report does not flag the failure:\n%s", report)
	}

	// A gated benchmark missing from the current run must fail too.
	_, failures = Compare(base, snap(t, "BenchmarkOther-8 100 100 ns/op\n"), gates, 15, false)
	if len(failures) != 1 || !strings.Contains(failures[0], "missing from current run") {
		t.Fatalf("missing gated benchmark not caught: %v", failures)
	}
}

func TestCompareAllocGate(t *testing.T) {
	base := snap(t, "BenchmarkStepTorusLinkCache-8 5000 9000 ns/op 2 B/op 0 allocs/op\n")
	gates := []string{"BenchmarkStepTorusLinkCache"}

	// Same allocs/op, slightly different time: the alloc gate holds.
	same := snap(t, "BenchmarkStepTorusLinkCache-8 5000 9100 ns/op 3 B/op 0 allocs/op\n")
	report, failures := Compare(base, same, gates, 15, true)
	if len(failures) != 0 {
		t.Fatalf("alloc-stable run failed the gate: %v\n%s", failures, report)
	}

	// Any increase in allocs/op fails, even with time well within
	// tolerance — zero tolerance on the allocation count.
	leaky := snap(t, "BenchmarkStepTorusLinkCache-8 5000 9100 ns/op 64 B/op 2 allocs/op\n")
	report, failures = Compare(base, leaky, gates, 15, true)
	if len(failures) != 1 || !strings.Contains(failures[0], "allocs/op regressed 0.0 -> 2.0") {
		t.Fatalf("allocs/op leak not caught: %v\n%s", failures, report)
	}
	if !strings.Contains(report, "[FAIL]") {
		t.Fatalf("report does not flag the alloc failure:\n%s", report)
	}

	// A pre-benchmem baseline skips the alloc gate with a note by
	// default, and fails it under -require-mem.
	oldBase := snap(t, "BenchmarkStepTorusLinkCache-8 5000 9000 ns/op\n")
	report, failures = Compare(oldBase, leaky, gates, 15, false)
	if len(failures) != 0 || !strings.Contains(report, "alloc gate skipped") {
		t.Fatalf("benchmem-less baseline not skipped: %v\n%s", failures, report)
	}
	_, failures = Compare(oldBase, leaky, gates, 15, true)
	if len(failures) != 1 || !strings.Contains(failures[0], "no allocs/op samples in the baseline") {
		t.Fatalf("-require-mem did not fail on benchmem-less baseline: %v", failures)
	}

	// Current run missing -benchmem against a baseline that has it.
	bare := snap(t, "BenchmarkStepTorusLinkCache-8 5000 9000 ns/op\n")
	_, failures = Compare(base, bare, gates, 15, true)
	if len(failures) != 1 || !strings.Contains(failures[0], "no allocs/op samples in the current run") {
		t.Fatalf("-require-mem did not fail on benchmem-less current run: %v", failures)
	}
}

func TestRunRoundTrip(t *testing.T) {
	dir := t.TempDir()
	txt := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(txt, []byte(sampleRun), 0o644); err != nil {
		t.Fatal(err)
	}
	baseJSON := filepath.Join(dir, "baseline.json")
	if err := run(txt, baseJSON, "", "", 15, false, "", &strings.Builder{}); err != nil {
		t.Fatal(err)
	}

	// Same run vs its own snapshot: 0% delta, both gates hold — with
	// -require-mem, since the sample run carries -benchmem columns.
	var out strings.Builder
	err := run(txt, filepath.Join(dir, "cur.json"), baseJSON,
		"BenchmarkStepTorusLinkCache", 15, true, "", &out)
	if err != nil {
		t.Fatalf("self-compare failed: %v\n%s", err, out.String())
	}

	// Doctored 2x-slower text must fail the gate (the CI job's contract).
	slowTxt := filepath.Join(dir, "slow.txt")
	doctored := strings.ReplaceAll(sampleRun, "9000 ns/op", "18000 ns/op")
	doctored = strings.ReplaceAll(doctored, "9200 ns/op", "18400 ns/op")
	doctored = strings.ReplaceAll(doctored, "8800 ns/op", "17600 ns/op")
	if err := os.WriteFile(slowTxt, []byte(doctored), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run(slowTxt, "", baseJSON, "BenchmarkStepTorusLinkCache", 15, false, "", &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "regression gate failed") {
		t.Fatalf("injected 2x slowdown did not fail the gate: %v", err)
	}
}

// policySample gates two benchmarks at different thresholds: the tight
// default for the hot-path Step gate, a loose per-benchmark override plus
// an alloc opt-out for the scale benchmark.
const policySample = `{
  "default_max_regress_pct": 15,
  "require_mem": true,
  "gates": {
    "BenchmarkStepTorusLinkCache": {},
    "BenchmarkStepVCActiveSet/mod-k8-v6": {"max_regress_pct": 60, "skip_allocs": true}
  }
}`

func writePolicy(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "policy.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestComparePolicyPerBenchThresholds(t *testing.T) {
	pol, err := ReadPolicy(writePolicy(t, policySample))
	if err != nil {
		t.Fatal(err)
	}
	base := snap(t, sampleRun)

	// A 40% slowdown on the loose-gated benchmark passes its 60% limit...
	slowLoose := snap(t, strings.ReplaceAll(sampleRun, "14209 ns/op", "19900 ns/op"))
	report, failures := ComparePolicy(base, slowLoose, pol)
	if len(failures) != 0 {
		t.Fatalf("40%% on a 60%%-limit gate failed: %v\n%s", failures, report)
	}

	// ...while the same 40% on the default-limit benchmark fails at 15%
	// (all repeats doctored so the median moves).
	doctored := strings.ReplaceAll(sampleRun, "9000 ns/op", "12600 ns/op")
	doctored = strings.ReplaceAll(doctored, "9200 ns/op", "12880 ns/op")
	doctored = strings.ReplaceAll(doctored, "8800 ns/op", "12320 ns/op")
	slowTight := snap(t, doctored)
	_, failures = ComparePolicy(base, slowTight, pol)
	if len(failures) != 1 || !strings.Contains(failures[0], "limit 15%") {
		t.Fatalf("default-limit gate did not fail at its own threshold: %v", failures)
	}
}

func TestComparePolicySkipAllocs(t *testing.T) {
	pol, err := ReadPolicy(writePolicy(t, policySample))
	if err != nil {
		t.Fatal(err)
	}
	base := snap(t, sampleRun)
	// An alloc increase on the skip_allocs benchmark is tolerated; the
	// same increase on a normally gated benchmark is a zero-tolerance
	// failure.
	leaky := snap(t, strings.ReplaceAll(sampleRun,
		"BenchmarkStepVCActiveSet/mod-k8-v6-8         	    5000	     14209 ns/op	       0 B/op	       0 allocs/op",
		"BenchmarkStepVCActiveSet/mod-k8-v6-8         	    5000	     14209 ns/op	      64 B/op	       3 allocs/op"))
	if _, failures := ComparePolicy(base, leaky, pol); len(failures) != 0 {
		t.Fatalf("skip_allocs gate flagged an alloc change: %v", failures)
	}
	doctored := strings.ReplaceAll(sampleRun,
		"8800 ns/op	       2 B/op	       0 allocs/op",
		"8800 ns/op	       2 B/op	       1 allocs/op")
	doctored = strings.ReplaceAll(doctored,
		"9200 ns/op	       2 B/op	       0 allocs/op",
		"9200 ns/op	       2 B/op	       1 allocs/op")
	leakyTight := snap(t, doctored)
	if _, failures := ComparePolicy(base, leakyTight, pol); len(failures) != 1 ||
		!strings.Contains(failures[0], "zero tolerance") {
		t.Fatalf("alloc gate missing on default-policy benchmark: %v", failures)
	}
}

func TestReadPolicyRejectsBadFiles(t *testing.T) {
	for name, body := range map[string]string{
		"no-gates":   `{"default_max_regress_pct": 15, "gates": {}}`,
		"no-default": `{"gates": {"BenchmarkX": {}}}`,
		"bad-limit":  `{"default_max_regress_pct": 15, "gates": {"BenchmarkX": {"max_regress_pct": -3}}}`,
		"not-json":   `max-regress: 15`,
	} {
		if _, err := ReadPolicy(writePolicy(t, body)); err == nil {
			t.Errorf("%s: ReadPolicy accepted an invalid policy", name)
		}
	}
}

func TestRunPolicyFlagExclusive(t *testing.T) {
	dir := t.TempDir()
	txt := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(txt, []byte(sampleRun), 0o644); err != nil {
		t.Fatal(err)
	}
	baseJSON := filepath.Join(dir, "baseline.json")
	if err := run(txt, baseJSON, "", "", 15, false, "", &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	pol := writePolicy(t, policySample)
	// -policy alone drives the gate end to end...
	if err := run(txt, "", baseJSON, "", 15, false, pol, &strings.Builder{}); err != nil {
		t.Fatalf("policy self-compare failed: %v", err)
	}
	// ...and combining it with -gate is refused.
	err := run(txt, "", baseJSON, "BenchmarkStepTorusLinkCache", 15, false, pol, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("-policy plus -gate not refused: %v", err)
	}
}
