package main

import (
	"math"
	"testing"
)

func TestParseGrid(t *testing.T) {
	for _, tc := range []struct {
		in      string
		want    []float64
		wantErr bool
	}{
		{in: "0.002,0.004,0.006", want: []float64{0.002, 0.004, 0.006}},
		{in: " 0.002 , 0.004 ", want: []float64{0.002, 0.004}},
		{in: "0.002:0.008:0.002", want: []float64{0.002, 0.004, 0.006, 0.008}},
		// hi not on the grid: stop below it, never overshoot.
		{in: "0.002:0.009:0.004", want: []float64{0.002, 0.006}},
		{in: "0.005:0.005:0.001", want: []float64{0.005}},
		{in: "", wantErr: true},
		{in: "0", wantErr: true},
		{in: "-0.004", wantErr: true},
		{in: "abc", wantErr: true},
		{in: "nan", wantErr: true},
		{in: "0.002,nan", wantErr: true},
		{in: "+Inf", wantErr: true},
		{in: "0.001:nan:0.002", wantErr: true},  // NaN hi would loop forever
		{in: "0.001:+Inf:0.002", wantErr: true}, // Inf hi would loop forever
		{in: "nan:0.01:0.002", wantErr: true},
		{in: "0.001:0.01:nan", wantErr: true},
		{in: "0.01:0.001:0.002", wantErr: true}, // hi below lo
		{in: "0.001:0.01", wantErr: true},
		{in: "0.001:0.01:0.002:9", wantErr: true},
		{in: "0.001:0.01:-0.002", wantErr: true},
	} {
		got, err := parseGrid(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseGrid(%q): want error, got %v", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseGrid(%q): %v", tc.in, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("parseGrid(%q) = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if math.Abs(got[i]-tc.want[i]) > 1e-12 {
				t.Errorf("parseGrid(%q)[%d] = %g, want %g", tc.in, i, got[i], tc.want[i])
			}
		}
	}
}
