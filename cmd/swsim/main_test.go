package main

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/core"
)

func TestResolveEngineWorkers(t *testing.T) {
	// Explicit widths pass through in every mode; only > nodes warns.
	for _, multi := range []bool{false, true} {
		w, warn, err := resolveEngineWorkers("4", 4096, multi)
		if err != nil || warn != "" || w != 4 {
			t.Errorf("resolveEngineWorkers(4, 4096, %v) = %d, %q, %v; want 4, no warning", multi, w, warn, err)
		}
	}
	if w, warn, err := resolveEngineWorkers("10", 4, false); err != nil || w != 10 || warn == "" {
		t.Errorf("resolveEngineWorkers(10, 4) = %d, %q, %v; want 10 with an over-subscription warning", w, warn, err)
	}

	// "auto" keeps sweep-mode engines serial and delegates single-point
	// runs to core.AutoWorkers (bounded by GOMAXPROCS, floored at 1).
	if w, _, err := resolveEngineWorkers("auto", 1<<15, true); err != nil || w != 1 {
		t.Errorf("auto in sweep mode = %d, %v; want 1", w, err)
	}
	w, _, err := resolveEngineWorkers("auto", 1<<15, false)
	if err != nil || w != core.AutoWorkers(1<<15) {
		t.Errorf("auto single-point = %d, %v; want core.AutoWorkers", w, err)
	}
	if max := runtime.GOMAXPROCS(0); w < 1 || w > max {
		t.Errorf("auto single-point = %d, outside [1, GOMAXPROCS=%d]", w, max)
	}
	if w, _, err := resolveEngineWorkers("auto", 16, false); err != nil || w != 1 {
		t.Errorf("auto on a 16-router topology = %d, %v; want 1 (below MinDomainNodes)", w, err)
	}

	for _, bad := range []string{"0", "-1", "1.5", "abc", "", "Auto"} {
		if _, _, err := resolveEngineWorkers(bad, 64, false); err == nil {
			t.Errorf("resolveEngineWorkers(%q): want error", bad)
		}
	}
}

func TestParseGrid(t *testing.T) {
	for _, tc := range []struct {
		in      string
		want    []float64
		wantErr bool
	}{
		{in: "0.002,0.004,0.006", want: []float64{0.002, 0.004, 0.006}},
		{in: " 0.002 , 0.004 ", want: []float64{0.002, 0.004}},
		{in: "0.002:0.008:0.002", want: []float64{0.002, 0.004, 0.006, 0.008}},
		// hi not on the grid: stop below it, never overshoot.
		{in: "0.002:0.009:0.004", want: []float64{0.002, 0.006}},
		{in: "0.005:0.005:0.001", want: []float64{0.005}},
		{in: "", wantErr: true},
		{in: "0", wantErr: true},
		{in: "-0.004", wantErr: true},
		{in: "abc", wantErr: true},
		{in: "nan", wantErr: true},
		{in: "0.002,nan", wantErr: true},
		{in: "+Inf", wantErr: true},
		{in: "0.001:nan:0.002", wantErr: true},  // NaN hi would loop forever
		{in: "0.001:+Inf:0.002", wantErr: true}, // Inf hi would loop forever
		{in: "nan:0.01:0.002", wantErr: true},
		{in: "0.001:0.01:nan", wantErr: true},
		{in: "0.01:0.001:0.002", wantErr: true}, // hi below lo
		{in: "0.001:0.01", wantErr: true},
		{in: "0.001:0.01:0.002:9", wantErr: true},
		{in: "0.001:0.01:-0.002", wantErr: true},
	} {
		got, err := parseGrid(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseGrid(%q): want error, got %v", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseGrid(%q): %v", tc.in, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("parseGrid(%q) = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if math.Abs(got[i]-tc.want[i]) > 1e-12 {
				t.Errorf("parseGrid(%q)[%d] = %g, want %g", tc.in, i, got[i], tc.want[i])
			}
		}
	}
}
