package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/sweep"
)

// parseKV parses a comma-separated key=value spec ("addr=:8080,
// checkpoint=coord.jsonl"). Values may contain '=' (only the first one
// splits) and the allowed key set is closed, so a typo fails loudly
// instead of being silently ignored.
func parseKV(flagName, spec string, allowed ...string) (map[string]string, error) {
	kv := map[string]string{}
	for _, pair := range strings.Split(spec, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		key, val, ok := strings.Cut(pair, "=")
		if !ok || key == "" {
			return nil, fmt.Errorf("-%s: bad pair %q (want key=value)", flagName, pair)
		}
		found := false
		for _, a := range allowed {
			if key == a {
				found = true
				break
			}
		}
		if !found {
			sort.Strings(allowed)
			return nil, fmt.Errorf("-%s: unknown key %q (allowed: %s)", flagName, key, strings.Join(allowed, ", "))
		}
		if _, dup := kv[key]; dup {
			return nil, fmt.Errorf("-%s: duplicate key %q", flagName, key)
		}
		kv[key] = val
	}
	return kv, nil
}

// signalCtx is the graceful-shutdown context shared by the service
// modes: SIGTERM/SIGINT cancel it, which drains the worker (finish the
// in-flight point, submit, exit) and shuts the coordinator's listener
// down without dropping journal writes in progress.
func signalCtx() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// runServe is swsim -serve: the long-running coordinator.
//
//	swsim -serve 'addr=:8080,checkpoint=coord.jsonl,lease=15s,retries=3'
func runServe(spec string) {
	kv, err := parseKV("serve", spec, "addr", "checkpoint", "lease", "retries")
	if err != nil {
		fmt.Fprintf(os.Stderr, "swsim: %v\n", err)
		os.Exit(2)
	}
	addr := kv["addr"]
	if addr == "" {
		addr = ":8080"
	}
	opt := coord.ServerOptions{Checkpoint: kv["checkpoint"], Now: time.Now, Log: os.Stderr}
	if opt.Checkpoint == "" {
		fmt.Fprintln(os.Stderr, "swsim: -serve requires checkpoint= (the journal completed records append to)")
		os.Exit(2)
	}
	if v := kv["lease"]; v != "" {
		if opt.LeaseTTL, err = time.ParseDuration(v); err != nil || opt.LeaseTTL <= 0 {
			fmt.Fprintf(os.Stderr, "swsim: -serve: bad lease=%q (want a positive duration like 15s)\n", v)
			os.Exit(2)
		}
	}
	opt.MaxRetries = -1 // default unless retries= says otherwise (0 is meaningful: fail on first expiry)
	if v := kv["retries"]; v != "" {
		if opt.MaxRetries, err = strconv.Atoi(v); err != nil || opt.MaxRetries < 0 {
			fmt.Fprintf(os.Stderr, "swsim: -serve: bad retries=%q (want an integer >= 0)\n", v)
			os.Exit(2)
		}
	}

	s, err := coord.NewServer(opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "swsim: %v\n", err)
		os.Exit(1)
	}
	hs := &http.Server{Addr: addr, Handler: s.Handler()}
	ctx, stop := signalCtx()
	defer stop()
	go func() {
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "swsim: coordinator shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(shutdownCtx)
	}()
	fmt.Fprintf(os.Stderr, "swsim: coordinator listening on %s (journal %s)\n", addr, opt.Checkpoint)
	err = hs.ListenAndServe()
	if cerr := s.Close(); err == nil || errors.Is(err, http.ErrServerClosed) {
		err = cerr
	}
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "swsim: %v\n", err)
		os.Exit(1)
	}
}

// runWorker is swsim -worker: the pull loop that leases points from a
// coordinator and simulates them.
//
//	swsim -worker 'url=http://host:8080,name=w1,exit=drain'
func runWorker(spec string) {
	kv, err := parseKV("worker", spec, "url", "name", "exit", "stall", "engine-workers")
	if err != nil {
		fmt.Fprintf(os.Stderr, "swsim: %v\n", err)
		os.Exit(2)
	}
	if kv["url"] == "" {
		fmt.Fprintln(os.Stderr, "swsim: -worker requires url= (the coordinator address)")
		os.Exit(2)
	}
	name := kv["name"]
	if name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	w := &coord.Worker{Client: coord.NewClient(kv["url"]), Name: name, Log: os.Stderr}
	switch kv["exit"] {
	case "", "never":
	case "drain":
		w.ExitOnDrain = true
	default:
		fmt.Fprintf(os.Stderr, "swsim: -worker: bad exit=%q (want drain or never)\n", kv["exit"])
		os.Exit(2)
	}
	if v := kv["stall"]; v != "" {
		if w.Stall, err = time.ParseDuration(v); err != nil || w.Stall < 0 {
			fmt.Fprintf(os.Stderr, "swsim: -worker: bad stall=%q (want a duration like 5s)\n", v)
			os.Exit(2)
		}
	}
	if v := kv["engine-workers"]; v != "" {
		if w.EngineWorkers, err = strconv.Atoi(v); err != nil || w.EngineWorkers < 0 {
			fmt.Fprintf(os.Stderr, "swsim: -worker: bad engine-workers=%q (want an integer >= 0)\n", v)
			os.Exit(2)
		}
	}
	ctx, stop := signalCtx()
	defer stop()
	n, err := w.Run(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "swsim: worker %s: %v (after %d points)\n", name, err, n)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "swsim: worker %s: done (%d points)\n", name, n)
}

// parseCoordinatorURL parses the -coordinator flag, which accepts
// either a bare URL or a url= spec for symmetry with -serve/-worker.
func parseCoordinatorURL(spec string) (string, error) {
	if !strings.Contains(spec, "=") {
		return spec, nil
	}
	kv, err := parseKV("coordinator", spec, "url")
	if err != nil {
		return "", err
	}
	if kv["url"] == "" {
		return "", fmt.Errorf("-coordinator: empty url")
	}
	return kv["url"], nil
}

// runPlanViaCoordinator submits the plan to a coordinator fleet and
// polls until every point is served from the result cache — the
// fleet-backed drop-in for sweep.Run. SIGTERM/SIGINT abort the wait
// (the fleet keeps computing; a re-run picks the results up from the
// cache).
func runPlanViaCoordinator(spec string, plan sweep.Plan) ([]core.PointResult, error) {
	url, err := parseCoordinatorURL(spec)
	if err != nil {
		return nil, err
	}
	ctx, stop := signalCtx()
	defer stop()
	c := coord.NewClient(url)
	c.Log = os.Stderr
	return c.RunPlan(ctx, plan)
}
