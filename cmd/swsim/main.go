// Command swsim runs one Software-Based routing simulation point and prints
// a result row. The routing algorithm, destination pattern and arrival
// process are all selected by registry spec (-alg, -pattern, -traffic;
// -list enumerates everything available).
//
// Examples:
//
//	swsim -k 8 -n 2 -v 4 -m 32 -lambda 0.006 -faults 3
//	swsim -k 8 -n 3 -v 10 -m 32 -lambda 0.01 -faults 12 -alg adaptive
//	swsim -k 8 -n 2 -v 6 -m 32 -lambda 0.006 -pattern transpose -alg valiant
//	swsim -k 8 -n 2 -v 6 -m 32 -lambda 0.006 -traffic 'burst:on=50,off=200,rate=0.02'
//	swsim -k 8 -n 2 -v 6 -m 32 -lambda 0.006 -pattern 'hotspot:frac=0.1,node=12'
//	swsim -k 8 -n 2 -v 4 -m 32 -lambda 0.006 -workload-out w.csv
//	swsim -k 8 -n 2 -v 4 -m 32 -traffic 'replay:file=w.csv'
//	swsim -k 8 -n 2 -v 10 -m 32 -lambda 0.012 -shape U -warmup 10000 -measure 90000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/trace"
)

func main() {
	var (
		k        = flag.Int("k", 8, "radix (nodes per dimension)")
		n        = flag.Int("n", 2, "dimensions")
		v        = flag.Int("v", 4, "virtual channels per physical channel")
		m        = flag.Int("m", 32, "message length in flits")
		buf      = flag.Int("buf", 2, "per-VC buffer depth in flits")
		lambda   = flag.Float64("lambda", 0.004, "generation rate (messages/node/cycle)")
		alg      = flag.String("alg", "det", "routing algorithm (see -list)")
		adaptive = flag.Bool("adaptive", false, "deprecated: same as -alg adaptive")
		list     = flag.Bool("list", false, "list registered algorithms, patterns and sources, then exit")
		faults   = flag.Int("faults", 0, "random faulty nodes")
		shape    = flag.String("shape", "", "fault region shape: rect|T|plus|L|U (Fig. 5 configurations)")
		pattern  = flag.String("pattern", "uniform", "destination pattern spec (see -list)")
		traf     = flag.String("traffic", "poisson", "arrival process spec (see -list)")
		wlOut    = flag.String("workload-out", "", "capture the generated workload to this CSV file (replay with -traffic 'replay:file=...')")
		warmup   = flag.Int("warmup", 1000, "warm-up messages (unmeasured)")
		measure  = flag.Int("measure", 10000, "measured message deliveries")
		td       = flag.Int64("td", 0, "router decision time (cycles)")
		delta    = flag.Int64("delta", 0, "software re-injection overhead (cycles)")
		seed     = flag.Uint64("seed", 1, "random seed")
		quiet    = flag.Bool("q", false, "print only the CSV row")
		jsonOut  = flag.Bool("json", false, "emit config and results as JSON instead of CSV")
	)
	flag.Parse()

	if *list {
		core.PrintRegistries(os.Stdout, "")
		return
	}

	algName := *alg
	if *adaptive {
		if algExplicit() && algName != "adaptive" {
			fmt.Fprintf(os.Stderr, "swsim: -adaptive conflicts with -alg %s\n", algName)
			os.Exit(2)
		}
		algName = "adaptive"
	}

	cfg := core.DefaultConfig(*k, *n, *lambda)
	cfg.V = *v
	cfg.MsgLen = *m
	cfg.BufDepth = *buf
	cfg.Algorithm = algName
	cfg.Pattern = *pattern
	cfg.Traffic = *traf
	var captured trace.Workload
	if *wlOut != "" {
		cfg.CaptureWorkload = &captured
	}
	cfg.WarmupMessages = *warmup
	cfg.MeasureMessages = *measure
	cfg.Td = *td
	cfg.Delta = *delta
	cfg.Seed = *seed
	cfg.Faults.RandomNodes = *faults
	if *shape != "" {
		spec, ok := fig5Shape(*shape)
		if !ok {
			fmt.Fprintf(os.Stderr, "swsim: unknown shape %q (rect|T|plus|L|U)\n", *shape)
			os.Exit(2)
		}
		cfg.Faults.Shapes = []core.ShapeStamp{{Spec: spec, DimA: 0, DimB: 1}}
	}

	start := time.Now()
	res, err := core.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "swsim: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	if *wlOut != "" {
		f, err := os.Create(*wlOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "swsim: %v\n", err)
			os.Exit(1)
		}
		werr := captured.Write(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "swsim: writing workload: %v\n", werr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "swsim: captured %d workload records to %s\n", captured.Len(), *wlOut)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Config   core.Config
			Results  any
			WallTime string
		}{cfg, res, elapsed.Round(time.Millisecond).String()}); err != nil {
			fmt.Fprintf(os.Stderr, "swsim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if !*quiet {
		fmt.Printf("# %d-ary %d-cube, %s routing, V=%d, M=%d flits, λ=%g, traffic=%s, pattern=%s, faults=%d%s\n",
			*k, *n, algName, *v, *m, *lambda, cfg.TrafficSpec(), cfg.PatternSpec(), *faults, shapeNote(*shape))
		fmt.Printf("# wall time: %v, simulated cycles: %d\n", elapsed.Round(time.Millisecond), res.Cycles)
		fmt.Println("lambda,mean_latency,ci95,p50,p95,p99,throughput,accepted,delivered,queued_fault,queued_via,saturated")
	}
	fmt.Printf("%g,%.2f,%.2f,%.0f,%.0f,%.0f,%.6f,%.4f,%d,%d,%d,%v\n",
		*lambda, res.MeanLatency, res.LatencyCI95, res.P50, res.P95, res.P99,
		res.Throughput, res.AcceptedFraction, res.Delivered, res.QueuedFault, res.QueuedVia, res.Saturated)
}

// algExplicit reports whether -alg was passed on the command line (as
// opposed to holding its default), so the deprecated -adaptive flag can
// refuse to silently override an explicit choice.
func algExplicit() bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "alg" {
			set = true
		}
	})
	return set
}

func fig5Shape(name string) (fault.ShapeSpec, bool) {
	specs := fault.PaperFig5Specs()
	switch name {
	case "rect":
		return specs["rect-shaped"], true
	case "T":
		return specs["T-shaped"], true
	case "plus":
		return specs["Plus-shaped"], true
	case "L":
		return specs["L-shaped"], true
	case "U":
		return specs["U-shaped"], true
	}
	return fault.ShapeSpec{}, false
}

func shapeNote(s string) string {
	if s == "" {
		return ""
	}
	return ", region=" + s
}
