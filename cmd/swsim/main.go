// Command swsim runs Software-Based routing simulation points and prints
// result rows. The topology, routing algorithm, destination pattern and
// arrival process are all selected by registry spec (-topo, -alg,
// -pattern, -traffic; -list enumerates everything available).
//
// Examples:
//
//	swsim -k 8 -n 2 -v 4 -m 32 -lambda 0.006 -faults 3
//	swsim -topo mesh:k=8,n=2 -alg planar-adaptive -v 4 -lambda 0.004
//	swsim -topo hypercube:n=6 -v 4 -lambda 0.004
//	swsim -topo 'torus:k=8,n=2,latmap=lat.csv' -v 4 -lambda 0.004
//	swsim -k 8 -n 3 -v 10 -m 32 -lambda 0.01 -faults 12 -alg adaptive
//	swsim -k 8 -n 2 -v 6 -m 32 -lambda 0.006 -pattern transpose -alg valiant
//	swsim -k 8 -n 2 -v 6 -m 32 -lambda 0.006 -traffic 'burst:on=50,off=200,rate=0.02'
//	swsim -k 8 -n 2 -v 6 -m 32 -lambda 0.006 -pattern 'hotspot:frac=0.1,node=12'
//	swsim -k 8 -n 2 -v 4 -m 32 -lambda 0.006 -workload-out w.csv
//	swsim -k 8 -n 2 -v 4 -m 32 -traffic 'replay:file=w.csv'
//	swsim -k 8 -n 2 -v 10 -m 32 -lambda 0.012 -shape U -warmup 10000 -measure 90000
//	swsim -topo torus:k=32,n=3 -v 4 -lambda 0.0005 -engine-workers 4
//	swsim -k 8 -n 2 -v 4 -lambda 0.004 -faults-schedule 'mtbf:mtbf=20000,mttr=2000'
//	swsim -k 8 -n 2 -v 4 -lambda 0.004 -faults-schedule 'trace:file=events.csv'
//
// -faults-schedule makes the run dynamic: fail/heal transitions from the
// schedule registry apply mid-run on top of -faults, and a second CSV row
// reports the chaos metrics (transitions, re-injections, losses, mean
// rerouting convergence, minimum windowed availability). Dynamic runs
// keep the determinism contract: results are bit-identical at every
// -engine-workers width.
//
// -engine-workers splits one simulation's routers across a phase-barriered
// worker pool; results are bit-identical at every width. The default
// "auto" scales with topology size on single-point runs and stays serial
// in sweep modes, which parallelize across points instead.
//
// With -sweep, swsim runs one point per λ of a grid through the sweep
// subsystem: -checkpoint makes the run resumable after interruption,
// -shard splits it across processes, and -merge combines shard journals:
//
//	swsim -sweep 0.002:0.014:0.002 -k 8 -n 2 -v 4
//	swsim -sweep 0.002:0.014:0.002 -checkpoint sweep.jsonl   # kill and re-run freely
//	swsim -sweep 0.002:0.014:0.002 -shard 0/2 -checkpoint s0.jsonl &
//	swsim -sweep 0.002:0.014:0.002 -shard 1/2 -checkpoint s1.jsonl &
//	swsim -sweep 0.002:0.014:0.002 -checkpoint all.jsonl -merge s0.jsonl,s1.jsonl
//
// -find-sat replaces the λ grid with a bisection auto-search for the
// saturation point (the λ where mean latency crosses -sat-factor times
// the zero-load latency):
//
//	swsim -find-sat -k 8 -n 2 -v 6 -alg adaptive
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/sweep"
	"repro/internal/topology"
	"repro/internal/trace"
)

func main() {
	var (
		k        = flag.Int("k", 8, "radix (nodes per dimension); shorthand for -topo torus:k=...")
		n        = flag.Int("n", 2, "dimensions; shorthand for -topo torus:n=...")
		topo     = flag.String("topo", "", "topology spec from the registry (overrides -k/-n; see -list)")
		v        = flag.Int("v", 4, "virtual channels per physical channel")
		m        = flag.Int("m", 32, "message length in flits")
		buf      = flag.Int("buf", 2, "per-VC buffer depth in flits")
		lambda   = flag.Float64("lambda", 0.004, "generation rate (messages/node/cycle)")
		alg      = flag.String("alg", "det", "routing algorithm (see -list)")
		adaptive = flag.Bool("adaptive", false, "deprecated: same as -alg adaptive")
		list     = flag.Bool("list", false, "list registered topologies, algorithms, patterns and sources, then exit")
		faults   = flag.Int("faults", 0, "random faulty nodes")
		shape    = flag.String("shape", "", "fault region shape: rect|T|plus|L|U (Fig. 5 configurations)")
		sched    = flag.String("faults-schedule", "", "dynamic fault schedule spec: trace:file=<f> or mtbf:mtbf=<c>,mttr=<c> (see -list)")
		pattern  = flag.String("pattern", "uniform", "destination pattern spec (see -list)")
		traf     = flag.String("traffic", "poisson", "arrival process spec (see -list)")
		wlOut    = flag.String("workload-out", "", "capture the generated workload to this CSV file (replay with -traffic 'replay:file=...')")
		warmup   = flag.Int("warmup", 1000, "warm-up messages (unmeasured)")
		measure  = flag.Int("measure", 10000, "measured message deliveries")
		td       = flag.Int64("td", 0, "router decision time (cycles)")
		delta    = flag.Int64("delta", 0, "software re-injection overhead (cycles)")
		seed     = flag.Uint64("seed", 1, "random seed")
		quiet    = flag.Bool("q", false, "print only the CSV row")
		jsonOut  = flag.Bool("json", false, "emit config and results as JSON instead of CSV")

		sweepGrid  = flag.String("sweep", "", "λ sweep instead of a single point: comma list '0.002,0.004' or range 'lo:hi:step'")
		checkpoint = flag.String("checkpoint", "", "JSONL checkpoint journal: completed points are skipped on re-run (sweep/find-sat modes)")
		shardSpec  = flag.String("shard", "", "run only shard i of n ('i/n') of the sweep; journals merge via -merge")
		mergeList  = flag.String("merge", "", "comma-separated shard journals to merge into -checkpoint before running")
		workers    = flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
		engWorkers = flag.String("engine-workers", "auto", "engine worker domains per simulation: an integer >= 1, or 'auto' (scales with topology size for single-point runs; sweep modes keep each engine serial and parallelize across points instead)")
		findSat    = flag.Bool("find-sat", false, "bisection auto-search for the saturation λ instead of a fixed grid")
		satFactor  = flag.Float64("sat-factor", 3, "saturation threshold as a multiple of zero-load latency (with -find-sat)")

		serveSpec  = flag.String("serve", "", "run as a sweep coordinator: 'addr=:8080,checkpoint=coord.jsonl[,lease=15s][,retries=3]' (ignores simulation flags)")
		workerSpec = flag.String("worker", "", "run as a sweep worker: 'url=http://host:8080[,name=w1][,exit=drain|never][,stall=5s][,engine-workers=N]'")
		coordURL   = flag.String("coordinator", "", "with -sweep: submit the sweep to a coordinator fleet instead of running locally ('url=http://host:8080' or a bare URL)")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with 'go tool pprof')")
		memprofile = flag.String("memprofile", "", "write an end-of-run heap profile to this file (inspect with 'go tool pprof')")
	)
	flag.Parse()

	if *list {
		core.PrintRegistries(os.Stdout, "")
		return
	}

	// The service modes are standalone processes: they take no simulation
	// flags (the coordinator never simulates; the worker gets its configs
	// from leased points).
	if *serveSpec != "" && *workerSpec != "" {
		fmt.Fprintln(os.Stderr, "swsim: -serve and -worker are separate processes (start one of each)")
		os.Exit(2)
	}
	if *serveSpec != "" {
		runServe(*serveSpec)
		return
	}
	if *workerSpec != "" {
		runWorker(*workerSpec)
		return
	}

	algName := *alg
	if *adaptive {
		if algExplicit() && algName != "adaptive" {
			fmt.Fprintf(os.Stderr, "swsim: -adaptive conflicts with -alg %s\n", algName)
			os.Exit(2)
		}
		algName = "adaptive"
	}

	cfg := core.DefaultConfig(*k, *n, *lambda)
	cfg.Topology = *topo
	cfg.V = *v
	cfg.MsgLen = *m
	cfg.BufDepth = *buf
	cfg.Algorithm = algName
	cfg.Pattern = *pattern
	cfg.Traffic = *traf
	var captured trace.Workload
	if *wlOut != "" {
		cfg.CaptureWorkload = &captured
	}
	cfg.WarmupMessages = *warmup
	cfg.MeasureMessages = *measure
	cfg.Td = *td
	cfg.Delta = *delta
	cfg.Seed = *seed
	cfg.Faults.RandomNodes = *faults
	cfg.FaultSchedule = *sched
	if *shape != "" {
		spec, ok := fig5Shape(*shape)
		if !ok {
			fmt.Fprintf(os.Stderr, "swsim: unknown shape %q (rect|T|plus|L|U)\n", *shape)
			os.Exit(2)
		}
		cfg.Faults.Shapes = []core.ShapeStamp{{Spec: spec, DimA: 0, DimB: 1}}
	}

	// Validate the flag combination fully before -merge mutates the
	// checkpoint journal: a rejected invocation must have no side effects.
	shard, err := sweep.ParseShard(*shardSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "swsim: %v\n", err)
		os.Exit(2)
	}
	if *wlOut != "" && (*findSat || *sweepGrid != "") {
		fmt.Fprintln(os.Stderr, "swsim: -workload-out applies to single-point runs only")
		os.Exit(2)
	}
	if *mergeList != "" && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "swsim: -merge requires -checkpoint (the journal to merge into)")
		os.Exit(2)
	}
	if shard.Count > 1 && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "swsim: -shard requires -checkpoint (without a journal the shard's results cannot be merged)")
		os.Exit(2)
	}
	if *findSat && *sweepGrid != "" {
		fmt.Fprintln(os.Stderr, "swsim: -find-sat and -sweep are mutually exclusive (the search picks its own λ probes)")
		os.Exit(2)
	}
	if *coordURL != "" {
		if *sweepGrid == "" {
			fmt.Fprintln(os.Stderr, "swsim: -coordinator applies to -sweep mode only (the fleet runs grid points)")
			os.Exit(2)
		}
		if *checkpoint != "" || shard.Count > 1 || *mergeList != "" {
			fmt.Fprintln(os.Stderr, "swsim: -coordinator conflicts with -checkpoint/-shard/-merge (the coordinator owns the journal; its workers are the shards)")
			os.Exit(2)
		}
	}
	if *findSat && shard.Count > 1 {
		fmt.Fprintln(os.Stderr, "swsim: -find-sat cannot be sharded (each probe depends on the previous one); run it unsharded with -checkpoint to make it resumable")
		os.Exit(2)
	}
	// Sweep-only flags given without a sweep mode would be silently
	// ignored by the single-point path — reject them instead, so a
	// forgotten -sweep cannot burn a shard's compute without journalling
	// anything. (-checkpoint without -sweep is still valid alongside
	// -merge: that is the merge-and-exit flow.)
	if *sweepGrid == "" && !*findSat {
		if shard.Count > 1 {
			fmt.Fprintln(os.Stderr, "swsim: -shard applies to -sweep mode only (did you forget -sweep?)")
			os.Exit(2)
		}
		if *checkpoint != "" && *mergeList == "" {
			fmt.Fprintln(os.Stderr, "swsim: -checkpoint applies to -sweep, -find-sat and -merge modes only (did you forget -sweep?)")
			os.Exit(2)
		}
	}
	var grid []float64
	if *sweepGrid != "" {
		grid, err = parseGrid(*sweepGrid)
		if err != nil {
			fmt.Fprintf(os.Stderr, "swsim: %v\n", err)
			os.Exit(2)
		}
	}
	topoNet, err := topology.NewNetwork(cfg.TopologySpec())
	if err != nil {
		fmt.Fprintf(os.Stderr, "swsim: %v\n", err)
		os.Exit(2)
	}
	ew, warn, err := resolveEngineWorkers(*engWorkers, topoNet.Nodes(), *findSat || *sweepGrid != "")
	if err != nil {
		fmt.Fprintf(os.Stderr, "swsim: %v\n", err)
		os.Exit(2)
	}
	if warn != "" {
		fmt.Fprintf(os.Stderr, "swsim: warning: %s\n", warn)
	}
	cfg.Workers = ew
	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "swsim: %v\n", err)
		os.Exit(2)
	}
	defer stopProfiles()

	opt := sweep.Options{Workers: *workers, Checkpoint: *checkpoint, Shard: shard, Log: os.Stderr}
	if *mergeList != "" {
		total, err := sweep.MergeJournals(*checkpoint, strings.Split(*mergeList, ",")...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "swsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "swsim: merged into %s (%d distinct points)\n", *checkpoint, total)
		if *sweepGrid == "" && !*findSat {
			return
		}
	}
	if *findSat {
		runFindSat(cfg, opt, *satFactor, *quiet, *jsonOut)
		return
	}
	if *sweepGrid != "" {
		runSweepGrid(cfg, grid, opt, *coordURL, *quiet, *jsonOut)
		return
	}

	start := time.Now()
	res, err := core.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "swsim: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	if *wlOut != "" {
		f, err := os.Create(*wlOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "swsim: %v\n", err)
			os.Exit(1)
		}
		werr := captured.Write(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "swsim: writing workload: %v\n", werr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "swsim: captured %d workload records to %s\n", captured.Len(), *wlOut)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Config   core.Config
			Results  any
			WallTime string
		}{cfg, res, elapsed.Round(time.Millisecond).String()}); err != nil {
			fmt.Fprintf(os.Stderr, "swsim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if !*quiet {
		fmt.Printf("# %s, %s routing, V=%d, M=%d flits, λ=%g, traffic=%s, pattern=%s, faults=%d%s\n",
			cfg.TopologySpec(), algName, *v, *m, *lambda, cfg.TrafficSpec(), cfg.PatternSpec(), *faults, shapeNote(*shape))
		fmt.Printf("# wall time: %v, simulated cycles: %d\n", elapsed.Round(time.Millisecond), res.Cycles)
		fmt.Println(csvHeader)
	}
	fmt.Println(csvRow(*lambda, res))
	if cfg.FaultSchedule != "" {
		if !*quiet {
			fmt.Println(chaosHeader)
		}
		fmt.Println(chaosRow(res))
	}
}

// startProfiles begins CPU profiling and arranges the end-of-run heap
// profile, both optional (empty path = off). The returned stop function
// flushes them; main defers it, so the profiles survive every normal exit
// path — error paths that os.Exit skip the flush, as in go test. The heap
// profile is taken after a forced GC so it shows live retained memory (the
// arena, link tables, buffers), not collected garbage.
func startProfiles(cpu, mem string) (func(), error) {
	var cpuFile *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "swsim: closing cpu profile: %v\n", err)
			}
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "swsim: %v\n", err)
				return
			}
			runtime.GC()
			werr := pprof.WriteHeapProfile(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				fmt.Fprintf(os.Stderr, "swsim: writing heap profile: %v\n", werr)
			}
		}
	}, nil
}

// csvHeader and csvRow define the one-row-per-point output format shared
// by single-point and sweep modes, so a sharded-and-merged sweep's
// output diffs clean against a single-process run.
const csvHeader = "lambda,mean_latency,ci95,p50,p95,p99,throughput,accepted,delivered,queued_fault,queued_via,saturated"

func csvRow(lambda float64, res metrics.Results) string {
	return fmt.Sprintf("%g,%.2f,%.2f,%.0f,%.0f,%.0f,%.6f,%.4f,%d,%d,%d,%v",
		lambda, res.MeanLatency, res.LatencyCI95, res.P50, res.P95, res.P99,
		res.Throughput, res.AcceptedFraction, res.Delivered, res.QueuedFault, res.QueuedVia, res.Saturated)
}

// chaosHeader and chaosRow report the dynamic-fault metrics of a
// scheduled run as a second CSV row. Like the main row the values are a
// pure function of Results, so worker-count comparisons diff clean.
const chaosHeader = "transitions,reinjected,lost,mean_convergence,min_availability"

func chaosRow(res metrics.Results) string {
	return fmt.Sprintf("%d,%d,%d,%.1f,%.4f",
		res.Transitions, res.Reinjected, res.Lost, res.MeanConvergence, res.MinAvailability)
}

// parseGrid parses the -sweep argument: either an explicit comma list
// ("0.002,0.004,0.006") or an inclusive range with step ("lo:hi:step").
func parseGrid(s string) ([]float64, error) {
	if strings.Contains(s, ":") {
		lo, hi, step, err := parseRange(s)
		if err != nil {
			return nil, err
		}
		var grid []float64
		// Generate from integer multiples so float accumulation error
		// cannot drop or duplicate the final point; the epsilon only
		// absorbs rounding, never admits a point past hi.
		for i := 0; ; i++ {
			l := lo + float64(i)*step
			if l > hi+step*1e-9 {
				break
			}
			grid = append(grid, l)
		}
		return grid, nil
	}
	var grid []float64
	for _, part := range strings.Split(s, ",") {
		l, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		// Negated comparison so NaN (every comparison false) is rejected.
		if err != nil || !(l > 0) || math.IsInf(l, 1) {
			return nil, fmt.Errorf("bad sweep value %q (want a positive rate)", part)
		}
		grid = append(grid, l)
	}
	return grid, nil
}

func parseRange(s string) (lo, hi, step float64, err error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("bad sweep range %q (want lo:hi:step)", s)
	}
	var vals [3]float64
	for i, p := range parts {
		v, perr := strconv.ParseFloat(strings.TrimSpace(p), 64)
		// Negated comparisons reject NaN; IsInf rejects +Inf bounds that
		// would otherwise generate points forever.
		if perr != nil || !(v > 0) || math.IsInf(v, 1) {
			return 0, 0, 0, fmt.Errorf("bad sweep range %q (want positive finite lo:hi:step)", s)
		}
		vals[i] = v
	}
	if vals[1] < vals[0] {
		return 0, 0, 0, fmt.Errorf("bad sweep range %q (hi below lo)", s)
	}
	return vals[0], vals[1], vals[2], nil
}

// runSweepGrid runs one point per λ of the grid through the sweep
// subsystem and prints rows in grid order. Points owned by other shards
// (and absent from the checkpoint) are omitted from the output. With a
// coordinator URL the plan is submitted to the fleet instead of running
// locally; point identity is the content digest, so the rows are
// byte-identical either way.
func runSweepGrid(base core.Config, grid []float64, opt sweep.Options, coordURL string, quiet, jsonOut bool) {
	plan := sweep.Plan{Name: "swsim", Points: make([]core.Point, len(grid))}
	for i, l := range grid {
		cfg := base
		cfg.Lambda = l
		plan.Points[i] = core.Point{Label: fmt.Sprintf("swsim|l%g", l), Config: cfg}
	}
	start := time.Now()
	var results []core.PointResult
	var err error
	if coordURL != "" {
		results, err = runPlanViaCoordinator(coordURL, plan)
	} else {
		results, err = sweep.Run(plan, opt)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "swsim: %v\n", err)
		os.Exit(1)
	}
	if !quiet && !jsonOut {
		fmt.Printf("# %s, %s routing, V=%d, M=%d flits, traffic=%s, pattern=%s, faults=%d: %d-point sweep (wall time %v)\n",
			base.TopologySpec(), base.AlgorithmName(), base.V, base.MsgLen,
			base.TrafficSpec(), base.PatternSpec(), base.Faults.RandomNodes,
			len(grid), time.Since(start).Round(time.Millisecond))
		fmt.Println(csvHeader)
	}
	enc := json.NewEncoder(os.Stdout)
	failed := 0
	for i, pr := range results {
		if errors.Is(pr.Err, sweep.ErrSkipped) {
			continue
		}
		if pr.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "swsim: point %s: %v\n", pr.Label, pr.Err)
			continue
		}
		if jsonOut {
			if err := enc.Encode(struct {
				Config  core.Config
				Results metrics.Results
			}{pr.Config, pr.Results}); err != nil {
				fmt.Fprintf(os.Stderr, "swsim: %v\n", err)
				os.Exit(1)
			}
			continue
		}
		fmt.Println(csvRow(grid[i], pr.Results))
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// runFindSat bisects for the saturation λ of the configured point.
func runFindSat(base core.Config, opt sweep.Options, factor float64, quiet, jsonOut bool) {
	sat, err := sweep.FindSaturation("swsim", base, sweep.SaturationOptions{
		Factor: factor,
		Run:    opt,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "swsim: %v\n", err)
		os.Exit(1)
	}
	if !sat.Converged {
		fmt.Fprintf(os.Stderr, "swsim: warning: probe budget exhausted; bracket [%.6g, %.6g] is wider than requested\n", sat.Lo, sat.Hi)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sat); err != nil {
			fmt.Fprintf(os.Stderr, "swsim: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if !quiet {
		fmt.Printf("# %s, %s routing, V=%d, M=%d flits: saturation search (%d probes)\n",
			base.TopologySpec(), base.AlgorithmName(), base.V, base.MsgLen, len(sat.Probes))
		for _, pr := range sat.Probes {
			note := ""
			if pr.Results.Saturated {
				note = " (saturated)"
			}
			fmt.Printf("#   probe λ=%-10.6g latency %.1f%s\n", pr.Config.Lambda, pr.Results.MeanLatency, note)
		}
		fmt.Println("saturation_lambda,bracket_lo,bracket_hi,zero_load_latency,threshold")
	}
	fmt.Printf("%.6g,%.6g,%.6g,%.2f,%.2f\n", sat.Lambda, sat.Lo, sat.Hi, sat.ZeroLoad, sat.Threshold)
}

// resolveEngineWorkers turns the -engine-workers spec into a concrete
// Config.Workers value. "auto" resolves to core.AutoWorkers for a
// single-point run; sweep and find-sat modes resolve it to 1, because
// they already saturate the machine by running engines in parallel
// across points, and nested parallelism would just add barrier
// overhead. An explicit integer applies in every mode, must be >= 1,
// and earns a warning (not an error — the engine clamps to one domain
// per router) when it exceeds the router count.
func resolveEngineWorkers(spec string, nodes int, multiPoint bool) (workers int, warn string, err error) {
	if spec == "auto" {
		if multiPoint {
			return 1, "", nil
		}
		return core.AutoWorkers(nodes), "", nil
	}
	w, perr := strconv.Atoi(spec)
	if perr != nil || w < 1 {
		return 0, "", fmt.Errorf("bad -engine-workers %q (want an integer >= 1, or 'auto')", spec)
	}
	if w > nodes {
		warn = fmt.Sprintf("-engine-workers %d exceeds the %d-router topology; the engine will clamp to %d single-router domains", w, nodes, nodes)
	}
	return w, warn, nil
}

// algExplicit reports whether -alg was passed on the command line (as
// opposed to holding its default), so the deprecated -adaptive flag can
// refuse to silently override an explicit choice.
func algExplicit() bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "alg" {
			set = true
		}
	})
	return set
}

func fig5Shape(name string) (fault.ShapeSpec, bool) {
	specs := fault.PaperFig5Specs()
	switch name {
	case "rect":
		return specs["rect-shaped"], true
	case "T":
		return specs["T-shaped"], true
	case "plus":
		return specs["Plus-shaped"], true
	case "L":
		return specs["L-shaped"], true
	case "U":
		return specs["U-shaped"], true
	}
	return fault.ShapeSpec{}, false
}

func shapeNote(s string) string {
	if s == "" {
		return ""
	}
	return ", region=" + s
}
