// Command analyze runs the two analysis tools of the library:
//
//   - `-mode deadlock` builds the channel dependency graph of the
//     deterministic routing relation (the paper's §4 argument) for a given
//     topology and fault count and reports acyclicity with a witness on
//     failure;
//
//   - `-mode model` compares the analytical latency model (the paper's
//     stated future work, implemented in internal/analytic) against the
//     flit-level simulator across a traffic sweep;
//
//   - `-mode livelock` exhaustively walks every healthy (src, dst) pair
//     under a fault configuration, for every algorithm in the routing
//     registry, and reports the worst-case number of software stops — the
//     empirical content of §4's livelock-freedom claim.
//
// Examples:
//
//	analyze -mode deadlock -k 8 -n 2 -faults 5
//	analyze -mode model -k 8 -n 2 -v 4 -m 32 -faults 3
//	analyze -mode livelock -k 8 -n 2 -faults 8 -seed 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/deadlock"
	"repro/internal/fault"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
)

func main() {
	var (
		mode    = flag.String("mode", "deadlock", "analysis: deadlock|model")
		k       = flag.Int("k", 8, "radix")
		n       = flag.Int("n", 2, "dimensions")
		v       = flag.Int("v", 4, "virtual channels")
		m       = flag.Int("m", 32, "message length (flits)")
		faults  = flag.Int("faults", 0, "random faulty nodes")
		seed    = flag.Uint64("seed", 1, "seed")
		measure = flag.Int("measure", 5000, "measured messages per simulated point (model mode)")
	)
	flag.Parse()

	switch *mode {
	case "deadlock":
		analyzeDeadlock(*k, *n, *faults, *seed)
	case "model":
		analyzeModel(*k, *n, *v, *m, *faults, *seed, *measure)
	case "livelock":
		analyzeLivelock(*k, *n, *v, *m, *faults, *seed)
	default:
		fmt.Fprintf(os.Stderr, "analyze: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

func analyzeDeadlock(k, n, nf int, seed uint64) {
	t := topology.New(k, n)
	var healthy func(topology.NodeID) bool
	if nf > 0 {
		fs, err := fault.Random(t, nf, rng.New(seed), fault.DefaultRandomOptions())
		if err != nil {
			fmt.Fprintf(os.Stderr, "analyze: %v\n", err)
			os.Exit(1)
		}
		healthy = func(id topology.NodeID) bool { return !fs.NodeFaulty(id) }
		fmt.Printf("faulty nodes: %v\n", fs.FaultyNodes())
	}
	g, err := deadlock.BuildEcube(t, healthy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "analyze: %v\n", err)
		os.Exit(1)
	}
	vtx, edges := g.Size()
	fmt.Printf("%v: extended channel dependency graph has %d vertices, %d edges\n", t, vtx, edges)
	if cyc := g.Cycle(); cyc != nil {
		fmt.Printf("CYCLE FOUND (deadlock possible): %v\n", cyc)
		os.Exit(1)
	}
	fmt.Println("acyclic: the deterministic routing relation is deadlock-free (paper §4)")
}

func analyzeLivelock(k, n, v, m, nf int, seed uint64) {
	t := topology.New(k, n)
	fs := fault.NewSet(t)
	if nf > 0 {
		var err error
		fs, err = fault.Random(t, nf, rng.New(seed), fault.DefaultRandomOptions())
		if err != nil {
			fmt.Fprintf(os.Stderr, "analyze: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("faulty nodes: %v\n", fs.FaultyNodes())
	}
	for _, info := range routing.Algorithms() {
		if !info.Supports(t.Kind()) {
			fmt.Printf("%-18s (skipped: %s-only)\n", info.Name+":", strings.Join(info.Topologies, "/"))
			continue
		}
		alg, err := routing.New(info.Name, t, fs, max(v, info.MinV))
		if err != nil {
			fmt.Fprintf(os.Stderr, "analyze: %v\n", err)
			os.Exit(1)
		}
		rep := routing.AnalyzeLivelock(alg, m, 0)
		fmt.Printf("%-18s %v\n", info.Name+":", rep)
		if rep.Undelivered > 0 {
			fmt.Println("LIVELOCK/DISCONNECTION SUSPECTED: some pairs undelivered")
			os.Exit(1)
		}
	}
	fmt.Println("all pairs delivered with bounded software stops (livelock-free, §4)")
}

func analyzeModel(k, n, v, m, nf int, seed uint64, measure int) {
	fmt.Printf("analytical model vs flit-level simulation, %d-ary %d-cube, V=%d, M=%d, nf=%d\n", k, n, v, m, nf)
	fmt.Printf("%-10s%14s%14s%12s\n", "lambda", "model", "simulation", "rel.err")
	mdl := analytic.Model{K: k, N: n, V: v, M: m, Nf: nf}
	fmt.Printf("model saturation estimate: λ ≈ %.4f\n", mdl.SaturationRate())
	for _, lambda := range []float64{0.001, 0.002, 0.004, 0.006, 0.008, 0.010, 0.012} {
		mdl.Lambda = lambda
		modelLat, err := mdl.MeanLatency()
		modelCell := "sat"
		if err == nil {
			modelCell = fmt.Sprintf("%.1f", modelLat)
		}
		cfg := core.DefaultConfig(k, n, lambda)
		cfg.V = v
		cfg.MsgLen = m
		cfg.Faults.RandomNodes = nf
		cfg.Seed = seed
		cfg.WarmupMessages = measure / 10
		cfg.MeasureMessages = measure
		res, rerr := core.Run(cfg)
		simCell := "err"
		if rerr == nil {
			if res.Saturated {
				simCell = fmt.Sprintf("%.0f*", res.MeanLatency)
			} else {
				simCell = fmt.Sprintf("%.1f", res.MeanLatency)
			}
		}
		rel := ""
		if err == nil && rerr == nil && !res.Saturated && res.MeanLatency > 0 {
			rel = fmt.Sprintf("%+.0f%%", (modelLat-res.MeanLatency)/res.MeanLatency*100)
		}
		fmt.Printf("%-10g%14s%14s%12s\n", lambda, modelCell, simCell, rel)
	}
}
