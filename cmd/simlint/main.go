// Command simlint runs the first-party analyzer suite (internal/lint) that
// statically enforces the simulator's determinism, arena and registry
// contracts: maprange, rngpurity, reflife, registerinit, phasepurity.
//
// Standalone (the usual way — whole-build view, cross-package duplicate
// detection included):
//
//	go run ./cmd/simlint ./...
//
// As a vet tool (per-package units driven by the go command, sharing go
// vet's caching and test-file handling):
//
//	go build -o simlint ./cmd/simlint
//	go vet -vettool=$PWD/simlint ./...
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	// The go command drives vet tools through a tiny protocol: -V=full
	// for the tool fingerprint, -flags for supported flags, then one
	// invocation per package with the path to a JSON config file.
	if len(os.Args) == 2 {
		switch {
		case os.Args[1] == "-V=full" || os.Args[1] == "--V=full":
			// Fingerprint for cmd/go's tool ID cache: a "devel" tool must
			// report a buildID, which for a vet tool is a content hash of
			// its own executable (same scheme as unitchecker's).
			fmt.Printf("simlint version devel buildID=%s\n", selfID())
			return
		case os.Args[1] == "-flags" || os.Args[1] == "--flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(os.Args[1], ".cfg"):
			os.Exit(vetUnit(os.Args[1]))
		}
	}
	os.Exit(standalone(os.Args[1:]))
}

// selfID returns a content hash of the running executable, so go vet's
// result cache invalidates whenever the tool is rebuilt.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

func standalone(args []string) int {
	fs := flag.NewFlagSet("simlint", flag.ExitOnError)
	var (
		list    = fs.Bool("list", false, "list the analyzers and exit")
		only    = fs.String("only", "", "comma-separated subset of analyzers to run")
		pkgpath = fs.String("pkgpath", "", "treat the arguments as Go files forming one package with this import path (for fixtures and injection tests)")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: simlint [flags] [packages]\n\nStatically enforces the determinism, arena and registry contracts.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(n)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
				delete(keep, a.Name)
			}
		}
		for n := range keep {
			fmt.Fprintf(os.Stderr, "simlint: unknown analyzer %q\n", n)
			return 2
		}
		analyzers = sel
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := lint.NewLoader()
	var (
		pkgs []*lint.Package
		err  error
	)
	if *pkgpath != "" {
		var pkg *lint.Package
		pkg, err = loader.LoadFiles(*pkgpath, patterns...)
		pkgs = []*lint.Package{pkg}
	} else {
		pkgs, err = loader.Load(patterns...)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 2
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
