package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

// vetConfig is the JSON unit description the go command hands a vet tool —
// the same schema golang.org/x/tools/go/analysis/unitchecker consumes.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes one package unit described by a vet .cfg file and
// returns the process exit code. Type information for imports comes from
// the export data the go command already built (cfg.PackageFile), read by
// the standard library's gc importer — no reparsing of dependencies.
func vetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "simlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// The go command requires the facts output file to exist even though
	// this suite exchanges no facts between units.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			return 2
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: &vetImporter{cfg: &cfg, fset: fset}}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "simlint: typecheck %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	pkg := &lint.Package{Path: basePath(cfg.ImportPath), Fset: fset, Files: files, Types: tpkg, Info: info}
	diags, err := lint.Run([]*lint.Package{pkg}, lint.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 2
	}
	// The go command compiles in-package test files into a variant unit
	// ("pkg [pkg.test]"); the contracts cover shipped code only, so
	// findings inside _test.go files are dropped here the same way the
	// standalone driver never loads them.
	n := 0
	for _, d := range diags {
		if strings.HasSuffix(d.Pos.Filename, "_test.go") {
			continue
		}
		fmt.Fprintln(os.Stderr, d)
		n++
	}
	if n > 0 {
		return 1
	}
	return 0
}

// basePath strips the go command's test-variant suffix ("pkg [pkg.test]")
// so analyzer package scoping sees the real import path.
func basePath(importPath string) string {
	if i := strings.Index(importPath, " ["); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

// vetImporter resolves imports through the unit's vendor/test-variant
// ImportMap and reads type information from the export data files the go
// command lists in PackageFile.
type vetImporter struct {
	cfg  *vetConfig
	fset *token.FileSet
	base types.ImporterFrom
}

func (v *vetImporter) Import(path string) (*types.Package, error) {
	if v.base == nil {
		lookup := func(path string) (io.ReadCloser, error) {
			file, ok := v.cfg.PackageFile[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q in vet config", path)
			}
			return os.Open(file)
		}
		v.base = importer.ForCompiler(v.fset, v.cfg.Compiler, lookup).(types.ImporterFrom)
	}
	if mapped, ok := v.cfg.ImportMap[path]; ok {
		path = mapped
	}
	return v.base.ImportFrom(path, v.cfg.Dir, 0)
}
