package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildSimlint compiles the tool once per test binary.
func buildSimlint(t *testing.T) string {
	t.Helper()
	exe := filepath.Join(t.TempDir(), "simlint")
	cmd := exec.Command("go", "build", "-o", exe, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/simlint: %v\n%s", err, out)
	}
	return exe
}

// TestDoctoredViolationFails is the analyzer suite's injected-regression
// check (the analogue of benchdiff's): a file with an unordered map
// iteration, type-checked as part of the determinism-critical
// internal/network package, must fail simlint with exit status 1 and name
// the maprange analyzer.
func TestDoctoredViolationFails(t *testing.T) {
	exe := buildSimlint(t)
	doctored := filepath.Join(t.TempDir(), "doctored.go")
	src := `package network

func leakOrder(m map[int]int, sink func(int)) {
	for k := range m {
		sink(k)
	}
}
`
	if err := os.WriteFile(doctored, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-pkgpath", "repro/internal/network", doctored)
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want exit error from doctored run, got err=%v\n%s", err, out)
	}
	if code := ee.ExitCode(); code != 1 {
		t.Fatalf("doctored violation: want exit 1, got %d\n%s", code, out)
	}
	if !strings.Contains(string(out), "maprange") {
		t.Fatalf("doctored violation output does not mention maprange:\n%s", out)
	}
}

// TestCleanFileExitsZero: the same file is clean once the iteration is
// removed, and clean runs exit 0.
func TestCleanFileExitsZero(t *testing.T) {
	exe := buildSimlint(t)
	clean := filepath.Join(t.TempDir(), "clean.go")
	src := `package network

func noMaps(s []int, sink func(int)) {
	for _, v := range s {
		sink(v)
	}
}
`
	if err := os.WriteFile(clean, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-pkgpath", "repro/internal/network", clean)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("clean run: %v\n%s", err, out)
	}
}

// TestRealTreeIsClean runs the shipped suite over the whole module — the
// same gate the simlint CI job applies. A regression here means a contract
// violation landed without a sorted rewrite or a justified ignore.
func TestRealTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree typecheck is slow; run without -short")
	}
	exe := buildSimlint(t)
	cmd := exec.Command(exe, "./...")
	cmd.Dir = moduleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("simlint ./... on the real tree failed: %v\n%s", err, out)
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(strings.TrimSpace(string(out)))
}
