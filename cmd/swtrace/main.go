// Command swtrace follows a single message through a faulted network and
// prints its complete event history: injection, every hop, absorptions,
// via stops, re-injections and delivery. It is the debugging lens onto the
// Software-Based algorithm's behaviour around a specific fault pattern.
//
//	swtrace -k 8 -n 2 -faults 5 -seed 4 -src 0,0 -dst 5,5
//	swtrace -k 8 -n 2 -shape U -src 0,3 -dst 4,3 -alg adaptive
//	swtrace -topo mesh:k=8,n=2 -alg planar-adaptive -faults 4 -src 0,0 -dst 7,7
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/message"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/viz"
)

func main() {
	var (
		k        = flag.Int("k", 8, "radix; shorthand for -topo torus:k=...")
		n        = flag.Int("n", 2, "dimensions; shorthand for -topo torus:n=...")
		topo     = flag.String("topo", "", "topology spec from the registry (overrides -k/-n; see -list)")
		v        = flag.Int("v", 4, "virtual channels")
		m        = flag.Int("m", 16, "message length (flits)")
		faults   = flag.Int("faults", 0, "random faulty nodes")
		shape    = flag.String("shape", "", "stamp a Fig. 5 region instead: rect|T|plus|L|U")
		seed     = flag.Uint64("seed", 1, "seed for fault placement")
		srcFlag  = flag.String("src", "0,0", "source coordinates, comma-separated")
		dstFlag  = flag.String("dst", "", "destination coordinates (required)")
		algFlag  = flag.String("alg", "det", "routing algorithm from the registry")
		adaptive = flag.Bool("adaptive", false, "deprecated: same as -alg adaptive")
		list     = flag.Bool("list", false, "list registered topologies, algorithms, patterns and sources, then exit")
	)
	flag.Parse()

	if *list {
		core.PrintRegistries(os.Stdout, "swsim ")
		return
	}

	spec := *topo
	if spec == "" {
		spec = fmt.Sprintf("torus:k=%d,n=%d", *k, *n)
	}
	t, err := topology.NewNetwork(spec)
	if err != nil {
		fatal(err)
	}
	src, err := parseCoords(t, *srcFlag)
	if err != nil {
		fatal(err)
	}
	dst, err := parseCoords(t, *dstFlag)
	if err != nil {
		fatal(fmt.Errorf("need -dst: %w", err))
	}

	fs := fault.NewSet(t)
	switch {
	case *shape != "":
		specs := fault.PaperFig5Specs()
		name := map[string]string{"rect": "rect-shaped", "T": "T-shaped", "plus": "Plus-shaped", "L": "L-shaped", "U": "U-shaped"}[*shape]
		spec, ok := specs[name]
		if !ok {
			fatal(fmt.Errorf("unknown shape %q", *shape))
		}
		if _, err := fault.StampShape(fs, 0, 0, 1, spec); err != nil {
			fatal(err)
		}
	case *faults > 0:
		fs, err = fault.Random(t, *faults, rng.New(*seed), fault.RandomOptions{
			KeepConnected: true, Avoid: []topology.NodeID{src, dst},
		})
		if err != nil {
			fatal(err)
		}
	}
	if fs.NodeFaulty(src) || fs.NodeFaulty(dst) {
		fatal(fmt.Errorf("source or destination is faulty"))
	}

	algName := *algFlag
	if *adaptive {
		algSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "alg" {
				algSet = true
			}
		})
		if algSet && algName != "adaptive" {
			fatal(fmt.Errorf("-adaptive conflicts with -alg %s", algName))
		}
		algName = "adaptive"
	}
	alg, err := routing.New(algName, t, fs, *v)
	if err != nil {
		fatal(err)
	}
	mode := alg.BaseMode()

	if t.N() == 2 {
		fmt.Print(viz.RenderPlane(fs, 0, 0, 1))
	}
	fmt.Print(viz.RenderRegions(fs))
	fmt.Printf("tracing %s -> %s (%s, M=%d, V=%d)\n\n",
		t.FormatNode(src), t.FormatNode(dst), mode, *m, *v)

	rec := trace.NewRecorder()
	col := metrics.NewCollector(0)
	p := network.DefaultParams(*v)
	p.Tracer = rec
	nw := network.New(t, fs, alg, nil, col, p, rng.New(*seed))
	msg := message.New(0, src, dst, *m, t.N(), mode, 0)
	col.Generated(msg)
	nw.Enqueue(src, msg)
	for msg.DeliveredAt < 0 && nw.Now() < 1_000_000 {
		nw.Step()
	}
	if msg.DeliveredAt < 0 {
		fatal(fmt.Errorf("message not delivered within 1M cycles"))
	}
	fmt.Print(rec.Render(t, 0))
	fmt.Printf("\nlatency: %d cycles (minimal distance %d, length %d flits, %d absorption(s))\n",
		msg.DeliveredAt-msg.CreatedAt, t.Distance(src, dst), *m, msg.Absorptions)
}

func parseCoords(t topology.Network, s string) (topology.NodeID, error) {
	if s == "" {
		return 0, fmt.Errorf("empty coordinates")
	}
	parts := strings.Split(s, ",")
	if len(parts) != t.N() {
		return 0, fmt.Errorf("got %d coordinates, topology has %d dimensions", len(parts), t.N())
	}
	coords := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return 0, fmt.Errorf("bad coordinate %q", p)
		}
		coords[i] = v
	}
	return t.FromCoords(coords), nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "swtrace: %v\n", err)
	os.Exit(1)
}
