// Command faultviz renders fault configurations of a 2-D torus plane as
// ASCII art (Fig. 1 of the paper), with coalesced-region summaries.
//
//	faultviz -k 16 -shape U -a 4 -b 5
//	faultviz -k 8 -random 5 -seed 3
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/fault"
	"repro/internal/rng"
	"repro/internal/topology"
	"repro/internal/viz"
)

func main() {
	var (
		k      = flag.Int("k", 16, "radix of the 2-D torus")
		shape  = flag.String("shape", "", "shape: bar|doublebar|rect|L|U|T|plus|H")
		a      = flag.Int("a", 4, "shape parameter A")
		b      = flag.Int("b", 4, "shape parameter B")
		th     = flag.Int("t", 0, "plus-shape thickness (0 = 1)")
		ax     = flag.Int("ax", 2, "anchor coordinate in dim 0")
		ay     = flag.Int("ay", 2, "anchor coordinate in dim 1")
		random = flag.Int("random", 0, "random faulty nodes instead of a shape")
		seed   = flag.Uint64("seed", 1, "seed for random placement")
	)
	flag.Parse()

	t := topology.New(*k, 2)
	fs := fault.NewSet(t)
	switch {
	case *random > 0:
		var err error
		fs, err = fault.Random(t, *random, rng.New(*seed), fault.DefaultRandomOptions())
		if err != nil {
			fmt.Fprintf(os.Stderr, "faultviz: %v\n", err)
			os.Exit(1)
		}
	case *shape != "":
		sh, ok := shapeByName(*shape)
		if !ok {
			fmt.Fprintf(os.Stderr, "faultviz: unknown shape %q\n", *shape)
			os.Exit(2)
		}
		spec := fault.ShapeSpec{Shape: sh, A: *a, B: *b, T: *th, AnchorA: *ax, AnchorB: *ay}
		if _, err := fault.StampShape(fs, 0, 0, 1, spec); err != nil {
			fmt.Fprintf(os.Stderr, "faultviz: %v\n", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	fmt.Print(viz.RenderPlane(fs, 0, 0, 1))
	fmt.Print(viz.RenderRegions(fs))
	if fs.Disconnects() {
		fmt.Println("WARNING: this configuration disconnects the network")
	}
}

func shapeByName(name string) (fault.Shape, bool) {
	m := map[string]fault.Shape{
		"bar": fault.ShapeBar, "doublebar": fault.ShapeDoubleBar,
		"rect": fault.ShapeRect, "L": fault.ShapeL, "U": fault.ShapeU,
		"T": fault.ShapeT, "plus": fault.ShapePlus, "H": fault.ShapeH,
	}
	s, ok := m[name]
	return s, ok
}
