// Faultregions: build the paper's Fig. 5 fault-region silhouettes (convex
// and concave), visualise them, and compare the mean message latency each
// inflicts on deterministic vs adaptive Software-Based routing.
//
//	go run ./examples/faultregions
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/topology"
	"repro/internal/viz"
)

func main() {
	const lambda = 0.012 // moderately loaded: region differences are visible
	t := topology.New(8, 2)
	specs := fault.PaperFig5Specs()
	order := []string{"rect-shaped", "T-shaped", "Plus-shaped", "L-shaped", "U-shaped"}

	for _, name := range order {
		spec := specs[name]
		nf, _ := spec.CellCount()

		// Show the region.
		fs := fault.NewSet(t)
		if _, err := fault.StampShape(fs, 0, 0, 1, spec); err != nil {
			log.Fatal(err)
		}
		kind := "concave"
		if !spec.Shape.Concave() {
			kind = "convex"
		}
		fmt.Printf("\n%s (%s, nf=%d)\n%s", name, kind, nf, viz.RenderPlane(fs, 0, 0, 1))

		// Simulate both routing modes against it.
		for _, alg := range []string{"det", "adaptive"} {
			cfg := core.DefaultConfig(8, 2, lambda)
			cfg.V = 10
			cfg.MsgLen = 32
			cfg.Algorithm = alg
			cfg.WarmupMessages = 500
			cfg.MeasureMessages = 5000
			cfg.Faults.Shapes = []core.ShapeStamp{{Spec: spec, DimA: 0, DimB: 1}}
			res, err := core.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			mode := "deterministic"
			if alg == "adaptive" {
				mode = "adaptive"
			}
			fmt.Printf("  %-14s latency %6.1f cycles, %5d absorptions, %4d via stops\n",
				mode, res.MeanLatency, res.QueuedFault, res.QueuedVia)
		}
	}
	fmt.Println("\nNote the paper's two observations: concave regions (U, T, L) cost more than")
	fmt.Println("convex ones of similar or larger size, and adaptive routing absorbs far less.")
}
