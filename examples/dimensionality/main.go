// Dimensionality: the point of the paper is extending Software-Based
// routing beyond 2-D. This example runs the same workload on 2-D, 3-D and
// 4-D tori with a proportional number of random faults and shows the
// algorithm delivering everything on all of them.
//
//	go run ./examples/dimensionality
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// Roughly constant node count across dimensionalities: 8^2=64 with 3
	// faults, 4^3=64 with 3, 4^4=256 with 12 (same ~5% fault rate, scaled).
	cases := []struct {
		k, n, nf int
		lambda   float64
	}{
		{8, 2, 3, 0.004},
		{4, 3, 3, 0.004},
		{4, 4, 12, 0.004},
	}
	fmt.Println("SW-Based-nD under ~5% node failures, uniform traffic, V=6, M=32:")
	for _, tc := range cases {
		for _, alg := range []string{"det", "adaptive"} {
			cfg := core.DefaultConfig(tc.k, tc.n, tc.lambda)
			cfg.V = 6
			cfg.Algorithm = alg
			cfg.WarmupMessages = 500
			cfg.MeasureMessages = 5000
			cfg.Faults.RandomNodes = tc.nf
			cfg.Seed = 11
			res, err := core.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			mode := "det"
			if alg == "adaptive" {
				mode = "adp"
			}
			fmt.Printf("  %d-ary %d-cube (%3d nodes, nf=%2d) %s: latency %6.1f  delivered %d/%d  dropped %d\n",
				tc.k, tc.n, pow(tc.k, tc.n), tc.nf, mode,
				res.MeanLatency, res.Delivered, res.Generated, res.Dropped)
		}
	}
	fmt.Println("\nEvery message is delivered despite faults — the n-dimensional extension")
	fmt.Println("keeps the 2-D algorithm's delivery guarantee (paper §4).")
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}
