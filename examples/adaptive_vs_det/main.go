// Adaptive_vs_det: reproduce the Fig. 6 experiment in miniature — network
// throughput as faults accumulate, deterministic vs adaptive Software-Based
// routing — and print the two series side by side.
//
// The points run as one plan through the sweep subsystem, so they fan out
// over all cores; pass a journal path as the first argument to make the
// run resumable (kill it mid-way and re-run: finished points replay from
// the journal).
//
//	go run ./examples/adaptive_vs_det
//	go run ./examples/adaptive_vs_det /tmp/avd.jsonl
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/sweep"
)

func main() {
	// A 16-ary 2-cube offered load past its saturation point, so measured
	// throughput is the network's delivery capacity (Fig. 6's protocol).
	const lambda = 0.012
	algs := []string{"det", "adaptive"}
	var nfs []int
	for nf := 0; nf <= 10; nf += 2 {
		nfs = append(nfs, nf)
	}

	var points []core.Point
	for _, nf := range nfs {
		for _, alg := range algs {
			cfg := core.DefaultConfig(16, 2, lambda)
			cfg.V = 6
			cfg.Algorithm = alg
			cfg.WarmupMessages = 500
			cfg.MeasureMessages = 4000
			cfg.Faults.RandomNodes = nf
			cfg.Seed = 7
			cfg.SaturationBacklog = 1 << 30 // capacity measurement: run the full horizon
			cfg.MaxCycles = 160_000
			points = append(points, core.Point{
				Label:  fmt.Sprintf("%s|nf%d", alg, nf),
				Config: cfg,
			})
		}
	}
	opt := sweep.Options{}
	if len(os.Args) > 1 {
		opt.Checkpoint = os.Args[1]
		opt.Log = os.Stderr
	}
	prs, err := sweep.Run(sweep.Plan{Name: "adaptive_vs_det", Points: points}, opt)
	if err != nil {
		log.Fatal(err)
	}
	results := map[string]core.PointResult{}
	for _, pr := range prs {
		results[pr.Label] = pr
	}

	fmt.Println("Throughput (messages/node/cycle) vs random faulty nodes, 16-ary 2-cube, M=32, V=6:")
	fmt.Printf("%-6s %14s %14s\n", "nf", "deterministic", "adaptive")
	for _, nf := range nfs {
		cell := func(alg string) string {
			pr := results[fmt.Sprintf("%s|nf%d", alg, nf)]
			if pr.Err != nil {
				fmt.Fprintf(os.Stderr, "point %s failed: %v\n", pr.Label, pr.Err)
				return "err"
			}
			return fmt.Sprintf("%.5f", pr.Results.Throughput)
		}
		fmt.Printf("%-6d %14s %14s\n", nf, cell("det"), cell("adaptive"))
	}
	fmt.Println("\nAs in the paper's Fig. 6: throughput degrades only mildly with faults, and")
	fmt.Println("adaptive routing outperforms deterministic because it avoids most absorptions.")
}
