// Adaptive_vs_det: reproduce the Fig. 6 experiment in miniature — network
// throughput as faults accumulate, deterministic vs adaptive Software-Based
// routing — and print the two series side by side.
//
//	go run ./examples/adaptive_vs_det
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// A 16-ary 2-cube offered load past its saturation point, so measured
	// throughput is the network's delivery capacity (Fig. 6's protocol).
	const lambda = 0.012
	fmt.Println("Throughput (messages/node/cycle) vs random faulty nodes, 16-ary 2-cube, M=32, V=6:")
	fmt.Printf("%-6s %14s %14s\n", "nf", "deterministic", "adaptive")
	for nf := 0; nf <= 10; nf += 2 {
		var thr [2]float64
		for i, alg := range []string{"det", "adaptive"} {
			cfg := core.DefaultConfig(16, 2, lambda)
			cfg.V = 6
			cfg.Algorithm = alg
			cfg.WarmupMessages = 500
			cfg.MeasureMessages = 4000
			cfg.Faults.RandomNodes = nf
			cfg.Seed = 7
			cfg.SaturationBacklog = 1 << 30 // capacity measurement: run the full horizon
			cfg.MaxCycles = 160_000
			res, err := core.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			thr[i] = res.Throughput
		}
		fmt.Printf("%-6d %14.5f %14.5f\n", nf, thr[0], thr[1])
	}
	fmt.Println("\nAs in the paper's Fig. 6: throughput degrades only mildly with faults, and")
	fmt.Println("adaptive routing outperforms deterministic because it avoids most absorptions.")
}
