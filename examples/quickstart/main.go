// Quickstart: simulate Software-Based fault-tolerant routing on an 8-ary
// 2-cube with three random node faults and print the headline metrics for
// every algorithm in the routing registry.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/routing"
)

func main() {
	// An 8x8 torus offered 0.006 messages/node/cycle of uniform traffic.
	cfg := core.DefaultConfig(8, 2, 0.006)
	cfg.V = 6                  // virtual channels per physical channel
	cfg.MsgLen = 32            // flits per message
	cfg.Faults.RandomNodes = 3 // random failed nodes (network stays connected)
	cfg.Seed = 42

	for _, info := range routing.Algorithms() {
		if !info.Supports("torus") {
			continue // e.g. planar-adaptive runs on meshes only
		}
		cfg.Algorithm = info.Name
		res, err := core.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s mean latency %6.1f cycles  p99 %5.0f  throughput %.5f msg/node/cycle\n",
			info.Name, res.MeanLatency, res.P99, res.Throughput)
		fmt.Printf("%-18s absorbed %d times, %d via stops, %d messages delivered\n",
			"", res.QueuedFault, res.QueuedVia, res.Delivered)
	}
}
