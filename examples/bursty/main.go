// Bursty: compare mean latency under MMPP on/off bursty arrivals against
// the paper's Poisson process at equal offered load.
//
// The burst source's ON rate is derived from λ so its long-run rate is
// exactly λ — the two columns at each row carry the same traffic volume,
// and the latency gap is the pure cost of burstiness: during an ON phase a
// node injects at λ·(on+off)/on (3.8× λ here), queueing messages the OFF
// phase then drains. Watch the gap widen as λ approaches saturation.
//
//	go run ./examples/bursty
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sweep"
)

func main() {
	const (
		k, n  = 8, 2
		burst = "burst:on=70,off=200" // rate defaults to λ·(on+off)/on
	)
	fmt.Printf("8-ary 2-cube, det routing, V=4, M=32: Poisson vs MMPP bursts at equal offered load (%s)\n\n", burst)
	fmt.Printf("%-10s%16s%16s%12s\n", "lambda", "poisson lat", "bursty lat", "ratio")

	lambdas := []float64{0.002, 0.004, 0.006, 0.008}
	var points []core.Point
	for _, lambda := range lambdas {
		for _, traffic := range []string{"poisson", burst} {
			cfg := core.DefaultConfig(k, n, lambda)
			cfg.Traffic = traffic
			cfg.WarmupMessages = 500
			cfg.MeasureMessages = 5000
			cfg.Seed = 7
			points = append(points, core.Point{
				Label:  fmt.Sprintf("%s|%g", traffic, lambda),
				Config: cfg,
			})
		}
	}
	prs, err := sweep.Run(sweep.Plan{Name: "bursty", Points: points}, sweep.Options{})
	if err != nil {
		log.Fatal(err)
	}
	results := map[string]core.PointResult{}
	for _, pr := range prs {
		// Surface per-point failures in the table instead of aborting the
		// example (or worse, tabulating a zero-value result as data).
		if pr.Err != nil {
			fmt.Printf("point %s failed: %v\n", pr.Label, pr.Err)
		}
		results[pr.Label] = pr
	}

	cell := func(pr core.PointResult) string {
		if pr.Err != nil {
			return fmt.Sprintf("%15s", "err")
		}
		if pr.Results.Saturated {
			return fmt.Sprintf("%13.1f *", pr.Results.MeanLatency)
		}
		return fmt.Sprintf("%15.1f", pr.Results.MeanLatency)
	}
	for _, lambda := range lambdas {
		p := results[fmt.Sprintf("poisson|%g", lambda)]
		b := results[fmt.Sprintf("%s|%g", burst, lambda)]
		ratio := "-"
		if p.Err == nil && b.Err == nil && p.Results.MeanLatency > 0 {
			ratio = fmt.Sprintf("%.2fx", b.Results.MeanLatency/p.Results.MeanLatency)
		}
		fmt.Printf("%-10g%16s%16s%12s\n", lambda, cell(p), cell(b), ratio)
	}
	fmt.Println("\n(* = run hit the saturation guard before the delivery quota)")
}
