// Model_vs_sim: the paper's conclusion promises "an analytical modeling
// approach to investigate the performance behavior of Software-Based
// fault-tolerant routing". This example runs that model (internal/analytic)
// side by side with the flit-level simulator and charts both.
//
//	go run ./examples/model_vs_sim
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/viz"
)

func main() {
	const (
		k, n = 8, 2
		v    = 4
		m    = 32
		nf   = 3
	)
	lambdas := []float64{0.001, 0.002, 0.004, 0.006, 0.008, 0.010}
	model := make([]float64, len(lambdas))
	sim := make([]float64, len(lambdas))

	fmt.Printf("8-ary 2-cube, V=%d, M=%d flits, nf=%d random faults\n\n", v, m, nf)
	fmt.Printf("%-10s%12s%12s\n", "lambda", "model", "simulator")
	for i, l := range lambdas {
		mdl := analytic.Model{K: k, N: n, V: v, M: m, Lambda: l, Nf: nf}
		if lat, err := mdl.MeanLatency(); err == nil {
			model[i] = lat
		} else {
			model[i] = math.Inf(1)
		}

		cfg := core.DefaultConfig(k, n, l)
		cfg.V = v
		cfg.MsgLen = m
		cfg.Algorithm = "det" // the analytic model covers deterministic SW-Based routing
		cfg.Faults.RandomNodes = nf
		cfg.WarmupMessages = 300
		cfg.MeasureMessages = 4000
		res, err := core.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if res.Saturated {
			sim[i] = math.Inf(1)
		} else {
			sim[i] = res.MeanLatency
		}
		fmt.Printf("%-10g%12s%12s\n", l, cell(model[i]), cell(sim[i]))
	}

	ch := viz.NewChart(lambdas, 7, 14)
	ch.Add("model", model)
	ch.Add("sim", sim)
	fmt.Println()
	fmt.Print(ch.Render())
	fmt.Println("\nThe model tracks the simulator until the knee; analytical models of this")
	fmt.Println("family are used to place the saturation point, not to match exact cycles.")
}

func cell(v float64) string {
	if math.IsInf(v, 1) {
		return "sat"
	}
	return fmt.Sprintf("%.1f", v)
}
