//go:build !race

package repro_test

// raceEnabled reports whether the race detector instruments this build;
// timing-based guards skip themselves under it.
const raceEnabled = false
