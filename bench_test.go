// Package repro_test holds the top-level benchmark harness: one testing.B
// benchmark per figure of the paper's evaluation section, each running a
// scaled-down instance of that figure's workload (the full sweeps live in
// cmd/figures). Reported custom metrics expose the figure's headline
// quantity: cycles of mean latency, throughput, or absorptions per 1000
// messages.
package repro_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/message"
	"repro/internal/rng"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// benchConfig is the shared reduced measurement protocol for benchmark
// points: enough messages for stable means, small enough for -bench runs.
func benchConfig(k, n int, lambda float64) core.Config {
	c := core.DefaultConfig(k, n, lambda)
	c.WarmupMessages = 200
	c.MeasureMessages = 2000
	return c
}

func runPoint(b *testing.B, c core.Config) {
	b.Helper()
	var lastLatency, lastThroughput float64
	var lastQueued uint64
	for i := 0; i < b.N; i++ {
		res, err := core.Run(c)
		if err != nil {
			b.Fatal(err)
		}
		lastLatency = res.MeanLatency
		lastThroughput = res.Throughput
		lastQueued = res.QueuedTotal()
	}
	b.ReportMetric(lastLatency, "latency-cycles")
	b.ReportMetric(lastThroughput*1e3, "kthroughput")
	b.ReportMetric(float64(lastQueued), "queued")
}

// BenchmarkFig1Regions regenerates Fig. 1's region construction and
// classification: every silhouette stamped and coalesced on a 16-ary
// 2-cube.
func BenchmarkFig1Regions(b *testing.B) {
	t := topology.New(16, 2)
	specs := []fault.ShapeSpec{
		{Shape: fault.ShapeBar, A: 4, AnchorA: 2, AnchorB: 2},
		{Shape: fault.ShapeDoubleBar, A: 4, AnchorA: 2, AnchorB: 2},
		{Shape: fault.ShapeRect, A: 3, B: 3, AnchorA: 2, AnchorB: 2},
		{Shape: fault.ShapeL, A: 4, B: 4, AnchorA: 2, AnchorB: 2},
		{Shape: fault.ShapeU, A: 4, B: 5, AnchorA: 2, AnchorB: 2},
		{Shape: fault.ShapePlus, A: 5, B: 5, AnchorA: 2, AnchorB: 2},
		{Shape: fault.ShapeT, A: 5, B: 3, AnchorA: 2, AnchorB: 2},
		{Shape: fault.ShapeH, A: 5, B: 5, AnchorA: 2, AnchorB: 2},
	}
	for i := 0; i < b.N; i++ {
		for _, sp := range specs {
			fs := fault.NewSet(t)
			if _, err := fault.StampShape(fs, 0, 0, 1, sp); err != nil {
				b.Fatal(err)
			}
			regs := fs.Regions()
			for _, r := range regs {
				_ = r.Convex()
			}
		}
	}
}

// Fig. 3 benchmarks: 8-ary 2-cube latency points (deterministic and
// adaptive, fault-free and faulted), one per paper panel family.

func BenchmarkFig3DetV4NoFaults(b *testing.B) {
	c := benchConfig(8, 2, 0.006)
	c.V = 4
	runPoint(b, c)
}

func BenchmarkFig3DetV4Faults3(b *testing.B) {
	c := benchConfig(8, 2, 0.006)
	c.V = 4
	c.Faults.RandomNodes = 3
	runPoint(b, c)
}

func BenchmarkFig3DetV6Faults5M64(b *testing.B) {
	c := benchConfig(8, 2, 0.006)
	c.V = 6
	c.MsgLen = 64
	c.Faults.RandomNodes = 5
	runPoint(b, c)
}

func BenchmarkFig3AdaptiveV10Faults5(b *testing.B) {
	c := benchConfig(8, 2, 0.01)
	c.V = 10
	c.Adaptive = true
	c.Faults.RandomNodes = 5
	runPoint(b, c)
}

// Fig. 4 benchmarks: 8-ary 3-cube latency points with nf in {0, 12}.

func BenchmarkFig4DetV4NoFaults(b *testing.B) {
	c := benchConfig(8, 3, 0.006)
	c.V = 4
	runPoint(b, c)
}

func BenchmarkFig4DetV10Faults12(b *testing.B) {
	c := benchConfig(8, 3, 0.008)
	c.V = 10
	c.Faults.RandomNodes = 12
	runPoint(b, c)
}

func BenchmarkFig4AdaptiveV6Faults12(b *testing.B) {
	c := benchConfig(8, 3, 0.008)
	c.V = 6
	c.Adaptive = true
	c.Faults.RandomNodes = 12
	runPoint(b, c)
}

// Fig. 5 benchmarks: fault-region latency points (M=32, V=10), one convex
// and one concave region in each routing mode.

func fig5Point(b *testing.B, shapeName string, adaptive bool) {
	c := benchConfig(8, 2, 0.012)
	c.V = 10
	c.Adaptive = adaptive
	c.Faults.Shapes = []core.ShapeStamp{{Spec: fault.PaperFig5Specs()[shapeName], DimA: 0, DimB: 1}}
	runPoint(b, c)
}

func BenchmarkFig5RectDet(b *testing.B)         { fig5Point(b, "rect-shaped", false) }
func BenchmarkFig5URegionDet(b *testing.B)      { fig5Point(b, "U-shaped", false) }
func BenchmarkFig5RectAdaptive(b *testing.B)    { fig5Point(b, "rect-shaped", true) }
func BenchmarkFig5URegionAdaptive(b *testing.B) { fig5Point(b, "U-shaped", true) }

// Fig. 6 benchmarks: 16-ary 2-cube throughput under saturation load with
// faults (the capacity measurement).

func fig6Point(b *testing.B, nf int, adaptive bool) {
	c := benchConfig(16, 2, 0.012)
	c.V = 6
	c.Adaptive = adaptive
	c.Faults.RandomNodes = nf
	c.SaturationBacklog = 1 << 30
	c.MaxCycles = 60_000
	runPoint(b, c)
}

func BenchmarkFig6ThroughputDetFaults6(b *testing.B)      { fig6Point(b, 6, false) }
func BenchmarkFig6ThroughputAdaptiveFaults6(b *testing.B) { fig6Point(b, 6, true) }

// Fig. 7 benchmarks: messages-queued counting in an 8-ary 3-cube
// (M=32, V=10), generation rate 100 (λ = 0.01).

func fig7Point(b *testing.B, adaptive bool) {
	c := benchConfig(8, 3, 0.01)
	c.V = 10
	c.Adaptive = adaptive
	c.Faults.RandomNodes = 8
	runPoint(b, c)
}

func BenchmarkFig7QueuedDet(b *testing.B)      { fig7Point(b, false) }
func BenchmarkFig7QueuedAdaptive(b *testing.B) { fig7Point(b, true) }

// Engine-scheduler benchmarks: cost of one Step at a low offered load on a
// 24-ary 2-cube (576 routers, nearly all idle in any given cycle). The
// active-set scheduler (now two-level: router worklist + per-router lane
// worklists) touches only routers that can make progress; the dense scan
// — the engine's original behaviour, kept behind the Config.DenseScan
// knob — visits all 576 every cycle. Results are bit-identical between
// the two (see TestActiveSetMatchesDenseScan); only the wall-clock cost
// per simulated cycle differs.

// stepEngine is the shared chassis of the Step benchmarks: it builds the
// configured point once, advances warm unmeasured cycles so the network
// carries steady-state traffic and every scratch buffer has reached its
// high-water mark, then times b.N Steps with allocation reporting.
// Construction stays outside the measured region — the benchmarks gate the
// per-cycle cost (and, with the arena, its zero-allocation contract), not
// setup.
func stepEngine(b *testing.B, c core.Config, warm int) {
	b.Helper()
	c.MeasureMessages = 1 << 30 // never stop on quota; b.N bounds the run
	c.MaxCycles = 1 << 62
	c.SaturationBacklog = 1 << 30
	e, err := core.NewEngine(c)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < warm; i++ {
		e.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func stepBench(b *testing.B, dense bool) {
	c := core.DefaultConfig(24, 2, 0.0002)
	c.V = 4
	c.DenseScan = dense
	stepEngine(b, c, 2000)
}

func BenchmarkStepActiveSet(b *testing.B) { stepBench(b, false) }
func BenchmarkStepDenseScan(b *testing.B) { stepBench(b, true) }

// Per-VC scheduler benchmarks: cost of one Step with the second scheduler
// level — per-(port, VC) lane worklists inside each busy router — against
// the dense Ports()×V lane scan (Config.DenseVCScan, the engine's
// behaviour between PR 1 and the per-VC scheduler). Two regimes:
// "low" is a 24-ary 2-cube at λ=0.0002 (576 routers, nearly all idle;
// the router-level set already skips most of them, so the lane level adds
// little), "mod" is the paper's 8-ary 2-cube at λ=0.006 (busy routers
// with most lanes still empty — the case the lane worklist targets; the
// win grows with V because the dense scan pays (2n+1)·V per busy router
// while the lane set pays only for occupied lanes). Results are
// bit-identical (TestVCActiveSetMatchesDenseScan); only Step cost
// differs.

func stepBenchVC(b *testing.B, k int, lambda float64, v int, denseVC bool) {
	b.Helper()
	c := core.DefaultConfig(k, 2, lambda)
	c.V = v
	c.DenseVCScan = denseVC
	stepEngine(b, c, 2000)
}

func vcSchedulerGrid(b *testing.B, denseVC bool) {
	for _, p := range []struct {
		name   string
		k      int
		lambda float64
		v      int
	}{
		{"low-k24-v4", 24, 0.0002, 4},
		{"low-k24-v6", 24, 0.0002, 6},
		{"low-k24-v10", 24, 0.0002, 10},
		{"mod-k8-v4", 8, 0.006, 4},
		{"mod-k8-v6", 8, 0.006, 6},
		{"mod-k8-v10", 8, 0.006, 10},
	} {
		b.Run(p.name, func(b *testing.B) { stepBenchVC(b, p.k, p.lambda, p.v, denseVC) })
	}
}

func BenchmarkStepVCActiveSet(b *testing.B) { vcSchedulerGrid(b, false) }
func BenchmarkStepDenseVCScan(b *testing.B) { vcSchedulerGrid(b, true) }

// Source-poll benchmarks: cost of the traffic layer alone — one Poll per
// cycle on a 16-ary 2-cube (256 nodes) at λ = 0.01, no engine attached.
// Poisson is the event-heap baseline; burst adds the MMPP phase-process
// bookkeeping on top of the same chassis at equal offered load.

func sourceBench(b *testing.B, spec string) {
	tor := topology.New(16, 2)
	fs := fault.NewSet(tor)
	src, err := traffic.NewSource(spec, traffic.Env{
		T: tor, F: fs, Sources: fs.HealthyNodes(),
		Lambda: 0.01, MsgLen: 32, Mode: message.Deterministic,
		Pattern: traffic.NewUniform(fs), R: rng.New(1),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var total int
	for now := int64(1); now <= int64(b.N); now++ {
		total += len(src.Poll(now))
	}
	b.ReportMetric(float64(total)/float64(b.N)*1e3, "msgs/kcycle")
}

func BenchmarkSourcePoll(b *testing.B) {
	b.Run("poisson", func(b *testing.B) { sourceBench(b, "poisson") })
	b.Run("burst", func(b *testing.B) { sourceBench(b, "burst:on=50,off=200") })
}
