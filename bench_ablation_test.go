package repro_test

import (
	"testing"

	"repro/internal/analytic"
	"repro/internal/core"
)

// Ablation benchmarks: quantify the design choices DESIGN.md calls out.
// Each reports latency-cycles so `go test -bench=Ablation` prints the
// trade-off directly.

// faultedConfig is the shared ablation workload: an 8-ary 2-cube at
// moderate load with 5 random faults — enough absorption traffic for the
// knobs to matter.
func faultedConfig() core.Config {
	c := benchConfig(8, 2, 0.006)
	c.V = 6
	c.Faults.RandomNodes = 5
	c.Seed = 3
	return c
}

// Buffer depth: deeper per-VC buffers absorb burstiness but cost area.
func BenchmarkAblationBufDepth1(b *testing.B) { c := faultedConfig(); c.BufDepth = 1; runPoint(b, c) }
func BenchmarkAblationBufDepth2(b *testing.B) { c := faultedConfig(); c.BufDepth = 2; runPoint(b, c) }
func BenchmarkAblationBufDepth4(b *testing.B) { c := faultedConfig(); c.BufDepth = 4; runPoint(b, c) }
func BenchmarkAblationBufDepth8(b *testing.B) { c := faultedConfig(); c.BufDepth = 8; runPoint(b, c) }

// Software re-injection overhead Δ (assumption (i); the paper sets it to 0
// arguing it is negligible — these benches quantify the claim).
func BenchmarkAblationDelta0(b *testing.B)   { c := faultedConfig(); c.Delta = 0; runPoint(b, c) }
func BenchmarkAblationDelta20(b *testing.B)  { c := faultedConfig(); c.Delta = 20; runPoint(b, c) }
func BenchmarkAblationDelta100(b *testing.B) { c := faultedConfig(); c.Delta = 100; runPoint(b, c) }

// Router decision time Td (assumption (f), also set to 0 in the paper).
func BenchmarkAblationTd0(b *testing.B) { c := faultedConfig(); c.Td = 0; runPoint(b, c) }
func BenchmarkAblationTd2(b *testing.B) { c := faultedConfig(); c.Td = 2; runPoint(b, c) }

// Re-injection priority: the paper argues absorbed messages must outrank
// fresh traffic to prevent starvation.
func BenchmarkAblationReinjectPriority(b *testing.B) { runPoint(b, faultedConfig()) }
func BenchmarkAblationNoReinjectPriority(b *testing.B) {
	c := faultedConfig()
	c.NoReinjectPriority = true
	runPoint(b, c)
}

// Rerouting-table escalation: how soon the exact planner (table T3)
// replaces the reverse/orthogonal heuristics. 1 = exact planning on every
// absorption; large = heuristics only.
func BenchmarkAblationEscalation1(b *testing.B) {
	c := faultedConfig()
	c.Escalation = 1
	runPoint(b, c)
}
func BenchmarkAblationEscalation6(b *testing.B) {
	c := faultedConfig()
	c.Escalation = 6
	runPoint(b, c)
}
func BenchmarkAblationEscalation32(b *testing.B) {
	c := faultedConfig()
	c.Escalation = 32
	runPoint(b, c)
}

// Wire latency: flit time across a physical channel (assumption (g) uses 1).
func BenchmarkAblationLinkLatency1(b *testing.B) {
	c := faultedConfig()
	c.LinkLatency = 1
	runPoint(b, c)
}
func BenchmarkAblationLinkLatency2(b *testing.B) {
	c := faultedConfig()
	c.LinkLatency = 2
	c.BufDepth = 4 // cover the longer credit round-trip
	runPoint(b, c)
}
func BenchmarkAblationCreditDelay4(b *testing.B) {
	c := faultedConfig()
	c.CreditDelay = 4
	c.BufDepth = 4
	runPoint(b, c)
}

// Engine raw speed: simulated cycles per second at a moderate load on the
// paper's 8-ary 2-cube (for capacity planning of full-scale sweeps).
func BenchmarkEngineCyclesPerSecond(b *testing.B) {
	c := benchConfig(8, 2, 0.006)
	c.V = 6
	c.MeasureMessages = 1 << 30 // never stop on quota
	// Build once, then measure stepping.
	res, err := core.Run(coreConfigForSteps(c, int64(b.N)))
	if err != nil {
		b.Fatal(err)
	}
	_ = res
}

// coreConfigForSteps caps a config to roughly n cycles via MaxCycles.
func coreConfigForSteps(c core.Config, n int64) core.Config {
	if n < 1000 {
		n = 1000
	}
	c.MaxCycles = n
	c.SaturationBacklog = 1 << 30
	return c
}

// Analytical model evaluation cost (for reference against simulation cost).
func BenchmarkAnalyticModel(b *testing.B) {
	m := analytic.Model{K: 8, N: 2, V: 4, M: 32, Lambda: 0.008, Nf: 5}
	var lat float64
	for i := 0; i < b.N; i++ {
		l, err := m.MeanLatency()
		if err != nil {
			b.Fatal(err)
		}
		lat = l
	}
	b.ReportMetric(lat, "latency-cycles")
}
