#!/usr/bin/env bash
# Coordinator smoke: the end-to-end exercise of swsim's fleet mode that
# the coordinator-smoke CI job runs (and that works identically on a
# laptop). One coordinator, one sabotaged worker, two honest workers:
#
#   1. start `swsim -serve` with a short lease TTL;
#   2. submit a λ sweep through `swsim -sweep -coordinator`;
#   3. let a victim worker lease a point, stall past the TTL, and die by
#      SIGKILL — the impolite death lease expiry exists for;
#   4. drain the queue with two `exit=drain` workers, asserting the
#      victim's point was reassigned (statusz expired >= 1);
#   5. submit the identical plan again with no workers alive: it must be
#      served entirely from the digest-keyed result cache (the
#      results_accepted counter is frozen, nothing re-queues) and the
#      CSV must be byte-identical;
#   6. SIGTERM the coordinator, then prove its journal is a standard
#      sweep journal by rendering the same grid from it with plain
#      `swsim -checkpoint`, and diff everything against a
#      single-process run.
#
# Needs: go, curl, jq. Usage: scripts/coordinator_smoke.sh [port]
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${1:-18080}"
ADDR="127.0.0.1:$PORT"
URL="http://$ADDR"
GRID=(-q -k 4 -n 2 -warmup 200 -measure 2000 -sweep 0.002:0.008:0.002)
DIR="$(mktemp -d)"
SW="$DIR/swsim"

cleanup() {
  # shellcheck disable=SC2046
  kill $(jobs -p) 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

die() { echo "coordinator smoke: FAIL: $*" >&2; curl -sf "$URL/statusz" >&2 || true; exit 1; }
field() { curl -sf "$URL/statusz" | jq -r ".$1"; }

go build -o "$SW" ./cmd/swsim

echo "# 1. coordinator (lease TTL 2s so the victim's point re-queues fast)"
"$SW" -serve "addr=$ADDR,checkpoint=$DIR/coord.jsonl,lease=2s" &
COORD=$!
for _ in $(seq 50); do
  curl -sf "$URL/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -sf "$URL/healthz" >/dev/null || die "coordinator never came up on $URL"

echo "# 2. submit the sweep (blocks polling the result cache until the fleet finishes)"
"$SW" "${GRID[@]}" -coordinator "$URL" > "$DIR/fleet.csv" &
SUBMIT=$!

echo "# 3. victim worker: leases one point, stalls past the TTL, dies by SIGKILL"
"$SW" -worker "url=$URL,name=victim,stall=60s" &
VICTIM=$!
for _ in $(seq 100); do
  [ "$(field leased)" -ge 1 ] 2>/dev/null && break
  sleep 0.2
done
[ "$(field leased)" -ge 1 ] || die "victim never leased a point"
kill -9 "$VICTIM"
echo "#    victim (pid $VICTIM) SIGKILLed while holding a lease"

echo "# 4. two honest workers drain the queue, including the victim's re-queued point"
"$SW" -worker "url=$URL,name=w1,exit=drain" &
W1=$!
"$SW" -worker "url=$URL,name=w2,exit=drain" &
W2=$!
wait "$SUBMIT" || die "fleet-backed sweep failed"
wait "$W1" || die "worker w1 failed"
wait "$W2" || die "worker w2 failed"
[ "$(field expired)" -ge 1 ] || die "victim's death never tripped a lease expiry"
[ "$(field done)" -eq 4 ] || die "want 4 completed points, got $(field done)"

echo "# 5. identical plan again, no workers alive: must be pure cache"
accepted_before="$(field results_accepted)"
"$SW" "${GRID[@]}" -coordinator "$URL" > "$DIR/fleet2.csv" || die "cached re-submission failed"
[ "$(field results_accepted)" -eq "$accepted_before" ] \
  || die "repeat plan re-simulated points (results_accepted $accepted_before -> $(field results_accepted))"
[ "$(field queued)" -eq 0 ] || die "repeat plan re-queued work"
diff "$DIR/fleet.csv" "$DIR/fleet2.csv" || die "cached rows diverge from fleet rows"

echo "# 6. graceful shutdown; the journal renders with plain swsim -checkpoint"
kill -TERM "$COORD"
wait "$COORD" || die "coordinator exited non-zero on SIGTERM"
"$SW" "${GRID[@]}" -checkpoint "$DIR/coord.jsonl" > "$DIR/from-journal.csv"
"$SW" "${GRID[@]}" > "$DIR/single.csv"
diff "$DIR/from-journal.csv" "$DIR/single.csv" || die "journal render diverges from single-process run"
diff "$DIR/fleet.csv" "$DIR/single.csv" || die "fleet rows diverge from single-process run"

echo "coordinator smoke: OK"
