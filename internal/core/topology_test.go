package core

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/topology"
)

// TestTopologySpecDefaultsToLegacyTorus pins the compatibility contract:
// an empty Topology field resolves to the legacy K/N torus, and a run
// configured either way produces identical results (the spec threading
// perturbs nothing — the trace-level proof lives in the network package's
// TestTopologyRegistryMatchesDirectTorus).
func TestTopologySpecDefaultsToLegacyTorus(t *testing.T) {
	legacy := DefaultConfig(4, 2, 0.004)
	legacy.WarmupMessages, legacy.MeasureMessages = 100, 800
	if got := legacy.TopologySpec(); got != "torus:k=4,n=2" {
		t.Fatalf("TopologySpec() = %q", got)
	}
	spec := legacy
	spec.Topology = "torus:k=4,n=2"
	resLegacy, err := Run(legacy)
	if err != nil {
		t.Fatal(err)
	}
	resSpec, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resLegacy, resSpec) {
		t.Fatalf("legacy K/N and explicit spec runs differ:\nlegacy: %+v\nspec:   %+v", resLegacy, resSpec)
	}
}

// TestRunOnMesh exercises the full stack on a mesh: det and adaptive over
// the SW-Based machinery, and planar-adaptive through its registry entry,
// all with faults where supported.
func TestRunOnMesh(t *testing.T) {
	for _, tc := range []struct {
		alg string
		nf  int
	}{
		{"det", 0},
		{"det", 3},
		{"adaptive", 2},
		{"planar-adaptive", 0},
		{"planar-adaptive", 3},
	} {
		cfg := DefaultConfig(4, 2, 0.004)
		cfg.Topology = "mesh:k=4,n=2"
		cfg.Algorithm = tc.alg
		cfg.Faults.RandomNodes = tc.nf
		cfg.WarmupMessages, cfg.MeasureMessages = 100, 600
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s nf=%d: %v", tc.alg, tc.nf, err)
		}
		if res.Delivered < 600 || res.MeanLatency <= 0 {
			t.Fatalf("%s nf=%d: implausible results %+v", tc.alg, tc.nf, res)
		}
	}
}

// TestMeshVsTorusSmokeSweep is the figures-style scenario smoke: a small λ
// sweep on the same-size torus and mesh. Every point must complete
// unsaturated at these loads, latency must grow with λ, and the mesh —
// whose average distance is larger without wraparound shortcuts — must
// show a higher zero-ish-load latency than the torus.
func TestMeshVsTorusSmokeSweep(t *testing.T) {
	sweep := func(topo string) []float64 {
		var out []float64
		for _, lambda := range []float64{0.002, 0.006} {
			cfg := DefaultConfig(8, 2, lambda)
			cfg.Topology = topo
			cfg.WarmupMessages, cfg.MeasureMessages = 200, 1500
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s λ=%g: %v", topo, lambda, err)
			}
			if res.Saturated {
				t.Fatalf("%s λ=%g saturated in the smoke regime: %+v", topo, lambda, res)
			}
			out = append(out, res.MeanLatency)
		}
		return out
	}
	tor := sweep("torus:k=8,n=2")
	msh := sweep("mesh:k=8,n=2")
	if !(tor[0] > 0 && msh[0] > 0) {
		t.Fatalf("non-positive latencies: torus %v, mesh %v", tor, msh)
	}
	if msh[0] <= tor[0] {
		t.Errorf("mesh low-load latency %.1f not above torus %.1f (mesh has no wraparound shortcuts)", msh[0], tor[0])
	}
	if tor[1] <= tor[0] || msh[1] <= msh[0] {
		t.Errorf("latency not increasing with load: torus %v, mesh %v", tor, msh)
	}
}

// TestValidateTopology pins the topology-aware validation added with the
// seam: unknown topologies, algorithm/topology mismatches, and fault
// specifications that do not fit the selected network are all rejected
// before a run starts.
func TestValidateTopology(t *testing.T) {
	base := func() Config {
		cfg := DefaultConfig(8, 2, 0.004)
		cfg.WarmupMessages, cfg.MeasureMessages = 10, 50
		return cfg
	}
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"unknown topology", func(c *Config) { c.Topology = "moebius" }, "unknown topology"},
		{"bad spec parameter", func(c *Config) { c.Topology = "torus:k=1" }, "radix"},
		{"planar on torus", func(c *Config) { c.Algorithm = "planar-adaptive" }, "supports topologies"},
		{"hotspot node beyond mesh", func(c *Config) {
			c.Topology = "mesh:k=2,n=2"
			c.Pattern = "hotspot:node=60"
		}, "out of range"},
		{"shape dim out of range", func(c *Config) {
			c.Faults.Shapes = []ShapeStamp{{Spec: fault.ShapeSpec{Shape: fault.ShapeBar, A: 2}, DimA: 0, DimB: 5}}
		}, "out of range"},
		{"shape dims equal", func(c *Config) {
			c.Faults.Shapes = []ShapeStamp{{Spec: fault.ShapeSpec{Shape: fault.ShapeBar, A: 2}, DimA: 1, DimB: 1}}
		}, "distinct"},
		{"shape base invalid", func(c *Config) {
			c.Faults.Shapes = []ShapeStamp{{Spec: fault.ShapeSpec{Shape: fault.ShapeBar, A: 2}, DimA: 0, DimB: 1, Base: 9999}}
		}, "out of range"},
		{"shape overflows mesh edge", func(c *Config) {
			c.Topology = "mesh:k=8,n=2"
			c.Faults.Shapes = []ShapeStamp{{
				Spec: fault.ShapeSpec{Shape: fault.ShapeRect, A: 3, B: 3, AnchorA: 6, AnchorB: 6},
				DimA: 0, DimB: 1,
			}}
		}, "does not fit"},
		{"link off the mesh edge", func(c *Config) {
			c.Topology = "mesh:k=8,n=2"
			c.Faults.Links = []struct {
				Src  topology.NodeID
				Port topology.Port
			}{{Src: 0, Port: topology.PortFor(0, topology.Minus)}}
		}, "does not exist"},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	// The same shapes that overflow a mesh stamp cleanly on the torus.
	cfg := base()
	cfg.Faults.Shapes = []ShapeStamp{{
		Spec: fault.ShapeSpec{Shape: fault.ShapeRect, A: 3, B: 3, AnchorA: 6, AnchorB: 6},
		DimA: 0, DimB: 1,
	}}
	if err := cfg.Validate(); err != nil {
		t.Errorf("wrapping shape rejected on the torus: %v", err)
	}
	// And a valid mesh config passes end to end.
	cfg = base()
	cfg.Topology = "mesh:k=8,n=2"
	cfg.Faults.Shapes = []ShapeStamp{{
		Spec: fault.ShapeSpec{Shape: fault.ShapeBar, A: 3, AnchorA: 2, AnchorB: 2},
		DimA: 0, DimB: 1,
	}}
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid mesh config rejected: %v", err)
	}
}

// TestValidateMinVIsTopologyAware pins the mesh VC dividend end to end:
// dropping the dateline classes lowers the legal V minimum on meshes
// (Info.MinVNoWrap), while the torus keeps the paper's requirement.
func TestValidateMinVIsTopologyAware(t *testing.T) {
	cfg := DefaultConfig(4, 2, 0.004)
	cfg.V = 1
	cfg.WarmupMessages, cfg.MeasureMessages = 50, 300
	if err := cfg.Validate(); err == nil {
		t.Error("det V=1 accepted on a torus (dateline classes need 2)")
	}
	cfg.Topology = "mesh:k=4,n=2"
	if err := cfg.Validate(); err != nil {
		t.Errorf("det V=1 rejected on a mesh: %v", err)
	}
	if res, err := Run(cfg); err != nil || res.Delivered < 300 {
		t.Errorf("det V=1 mesh run: res=%+v err=%v", res, err)
	}
	cfg.Algorithm = "adaptive"
	cfg.V = 2
	if err := cfg.Validate(); err != nil {
		t.Errorf("adaptive V=2 rejected on a mesh: %v", err)
	}
	cfg.Topology = ""
	if err := cfg.Validate(); err == nil {
		t.Error("adaptive V=2 accepted on a torus (needs 2 escape + 1 adaptive)")
	}
}
