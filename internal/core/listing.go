package core

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// PrintRegistries writes the five registry sections shared by the CLIs'
// -list output: topologies, routing algorithms, destination patterns,
// arrival sources and fault schedules. prefix qualifies the
// pattern/traffic flag names in the section headers for commands
// (swtrace) that do not take those flags themselves.
func PrintRegistries(w io.Writer, prefix string) {
	fmt.Fprintln(w, "topologies (-topo):")
	for _, info := range topology.Topologies() {
		fmt.Fprintf(w, "  %-28s %s\n", info.Usage, info.Description)
	}
	fmt.Fprintln(w, "  every topology accepts a ,latmap=<file> per-link latency overlay (CSV: src,port,latency)")
	fmt.Fprintln(w, "\nrouting algorithms (-alg):")
	for _, info := range routing.Algorithms() {
		scope := ""
		if len(info.Topologies) > 0 {
			scope = " [" + strings.Join(info.Topologies, ",") + " only]"
		}
		fmt.Fprintf(w, "  %-18s V>=%d  %s%s\n", info.Name, info.MinV, info.Description, scope)
	}
	fmt.Fprintf(w, "\ndestination patterns (%s-pattern):\n", prefix)
	for _, info := range traffic.Patterns() {
		fmt.Fprintf(w, "  %-40s %s\n", info.Usage, info.Description)
	}
	fmt.Fprintf(w, "\narrival sources (%s-traffic):\n", prefix)
	for _, info := range traffic.Sources() {
		fmt.Fprintf(w, "  %-52s %s\n", info.Usage, info.Description)
	}
	fmt.Fprintf(w, "\nfault schedules (%s-faults-schedule):\n", prefix)
	for _, info := range fault.Schedules() {
		fmt.Fprintf(w, "  %-44s %s\n", info.Usage, info.Description)
	}
}
