package core

import (
	"fmt"
	"io"

	"repro/internal/routing"
	"repro/internal/traffic"
)

// PrintRegistries writes the three registry sections shared by the CLIs'
// -list output: routing algorithms, destination patterns and arrival
// sources. prefix qualifies the pattern/traffic flag names in the section
// headers for commands (swtrace) that do not take those flags themselves.
func PrintRegistries(w io.Writer, prefix string) {
	fmt.Fprintln(w, "routing algorithms (-alg):")
	for _, info := range routing.Algorithms() {
		fmt.Fprintf(w, "  %-18s V>=%d  %s\n", info.Name, info.MinV, info.Description)
	}
	fmt.Fprintf(w, "\ndestination patterns (%s-pattern):\n", prefix)
	for _, info := range traffic.Patterns() {
		fmt.Fprintf(w, "  %-40s %s\n", info.Usage, info.Description)
	}
	fmt.Fprintf(w, "\narrival sources (%s-traffic):\n", prefix)
	for _, info := range traffic.Sources() {
		fmt.Fprintf(w, "  %-52s %s\n", info.Usage, info.Description)
	}
}
