package core

import (
	"runtime"
	"sync"

	"repro/internal/metrics"
)

// Point is one labelled simulation configuration inside a sweep.
type Point struct {
	// Label identifies the point in reports (e.g. "det V=4 M=32 nf=3
	// λ=0.006").
	Label string
	// Config is the full simulation configuration.
	Config Config
}

// PointResult pairs a sweep point with its outcome.
type PointResult struct {
	Point
	Results metrics.Results
	Err     error
}

// RunSweep executes every point, fanning out over a worker pool. Each
// engine instance is single-goroutine and deterministic, so results are
// identical to serial execution regardless of worker count. workers <= 0
// uses GOMAXPROCS.
func RunSweep(points []Point, workers int) []PointResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}
	results := make([]PointResult, len(points))
	if workers <= 1 {
		for i, p := range points {
			res, err := Run(p.Config)
			results[i] = PointResult{Point: p, Results: res, Err: err}
		}
		return results
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				res, err := Run(points[i].Config)
				results[i] = PointResult{Point: points[i], Results: res, Err: err}
			}
		}()
	}
	for i := range points {
		work <- i
	}
	close(work)
	wg.Wait()
	return results
}
