package core

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"repro/internal/metrics"
)

// Point is one labelled simulation configuration inside a sweep.
type Point struct {
	// Label identifies the point in reports (e.g. "det V=4 M=32 nf=3
	// λ=0.006").
	Label string
	// Config is the full simulation configuration.
	Config Config
}

// PointResult pairs a sweep point with its outcome.
type PointResult struct {
	Point
	Results metrics.Results
	Err     error
}

// RunSweep executes every point, fanning out over a worker pool. Each
// engine instance is single-goroutine and deterministic, so results are
// identical to serial execution regardless of worker count. workers <= 0
// uses GOMAXPROCS. A point that panics is reported through its
// PointResult.Err; it never takes down the pool or the other points.
//
// RunSweep is the compatibility entry point kept for existing callers; it
// is a thin shim over RunSweepFunc. New code that needs named plans,
// checkpoint/resume, sharding or saturation search should go through the
// sweep subsystem in internal/sweep, which builds on RunSweepFunc.
func RunSweep(points []Point, workers int) []PointResult {
	return RunSweepFunc(points, workers, nil)
}

// RunSweepFunc is RunSweep with a completion callback: done (when non-nil)
// is invoked once per point as it finishes, with the point's index into
// points and its result. Calls to done are serialized (never concurrent),
// but arrive in completion order, not index order — the sweep subsystem
// uses this to journal each result the moment it exists, so an
// interrupted sweep loses at most the points in flight.
func RunSweepFunc(points []Point, workers int, done func(int, PointResult)) []PointResult {
	return runSweep(points, workers, Run, done)
}

// runSweep is RunSweepFunc with the per-point runner injected for testing.
func runSweep(points []Point, workers int, run func(Config) (metrics.Results, error), done func(int, PointResult)) []PointResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}
	var doneMu sync.Mutex
	exec := func(i int) PointResult {
		res, err := runPointSafe(points[i].Config, run)
		r := PointResult{Point: points[i], Results: res, Err: err}
		if done != nil {
			doneMu.Lock()
			done(i, r)
			doneMu.Unlock()
		}
		return r
	}
	results := make([]PointResult, len(points))
	if workers <= 1 {
		for i := range points {
			results[i] = exec(i)
		}
		return results
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				results[i] = exec(i)
			}
		}()
	}
	for i := range points {
		work <- i
	}
	close(work)
	wg.Wait()
	return results
}

// RunPointFunc executes one point with the pool's panic recovery but no
// pool: a crashing configuration becomes PointResult.Err instead of a
// process death. It is the per-point primitive behind RunSweepFunc,
// exported for callers that schedule points one at a time — the sweep
// coordinator's workers lease single points and must survive a
// poisonous one exactly like a local pool does. run is the simulator
// (core.Run outside tests).
func RunPointFunc(pt Point, run func(Config) (metrics.Results, error)) PointResult {
	res, err := runPointSafe(pt.Config, run)
	return PointResult{Point: pt, Results: res, Err: err}
}

// runPointSafe converts a panicking point into an error so one bad
// configuration cannot crash a whole sweep.
func runPointSafe(c Config, run func(Config) (metrics.Results, error)) (res metrics.Results, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: sweep point panicked: %v\n%s", r, debug.Stack())
		}
	}()
	return run(c)
}
