// Package core is the library façade: a declarative Config describing one
// simulation experiment (topology, routing, virtual channels, faults,
// workload, measurement protocol), a Run function executing it on the
// flit-level engine, and the parallel worker pool (RunSweep/RunSweepFunc)
// behind the multi-point parameter sweeps of every figure of the paper.
// Plan identity, checkpoint/resume, sharding and saturation search live a
// layer up, in the sweep subsystem (repro/internal/sweep), which drives
// the pool through RunSweepFunc.
package core

import (
	"fmt"
	"runtime"
	"strconv"

	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// ShapeStamp places one fault-region silhouette into a plane of the torus.
type ShapeStamp struct {
	// Spec is the silhouette and size (see fault.ShapeSpec).
	Spec fault.ShapeSpec
	// DimA, DimB span the plane the shape is stamped into.
	DimA, DimB int
	// Base fixes the remaining coordinates (node id; its DimA/DimB
	// coordinates are ignored in favour of the spec anchors).
	Base topology.NodeID
}

// FaultSpec describes the fault configuration of a run.
type FaultSpec struct {
	// RandomNodes places this many uniform random node faults, rejecting
	// placements that disconnect the network (assumption (h)).
	RandomNodes int
	// Shapes stamps coalesced fault regions (Fig. 1 / Fig. 5 silhouettes).
	Shapes []ShapeStamp
	// Links fails individual bidirectional links (src node + outgoing port).
	Links []struct {
		Src  topology.NodeID
		Port topology.Port
	}
}

// Empty reports whether the spec describes a fault-free network.
func (fs FaultSpec) Empty() bool {
	return fs.RandomNodes == 0 && len(fs.Shapes) == 0 && len(fs.Links) == 0
}

// Config fully describes one simulation point. The zero value is not
// runnable; start from DefaultConfig.
type Config struct {
	// Topology is the network spec in the topology registry:
	// "torus:k=8,n=2" (the paper's networks, the default), "mesh:k=8,n=2",
	// "hypercube:n=10", optionally with a per-link latency overlay
	// (",latmap=<file>"); see topology.Topologies. Empty defers to the
	// legacy K/N fields, which select a torus.
	Topology string
	// K is the radix and N the dimensionality of the k-ary n-cube.
	// Deprecated: legacy shorthand for Topology = "torus:k=K,n=N",
	// honoured only when Topology is empty.
	K, N int
	// V is the number of virtual channels per physical channel (paper
	// sweeps 4, 6, 10).
	V int
	// BufDepth is the per-VC flit buffer depth.
	BufDepth int
	// MsgLen is the fixed message length in flits (paper: 32, 64).
	MsgLen int
	// Lambda is the per-node Poisson generation rate in
	// messages/node/cycle.
	Lambda float64
	// Algorithm names the routing algorithm in the routing registry
	// ("det", "adaptive", "valiant", ...; see routing.Names). Empty defers
	// to the legacy Adaptive flag.
	Algorithm string
	// Adaptive selects Duato-based adaptive SW-Based routing; false is the
	// deterministic (e-cube) base. Deprecated: set Algorithm instead; the
	// flag is honoured only when Algorithm is empty.
	Adaptive bool
	// Pattern is the destination-pattern spec in the traffic registry:
	// "uniform" (paper), "transpose", "hotspot:frac=0.1,node=12",
	// "bitrev", "weights:5=3,rest=1", ... (see traffic.Patterns).
	Pattern string
	// HotspotFrac is the legacy hotspot probability, honoured only when
	// Pattern is exactly "hotspot" with no parameters. Deprecated: write
	// "hotspot:frac=..." into Pattern instead.
	HotspotFrac float64
	// Traffic is the arrival-process spec in the traffic source registry:
	// "poisson" (paper, the default), "interval:period=200",
	// "burst:on=50,off=200,rate=0.02", "nodemap:default=0.001,12=0.01",
	// "replay:file=w.csv", ... (see traffic.Sources). Rate-bearing sources
	// default their rate from Lambda so workloads compare at equal
	// offered load.
	Traffic string
	// CaptureWorkload, when non-nil, receives one (cycle,src,dst,len)
	// record per generated message; write it out with Workload.Write and
	// re-drive it with Traffic = "replay:file=...". Not part of the
	// serialisable experiment description.
	CaptureWorkload *trace.Workload `json:"-"`
	// Faults is the fault configuration.
	Faults FaultSpec
	// FaultSchedule makes the run dynamic: a schedule spec from the fault
	// registry ("trace:file=events.csv", "mtbf:mtbf=20000,mttr=2000")
	// applying fail/heal transitions mid-run on top of Faults. Empty means
	// static faults (the paper's model). Part of the experiment description
	// and of sweep identity; results stay bit-identical across Workers.
	FaultSchedule string
	// WarmupMessages are generated-but-unmeasured messages (paper: 10,000).
	WarmupMessages int
	// MeasureMessages is the measured delivery quota ending the run
	// (paper: 90,000 after warm-up; reduced defaults keep sweeps fast).
	MeasureMessages int
	// MaxCycles bounds the run; 0 derives a bound from the quota and rate.
	MaxCycles int64
	// Td is the router decision time; Delta the software re-injection
	// overhead (both 0 in the paper's experiments).
	Td, Delta int64
	// SaturationBacklog stops the run early (marked saturated) once source
	// queues hold this many messages; 0 derives 16×nodes.
	SaturationBacklog int
	// Escalation bounds the rerouting heuristics: after this many
	// absorptions a message is routed by the exact planner (0 = default).
	// Ablation knob.
	Escalation int
	// NoReinjectPriority disables the priority of absorbed messages over
	// new traffic. Ablation knob for the paper's starvation argument.
	NoReinjectPriority bool
	// LinkLatency is the flit time across a physical channel (default 1,
	// the paper's assumption (g)); CreditDelay the credit return time
	// (default 1). Ablation knobs for wire-dominated designs.
	LinkLatency, CreditDelay int64
	// DenseScan disables the engine's active-set scheduler and visits
	// every router every cycle. Benchmark/ablation knob: results are
	// bit-identical either way, only wall-clock cost differs. Implies
	// DenseVCScan.
	DenseScan bool
	// DenseVCScan disables the per-(port, VC) lane worklists inside each
	// visited router and scans all Ports()×V input lanes per busy router.
	// Benchmark/ablation knob mirroring DenseScan: results are
	// bit-identical either way, only wall-clock cost differs.
	DenseVCScan bool
	// NoLinkCache disables the engine's precomputed per-link geometry
	// table and dispatches through the topology interface per flit.
	// Benchmark/ablation knob: results are bit-identical either way, only
	// Step cost differs.
	NoLinkCache bool
	// NoArena disables the message arena and allocates every message on
	// the garbage-collected heap, as the engine originally did.
	// Benchmark/ablation knob mirroring DenseScan/NoLinkCache: results are
	// bit-identical either way, only allocation behaviour differs.
	NoArena bool
	// GlobalRNG restores the legacy VC-selection rng: one engine-wide
	// stream consumed in router-iteration order instead of the per-router
	// streams that are now the default. Reference/ablation knob. Unlike
	// the knobs above it changes the draw sequence — each mode is
	// bit-identical to itself across every scheduler/worker-independent
	// knob, not to the other mode — so it IS part of the experiment
	// description (and of sweep identity). Incompatible with Workers > 1.
	GlobalRNG bool
	// Workers is the engine's stepping-domain count: >1 partitions the
	// routers into contiguous node-range domains stepped by a worker pool
	// under a compute/commit barrier. Results are bit-identical for any
	// value (the determinism contract), so like CaptureWorkload it is an
	// execution detail, not part of the experiment description — it stays
	// out of the serialised config and sweep identity. 0 means 1 (serial);
	// values above the node count are clamped by the engine.
	Workers int `json:"-"`
	// Seed makes the run reproducible.
	Seed uint64
}

// DefaultConfig returns the paper's baseline configuration for a k-ary
// n-cube at the given load: V=4, 32-flit messages, uniform traffic,
// measurement protocol scaled down (1k warm-up, 10k measured) for
// interactive use. Full-paper scale is a matter of raising
// WarmupMessages/MeasureMessages to 10k/90k.
func DefaultConfig(k, n int, lambda float64) Config {
	return Config{
		K: k, N: n,
		V:               4,
		BufDepth:        2,
		MsgLen:          32,
		Lambda:          lambda,
		Pattern:         "uniform",
		WarmupMessages:  1000,
		MeasureMessages: 10000,
		Seed:            1,
	}
}

// TopologySpec resolves the topology spec for this config: the explicit
// Topology field when set, else the legacy K/N torus.
func (c Config) TopologySpec() string {
	if c.Topology != "" {
		return c.Topology
	}
	return fmt.Sprintf("torus:k=%d,n=%d", c.K, c.N)
}

// BuildTopology constructs the network this config describes through the
// topology registry.
func (c Config) BuildTopology() (topology.Network, error) {
	net, err := topology.NewNetwork(c.TopologySpec())
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return net, nil
}

// PatternSpec resolves the destination-pattern spec for this config:
// Pattern when set (empty means "uniform"), with the legacy HotspotFrac
// field folded into a bare "hotspot" for compatibility.
func (c Config) PatternSpec() string {
	p := c.Pattern
	if p == "" {
		p = "uniform"
	}
	if p == "hotspot" && c.HotspotFrac > 0 {
		p = fmt.Sprintf("hotspot:frac=%g", c.HotspotFrac)
	}
	return p
}

// TrafficSpec resolves the arrival-process spec for this config; empty
// means the paper's "poisson".
func (c Config) TrafficSpec() string {
	if c.Traffic == "" {
		return "poisson"
	}
	return c.Traffic
}

// AlgorithmName resolves the routing-algorithm registry key for this
// config: the explicit Algorithm field when set, else the legacy Adaptive
// flag's "adaptive"/"det".
func (c Config) AlgorithmName() string {
	if c.Algorithm != "" {
		return c.Algorithm
	}
	if c.Adaptive {
		return "adaptive"
	}
	return "det"
}

// Validate checks the configuration for consistency: registered algorithm,
// buildable topology, an algorithm/topology pairing the routing registry
// admits, well-formed workload specs with in-range node ids, and a fault
// specification that fits the selected network (plane dimensions, base
// nodes, link existence, silhouette extents — a mesh rejects shapes that
// would wrap).
func (c Config) Validate() error {
	name := c.AlgorithmName()
	info, ok := routing.Lookup(name)
	if !ok {
		return fmt.Errorf("core: unknown routing algorithm %q (registered: %v)", name, routing.Names())
	}
	if c.Topology == "" {
		// Legacy field errors keep their historical shape.
		if c.K < 2 {
			return fmt.Errorf("core: radix K must be >= 2, got %d", c.K)
		}
		if c.N < 1 {
			return fmt.Errorf("core: dimension N must be >= 1, got %d", c.N)
		}
	}
	net, err := c.BuildTopology()
	if err != nil {
		return err
	}
	if !info.Supports(net.Kind()) {
		return fmt.Errorf("core: algorithm %q supports topologies %v, not %q (topology %s)",
			name, info.Topologies, net.Kind(), net.Spec())
	}
	minV := info.MinVFor(net)
	switch {
	case c.V < minV:
		return fmt.Errorf("core: algorithm %q needs V >= %d on %s, got %d", name, minV, net, c.V)
	case c.BufDepth < 1:
		return fmt.Errorf("core: BufDepth must be >= 1, got %d", c.BufDepth)
	case c.MsgLen < 1:
		return fmt.Errorf("core: MsgLen must be >= 1, got %d", c.MsgLen)
	case c.Lambda <= 0:
		return fmt.Errorf("core: Lambda must be positive, got %g", c.Lambda)
	case c.MeasureMessages < 1:
		return fmt.Errorf("core: MeasureMessages must be >= 1, got %d", c.MeasureMessages)
	case c.WarmupMessages < 0:
		return fmt.Errorf("core: WarmupMessages must be >= 0, got %d", c.WarmupMessages)
	case c.Td < 0 || c.Delta < 0:
		return fmt.Errorf("core: Td and Delta must be >= 0")
	case c.Workers < 0:
		return fmt.Errorf("core: Workers must be >= 0, got %d", c.Workers)
	case c.GlobalRNG && c.Workers > 1:
		return fmt.Errorf("core: GlobalRNG (one serial rng stream) is incompatible with Workers > 1")
	}
	if err := c.validateWorkload(net); err != nil {
		return err
	}
	if c.FaultSchedule != "" {
		// Static checks only (registered name, well-formed parameters); a
		// trace file's contents are validated when the engine is built.
		if _, err := fault.CheckScheduleSpec(c.FaultSchedule); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	return c.validateFaults(net)
}

// validateFaults checks the fault specification against the selected
// topology: total fault count below the network size, every explicit link
// existing, and every shape stamp fitting its plane. Shape checks dry-run
// the real StampShape into a scratch set so validation and construction
// cannot drift.
func (c Config) validateFaults(net topology.Network) error {
	faulty := c.Faults.RandomNodes
	scratch := fault.NewSet(net)
	for _, s := range c.Faults.Shapes {
		n, err := s.Spec.CellCount()
		if err != nil {
			return fmt.Errorf("core: bad shape: %w", err)
		}
		faulty += n
		if _, err := fault.StampShape(scratch, s.Base, s.DimA, s.DimB, s.Spec); err != nil {
			return fmt.Errorf("core: bad shape: %w", err)
		}
	}
	for _, l := range c.Faults.Links {
		if err := checkFaultLink(net, l.Src, l.Port); err != nil {
			return err
		}
	}
	if faulty >= net.Nodes() {
		return fmt.Errorf("core: %d faults in a %d-node network", faulty, net.Nodes())
	}
	return nil
}

// validateWorkload checks the pattern and source specs: parseable,
// registered names, well-formed parameters (via the traffic registry's
// static checks), and — because only the config knows the network — that
// every referenced node id (hotspot's node=, the per-node entries of
// nodemap/weights) is inside the selected network.
func (c Config) validateWorkload(net topology.Network) error {
	total := net.Nodes()
	pspec, pinfo, err := traffic.CheckPatternSpec(c.PatternSpec())
	if err != nil {
		return fmt.Errorf("core: bad traffic pattern: %w", err)
	}
	if err := checkSpecNodeIDs(pspec, pinfo, total); err != nil {
		return fmt.Errorf("core: bad traffic pattern: %w", err)
	}
	tspec, tinfo, err := traffic.CheckSourceSpec(c.TrafficSpec())
	if err != nil {
		return fmt.Errorf("core: bad traffic source: %w", err)
	}
	if err := checkSpecNodeIDs(tspec, tinfo, total); err != nil {
		return fmt.Errorf("core: bad traffic source: %w", err)
	}
	return nil
}

// checkSpecNodeIDs range-checks every node id a workload spec references —
// the decimal-keyed per-node parameters plus the parameters the registry
// declares as node-valued (Info.NodeIDKeys) — against the network size.
func checkSpecNodeIDs(spec traffic.Spec, info traffic.Info, total int) error {
	inRange := func(s string) error {
		id, err := strconv.Atoi(s)
		if err != nil || id < 0 || id >= total {
			return fmt.Errorf("node id %q out of range [0,%d)", s, total)
		}
		return nil
	}
	for _, p := range spec.Params {
		if traffic.IsNodeKey(p.Key) {
			if err := inRange(p.Key); err != nil {
				return err
			}
		}
	}
	for _, key := range info.NodeIDKeys {
		if s, ok := spec.Get(key); ok {
			if err := inRange(s); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkFaultLink verifies that an explicit fault link names an existing
// channel of the network; Validate and BuildFaults share it so the
// validation and construction checks cannot drift.
func checkFaultLink(net topology.Network, src topology.NodeID, port topology.Port) error {
	if !net.Valid(src) {
		return fmt.Errorf("core: fault link source %d out of range [0,%d)", src, net.Nodes())
	}
	if port < 0 || int(port) >= net.Degree() || !net.HasLink(src, port.Dim(), port.Dir()) {
		return fmt.Errorf("core: fault link %v does not exist on %s",
			topology.ChannelID{Src: src, Port: port}, net)
	}
	return nil
}

// maxCycles derives the run bound when Config.MaxCycles is zero: twenty
// times the ideal time for the source to generate the quota, floored
// generously. Sources that report their long-run aggregate rate
// (traffic.MeanRater — nodemap, explicit rate=/period= parameters, replay)
// override the λ-derived default, so a workload lighter than λ is not cut
// off and flagged saturated spuriously.
func (c Config) maxCycles(src traffic.Source, nodes int) int64 {
	if c.MaxCycles > 0 {
		return c.MaxCycles
	}
	rate := c.Lambda * float64(nodes)
	if mr, ok := src.(traffic.MeanRater); ok && mr.MeanRate() > 0 {
		rate = mr.MeanRate()
	}
	quota := float64(c.WarmupMessages + c.MeasureMessages)
	bound := int64(20 * quota / rate)
	if bound < 500_000 {
		bound = 500_000
	}
	return bound
}

// saturationBacklog derives the early-stop backlog threshold.
func (c Config) saturationBacklog(nodes int) int {
	if c.SaturationBacklog > 0 {
		return c.SaturationBacklog
	}
	return 16 * nodes
}

// MinDomainNodes is the smallest per-domain router count AutoWorkers
// considers worth a worker: below a few hundred routers the per-cycle
// barrier and mailbox bookkeeping outweighs the parallel phase work.
const MinDomainNodes = 256

// AutoWorkers picks an engine worker count for a network of the given
// size: one domain per MinDomainNodes routers, capped at GOMAXPROCS,
// floored at 1 (serial). Used by callers with an "auto" workers setting
// (swsim -engine-workers); explicit Config.Workers values bypass it.
func AutoWorkers(nodes int) int {
	w := nodes / MinDomainNodes
	if max := runtime.GOMAXPROCS(0); w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}
