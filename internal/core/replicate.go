package core

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/stats"
)

// Replicated aggregates R independent replications of one configuration
// (different seeds, hence different fault placements, traffic and VC
// choices) into means with 95% confidence half-widths. This is the
// "independent of relative positions of failures" protocol of §5.2 applied
// to any metric.
type Replicated struct {
	// Replications actually completed without error.
	Replications int
	// Saturated counts replications flagged saturated.
	Saturated int
	// MeanLatency/LatencyCI aggregate the per-replication mean latencies.
	MeanLatency, LatencyCI float64
	// Throughput/ThroughputCI aggregate delivered msgs/node/cycle.
	Throughput, ThroughputCI float64
	// QueuedPerMessage/QueuedCI aggregate software stops per measured
	// delivery (scale-free version of Fig. 7's counter).
	QueuedPerMessage, QueuedCI float64
	// Runs holds the individual results for inspection.
	Runs []metrics.Results
}

// RunReplicated executes cfg with seeds seedBase, seedBase+1, ...,
// seedBase+r-1 in parallel and aggregates. It fails only if every
// replication fails; partial errors reduce Replications.
func RunReplicated(cfg Config, r int, seedBase uint64, workers int) (Replicated, error) {
	if r < 1 {
		return Replicated{}, fmt.Errorf("core: need at least 1 replication, got %d", r)
	}
	points := make([]Point, r)
	for i := 0; i < r; i++ {
		c := cfg
		c.Seed = seedBase + uint64(i)
		points[i] = Point{Label: fmt.Sprintf("rep%d", i), Config: c}
	}
	results := RunSweep(points, workers)
	var agg Replicated
	var lat, thr, q stats.Welford
	var firstErr error
	for _, pr := range results {
		if pr.Err != nil {
			if firstErr == nil {
				firstErr = pr.Err
			}
			continue
		}
		agg.Replications++
		agg.Runs = append(agg.Runs, pr.Results)
		if pr.Results.Saturated {
			agg.Saturated++
		}
		lat.Add(pr.Results.MeanLatency)
		thr.Add(pr.Results.Throughput)
		if pr.Results.Delivered > 0 {
			q.Add(float64(pr.Results.QueuedTotal()) / float64(pr.Results.Delivered))
		}
	}
	if agg.Replications == 0 {
		return Replicated{}, fmt.Errorf("core: all %d replications failed: %w", r, firstErr)
	}
	agg.MeanLatency, agg.LatencyCI = lat.Mean(), lat.CI95()
	agg.Throughput, agg.ThroughputCI = thr.Mean(), thr.CI95()
	agg.QueuedPerMessage, agg.QueuedCI = q.Mean(), q.CI95()
	return agg, nil
}

// String renders the aggregate as a one-line summary with confidence
// half-widths, suitable for report rows.
func (r Replicated) String() string {
	return fmt.Sprintf("reps=%d (sat %d) latency=%.1f±%.1f thr=%.5f±%.5f queued/msg=%.3f±%.3f",
		r.Replications, r.Saturated, r.MeanLatency, r.LatencyCI,
		r.Throughput, r.ThroughputCI, r.QueuedPerMessage, r.QueuedCI)
}
