package core

import "testing"

func TestRunReplicatedAggregates(t *testing.T) {
	cfg := DefaultConfig(8, 2, 0.004)
	cfg.WarmupMessages = 50
	cfg.MeasureMessages = 800
	cfg.Faults.RandomNodes = 3
	rep, err := RunReplicated(cfg, 4, 500, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replications != 4 || len(rep.Runs) != 4 {
		t.Fatalf("replications = %d", rep.Replications)
	}
	if rep.MeanLatency <= 0 || rep.Throughput <= 0 {
		t.Fatalf("aggregates not positive: %+v", rep)
	}
	if rep.LatencyCI <= 0 {
		t.Fatal("CI should be positive across different placements")
	}
	if rep.QueuedPerMessage <= 0 {
		t.Fatal("queued/msg should be positive with 3 faults")
	}
	if rep.String() == "" {
		t.Fatal("empty String")
	}
	// Different seeds must actually differ (placements vary).
	same := true
	for _, r := range rep.Runs[1:] {
		if r.MeanLatency != rep.Runs[0].MeanLatency {
			same = false
		}
	}
	if same {
		t.Fatal("all replications identical; seeds not applied")
	}
}

func TestRunReplicatedValidation(t *testing.T) {
	cfg := DefaultConfig(8, 2, 0.004)
	if _, err := RunReplicated(cfg, 0, 1, 1); err == nil {
		t.Fatal("r=0 accepted")
	}
	bad := cfg
	bad.V = 0
	if _, err := RunReplicated(bad, 2, 1, 1); err == nil {
		t.Fatal("invalid config accepted")
	}
}
