package core

import (
	"strings"
	"testing"

	"repro/internal/metrics"
)

// TestSweepSurfacesPanics injects a runner that panics on selected points
// and checks RunSweep's contract: the panic becomes that point's Err, the
// other points complete, and the pool survives — serially and in
// parallel.
func TestSweepSurfacesPanics(t *testing.T) {
	points := make([]Point, 6)
	for i := range points {
		points[i] = Point{Label: string(rune('a' + i)), Config: DefaultConfig(4, 2, 0.01)}
	}
	run := func(c Config) (metrics.Results, error) {
		if c.Seed == 0 { // DefaultConfig sets Seed=1; poison below clears it
			panic("boom: poisoned point")
		}
		return metrics.Results{Delivered: 1}, nil
	}
	points[1].Config.Seed = 0
	points[4].Config.Seed = 0
	for _, workers := range []int{1, 3} {
		results := runSweep(points, workers, run, nil)
		for i, r := range results {
			poisoned := i == 1 || i == 4
			if poisoned {
				if r.Err == nil || !strings.Contains(r.Err.Error(), "panicked") {
					t.Fatalf("workers=%d point %d: panic not surfaced: %v", workers, i, r.Err)
				}
				if !strings.Contains(r.Err.Error(), "boom") {
					t.Fatalf("workers=%d point %d: panic value lost: %v", workers, i, r.Err)
				}
				continue
			}
			if r.Err != nil {
				t.Fatalf("workers=%d point %d: healthy point failed: %v", workers, i, r.Err)
			}
			if r.Results.Delivered != 1 {
				t.Fatalf("workers=%d point %d: result not propagated", workers, i)
			}
		}
	}
}

// TestRunSelectsAlgorithmByName exercises the registry seam end to end:
// every registered algorithm with MinV <= 4 must complete a small faulted
// run via Config.Algorithm and deliver its quota.
func TestRunSelectsAlgorithmByName(t *testing.T) {
	for _, name := range []string{"det", "adaptive", "valiant", "valiant-adaptive"} {
		name := name
		t.Run(name, func(t *testing.T) {
			c := DefaultConfig(8, 2, 0.004)
			c.Algorithm = name
			c.V = 4
			c.WarmupMessages = 50
			c.MeasureMessages = 500
			c.Faults.RandomNodes = 3
			c.Seed = 5
			res, err := Run(c)
			if err != nil {
				t.Fatal(err)
			}
			if res.Delivered < 500 {
				t.Fatalf("delivered %d < quota", res.Delivered)
			}
			if res.Dropped != 0 {
				t.Fatalf("dropped %d messages", res.Dropped)
			}
		})
	}
}

// TestRunUnknownAlgorithm checks the registry's error path through the
// config layer.
func TestRunUnknownAlgorithm(t *testing.T) {
	c := DefaultConfig(4, 2, 0.01)
	c.Algorithm = "quantum"
	if _, err := Run(c); err == nil || !strings.Contains(err.Error(), "unknown routing algorithm") {
		t.Fatalf("unknown algorithm not rejected: %v", err)
	}
}

// TestAlgorithmNameLegacyFlag pins the Adaptive-flag compatibility rule.
func TestAlgorithmNameLegacyFlag(t *testing.T) {
	c := Config{}
	if got := c.AlgorithmName(); got != "det" {
		t.Fatalf("zero config resolves to %q, want det", got)
	}
	c.Adaptive = true
	if got := c.AlgorithmName(); got != "adaptive" {
		t.Fatalf("Adaptive flag resolves to %q, want adaptive", got)
	}
	c.Algorithm = "valiant"
	if got := c.AlgorithmName(); got != "valiant" {
		t.Fatalf("explicit Algorithm resolves to %q, want valiant", got)
	}
}
