package core

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/message"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// BuildFaults materialises a fault specification on the network. Random
// placement derives its stream from seed; stamped shapes are deterministic.
// The resulting configuration is rejected if it names nonexistent links or
// disconnects the network.
func BuildFaults(t topology.Network, spec FaultSpec, seed uint64) (*fault.Set, error) {
	r := rng.New(seed).Split(0xfa017)
	var fs *fault.Set
	if spec.RandomNodes > 0 {
		var err error
		fs, err = fault.Random(t, spec.RandomNodes, r, fault.DefaultRandomOptions())
		if err != nil {
			return nil, err
		}
	} else {
		fs = fault.NewSet(t)
	}
	for _, s := range spec.Shapes {
		if _, err := fault.StampShape(fs, s.Base, s.DimA, s.DimB, s.Spec); err != nil {
			return nil, err
		}
	}
	for _, l := range spec.Links {
		if err := checkFaultLink(t, l.Src, l.Port); err != nil {
			return nil, err
		}
		fs.MarkLink(l.Src, l.Port)
	}
	if fs.Disconnects() {
		return nil, fmt.Errorf("core: fault specification disconnects the network")
	}
	return fs, nil
}

// buildWorkload constructs the config's workload from the traffic
// registries: the destination pattern (spatial) feeding the arrival source
// (temporal), optionally wrapped in a capture recorder. r must be the
// stream the pre-registry code handed to traffic.NewGenerator (the run
// seed's Split(1)) so the default poisson+uniform path consumes random
// numbers in exactly the historical order.
func buildWorkload(c Config, t topology.Network, fs *fault.Set, mode message.Mode, pool *message.Pool, r *rng.Stream) (traffic.Source, error) {
	pattern, err := traffic.NewPattern(c.PatternSpec(), t, fs)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	src, err := traffic.NewSource(c.TrafficSpec(), traffic.Env{
		T:       t,
		F:       fs,
		Sources: fs.HealthyNodes(),
		Lambda:  c.Lambda,
		MsgLen:  c.MsgLen,
		Mode:    mode,
		Pattern: pattern,
		R:       r,
		Pool:    pool,
	})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if c.CaptureWorkload != nil {
		return traffic.NewCapture(src, c.CaptureWorkload), nil
	}
	return src, nil
}

// chaosWindow is the availability/convergence window length (cycles) for
// scheduled runs. Coarse enough that a window holds a statistically useful
// number of deliveries at moderate load, fine enough to resolve recovery
// after a transition. Static runs never open windows.
const chaosWindow = 1000

// Engine is one fully constructed simulation point that the caller steps
// explicitly. Run remains the one-shot façade; the steppable form exists
// for callers that must separate construction from execution — benchmarks
// measuring steady-state Step cost, debuggers, visualisers.
type Engine struct {
	nw           *network.Network
	col          *metrics.Collector
	sources      int
	quota        uint64
	limit        int64
	backlogLimit int
	saturated    bool
}

// NewEngine validates the config and builds the simulation point: topology,
// faults, routing algorithm, workload, message pool and engine, all wired
// together but not yet advanced a single cycle.
func NewEngine(c Config) (*Engine, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	t, err := c.BuildTopology()
	if err != nil {
		return nil, err
	}
	fs, err := BuildFaults(t, c.Faults, c.Seed)
	if err != nil {
		return nil, err
	}
	alg, err := routing.New(c.AlgorithmName(), t, fs, c.V)
	if err != nil {
		return nil, err
	}
	mode := alg.BaseMode()
	if c.Escalation > 0 {
		if es, ok := alg.(routing.EscalationSetter); ok {
			es.SetEscalation(c.Escalation)
		}
	}
	r := rng.New(c.Seed)
	sources := fs.HealthyNodes()
	// One pool serves the source (allocation) and the engine (resolution,
	// recycling); see message.Pool for the determinism contract.
	pool := message.NewPool(t.N(), c.NoArena)
	gen, err := buildWorkload(c, t, fs, mode, pool, r.Split(1))
	if err != nil {
		return nil, err
	}
	col := metrics.NewCollector(c.WarmupMessages)
	params := network.Params{
		V:                  c.V,
		BufDepth:           c.BufDepth,
		Td:                 c.Td,
		Delta:              c.Delta,
		NoReinjectPriority: c.NoReinjectPriority,
		LinkLatency:        c.LinkLatency,
		CreditDelay:        c.CreditDelay,
		DenseScan:          c.DenseScan,
		DenseVCScan:        c.DenseVCScan,
		NoLinkCache:        c.NoLinkCache,
		NoArena:            c.NoArena,
		GlobalRNG:          c.GlobalRNG,
		Workers:            c.Workers,
		Pool:               pool,
	}
	if c.Workers > 1 {
		// Each extra engine worker needs its own routing instance (decision
		// scratch is per-goroutine); clones are configured identically to
		// alg, so any worker reaches the same decisions.
		params.AlgFactory = func() (routing.Router, error) {
			a, err := routing.New(c.AlgorithmName(), t, fs, c.V)
			if err != nil {
				return nil, err
			}
			if c.Escalation > 0 {
				if es, ok := a.(routing.EscalationSetter); ok {
					es.SetEscalation(c.Escalation)
				}
			}
			return a, nil
		}
	}
	// The engine stream MUST split before the schedule stream: Split
	// advances the parent, so deriving the schedule stream first would
	// silently shift the engine's (and every router's) draw sequence and
	// break static-run reproducibility. With this order a schedule-free
	// config draws identically whether or not the schedule layer exists.
	engineStream := r.Split(2)
	if c.FaultSchedule != "" {
		sched, err := fault.NewSchedule(c.FaultSchedule, fault.ScheduleEnv{
			T: t, Base: fs, R: r.Split(rng.ScheduleLabel()),
		})
		if err != nil {
			return nil, err
		}
		params.Schedule = sched
		col.EnableWindows(chaosWindow)
	}
	nw := network.New(t, fs, alg, gen, col, params, engineStream)
	return &Engine{
		nw:           nw,
		col:          col,
		sources:      len(sources),
		quota:        uint64(c.MeasureMessages),
		limit:        c.maxCycles(gen, len(sources)),
		backlogLimit: c.saturationBacklog(len(sources)),
	}, nil
}

// Step advances the simulation one cycle.
func (e *Engine) Step() { e.nw.Step() }

// Now returns the current cycle.
func (e *Engine) Now() int64 { return e.nw.Now() }

// Network exposes the underlying engine for inspection.
func (e *Engine) Network() *network.Network { return e.nw }

// Done reports whether the run's termination condition has been reached:
// delivery quota met, cycle bound hit, or source backlog over the
// saturation threshold (the latter two flag the run saturated).
func (e *Engine) Done() bool {
	if e.col.DeliveredCount() >= e.quota {
		return true
	}
	if e.nw.Now() >= e.limit {
		e.saturated = true
		return true
	}
	if e.nw.Now()%1024 == 0 && e.nw.Backlog() > e.backlogLimit {
		e.saturated = true
		return true
	}
	return false
}

// Finalize computes the run's measured results at the current cycle.
func (e *Engine) Finalize() metrics.Results {
	return e.col.Finalize(e.nw.Now(), e.sources, e.saturated)
}

// Run executes one simulation point to completion and returns its measured
// results. The run ends when the measured delivery quota is met, or is cut
// short (and flagged saturated) when the cycle bound or the source-backlog
// threshold is hit.
func Run(c Config) (metrics.Results, error) {
	e, err := NewEngine(c)
	if err != nil {
		return metrics.Results{}, err
	}
	for !e.Done() {
		e.Step()
	}
	return e.Finalize(), nil
}
