package core

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/message"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// BuildFaults materialises a fault specification on the network. Random
// placement derives its stream from seed; stamped shapes are deterministic.
// The resulting configuration is rejected if it names nonexistent links or
// disconnects the network.
func BuildFaults(t topology.Network, spec FaultSpec, seed uint64) (*fault.Set, error) {
	r := rng.New(seed).Split(0xfa017)
	var fs *fault.Set
	if spec.RandomNodes > 0 {
		var err error
		fs, err = fault.Random(t, spec.RandomNodes, r, fault.DefaultRandomOptions())
		if err != nil {
			return nil, err
		}
	} else {
		fs = fault.NewSet(t)
	}
	for _, s := range spec.Shapes {
		if _, err := fault.StampShape(fs, s.Base, s.DimA, s.DimB, s.Spec); err != nil {
			return nil, err
		}
	}
	for _, l := range spec.Links {
		if err := checkFaultLink(t, l.Src, l.Port); err != nil {
			return nil, err
		}
		fs.MarkLink(l.Src, l.Port)
	}
	if fs.Disconnects() {
		return nil, fmt.Errorf("core: fault specification disconnects the network")
	}
	return fs, nil
}

// buildWorkload constructs the config's workload from the traffic
// registries: the destination pattern (spatial) feeding the arrival source
// (temporal), optionally wrapped in a capture recorder. r must be the
// stream the pre-registry code handed to traffic.NewGenerator (the run
// seed's Split(1)) so the default poisson+uniform path consumes random
// numbers in exactly the historical order.
func buildWorkload(c Config, t topology.Network, fs *fault.Set, mode message.Mode, r *rng.Stream) (traffic.Source, error) {
	pattern, err := traffic.NewPattern(c.PatternSpec(), t, fs)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	src, err := traffic.NewSource(c.TrafficSpec(), traffic.Env{
		T:       t,
		F:       fs,
		Sources: fs.HealthyNodes(),
		Lambda:  c.Lambda,
		MsgLen:  c.MsgLen,
		Mode:    mode,
		Pattern: pattern,
		R:       r,
	})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if c.CaptureWorkload != nil {
		return traffic.NewCapture(src, c.CaptureWorkload), nil
	}
	return src, nil
}

// Run executes one simulation point to completion and returns its measured
// results. The run ends when the measured delivery quota is met, or is cut
// short (and flagged saturated) when the cycle bound or the source-backlog
// threshold is hit.
func Run(c Config) (metrics.Results, error) {
	if err := c.Validate(); err != nil {
		return metrics.Results{}, err
	}
	t, err := c.BuildTopology()
	if err != nil {
		return metrics.Results{}, err
	}
	fs, err := BuildFaults(t, c.Faults, c.Seed)
	if err != nil {
		return metrics.Results{}, err
	}
	alg, err := routing.New(c.AlgorithmName(), t, fs, c.V)
	if err != nil {
		return metrics.Results{}, err
	}
	mode := alg.BaseMode()
	if c.Escalation > 0 {
		if es, ok := alg.(routing.EscalationSetter); ok {
			es.SetEscalation(c.Escalation)
		}
	}
	r := rng.New(c.Seed)
	sources := fs.HealthyNodes()
	gen, err := buildWorkload(c, t, fs, mode, r.Split(1))
	if err != nil {
		return metrics.Results{}, err
	}
	col := metrics.NewCollector(c.WarmupMessages)
	params := network.Params{
		V:                  c.V,
		BufDepth:           c.BufDepth,
		Td:                 c.Td,
		Delta:              c.Delta,
		NoReinjectPriority: c.NoReinjectPriority,
		LinkLatency:        c.LinkLatency,
		CreditDelay:        c.CreditDelay,
		DenseScan:          c.DenseScan,
		DenseVCScan:        c.DenseVCScan,
		NoLinkCache:        c.NoLinkCache,
	}
	nw := network.New(t, fs, alg, gen, col, params, r.Split(2))

	quota := uint64(c.MeasureMessages)
	limit := c.maxCycles(gen, len(sources))
	backlogLimit := c.saturationBacklog(len(sources))
	saturated := false
	for col.DeliveredCount() < quota {
		if nw.Now() >= limit {
			saturated = true
			break
		}
		nw.Step()
		if nw.Now()%1024 == 0 && nw.Backlog() > backlogLimit {
			saturated = true
			break
		}
	}
	return col.Finalize(nw.Now(), len(sources), saturated), nil
}
