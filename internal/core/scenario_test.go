package core

import (
	"testing"

	"repro/internal/fault"
)

// Scenario tests: run miniature versions of the paper's headline
// comparisons end-to-end through the public API and assert the qualitative
// outcomes the figures plot.

// Fig. 6 in miniature: adaptive throughput exceeds deterministic under
// saturation load with faults.
func TestScenarioAdaptiveThroughputWins(t *testing.T) {
	thr := func(adaptive bool) float64 {
		cfg := DefaultConfig(8, 2, 0.02) // well past saturation
		cfg.V = 6
		cfg.Adaptive = adaptive
		cfg.WarmupMessages = 200
		cfg.MeasureMessages = 3000
		cfg.Faults.RandomNodes = 5
		cfg.Seed = 9
		cfg.SaturationBacklog = 1 << 30
		cfg.MaxCycles = 40_000
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput
	}
	det, adp := thr(false), thr(true)
	if adp <= det {
		t.Fatalf("adaptive throughput %v not above deterministic %v", adp, det)
	}
}

// Fig. 5 in miniature: the concave U region (8 faults) costs deterministic
// routing more than the convex rect (20 faults) at moderate load.
func TestScenarioConcaveBeatsConvexInPain(t *testing.T) {
	lat := func(shape string) float64 {
		cfg := DefaultConfig(8, 2, 0.012)
		cfg.V = 10
		cfg.WarmupMessages = 300
		cfg.MeasureMessages = 5000
		cfg.Seed = 2
		cfg.Faults.Shapes = []ShapeStamp{{Spec: fault.PaperFig5Specs()[shape], DimA: 0, DimB: 1}}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanLatency
	}
	rect := lat("rect-shaped")
	u := lat("U-shaped")
	if u <= rect {
		t.Fatalf("U (8 faults) latency %v not above rect (20 faults) %v", u, rect)
	}
}

// Fig. 3 in miniature: capacity drops as faults accumulate
// (deterministic): at a load the fault-free network absorbs cleanly, the
// nf=5 network falls behind its offered traffic (accepted fraction sinks)
// and its latency multiplies.
func TestScenarioFaultsLowerSaturation(t *testing.T) {
	run := func(nf int) (accepted, latency float64) {
		cfg := DefaultConfig(8, 2, 0.011)
		cfg.V = 4
		cfg.WarmupMessages = 200
		cfg.MeasureMessages = 4000
		cfg.Faults.RandomNodes = nf
		cfg.Seed = 1001
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.AcceptedFraction, res.MeanLatency
	}
	accClean, latClean := run(0)
	accFaulty, latFaulty := run(5)
	if accClean < 0.97 {
		t.Fatalf("fault-free network should keep up at λ=0.011 (accepted %.3f)", accClean)
	}
	if accFaulty >= accClean {
		t.Fatalf("nf=5 accepted fraction %.3f not below fault-free %.3f", accFaulty, accClean)
	}
	if latFaulty < 2*latClean {
		t.Fatalf("nf=5 latency %.1f not at least 2x fault-free %.1f near saturation", latFaulty, latClean)
	}
}
