package core

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/topology"
)

func TestValidate(t *testing.T) {
	good := DefaultConfig(8, 2, 0.003)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(c *Config){
		func(c *Config) { c.K = 1 },
		func(c *Config) { c.N = 0 },
		func(c *Config) { c.V = 1 },
		func(c *Config) { c.V = 2; c.Adaptive = true },
		func(c *Config) { c.BufDepth = 0 },
		func(c *Config) { c.MsgLen = 0 },
		func(c *Config) { c.Lambda = 0 },
		func(c *Config) { c.MeasureMessages = 0 },
		func(c *Config) { c.WarmupMessages = -1 },
		func(c *Config) { c.Td = -1 },
		func(c *Config) { c.Pattern = "bursty" },
		func(c *Config) { c.Faults.RandomNodes = 64 },
	}
	for i, mutate := range bad {
		c := DefaultConfig(8, 2, 0.003)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestBuildFaultsRandomAndShapes(t *testing.T) {
	tor := topology.New(8, 2)
	spec := FaultSpec{
		RandomNodes: 3,
		Shapes: []ShapeStamp{{
			Spec: fault.ShapeSpec{Shape: fault.ShapeBar, A: 2, AnchorA: 6, AnchorB: 6},
			DimA: 0, DimB: 1,
		}},
	}
	fs, err := BuildFaults(tor, spec, 99)
	if err != nil {
		t.Fatal(err)
	}
	if fs.NumNodeFaults() < 5 {
		t.Fatalf("faults = %d, want >= 5", fs.NumNodeFaults())
	}
	if fs.Disconnects() {
		t.Fatal("disconnecting configuration returned")
	}
	// Deterministic given the seed.
	fs2, err := BuildFaults(tor, spec, 99)
	if err != nil {
		t.Fatal(err)
	}
	a, b := fs.FaultyNodes(), fs2.FaultyNodes()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("fault build not deterministic")
		}
	}
}

func TestBuildFaultsEmpty(t *testing.T) {
	tor := topology.New(4, 2)
	fs, err := BuildFaults(tor, FaultSpec{}, 1)
	if err != nil || fs.NumNodeFaults() != 0 {
		t.Fatalf("empty spec: %v, %d faults", err, fs.NumNodeFaults())
	}
	if !(FaultSpec{}).Empty() {
		t.Fatal("Empty() wrong")
	}
}

func TestRunSmokeFaultFree(t *testing.T) {
	c := DefaultConfig(4, 2, 0.01)
	c.WarmupMessages = 100
	c.MeasureMessages = 500
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Saturated {
		t.Fatal("low load run saturated")
	}
	if res.Delivered < 500 {
		t.Fatalf("delivered %d < quota", res.Delivered)
	}
	if res.MeanLatency < float64(c.MsgLen) {
		t.Fatalf("mean latency %.1f below message length", res.MeanLatency)
	}
	if res.QueuedTotal() != 0 {
		t.Fatal("software stops in fault-free run")
	}
	if res.Throughput <= 0 {
		t.Fatal("throughput not positive")
	}
}

func TestRunWithFaultsBothModes(t *testing.T) {
	for _, adaptive := range []bool{false, true} {
		c := DefaultConfig(8, 2, 0.004)
		c.Adaptive = adaptive
		c.V = 4
		c.WarmupMessages = 100
		c.MeasureMessages = 1000
		c.Faults.RandomNodes = 5
		c.Seed = 7
		res, err := Run(c)
		if err != nil {
			t.Fatalf("adaptive=%v: %v", adaptive, err)
		}
		if res.Delivered < 1000 {
			t.Fatalf("adaptive=%v: delivered %d", adaptive, res.Delivered)
		}
		if res.Dropped != 0 {
			t.Fatalf("adaptive=%v: dropped %d", adaptive, res.Dropped)
		}
		if res.QueuedTotal() == 0 {
			t.Fatalf("adaptive=%v: no absorptions with 5 faults", adaptive)
		}
	}
}

func TestRunSaturates(t *testing.T) {
	c := DefaultConfig(4, 2, 0.5) // absurd load: must saturate quickly
	c.WarmupMessages = 100
	c.MeasureMessages = 50000
	c.MaxCycles = 30000
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated {
		t.Fatal("overloaded run not flagged saturated")
	}
	if res.AcceptedFraction >= 1 {
		t.Fatalf("accepted fraction %v at 25x saturation load", res.AcceptedFraction)
	}
}

func TestRunDeterministicAcrossCalls(t *testing.T) {
	c := DefaultConfig(8, 2, 0.003)
	c.WarmupMessages = 50
	c.MeasureMessages = 400
	c.Faults.RandomNodes = 3
	r1, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("same config, different results:\n%+v\n%+v", r1, r2)
	}
}

func TestSweepMatchesSerialAndParallel(t *testing.T) {
	var points []Point
	for _, lambda := range []float64{0.002, 0.004} {
		for _, ad := range []bool{false, true} {
			c := DefaultConfig(4, 2, lambda)
			c.WarmupMessages = 50
			c.MeasureMessages = 300
			c.Adaptive = ad
			if ad {
				c.V = 4
			}
			points = append(points, Point{Label: "p", Config: c})
		}
	}
	serial := RunSweep(points, 1)
	parallel := RunSweep(points, 4)
	for i := range serial {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("sweep error: %v / %v", serial[i].Err, parallel[i].Err)
		}
		if serial[i].Results != parallel[i].Results {
			t.Fatalf("point %d differs between serial and parallel", i)
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	c := DefaultConfig(8, 2, 0.003)
	c.V = 0
	if _, err := Run(c); err == nil || !strings.Contains(err.Error(), "V >= 2") {
		t.Fatalf("bad config not rejected: %v", err)
	}
}

func TestPatterns(t *testing.T) {
	for _, p := range []string{"uniform", "transpose", "hotspot"} {
		c := DefaultConfig(4, 2, 0.01)
		c.Pattern = p
		c.WarmupMessages = 20
		c.MeasureMessages = 200
		res, err := Run(c)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if res.Delivered < 200 {
			t.Fatalf("%s: delivered %d", p, res.Delivered)
		}
	}
}
