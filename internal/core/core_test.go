package core

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/message"
	"repro/internal/rng"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/traffic"
)

func TestValidate(t *testing.T) {
	good := DefaultConfig(8, 2, 0.003)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(c *Config){
		func(c *Config) { c.K = 1 },
		func(c *Config) { c.N = 0 },
		func(c *Config) { c.V = 1 },
		func(c *Config) { c.V = 2; c.Adaptive = true },
		func(c *Config) { c.BufDepth = 0 },
		func(c *Config) { c.MsgLen = 0 },
		func(c *Config) { c.Lambda = 0 },
		func(c *Config) { c.MeasureMessages = 0 },
		func(c *Config) { c.WarmupMessages = -1 },
		func(c *Config) { c.Td = -1 },
		func(c *Config) { c.Pattern = "bursty" },                       // a source name, not a pattern
		func(c *Config) { c.Pattern = "hotspot:frac=1.5" },             // fraction out of (0,1]
		func(c *Config) { c.Pattern = "hotspot:node=64" },              // node outside the 8x8 torus
		func(c *Config) { c.Pattern = "hotspot:node=-1" },              // negative node
		func(c *Config) { c.Pattern = "weights:64=1" },                 // per-node key out of range
		func(c *Config) { c.Pattern = "uniform:x=1" },                  // unknown parameter
		func(c *Config) { c.Traffic = "uniform" },                      // a pattern name, not a source
		func(c *Config) { c.Traffic = "burst:on=-5" },                  // bad duration
		func(c *Config) { c.Traffic = "burst:quux=1" },                 // unknown parameter
		func(c *Config) { c.Traffic = "nodemap:default=0.001,64=0.1" }, // node out of range
		func(c *Config) { c.Traffic = "replay" },                       // missing file=
		func(c *Config) { c.Faults.RandomNodes = 64 },
	}
	for i, mutate := range bad {
		c := DefaultConfig(8, 2, 0.003)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestBuildFaultsRandomAndShapes(t *testing.T) {
	tor := topology.New(8, 2)
	spec := FaultSpec{
		RandomNodes: 3,
		Shapes: []ShapeStamp{{
			Spec: fault.ShapeSpec{Shape: fault.ShapeBar, A: 2, AnchorA: 6, AnchorB: 6},
			DimA: 0, DimB: 1,
		}},
	}
	fs, err := BuildFaults(tor, spec, 99)
	if err != nil {
		t.Fatal(err)
	}
	if fs.NumNodeFaults() < 5 {
		t.Fatalf("faults = %d, want >= 5", fs.NumNodeFaults())
	}
	if fs.Disconnects() {
		t.Fatal("disconnecting configuration returned")
	}
	// Deterministic given the seed.
	fs2, err := BuildFaults(tor, spec, 99)
	if err != nil {
		t.Fatal(err)
	}
	a, b := fs.FaultyNodes(), fs2.FaultyNodes()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("fault build not deterministic")
		}
	}
}

func TestBuildFaultsEmpty(t *testing.T) {
	tor := topology.New(4, 2)
	fs, err := BuildFaults(tor, FaultSpec{}, 1)
	if err != nil || fs.NumNodeFaults() != 0 {
		t.Fatalf("empty spec: %v, %d faults", err, fs.NumNodeFaults())
	}
	if !(FaultSpec{}).Empty() {
		t.Fatal("Empty() wrong")
	}
}

func TestRunSmokeFaultFree(t *testing.T) {
	c := DefaultConfig(4, 2, 0.01)
	c.WarmupMessages = 100
	c.MeasureMessages = 500
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Saturated {
		t.Fatal("low load run saturated")
	}
	if res.Delivered < 500 {
		t.Fatalf("delivered %d < quota", res.Delivered)
	}
	if res.MeanLatency < float64(c.MsgLen) {
		t.Fatalf("mean latency %.1f below message length", res.MeanLatency)
	}
	if res.QueuedTotal() != 0 {
		t.Fatal("software stops in fault-free run")
	}
	if res.Throughput <= 0 {
		t.Fatal("throughput not positive")
	}
}

func TestRunWithFaultsBothModes(t *testing.T) {
	for _, adaptive := range []bool{false, true} {
		c := DefaultConfig(8, 2, 0.004)
		c.Adaptive = adaptive
		c.V = 4
		c.WarmupMessages = 100
		c.MeasureMessages = 1000
		c.Faults.RandomNodes = 5
		c.Seed = 7
		res, err := Run(c)
		if err != nil {
			t.Fatalf("adaptive=%v: %v", adaptive, err)
		}
		if res.Delivered < 1000 {
			t.Fatalf("adaptive=%v: delivered %d", adaptive, res.Delivered)
		}
		if res.Dropped != 0 {
			t.Fatalf("adaptive=%v: dropped %d", adaptive, res.Dropped)
		}
		if res.QueuedTotal() == 0 {
			t.Fatalf("adaptive=%v: no absorptions with 5 faults", adaptive)
		}
	}
}

func TestRunSaturates(t *testing.T) {
	c := DefaultConfig(4, 2, 0.5) // absurd load: must saturate quickly
	c.WarmupMessages = 100
	c.MeasureMessages = 50000
	c.MaxCycles = 30000
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated {
		t.Fatal("overloaded run not flagged saturated")
	}
	if res.AcceptedFraction >= 1 {
		t.Fatalf("accepted fraction %v at 25x saturation load", res.AcceptedFraction)
	}
}

func TestRunDeterministicAcrossCalls(t *testing.T) {
	c := DefaultConfig(8, 2, 0.003)
	c.WarmupMessages = 50
	c.MeasureMessages = 400
	c.Faults.RandomNodes = 3
	r1, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("same config, different results:\n%+v\n%+v", r1, r2)
	}
}

func TestSweepMatchesSerialAndParallel(t *testing.T) {
	var points []Point
	for _, lambda := range []float64{0.002, 0.004} {
		for _, ad := range []bool{false, true} {
			c := DefaultConfig(4, 2, lambda)
			c.WarmupMessages = 50
			c.MeasureMessages = 300
			c.Adaptive = ad
			if ad {
				c.V = 4
			}
			points = append(points, Point{Label: "p", Config: c})
		}
	}
	serial := RunSweep(points, 1)
	parallel := RunSweep(points, 4)
	for i := range serial {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("sweep error: %v / %v", serial[i].Err, parallel[i].Err)
		}
		if !reflect.DeepEqual(serial[i].Results, parallel[i].Results) {
			t.Fatalf("point %d differs between serial and parallel", i)
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	c := DefaultConfig(8, 2, 0.003)
	c.V = 0
	if _, err := Run(c); err == nil || !strings.Contains(err.Error(), "V >= 2") {
		t.Fatalf("bad config not rejected: %v", err)
	}
}

func TestPatterns(t *testing.T) {
	for _, p := range []string{
		"uniform", "transpose", "hotspot",
		"hotspot:frac=0.2,node=7", "bitrev", "weights:3=2,9=1,rest=1",
	} {
		c := DefaultConfig(4, 2, 0.01)
		c.Pattern = p
		c.WarmupMessages = 20
		c.MeasureMessages = 200
		res, err := Run(c)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if res.Delivered < 200 {
			t.Fatalf("%s: delivered %d", p, res.Delivered)
		}
	}
}

// TestTrafficSources runs every generating source spec end-to-end through
// the full config → registry → engine path.
func TestTrafficSources(t *testing.T) {
	for _, s := range []string{
		"poisson", "poisson:rate=0.008",
		"interval", "interval:period=150",
		"burst:on=40,off=120", "burst:on=40,off=120,rate=0.03",
		"nodemap:default=0.005,0=0.02,7=0",
	} {
		c := DefaultConfig(4, 2, 0.01)
		c.Traffic = s
		c.WarmupMessages = 20
		c.MeasureMessages = 200
		res, err := Run(c)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if res.Delivered < 200 {
			t.Fatalf("%s: delivered %d", s, res.Delivered)
		}
	}
}

// TestCaptureThenReplayThroughRun closes the capture → file → replay loop
// at the façade level: a captured run's workload, written to disk and
// re-driven via Traffic="replay:file=...", must deliver the same message
// count with the same mean latency (the engine seed is unchanged and the
// workload is identical by construction).
func TestCaptureThenReplayThroughRun(t *testing.T) {
	var w trace.Workload
	c := DefaultConfig(8, 2, 0.006)
	c.WarmupMessages = 50
	c.MeasureMessages = 1000
	c.CaptureWorkload = &w
	base, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() == 0 {
		t.Fatal("nothing captured")
	}
	file := filepath.Join(t.TempDir(), "w.csv")
	f, err := os.Create(file)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	c2 := DefaultConfig(8, 2, 0.006)
	c2.WarmupMessages = 50
	c2.MeasureMessages = 1000
	c2.Traffic = "replay:file=" + file
	rep, err := Run(c2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != base.Delivered {
		t.Fatalf("replay delivered %d, capture run %d", rep.Delivered, base.Delivered)
	}
	if rep.MeanLatency != base.MeanLatency {
		t.Fatalf("replay mean latency %.3f, capture run %.3f", rep.MeanLatency, base.MeanLatency)
	}
}

func TestMaxCyclesTracksSourceRate(t *testing.T) {
	tor := topology.New(8, 2)
	fs := fault.NewSet(tor)
	build := func(c Config) traffic.Source {
		t.Helper()
		src, err := buildWorkload(c, tor, fs, message.Deterministic, nil, rng.New(c.Seed).Split(1))
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	base := DefaultConfig(8, 2, 0.004) // warmup 1000 + measure 10000
	quota := float64(base.WarmupMessages + base.MeasureMessages)

	// The default poisson source offers exactly λ, so the bound matches the
	// λ-derived formula.
	if got, want := base.maxCycles(build(base), 64), int64(20*quota/(0.004*64)); got != want {
		t.Errorf("poisson bound = %d, want %d", got, want)
	}

	// A nodemap far lighter than λ needs a proportionally longer run; the
	// λ-derived bound (~859k cycles) would truncate it spuriously. The
	// source accumulates its per-node rates, so allow a rounding cycle.
	light := base
	light.Traffic = "nodemap:default=0.0001"
	got, want := light.maxCycles(build(light), 64), int64(20*quota/(0.0001*64))
	if got < want-1 || got > want+1 {
		t.Errorf("nodemap bound = %d, want %d±1", got, want)
	}

	// Explicit MaxCycles always wins.
	pinned := light
	pinned.MaxCycles = 123
	if got := pinned.maxCycles(build(pinned), 64); got != 123 {
		t.Errorf("pinned bound = %d, want 123", got)
	}
}
