package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/topology"
)

// WorkloadRecord is one generated message of a captured workload: the cycle
// it was created, its endpoints, and its length in flits. A sequence of
// records is a complete, rng-free description of a run's offered traffic —
// enough to re-drive it through a different configuration (see
// internal/traffic's capture and replay sources).
type WorkloadRecord struct {
	Cycle int64
	Src   topology.NodeID
	Dst   topology.NodeID
	Len   int
}

// Workload is an append-only list of workload records in generation order.
type Workload struct {
	Records []WorkloadRecord
}

// Append adds one record.
func (w *Workload) Append(r WorkloadRecord) { w.Records = append(w.Records, r) }

// Len returns the number of captured records.
func (w *Workload) Len() int { return len(w.Records) }

// Write serialises the workload as CSV ("cycle,src,dst,len" per line) with
// a comment header, the format ParseWorkload reads back.
func (w *Workload) Write(out io.Writer) error {
	bw := bufio.NewWriter(out)
	if _, err := fmt.Fprintln(bw, "# workload: cycle,src,dst,len"); err != nil {
		return err
	}
	for _, r := range w.Records {
		if _, err := fmt.Fprintf(bw, "%d,%d,%d,%d\n", r.Cycle, r.Src, r.Dst, r.Len); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseWorkload reads the CSV format Write produces. Blank lines and lines
// starting with '#' are skipped.
func ParseWorkload(in io.Reader) (*Workload, error) {
	var w Workload
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != 4 {
			return nil, fmt.Errorf("trace: workload line %d: want cycle,src,dst,len, got %q", lineNo, line)
		}
		var vals [4]int64
		for i, f := range fields {
			v, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("trace: workload line %d: bad field %q", lineNo, f)
			}
			vals[i] = v
		}
		w.Append(WorkloadRecord{
			Cycle: vals[0],
			Src:   topology.NodeID(vals[1]),
			Dst:   topology.NodeID(vals[2]),
			Len:   int(vals[3]),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading workload: %w", err)
	}
	return &w, nil
}
