package trace

import (
	"strings"
	"testing"

	"repro/internal/topology"
)

func TestRecorderGroupsByMessage(t *testing.T) {
	r := NewRecorder()
	r.Trace(Event{Cycle: 1, Msg: 1, Kind: Inject, Node: 0})
	r.Trace(Event{Cycle: 2, Msg: 2, Kind: Inject, Node: 5})
	r.Trace(Event{Cycle: 3, Msg: 1, Kind: Hop, Node: 1})
	if r.Messages() != 2 || r.Count() != 3 {
		t.Fatalf("messages/count = %d/%d", r.Messages(), r.Count())
	}
	if len(r.Events(1)) != 2 || len(r.Events(2)) != 1 {
		t.Fatal("grouping wrong")
	}
}

func TestVerifyAcceptsValidHistory(t *testing.T) {
	tor := topology.New(8, 2)
	r := NewRecorder()
	n0 := tor.FromCoords([]int{0, 0})
	n1 := tor.FromCoords([]int{1, 0})
	n2 := tor.FromCoords([]int{2, 0})
	r.Trace(Event{Cycle: 1, Msg: 7, Kind: Inject, Node: n0})
	r.Trace(Event{Cycle: 2, Msg: 7, Kind: Hop, Node: n1})
	r.Trace(Event{Cycle: 3, Msg: 7, Kind: AbsorbStart, Node: n1})
	r.Trace(Event{Cycle: 5, Msg: 7, Kind: FaultStop, Node: n1})
	r.Trace(Event{Cycle: 6, Msg: 7, Kind: Inject, Node: n1})
	r.Trace(Event{Cycle: 7, Msg: 7, Kind: Hop, Node: n2})
	r.Trace(Event{Cycle: 8, Msg: 7, Kind: Deliver, Node: n2})
	if err := r.Verify(tor); err != nil {
		t.Fatalf("valid history rejected: %v", err)
	}
}

func TestVerifyRejectsBadHistories(t *testing.T) {
	tor := topology.New(8, 2)
	n0 := tor.FromCoords([]int{0, 0})
	far := tor.FromCoords([]int{3, 3})

	cases := map[string][]Event{
		"missing inject": {
			{Cycle: 1, Msg: 1, Kind: Hop, Node: n0},
			{Cycle: 2, Msg: 1, Kind: Deliver, Node: n0},
		},
		"no terminal": {
			{Cycle: 1, Msg: 1, Kind: Inject, Node: n0},
			{Cycle: 2, Msg: 1, Kind: Hop, Node: tor.FromCoords([]int{1, 0})},
		},
		"teleport hop": {
			{Cycle: 1, Msg: 1, Kind: Inject, Node: n0},
			{Cycle: 2, Msg: 1, Kind: Hop, Node: far},
			{Cycle: 3, Msg: 1, Kind: Deliver, Node: far},
		},
		"time travel": {
			{Cycle: 5, Msg: 1, Kind: Inject, Node: n0},
			{Cycle: 3, Msg: 1, Kind: Deliver, Node: n0},
		},
		"stop at wrong node": {
			{Cycle: 1, Msg: 1, Kind: Inject, Node: n0},
			{Cycle: 2, Msg: 1, Kind: Deliver, Node: far},
		},
	}
	for name, evs := range cases {
		r := NewRecorder()
		for _, ev := range evs {
			r.Trace(ev)
		}
		if err := r.Verify(tor); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRender(t *testing.T) {
	tor := topology.New(4, 2)
	r := NewRecorder()
	r.Trace(Event{Cycle: 1, Msg: 3, Kind: Inject, Node: 0})
	out := r.Render(tor, 3)
	if !strings.Contains(out, "inject") || !strings.Contains(out, "(0,0)") {
		t.Fatalf("render missing fields:\n%s", out)
	}
	if !strings.Contains(r.Render(tor, 99), "no events") {
		t.Fatal("empty render wrong")
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		Inject: "inject", Hop: "hop", AbsorbStart: "absorb",
		ViaStop: "via", FaultStop: "fault-stop", Deliver: "deliver", Drop: "drop",
	} {
		if k.String() != want {
			t.Errorf("%d: %q", int(k), k.String())
		}
	}
}
