package trace

import (
	"strings"
	"testing"
)

func TestWorkloadRoundTrip(t *testing.T) {
	var w Workload
	w.Append(WorkloadRecord{Cycle: 1, Src: 0, Dst: 5, Len: 32})
	w.Append(WorkloadRecord{Cycle: 9, Src: 63, Dst: 2, Len: 8})
	w.Append(WorkloadRecord{Cycle: 9, Src: 1, Dst: 3, Len: 1})
	var b strings.Builder
	if err := w.Write(&b); err != nil {
		t.Fatal(err)
	}
	got, err := ParseWorkload(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != w.Len() {
		t.Fatalf("parsed %d records, wrote %d", got.Len(), w.Len())
	}
	for i := range w.Records {
		if got.Records[i] != w.Records[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got.Records[i], w.Records[i])
		}
	}
}

func TestParseWorkloadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n 3,1,2,16 \n# trailing comment\n7,0,9,4\n"
	w, err := ParseWorkload(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 2 || w.Records[0].Cycle != 3 || w.Records[1].Dst != 9 {
		t.Fatalf("parsed %+v", w.Records)
	}
}

func TestParseWorkloadErrors(t *testing.T) {
	for _, in := range []string{
		"1,2,3",     // too few fields
		"1,2,3,4,5", // too many fields
		"x,2,3,4",   // not a number
		"-1,2,3,4",  // negative cycle
		"1,-2,3,4",  // negative node
		"1,2,3,4.5", // non-integer length
	} {
		if _, err := ParseWorkload(strings.NewReader(in)); err == nil {
			t.Errorf("%q accepted", in)
		}
	}
}
