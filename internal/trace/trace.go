// Package trace records per-message event streams from the simulation
// engine: hops, absorptions, via stops, re-injections and deliveries. It
// serves two purposes: debugging (inspect exactly what one message did) and
// deep invariant testing (assert engine-level properties like "no flit ever
// enters a faulty node" over whole runs).
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/topology"
)

// Kind enumerates traceable events.
type Kind uint8

const (
	// Inject: a worm's head entered the network at Node (first injection or
	// re-injection).
	Inject Kind = iota
	// Hop: a head flit traversed a link into Node.
	Hop
	// AbsorbStart: routing decided to eject the worm at Node due to a fault.
	AbsorbStart
	// ViaStop: the worm fully ejected at an intermediate destination.
	ViaStop
	// FaultStop: the worm fully ejected after a fault absorption.
	FaultStop
	// Deliver: the tail flit reached the destination PE at Node.
	Deliver
	// Drop: the message was discarded as unroutable.
	Drop
	// Purge: a dynamic fault transition forcibly removed the worm from the
	// network; its in-flight flits were discarded. Node is where the worm
	// continues — its source on a requeue-for-reinjection (a later Inject
	// there follows), or the point of loss when the worm could not be
	// salvaged (a Drop there follows). Appended after Drop: Kind values are
	// pinned by golden trace hashes and must never renumber.
	Purge
)

// String returns the event kind's short lower-case name as written in
// trace dumps ("inject", "hop", "absorb", ...).
func (k Kind) String() string {
	switch k {
	case Inject:
		return "inject"
	case Hop:
		return "hop"
	case AbsorbStart:
		return "absorb"
	case ViaStop:
		return "via"
	case FaultStop:
		return "fault-stop"
	case Deliver:
		return "deliver"
	case Drop:
		return "drop"
	case Purge:
		return "purge"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one step in a message's life.
type Event struct {
	Cycle int64
	Msg   uint64
	Kind  Kind
	Node  topology.NodeID
}

// Tracer receives events from the engine. Implementations must be cheap;
// the engine calls them inline.
type Tracer interface {
	Trace(ev Event)
}

// Recorder retains every event, grouped by message, for post-run assertions.
type Recorder struct {
	byMsg map[uint64][]Event
	count int
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder {
	return &Recorder{byMsg: make(map[uint64][]Event)}
}

// Trace implements Tracer.
func (r *Recorder) Trace(ev Event) {
	r.byMsg[ev.Msg] = append(r.byMsg[ev.Msg], ev)
	r.count++
}

// Events returns the event stream of one message in arrival order.
func (r *Recorder) Events(msg uint64) []Event { return r.byMsg[msg] }

// Messages returns the number of distinct traced messages.
func (r *Recorder) Messages() int { return len(r.byMsg) }

// All returns every event, grouped by message in ascending message-ID
// order (within a message, arrival order). The ordering is deterministic,
// which makes All suitable for whole-run equivalence assertions.
func (r *Recorder) All() []Event {
	ids := make([]uint64, 0, len(r.byMsg))
	for id := range r.byMsg {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]Event, 0, r.count)
	for _, id := range ids {
		out = append(out, r.byMsg[id]...)
	}
	return out
}

// Count returns the total number of events.
func (r *Recorder) Count() int { return r.count }

// Render formats one message's history for debugging.
func (r *Recorder) Render(t topology.Network, msg uint64) string {
	evs := r.byMsg[msg]
	if len(evs) == 0 {
		return fmt.Sprintf("msg#%d: no events\n", msg)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "msg#%d:\n", msg)
	for _, ev := range evs {
		fmt.Fprintf(&b, "  @%-8d %-10s %s\n", ev.Cycle, ev.Kind, t.FormatNode(ev.Node))
	}
	return b.String()
}

// Verify checks structural invariants of every traced message's history:
//
//   - the stream starts with Inject and ends with Deliver or Drop,
//   - consecutive Hop events visit adjacent nodes,
//   - every software stop is followed by a re-Inject at the same node,
//   - a Purge teleports the worm to the recorded node (its source when
//     requeued, the loss point otherwise) — later events continue there,
//   - cycles are non-decreasing.
//
// It returns the first violation found, or nil.
func (r *Recorder) Verify(t topology.Network) error {
	for id, evs := range r.byMsg {
		if evs[0].Kind != Inject {
			return fmt.Errorf("msg#%d: first event %v, want inject", id, evs[0].Kind)
		}
		last := evs[len(evs)-1]
		if last.Kind != Deliver && last.Kind != Drop {
			return fmt.Errorf("msg#%d: last event %v, want deliver/drop", id, last.Kind)
		}
		cur := evs[0].Node
		for i := 1; i < len(evs); i++ {
			ev := evs[i]
			if ev.Cycle < evs[i-1].Cycle {
				return fmt.Errorf("msg#%d: time went backwards at event %d", id, i)
			}
			switch ev.Kind {
			case Hop:
				if t.Distance(cur, ev.Node) != 1 {
					return fmt.Errorf("msg#%d: hop %s -> %s not adjacent",
						id, t.FormatNode(cur), t.FormatNode(ev.Node))
				}
				cur = ev.Node
			case Purge:
				// The worm was forcibly removed mid-flight; it resumes
				// (or is dropped) wherever the engine said, with no
				// adjacency relation to its pre-purge position.
				cur = ev.Node
			case Inject, AbsorbStart, ViaStop, FaultStop, Deliver, Drop:
				if ev.Node != cur {
					return fmt.Errorf("msg#%d: %v at %s but worm is at %s",
						id, ev.Kind, t.FormatNode(ev.Node), t.FormatNode(cur))
				}
			}
		}
	}
	return nil
}
