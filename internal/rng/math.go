package rng

import "math"

// mathLog is an alias for math.Log, split out so rng.go reads without the
// math import tangled into the generator code.
func mathLog(x float64) float64 { return math.Log(x) }

// mathPow is the same arrangement for math.Pow, used by the Pareto sampler.
func mathPow(x, y float64) float64 { return math.Pow(x, y) }
