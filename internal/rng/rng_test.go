package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with same seed diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs in 100 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("children with different labels produced identical first output")
	}
	// Splitting must be reproducible given the same parent history.
	p2 := New(7)
	d1 := p2.Split(1)
	c1b := New(7).Split(1)
	_ = c1b
	x := d1.Uint64()
	p3 := New(7)
	if got := p3.Split(1).Uint64(); got != x {
		t.Fatalf("split not reproducible: %d vs %d", got, x)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(99)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d too far from expected %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 50; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestExpMean(t *testing.T) {
	r := New(5)
	const mean, n = 25.0, 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exp(mean)
		if v < 0 {
			t.Fatalf("Exp returned negative value %v", v)
		}
		sum += v
	}
	got := sum / n
	if math.Abs(got-mean) > 0.5 {
		t.Fatalf("Exp mean = %.3f, want ~%.1f", got, mean)
	}
}

func TestBoolRoughlyFair(t *testing.T) {
	r := New(17)
	trues := 0
	const draws = 10000
	for i := 0; i < draws; i++ {
		if r.Bool() {
			trues++
		}
	}
	if trues < draws/2-300 || trues > draws/2+300 {
		t.Fatalf("Bool() returned true %d/%d times", trues, draws)
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		n := 1 + r.Intn(50)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(11)
	xs := []int{1, 2, 3, 4, 5, 6, 7}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d != %d", got, sum)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(997)
	}
}

func BenchmarkExp(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Exp(100)
	}
}
