package rng

// Stream-derivation scheme.
//
// Split(label) derives a child from (parent state, label), so two children
// drawn from the SAME parent state collide exactly when their labels are
// equal. Subsystems that hand out many children from one parent therefore
// need label spaces that cannot overlap — a per-router stream and a future
// per-source stream for the same node id must not be the same stream.
//
// The scheme: the top byte of the 64-bit label is a namespace tag owned by
// one subsystem, the low 32 bits carry the entity id (node ids in every
// current namespace), and the middle bytes stay zero for future widening.
// All namespaced labels are >= 1<<56, so they also never collide with the
// small ad-hoc literals used by the run-level splits (traffic = 1,
// engine = 2, faults = 0xfa017), which are drawn from different parent
// states anyway.
//
// Current assignments:
//
//	0x01  per-router VC-selection streams (engine stream → RouterLabel)
//	0x02  reserved: per-source traffic streams (SourceLabel)
//	0x03  the fault-schedule stream (run stream → ScheduleLabel)
//
// New subsystems take the next free tag; never reuse a retired one, since
// a reused tag silently changes every run's draw sequence.
const (
	nsShift = 56
	// nsRouter tags the engine's per-router VC-selection streams, derived
	// in node-id order from the engine stream at construction.
	nsRouter uint64 = 0x01 << nsShift
	// nsSource is reserved for per-source traffic streams (not yet drawn;
	// reserving the tag now keeps future streams collision-free against
	// the per-router family without a migration).
	nsSource uint64 = 0x02 << nsShift
	// nsSchedule tags the fault-schedule stream that drives generative
	// MTBF/MTTR fault processes (see internal/fault). One stream per run,
	// entity id 0.
	nsSchedule uint64 = 0x03 << nsShift
)

// RouterLabel returns the Split label of node id's VC-selection stream.
// Panics on negative ids; ids are limited to 32 bits by the scheme.
func RouterLabel(id int) uint64 { return nsRouter | entity(id) }

// SourceLabel returns the Split label reserved for node id's traffic
// stream. No current code draws from it; it exists so per-source streams
// added later cannot collide with the per-router family.
func SourceLabel(id int) uint64 { return nsSource | entity(id) }

// ScheduleLabel returns the Split label of the run's fault-schedule
// stream. The engine derives it from the run stream strictly after the
// traffic (1) and engine (2) splits, so adding a schedule leaves those
// streams — and therefore every schedule-free draw — bit-identical.
func ScheduleLabel() uint64 { return nsSchedule }

func entity(id int) uint64 {
	if id < 0 || int64(id) > 0xffffffff {
		panic("rng: stream label entity id out of the 32-bit scheme range")
	}
	return uint64(id)
}
