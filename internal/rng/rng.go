// Package rng provides small, fast, deterministic pseudo-random number
// generators with splittable streams.
//
// Interconnect simulations must be exactly reproducible: a (seed, config)
// pair must always produce the same run, and independent subsystems (traffic
// generation per node, virtual-channel selection, fault placement) must draw
// from independent streams so that changing how often one subsystem samples
// does not perturb the others. math/rand's global state gives neither
// property conveniently, so this package implements SplitMix64 (for seeding /
// splitting) feeding xoshiro256**, the same construction used by Go's
// runtime-seeded generators, entirely in ordinary code with no global state.
package rng

import "math/bits"

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used to expand one 64-bit seed into the four words of xoshiro state
// and to derive child stream seeds.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stream is a deterministic xoshiro256** generator. The zero value is not
// valid; construct streams with New or Split.
type Stream struct {
	s [4]uint64
}

// New returns a Stream seeded from the given 64-bit seed. Any seed value,
// including zero, yields a well-mixed state.
func New(seed uint64) *Stream {
	var st Stream
	sm := seed
	for i := range st.s {
		st.s[i] = splitMix64(&sm)
	}
	return &st
}

// Split derives an independent child stream. The child is a pure function of
// the parent's current state and the label, so two Splits with different
// labels from the same state never collide, and splitting does not disturb
// the parent's own sequence beyond a single state advance.
func (r *Stream) Split(label uint64) *Stream {
	mix := r.Uint64() ^ bits.RotateLeft64(label, 32) ^ 0xa0761d6478bd642f
	return New(mix)
}

// Uint64 returns the next 64 bits from the stream.
func (r *Stream) Uint64() uint64 {
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and division-free
	// on the fast path.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := bits.Mul64(v, un)
	if lo < un {
		threshold := (-un) % un
		for lo < threshold {
			v = r.Uint64()
			hi, lo = bits.Mul64(v, un)
		}
	}
	return int(hi)
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed value with the given mean.
// It is the inter-arrival sampler for Poisson processes: arrivals with
// Exp(1/λ) gaps form a Poisson process of rate λ.
func (r *Stream) Exp(mean float64) float64 {
	// Inverse-CDF; guard against Float64 returning exactly 0.
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * ln(u)
}

// ln is a thin wrapper kept separate so the Exp hot path stays inlinable.
func ln(x float64) float64 { return mathLog(x) }

// Bool returns a uniform random boolean.
func (r *Stream) Bool() bool { return r.Uint64()&1 == 1 }

// Perm returns a uniform random permutation of [0, n).
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Pareto returns a Pareto-distributed value with the given shape alpha and
// scale (minimum) xm, via the inverse CDF xm·U^(-1/alpha). Heavy-tailed
// on/off traffic sources draw their phase durations from it; shapes in
// (1, 2] have a finite mean but infinite variance, the regime that
// produces burstiness across every time scale.
func (r *Stream) Pareto(alpha, xm float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm * mathPow(u, -1/alpha)
}
