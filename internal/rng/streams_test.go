package rng

import "testing"

// TestSplitLabelCollision pins Split's collision contract: from one parent
// state, equal labels give equal children and distinct labels give distinct
// children — which is exactly why label namespaces exist. It also documents
// the sharp edge: Split advances the parent, so two *sequential* Splits
// with the same label do NOT collide (they see different parent states).
func TestSplitLabelCollision(t *testing.T) {
	// Same state + same label → identical child stream.
	a, b := New(42), New(42)
	ca, cb := a.Split(7), b.Split(7)
	for i := 0; i < 64; i++ {
		if ca.Uint64() != cb.Uint64() {
			t.Fatalf("same state + same label diverged at draw %d", i)
		}
	}
	// Same state + distinct labels → distinct children.
	a, b = New(42), New(42)
	ca, cb = a.Split(7), b.Split(8)
	same := true
	for i := 0; i < 8; i++ {
		if ca.Uint64() != cb.Uint64() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("distinct labels from the same state produced the same stream")
	}
	// Sequential Splits with one label differ (parent state advanced): the
	// reason label reuse across subsystems is only safe from one shared
	// split point, and why the namespace scheme exists at all.
	p := New(42)
	c1, c2 := p.Split(7), p.Split(7)
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sequential same-label splits unexpectedly collided on the first draw")
	}
}

// TestStreamLabelNamespaces checks the derivation scheme: router and
// source labels are injective over ids, never collide across namespaces,
// and stay clear of the small run-level split literals.
func TestStreamLabelNamespaces(t *testing.T) {
	seen := map[uint64]string{}
	for id := 0; id < 4096; id++ {
		for _, l := range []struct {
			name  string
			label uint64
		}{
			{"router", RouterLabel(id)},
			{"source", SourceLabel(id)},
		} {
			if prev, dup := seen[l.label]; dup {
				t.Fatalf("label %#x assigned to both %s(%d) and %s", l.label, l.name, id, prev)
			}
			seen[l.label] = l.name
			if l.label < 1<<56 {
				t.Fatalf("%s(%d) = %#x below the namespace floor; collides with ad-hoc run-level labels", l.name, id, l.label)
			}
		}
	}
	// The boundary ids of the 32-bit entity range are accepted...
	_ = RouterLabel(0xffffffff)
	// ...and out-of-scheme ids panic rather than alias another entity.
	for _, bad := range []int{-1, 1 << 32} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RouterLabel(%d) did not panic", bad)
				}
			}()
			RouterLabel(bad)
		}()
	}
}

// TestRouterStreamsIndependent spot-checks that per-router streams derived
// from one engine stream are pairwise distinct (the property the engine's
// per-router VC selection relies on).
func TestRouterStreamsIndependent(t *testing.T) {
	parent := New(1).Split(2) // the engine stream of a seed-1 run
	const n = 256
	firsts := map[uint64]int{}
	for id := 0; id < n; id++ {
		s := parent.Split(RouterLabel(id))
		v := s.Uint64()
		if prev, dup := firsts[v]; dup {
			t.Fatalf("router streams %d and %d share their first draw %#x", prev, id, v)
		}
		firsts[v] = id
	}
}
