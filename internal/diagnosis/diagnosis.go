// Package diagnosis simulates the fault-diagnosis substrate the
// Software-Based scheme presumes: with static faults and MTTR much smaller
// than MTBF (§4), nodes have time to learn the shape of nearby fault
// regions before routing resumes, and the messaging layer of a node on a
// region's boundary can size detours from the region's extents.
//
// The protocol modelled here is synchronous neighbourhood flooding: each
// healthy node starts knowing only the state of its incident links (which
// neighbours do not answer), and each round exchanges its accumulated fault
// set with every healthy neighbour. After r rounds a node knows every
// faulty node within distance r+1; the protocol converges in at most the
// healthy network's diameter many rounds.
//
// internal/routing's planner consults a global fault.Index for region
// extents; this package justifies that modelling shortcut: tests assert
// that, at convergence, every absorbing node (healthy neighbour of a
// region) knows the complete region, i.e. the global index and the local
// view agree exactly where the planner reads it.
package diagnosis

import (
	"sort"

	"repro/internal/fault"
	"repro/internal/topology"
)

// Protocol is one synchronous flooding instance over a fault configuration.
type Protocol struct {
	t     *topology.Torus
	f     *fault.Set
	views []map[topology.NodeID]bool // per node; nil for faulty nodes
	round int
}

// New initialises the protocol: every healthy node knows exactly the faulty
// endpoints of its incident links (local failure detection).
func New(t *topology.Torus, f *fault.Set) *Protocol {
	p := &Protocol{t: t, f: f, views: make([]map[topology.NodeID]bool, t.Nodes())}
	for id := 0; id < t.Nodes(); id++ {
		node := topology.NodeID(id)
		if f.NodeFaulty(node) {
			continue
		}
		view := make(map[topology.NodeID]bool)
		for d := 0; d < t.N(); d++ {
			for _, dir := range []topology.Dir{topology.Plus, topology.Minus} {
				nb := t.Neighbor(node, d, dir)
				if f.NodeFaulty(nb) {
					view[nb] = true
				}
			}
		}
		p.views[node] = view
	}
	return p
}

// Round returns the number of exchange rounds executed so far.
func (p *Protocol) Round() int { return p.round }

// Step performs one synchronous exchange round: every healthy node merges
// the previous-round views of its healthy neighbours. It reports whether
// any view grew.
func (p *Protocol) Step() bool {
	changed := false
	// Snapshot sizes; merging from the live views would make the round
	// order-dependent, so gather increments first.
	incoming := make([][]topology.NodeID, len(p.views))
	for id := range p.views {
		if p.views[id] == nil {
			continue
		}
		node := topology.NodeID(id)
		for d := 0; d < p.t.N(); d++ {
			for _, dir := range []topology.Dir{topology.Plus, topology.Minus} {
				port := topology.PortFor(d, dir)
				if p.f.LinkFaulty(node, port) {
					continue
				}
				nb := p.t.Neighbor(node, d, dir)
				if p.views[nb] == nil {
					continue
				}
				for known := range p.views[nb] {
					if !p.views[id][known] {
						incoming[id] = append(incoming[id], known)
					}
				}
			}
		}
	}
	for id, inc := range incoming {
		for _, known := range inc {
			if !p.views[id][known] {
				p.views[id][known] = true
				changed = true
			}
		}
	}
	p.round++
	return changed
}

// Run steps until no view changes or maxRounds is hit, returning the number
// of rounds executed.
func (p *Protocol) Run(maxRounds int) int {
	for i := 0; i < maxRounds; i++ {
		if !p.Step() {
			break
		}
	}
	return p.round
}

// View returns the faults known to node, ascending. Nil for faulty nodes.
func (p *Protocol) View(node topology.NodeID) []topology.NodeID {
	v := p.views[node]
	if v == nil {
		return nil
	}
	out := make([]topology.NodeID, 0, len(v))
	for id := range v {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Knows reports whether node's view contains the faulty node q.
func (p *Protocol) Knows(node, q topology.NodeID) bool {
	v := p.views[node]
	return v != nil && v[q]
}

// BoundaryNodes returns the healthy neighbours of a region — exactly the
// nodes at which SW-Based messages absorb against it.
func BoundaryNodes(t *topology.Torus, f *fault.Set, r *fault.Region) []topology.NodeID {
	seen := make(map[topology.NodeID]bool)
	var out []topology.NodeID
	for _, id := range r.Nodes {
		for d := 0; d < t.N(); d++ {
			for _, dir := range []topology.Dir{topology.Plus, topology.Minus} {
				nb := t.Neighbor(id, d, dir)
				if !f.NodeFaulty(nb) && !seen[nb] {
					seen[nb] = true
					out = append(out, nb)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Shell returns the region members adjacent to at least one healthy node —
// the diagnosable part of the region. Interior members of a solid block
// have no healthy neighbour and are invisible to any detection protocol,
// but every per-dimension extent extreme lies on the shell (an extreme
// member's outward neighbour cannot belong to the same coalesced region,
// so it is healthy), hence shell extents equal region extents.
func Shell(t *topology.Torus, f *fault.Set, r *fault.Region) []topology.NodeID {
	var out []topology.NodeID
	for _, id := range r.Nodes {
		onShell := false
		for d := 0; d < t.N() && !onShell; d++ {
			for _, dir := range []topology.Dir{topology.Plus, topology.Minus} {
				if !f.NodeFaulty(t.Neighbor(id, d, dir)) {
					onShell = true
					break
				}
			}
		}
		if onShell {
			out = append(out, id)
		}
	}
	return out
}

// BoundaryComplete reports whether every boundary node of the region knows
// the region's complete shell — the precondition for the planner's
// extent-based detours being locally computable (shell extents equal
// region extents, see Shell).
func (p *Protocol) BoundaryComplete(r *fault.Region) bool {
	shell := Shell(p.t, p.f, r)
	for _, b := range BoundaryNodes(p.t, p.f, r) {
		for _, member := range shell {
			if !p.Knows(b, member) {
				return false
			}
		}
	}
	return true
}
