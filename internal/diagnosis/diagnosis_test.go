package diagnosis

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/rng"
	"repro/internal/topology"
)

func TestLocalDetectionAtStart(t *testing.T) {
	tor := topology.New(8, 2)
	fs := fault.NewSet(tor)
	bad := tor.FromCoords([]int{3, 3})
	fs.MarkNode(bad)
	p := New(tor, fs)
	// Every neighbour starts knowing the fault; distant nodes do not.
	for d := 0; d < 2; d++ {
		for _, dir := range []topology.Dir{topology.Plus, topology.Minus} {
			nb := tor.Neighbor(bad, d, dir)
			if !p.Knows(nb, bad) {
				t.Errorf("neighbour %v does not know adjacent fault", tor.Coords(nb))
			}
		}
	}
	far := tor.FromCoords([]int{0, 0})
	if p.Knows(far, bad) {
		t.Error("distant node knows fault before any exchange")
	}
	if p.View(bad) != nil {
		t.Error("faulty node has a view")
	}
}

func TestFloodingReachesEveryone(t *testing.T) {
	tor := topology.New(8, 2)
	fs, err := fault.Random(tor, 5, rng.New(3), fault.DefaultRandomOptions())
	if err != nil {
		t.Fatal(err)
	}
	p := New(tor, fs)
	rounds := p.Run(100)
	// Convergence within (diameter + 1) rounds of the healthy network;
	// diameter of the fault-free 8-ary 2-cube is 8.
	if rounds > 12 {
		t.Fatalf("converged only after %d rounds", rounds)
	}
	for _, h := range fs.HealthyNodes() {
		view := p.View(h)
		if len(view) != fs.NumNodeFaults() {
			t.Fatalf("node %d knows %d faults, want %d", h, len(view), fs.NumNodeFaults())
		}
	}
}

func TestKnowledgeRadiusGrowsOneHopPerRound(t *testing.T) {
	tor := topology.New(8, 1) // a ring makes distances exact
	fs := fault.NewSet(tor)
	fs.MarkNode(0)
	p := New(tor, fs)
	// Node 4 (distance 4 from node 0's neighbours 1 and 7... knowledge must
	// travel from node 1 to node 4: 3 hops) learns after 3 rounds.
	if p.Knows(4, 0) {
		t.Fatal("node 4 knows too early")
	}
	p.Step()
	p.Step()
	if p.Knows(4, 0) {
		t.Fatal("node 4 knows after 2 rounds; propagation too fast")
	}
	p.Step()
	if !p.Knows(4, 0) {
		t.Fatal("node 4 still ignorant after 3 rounds")
	}
}

func TestBoundaryNodes(t *testing.T) {
	tor := topology.New(8, 2)
	fs := fault.NewSet(tor)
	if _, err := fault.StampShape(fs, 0, 0, 1, fault.ShapeSpec{Shape: fault.ShapeRect, A: 2, B: 2, AnchorA: 3, AnchorB: 3}); err != nil {
		t.Fatal(err)
	}
	reg := fs.Regions()[0]
	bnd := BoundaryNodes(tor, fs, reg)
	// A 2x2 block has 8 distinct healthy neighbours (no diagonals).
	if len(bnd) != 8 {
		t.Fatalf("boundary size = %d, want 8", len(bnd))
	}
	for _, b := range bnd {
		if fs.NodeFaulty(b) {
			t.Fatal("faulty node in boundary")
		}
	}
}

// The modelling-shortcut justification: at convergence, every absorbing
// node knows the complete adjacent region, so the planner's extent queries
// are locally computable.
func TestBoundaryCompleteAtConvergence(t *testing.T) {
	tor := topology.New(8, 2)
	for name, spec := range fault.PaperFig5Specs() {
		fs := fault.NewSet(tor)
		if _, err := fault.StampShape(fs, 0, 0, 1, spec); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		reg := fs.Regions()[0]
		p := New(tor, fs)
		if p.BoundaryComplete(reg) && reg.Size() > 3 {
			t.Fatalf("%s: boundary complete before any exchange", name)
		}
		p.Run(100)
		if !p.BoundaryComplete(reg) {
			t.Fatalf("%s: boundary incomplete at convergence", name)
		}
	}
}

// The claim Shell's doc comment makes, checked by property: for random
// connected fault patterns, shell extents equal region extents in every
// dimension — so extent-based detours need only the diagnosable part.
func TestShellExtentsEqualRegionExtents(t *testing.T) {
	tor := topology.New(8, 2)
	for seed := uint64(0); seed < 15; seed++ {
		fs, err := fault.Random(tor, 3+int(seed%8), rng.New(seed), fault.DefaultRandomOptions())
		if err != nil {
			continue
		}
		for _, reg := range fs.Regions() {
			shellSet := fault.NewSet(tor)
			shellSet.MarkNodes(Shell(tor, fs, reg))
			shellRegs := shellSet.Regions()
			// Merge shell extents across (possibly several) shell pieces by
			// checking every extreme coordinate of the full region appears
			// among shell nodes.
			for d := 0; d < tor.N(); d++ {
				full := reg.Extent(d)
				foundLo, foundHi := false, false
				for _, sr := range shellRegs {
					for _, id := range sr.Nodes {
						if tor.Coord(id, d) == full.Lo {
							foundLo = true
						}
						if tor.Coord(id, d) == full.Hi {
							foundHi = true
						}
					}
				}
				if !foundLo || !foundHi {
					t.Fatalf("seed %d: extent extreme of dim %d not on shell", seed, d)
				}
			}
		}
	}
}

func TestRoundsNeededScalesWithRegionDiameter(t *testing.T) {
	tor := topology.New(16, 2)
	fs := fault.NewSet(tor)
	// A long bar: the far ends' boundary nodes need ~length rounds.
	if _, err := fault.StampShape(fs, 0, 0, 1, fault.ShapeSpec{Shape: fault.ShapeBar, A: 6, AnchorA: 5, AnchorB: 5}); err != nil {
		t.Fatal(err)
	}
	reg := fs.Regions()[0]
	p := New(tor, fs)
	rounds := 0
	for !p.BoundaryComplete(reg) && rounds < 50 {
		p.Step()
		rounds++
	}
	if rounds < 2 {
		t.Fatalf("6-long bar boundary complete after %d rounds; too fast", rounds)
	}
	if rounds > 10 {
		t.Fatalf("boundary needed %d rounds; flooding broken", rounds)
	}
}
