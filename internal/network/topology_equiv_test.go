package network

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/message"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// runTraced drives one engine over net with the given algorithm and params
// tweak, mirroring core.Run's rng stream discipline (Split(1) workload,
// Split(2) engine), and returns the full event trace plus finalised
// results. It is the shared chassis of the topology-seam equivalence tests.
func runTraced(t *testing.T, net topology.Network, algName string, nf int, tweak func(*Params)) ([]trace.Event, metrics.Results) {
	t.Helper()
	fs := fault.NewSet(net)
	if nf > 0 {
		var err error
		fs, err = fault.Random(net, nf, rng.New(41), fault.DefaultRandomOptions())
		if err != nil {
			t.Fatal(err)
		}
	}
	alg, err := routing.New(algName, net, fs, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(123)
	pattern, err := traffic.NewPattern("uniform", net, fs)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	col := metrics.NewCollector(0)
	p := DefaultParams(4)
	p.Tracer = rec
	if tweak != nil {
		tweak(&p)
	}
	// The params tweak settles NoArena before the shared pool is built, so
	// arena-mode runs genuinely exercise recycling end-to-end (source
	// allocation through delivery) rather than Adopt-registering foreign
	// heap messages.
	pool := message.NewPool(net.N(), p.NoArena)
	p.Pool = pool
	gen, err := traffic.NewSource("poisson", traffic.Env{
		T: net, F: fs, Sources: fs.HealthyNodes(),
		Lambda: 0.004, MsgLen: 16, Mode: alg.BaseMode(),
		Pattern: pattern, R: r.Split(1), Pool: pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw := New(net, fs, alg, gen, col, p, r.Split(2))
	for nw.Now() < 4000 {
		nw.Step()
	}
	nw.StopGeneration()
	for !nw.Idle() && nw.Now() < 400_000 {
		nw.Step()
	}
	if !nw.Idle() {
		t.Fatal("network did not drain")
	}
	return rec.All(), col.Finalize(nw.Now(), len(fs.HealthyNodes()), false)
}

// assertSameRun fails unless two traced runs are bit-identical: same event
// sequence (every injection, hop, stop and delivery at the same cycle) and
// same finalised results.
func assertSameRun(t *testing.T, evA, evB []trace.Event, resA, resB metrics.Results, what string) {
	t.Helper()
	if len(evA) == 0 {
		t.Fatalf("%s: no events traced", what)
	}
	if len(evA) != len(evB) {
		t.Fatalf("%s: event counts differ: %d vs %d", what, len(evA), len(evB))
	}
	for i := range evA {
		if evA[i] != evB[i] {
			t.Fatalf("%s: event %d differs:\nA: %+v\nB: %+v", what, i, evA[i], evB[i])
		}
	}
	if !reflect.DeepEqual(resA, resB) {
		t.Fatalf("%s: results differ:\nA: %+v\nB: %+v", what, resA, resB)
	}
}

// TestTopologyRegistryMatchesDirectTorus is the topology refactor's
// bit-identity proof, the network-layer analogue of
// TestRegistrySourceMatchesLegacyGenerator: an engine whose torus was
// built through the topology registry (the path core.Run takes since the
// topology seam landed) must produce the exact same event trace as one
// built on the direct topology.New constructor the seed code called.
func TestTopologyRegistryMatchesDirectTorus(t *testing.T) {
	for _, tc := range []struct {
		name string
		alg  string
		nf   int
	}{
		{"det-faultfree", "det", 0},
		{"det-faults", "det", 6},
		{"adaptive-faults", "adaptive", 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			reg, err := topology.NewNetwork("torus:k=8,n=2")
			if err != nil {
				t.Fatal(err)
			}
			evReg, resReg := runTraced(t, reg, tc.alg, tc.nf, nil)
			evDirect, resDirect := runTraced(t, topology.New(8, 2), tc.alg, tc.nf, nil)
			assertSameRun(t, evReg, evDirect, resReg, resDirect, "registry vs direct")
		})
	}
}

// TestLinkCacheMatchesDispatch proves the engine's precomputed per-link
// geometry table is purely an optimisation: with NoLinkCache the engine
// dispatches through the topology interface per flit, and the traces must
// stay bit-identical on both topology families.
func TestLinkCacheMatchesDispatch(t *testing.T) {
	for _, tc := range []struct {
		name string
		net  func() topology.Network
		alg  string
		nf   int
	}{
		{"torus", func() topology.Network { return topology.New(8, 2) }, "det", 6},
		{"mesh", func() topology.Network { return topology.NewMesh(8, 2) }, "det", 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			evCache, resCache := runTraced(t, tc.net(), tc.alg, tc.nf, nil)
			evDisp, resDisp := runTraced(t, tc.net(), tc.alg, tc.nf, func(p *Params) { p.NoLinkCache = true })
			assertSameRun(t, evCache, evDisp, resCache, resDisp, "cache vs dispatch")
		})
	}
}

// TestUniformLatmapMatchesGlobalLatency closes the per-link latency loop:
// an overlay assigning every channel latency 3 must reproduce, event for
// event, a run with the global Params.LinkLatency = 3. The overlay run
// takes the non-uniform staging path (sorted insertion), the global run
// the FIFO path, so agreement pins both.
func TestUniformLatmapMatchesGlobalLatency(t *testing.T) {
	tor := topology.New(4, 2)
	var sb strings.Builder
	for _, ch := range topology.ChannelsOf(tor) {
		fmt.Fprintf(&sb, "%d,%d,3\n", ch.Src, int(ch.Port))
	}
	file := filepath.Join(t.TempDir(), "lat.csv")
	if err := os.WriteFile(file, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	overlay, err := topology.NewNetwork("torus:k=4,n=2,latmap=" + file)
	if err != nil {
		t.Fatal(err)
	}
	evOv, resOv := runTraced(t, overlay, "det", 0, nil)
	evGl, resGl := runTraced(t, topology.New(4, 2), "det", 0, func(p *Params) { p.LinkLatency = 3 })
	assertSameRun(t, evOv, evGl, resOv, resGl, "latmap vs global latency")
}

// TestMeshNoWraparoundHops is the mesh boundary proof at the event-trace
// level: over a traced faulted mesh run, every recorded hop must move to a
// plain-Manhattan neighbour — a coordinate step of exactly 1 in exactly
// one dimension, never the k-1 jump a wraparound link would record.
func TestMeshNoWraparoundHops(t *testing.T) {
	msh := topology.NewMesh(8, 2)
	events, _ := runTraced(t, msh, "det", 4, nil)
	pos := map[uint64]topology.NodeID{}
	hops := 0
	for _, ev := range events {
		switch ev.Kind {
		case trace.Inject:
			pos[ev.Msg] = ev.Node
		case trace.Hop:
			cur, ok := pos[ev.Msg]
			if !ok {
				t.Fatalf("hop before injection for message %d", ev.Msg)
			}
			diff := 0
			for d := 0; d < msh.N(); d++ {
				dc := msh.Coord(cur, d) - msh.Coord(ev.Node, d)
				if dc < 0 {
					dc = -dc
				}
				diff += dc
			}
			if diff != 1 {
				t.Fatalf("message %d hopped %s -> %s (plain distance %d): wraparound link on a mesh",
					ev.Msg, msh.FormatNode(cur), msh.FormatNode(ev.Node), diff)
			}
			pos[ev.Msg] = ev.Node
			hops++
		}
	}
	if hops == 0 {
		t.Fatal("no hops traced")
	}
}
