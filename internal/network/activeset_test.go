package network

import (
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// TestActiveSetMatchesDenseScan is the scheduler's equivalence proof at
// the event level: the active-set engine and the dense-scan engine must
// produce the exact same trace — every injection, hop, stop, re-injection
// and delivery at the same cycle — for the same seed, across routing
// algorithms and fault patterns. Anything weaker (just comparing final
// means) could hide reordered rng draws that cancel out on average.
func TestActiveSetMatchesDenseScan(t *testing.T) {
	for _, tc := range []struct {
		name string
		alg  string
		nf   int
	}{
		{"det-faultfree", "det", 0},
		{"det-faults", "det", 6},
		{"adaptive-faults", "adaptive", 6},
		{"valiant-faults", "valiant", 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func(dense bool) ([]trace.Event, metrics.Results) {
				tor := topology.New(8, 2)
				fs := fault.NewSet(tor)
				if tc.nf > 0 {
					var err error
					fs, err = fault.Random(tor, tc.nf, rng.New(77), fault.DefaultRandomOptions())
					if err != nil {
						t.Fatal(err)
					}
				}
				alg, err := routing.New(tc.alg, tor, fs, 4)
				if err != nil {
					t.Fatal(err)
				}
				rec := trace.NewRecorder()
				r := rng.New(123)
				gen := traffic.NewGenerator(tor, fs.HealthyNodes(), 0.004, 16, alg.BaseMode(),
					traffic.NewUniform(fs), r.Split(1))
				col := metrics.NewCollector(0)
				p := DefaultParams(4)
				p.Tracer = rec
				p.DenseScan = dense
				nw := New(tor, fs, alg, gen, col, p, r.Split(2))
				for nw.Now() < 4000 {
					nw.Step()
				}
				nw.StopGeneration()
				for !nw.Idle() && nw.Now() < 400_000 {
					nw.Step()
				}
				if !nw.Idle() {
					t.Fatal("network did not drain")
				}
				return rec.All(), col.Finalize(nw.Now(), len(fs.HealthyNodes()), false)
			}
			evActive, resActive := run(false)
			evDense, resDense := run(true)
			if len(evActive) == 0 {
				t.Fatal("no events traced")
			}
			if len(evActive) != len(evDense) {
				t.Fatalf("event counts differ: active-set %d, dense %d", len(evActive), len(evDense))
			}
			for i := range evActive {
				if evActive[i] != evDense[i] {
					t.Fatalf("event %d differs:\nactive-set: %+v\ndense-scan: %+v",
						i, evActive[i], evDense[i])
				}
			}
			if !reflect.DeepEqual(resActive, resDense) {
				t.Fatalf("results differ:\nactive-set: %+v\ndense-scan: %+v", resActive, resDense)
			}
		})
	}
}

// TestActiveSetDrainsWorklist checks the scheduler's bookkeeping: once the
// network is idle, no router may be left on the worklist (drained routers
// must retire, or Step cost degenerates to a dense scan).
func TestActiveSetDrainsWorklist(t *testing.T) {
	tor := topology.New(8, 2)
	fs := fault.NewSet(tor)
	alg, err := routing.New("det", tor, fs, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	gen := traffic.NewGenerator(tor, fs.HealthyNodes(), 0.004, 16, alg.BaseMode(),
		traffic.NewUniform(fs), r.Split(1))
	col := metrics.NewCollector(0)
	nw := New(tor, fs, alg, gen, col, DefaultParams(4), r.Split(2))
	for nw.Now() < 2000 {
		nw.Step()
	}
	nw.StopGeneration()
	for !nw.Idle() && nw.Now() < 200_000 {
		nw.Step()
	}
	if !nw.Idle() {
		t.Fatal("network did not drain")
	}
	if n := len(nw.work) + len(nw.pending); n != 0 {
		t.Fatalf("idle network still has %d routers on the worklist", n)
	}
	for id, a := range nw.active {
		if a {
			t.Fatalf("idle network: router %d still flagged active", id)
		}
	}
}
