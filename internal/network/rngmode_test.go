package network

import (
	"encoding/binary"
	"hash/fnv"
	"testing"

	"repro/internal/topology"
	"repro/internal/trace"
)

// traceHash folds an event trace into one FNV-1a word, field by field, so
// golden tests can pin a full run without committing megabytes of events.
func traceHash(evs []trace.Event) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for _, e := range evs {
		put(uint64(e.Cycle))
		put(e.Msg)
		put(uint64(e.Kind))
		put(uint64(e.Node))
	}
	return h.Sum64()
}

// TestPerRouterRNGGolden pins the per-router rng default — the draw
// sequence that replaced the legacy global stream — against a golden trace
// hash on the canonical faulted-torus run. Per-router draws necessarily
// changed the sequence relative to the old engine (the migration note in
// ARCHITECTURE.md documents this), so the new default gets its own golden:
// any unintended reordering of draws (scheduler changes, worker commit
// bugs, Split-label edits) moves this hash.
func TestPerRouterRNGGolden(t *testing.T) {
	const golden uint64 = 0xf48a7c7ac3a7bfac
	ev, _ := runTraced(t, topology.New(8, 2), "adaptive", 6, nil)
	if h := traceHash(ev); h != golden {
		t.Fatalf("per-router rng trace hash = %#x, want %#x (the default draw sequence changed; "+
			"if intentional, update the golden and the ARCHITECTURE.md migration note)", h, golden)
	}
}

// TestGlobalRNGSelfEquivalent proves the legacy-rng ablation honors the
// same schedule-transparency contract as every other knob: with GlobalRNG
// set, the active-set and dense-scan engines consume the one global stream
// in the same router-iteration order, so their traces are bit-identical.
func TestGlobalRNGSelfEquivalent(t *testing.T) {
	run := func(dense bool) ([]trace.Event, bool) {
		ev, _ := runTraced(t, topology.New(8, 2), "adaptive", 6, func(p *Params) {
			p.GlobalRNG = true
			p.DenseScan = dense
		})
		return ev, true
	}
	evActive, _ := run(false)
	evDense, _ := run(true)
	if len(evActive) == 0 {
		t.Fatal("no events traced")
	}
	if len(evActive) != len(evDense) {
		t.Fatalf("event counts differ: active-set %d, dense %d", len(evActive), len(evDense))
	}
	for i := range evActive {
		if evActive[i] != evDense[i] {
			t.Fatalf("event %d differs:\nactive-set: %+v\ndense-scan: %+v", i, evActive[i], evDense[i])
		}
	}
}

// TestGlobalRNGIsADistinctMode documents that the ablation really is the
// legacy draw order, not an alias of the default: on a run where VC choice
// matters (adaptive routing around faults), the two modes must diverge.
func TestGlobalRNGIsADistinctMode(t *testing.T) {
	evDefault, _ := runTraced(t, topology.New(8, 2), "adaptive", 6, nil)
	evGlobal, _ := runTraced(t, topology.New(8, 2), "adaptive", 6, func(p *Params) {
		p.GlobalRNG = true
	})
	if traceHash(evDefault) == traceHash(evGlobal) {
		t.Fatal("GlobalRNG produced the per-router trace; the ablation is not exercising the legacy stream")
	}
}

// TestGlobalRNGRejectsWorkers pins the incompatibility: a single global
// stream cannot be consumed concurrently, so the engine must refuse the
// combination rather than silently de-parallelise or race.
func TestGlobalRNGRejectsWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GlobalRNG + Workers > 1 did not panic")
		}
	}()
	runTraced(t, topology.New(8, 2), "det", 0, func(p *Params) {
		p.GlobalRNG = true
		p.Workers = 2
	})
}
