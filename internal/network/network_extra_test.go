package network

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/message"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Engine-level coverage beyond the core scenarios: link faults, router
// decision time, higher dimensionality, alternative patterns, and the
// re-injection priority ablation.

func TestConservationWithLinkFaults(t *testing.T) {
	tor := topology.New(8, 2)
	fs := fault.NewSet(tor)
	fs.MarkLink(tor.FromCoords([]int{1, 1}), topology.PortFor(0, topology.Plus))
	fs.MarkLink(tor.FromCoords([]int{4, 4}), topology.PortFor(1, topology.Minus))
	fs.MarkLink(tor.FromCoords([]int{6, 2}), topology.PortFor(1, topology.Plus))
	if fs.Disconnects() {
		t.Fatal("premise: link faults should not disconnect")
	}
	h := newHarness(t, 8, 2, 4, false, fs, 0.004, 16, 0, 19)
	for h.nw.Now() < 4000 {
		h.nw.Step()
	}
	h.drain(t, 200_000)
	res := h.col.Finalize(h.nw.Now(), 64, false)
	if res.Delivered != h.col.GeneratedCount() || res.Dropped != 0 {
		t.Fatalf("conservation violated: %d/%d, dropped %d",
			res.Delivered, h.col.GeneratedCount(), res.Dropped)
	}
	if res.QueuedTotal() == 0 {
		t.Fatal("no absorptions despite link faults on busy rows")
	}
}

func TestConservation4DTorus(t *testing.T) {
	tor := topology.New(4, 4) // 256 nodes
	fs, err := fault.Random(tor, 8, rng.New(23), fault.DefaultRandomOptions())
	if err != nil {
		t.Fatal(err)
	}
	h := newHarness(t, 4, 4, 4, false, fs, 0.002, 8, 0, 29)
	for h.nw.Now() < 2500 {
		h.nw.Step()
	}
	h.drain(t, 300_000)
	res := h.col.Finalize(h.nw.Now(), len(fs.HealthyNodes()), false)
	if res.Delivered != h.col.GeneratedCount() || res.Dropped != 0 {
		t.Fatalf("4-D conservation violated: %d/%d", res.Delivered, h.col.GeneratedCount())
	}
}

func TestRouterDecisionTimeTd(t *testing.T) {
	// Td delays every head's routing decision; zero-load latency grows by
	// about Td per hop.
	lat := func(td int64) float64 {
		tor := topology.New(8, 2)
		fs := fault.NewSet(tor)
		alg, err := routing.NewDeterministic(tor, fs, 4)
		if err != nil {
			t.Fatal(err)
		}
		col := metrics.NewCollector(0)
		p := DefaultParams(4)
		p.Td = td
		nw := New(tor, fs, alg, nil, col, p, rng.New(3))
		src := tor.FromCoords([]int{0, 0})
		dst := tor.FromCoords([]int{4, 0})
		m := message.New(0, src, dst, 8, 2, message.Deterministic, 0)
		col.Generated(m)
		nw.Enqueue(src, m)
		for m.DeliveredAt < 0 && nw.Now() < 5000 {
			nw.Step()
		}
		if m.DeliveredAt < 0 {
			t.Fatal("not delivered")
		}
		return float64(m.DeliveredAt)
	}
	l0, l3 := lat(0), lat(3)
	// 4 hops + destination decision: at least 4*3 extra cycles.
	if l3 < l0+12 {
		t.Fatalf("Td=3 latency %v, want >= %v", l3, l0+12)
	}
}

func TestTransposePatternWithFaults(t *testing.T) {
	tor := topology.New(8, 2)
	fs, err := fault.Random(tor, 4, rng.New(41), fault.DefaultRandomOptions())
	if err != nil {
		t.Fatal(err)
	}
	alg, err := routing.NewDeterministic(tor, fs, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(41)
	gen := traffic.NewGenerator(tor, fs.HealthyNodes(), 0.003, 16, message.Deterministic,
		traffic.NewTranspose(tor, fs), r.Split(1))
	col := metrics.NewCollector(0)
	nw := New(tor, fs, alg, gen, col, DefaultParams(4), r.Split(2))
	for nw.Now() < 5000 {
		nw.Step()
	}
	nw.StopGeneration()
	for !nw.Idle() && nw.Now() < 300_000 {
		nw.Step()
	}
	if !nw.Idle() {
		t.Fatal("transpose run did not drain")
	}
	if col.DeliveredCount() != col.GeneratedCount() {
		t.Fatalf("lost messages: %d/%d", col.DeliveredCount(), col.GeneratedCount())
	}
}

// The starvation ablation: without re-injection priority absorbed messages
// compete with fresh traffic; conservation must still hold (the ablation
// changes fairness, not safety).
func TestNoReinjectPriorityStillDelivers(t *testing.T) {
	tor := topology.New(8, 2)
	fs, err := fault.Random(tor, 5, rng.New(47), fault.DefaultRandomOptions())
	if err != nil {
		t.Fatal(err)
	}
	alg, err := routing.NewDeterministic(tor, fs, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(47)
	gen := traffic.NewGenerator(tor, fs.HealthyNodes(), 0.004, 16, message.Deterministic,
		traffic.NewUniform(fs), r.Split(1))
	col := metrics.NewCollector(0)
	p := DefaultParams(4)
	p.NoReinjectPriority = true
	nw := New(tor, fs, alg, gen, col, p, r.Split(2))
	for nw.Now() < 5000 {
		nw.Step()
	}
	nw.StopGeneration()
	for !nw.Idle() && nw.Now() < 400_000 {
		nw.Step()
	}
	if !nw.Idle() {
		t.Fatal("no-priority run did not drain")
	}
	if col.DeliveredCount() != col.GeneratedCount() {
		t.Fatalf("lost messages: %d/%d", col.DeliveredCount(), col.GeneratedCount())
	}
}

// Link latency: doubling the wire time must add about one extra cycle per
// hop per flit pipeline stage at zero load, and conservation must hold.
func TestLinkLatency(t *testing.T) {
	lat := func(link int64, buf int) float64 {
		tor := topology.New(8, 2)
		fs := fault.NewSet(tor)
		alg, err := routing.NewDeterministic(tor, fs, 4)
		if err != nil {
			t.Fatal(err)
		}
		col := metrics.NewCollector(0)
		p := DefaultParams(4)
		p.LinkLatency = link
		p.BufDepth = buf
		nw := New(tor, fs, alg, nil, col, p, rng.New(3))
		src := tor.FromCoords([]int{0, 0})
		dst := tor.FromCoords([]int{4, 0})
		m := message.New(0, src, dst, 8, 2, message.Deterministic, 0)
		col.Generated(m)
		nw.Enqueue(src, m)
		for m.DeliveredAt < 0 && nw.Now() < 10_000 {
			nw.Step()
		}
		if m.DeliveredAt < 0 {
			t.Fatal("not delivered")
		}
		return float64(m.DeliveredAt)
	}
	l1 := lat(1, 4)
	l3 := lat(3, 4)
	// Head pays (3-1) extra cycles on each of 4 hops at minimum.
	if l3 < l1+8 {
		t.Fatalf("link latency 3 gave %v, want >= %v", l3, l1+8)
	}
}

func TestCreditDelayConservation(t *testing.T) {
	tor := topology.New(4, 2)
	fs := fault.NewSet(tor)
	alg, err := routing.NewDeterministic(tor, fs, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(61)
	gen := traffic.NewGenerator(tor, fs.HealthyNodes(), 0.01, 8, message.Deterministic,
		traffic.NewUniform(fs), r.Split(1))
	col := metrics.NewCollector(0)
	p := DefaultParams(2)
	p.CreditDelay = 4
	p.LinkLatency = 2
	nw := New(tor, fs, alg, gen, col, p, r.Split(2))
	for nw.Now() < 4000 {
		nw.Step()
	}
	nw.StopGeneration()
	for !nw.Idle() && nw.Now() < 400_000 {
		nw.Step()
	}
	if !nw.Idle() {
		t.Fatal("did not drain with delayed credits")
	}
	if col.DeliveredCount() != col.GeneratedCount() {
		t.Fatalf("conservation violated: %d/%d", col.DeliveredCount(), col.GeneratedCount())
	}
}

// Single-flit messages: head == tail, exercising every is-head/is-tail
// branch simultaneously.
func TestSingleFlitMessages(t *testing.T) {
	h := newHarness(t, 4, 2, 4, false, nil, 0.01, 1, 0, 53)
	for h.nw.Now() < 3000 {
		h.nw.Step()
	}
	h.drain(t, 50_000)
	if h.col.DeliveredCount() != h.col.GeneratedCount() {
		t.Fatalf("single-flit conservation violated: %d/%d",
			h.col.DeliveredCount(), h.col.GeneratedCount())
	}
}

// Adaptive routing on a 3-D torus with a stamped concave region.
func TestAdaptive3DWithRegion(t *testing.T) {
	tor := topology.New(4, 3)
	fs := fault.NewSet(tor)
	if _, err := fault.StampShape(fs, 0, 0, 1, fault.ShapeSpec{Shape: fault.ShapeL, A: 2, B: 2, AnchorA: 1, AnchorB: 1}); err != nil {
		t.Fatal(err)
	}
	if fs.Disconnects() {
		t.Fatal("premise broken")
	}
	h := newHarness(t, 4, 3, 4, true, fs, 0.004, 8, 0, 59)
	for h.nw.Now() < 4000 {
		h.nw.Step()
	}
	h.drain(t, 200_000)
	if h.col.DeliveredCount() != h.col.GeneratedCount() {
		t.Fatalf("3-D adaptive conservation violated: %d/%d",
			h.col.DeliveredCount(), h.col.GeneratedCount())
	}
}
