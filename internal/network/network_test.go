package network

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/message"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// harness bundles one engine with its collaborators.
type harness struct {
	t   *topology.Torus
	f   *fault.Set
	alg *routing.Algorithm
	gen *traffic.Generator
	col *metrics.Collector
	nw  *Network
}

func newHarness(tb testing.TB, k, n, v int, adaptive bool, fs *fault.Set, lambda float64, msgLen, warmup int, seed uint64) *harness {
	tb.Helper()
	tor := topology.New(k, n)
	if fs == nil {
		fs = fault.NewSet(tor)
	}
	var alg *routing.Algorithm
	var err error
	mode := message.Deterministic
	if adaptive {
		alg, err = routing.NewAdaptive(tor, fs, v)
		mode = message.Adaptive
	} else {
		alg, err = routing.NewDeterministic(tor, fs, v)
	}
	if err != nil {
		tb.Fatal(err)
	}
	r := rng.New(seed)
	gen := traffic.NewGenerator(tor, fs.HealthyNodes(), lambda, msgLen, mode, traffic.NewUniform(fs), r.Split(1))
	col := metrics.NewCollector(warmup)
	nw := New(tor, fs, alg, gen, col, DefaultParams(v), r.Split(2))
	return &harness{t: tor, f: fs, alg: alg, gen: gen, col: col, nw: nw}
}

// runUntilDelivered steps until `count` measured deliveries or maxCycles.
func (h *harness) runUntilDelivered(tb testing.TB, count uint64, maxCycles int64) {
	tb.Helper()
	for h.col.DeliveredCount() < count {
		if h.nw.Now() >= maxCycles {
			tb.Fatalf("timeout: %d/%d delivered after %d cycles (backlog %d, inflight %d)",
				h.col.DeliveredCount(), count, h.nw.Now(), h.nw.Backlog(), h.nw.InFlight())
		}
		h.nw.Step()
	}
}

// drain stops generation and runs the network empty.
func (h *harness) drain(tb testing.TB, maxCycles int64) {
	tb.Helper()
	h.nw.StopGeneration()
	start := h.nw.Now()
	for !h.nw.Idle() {
		if h.nw.Now()-start > maxCycles {
			tb.Fatalf("drain did not complete in %d cycles (backlog %d, inflight %d)",
				maxCycles, h.nw.Backlog(), h.nw.InFlight())
		}
		h.nw.Step()
	}
}

func TestSingleMessageLatency(t *testing.T) {
	// Quiet network: one low-rate source; check zero-load latency is about
	// hops + message length plus small pipeline constants.
	tor := topology.New(8, 2)
	fs := fault.NewSet(tor)
	alg, err := routing.NewDeterministic(tor, fs, 4)
	if err != nil {
		t.Fatal(err)
	}
	col := metrics.NewCollector(0)
	nw := New(tor, fs, alg, nil, col, DefaultParams(4), rng.New(3))
	src := tor.FromCoords([]int{0, 0})
	dst := tor.FromCoords([]int{3, 2})
	const M = 16
	m := message.New(0, src, dst, M, 2, message.Deterministic, 0)
	col.Generated(m)
	nw.Enqueue(src, m)
	for m.DeliveredAt < 0 && nw.Now() < 1000 {
		nw.Step()
	}
	if m.DeliveredAt < 0 {
		t.Fatal("message not delivered")
	}
	dist := int64(tor.Distance(src, dst)) // 5
	lat := m.DeliveredAt - m.CreatedAt
	min := dist + M
	if lat < min || lat > min+8 {
		t.Fatalf("zero-load latency = %d, want in [%d, %d]", lat, min, min+8)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, float64, int64) {
		fs, err := fault.Random(topology.New(8, 2), 3, rng.New(11), fault.DefaultRandomOptions())
		if err != nil {
			t.Fatal(err)
		}
		h := newHarness(t, 8, 2, 4, false, fs, 0.004, 32, 50, 42)
		h.runUntilDelivered(t, 400, 2_000_000)
		res := h.col.Finalize(h.nw.Now(), 61, false)
		return res.Delivered, res.MeanLatency, h.nw.Now()
	}
	d1, l1, c1 := run()
	d2, l2, c2 := run()
	if d1 != d2 || l1 != l2 || c1 != c2 {
		t.Fatalf("non-deterministic: (%d,%v,%d) vs (%d,%v,%d)", d1, l1, c1, d2, l2, c2)
	}
}

func TestConservationFaultFree(t *testing.T) {
	h := newHarness(t, 8, 2, 4, false, nil, 0.005, 16, 0, 7)
	for h.nw.Now() < 3000 {
		h.nw.Step()
	}
	h.drain(t, 100_000)
	gen := h.col.GeneratedCount()
	res := h.col.Finalize(h.nw.Now(), 64, false)
	if gen == 0 {
		t.Fatal("no traffic generated")
	}
	if res.Delivered != gen {
		t.Fatalf("conservation violated: generated %d, delivered %d, dropped %d",
			gen, res.Delivered, res.Dropped)
	}
	if res.Dropped != 0 || h.nw.Dropped() != 0 {
		t.Fatal("drops in a fault-free network")
	}
	if res.QueuedTotal() != 0 {
		t.Fatalf("software stops in a fault-free network: %d", res.QueuedTotal())
	}
}

func TestConservationWithFaultsDeterministic(t *testing.T) {
	tor := topology.New(8, 2)
	fs, err := fault.Random(tor, 5, rng.New(5), fault.DefaultRandomOptions())
	if err != nil {
		t.Fatal(err)
	}
	h := newHarness(t, 8, 2, 4, false, fs, 0.004, 16, 0, 13)
	for h.nw.Now() < 4000 {
		h.nw.Step()
	}
	h.drain(t, 200_000)
	gen := h.col.GeneratedCount()
	res := h.col.Finalize(h.nw.Now(), len(fs.HealthyNodes()), false)
	if res.Delivered != gen || res.Dropped != 0 {
		t.Fatalf("conservation violated: generated %d, delivered %d, dropped %d",
			gen, res.Delivered, res.Dropped)
	}
	if res.QueuedTotal() == 0 {
		t.Fatal("expected software stops with 5 faults")
	}
}

func TestConservationWithFaultsAdaptive(t *testing.T) {
	tor := topology.New(8, 2)
	fs, err := fault.Random(tor, 5, rng.New(6), fault.DefaultRandomOptions())
	if err != nil {
		t.Fatal(err)
	}
	h := newHarness(t, 8, 2, 4, true, fs, 0.004, 16, 0, 17)
	for h.nw.Now() < 4000 {
		h.nw.Step()
	}
	h.drain(t, 200_000)
	gen := h.col.GeneratedCount()
	res := h.col.Finalize(h.nw.Now(), len(fs.HealthyNodes()), false)
	if res.Delivered != gen || res.Dropped != 0 {
		t.Fatalf("conservation violated: generated %d, delivered %d", gen, res.Delivered)
	}
}

func TestAdaptiveQueuesLessThanDeterministic(t *testing.T) {
	// The core Fig. 7 qualitative claim: adaptive routing absorbs far fewer
	// messages than deterministic under the same faults.
	tor := topology.New(8, 2)
	fs, err := fault.Random(tor, 5, rng.New(21), fault.DefaultRandomOptions())
	if err != nil {
		t.Fatal(err)
	}
	queued := func(adaptive bool) uint64 {
		h := newHarness(t, 8, 2, 6, adaptive, fs, 0.005, 16, 0, 33)
		h.runUntilDelivered(t, 3000, 5_000_000)
		res := h.col.Finalize(h.nw.Now(), len(fs.HealthyNodes()), false)
		return res.QueuedFault
	}
	det := queued(false)
	ad := queued(true)
	if det == 0 {
		t.Fatal("deterministic run saw no absorptions")
	}
	if ad >= det {
		t.Fatalf("adaptive absorbed %d >= deterministic %d", ad, det)
	}
}

func TestHigherLoadHigherLatency(t *testing.T) {
	lat := func(lambda float64) float64 {
		h := newHarness(t, 8, 2, 4, false, nil, lambda, 32, 100, 55)
		h.runUntilDelivered(t, 2000, 5_000_000)
		return h.col.Finalize(h.nw.Now(), 64, false).MeanLatency
	}
	low := lat(0.001)
	high := lat(0.008)
	if high <= low {
		t.Fatalf("latency did not increase with load: %.1f (λ=.001) vs %.1f (λ=.008)", low, high)
	}
}

func TestLongerMessagesHigherLatency(t *testing.T) {
	lat := func(m int) float64 {
		h := newHarness(t, 8, 2, 4, false, nil, 0.002, m, 100, 77)
		h.runUntilDelivered(t, 1500, 5_000_000)
		return h.col.Finalize(h.nw.Now(), 64, false).MeanLatency
	}
	l32 := lat(32)
	l64 := lat(64)
	if l64 <= l32 {
		t.Fatalf("64-flit latency %.1f not above 32-flit %.1f", l64, l32)
	}
}

func TestBackpressureTinyBuffers(t *testing.T) {
	// BufDepth 1 at a busy load: credits must never be violated (Push panics
	// on overflow) and the network must still deliver.
	tor := topology.New(4, 2)
	fs := fault.NewSet(tor)
	alg, err := routing.NewDeterministic(tor, fs, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	gen := traffic.NewGenerator(tor, fs.HealthyNodes(), 0.02, 8, message.Deterministic, traffic.NewUniform(fs), r.Split(1))
	col := metrics.NewCollector(0)
	p := Params{V: 2, BufDepth: 1}
	nw := New(tor, fs, alg, gen, col, p, r.Split(2))
	for nw.Now() < 5000 {
		nw.Step()
	}
	nw.StopGeneration()
	for !nw.Idle() && nw.Now() < 500_000 {
		nw.Step()
	}
	if !nw.Idle() {
		t.Fatal("network failed to drain with depth-1 buffers")
	}
	if col.DeliveredCount() != col.GeneratedCount() {
		t.Fatalf("lost messages: %d/%d", col.DeliveredCount(), col.GeneratedCount())
	}
}

func TestReinjectionDelayDelta(t *testing.T) {
	// With a fault forcing absorption, Δ > 0 must delay deliveries relative
	// to Δ = 0.
	tor := topology.New(8, 2)
	fs := fault.NewSet(tor)
	fs.MarkNode(tor.FromCoords([]int{2, 0}))
	meanLat := func(delta int64) float64 {
		alg, err := routing.NewDeterministic(tor, fs, 4)
		if err != nil {
			t.Fatal(err)
		}
		col := metrics.NewCollector(0)
		p := DefaultParams(4)
		p.Delta = delta
		nw := New(tor, fs, alg, nil, col, p, rng.New(3))
		// Source two hops from the fault: the head discovers the faulty
		// channel at (1,0) mid-network and absorbs there (a fault adjacent
		// to the source would be replanned at injection time, without Δ).
		src := tor.FromCoords([]int{0, 0})
		dst := tor.FromCoords([]int{4, 0})
		m := message.New(0, src, dst, 8, 2, message.Deterministic, 0)
		col.Generated(m)
		nw.Enqueue(src, m)
		for m.DeliveredAt < 0 && nw.Now() < 10_000 {
			nw.Step()
		}
		if m.DeliveredAt < 0 {
			t.Fatal("not delivered")
		}
		return float64(m.DeliveredAt)
	}
	l0 := meanLat(0)
	l50 := meanLat(50)
	if l50 < l0+50 {
		t.Fatalf("Δ=50 latency %v not at least 50 over Δ=0 latency %v", l50, l0)
	}
}

func TestVirtualChannelsImproveSaturation(t *testing.T) {
	// At a load that saturates V=2, V=8 should deliver the quota faster
	// (higher throughput / lower clip latency).
	cycles := func(v int) int64 {
		h := newHarness(t, 8, 2, v, false, nil, 0.01, 32, 100, 91)
		h.runUntilDelivered(t, 2000, 20_000_000)
		return h.nw.Now()
	}
	c2 := cycles(2)
	c8 := cycles(8)
	if c8 > c2 {
		t.Fatalf("V=8 took %d cycles, V=2 took %d — more VCs should not be slower", c8, c2)
	}
}

func TestParamValidation(t *testing.T) {
	tor := topology.New(4, 2)
	fs := fault.NewSet(tor)
	alg, err := routing.NewDeterministic(tor, fs, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched V did not panic")
		}
	}()
	New(tor, fs, alg, nil, metrics.NewCollector(0), DefaultParams(2), rng.New(1))
}
