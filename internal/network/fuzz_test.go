package network

import (
	"testing"
	"testing/quick"

	"repro/internal/fault"
	"repro/internal/message"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// TestPropertyEngineConservation drives randomized small configurations
// end-to-end and asserts the engine's global invariants:
//
//   - conservation: generated = delivered (+0 drops for connected faults),
//   - every traced message history is structurally valid,
//   - no worm ever hops into a faulty node,
//   - the network drains completely once generation stops.
func TestPropertyEngineConservation(t *testing.T) {
	cfgCount := 0
	err := quick.Check(func(seed uint64, kRaw, nRaw, vRaw, nfRaw, lenRaw uint8, adaptive bool) bool {
		ks := []int{4, 5, 8}
		k := ks[int(kRaw)%len(ks)]
		n := 2 + int(nRaw)%2 // 2-D or 3-D
		v := 3 + int(vRaw)%4 // 3..6
		msgLen := 1 + int(lenRaw)%12
		tor := topology.New(k, n)
		nf := int(nfRaw) % (tor.Nodes() / 8)
		r := rng.New(seed)
		fs, err := fault.Random(tor, nf, r.Split(1), fault.DefaultRandomOptions())
		if err != nil {
			return true // impossible placement; skip
		}
		var alg *routing.Algorithm
		mode := message.Deterministic
		if adaptive {
			alg, err = routing.NewAdaptive(tor, fs, v)
			mode = message.Adaptive
		} else {
			alg, err = routing.NewDeterministic(tor, fs, v)
		}
		if err != nil {
			return false
		}
		guard := &faultGuard{Recorder: trace.NewRecorder(), tb: t, fs: fs}
		gen := traffic.NewGenerator(tor, fs.HealthyNodes(), 0.003, msgLen, mode,
			traffic.NewUniform(fs), r.Split(2))
		col := metrics.NewCollector(0)
		p := DefaultParams(v)
		p.BufDepth = 1 + int(seed%3)
		p.Delta = int64(seed % 5)
		p.Tracer = guard
		nw := New(tor, fs, alg, gen, col, p, r.Split(3))
		for nw.Now() < 1500 {
			nw.Step()
		}
		nw.StopGeneration()
		for !nw.Idle() && nw.Now() < 400_000 {
			nw.Step()
		}
		if !nw.Idle() {
			t.Logf("seed %d: did not drain (k=%d n=%d v=%d nf=%d len=%d adaptive=%v)",
				seed, k, n, v, nf, msgLen, adaptive)
			return false
		}
		if col.DeliveredCount() != col.GeneratedCount() || nw.Dropped() != 0 {
			t.Logf("seed %d: conservation violated %d/%d dropped=%d",
				seed, col.DeliveredCount(), col.GeneratedCount(), nw.Dropped())
			return false
		}
		if err := guard.Verify(tor); err != nil {
			t.Logf("seed %d: trace verification: %v", seed, err)
			return false
		}
		cfgCount++
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
	if cfgCount == 0 {
		t.Fatal("no configurations exercised")
	}
}
