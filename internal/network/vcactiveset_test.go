package network

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// TestVCActiveSetMatchesDenseScan is the per-VC scheduler's equivalence
// proof at the event level, mirroring TestActiveSetMatchesDenseScan one
// scheduler level down: an engine visiting only each busy router's active
// lanes must produce the exact same trace — every injection, hop, stop,
// re-injection and delivery at the same cycle — as one dense-scanning all
// Ports()×V lanes, for the same seed, across topology families, routing
// algorithms and fault patterns. Anything weaker (just comparing final
// means) could hide reordered rng draws that cancel out on average.
func TestVCActiveSetMatchesDenseScan(t *testing.T) {
	for _, tc := range []struct {
		name string
		net  func() topology.Network
		alg  string
		nf   int
	}{
		{"torus-det-faultfree", func() topology.Network { return topology.New(8, 2) }, "det", 0},
		{"torus-det-faults", func() topology.Network { return topology.New(8, 2) }, "det", 6},
		{"torus-adaptive-faults", func() topology.Network { return topology.New(8, 2) }, "adaptive", 6},
		{"mesh-det-faultfree", func() topology.Network { return topology.NewMesh(8, 2) }, "det", 0},
		{"mesh-det-faults", func() topology.Network { return topology.NewMesh(8, 2) }, "det", 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			evVC, resVC := runTraced(t, tc.net(), tc.alg, tc.nf, nil)
			evDense, resDense := runTraced(t, tc.net(), tc.alg, tc.nf,
				func(p *Params) { p.DenseVCScan = true })
			assertSameRun(t, evVC, evDense, resVC, resDense, "vc-active-set vs dense-vc-scan")
		})
	}
}

// TestVCActiveSetDrainsLanes checks the second-level scheduler's
// bookkeeping, mirroring TestActiveSetDrainsWorklist: once the network is
// idle, no router may retain active lanes (lanes must retire as they
// drain, or the per-router phases degenerate back to a Ports()×V scan).
func TestVCActiveSetDrainsLanes(t *testing.T) {
	tor := topology.New(8, 2)
	fs := fault.NewSet(tor)
	alg, err := routing.New("det", tor, fs, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	gen := traffic.NewGenerator(tor, fs.HealthyNodes(), 0.004, 16, alg.BaseMode(),
		traffic.NewUniform(fs), r.Split(1))
	col := metrics.NewCollector(0)
	nw := New(tor, fs, alg, gen, col, DefaultParams(4), r.Split(2))
	for nw.Now() < 2000 {
		nw.Step()
	}
	nw.StopGeneration()
	for !nw.Idle() && nw.Now() < 200_000 {
		nw.Step()
	}
	if !nw.Idle() {
		t.Fatal("network did not drain")
	}
	for id, rt := range nw.routers {
		if n := rt.LaneCount(); n != 0 {
			t.Fatalf("idle network: router %d still has %d active lanes", id, n)
		}
	}
}

// latmapTorus builds a 4-ary 2-cube carrying a non-uniform per-link latency
// overlay (latencies 1..3, varied per channel), forcing the engine's
// sorted-insertion arrival staging path. Shared by the ablation-matrix and
// arena-equivalence tests.
func latmapTorus(t *testing.T) topology.Network {
	t.Helper()
	base := topology.New(4, 2)
	var lines []byte
	for _, ch := range topology.ChannelsOf(base) {
		lat := 1 + (int(ch.Src)*7+int(ch.Port))%3
		lines = fmt.Appendf(lines, "%d,%d,%d\n", ch.Src, int(ch.Port), lat)
	}
	file := filepath.Join(t.TempDir(), "lat.csv")
	if err := os.WriteFile(file, lines, 0o644); err != nil {
		t.Fatal(err)
	}
	net, err := topology.NewNetwork("torus:k=4,n=2,latmap=" + file)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestSchedulerAblationMatrix locks the full knob cube: every combination
// of DenseScan × DenseVCScan × NoLinkCache × NoArena must produce the same
// event trace and results as the all-knobs-off default, on one seed, for
// both a faulted mesh and a torus carrying a non-uniform per-link latency
// overlay (the two configurations that exercise every conditional the
// knobs gate: mesh edges, absorption/re-injection, due-ordered arrival
// staging, and message recycling on delivery and drop).
func TestSchedulerAblationMatrix(t *testing.T) {
	for _, env := range []struct {
		name string
		net  func(t *testing.T) topology.Network
		alg  string
		nf   int
	}{
		{"faulted-mesh", func(*testing.T) topology.Network { return topology.NewMesh(8, 2) }, "det", 4},
		{"latmap-torus", latmapTorus, "det", 0},
	} {
		t.Run(env.name, func(t *testing.T) {
			evBase, resBase := runTraced(t, env.net(t), env.alg, env.nf, nil)
			for knobs := 1; knobs < 16; knobs++ { // 0 is the baseline itself
				dense := knobs&1 != 0
				denseVC := knobs&2 != 0
				noCache := knobs&4 != 0
				noArena := knobs&8 != 0
				name := fmt.Sprintf("dense=%v,denseVC=%v,noCache=%v,noArena=%v",
					dense, denseVC, noCache, noArena)
				ev, res := runTraced(t, env.net(t), env.alg, env.nf, func(p *Params) {
					p.DenseScan, p.DenseVCScan, p.NoLinkCache, p.NoArena = dense, denseVC, noCache, noArena
				})
				assertSameRun(t, evBase, ev, resBase, res, name)
			}
		})
	}
}
