package network

// Parallel stepping: the routers are partitioned into P contiguous
// node-id domains, each stepped by one worker. A cycle runs in two phases
// separated by barriers:
//
//	phase A (parallel)  per-domain route/allocate → switch → inject, with
//	                    every cross-router or shared-state effect staged
//	                    instead of applied: flit transfers and credit
//	                    returns go into per-(sender→receiver) mailboxes,
//	                    trace/metrics/pool/counter effects into per-phase
//	                    effect logs;
//	commit  (serial)    the effect logs replay phase-major, domain-
//	                    ascending — which is exactly the serial engine's
//	                    node-ascending order — so every order-sensitive
//	                    shared structure (the trace byte stream, the
//	                    collector's float accumulators, the pool's LIFO
//	                    free lists) mutates in the serial order;
//	phase B (parallel)  each worker drains the mailboxes addressed to its
//	                    domain in sender-ascending order (the serial
//	                    staging order), applies due arrivals/credits to
//	                    its own routers, and retires drained routers.
//
// Determinism rests on three invariants: (1) within a cycle, phase-A
// computation for a router reads only state owned by that router's domain
// plus immutable shared structure (topology, fault set, link table) and
// the message header of worms whose head flit it holds — the single-owner
// rule; (2) the commit replays effects in the serial engine's exact
// order; (3) phase B applies each receiver's events in the serial
// relative order (sender-ascending, same due-position insertion as the
// serial queue), and the remaining same-cycle effects (credit increments,
// pushes to distinct lanes) commute. Together these make the engine
// bit-identical to Workers <= 1 for any worker count — the same contract
// every scheduler ablation honors, enforced by TestParallelMatchesSerial.
import (
	"fmt"
	"slices"
	"sort"
	"sync"

	"repro/internal/message"
	"repro/internal/metrics"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Phase indices for the per-phase effect logs: the serial engine runs
// route/allocate, switch traversal, then injection for all routers, so the
// replay must group effects the same way.
const (
	phRoute = iota
	phSwitch
	phInject
	numPhases
)

// fxKind tags one staged shared-state effect.
type fxKind uint8

const (
	// fxTrace is a bare tracer event (AbsorbStart, Hop).
	fxTrace fxKind = iota
	// fxDeliver finalises a delivered worm: trace, latency sample, free.
	fxDeliver
	// fxStopVia / fxStopFault record a software-layer stop; the message
	// itself was already requeued by the computing worker (it stays
	// domain-owned), only the shared trace/metrics/counter work is staged.
	fxStopVia
	fxStopFault
	// fxDropEject finalises an undeliverable worm ejected mid-route.
	fxDropEject
	// fxDropInject finalises an undeliverable message dropped at injection
	// time (never entered the network: no trace event, no in-flight).
	fxDropInject
	// fxInject records a worm entering the network.
	fxInject
)

// fxRec is one staged effect. ref/msg/node carry whatever the kind's
// replay needs; tk only matters for fxTrace.
type fxRec struct {
	kind fxKind
	tk   trace.Kind
	ref  message.Ref
	msg  uint64
	node topology.NodeID
}

// worker is one stepping context. The serial engine owns a single direct
// worker (every effect applies immediately); each parallel domain owns a
// staging worker plus a private routing-algorithm instance, since a
// routing.Router's decision scratch is not goroutine-safe.
type worker struct {
	nw     *Network
	id     int
	direct bool

	// [loNode, hiNode) is the domain's node-id range; [workLo, workHi) is
	// its slice of nw.work this cycle (recomputed by beginCycleParallel).
	loNode, hiNode topology.NodeID
	workLo, workHi int

	alg routing.Router

	// Per-worker phase scratch, formerly engine-global: crossbar request
	// buckets and the candidate-VC buffer.
	buckets [][]xbarReq
	freeVCs []routing.CandidateVC

	// ph selects which effect log phase-A appends to.
	ph int
	fx [numPhases][]fxRec

	// outArr[d] / outCred[d] are the mailboxes of staged flit transfers /
	// credit returns addressed to domain d. Only this worker appends
	// (phase A); only worker d drains (phase B) — no two goroutines ever
	// touch the same box in the same phase.
	outArr  [][]arrivalEvent
	outCred [][]creditEvent

	// injArr holds same-cycle injection-channel transfers (always
	// addressed to the worker's own domain); arrQ/credQ are the domain's
	// in-flight link-transfer and credit queues, the parallel split of the
	// serial engine's arrivals/credits.
	injArr []arrivalEvent
	arrQ   []arrivalEvent
	credQ  []creditEvent

	// pend collects routers of this domain activated during phase B; keep
	// is the retire filter's output, spliced into nw.work at cycle end.
	pend []topology.NodeID
	keep []topology.NodeID
}

func newWorker(nw *Network, id int, direct bool, lo, hi topology.NodeID, alg routing.Router) *worker {
	w := &worker{nw: nw, id: id, direct: direct, loNode: lo, hiNode: hi, alg: alg}
	w.buckets = make([][]xbarReq, nw.t.Degree())
	for i := range w.buckets {
		w.buckets[i] = make([]xbarReq, 0, (nw.t.Degree()+1)*nw.p.V)
	}
	return w
}

// initWorkers builds the parallel domain workers when Params.Workers asks
// for more than one effective domain. Domain bounds are the contiguous
// ranges [i*N/P, (i+1)*N/P); worker 0 reuses the engine's algorithm
// instance, the rest clone through Params.AlgFactory.
func (nw *Network) initWorkers() {
	p := nw.p.Workers
	nodes := nw.t.Nodes()
	if p > nodes {
		p = nodes
	}
	if p <= 1 {
		return
	}
	if nw.p.AlgFactory == nil {
		panic("network: Workers > 1 requires Params.AlgFactory (each worker needs its own routing scratch)")
	}
	nw.dom = make([]int32, nodes)
	nw.par = make([]*worker, p)
	for i := 0; i < p; i++ {
		lo := topology.NodeID(i * nodes / p)
		hi := topology.NodeID((i + 1) * nodes / p)
		alg := nw.alg
		if i > 0 {
			a, err := nw.p.AlgFactory()
			if err != nil {
				panic(fmt.Sprintf("network: AlgFactory: %v", err))
			}
			if a.V() != nw.p.V {
				panic(fmt.Sprintf("network: AlgFactory built V=%d, engine has V=%d", a.V(), nw.p.V))
			}
			alg = a
		}
		w := newWorker(nw, i, false, lo, hi, alg)
		w.outArr = make([][]arrivalEvent, p)
		w.outCred = make([][]creditEvent, p)
		for n := lo; n < hi; n++ {
			nw.dom[n] = int32(i)
		}
		nw.par[i] = w
	}
}

// emit applies one shared-state effect: immediately on the serial path,
// staged into the current phase's log on the parallel one.
func (w *worker) emit(r fxRec) {
	if w.direct {
		w.nw.applyFx(r)
		return
	}
	w.fx[w.ph] = append(w.fx[w.ph], r)
}

// emitTrace emits a bare tracer event through the same channel. Skipped
// entirely when no tracer is attached, so the staging cost is zero for
// measurement runs.
func (w *worker) emitTrace(tk trace.Kind, msg uint64, node topology.NodeID) {
	nw := w.nw
	if nw.p.Tracer == nil {
		return
	}
	if w.direct {
		nw.p.Tracer.Trace(trace.Event{Cycle: nw.now, Msg: msg, Kind: tk, Node: node})
		return
	}
	w.fx[w.ph] = append(w.fx[w.ph], fxRec{kind: fxTrace, tk: tk, msg: msg, node: node})
}

// applyFx performs one effect against the engine's shared state. The
// serial worker calls it inline (so the serial engine's behaviour is the
// reference by construction); the parallel commit replays logs through it
// in the serial order.
//
//simlint:phase commit
func (nw *Network) applyFx(r fxRec) {
	switch r.kind {
	case fxTrace:
		nw.trace(r.tk, r.msg, r.node)
	case fxDeliver:
		nw.inFlight--
		nw.trace(trace.Deliver, r.msg, r.node)
		nw.col.Delivered(nw.pool.At(r.ref), nw.now)
		nw.pool.Free(r.ref)
	case fxStopVia:
		nw.inFlight--
		nw.trace(trace.ViaStop, r.msg, r.node)
		nw.col.Stop(nw.pool.At(r.ref), metrics.StopVia)
	case fxStopFault:
		nw.inFlight--
		nw.trace(trace.FaultStop, r.msg, r.node)
		nw.col.Stop(nw.pool.At(r.ref), metrics.StopFault)
	case fxDropEject:
		nw.inFlight--
		nw.trace(trace.Drop, r.msg, r.node)
		nw.col.Dropped(nw.pool.At(r.ref))
		nw.dropped++
		nw.pool.Free(r.ref)
	case fxDropInject:
		nw.col.Dropped(nw.pool.At(r.ref))
		nw.dropped++
		nw.pool.Free(r.ref)
	case fxInject:
		nw.inFlight++
		nw.trace(trace.Inject, r.msg, r.node)
	}
}

// stageArrivalW routes a staged link transfer: onto the serial engine's
// global queue, or into the mailbox of the destination router's domain.
func (w *worker) stageArrivalW(ev arrivalEvent) {
	if w.direct {
		w.nw.stageArrival(ev)
		return
	}
	d := w.nw.dom[ev.node]
	w.outArr[d] = append(w.outArr[d], ev)
}

// stepParallel is Step for Workers > 1. Traffic polling stays serial (the
// source is one stream of draws); everything per-router fans out.
func (nw *Network) stepParallel() {
	nw.now++
	nw.applyTransitions() // serial: no worker goroutine exists between cycles
	nw.pollTraffic()
	nw.beginCycleParallel()
	nw.runParallel((*worker).phaseA)
	nw.commitEffects()
	nw.runParallel((*worker).phaseB)
	nw.finishCycleParallel()
}

// beginCycleParallel merges newly activated routers (serial-side pending
// plus every worker's phase-B pend list) into the sorted worklist, then
// recomputes each domain's work range. The active flags guarantee a node
// appears in at most one of the merged lists.
func (nw *Network) beginCycleParallel() {
	if !nw.p.DenseScan {
		merged := len(nw.pending) > 0
		if merged {
			nw.work = append(nw.work, nw.pending...)
			nw.pending = nw.pending[:0]
		}
		for _, w := range nw.par {
			if len(w.pend) > 0 {
				nw.work = append(nw.work, w.pend...)
				w.pend = w.pend[:0]
				merged = true
			}
		}
		if merged {
			slices.Sort(nw.work)
		}
	}
	lo := 0
	for _, w := range nw.par {
		hi := lo + sort.Search(len(nw.work)-lo, func(i int) bool { return nw.work[lo+i] >= w.hiNode })
		w.workLo, w.workHi = lo, hi
		lo = hi
	}
}

// runParallel executes f on every worker, worker 0 on the calling
// goroutine. Goroutines are spawned per phase: the engine holds no
// long-lived workers, so abandoned engines (sweep instances) need no
// shutdown and the serial engine pays nothing.
func (nw *Network) runParallel(f func(*worker)) {
	var wg sync.WaitGroup
	for _, w := range nw.par[1:] {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			f(w)
		}(w)
	}
	f(nw.par[0])
	wg.Wait()
}

// phaseA runs the three per-router phases over the worker's slice of the
// worklist, in the serial engine's node-ascending, phase-major order.
//
//simlint:phase compute
func (w *worker) phaseA() {
	nw := w.nw
	work := nw.work[w.workLo:w.workHi]
	if nw.vcTrack {
		for _, id := range work {
			nw.routers[id].MergeLanes()
		}
	}
	w.ph = phRoute
	for _, node := range work {
		w.routeNode(node)
	}
	w.ph = phSwitch
	for _, node := range work {
		w.switchNode(node)
	}
	w.ph = phInject
	for _, node := range work {
		w.injectNode(node)
	}
}

// commitEffects replays every worker's effect logs phase-major and
// domain-ascending. Within a phase each worker staged its effects while
// walking its work slice in ascending node order, and domains cover
// ascending node ranges, so the replay order is exactly the serial
// engine's global node-ascending order for that phase.
//
//simlint:phase commit
func (nw *Network) commitEffects() {
	for ph := 0; ph < numPhases; ph++ {
		for _, w := range nw.par {
			for _, r := range w.fx[ph] {
				nw.applyFx(r)
			}
			w.fx[ph] = w.fx[ph][:0]
		}
	}
}

// phaseB applies the cycle's staged transfers to the worker's own domain
// and retires drained routers. Each (sender, receiver) mailbox is drained
// only here, only by its receiver, after the phase barrier — so phase B
// reads nothing any other goroutine is writing.
//
//simlint:phase commit
func (w *worker) phaseB() {
	nw := w.nw
	// Injection-channel transfers: staged by this worker, always addressed
	// to its own routers, always due this cycle.
	for _, a := range w.injArr {
		w.applyArrival(a)
	}
	w.injArr = w.injArr[:0]
	// Link transfers: merge incoming mailboxes sender-ascending with the
	// serial queue's due-position discipline, so this domain's queue holds
	// its events in the order the serial engine would have staged them.
	for _, src := range nw.par {
		box := src.outArr[w.id]
		for _, ev := range box {
			w.arrQ = queueArrival(w.arrQ, ev, nw.uniformLat)
		}
		src.outArr[w.id] = box[:0]
	}
	i := 0
	for ; i < len(w.arrQ) && w.arrQ[i].dueAt <= nw.now; i++ {
		w.applyArrival(w.arrQ[i])
	}
	w.arrQ = sliceTail(w.arrQ, i)
	// Credits: a constant CreditDelay keeps each queue due-ordered under
	// plain appends, and same-cycle increments commute.
	for _, src := range nw.par {
		box := src.outCred[w.id]
		w.credQ = append(w.credQ, box...)
		src.outCred[w.id] = box[:0]
	}
	j := 0
	for ; j < len(w.credQ) && w.credQ[j].dueAt <= nw.now; j++ {
		c := w.credQ[j]
		nw.routers[c.node].Out[c.port][c.vc].Credits++
	}
	w.credQ = sliceTail(w.credQ, j)
	// Retire drained routers from this domain's work range (serial
	// endCycle, restricted to the domain).
	if nw.p.DenseScan {
		return
	}
	w.keep = w.keep[:0]
	for _, id := range nw.work[w.workLo:w.workHi] {
		if nw.routerBusy(id) {
			w.keep = append(w.keep, id)
		} else {
			nw.active[id] = false
		}
	}
}

// finishCycleParallel splices the per-domain keep lists back into the
// worklist. Each list is ascending and domains cover ascending ranges, so
// the concatenation is sorted without another sort.
func (nw *Network) finishCycleParallel() {
	if nw.p.DenseScan {
		return
	}
	nw.work = nw.work[:0]
	for _, w := range nw.par {
		nw.work = append(nw.work, w.keep...)
	}
}
