package network

// Dynamic fault transitions. A scheduled run (Params.Schedule) applies
// fail/heal transitions at one fixed point in the cycle: after the clock
// advances, before traffic polling and every per-router phase. The point
// is serial in both engines — between cycles no worker goroutine exists —
// so transitions mutate state across domain boundaries freely, and the
// parallel engine stays bit-identical to the serial one (the commit-order
// contract extends to dynamic runs; TestScheduleParallelMatchesSerial
// holds it).
//
// A failure purges every worm occupying the failed component: its flits
// are pulled out of buffers, link pipelines and injection streams, its
// channel reservations are released with credits restored, and the whole
// message restarts from its source through the priority re-injection
// queue (counted as Reinjected) — unless either endpoint is down, in
// which case the message is counted Lost (routing assumes healthy
// destinations, so a dead-destination worm would circle until the heal).
// Heals mutate only the fault set: a healed component comes back empty,
// with full credits, because the purge left it that way when it failed.

import (
	"sort"

	"repro/internal/fault"
	"repro/internal/message"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/trace"
)

// applyTransitions drives the fault schedule for this cycle. No-op (two
// loads and a compare) for static runs.
func (nw *Network) applyTransitions() {
	if nw.view == nil {
		return
	}
	changed := false
	for _, tr := range nw.sched.Advance(nw.now, nw.f) {
		if !nw.view.Apply(tr) {
			continue // no-op transition (replayed trace, stale heal)
		}
		changed = true
		nw.col.Transition(nw.now, tr.Fail)
		if tr.Fail {
			nw.purgeFailure(tr)
		}
	}
	if changed {
		nw.refreshRouting()
	}
}

// refreshRouting rebuilds fault-derived routing state (region index,
// healthy-node caches) in every algorithm instance after the shared fault
// set changed. Worker 0 aliases the engine's instance; the rest are
// clones with their own scratch and their own index.
func (nw *Network) refreshRouting() {
	if fr, ok := nw.alg.(routing.FaultRefresher); ok {
		fr.RefreshFaults()
	}
	if nw.par == nil {
		return
	}
	for _, w := range nw.par[1:] {
		if fr, ok := w.alg.(routing.FaultRefresher); ok {
			fr.RefreshFaults()
		}
	}
}

// purgeFailure removes every worm occupying the component that just
// failed. The sweep is O(nodes × lanes) — transitions are rare events, so
// clarity wins over a reverse index.
func (nw *Network) purgeFailure(tr fault.Transition) {
	dead, deadNode := nw.deadChannels(tr)

	// Pass 1: find the affected worms — every worm with state at the
	// failed node, holding a route into a dead channel, with flits in
	// flight on one, or (node failures) destined to the dead node. The
	// last class exists because routing assumes healthy destinations: a
	// worm bound for a dead node would circle until the heal, so it is
	// purged and lost wherever it is.
	aff := make(map[message.Ref]bool)
	dstDead := func(ref message.Ref) bool {
		return deadNode >= 0 && nw.pool.At(ref).Dst == deadNode
	}
	for id := range nw.routers {
		rt := nw.routers[id]
		node := topology.NodeID(id)
		for p := range rt.In {
			for vc := range rt.In[p] {
				ivc := &rt.In[p][vc]
				if node == deadNode {
					ivc.Buf.Each(func(f message.Flit) { aff[f.Ref()] = true })
					if ivc.HasRoute {
						aff[ivc.Owner] = true
					}
					continue
				}
				if deadNode >= 0 {
					ivc.Buf.Each(func(f message.Flit) {
						if dstDead(f.Ref()) {
							aff[f.Ref()] = true
						}
					})
				}
				if ivc.HasRoute && !ivc.ToEject && dead[topology.ChannelID{Src: node, Port: ivc.OutPort}] {
					aff[ivc.Owner] = true
				}
			}
		}
	}
	markArrivals := func(q []arrivalEvent) {
		for _, ev := range q {
			if ch, ok := nw.arrivalChannel(ev); ok && dead[ch] {
				aff[ev.flit.Ref()] = true
			} else if dstDead(ev.flit.Ref()) {
				aff[ev.flit.Ref()] = true
			}
		}
	}
	markArrivals(nw.arrivals)
	for _, w := range nw.par {
		markArrivals(w.arrQ)
	}
	if deadNode >= 0 {
		for id := range nw.streams {
			for _, s := range nw.streams[id] {
				if topology.NodeID(id) == deadNode || dstDead(s.ref) {
					aff[s.ref] = true
				}
			}
		}
	}

	// Pass 2: pull the affected worms' flits out of every buffer and
	// release their lane reservations. A flit removed from a network input
	// buffer will never pop, so the credit it consumed upstream is
	// restored directly — unless the feeding channel is dead, whose output
	// VCs are reset wholesale in pass 4.
	degree := nw.t.Degree()
	for id := range nw.routers {
		rt := nw.routers[id]
		node := topology.NodeID(id)
		for p := range rt.In {
			for vc := range rt.In[p] {
				ivc := &rt.In[p][vc]
				removed := 0
				if ivc.Buf.Len() > 0 {
					removed = rt.FilterLane(p, vc, func(f message.Flit) bool { return aff[f.Ref()] })
				}
				if removed > 0 && p < degree {
					feed := topology.ChannelID{Src: nw.linkFor(node, topology.Port(p)).dst, Port: topology.Port(p).Opposite()}
					if !dead[feed] {
						nw.routers[feed.Src].Out[feed.Port][vc].Credits += removed
					}
				}
				cleared := false
				if ivc.HasRoute && aff[ivc.Owner] {
					if !ivc.ToEject {
						rt.Out[ivc.OutPort][ivc.OutVC].Busy = false
					}
					ivc.HasRoute = false
					cleared = true
				}
				if removed > 0 || cleared {
					// A surviving worm's head may have surfaced; treat it
					// like an arrival at the end of the previous cycle.
					if nf, ok := ivc.Buf.Front(); ok && nf.IsHead() && !ivc.HasRoute {
						ivc.ReadyAt = nw.now + nw.p.Td
					}
				}
			}
		}
	}

	// Pass 3: drop the affected worms' in-flight link transfers, again
	// restoring the consumed credit when the traveled channel survives.
	nw.arrivals = nw.filterArrivals(nw.arrivals, aff, dead)
	for _, w := range nw.par {
		w.arrQ = nw.filterArrivals(w.arrQ, aff, dead)
	}

	// Pass 4: reset every dead channel's output VCs to the state the
	// credit-flow invariant dictates — free space equals buffer depth
	// minus surviving downstream occupancy minus credits still in flight
	// back to this VC. Pending credit events are NOT dropped: as surviving
	// occupants pop, their credits arrive and the count converges to a
	// full buffer, which is exactly what a later heal must find.
	// The walk runs in sorted (Src, Port) order: the per-channel resets
	// are independent today, but sorting removes map-iteration order from
	// the engine's state trajectory outright.
	deadCh := make([]topology.ChannelID, 0, len(dead))
	for ch := range dead {
		deadCh = append(deadCh, ch)
	}
	sort.Slice(deadCh, func(i, j int) bool {
		if deadCh[i].Src != deadCh[j].Src {
			return deadCh[i].Src < deadCh[j].Src
		}
		return deadCh[i].Port < deadCh[j].Port
	})
	for _, ch := range deadCh {
		down := nw.linkFor(ch.Src, ch.Port).dst
		inPort := int(ch.Port.Opposite())
		for vc := 0; vc < nw.p.V; vc++ {
			ovc := &nw.routers[ch.Src].Out[ch.Port][vc]
			ovc.Busy = false
			ovc.Credits = nw.p.BufDepth - nw.routers[down].In[inPort][vc].Buf.Len() - nw.pendingCredits(ch.Src, ch.Port, vc)
		}
	}

	// Pass 5: the software layers shed doomed messages — everything queued
	// at the failed node, plus everything queued anywhere destined to it.
	// Queued fresh messages vanish silently (they never entered the
	// network, so they have no trace stream to terminate); absorbed
	// messages awaiting re-injection get their streams closed with a
	// Purge+Drop. Injection streams of affected worms disappear everywhere
	// — at the failed node and at any healthy node still trickling in a
	// worm that just lost flits to a dead channel.
	if deadNode >= 0 {
		for id := range nw.newQ {
			node := topology.NodeID(id)
			doomed := node == deadNode
			for _, ref := range nw.newQ[id].Filter(func(ref message.Ref) bool {
				return doomed || dstDead(ref)
			}) {
				nw.col.Lost(nw.pool.At(ref))
				nw.pool.Free(ref)
			}
			for _, pm := range nw.reQ[id].Filter(func(pm pendingMsg) bool {
				return doomed || dstDead(pm.ref)
			}) {
				m := nw.pool.At(pm.ref)
				nw.trace(trace.Purge, m.ID, node)
				nw.trace(trace.Drop, m.ID, node)
				nw.col.Lost(m)
				nw.pool.Free(pm.ref)
			}
		}
	}
	for id := range nw.streams {
		ss := nw.streams[id][:0]
		for _, s := range nw.streams[id] {
			if !aff[s.ref] {
				ss = append(ss, s)
			}
		}
		nw.streams[id] = ss
	}

	// Pass 6: finalise the affected worms in message-ID order (the
	// canonical deterministic order; map iteration is not). Salvageable
	// worms restart from their source with a rewound header through the
	// priority queue; worms whose source is down are lost.
	refs := make([]message.Ref, 0, len(aff))
	for ref := range aff {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(i, j int) bool { return nw.pool.At(refs[i]).ID < nw.pool.At(refs[j]).ID })
	for _, ref := range refs {
		m := nw.pool.At(ref)
		nw.inFlight--
		nw.trace(trace.Purge, m.ID, m.Src)
		if nw.f.NodeFaulty(m.Src) || nw.f.NodeFaulty(m.Dst) {
			nw.trace(trace.Drop, m.ID, m.Src)
			nw.col.Lost(m)
			nw.pool.Free(ref)
			continue
		}
		m.ResetForRequeue(nw.baseMode)
		nw.col.Reinjected(m)
		nw.reQ[m.Src].Push(pendingMsg{ref: ref, eligibleAt: nw.now + nw.p.Delta})
		nw.markActive(m.Src)
	}
}

// deadChannels enumerates the unidirectional channels a failure kills:
// both directions of a failed link, or every channel incident on a failed
// node (deadNode then identifies the node; -1 for link failures).
func (nw *Network) deadChannels(tr fault.Transition) (map[topology.ChannelID]bool, topology.NodeID) {
	dead := make(map[topology.ChannelID]bool)
	if tr.IsLink {
		dead[tr.Link] = true
		dead[topology.ChannelID{Src: tr.Link.Dst(nw.t), Port: tr.Link.Port.Opposite()}] = true
		return dead, -1
	}
	for p := 0; p < nw.t.Degree(); p++ {
		port := topology.Port(p)
		if !nw.t.HasLink(tr.Node, port.Dim(), port.Dir()) {
			continue
		}
		ch := topology.ChannelID{Src: tr.Node, Port: port}
		dead[ch] = true
		dead[topology.ChannelID{Src: ch.Dst(nw.t), Port: port.Opposite()}] = true
	}
	return dead, tr.Node
}

// arrivalChannel identifies the channel a staged link transfer is
// traveling on: the event is addressed to (node, input port), so it came
// from that port's neighbor through the paired output.
func (nw *Network) arrivalChannel(ev arrivalEvent) (topology.ChannelID, bool) {
	if ev.port >= nw.t.Degree() {
		return topology.ChannelID{}, false // injection transfer: no link
	}
	up := nw.linkFor(ev.node, topology.Port(ev.port)).dst
	return topology.ChannelID{Src: up, Port: topology.Port(ev.port).Opposite()}, true
}

// filterArrivals removes in-flight transfers of affected worms from one
// arrival queue, restoring the consumed upstream credit when the traveled
// channel is not itself dead (dead channels are reset wholesale).
func (nw *Network) filterArrivals(q []arrivalEvent, aff map[message.Ref]bool, dead map[topology.ChannelID]bool) []arrivalEvent {
	kept := q[:0]
	for _, ev := range q {
		if !aff[ev.flit.Ref()] {
			kept = append(kept, ev)
			continue
		}
		if ch, ok := nw.arrivalChannel(ev); ok && !dead[ch] {
			nw.routers[ch.Src].Out[ch.Port][ev.vc].Credits++
		}
	}
	return kept
}

// pendingCredits counts staged credit returns addressed to output VC
// (node, port, vc), across the serial queue and every domain's.
func (nw *Network) pendingCredits(node topology.NodeID, port topology.Port, vc int) int {
	n := 0
	count := func(q []creditEvent) {
		for _, c := range q {
			if c.node == node && c.port == port && c.vc == vc {
				n++
			}
		}
	}
	count(nw.credits)
	for _, w := range nw.par {
		count(w.credQ)
	}
	return n
}
