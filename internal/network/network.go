// Package network is the flit-level, cycle-accurate simulation engine: it
// wires one router per node of any topology.Network, drives the configured
// traffic source (any registered traffic.Source — Poisson, bursty, trace
// replay, ...) through them under wormhole switching with virtual channels
// and credit flow control, and implements the Software-Based
// absorption/re-injection machinery (assumption (i) of the paper):
//
//   - a message whose outgoing channel leads to a fault is ejected through
//     the local ejection channel into the node's software queue,
//   - the messaging layer rewrites the header (internal/routing's planner),
//   - after Δ cycles the message re-injects with priority over new traffic.
//
// The engine is fully deterministic for a given seed at any worker count:
// Params.Workers > 1 partitions the routers into contiguous node-range
// domains stepped by a worker pool under a compute/commit barrier (see
// parallel.go), with results bit-identical to the serial engine. Sweeps
// additionally parallelise across engine instances (see internal/core).
//
// Messages live in a message.Pool: every queue, stream and buffered flit
// carries a compact message.Ref instead of a pointer, and delivery/drop
// returns the message to the pool — so a steady-state Step allocates
// nothing (see the BenchmarkStep* suite and Config.NoArena for the heap
// ablation).
package network

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/fault"
	"repro/internal/message"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// Params configures one engine instance.
type Params struct {
	// V is the number of virtual channels per physical channel.
	V int
	// BufDepth is the per-VC buffer depth in flits.
	BufDepth int
	// Td is the router decision time in cycles (assumption (f); the paper's
	// experiments use 0).
	Td int64
	// Delta is the software re-injection overhead in cycles (assumption
	// (i); the paper's experiments use 0).
	Delta int64
	// SaturationBacklog stops the run early and marks it saturated once the
	// summed source queues exceed this many messages (0 disables).
	SaturationBacklog int
	// Tracer, when non-nil, receives per-message events (injections, hops,
	// stops, deliveries). Used by debugging tools and invariant tests.
	Tracer trace.Tracer
	// NoReinjectPriority disables the paper's "absorbed messages have
	// priority over new messages" rule (ablation: §4 argues the priority
	// prevents starvation).
	NoReinjectPriority bool
	// LinkLatency is the default flit transmission time across a physical
	// channel in cycles. The paper's assumption (g) — one flit per cycle —
	// is the default 1; larger values model longer wires (ablation knob).
	// Topologies carrying a latmap overlay override it per link
	// (topology.Network.LinkLatency); credits keep the global CreditDelay.
	LinkLatency int64
	// CreditDelay is the time for a credit to travel back upstream.
	// Default 1 (visible the next cycle); larger values model pipelined
	// credit return paths.
	CreditDelay int64
	// DenseScan disables the active-set scheduler and visits every router
	// every cycle, as the engine originally did. Ablation/benchmark knob:
	// results are bit-identical either way, only Step cost differs.
	// Implies DenseVCScan: a dense router scan always scans lanes densely.
	DenseScan bool
	// DenseVCScan disables the per-(port, VC) lane worklists and scans all
	// Ports()×V input lanes of every visited router, as the engine did
	// between the router-level active set (PR 1) and the per-VC scheduler.
	// Ablation/benchmark knob mirroring DenseScan: results are
	// bit-identical either way, only Step cost differs.
	DenseVCScan bool
	// NoLinkCache disables the engine's precomputed per-link geometry
	// table and queries the topology interface on every flit transfer
	// instead. Benchmark/ablation knob guarding the topology-seam
	// refactor: results are bit-identical either way, only the dispatch
	// cost differs.
	NoLinkCache bool
	// NoArena selects the heap message path: the engine's pool hands out a
	// fresh garbage-collected Message per allocation instead of recycling
	// arena storage. Benchmark/ablation knob in the DenseScan family:
	// results are bit-identical either way, only allocation behaviour
	// differs. Ignored when Pool is set (the pool carries its own mode).
	NoArena bool
	// GlobalRNG restores the legacy VC-selection rng: one engine-wide
	// stream consumed in router-iteration order, as the engine drew before
	// per-router streams became the default. Ablation/reference knob in
	// the DenseScan family. The draw *sequence* necessarily differs from
	// the per-router default (each mode is bit-identical to itself across
	// every scheduler knob, not to the other mode), and a global stream
	// cannot be consumed concurrently, so GlobalRNG requires Workers <= 1.
	GlobalRNG bool
	// Workers is the number of stepping domains: the routers are split
	// into this many contiguous node-id ranges, each stepped by its own
	// worker under a compute/commit barrier (see parallel.go). <= 1 runs
	// the serial engine. Results are bit-identical for any value; only
	// wall-clock cost differs. Values above the node count are clamped.
	Workers int
	// AlgFactory builds one extra routing-algorithm instance per parallel
	// worker beyond the first (a routing.Router's Decision scratch must not
	// be shared across goroutines). Required when Workers > 1; instances
	// must be configured identically to the engine's alg (same topology,
	// fault set, V, escalation). internal/core wires it from the routing
	// registry.
	AlgFactory func() (routing.Router, error)
	// Pool, when non-nil, is the message pool the engine registers, resolves
	// and frees messages in. It must be the same pool the traffic source
	// allocates from (see traffic.Env.Pool); internal/core wires the two.
	// When nil, the engine builds its own pool and Adopt-registers every
	// polled or enqueued message — correct, but source-side allocations
	// then stay on the heap.
	Pool *message.Pool
	// Schedule, when non-nil, makes the run dynamic: the engine advances
	// the schedule once per cycle at the serial transition point and
	// applies its fail/heal transitions through a fault.View over the
	// shared fault set (see transitions.go). The schedule must be built
	// over the same fault set the engine and algorithm share.
	Schedule fault.Schedule
}

// DefaultParams returns the paper's configuration: Td = 0, Δ = 0,
// 2-flit VC buffers.
func DefaultParams(v int) Params {
	return Params{V: v, BufDepth: 2, SaturationBacklog: 0}
}

// arrivalEvent is a staged flit transfer, applied when dueAt <= now (at
// cycle end). Events are enqueued in non-decreasing dueAt order because the
// link latency is constant, so a FIFO suffices.
type arrivalEvent struct {
	dueAt int64
	node  topology.NodeID
	port  int
	vc    int
	flit  message.Flit
}

// xbarReq is a crossbar request: input lane (port, vc) asking for its
// allocated output physical channel this cycle.
type xbarReq struct{ port, vc int }

// creditEvent is a staged credit return, applied when dueAt <= now.
type creditEvent struct {
	dueAt int64
	node  topology.NodeID
	port  topology.Port
	vc    int
}

// link is one precomputed entry of the engine's per-(node, port) geometry
// table: the downstream router, whether the hop crosses the dateline, and
// the effective flit latency (per-link overlay or the global default).
// Routing only ever allocates existing healthy channels, so the dst of an
// unwired mesh-edge port (-1) is never read.
type link struct {
	dst   topology.NodeID
	wraps bool
	lat   int64
}

// pendingMsg is a queued message at a node's software layer.
type pendingMsg struct {
	ref        message.Ref
	eligibleAt int64
}

// stream is a message currently trickling through a node's injection
// channel into an injection-port virtual channel. len caches the worm
// length so per-flit injection needs no pool lookup.
type stream struct {
	ref message.Ref
	len int
	vc  int
	seq int
}

// fifo is a head-indexed FIFO whose backing array is reused: popping
// advances the head, and full drains rewind it, so steady-state traffic
// stops allocating (a plain q = q[1:] pop leaks the front capacity and
// reallocates forever).
type fifo[T any] struct {
	items []T
	head  int
}

func (q *fifo[T]) Len() int { return len(q.items) - q.head }
func (q *fifo[T]) Push(v T) { q.items = append(q.items, v) }
func (q *fifo[T]) Front() T { return q.items[q.head] }
func (q *fifo[T]) Pop() {
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
}

// Filter removes every queued entry drop reports true for, preserving
// the order of the survivors, and returns the removed entries in queue
// order. Used by dynamic fault transitions; never on the hot path.
func (q *fifo[T]) Filter(drop func(T) bool) []T {
	var removed []T
	kept := q.items[:q.head]
	for _, v := range q.items[q.head:] {
		if drop(v) {
			removed = append(removed, v)
		} else {
			kept = append(kept, v)
		}
	}
	q.items = kept
	return removed
}

// Network is the simulation engine.
type Network struct {
	t    topology.Network
	f    *fault.Set
	alg  routing.Router
	p    Params
	pool *message.Pool

	// links is the per-(node, port) geometry/latency table (see link);
	// uniformLat records whether every link shares the default latency, in
	// which case staged arrivals are naturally FIFO-ordered by due cycle.
	links      [][]link
	uniformLat bool

	routers []*router.Router
	gen     traffic.Source
	col     *metrics.Collector
	r       *rng.Stream

	// rngs holds each router's VC-selection stream, derived from the
	// engine stream via Split(rng.RouterLabel(id)) at construction. Under
	// the GlobalRNG ablation every entry aliases the one engine stream, so
	// the hot path is branch-free either way. Per-router ownership is what
	// lets domains draw concurrently without perturbing each other.
	rngs []*rng.Stream

	// sw is the serial stepping context: the one worker that applies every
	// effect directly instead of staging it (see worker). par, when
	// non-nil, holds the parallel domain workers and dom maps node id →
	// owning domain index (see parallel.go).
	sw  *worker
	par []*worker
	dom []int32

	// Per-node software queues: fresh traffic and re-injections (the latter
	// have absolute priority, §4 "Absorbed messages have priority over new
	// messages to prevent starvation").
	newQ []fifo[message.Ref]
	reQ  []fifo[pendingMsg]
	// Per-node active injection streams, at most one flit/cycle/node.
	streams [][]stream
	rrInj   []int

	// arrivals holds in-flight link transfers (uniform latency, so FIFO is
	// due-ordered); injArrivals holds same-cycle injection-channel
	// transfers, drained fully every cycle. Both are the serial engine's
	// queues; parallel workers keep per-domain equivalents.
	arrivals    []arrivalEvent
	injArrivals []arrivalEvent
	credits     []creditEvent

	// Active-set scheduler state: the engine visits only routers that can
	// make progress this cycle instead of dense-scanning every node.
	// work is the sorted worklist processed by the per-cycle phases;
	// pending collects routers activated by events (generated traffic,
	// flit arrivals, re-injections) since the last cycle started; active
	// flags membership in either. A router leaves the worklist when it is
	// fully drained: no buffered flits, no queued messages, no streams.
	// With Params.DenseScan the worklist is pinned to every node.
	active  []bool
	work    []topology.NodeID
	pending []topology.NodeID
	allIDs  []topology.NodeID

	// vcTrack enables the scheduler's second level: per-(port, VC) lane
	// worklists inside each router (see internal/router), so a busy
	// router's phases visit only lanes holding flits instead of scanning
	// all Ports()×V. Off under either dense knob.
	vcTrack bool

	// Dynamic-fault state (nil/zero for static runs): the schedule driving
	// transitions, the mutable view over f, and the algorithm's base
	// routing mode, restored to purged worms when they restart from their
	// source (accumulated rerouting state is meaningless once the fault
	// pattern that caused it has changed).
	sched    fault.Schedule
	view     *fault.View
	baseMode message.Mode

	now       int64
	inFlight  int // worms injected (streaming or in-network) not yet completed
	generated uint64
	dropped   uint64

	genStopped bool
}

// New builds an engine. alg must be bound to the same topology and fault
// set. gen is the traffic source polled once per cycle (any registered
// traffic.Source — Poisson, bursty, replay, ...); nil runs a source-less
// engine driven through Enqueue.
func New(t topology.Network, f *fault.Set, alg routing.Router, gen traffic.Source, col *metrics.Collector, p Params, r *rng.Stream) *Network {
	if p.V != alg.V() {
		panic(fmt.Sprintf("network: params V=%d but algorithm V=%d", p.V, alg.V()))
	}
	if p.BufDepth < 1 {
		panic("network: BufDepth must be >= 1")
	}
	if p.LinkLatency < 1 {
		p.LinkLatency = 1
	}
	if p.CreditDelay < 1 {
		p.CreditDelay = 1
	}
	pool := p.Pool
	if pool == nil {
		pool = message.NewPool(t.N(), p.NoArena)
	}
	n := &Network{
		t: t, f: f, alg: alg, p: p, pool: pool,
		routers: make([]*router.Router, t.Nodes()),
		gen:     gen, col: col, r: r,
		newQ:    make([]fifo[message.Ref], t.Nodes()),
		reQ:     make([]fifo[pendingMsg], t.Nodes()),
		streams: make([][]stream, t.Nodes()),
		rrInj:   make([]int, t.Nodes()),
		active:  make([]bool, t.Nodes()),
	}
	n.vcTrack = !p.DenseScan && !p.DenseVCScan
	// A node never runs more than V injection streams (one per injection
	// VC), so every per-node stream slice is carved from one backing array
	// at its full capacity; likewise the software queues get a small
	// starting capacity. Without this, the first message reaching each of
	// tens of thousands of nodes triggers an append growth long after
	// warm-up — the allocations the zero-alloc Step gate would flag.
	streamBacking := make([]stream, t.Nodes()*p.V)
	for id := 0; id < t.Nodes(); id++ {
		n.routers[id] = router.New(topology.NodeID(id), t.N(), p.V, p.BufDepth)
		if n.vcTrack {
			n.routers[id].EnableLaneTracking()
		}
		n.streams[id] = streamBacking[id*p.V : id*p.V : (id+1)*p.V]
		n.newQ[id].items = make([]message.Ref, 0, 4)
		n.reQ[id].items = make([]pendingMsg, 0, 4)
	}
	n.buildLinkTable()
	if p.DenseScan {
		n.allIDs = make([]topology.NodeID, t.Nodes())
		for id := range n.allIDs {
			n.allIDs[id] = topology.NodeID(id)
		}
		n.work = n.allIDs
	}
	n.rngs = make([]*rng.Stream, t.Nodes())
	if p.GlobalRNG {
		if p.Workers > 1 {
			panic("network: GlobalRNG is one stream consumed in router-iteration order and cannot be drawn concurrently; use Workers <= 1")
		}
		for id := range n.rngs {
			n.rngs[id] = r
		}
	} else {
		for id := range n.rngs {
			n.rngs[id] = r.Split(rng.RouterLabel(id))
		}
	}
	if p.Schedule != nil {
		n.sched = p.Schedule
		n.view = fault.NewView(f)
		n.baseMode = alg.BaseMode()
	}
	n.sw = newWorker(n, 0, true, 0, topology.NodeID(t.Nodes()), alg)
	n.initWorkers()
	return n
}

// buildLinkTable precomputes downstream node, dateline crossing and
// effective latency for every (node, port) so the per-flit hot path never
// dispatches through the topology interface.
func (nw *Network) buildLinkTable() {
	degree := nw.t.Degree()
	nw.uniformLat = true
	nw.links = make([][]link, nw.t.Nodes())
	for id := 0; id < nw.t.Nodes(); id++ {
		row := make([]link, degree)
		for p := 0; p < degree; p++ {
			port := topology.Port(p)
			dim, dir := port.Dim(), port.Dir()
			if !nw.t.HasLink(topology.NodeID(id), dim, dir) {
				row[p] = link{dst: -1}
				continue
			}
			lat := nw.t.LinkLatency(topology.NodeID(id), port)
			if lat == 0 {
				lat = nw.p.LinkLatency
			} else if lat != nw.p.LinkLatency {
				nw.uniformLat = false
			}
			row[p] = link{
				dst:   nw.t.Neighbor(topology.NodeID(id), dim, dir),
				wraps: nw.t.WrapsAround(nw.t.Coord(topology.NodeID(id), dim), dir),
				lat:   lat,
			}
		}
		nw.links[id] = row
	}
}

// linkFor resolves the geometry of the channel leaving node through port:
// from the precomputed table, or through the topology interface when the
// NoLinkCache ablation knob is set.
func (nw *Network) linkFor(node topology.NodeID, port topology.Port) link {
	if !nw.p.NoLinkCache {
		return nw.links[node][port]
	}
	dim, dir := port.Dim(), port.Dir()
	lat := nw.t.LinkLatency(node, port)
	if lat == 0 {
		lat = nw.p.LinkLatency
	}
	return link{
		dst:   nw.t.Neighbor(node, dim, dir),
		wraps: nw.t.WrapsAround(nw.t.Coord(node, dim), dir),
		lat:   lat,
	}
}

// markActive schedules a router for the next cycle's worklist. Safe to
// call redundantly; membership is deduplicated by the active flags. Serial
// contexts only (construction, Enqueue, pollTraffic, serial applyStaged);
// parallel workers mark through their own pend lists (worker.applyArrival).
func (nw *Network) markActive(id topology.NodeID) {
	if nw.p.DenseScan || nw.active[id] {
		return
	}
	nw.active[id] = true
	nw.pending = append(nw.pending, id)
}

// beginCycle merges newly activated routers into the worklist, keeping it
// sorted by node id so the phases visit routers in the same ascending
// order as a dense scan — that ordering is what makes the scheduler
// rng-transparent (bit-exact traces for a fixed seed). With the per-VC
// scheduler it then merges each working router's newly marked lanes the
// same way (sorted (port, VC) order = the dense nested-scan order).
func (nw *Network) beginCycle() {
	if nw.p.DenseScan {
		return
	}
	if len(nw.pending) > 0 {
		nw.work = append(nw.work, nw.pending...)
		nw.pending = nw.pending[:0]
		slices.Sort(nw.work)
	}
	if nw.vcTrack {
		for _, id := range nw.work {
			nw.routers[id].MergeLanes()
		}
	}
}

// endCycle retires drained routers from the worklist. A router stays
// active while anything local can still make progress: buffered flits,
// queued software messages (fresh or re-injection), or injection streams.
// Everything else re-enters via markActive when an event touches it.
func (nw *Network) endCycle() {
	if nw.p.DenseScan {
		return
	}
	keep := nw.work[:0]
	for _, id := range nw.work {
		if nw.routerBusy(id) {
			keep = append(keep, id)
		} else {
			nw.active[id] = false
		}
	}
	nw.work = keep
}

// routerBusy reports whether the router still has locally visible work.
// With the per-VC scheduler the flit check rides on the lane worklist:
// RetireLanes prunes drained lanes and reports how many remain (merged +
// freshly marked), so the retire path touches only active-lane counters,
// never all Ports()×V buffers.
func (nw *Network) routerBusy(id topology.NodeID) bool {
	if nw.vcTrack {
		if nw.routers[id].RetireLanes() > 0 {
			return true
		}
	} else if nw.routers[id].Flits > 0 {
		return true
	}
	return nw.newQ[id].Len() > 0 || nw.reQ[id].Len() > 0 || len(nw.streams[id]) > 0
}

// Now returns the current cycle.
func (nw *Network) Now() int64 { return nw.now }

// InFlight returns the number of injected-but-uncompleted worms.
func (nw *Network) InFlight() int { return nw.inFlight }

// Pool returns the engine's message pool.
func (nw *Network) Pool() *message.Pool { return nw.pool }

// Workers returns the effective stepping-domain count: 1 for the serial
// engine, the (node-clamped) Params.Workers otherwise.
func (nw *Network) Workers() int {
	if nw.par == nil {
		return 1
	}
	return len(nw.par)
}

// Backlog returns the number of messages waiting in source software queues
// (new + re-injection) plus active injection streams.
func (nw *Network) Backlog() int {
	total := 0
	for id := range nw.newQ {
		total += nw.newQ[id].Len() + nw.reQ[id].Len() + len(nw.streams[id])
	}
	return total
}

// Dropped returns messages discarded because no route existed.
func (nw *Network) Dropped() uint64 { return nw.dropped }

// StopGeneration halts the traffic source (used by drain tests and
// fixed-message-count runs).
func (nw *Network) StopGeneration() { nw.genStopped = true }

// Enqueue places a caller-constructed message on a node's fresh-traffic
// queue, bypassing the Poisson generator. Used by tracing tools and tests
// that drive individual messages. The message is registered in the engine's
// pool; its storage stays the caller's (inspectable after delivery).
func (nw *Network) Enqueue(node topology.NodeID, m *message.Message) {
	if nw.f.NodeFaulty(node) {
		panic(fmt.Sprintf("network: enqueue at faulty node %d", node))
	}
	nw.newQ[node].Push(nw.pool.Adopt(m))
	nw.markActive(node)
}

// Idle reports whether the network is completely drained: no buffered
// flits, no flits in flight on links, no queued messages, no active
// streams.
func (nw *Network) Idle() bool {
	if nw.Backlog() > 0 || len(nw.arrivals) > 0 || len(nw.injArrivals) > 0 {
		return false
	}
	for _, w := range nw.par {
		if len(w.arrQ) > 0 {
			return false
		}
	}
	for _, rt := range nw.routers {
		if rt.Flits > 0 {
			return false
		}
	}
	return true
}

// Step advances the simulation by one cycle.
func (nw *Network) Step() {
	if nw.par != nil {
		nw.stepParallel()
		return
	}
	nw.now++
	nw.applyTransitions()
	nw.pollTraffic()
	nw.beginCycle()
	nw.routeAndAllocate()
	nw.switchTraversal()
	nw.inject()
	nw.applyStaged()
	nw.endCycle()
}

// pollTraffic pulls newly generated messages into source queues. Messages
// from a pool-aware source are already registered (Adopt is then a no-op
// returning the existing Ref); heap-allocating sources get registered here.
func (nw *Network) pollTraffic() {
	if nw.genStopped || nw.gen == nil {
		return
	}
	for _, m := range nw.gen.Poll(nw.now) {
		nw.col.Generated(m)
		nw.generated++
		if nw.view != nil && (nw.f.NodeFaulty(m.Src) || nw.f.NodeFaulty(m.Dst)) {
			// An endpoint failed mid-run (sources draw their layout from the
			// static set and cannot know): the offered message is lost,
			// counted against availability. Routing assumes healthy
			// destinations, so a dead-destination message would circle until
			// the heal; dropping it at the boundary keeps behaviour bounded.
			// Unreachable with an empty schedule — sources never pick
			// statically faulty endpoints — so static equivalence holds.
			nw.col.Lost(m)
			nw.pool.Free(nw.pool.Adopt(m))
			continue
		}
		nw.newQ[m.Src].Push(nw.pool.Adopt(m))
		nw.markActive(m.Src)
	}
}

// routeAndAllocate runs routing decisions and output-VC allocation for
// every head flit parked at the front of an input VC.
func (nw *Network) routeAndAllocate() {
	for _, node := range nw.work {
		nw.sw.routeNode(node)
	}
}

// routeNode takes the routing decisions of one router. With the per-VC
// scheduler it visits only the router's active lanes; the dense-VC
// ablation nests over all Ports()×V. Both orders are port-major/VC-minor,
// so rng draws are identical.
//
//simlint:phase compute
func (w *worker) routeNode(node topology.NodeID) {
	rt := w.nw.routers[node]
	if w.nw.vcTrack {
		for _, lane := range rt.Lanes() {
			port, vc := rt.LanePortVC(lane)
			w.allocateLane(node, rt, port, vc)
		}
		return
	}
	if rt.Flits == 0 {
		return
	}
	for port := range rt.In {
		for vc := range rt.In[port] {
			w.allocateLane(node, rt, port, vc)
		}
	}
}

// allocateLane takes the routing decision for input lane (port, vc) of
// node, if its front flit is a head that is ready and unrouted. The
// candidate scratch w.freeVCs is reused across calls; the VC pick draws
// from the router's own stream (see Network.rngs).
//
//simlint:phase compute
func (w *worker) allocateLane(node topology.NodeID, rt *router.Router, port, vc int) {
	nw := w.nw
	ivc := &rt.In[port][vc]
	if ivc.HasRoute {
		return
	}
	front, ok := ivc.Buf.Front()
	if !ok || !front.IsHead() {
		return
	}
	if nw.now < ivc.ReadyAt {
		return
	}
	m := nw.pool.At(front.Ref())
	dec := w.alg.Route(node, m)
	switch dec.Outcome {
	case routing.Deliver:
		m.Pending = message.StopDeliver
		ivc.HasRoute, ivc.ToEject = true, true
	case routing.ViaArrived:
		m.Pending = message.StopVia
		ivc.HasRoute, ivc.ToEject = true, true
	case routing.AbsorbFault:
		w.emitTrace(trace.AbsorbStart, m.ID, node)
		if w.alg.Plan(node, m, dec.BlockedDim, dec.BlockedDir) {
			m.Pending = message.StopFault
		} else {
			m.Pending = message.StopDrop
		}
		ivc.HasRoute, ivc.ToEject = true, true
	case routing.Progress:
		free := w.freeVCs[:0]
		for _, c := range dec.Preferred {
			if !rt.Out[c.Port][c.VC].Busy {
				free = append(free, c)
			}
		}
		if len(free) == 0 {
			for _, c := range dec.Fallback {
				if !rt.Out[c.Port][c.VC].Busy {
					free = append(free, c)
				}
			}
		}
		w.freeVCs = free
		if len(free) == 0 {
			return // all candidate VCs owned; retry next cycle
		}
		pick := free[nw.rngs[node].Intn(len(free))]
		rt.Out[pick.Port][pick.VC].Busy = true
		ivc.HasRoute, ivc.ToEject = true, false
		ivc.OutPort, ivc.OutVC = pick.Port, pick.VC
	}
	// Every case above that falls through has allocated a route (Progress
	// returns early otherwise); record the owning worm for the
	// fault-transition purge.
	ivc.Owner = front.Ref()
}

// switchTraversal performs switch allocation and link/ejection traversal
// for every working router.
func (nw *Network) switchTraversal() {
	for _, node := range nw.work {
		nw.sw.switchNode(node)
	}
}

// switchNode performs one router's switch allocation and link/ejection
// traversal. The paper's router is a full (2n+1)V-way crossbar that "can
// simultaneously connect multiple input to multiple output virtual
// channels": any buffered flit may move as long as (a) at most one flit
// crosses each output physical channel per cycle (VCs time-multiplex the
// link bandwidth), and (b) ejection drains each absorbing/delivering VC at
// one flit per cycle (assumption (d): messages transfer to the PE as soon
// as they arrive).
//
//simlint:phase compute
func (w *worker) switchNode(node topology.NodeID) {
	nw := w.nw
	rt := nw.routers[node]
	if nw.vcTrack {
		if len(rt.Lanes()) == 0 {
			return
		}
		for i := range w.buckets {
			w.buckets[i] = w.buckets[i][:0]
		}
		for _, lane := range rt.Lanes() {
			port, vc := rt.LanePortVC(lane)
			w.gatherLane(node, rt, port, vc)
		}
	} else {
		if rt.Flits == 0 {
			return
		}
		for i := range w.buckets {
			w.buckets[i] = w.buckets[i][:0]
		}
		for port := range rt.In {
			for vc := range rt.In[port] {
				w.gatherLane(node, rt, port, vc)
			}
		}
	}
	// Network output channels: one flit per physical channel per cycle,
	// round-robin over the competing input VCs.
	degree := nw.t.Degree()
	for out := 0; out < degree; out++ {
		cands := w.buckets[out]
		if len(cands) == 0 {
			continue
		}
		n := len(cands)
		start := rt.RROut[out] % n
		for i := 0; i < n; i++ {
			c := cands[(start+i)%n]
			ivc := &rt.In[c.port][c.vc]
			ovc := &rt.Out[ivc.OutPort][ivc.OutVC]
			if ovc.Credits == 0 {
				continue
			}
			w.moveNetwork(node, rt, c.port, c.vc)
			rt.RROut[out] = (start + i + 1) % n
			break
		}
	}
}

// gatherLane inspects input lane (port, vc): routed eject lanes drain
// immediately (per-VC ejection, no arbitration), routed network lanes file
// a crossbar request into their output port's bucket.
//
//simlint:phase compute
func (w *worker) gatherLane(node topology.NodeID, rt *router.Router, port, vc int) {
	ivc := &rt.In[port][vc]
	if !ivc.HasRoute || ivc.Buf.Len() == 0 {
		return
	}
	if ivc.ToEject {
		w.moveEject(node, rt, port, vc)
	} else {
		w.buckets[ivc.OutPort] = append(w.buckets[ivc.OutPort], xbarReq{port, vc})
	}
}

// moveNetwork sends the front flit of input (port, vc) through its
// allocated output VC to the neighbouring router.
//
//simlint:phase compute
func (w *worker) moveNetwork(node topology.NodeID, rt *router.Router, port, vc int) {
	nw := w.nw
	ivc := &rt.In[port][vc]
	f := rt.Pop(port, vc)
	ovc := &rt.Out[ivc.OutPort][ivc.OutVC]
	ovc.Credits--
	lk := nw.linkFor(node, ivc.OutPort)
	if f.IsHead() {
		m := nw.pool.At(f.Ref())
		if lk.wraps {
			m.Crossed[ivc.OutPort.Dim()] = true
		}
		w.emitTrace(trace.Hop, m.ID, lk.dst)
	}
	w.stageArrivalW(arrivalEvent{
		dueAt: nw.now + lk.lat - 1,
		node:  lk.dst,
		port:  int(ivc.OutPort.Opposite()),
		vc:    ivc.OutVC,
		flit:  f,
	})
	w.returnCredit(node, port, vc)
	if f.IsTail() {
		ovc.Busy = false
		ivc.HasRoute = false
		nw.refreshReady(ivc)
	}
}

// refreshReady re-arms the routing-decision timer when a new worm's head
// becomes the buffer front after the previous tail left.
func (nw *Network) refreshReady(ivc *router.InVC) {
	if nf, ok := ivc.Buf.Front(); ok && nf.IsHead() {
		ivc.ReadyAt = nw.now + 1 + nw.p.Td
	}
}

// moveEject drains the front flit of input (port, vc) into the local PE /
// messaging layer and finalises the worm when its tail arrives. The
// local state transitions (buffer pop, requeue, header rewrite) happen
// here; the shared-state finalisation — tracing, metrics, returning the
// message to the pool, the in-flight counter — goes through the worker's
// effect channel (emit), which applies it immediately on the serial path
// and stages it for the ordered commit on the parallel one.
//
//simlint:phase compute
func (w *worker) moveEject(node topology.NodeID, rt *router.Router, port, vc int) {
	nw := w.nw
	ivc := &rt.In[port][vc]
	f := rt.Pop(port, vc)
	w.returnCredit(node, port, vc)
	if !f.IsTail() {
		return
	}
	ivc.HasRoute = false
	nw.refreshReady(ivc)
	ref := f.Ref()
	m := nw.pool.At(ref)
	reason := m.Pending
	m.Pending = message.StopNone
	switch reason {
	case message.StopDeliver:
		w.emit(fxRec{kind: fxDeliver, ref: ref, msg: m.ID, node: node})
	case message.StopVia:
		w.emit(fxRec{kind: fxStopVia, ref: ref, msg: m.ID, node: node})
		m.PopViasAt(node)
		m.ResetForReinjection()
		nw.requeue(node, ref)
	case message.StopFault:
		w.emit(fxRec{kind: fxStopFault, ref: ref, msg: m.ID, node: node})
		m.ResetForReinjection()
		nw.requeue(node, ref)
	case message.StopDrop:
		w.emit(fxRec{kind: fxDropEject, ref: ref, msg: m.ID, node: node})
	default:
		panic(fmt.Sprintf("network: worm ejected with no stop reason: %v", m))
	}
}

// requeue places an absorbed message on the node's priority re-injection
// queue, eligible after the software overhead Δ.
func (nw *Network) requeue(node topology.NodeID, ref message.Ref) {
	nw.reQ[node].Push(pendingMsg{ref: ref, eligibleAt: nw.now + nw.p.Delta})
}

// returnCredit stages a credit for the upstream output VC feeding input
// (port, vc) of node. Injection-port buffers are fed by the local source,
// which checks space directly, so they carry no credits.
//
//simlint:phase compute
func (w *worker) returnCredit(node topology.NodeID, port, vc int) {
	nw := w.nw
	if port >= nw.t.Degree() {
		return
	}
	tp := topology.Port(port)
	up := nw.linkFor(node, tp).dst
	ev := creditEvent{
		dueAt: nw.now + nw.p.CreditDelay - 1,
		node:  up,
		port:  tp.Opposite(),
		vc:    vc,
	}
	if w.direct {
		nw.credits = append(nw.credits, ev)
		return
	}
	w.outCred[nw.dom[up]] = append(w.outCred[nw.dom[up]], ev)
}

// inject moves at most one flit per node from the software layer into the
// injection input port, starting new streams as injection VCs free up.
// Re-injected (absorbed) messages always start before new messages.
func (nw *Network) inject() {
	for _, node := range nw.work {
		nw.sw.injectNode(node)
	}
}

// injectNode runs one node's software-layer injection for this cycle.
//
//simlint:phase compute
func (w *worker) injectNode(node topology.NodeID) {
	nw := w.nw
	w.startStreams(node)
	ss := nw.streams[node]
	if len(ss) == 0 {
		return
	}
	rt := nw.routers[node]
	injPort := rt.InjectionPort()
	// Round-robin across active streams for the single injection
	// channel's flit slot.
	n := len(ss)
	start := nw.rrInj[node] % n
	for i := 0; i < n; i++ {
		s := &ss[(start+i)%n]
		ivc := &rt.In[injPort][s.vc]
		if ivc.Buf.Space() == 0 {
			continue
		}
		// Injection is a local wire: always one cycle.
		ev := arrivalEvent{
			dueAt: nw.now, node: node, port: injPort, vc: s.vc,
			flit: message.MakeFlit(s.ref, s.seq, s.len),
		}
		if w.direct {
			nw.injArrivals = append(nw.injArrivals, ev)
		} else {
			w.injArr = append(w.injArr, ev)
		}
		// Reserve the slot so a same-cycle arrival cannot overflow.
		s.seq++
		nw.rrInj[node] = (start + i + 1) % n
		if s.seq == s.len {
			// Stream complete; remove, preserving order.
			idx := (start + i) % n
			nw.streams[node] = append(ss[:idx], ss[idx+1:]...)
		}
		break
	}
}

// startStreams claims free injection VCs for queued messages, priority
// queue first. A message's header is validated against the fault set at
// start time: a blocked first hop is re-planned in software before the worm
// ever enters the network.
//
//simlint:phase compute
func (w *worker) startStreams(node topology.NodeID) {
	nw := w.nw
	rt := nw.routers[node]
	injPort := rt.InjectionPort()
	for {
		ref, ok := nw.peekQueue(node)
		if !ok {
			return
		}
		// Find a free injection VC: empty buffer and no stream using it.
		vc := -1
		for v := 0; v < nw.p.V; v++ {
			ivc := &rt.In[injPort][v]
			if ivc.HasRoute || ivc.Buf.Len() > 0 {
				continue
			}
			inUse := false
			for _, s := range nw.streams[node] {
				if s.vc == v {
					inUse = true
					break
				}
			}
			if !inUse {
				vc = v
				break
			}
		}
		if vc < 0 {
			return
		}
		m := nw.pool.At(ref)
		if !w.prepareForInjection(node, m) {
			// Undeliverable: drop it and keep scanning the queue.
			nw.popQueue(node)
			w.emit(fxRec{kind: fxDropInject, ref: ref, msg: m.ID, node: node})
			continue
		}
		nw.popQueue(node)
		nw.streams[node] = append(nw.streams[node], stream{ref: ref, len: m.Len, vc: vc})
		w.emit(fxRec{kind: fxInject, ref: ref, msg: m.ID, node: node})
	}
}

// trace forwards an event to the configured tracer, if any.
func (nw *Network) trace(kind trace.Kind, msg uint64, node topology.NodeID) {
	if nw.p.Tracer != nil {
		nw.p.Tracer.Trace(trace.Event{Cycle: nw.now, Msg: msg, Kind: kind, Node: node})
	}
}

// peekQueue returns the next eligible message's Ref at node without
// removing it. Re-injections normally have absolute priority; with
// NoReinjectPriority set, fresh traffic is served first (the starvation
// ablation).
func (nw *Network) peekQueue(node topology.NodeID) (message.Ref, bool) {
	reReady := nw.reQ[node].Len() > 0 && nw.reQ[node].Front().eligibleAt <= nw.now
	if nw.p.NoReinjectPriority {
		if nw.newQ[node].Len() > 0 {
			return nw.newQ[node].Front(), true
		}
		if reReady {
			return nw.reQ[node].Front().ref, true
		}
		return message.NilRef, false
	}
	if reReady {
		return nw.reQ[node].Front().ref, true
	}
	if nw.newQ[node].Len() > 0 {
		return nw.newQ[node].Front(), true
	}
	return message.NilRef, false
}

// popQueue removes the message peekQueue returned.
func (nw *Network) popQueue(node topology.NodeID) {
	reReady := nw.reQ[node].Len() > 0 && nw.reQ[node].Front().eligibleAt <= nw.now
	if nw.p.NoReinjectPriority {
		if nw.newQ[node].Len() > 0 {
			nw.newQ[node].Pop()
			return
		}
		nw.reQ[node].Pop()
		return
	}
	if reReady {
		nw.reQ[node].Pop()
		return
	}
	nw.newQ[node].Pop()
}

// prepareForInjection runs the injection-time fault check: if the message's
// required first hop is faulty, the messaging layer replans before the worm
// enters the network. Reports false when the message is undeliverable.
//
//simlint:phase compute
func (w *worker) prepareForInjection(node topology.NodeID, m *message.Message) bool {
	for guard := 0; guard < 4; guard++ {
		dec := w.alg.Route(node, m)
		switch dec.Outcome {
		case routing.Progress, routing.Deliver:
			return true
		case routing.ViaArrived:
			m.PopViasAt(node)
		case routing.AbsorbFault:
			if !w.alg.Plan(node, m, dec.BlockedDim, dec.BlockedDir) {
				return false
			}
		}
	}
	return true
}

// stageArrival enqueues an in-flight link transfer on the serial engine's
// queue. With uniform link latency the queue is naturally due-ordered
// FIFO; a latmap overlay mixes latencies, so the event is then inserted at
// its due position (after every event with the same due cycle, preserving
// deterministic same-cycle application order).
func (nw *Network) stageArrival(ev arrivalEvent) {
	nw.arrivals = queueArrival(nw.arrivals, ev, nw.uniformLat)
}

// queueArrival inserts one staged transfer into a due-ordered arrival
// queue, keeping same-due events in staging order. The serial engine and
// every parallel domain share this discipline, which is what makes the
// per-domain queues apply each receiver's events in the serial order.
func queueArrival(q []arrivalEvent, ev arrivalEvent, uniformLat bool) []arrivalEvent {
	n := len(q)
	if uniformLat || n == 0 || q[n-1].dueAt <= ev.dueAt {
		return append(q, ev)
	}
	i := sort.Search(n, func(i int) bool { return q[i].dueAt > ev.dueAt })
	q = append(q, arrivalEvent{})
	copy(q[i+1:], q[i:])
	q[i] = ev
	return q
}

// applyStaged commits the flit arrivals and credit returns that are due at
// the end of this cycle. With the default unit link latency and credit
// delay every staged event is due immediately; longer latencies leave a
// sorted (FIFO) tail in flight.
func (nw *Network) applyStaged() {
	for _, a := range nw.injArrivals {
		nw.sw.applyArrival(a)
	}
	nw.injArrivals = nw.injArrivals[:0]
	i := 0
	for ; i < len(nw.arrivals) && nw.arrivals[i].dueAt <= nw.now; i++ {
		nw.sw.applyArrival(nw.arrivals[i])
	}
	nw.arrivals = sliceTail(nw.arrivals, i)
	j := 0
	for ; j < len(nw.credits) && nw.credits[j].dueAt <= nw.now; j++ {
		c := nw.credits[j]
		nw.routers[c.node].Out[c.port][c.vc].Credits++
	}
	nw.credits = sliceTail(nw.credits, j)
}

// applyArrival commits one staged flit into its destination buffer. A
// parallel worker only ever applies arrivals addressed to its own domain,
// so the activation mark goes on its private pend list; the serial worker
// marks through the engine's pending list as always.
func (w *worker) applyArrival(a arrivalEvent) {
	nw := w.nw
	rt := nw.routers[a.node]
	rt.Push(a.port, a.vc, a.flit)
	if !nw.p.DenseScan && !nw.active[a.node] {
		nw.active[a.node] = true
		if w.direct {
			nw.pending = append(nw.pending, a.node)
		} else {
			w.pend = append(w.pend, a.node)
		}
	}
	if a.flit.IsHead() {
		ivc := &rt.In[a.port][a.vc]
		if ivc.Buf.Len() == 1 { // became front: routing decision earliest next cycle
			ivc.ReadyAt = nw.now + 1 + nw.p.Td
		}
	}
}

// sliceTail drops the first n elements, compacting storage when the queue
// empties so long runs do not leak backing arrays.
func sliceTail[T any](q []T, n int) []T {
	if n == 0 {
		return q
	}
	if n == len(q) {
		return q[:0]
	}
	m := copy(q, q[n:])
	return q[:m]
}
