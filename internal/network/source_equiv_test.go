package network

import (
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// TestRegistrySourceMatchesLegacyGenerator is the traffic refactor's
// bit-identity proof, the workload-layer analogue of
// TestActiveSetMatchesDenseScan: an engine driven by the registry-built
// "poisson"+"uniform" workload (the path core.Run takes since the traffic
// registry landed) must produce the exact same event trace — every
// injection, hop, stop and delivery at the same cycle — as an engine
// driven by traffic.NewGenerator, the pre-registry constructor the seed
// code called directly. Combined with TestDebugPathologicalTrace's pinned
// golden history for the constructor path, this guards the acceptance
// criterion that default-config traces are bit-identical across the
// refactor (rng split order preserved).
func TestRegistrySourceMatchesLegacyGenerator(t *testing.T) {
	for _, tc := range []struct {
		name string
		alg  string
		nf   int
	}{
		{"det-faultfree", "det", 0},
		{"det-faults", "det", 6},
		{"adaptive-faults", "adaptive", 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func(registry bool) ([]trace.Event, metrics.Results) {
				tor := topology.New(8, 2)
				fs := fault.NewSet(tor)
				if tc.nf > 0 {
					var err error
					fs, err = fault.Random(tor, tc.nf, rng.New(41), fault.DefaultRandomOptions())
					if err != nil {
						t.Fatal(err)
					}
				}
				alg, err := routing.New(tc.alg, tor, fs, 4)
				if err != nil {
					t.Fatal(err)
				}
				// Exactly core.Run's stream discipline: Split(1) feeds the
				// workload, Split(2) feeds the engine.
				r := rng.New(123)
				genStream := r.Split(1)
				var gen traffic.Source
				if registry {
					pattern, err := traffic.NewPattern("uniform", tor, fs)
					if err != nil {
						t.Fatal(err)
					}
					gen, err = traffic.NewSource("poisson", traffic.Env{
						T: tor, F: fs, Sources: fs.HealthyNodes(),
						Lambda: 0.004, MsgLen: 16, Mode: alg.BaseMode(),
						Pattern: pattern, R: genStream,
					})
					if err != nil {
						t.Fatal(err)
					}
				} else {
					gen = traffic.NewGenerator(tor, fs.HealthyNodes(), 0.004, 16,
						alg.BaseMode(), traffic.NewUniform(fs), genStream)
				}
				rec := trace.NewRecorder()
				col := metrics.NewCollector(0)
				p := DefaultParams(4)
				p.Tracer = rec
				nw := New(tor, fs, alg, gen, col, p, r.Split(2))
				for nw.Now() < 4000 {
					nw.Step()
				}
				nw.StopGeneration()
				for !nw.Idle() && nw.Now() < 400_000 {
					nw.Step()
				}
				if !nw.Idle() {
					t.Fatal("network did not drain")
				}
				return rec.All(), col.Finalize(nw.Now(), len(fs.HealthyNodes()), false)
			}
			evReg, resReg := run(true)
			evLegacy, resLegacy := run(false)
			if len(evReg) == 0 {
				t.Fatal("no events traced")
			}
			if len(evReg) != len(evLegacy) {
				t.Fatalf("event counts differ: registry %d, legacy %d", len(evReg), len(evLegacy))
			}
			for i := range evReg {
				if evReg[i] != evLegacy[i] {
					t.Fatalf("event %d differs:\nregistry: %+v\nlegacy:   %+v", i, evReg[i], evLegacy[i])
				}
			}
			if !reflect.DeepEqual(resReg, resLegacy) {
				t.Fatalf("results differ:\nregistry: %+v\nlegacy:   %+v", resReg, resLegacy)
			}
		})
	}
}

// TestCaptureReplayReproducesWorkload closes the capture → replay loop at
// the engine level: capture the workload of a Poisson run, re-drive it
// through a Replay source, and require the replayed engine to generate the
// same messages at the same cycles and deliver the same count.
func TestCaptureReplayReproducesWorkload(t *testing.T) {
	tor := topology.New(8, 2)
	fs := fault.NewSet(tor)
	build := func(gen traffic.Source, seed uint64) (*Network, *metrics.Collector) {
		alg, err := routing.New("det", tor, fs, 4)
		if err != nil {
			t.Fatal(err)
		}
		col := metrics.NewCollector(0)
		return New(tor, fs, alg, gen, col, DefaultParams(4), rng.New(seed)), col
	}
	var w trace.Workload
	r := rng.New(9)
	gen := traffic.NewGenerator(tor, fs.HealthyNodes(), 0.004, 16, 0, traffic.NewUniform(fs), r.Split(1))
	nw, col := build(traffic.NewCapture(gen, &w), 9)
	for nw.Now() < 3000 {
		nw.Step()
	}
	nw.StopGeneration()
	for !nw.Idle() && nw.Now() < 100_000 {
		nw.Step()
	}
	if w.Len() == 0 {
		t.Fatal("nothing captured")
	}
	delivered := col.DeliveredCount()

	rp, err := traffic.NewReplay(tor, fs, &w, 0)
	if err != nil {
		t.Fatal(err)
	}
	nw2, col2 := build(rp, 1234) // different engine seed: workload must not depend on it
	for nw2.Now() < 3000 {
		nw2.Step()
	}
	nw2.StopGeneration()
	for !nw2.Idle() && nw2.Now() < 100_000 {
		nw2.Step()
	}
	if rp.Remaining() != 0 {
		t.Fatalf("%d records not replayed", rp.Remaining())
	}
	if got := col2.DeliveredCount(); got != delivered {
		t.Fatalf("replay delivered %d messages, capture run delivered %d", got, delivered)
	}
}
