package network

import (
	"fmt"
	"testing"

	"repro/internal/fault"
	"repro/internal/message"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// runScheduled is runTraced's dynamic-fault sibling: it drives one engine
// with a trace schedule applying the given transitions mid-run. Unlike
// workersTweak it wires the parallel AlgFactory over the engine's own
// fault set — the sharing core.NewEngine establishes — because clones
// must observe transitions, not a private static copy.
func runScheduled(t *testing.T, net topology.Network, algName string, nf, workers int, evs []fault.Transition) ([]trace.Event, metrics.Results) {
	t.Helper()
	fs := fault.NewSet(net)
	if nf > 0 {
		var err error
		fs, err = fault.Random(net, nf, rng.New(41), fault.DefaultRandomOptions())
		if err != nil {
			t.Fatal(err)
		}
	}
	alg, err := routing.New(algName, net, fs, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(123)
	pattern, err := traffic.NewPattern("uniform", net, fs)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	col := metrics.NewCollector(0)
	p := DefaultParams(4)
	p.Tracer = rec
	p.Workers = workers
	if workers > 1 {
		p.AlgFactory = func() (routing.Router, error) { return routing.New(algName, net, fs, 4) }
	}
	p.Schedule = fault.NewTraceSchedule(evs)
	pool := message.NewPool(net.N(), p.NoArena)
	p.Pool = pool
	gen, err := traffic.NewSource("poisson", traffic.Env{
		T: net, F: fs, Sources: fs.HealthyNodes(),
		Lambda: 0.004, MsgLen: 16, Mode: alg.BaseMode(),
		Pattern: pattern, R: r.Split(1), Pool: pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw := New(net, fs, alg, gen, col, p, r.Split(2))
	for nw.Now() < 4000 {
		nw.Step()
	}
	nw.StopGeneration()
	for !nw.Idle() && nw.Now() < 400_000 {
		nw.Step()
	}
	if !nw.Idle() {
		t.Fatal("network did not drain")
	}
	if err := rec.Verify(net); err != nil {
		t.Fatalf("dynamic trace fails verification: %v", err)
	}
	return rec.All(), col.Finalize(nw.Now(), len(fs.HealthyNodes()), false)
}

// healthyNode returns a node that is healthy under the static placement
// runScheduled builds for nf faults, scanning upward from want so tests
// pick transition victims deterministically.
func healthyNode(t *testing.T, net topology.Network, nf int, want topology.NodeID) topology.NodeID {
	t.Helper()
	fs := fault.NewSet(net)
	if nf > 0 {
		var err error
		fs, err = fault.Random(net, nf, rng.New(41), fault.DefaultRandomOptions())
		if err != nil {
			t.Fatal(err)
		}
	}
	for n := want; n < topology.NodeID(net.Nodes()); n++ {
		if !fs.NodeFaulty(n) {
			return n
		}
	}
	t.Fatal("no healthy node found")
	return -1
}

// churnEvents builds the canonical active schedule the dynamic tests
// share: a link fails and heals, then a node fails and heals, all inside
// the generation window so purged worms, re-injections and the healed
// aftermath are all exercised before the drain.
func churnEvents(t *testing.T, net topology.Network, nf int) []fault.Transition {
	t.Helper()
	victim := healthyNode(t, net, nf, 27)
	link := topology.ChannelID{Src: healthyNode(t, net, nf, 9), Port: 0}
	return []fault.Transition{
		{Cycle: 1000, Fail: true, IsLink: true, Link: link},
		{Cycle: 1600, Fail: false, IsLink: true, Link: link},
		{Cycle: 2200, Fail: true, Node: victim},
		{Cycle: 2800, Fail: false, Node: victim},
	}
}

// TestEmptyScheduleMatchesStatic proves the schedule layer is free when
// inert: an engine carrying an empty trace schedule (view wired, dynamic
// gates live) must produce the exact event trace and results of the
// plain static engine, across topology families and routing modes.
func TestEmptyScheduleMatchesStatic(t *testing.T) {
	torus := func() topology.Network { return topology.New(8, 2) }
	mesh := func() topology.Network { return topology.NewMesh(8, 2) }
	for _, tc := range []struct {
		name string
		net  func() topology.Network
		alg  string
		nf   int
	}{
		{"torus-det", torus, "det", 6},
		{"torus-adaptive", torus, "adaptive", 6},
		{"mesh-det", mesh, "det", 4},
		{"mesh-adaptive", mesh, "adaptive", 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			evStatic, resStatic := runTraced(t, tc.net(), tc.alg, tc.nf, nil)
			evSched, resSched := runScheduled(t, tc.net(), tc.alg, tc.nf, 1, nil)
			assertSameRun(t, evStatic, evSched, resStatic, resSched, "static vs empty schedule")
		})
	}
}

// TestScheduleParallelMatchesSerial extends the commit-order determinism
// proof to dynamic runs: with an active fail/heal schedule — purges,
// re-injections, credit restores and planner refreshes mid-run — every
// worker count must reproduce the serial engine's trace bit for bit.
func TestScheduleParallelMatchesSerial(t *testing.T) {
	const nf = 3
	net := topology.New(8, 2)
	evs := churnEvents(t, net, nf)
	evBase, resBase := runScheduled(t, net, "adaptive", nf, 1, evs)
	if resBase.Transitions != uint64(len(evs)) {
		t.Fatalf("transitions = %d, want %d (schedule did not run)", resBase.Transitions, len(evs))
	}
	for _, w := range []int{2, 4, 8} {
		ev, res := runScheduled(t, topology.New(8, 2), "adaptive", nf, w, evs)
		assertSameRun(t, evBase, ev, resBase, res, fmt.Sprintf("workers=%d", w))
	}
}

// TestChaosTraceGolden pins the canonical dynamic run — a faulted torus
// with one link and one node failing and healing mid-run — against a
// golden trace hash, the dynamic sibling of TestPerRouterRNGGolden. Any
// unintended change to transition application order, purge sweep order,
// or the purge trace grammar moves this hash.
func TestChaosTraceGolden(t *testing.T) {
	const golden uint64 = 0x80daf580d670e4cf
	const nf = 3
	net := topology.New(8, 2)
	ev, res := runScheduled(t, net, "adaptive", nf, 1, churnEvents(t, net, nf))
	if res.Transitions != 4 {
		t.Fatalf("transitions = %d, want 4", res.Transitions)
	}
	if h := traceHash(ev); h != golden {
		t.Fatalf("chaos trace hash = %#x, want %#x (the dynamic-fault event sequence changed; "+
			"if intentional, update the golden)", h, golden)
	}
}
