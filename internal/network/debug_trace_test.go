package network

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/message"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// TestDebugPathologicalTrace is a diagnostic: it reproduces the bad
// (seed=1000, nf=3, M=64) configuration and prints the worst message's
// event history. Run with -run DebugPathological -v.
func TestDebugPathologicalTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	tor := topology.New(8, 2)
	fs, err := fault.Random(tor, 3, rng.New(1000).Split(0xfa017), fault.DefaultRandomOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("faults: %v", func() []string {
		var out []string
		for _, f := range fs.FaultyNodes() {
			out = append(out, tor.FormatNode(f))
		}
		return out
	}())
	alg, err := routing.NewDeterministic(tor, fs, 4)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	r := rng.New(1000)
	gen := traffic.NewGenerator(tor, fs.HealthyNodes(), 0.002, 64, message.Deterministic,
		traffic.NewUniform(fs), r.Split(1))
	col := metrics.NewCollector(0)
	p := DefaultParams(4)
	p.Tracer = rec
	nw := New(tor, fs, alg, gen, col, p, r.Split(2))
	for col.DeliveredCount() < 2000 && nw.Now() < 3_000_000 {
		nw.Step()
	}
	// Find the message with the most stops.
	worstID, worstStops := uint64(0), 0
	for id := uint64(0); id < 3000; id++ {
		evs := rec.Events(id)
		stops := 0
		for _, ev := range evs {
			if ev.Kind == trace.ViaStop || ev.Kind == trace.FaultStop {
				stops++
			}
		}
		if stops > worstStops {
			worstStops, worstID = stops, id
		}
	}
	t.Logf("worst message %d with %d stops", worstID, worstStops)
	evs := rec.Events(worstID)
	if len(evs) > 300 {
		evs = evs[:300]
	}
	for _, ev := range evs {
		t.Logf("@%-8d %-10s %s", ev.Cycle, ev.Kind, tor.FormatNode(ev.Node))
	}
	// Regression guard for the T2 corner-via fix: with three isolated
	// faults no message should need double-digit software stops.
	if worstStops > 8 {
		t.Errorf("worst message needed %d stops; T2 ping-pong regression", worstStops)
	}
}
