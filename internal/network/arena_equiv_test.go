package network

import (
	"testing"

	"repro/internal/topology"
)

// TestArenaMatchesHeap is the message arena's bit-identity proof, the
// allocation-layer analogue of TestLinkCacheMatchesDispatch: an engine
// recycling messages through the index-addressed pool (Refs end-to-end,
// storage reused LIFO on delivery) must produce the exact same event trace
// — every injection, hop, absorption, re-injection and delivery at the
// same cycle — and the same finalised results as one allocating every
// message on the garbage-collected heap (Params.NoArena), for the same
// seed. The grid spans both topology families, fault-free and faulted
// runs (absorption frees and re-binds slots mid-flight), both routing
// disciplines, and a non-uniform latency overlay; recycling bugs — stale
// Refs, header state leaking across a slot's successive occupants,
// allocation order influencing rng draws — would desynchronise the traces
// immediately.
func TestArenaMatchesHeap(t *testing.T) {
	for _, tc := range []struct {
		name string
		net  func(t *testing.T) topology.Network
		alg  string
		nf   int
	}{
		{"torus-det-faultfree", func(*testing.T) topology.Network { return topology.New(8, 2) }, "det", 0},
		{"torus-det-faults", func(*testing.T) topology.Network { return topology.New(8, 2) }, "det", 6},
		{"torus-adaptive-faults", func(*testing.T) topology.Network { return topology.New(8, 2) }, "adaptive", 6},
		{"mesh-det-faultfree", func(*testing.T) topology.Network { return topology.NewMesh(8, 2) }, "det", 0},
		{"mesh-det-faults", func(*testing.T) topology.Network { return topology.NewMesh(8, 2) }, "det", 4},
		{"latmap-torus", latmapTorus, "det", 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			evArena, resArena := runTraced(t, tc.net(t), tc.alg, tc.nf, nil)
			evHeap, resHeap := runTraced(t, tc.net(t), tc.alg, tc.nf,
				func(p *Params) { p.NoArena = true })
			assertSameRun(t, evArena, evHeap, resArena, resHeap, "arena vs heap")
		})
	}
}
