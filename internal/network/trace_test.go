package network

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/message"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// faultGuard wraps a Recorder and fails the test the moment any worm hops
// into a faulty node — the strongest safety property of the algorithm,
// checked here at the engine level (the routing-layer walker tests check it
// at the algorithm level).
type faultGuard struct {
	*trace.Recorder
	tb testing.TB
	fs *fault.Set
}

func (g *faultGuard) Trace(ev trace.Event) {
	if ev.Kind == trace.Hop && g.fs.NodeFaulty(ev.Node) {
		g.tb.Errorf("worm %d hopped into faulty node %d at cycle %d", ev.Msg, ev.Node, ev.Cycle)
	}
	g.Recorder.Trace(ev)
}

func TestEngineTraceInvariants(t *testing.T) {
	for _, tc := range []struct {
		name     string
		adaptive bool
		nf       int
	}{
		{"det-faultfree", false, 0},
		{"det-faults", false, 6},
		{"adp-faults", true, 6},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tor := topology.New(8, 2)
			var fs *fault.Set
			var err error
			if tc.nf > 0 {
				fs, err = fault.Random(tor, tc.nf, rng.New(31), fault.DefaultRandomOptions())
				if err != nil {
					t.Fatal(err)
				}
			} else {
				fs = fault.NewSet(tor)
			}
			var alg *routing.Algorithm
			mode := message.Deterministic
			if tc.adaptive {
				alg, err = routing.NewAdaptive(tor, fs, 4)
				mode = message.Adaptive
			} else {
				alg, err = routing.NewDeterministic(tor, fs, 4)
			}
			if err != nil {
				t.Fatal(err)
			}
			guard := &faultGuard{Recorder: trace.NewRecorder(), tb: t, fs: fs}
			r := rng.New(5)
			gen := traffic.NewGenerator(tor, fs.HealthyNodes(), 0.004, 16, mode,
				traffic.NewUniform(fs), r.Split(1))
			col := metrics.NewCollector(0)
			p := DefaultParams(4)
			p.Tracer = guard
			nw := New(tor, fs, alg, gen, col, p, r.Split(2))
			for nw.Now() < 3000 {
				nw.Step()
			}
			nw.StopGeneration()
			for !nw.Idle() && nw.Now() < 300_000 {
				nw.Step()
			}
			if !nw.Idle() {
				t.Fatal("network did not drain")
			}
			if guard.Messages() == 0 {
				t.Fatal("no messages traced")
			}
			// Every message's history must be structurally valid:
			// inject -> hops -> (stops/reinjects) -> deliver.
			if err := guard.Verify(tor); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTraceLatencyDecomposition cross-checks the collector's latency against
// the trace: delivery cycle minus creation must equal the recorded latency.
func TestTraceLatencyDecomposition(t *testing.T) {
	tor := topology.New(4, 2)
	fs := fault.NewSet(tor)
	alg, err := routing.NewDeterministic(tor, fs, 2)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	r := rng.New(77)
	gen := traffic.NewGenerator(tor, fs.HealthyNodes(), 0.01, 8, message.Deterministic,
		traffic.NewUniform(fs), r.Split(1))
	col := metrics.NewCollector(0)
	p := DefaultParams(2)
	p.Tracer = rec
	nw := New(tor, fs, alg, gen, col, p, r.Split(2))
	for nw.Now() < 2000 {
		nw.Step()
	}
	nw.StopGeneration()
	for !nw.Idle() && nw.Now() < 100_000 {
		nw.Step()
	}
	res := col.Finalize(nw.Now(), 16, false)
	if res.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	// Mean latency must be bounded below by message length (tail must
	// stream) and the last event of each message must be Deliver.
	if res.MeanLatency < 8 {
		t.Fatalf("latency %v below message length", res.MeanLatency)
	}
	if err := rec.Verify(tor); err != nil {
		t.Fatal(err)
	}
}
