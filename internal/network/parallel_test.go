package network

import (
	"fmt"
	"testing"

	"repro/internal/fault"
	"repro/internal/message"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// workersTweak returns a Params tweak selecting the given engine worker
// count, wiring the AlgFactory parallel workers need. The factory rebuilds
// the run's fault set with runTraced's stream (rng.New(41)), so clone
// instances are configured identically to the engine's algorithm.
func workersTweak(t *testing.T, net topology.Network, algName string, nf, workers int) func(*Params) {
	t.Helper()
	return func(p *Params) {
		p.Workers = workers
		if workers <= 1 {
			return
		}
		fs := fault.NewSet(net)
		if nf > 0 {
			var err error
			fs, err = fault.Random(net, nf, rng.New(41), fault.DefaultRandomOptions())
			if err != nil {
				t.Fatal(err)
			}
		}
		p.AlgFactory = func() (routing.Router, error) {
			return routing.New(algName, net, fs, 4)
		}
	}
}

// TestParallelMatchesSerial is the parallel engine's determinism proof at
// the event level: for every worker count, topology family, fault pattern
// and routing mode, the phase-barriered engine must produce the exact same
// trace — every injection, hop, stop, re-injection and delivery at the
// same cycle — and the same finalised results as the serial engine on the
// same seed. Anything weaker (comparing means) could hide commit-order
// divergence that cancels out on average.
func TestParallelMatchesSerial(t *testing.T) {
	torus := func(*testing.T) topology.Network { return topology.New(8, 2) }
	mesh := func(*testing.T) topology.Network { return topology.NewMesh(8, 2) }
	for _, env := range []struct {
		name string
		net  func(*testing.T) topology.Network
		alg  string
		nf   int
	}{
		{"torus-det-faultfree", torus, "det", 0},
		{"torus-det-faulted", torus, "det", 6},
		{"torus-adaptive-faulted", torus, "adaptive", 6},
		{"mesh-det-faulted", mesh, "det", 4},
		{"mesh-adaptive-faultfree", mesh, "adaptive", 0},
	} {
		t.Run(env.name, func(t *testing.T) {
			evBase, resBase := runTraced(t, env.net(t), env.alg, env.nf,
				workersTweak(t, env.net(t), env.alg, env.nf, 1))
			for _, w := range []int{2, 4, 8} {
				net := env.net(t)
				ev, res := runTraced(t, net, env.alg, env.nf,
					workersTweak(t, net, env.alg, env.nf, w))
				assertSameRun(t, evBase, ev, resBase, res, fmt.Sprintf("workers=%d", w))
			}
		})
	}
}

// TestParallelMatchesSerialAblations crosses the parallel engine with the
// scheduler/storage ablation bits and the timing knobs, on the two
// environments that exercise every conditional the knobs gate (a faulted
// mesh and a torus with a non-uniform per-link latency overlay): at
// workers=4, every knob combination must reproduce its own serial trace.
func TestParallelMatchesSerialAblations(t *testing.T) {
	for _, env := range []struct {
		name string
		net  func(t *testing.T) topology.Network
		alg  string
		nf   int
	}{
		{"faulted-mesh", func(*testing.T) topology.Network { return topology.NewMesh(8, 2) }, "det", 4},
		{"latmap-torus", latmapTorus, "det", 0},
	} {
		t.Run(env.name, func(t *testing.T) {
			for knobs := 0; knobs < 8; knobs++ {
				dense := knobs&1 != 0
				denseVC := knobs&2 != 0
				timing := knobs&4 != 0 // Td/Δ/link/credit delays + priority off
				name := fmt.Sprintf("dense=%v,denseVC=%v,timing=%v", dense, denseVC, timing)
				apply := func(p *Params) {
					p.DenseScan, p.DenseVCScan = dense, denseVC
					if timing {
						p.Td, p.Delta = 1, 2
						p.LinkLatency, p.CreditDelay = 2, 2
						p.NoReinjectPriority = true
					}
				}
				netS := env.net(t)
				serialTweak := workersTweak(t, netS, env.alg, env.nf, 1)
				evS, resS := runTraced(t, netS, env.alg, env.nf, func(p *Params) {
					serialTweak(p)
					apply(p)
				})
				netP := env.net(t)
				parTweak := workersTweak(t, netP, env.alg, env.nf, 4)
				evP, resP := runTraced(t, netP, env.alg, env.nf, func(p *Params) {
					parTweak(p)
					apply(p)
				})
				assertSameRun(t, evS, evP, resS, resP, name)
			}
		})
	}
}

// TestParallelDrainsWorklist checks the parallel scheduler bookkeeping:
// once the network is idle, no router may linger on the worklist, any
// worker's pending list, or the active flags.
func TestParallelDrainsWorklist(t *testing.T) {
	net := topology.New(8, 2)
	fs := fault.NewSet(net)
	alg, err := routing.New("det", net, fs, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	gen := traffic.NewGenerator(net, fs.HealthyNodes(), 0.004, 16, alg.BaseMode(),
		traffic.NewUniform(fs), r.Split(1))
	col := metrics.NewCollector(0)
	p := DefaultParams(4)
	p.Workers = 4
	p.AlgFactory = func() (routing.Router, error) { return routing.New("det", net, fs, 4) }
	nw := New(net, fs, alg, gen, col, p, r.Split(2))
	if got := nw.Workers(); got != 4 {
		t.Fatalf("Workers() = %d, want 4", got)
	}
	for nw.Now() < 2000 {
		nw.Step()
	}
	nw.StopGeneration()
	for !nw.Idle() && nw.Now() < 200_000 {
		nw.Step()
	}
	if !nw.Idle() {
		t.Fatal("network did not drain")
	}
	n := len(nw.work) + len(nw.pending)
	for _, w := range nw.par {
		n += len(w.pend)
	}
	if n != 0 {
		t.Fatalf("idle network still has %d routers on worklists", n)
	}
	for id, a := range nw.active {
		if a {
			t.Fatalf("idle network: router %d still flagged active", id)
		}
	}
}

// TestWorkersClamp checks the degenerate domain counts: Workers above the
// node count clamps to one domain per node, and Workers <= 1 stays on the
// serial engine with no worker pool at all.
func TestWorkersClamp(t *testing.T) {
	net := topology.New(2, 2) // 4 nodes
	fs := fault.NewSet(net)
	alg, err := routing.New("det", net, fs, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	p := DefaultParams(4)
	p.Workers = 64
	p.AlgFactory = func() (routing.Router, error) { return routing.New("det", net, fs, 4) }
	nw := New(net, fs, alg, nil, metrics.NewCollector(0), p, r.Split(2))
	if got := nw.Workers(); got != net.Nodes() {
		t.Fatalf("Workers() = %d, want clamp to %d nodes", got, net.Nodes())
	}
	p.Workers = 1
	p.AlgFactory = nil
	nw = New(net, fs, alg, nil, metrics.NewCollector(0), p, rng.New(9).Split(2))
	if nw.par != nil || nw.Workers() != 1 {
		t.Fatal("Workers=1 must run the serial engine")
	}
}

// TestParallelRequiresAlgFactory pins the construction contract: a worker
// pool without per-worker routing instances would share decision scratch
// across goroutines, so New must refuse it loudly.
func TestParallelRequiresAlgFactory(t *testing.T) {
	net := topology.New(8, 2)
	fs := fault.NewSet(net)
	alg, err := routing.New("det", net, fs, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(4)
	p.Workers = 2
	defer func() {
		if recover() == nil {
			t.Fatal("Workers > 1 without AlgFactory did not panic")
		}
	}()
	New(net, fs, alg, nil, metrics.NewCollector(0), p, rng.New(1).Split(2))
}

// TestParallelEnqueueDriven checks the source-less path under the worker
// pool: caller-enqueued messages must behave identically at any worker
// count (Enqueue feeds the serial-side pending list, which
// beginCycleParallel merges).
func TestParallelEnqueueDriven(t *testing.T) {
	run := func(workers int) []trace.Event {
		net := topology.New(8, 2)
		fs := fault.NewSet(net)
		alg, err := routing.New("det", net, fs, 4)
		if err != nil {
			t.Fatal(err)
		}
		rec := trace.NewRecorder()
		p := DefaultParams(4)
		p.Tracer = rec
		p.Workers = workers
		if workers > 1 {
			p.AlgFactory = func() (routing.Router, error) { return routing.New("det", net, fs, 4) }
		}
		nw := New(net, fs, alg, nil, metrics.NewCollector(0), p, rng.New(3).Split(2))
		mode := alg.BaseMode()
		for i := 0; i < 32; i++ {
			src := topology.NodeID(i % net.Nodes())
			dst := topology.NodeID((i*13 + 7) % net.Nodes())
			if src == dst {
				dst = (dst + 1) % topology.NodeID(net.Nodes())
			}
			m := message.New(uint64(i), src, dst, 8, net.N(), mode, 0)
			nw.Enqueue(src, m)
		}
		for !nw.Idle() && nw.Now() < 100_000 {
			nw.Step()
		}
		if !nw.Idle() {
			t.Fatal("network did not drain")
		}
		return rec.All()
	}
	base := run(1)
	if len(base) == 0 {
		t.Fatal("no events traced")
	}
	for _, w := range []int{2, 8} {
		got := run(w)
		if len(got) != len(base) {
			t.Fatalf("workers=%d: event counts differ: %d vs %d", w, len(got), len(base))
		}
		for i := range base {
			if base[i] != got[i] {
				t.Fatalf("workers=%d: event %d differs:\nserial:   %+v\nparallel: %+v", w, i, base[i], got[i])
			}
		}
	}
}
