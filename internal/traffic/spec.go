package traffic

import (
	"fmt"
	"strconv"
	"strings"
)

// Spec is a parsed workload specifier of the form
//
//	name
//	name:key=value,key=value,...
//
// used to select and parameterise both destination patterns and arrival
// sources, e.g. "hotspot:frac=0.1,node=12" or "burst:on=50,off=200,rate=0.02".
// Names and keys are lower-case identifiers; per-node parameters use the
// decimal node id as the key ("nodemap:default=0.001,12=0.01").
type Spec struct {
	Name   string
	Params []Param
}

// Param is one key=value pair of a Spec, in written order.
type Param struct {
	Key, Value string
}

// Get returns the value of key and whether it was present.
func (s Spec) Get(key string) (string, bool) {
	for _, p := range s.Params {
		if p.Key == key {
			return p.Value, true
		}
	}
	return "", false
}

// String renders the spec back into its parseable form.
func (s Spec) String() string {
	if len(s.Params) == 0 {
		return s.Name
	}
	parts := make([]string, len(s.Params))
	for i, p := range s.Params {
		parts[i] = p.Key + "=" + p.Value
	}
	return s.Name + ":" + strings.Join(parts, ",")
}

// validName reports whether s is a legal spec name or parameter key:
// non-empty, lower-case letters, digits, '-' or '_'.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '-' && c != '_' {
			return false
		}
	}
	return true
}

// ParseSpec parses a "name[:key=val,...]" workload specifier.
func ParseSpec(s string) (Spec, error) {
	s = strings.TrimSpace(s)
	name, rest, hasParams := strings.Cut(s, ":")
	if !validName(name) {
		return Spec{}, fmt.Errorf("traffic: bad spec name %q in %q", name, s)
	}
	spec := Spec{Name: name}
	if !hasParams {
		return spec, nil
	}
	if rest == "" {
		return Spec{}, fmt.Errorf("traffic: spec %q has an empty parameter list", s)
	}
	seen := map[string]bool{}
	for _, kv := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(kv, "=")
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if !ok || !validName(key) || val == "" {
			return Spec{}, fmt.Errorf("traffic: bad parameter %q in spec %q (want key=value)", kv, s)
		}
		if seen[key] {
			return Spec{}, fmt.Errorf("traffic: duplicate parameter %q in spec %q", key, s)
		}
		seen[key] = true
		spec.Params = append(spec.Params, Param{Key: key, Value: val})
	}
	return spec, nil
}

// IsNodeKey reports whether a parameter key is a decimal node id (the
// per-node entries of nodemap sources and weighted patterns). Exported so
// layers that know the network size (core's Config.Validate) can
// range-check per-node keys with the same grammar rule.
func IsNodeKey(key string) bool {
	for _, c := range key {
		if c < '0' || c > '9' {
			return false
		}
	}
	return key != ""
}

// args is the typed accessor over a Spec's parameters used by factories:
// every accessor marks its key as consumed and records the first conversion
// or range error; finish reports that error, or complains about keys no
// accessor asked for ("unknown parameter"). The same accessors back the
// static Check functions, so spec validation and construction cannot drift.
type args struct {
	spec Spec
	used map[string]bool
	err  error
}

func newArgs(spec Spec) *args {
	return &args{spec: spec, used: make(map[string]bool, len(spec.Params))}
}

func (a *args) fail(format string, v ...any) {
	if a.err == nil {
		a.err = fmt.Errorf("traffic: spec %q: %s", a.spec.String(), fmt.Sprintf(format, v...))
	}
}

func (a *args) lookup(key string) (string, bool) {
	a.used[key] = true
	return a.spec.Get(key)
}

// Float returns the value of key as a float64, or def when absent.
func (a *args) Float(key string, def float64) float64 {
	s, ok := a.lookup(key)
	if !ok {
		return def
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		a.fail("parameter %s=%q is not a number", key, s)
		return def
	}
	return v
}

// PositiveFloat is Float restricted to values > 0 when present. The
// negated comparison also rejects NaN (which satisfies no ordering).
func (a *args) PositiveFloat(key string, def float64) float64 {
	v := a.Float(key, def)
	if _, ok := a.spec.Get(key); ok && !(v > 0) {
		a.fail("parameter %s must be > 0, got %g", key, v)
	}
	return v
}

// Fraction is Float restricted to (0, 1] when present; NaN is rejected.
func (a *args) Fraction(key string, def float64) float64 {
	v := a.Float(key, def)
	if _, ok := a.spec.Get(key); ok && !(v > 0 && v <= 1) {
		a.fail("parameter %s must be in (0,1], got %g", key, v)
	}
	return v
}

// Int returns the value of key as an int, or def when absent.
func (a *args) Int(key string, def int) int {
	s, ok := a.lookup(key)
	if !ok {
		return def
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		a.fail("parameter %s=%q is not an integer", key, s)
		return def
	}
	return v
}

// PositiveInt is Int restricted to values >= 1 when present.
func (a *args) PositiveInt(key string, def int) int {
	v := a.Int(key, def)
	if _, ok := a.spec.Get(key); ok && a.err == nil && v < 1 {
		a.fail("parameter %s must be >= 1, got %d", key, v)
	}
	return v
}

// Str returns the raw value of key, or def when absent.
func (a *args) Str(key, def string) string {
	if s, ok := a.lookup(key); ok {
		return s
	}
	return def
}

// NodeFloats consumes every decimal-keyed parameter as a node id -> float
// entry (negative values rejected).
func (a *args) NodeFloats() map[int]float64 {
	out := map[int]float64{}
	for _, p := range a.spec.Params {
		if !IsNodeKey(p.Key) {
			continue
		}
		a.used[p.Key] = true
		id, err := strconv.Atoi(p.Key)
		if err != nil {
			a.fail("bad node id %q", p.Key)
			continue
		}
		v, err := strconv.ParseFloat(p.Value, 64)
		if err != nil || !(v >= 0) { // negated to reject NaN
			a.fail("node %d: value %q must be a number >= 0", id, p.Value)
			continue
		}
		out[id] = v
	}
	return out
}

// finish returns the first recorded error, or an unknown-parameter error
// for any key no accessor consumed.
func (a *args) finish() error {
	if a.err != nil {
		return a.err
	}
	for _, p := range a.spec.Params {
		if !a.used[p.Key] {
			return fmt.Errorf("traffic: spec %q: unknown parameter %q", a.spec.String(), p.Key)
		}
	}
	return nil
}
