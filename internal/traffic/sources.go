package traffic

import (
	"fmt"
	"math"
	"os"
	"sort"

	"repro/internal/message"
	"repro/internal/rng"
	"repro/internal/topology"
	"repro/internal/trace"
)

// schedSource is the shared chassis of the generating sources other than
// the legacy Poisson Generator: a per-node event heap of pre-scheduled
// arrivals, so Poll cost is proportional to arrivals rather than nodes.
// next produces the node's following arrival time (clamped to at least one
// cycle after the arrival just emitted); per-node process state lives in
// the concrete source and is indexed by the node's position in sources.
type schedSource struct {
	name     string
	t        topology.Network
	sources  []topology.NodeID
	msgLen   int
	mode     message.Mode
	pattern  Pattern
	r        *rng.Stream
	pool     *message.Pool
	heap     arrivalHeap
	next     func(idx int, at int64) int64
	meanRate float64
	nextID   uint64
	created  uint64
	// out is Poll's reused result buffer.
	//simlint:ignore reflife -- pre-adoption scratch: messages are heap-built here and pooled only when Network.Enqueue adopts them; reset at the top of every Poll
	out []*message.Message
}

// newSched builds the chassis after validating the env.
func newSched(name string, env Env) (*schedSource, error) {
	if err := env.check(); err != nil {
		return nil, err
	}
	return &schedSource{
		name:    name,
		t:       env.T,
		sources: env.Sources,
		msgLen:  env.MsgLen,
		mode:    env.Mode,
		pattern: env.Pattern,
		r:       env.R,
		pool:    env.Pool,
	}, nil
}

// initHeap schedules the first arrival of every node. first returns the
// node's initial arrival cycle (clamped to >= 1).
func (s *schedSource) initHeap(first func(idx int) int64) {
	for i, src := range s.sources {
		at := first(i)
		if at < 1 {
			at = 1
		}
		s.heap = append(s.heap, arrival{at: at, node: src, idx: i})
	}
	s.heap.init()
}

// Name implements Source.
func (s *schedSource) Name() string { return s.name }

// Created returns the total number of messages generated so far.
func (s *schedSource) Created() uint64 { return s.created }

// MeanRate implements MeanRater: the long-run aggregate arrival rate in
// messages/cycle, set by each concrete source's constructor.
func (s *schedSource) MeanRate() float64 { return s.meanRate }

// Poll implements Source; it mirrors Generator.Poll with the pluggable
// next-arrival sampler. Messages come from the configured pool (heap when
// nil); the returned slice is reused across calls.
func (s *schedSource) Poll(now int64) []*message.Message {
	s.out = s.out[:0]
	for {
		top, ok := s.heap.Peek()
		if !ok || top.at > now {
			return s.out
		}
		s.heap.pop()
		dst := s.pattern.Pick(top.node, s.r)
		m := message.NewIn(s.pool, s.nextID, top.node, dst, s.msgLen, s.t.N(), s.mode, now)
		s.nextID++
		s.created++
		s.out = append(s.out, m)
		at := s.next(top.idx, top.at)
		if at <= top.at {
			at = top.at + 1
		}
		s.heap.push(arrival{at: at, node: top.node, idx: top.idx})
	}
}

// NewPoisson builds the Poisson source on the shared chassis: every node is
// an independent Poisson process of rate messages/node/cycle. It draws the
// rng in exactly the legacy Generator's order (destination, then gap;
// stationary exponential first arrival), so the default workload stays
// bit-identical to the pre-registry path — guarded by the network package's
// TestRegistrySourceMatchesLegacyGenerator.
func NewPoisson(env Env, rate float64) (*schedSource, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("traffic: poisson rate must be > 0, got %g", rate)
	}
	s, err := newSched("poisson", env)
	if err != nil {
		return nil, err
	}
	s.meanRate = rate * float64(len(s.sources))
	mean := 1 / rate
	s.next = func(idx int, at int64) int64 { return at + int64(s.r.Exp(mean)) }
	s.initHeap(func(idx int) int64 { return int64(s.r.Exp(mean)) + 1 })
	return s, nil
}

// NewInterval builds the deterministic-interval source: every node emits
// exactly one message every period cycles, phases randomised uniformly so
// nodes do not inject in lockstep. The per-node mean rate is 1/period; it
// is the zero-variance counterpart to Poisson at equal offered load.
func NewInterval(env Env, period int64) (*schedSource, error) {
	if period < 1 {
		return nil, fmt.Errorf("traffic: interval period must be >= 1, got %d", period)
	}
	s, err := newSched(fmt.Sprintf("interval(%d)", period), env)
	if err != nil {
		return nil, err
	}
	s.meanRate = float64(len(s.sources)) / float64(period)
	s.next = func(idx int, at int64) int64 { return at + period }
	s.initHeap(func(idx int) int64 { return 1 + int64(s.r.Intn(int(period))) })
	return s, nil
}

// MMPP is the two-state Markov-modulated Poisson ("burst") source: each
// node alternates independently between an ON phase (exponential duration,
// mean on cycles) emitting Poisson arrivals at rate, and a silent OFF
// phase (mean off cycles). The long-run per-node rate is rate·on/(on+off);
// the registry's burst factory derives rate from λ when the spec omits it,
// so bursty and Poisson runs compare at equal offered load.
type MMPP struct {
	*schedSource
	on, off, rate float64
	nodes         []mmppNode
}

// mmppNode is one node's phase-process state in continuous time: the
// current phase, the cycle it ends at, and the node's own process clock t
// (the time of its last arrival or phase change).
type mmppNode struct {
	on       bool
	t        float64
	phaseEnd float64
}

// NewMMPP builds the bursty source. on and off are mean phase durations in
// cycles; rate is the Poisson rate while ON.
func NewMMPP(env Env, on, off, rate float64) (*MMPP, error) {
	if on <= 0 || off <= 0 {
		return nil, fmt.Errorf("traffic: burst on/off durations must be > 0, got on=%g off=%g", on, off)
	}
	if rate <= 0 {
		return nil, fmt.Errorf("traffic: burst rate must be > 0, got %g", rate)
	}
	s, err := newSched(fmt.Sprintf("burst(on=%g,off=%g,rate=%g)", on, off, rate), env)
	if err != nil {
		return nil, err
	}
	s.meanRate = rate * on / (on + off) * float64(len(s.sources))
	m := &MMPP{schedSource: s, on: on, off: off, rate: rate}
	m.nodes = make([]mmppNode, len(s.sources))
	for i := range m.nodes {
		st := &m.nodes[i]
		// Stationary start: ON with probability on/(on+off); the residual
		// phase duration is exponential by memorylessness.
		st.on = s.r.Float64() < on/(on+off)
		if st.on {
			st.phaseEnd = s.r.Exp(on)
		} else {
			st.phaseEnd = s.r.Exp(off)
		}
	}
	s.next = m.nextArrival
	s.initHeap(func(idx int) int64 { return m.nextArrival(idx, 0) })
	return m, nil
}

// nextArrival advances node idx's phase process to its next arrival. An
// ON-phase inter-arrival draw that overshoots the phase boundary is
// discarded and redrawn in the next ON phase — unbiased, because the
// exponential is memoryless.
func (m *MMPP) nextArrival(idx int, _ int64) int64 {
	st := &m.nodes[idx]
	for {
		if !st.on {
			st.t = st.phaseEnd
			st.on = true
			st.phaseEnd = st.t + m.r.Exp(m.on)
			continue
		}
		gap := m.r.Exp(1 / m.rate)
		if st.t+gap <= st.phaseEnd {
			st.t += gap
			return int64(st.t)
		}
		st.t = st.phaseEnd
		st.on = false
		st.phaseEnd = st.t + m.r.Exp(m.off)
	}
}

// NewNodeMap builds the heterogeneous-λ source: every node is an
// independent Poisson source with its own rate. rates maps node id -> λ;
// def is the rate of unlisted nodes, and a rate of 0 silences a node.
func NewNodeMap(env Env, rates map[int]float64, def float64) (*schedSource, error) {
	if def < 0 {
		return nil, fmt.Errorf("traffic: nodemap default rate must be >= 0, got %g", def)
	}
	if env.T == nil {
		return nil, fmt.Errorf("traffic: source env needs a topology")
	}
	total := env.T.Nodes()
	generating := make(map[topology.NodeID]bool, len(env.Sources))
	for _, id := range env.Sources {
		generating[id] = true
	}
	ids := make([]int, 0, len(rates))
	for id := range rates {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if rates[id] < 0 {
			return nil, fmt.Errorf("traffic: nodemap node %d: rate must be >= 0, got %g", id, rates[id])
		}
		if id < 0 || id >= total {
			return nil, fmt.Errorf("traffic: nodemap node %d out of range [0,%d)", id, total)
		}
		if rates[id] > 0 && !generating[topology.NodeID(id)] {
			return nil, fmt.Errorf("traffic: nodemap node %d is not a generating (healthy) node", id)
		}
	}
	// Restrict the chassis to the nodes with a positive rate.
	sub := env
	sub.Sources = nil
	var subRates []float64
	for _, id := range env.Sources {
		rate := def
		if r, ok := rates[int(id)]; ok {
			rate = r
		}
		if rate > 0 {
			sub.Sources = append(sub.Sources, id)
			subRates = append(subRates, rate)
		}
	}
	if len(sub.Sources) == 0 {
		return nil, fmt.Errorf("traffic: nodemap leaves no node with a positive rate")
	}
	s, err := newSched("nodemap", sub)
	if err != nil {
		return nil, err
	}
	for _, rate := range subRates {
		s.meanRate += rate
	}
	s.next = func(idx int, at int64) int64 { return at + int64(s.r.Exp(1/subRates[idx])) }
	s.initHeap(func(idx int) int64 { return 1 + int64(s.r.Exp(1/subRates[idx])) })
	return s, nil
}

// --- registry wiring ---
//
// Each source's parameter extraction is a standalone parse function used
// both by its factory and as the registry's static check, so spec
// validation and construction cannot drift.

func parsePoisson(spec Spec) (rate float64, err error) {
	a := newArgs(spec)
	rate = a.PositiveFloat("rate", 0) // 0: defer to env.Lambda
	return rate, a.finish()
}

func parseInterval(spec Spec) (period int64, err error) {
	a := newArgs(spec)
	period = int64(a.PositiveInt("period", 0)) // 0: derive from env.Lambda
	return period, a.finish()
}

type burstParams struct{ on, off, rate float64 }

func parseBurst(spec Spec) (burstParams, error) {
	a := newArgs(spec)
	p := burstParams{
		on:   a.PositiveFloat("on", 50),
		off:  a.PositiveFloat("off", 200),
		rate: a.PositiveFloat("rate", 0), // 0: derive from env.Lambda
	}
	return p, a.finish()
}

type nodeMapParams struct {
	rates map[int]float64
	def   float64
}

func parseNodeMap(spec Spec) (nodeMapParams, error) {
	a := newArgs(spec)
	p := nodeMapParams{rates: a.NodeFloats(), def: a.Float("default", 0)}
	if err := a.finish(); err != nil {
		return p, err
	}
	if !(p.def >= 0) { // negated to reject NaN
		return p, fmt.Errorf("traffic: spec %q: default rate must be >= 0, got %g", spec.String(), p.def)
	}
	return p, nil
}

func parseReplay(spec Spec) (file string, err error) {
	a := newArgs(spec)
	file = a.Str("file", "")
	if err := a.finish(); err != nil {
		return "", err
	}
	if file == "" {
		return "", fmt.Errorf("traffic: spec %q: replay needs file=<path>", spec.String())
	}
	return file, nil
}

func init() {
	RegisterSource(Info{
		Name:        "poisson",
		Usage:       "poisson[:rate=<msgs/node/cycle>]",
		Description: "independent Poisson arrivals per node (the paper's workload); rate defaults to λ",
	}, func(spec Spec) error {
		_, err := parsePoisson(spec)
		return err
	}, func(env Env, spec Spec) (Source, error) {
		rate, err := parsePoisson(spec)
		if err != nil {
			return nil, err
		}
		if rate == 0 {
			rate = env.Lambda
		}
		return NewPoisson(env, rate)
	})

	RegisterSource(Info{
		Name:        "interval",
		Usage:       "interval[:period=<cycles>]",
		Description: "deterministic arrivals, one message per node every period cycles (default round(1/λ))",
		Aliases:     []string{"deterministic-interval"},
	}, func(spec Spec) error {
		_, err := parseInterval(spec)
		return err
	}, func(env Env, spec Spec) (Source, error) {
		period, err := parseInterval(spec)
		if err != nil {
			return nil, err
		}
		if period == 0 {
			if env.Lambda <= 0 {
				return nil, fmt.Errorf("traffic: interval needs period=<cycles> or a positive λ")
			}
			period = int64(math.Round(1 / env.Lambda))
			if period < 1 {
				period = 1
			}
		}
		return NewInterval(env, period)
	})

	RegisterSource(Info{
		Name:        "burst",
		Usage:       "burst[:on=<cycles>,off=<cycles>,rate=<msgs/node/cycle>]",
		Description: "MMPP on/off bursty arrivals; rate defaults to λ·(on+off)/on (equal offered load)",
		Aliases:     []string{"mmpp", "bursty"},
	}, func(spec Spec) error {
		_, err := parseBurst(spec)
		return err
	}, func(env Env, spec Spec) (Source, error) {
		p, err := parseBurst(spec)
		if err != nil {
			return nil, err
		}
		if p.rate == 0 {
			if env.Lambda <= 0 {
				return nil, fmt.Errorf("traffic: burst needs rate=<λ> or a positive λ")
			}
			p.rate = env.Lambda * (p.on + p.off) / p.on
		}
		return NewMMPP(env, p.on, p.off, p.rate)
	})

	RegisterSource(Info{
		Name:        "nodemap",
		Usage:       "nodemap:default=<λ>,<node>=<λ>,...",
		Description: "heterogeneous load: per-node Poisson rates keyed by node id (0 silences a node)",
		Aliases:     []string{"hetero"},
	}, func(spec Spec) error {
		_, err := parseNodeMap(spec)
		return err
	}, func(env Env, spec Spec) (Source, error) {
		p, err := parseNodeMap(spec)
		if err != nil {
			return nil, err
		}
		return NewNodeMap(env, p.rates, p.def)
	})

	RegisterSource(Info{
		Name:        "replay",
		Usage:       "replay:file=<workload.csv>",
		Description: "re-drive captured (cycle,src,dst,len) records (see swsim -workload-out)",
	}, func(spec Spec) error {
		_, err := parseReplay(spec)
		return err
	}, func(env Env, spec Spec) (Source, error) {
		file, err := parseReplay(spec)
		if err != nil {
			return nil, err
		}
		f, err := os.Open(file)
		if err != nil {
			return nil, fmt.Errorf("traffic: replay: %w", err)
		}
		defer f.Close()
		w, err := trace.ParseWorkload(f)
		if err != nil {
			return nil, err
		}
		return NewReplay(env.T, env.F, w, env.Mode)
	})
}
