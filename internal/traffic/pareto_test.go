package traffic

import (
	"math"
	"strings"
	"testing"
)

// TestParetoConvergesToConfiguredMean checks rate convergence: the long-run
// per-node rate is rate·on/(on+off) regardless of the heavy tail. A large
// shape keeps the tail short enough for a tight tolerance over a finite
// horizon.
func TestParetoConvergesToConfiguredMean(t *testing.T) {
	env := testEnv(t, 21)
	src, err := NewSource("pareto:shape=3,on=50,off=200,rate=0.02", env)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 200_000
	total, _ := pollTotal(t, src, horizon)
	want := 0.02 * 50 / 250 * float64(len(env.Sources)) * horizon
	if math.Abs(float64(total)-want)/want > 0.08 {
		t.Fatalf("pareto generated %d messages, want ~%.0f (±8%%)", total, want)
	}
}

// TestParetoDefaultRateMatchesOfferedLoad checks the λ calibration: with no
// explicit rate, the ON rate is λ(on+off)/on, so the offered load matches a
// poisson run at the same λ.
func TestParetoDefaultRateMatchesOfferedLoad(t *testing.T) {
	env := testEnv(t, 22) // Lambda = 0.005
	src, err := NewSource("pareto:shape=3,on=50,off=200", env)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src.Name(), "rate=0.025") {
		t.Fatalf("derived ON rate not λ(on+off)/on: %s", src.Name())
	}
	const horizon = 200_000
	total, _ := pollTotal(t, src, horizon)
	want := env.Lambda * float64(len(env.Sources)) * horizon
	if math.Abs(float64(total)-want)/want > 0.08 {
		t.Fatalf("pareto at default rate generated %d, want ~%.0f (±8%%, equal offered load)", total, want)
	}
}

// TestParetoIsBurstier checks the dispersion ordering at equal offered
// load: heavy-tailed on/off counts must be clearly over-dispersed relative
// to Poisson (index of dispersion >> 1), the property that makes the
// source worth having next to burst/MMPP.
func TestParetoIsBurstier(t *testing.T) {
	dispersion := func(spec string, seed uint64) float64 {
		env := testEnv(t, seed)
		src, err := NewSource(spec, env)
		if err != nil {
			t.Fatal(err)
		}
		const horizon, window = 60_000, 500
		counts := make([]float64, horizon/window)
		for now := int64(1); now <= horizon; now++ {
			counts[(now-1)/window] += float64(len(src.Poll(now)))
		}
		var mean, m2 float64
		for _, c := range counts {
			mean += c
		}
		mean /= float64(len(counts))
		for _, c := range counts {
			m2 += (c - mean) * (c - mean)
		}
		return m2 / float64(len(counts)) / mean
	}
	dPoisson := dispersion("poisson", 23)
	dPareto := dispersion("pareto:shape=1.5,on=50,off=450", 23)
	if dPareto < 1.5*dPoisson {
		t.Fatalf("pareto dispersion %.2f not clearly above poisson %.2f", dPareto, dPoisson)
	}
}

// TestParetoMeanRate checks the MeanRater contract the run layer uses for
// its cycle bound.
func TestParetoMeanRate(t *testing.T) {
	env := testEnv(t, 24)
	src, err := NewSource("pareto:shape=2,on=100,off=100,rate=0.01", env)
	if err != nil {
		t.Fatal(err)
	}
	mr, ok := src.(MeanRater)
	if !ok {
		t.Fatal("pareto source does not implement MeanRater")
	}
	want := 0.01 * 100 / 200 * float64(len(env.Sources))
	if math.Abs(mr.MeanRate()-want) > 1e-12 {
		t.Fatalf("MeanRate() = %g, want %g", mr.MeanRate(), want)
	}
}

// TestParetoRejectsBadSpecs pins the parameter validation: shapes at or
// below 1 (infinite mean), non-positive durations and rates, and unknown
// keys must all be rejected statically.
func TestParetoRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"pareto:shape=1",   // infinite mean
		"pareto:shape=0.8", // infinite mean
		"pareto:shape=-2",  // negative shape
		"pareto:on=0",      // zero duration
		"pareto:off=-5",    // negative duration
		"pareto:rate=0",    // non-positive rate
		"pareto:alpha=1.5", // misspelt key
		"pareto:shape=nan", // NaN shape
	} {
		if err := ValidateSourceSpec(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
		if _, err := NewSource(spec, testEnv(t, 25)); err == nil {
			t.Errorf("NewSource(%q) accepted", spec)
		}
	}
}
