package traffic

import (
	"math"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/topology"
	"repro/internal/trace"
)

// pollTotal drives a source over a horizon and counts messages, also
// checking the per-message invariants every source must uphold.
func pollTotal(t *testing.T, src Source, horizon int64) (total int, bySrc map[topology.NodeID]int) {
	t.Helper()
	bySrc = map[topology.NodeID]int{}
	last := int64(0)
	for now := int64(1); now <= horizon; now++ {
		for _, m := range src.Poll(now) {
			if m.CreatedAt != now {
				t.Fatalf("message stamped %d at cycle %d", m.CreatedAt, now)
			}
			if m.CreatedAt < last {
				t.Fatal("non-monotone creation times")
			}
			last = m.CreatedAt
			if m.Src == m.Dst {
				t.Fatal("self-addressed message")
			}
			total++
			bySrc[m.Src]++
		}
	}
	return total, bySrc
}

func TestIntervalRateIsExact(t *testing.T) {
	env := testEnv(t, 10)
	src, err := NewSource("interval:period=125", env)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 25_000
	total, bySrc := pollTotal(t, src, horizon)
	// Every node emits exactly horizon/period messages (phases <= period).
	want := horizon / 125 * len(env.Sources)
	if total < want-len(env.Sources) || total > want+len(env.Sources) {
		t.Fatalf("interval generated %d messages, want ~%d", total, want)
	}
	for id, n := range bySrc {
		if n < horizon/125-1 || n > horizon/125+1 {
			t.Fatalf("node %d emitted %d messages, want %d", id, n, horizon/125)
		}
	}
}

func TestIntervalDefaultsPeriodFromLambda(t *testing.T) {
	env := testEnv(t, 11) // Lambda = 0.005 -> period 200
	src, err := NewSource("interval", env)
	if err != nil {
		t.Fatal(err)
	}
	if src.Name() != "interval(200)" {
		t.Fatalf("derived source name %q, want interval(200)", src.Name())
	}
}

func TestMMPPConvergesToConfiguredMean(t *testing.T) {
	env := testEnv(t, 12)
	// Explicit rate: long-run per-node rate = rate*on/(on+off) = 0.02/5.
	src, err := NewSource("burst:on=50,off=200,rate=0.02", env)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 150_000
	total, _ := pollTotal(t, src, horizon)
	want := 0.02 * 50 / 250 * float64(len(env.Sources)) * horizon
	if math.Abs(float64(total)-want)/want > 0.05 {
		t.Fatalf("mmpp generated %d messages, want ~%.0f (±5%%)", total, want)
	}
}

func TestMMPPDefaultRateMatchesOfferedLoad(t *testing.T) {
	env := testEnv(t, 13) // Lambda = 0.005
	src, err := NewSource("burst:on=50,off=200", env)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src.Name(), "rate=0.025") {
		t.Fatalf("derived ON rate not λ(on+off)/on: %s", src.Name())
	}
	const horizon = 150_000
	total, _ := pollTotal(t, src, horizon)
	want := env.Lambda * float64(len(env.Sources)) * horizon
	if math.Abs(float64(total)-want)/want > 0.05 {
		t.Fatalf("mmpp at default rate generated %d, want ~%.0f (±5%%, equal offered load)", total, want)
	}
}

func TestMMPPIsBurstier(t *testing.T) {
	// Same offered load; the MMPP arrival counts must have a higher
	// variance-to-mean ratio than Poisson (index of dispersion > 1). The
	// count window must exceed the phase durations — over one cycle any
	// rare process looks Bernoulli — so count in 500-cycle bins.
	dispersion := func(spec string, seed uint64) float64 {
		env := testEnv(t, seed)
		src, err := NewSource(spec, env)
		if err != nil {
			t.Fatal(err)
		}
		const horizon, window = 60_000, 500
		counts := make([]float64, horizon/window)
		for now := int64(1); now <= horizon; now++ {
			counts[(now-1)/window] += float64(len(src.Poll(now)))
		}
		var mean, m2 float64
		for _, c := range counts {
			mean += c
		}
		mean /= float64(len(counts))
		for _, c := range counts {
			m2 += (c - mean) * (c - mean)
		}
		return m2 / float64(len(counts)) / mean
	}
	dPoisson := dispersion("poisson", 14)
	dBurst := dispersion("burst:on=50,off=450", 14)
	if dBurst < 1.5*dPoisson {
		t.Fatalf("burst dispersion %.2f not clearly above poisson %.2f", dBurst, dPoisson)
	}
}

func TestNodeMapPerNodeRates(t *testing.T) {
	env := testEnv(t, 15)
	// Node 0 hot, node 1 silent, everyone else at the default.
	src, err := NewSource("nodemap:default=0.002,0=0.02,1=0", env)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 120_000
	_, bySrc := pollTotal(t, src, horizon)
	if n := bySrc[1]; n != 0 {
		t.Fatalf("silenced node emitted %d messages", n)
	}
	checks := []struct {
		node topology.NodeID
		want float64
	}{{0, 0.02 * horizon}, {5, 0.002 * horizon}}
	for _, c := range checks {
		got := float64(bySrc[c.node])
		if math.Abs(got-c.want)/c.want > 0.15 {
			t.Fatalf("node %d emitted %g messages, want ~%g (±15%%)", c.node, got, c.want)
		}
	}
}

func TestNodeMapRejectsFaultyGenerator(t *testing.T) {
	tor := topology.New(8, 2)
	fs := fault.NewSet(tor)
	fs.MarkNode(3)
	env := testEnv(t, 16)
	env.F = fs
	env.Sources = fs.HealthyNodes()
	if _, err := NewSource("nodemap:default=0.001,3=0.01", env); err == nil {
		t.Fatal("positive rate on a faulty node accepted")
	}
	// Rate 0 on a faulty node is fine (it is silent anyway).
	if _, err := NewSource("nodemap:default=0.001,3=0", env); err != nil {
		t.Fatalf("zero rate on faulty node rejected: %v", err)
	}
}

func TestReplayEmitsRecordsAtTheirCycles(t *testing.T) {
	tor := topology.New(4, 2)
	fs := fault.NewSet(tor)
	w := &trace.Workload{}
	w.Append(trace.WorkloadRecord{Cycle: 7, Src: 3, Dst: 9, Len: 4})
	w.Append(trace.WorkloadRecord{Cycle: 2, Src: 1, Dst: 2, Len: 8})
	w.Append(trace.WorkloadRecord{Cycle: 2, Src: 5, Dst: 6, Len: 8})
	rp, err := NewReplay(tor, fs, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got []trace.WorkloadRecord
	for now := int64(1); now <= 10; now++ {
		for _, m := range rp.Poll(now) {
			if m.CreatedAt != now {
				t.Fatalf("replayed message stamped %d at %d", m.CreatedAt, now)
			}
			got = append(got, trace.WorkloadRecord{Cycle: now, Src: m.Src, Dst: m.Dst, Len: m.Len})
		}
	}
	want := []trace.WorkloadRecord{
		{Cycle: 2, Src: 1, Dst: 2, Len: 8},
		{Cycle: 2, Src: 5, Dst: 6, Len: 8},
		{Cycle: 7, Src: 3, Dst: 9, Len: 4},
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if rp.Remaining() != 0 {
		t.Fatalf("%d records left", rp.Remaining())
	}
}

func TestReplayValidatesRecords(t *testing.T) {
	tor := topology.New(4, 2)
	fs := fault.NewSet(tor)
	fs.MarkNode(5)
	for _, rec := range []trace.WorkloadRecord{
		{Cycle: -1, Src: 0, Dst: 1, Len: 4}, // negative cycle
		{Cycle: 1, Src: 0, Dst: 99, Len: 4}, // out of range
		{Cycle: 1, Src: 2, Dst: 2, Len: 4},  // self-addressed
		{Cycle: 1, Src: 0, Dst: 1, Len: 0},  // zero length
		{Cycle: 1, Src: 5, Dst: 1, Len: 4},  // faulty endpoint
	} {
		w := &trace.Workload{}
		w.Append(rec)
		if _, err := NewReplay(tor, fs, w, 0); err == nil {
			t.Errorf("record %+v accepted", rec)
		}
	}
	if _, err := NewReplay(tor, fs, &trace.Workload{}, 0); err == nil {
		t.Error("empty workload accepted")
	}
}

func TestCaptureRoundTripsThroughWorkloadFormat(t *testing.T) {
	env := testEnv(t, 17)
	inner, err := NewSource("poisson", env)
	if err != nil {
		t.Fatal(err)
	}
	var w trace.Workload
	cap := NewCapture(inner, &w)
	var emitted int
	for now := int64(1); now <= 4000; now++ {
		emitted += len(cap.Poll(now))
	}
	if emitted == 0 || w.Len() != emitted {
		t.Fatalf("captured %d records for %d messages", w.Len(), emitted)
	}
	var b strings.Builder
	if err := w.Write(&b); err != nil {
		t.Fatal(err)
	}
	parsed, err := trace.ParseWorkload(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Len() != w.Len() {
		t.Fatalf("parsed %d records, wrote %d", parsed.Len(), w.Len())
	}
	rp, err := NewReplay(env.T, env.F, parsed, env.Mode)
	if err != nil {
		t.Fatal(err)
	}
	replayed := 0
	for now := int64(1); now <= 4000; now++ {
		replayed += len(rp.Poll(now))
	}
	if replayed != emitted {
		t.Fatalf("replayed %d of %d captured messages", replayed, emitted)
	}
}

func TestSourceNamesAreInformative(t *testing.T) {
	env := testEnv(t, 18)
	for spec, prefix := range map[string]string{
		"poisson":                      "poisson",
		"interval:period=100":          "interval(100)",
		"burst:on=10,off=20,rate=0.05": "burst(on=10,off=20,rate=0.05)",
		"nodemap:default=0.001":        "nodemap",
	} {
		src, err := NewSource(spec, env)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if !strings.HasPrefix(src.Name(), prefix) {
			t.Errorf("%s: name %q, want prefix %q", spec, src.Name(), prefix)
		}
	}
}

func TestSourceMeanRates(t *testing.T) {
	env := testEnv(t, 21) // 64 nodes, Lambda 0.005
	nodes := float64(len(env.Sources))
	for spec, want := range map[string]float64{
		"poisson":                       0.005 * 64,
		"poisson:rate=0.01":             0.01 * 64,
		"interval:period=100":           64.0 / 100,
		"burst:on=50,off=200":           0.005 * 64, // rate defaults to equal offered load
		"burst:on=10,off=30,rate=0.02":  0.02 * 10 / 40 * 64,
		"nodemap:default=0.001,12=0.01": 63*0.001 + 0.01,
	} {
		src, err := NewSource(spec, env)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		mr, ok := src.(MeanRater)
		if !ok {
			t.Fatalf("%s: source does not report a mean rate", spec)
		}
		if got := mr.MeanRate(); math.Abs(got-want) > 1e-9*nodes {
			t.Errorf("%s: MeanRate() = %g, want %g", spec, got, want)
		}
	}
}

func TestReplayMeanRateCoversSpan(t *testing.T) {
	env := testEnv(t, 22)
	w := &trace.Workload{Records: []trace.WorkloadRecord{
		{Cycle: 10, Src: 0, Dst: 1, Len: 8},
		{Cycle: 500, Src: 2, Dst: 3, Len: 8},
		{Cycle: 1000, Src: 4, Dst: 5, Len: 8},
	}}
	rp, err := NewReplay(env.T, env.F, w, env.Mode)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rp.MeanRate(), 3.0/1000; math.Abs(got-want) > 1e-12 {
		t.Errorf("MeanRate() = %g, want %g", got, want)
	}
}
