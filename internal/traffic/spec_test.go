package traffic

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/message"
	"repro/internal/rng"
	"repro/internal/topology"
)

func TestParseSpec(t *testing.T) {
	for _, tc := range []struct {
		in     string
		name   string
		params int
	}{
		{"poisson", "poisson", 0},
		{"burst:on=50,off=200,rate=0.02", "burst", 3},
		{"hotspot:frac=0.1,node=12", "hotspot", 2},
		{"nodemap:default=0.001,12=0.01", "nodemap", 2},
		{" uniform ", "uniform", 0},
		{"replay:file=/tmp/w.csv", "replay", 1},
	} {
		spec, err := ParseSpec(tc.in)
		if err != nil {
			t.Errorf("%q: %v", tc.in, err)
			continue
		}
		if spec.Name != tc.name || len(spec.Params) != tc.params {
			t.Errorf("%q parsed to %+v", tc.in, spec)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, in := range []string{
		"",                  // empty
		":frac=0.1",         // no name
		"Burst:on=50",       // upper case name
		"burst:",            // empty param list
		"burst:on",          // no value
		"burst:=5",          // no key
		"burst:on=",         // empty value
		"burst:on=5,on=6",   // duplicate key
		"burst:o n=5",       // space inside key
		"hot spot:frac=0.1", // space inside name
		"burst:on=5,,off=6", // empty pair
		"burst:on=5;off=6",  // wrong separator survives as one bad value? no: key "on" value "5;off=6" is fine... ensure ; in key fails below
		"burst:on@x=5",      // bad key char
	} {
		if _, err := ParseSpec(in); err == nil {
			// "burst:on=5;off=6" actually parses as on = "5;off=6": values
			// are free-form, so skip it.
			if in == "burst:on=5;off=6" {
				continue
			}
			t.Errorf("%q accepted", in)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	for _, in := range []string{"poisson", "burst:on=50,off=200,rate=0.02", "weights:5=3,rest=1"} {
		spec, err := ParseSpec(in)
		if err != nil {
			t.Fatal(err)
		}
		if got := spec.String(); got != in {
			t.Errorf("round trip %q -> %q", in, got)
		}
	}
}

// testEnv builds a valid source env over a fault-free 8-ary 2-cube.
func testEnv(t *testing.T, seed uint64) Env {
	t.Helper()
	tor := topology.New(8, 2)
	fs := fault.NewSet(tor)
	return Env{
		T: tor, F: fs, Sources: fs.HealthyNodes(),
		Lambda: 0.005, MsgLen: 16, Mode: message.Deterministic,
		Pattern: NewUniform(fs), R: rng.New(seed),
	}
}

func TestNewSourceRejectsBadSpecs(t *testing.T) {
	env := testEnv(t, 1)
	for _, spec := range []string{
		"warp-drive",            // unknown name
		"poisson:rate=-0.1",     // non-positive rate
		"poisson:rate=abc",      // not a number
		"poisson:rate=nan",      // NaN rate
		"poisson:rtae=0.1",      // misspelt key
		"burst:on=0",            // zero duration
		"burst:off=-5",          // negative duration
		"burst:rate=nan",        // NaN rate
		"burst:wavelength=9",    // unknown key
		"interval:period=0",     // zero period
		"interval:period=0.5",   // fractional period (would truncate to 0)
		"interval:period=200.9", // fractional period (would truncate to 200)
		"nodemap:default=-1",    // negative default
		"nodemap:default=nan",   // NaN default
		"nodemap:12=nan",        // NaN per-node rate
		"nodemap:9999=0.1",      // node out of range
		"nodemap:default=0",     // no node left generating
		"replay:path=/tmp/x",    // wrong key
		"replay",                // missing file
		"replay:file=/nonexistent/definitely-missing.csv",
	} {
		if _, err := NewSource(spec, env); err == nil {
			t.Errorf("source spec %q accepted", spec)
		}
	}
}

func TestNewPatternRejectsBadSpecs(t *testing.T) {
	tor := topology.New(8, 2)
	fs := fault.NewSet(tor)
	for _, spec := range []string{
		"warp-drive",           // unknown name
		"uniform:frac=0.5",     // uniform takes no params
		"transpose:x=1",        // transpose takes no params
		"hotspot:frac=0",       // fraction out of (0,1]
		"hotspot:frac=1.5",     // fraction out of (0,1]
		"hotspot:frac=abc",     // not a number
		"hotspot:frac=nan",     // NaN fraction
		"hotspot:node=-3",      // negative node
		"hotspot:node=64",      // out of range for 8x8
		"hotspot:spot=3",       // unknown key
		"weights:rest=-1",      // negative rest
		"weights:5=-2",         // negative weight
		"weights:5=nan",        // NaN weight
		"weights:5=1,rest=nan", // NaN rest
		"weights:99=1",         // node out of range
		"weights:rest=0",       // no positive weight anywhere
	} {
		if _, err := NewPattern(spec, tor, fs); err == nil {
			t.Errorf("pattern spec %q accepted", spec)
		}
	}
}

func TestValidateSpecsStatically(t *testing.T) {
	// Static validation catches malformed parameters without an env...
	if err := ValidateSourceSpec("burst:on=-1"); err == nil {
		t.Error("static source check missed on=-1")
	}
	if err := ValidatePatternSpec("hotspot:frac=2"); err == nil {
		t.Error("static pattern check missed frac=2")
	}
	if err := ValidateSourceSpec("poisson"); err != nil {
		t.Errorf("poisson rejected statically: %v", err)
	}
	// ...while env-dependent facts (file existence) wait for construction.
	if err := ValidateSourceSpec("replay:file=/nonexistent/x.csv"); err != nil {
		t.Errorf("static replay check should not touch the filesystem: %v", err)
	}
}

func TestSourceAliasesResolve(t *testing.T) {
	env := testEnv(t, 2)
	for alias, name := range map[string]string{
		"mmpp:on=10,off=30":                 "burst",
		"bursty":                            "burst",
		"hetero:default=0.001":              "nodemap",
		"deterministic-interval:period=100": "interval",
	} {
		src, err := NewSource(alias, env)
		if err != nil {
			t.Errorf("alias %q: %v", alias, err)
			continue
		}
		if !strings.HasPrefix(src.Name(), name) {
			t.Errorf("alias %q built %q, want %s*", alias, src.Name(), name)
		}
	}
}

func TestRegistryListings(t *testing.T) {
	wantSources := []string{"burst", "interval", "nodemap", "poisson", "replay"}
	gotSources := SourceNames()
	for _, w := range wantSources {
		found := false
		for _, g := range gotSources {
			if g == w {
				found = true
			}
		}
		if !found {
			t.Errorf("source %q not listed in %v", w, gotSources)
		}
	}
	wantPatterns := []string{"bitrev", "hotspot", "transpose", "uniform", "weights"}
	gotPatterns := PatternNames()
	for _, w := range wantPatterns {
		found := false
		for _, g := range gotPatterns {
			if g == w {
				found = true
			}
		}
		if !found {
			t.Errorf("pattern %q not listed in %v", w, gotPatterns)
		}
	}
	for _, info := range append(Sources(), Patterns()...) {
		if info.Usage == "" || info.Description == "" {
			t.Errorf("%q: empty usage or description", info.Name)
		}
	}
	if _, ok := LookupSource("mmpp"); !ok {
		t.Error("LookupSource alias mmpp failed")
	}
	if _, ok := LookupPattern("bit-reversal"); !ok {
		t.Error("LookupPattern alias bit-reversal failed")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate source registration did not panic")
		}
	}()
	RegisterSource(Info{Name: "poisson"}, nil, func(env Env, spec Spec) (Source, error) { return nil, nil })
}
