package traffic

import "fmt"

// ParetoOnOff is the heavy-tailed on/off source: each node alternates
// independently between an ON phase emitting Poisson arrivals at rate and
// a silent OFF phase, with phase durations drawn from Pareto distributions
// of shape alpha and means on / off cycles. It is the classic self-similar
// workload construction (Willinger et al.): for 1 < alpha <= 2 the phase
// durations have infinite variance, superposing many such sources yields
// burstiness at every time scale — the regime MMPP's exponential phases
// cannot reach. The long-run per-node rate is rate·on/(on+off), so the
// registry's default rate (derived from λ) keeps pareto and poisson runs
// comparable at equal offered load.
type ParetoOnOff struct {
	*schedSource
	shape, on, off, rate float64
	nodes                []paretoNode
}

// paretoNode is one node's phase-process state in continuous time: the
// current phase, the cycle it ends at, and the node's own process clock t
// (the time of its last arrival or phase change).
type paretoNode struct {
	on       bool
	t        float64
	phaseEnd float64
}

// NewParetoOnOff builds the heavy-tailed source. shape is the Pareto tail
// exponent (must exceed 1 so phase means exist; 1.5 is the self-similar
// sweet spot); on and off are mean phase durations in cycles; rate is the
// Poisson rate while ON. Each node starts ON with the stationary
// probability on/(on+off) at the beginning of a fresh phase — Pareto
// phases are not memoryless, so the start is approximately (not exactly)
// stationary, a bias that decays over the warm-up.
func NewParetoOnOff(env Env, shape, on, off, rate float64) (*ParetoOnOff, error) {
	if shape <= 1 {
		return nil, fmt.Errorf("traffic: pareto shape must be > 1 for finite mean phases, got %g", shape)
	}
	if on <= 0 || off <= 0 {
		return nil, fmt.Errorf("traffic: pareto on/off durations must be > 0, got on=%g off=%g", on, off)
	}
	if rate <= 0 {
		return nil, fmt.Errorf("traffic: pareto rate must be > 0, got %g", rate)
	}
	s, err := newSched(fmt.Sprintf("pareto(shape=%g,on=%g,off=%g,rate=%g)", shape, on, off, rate), env)
	if err != nil {
		return nil, err
	}
	s.meanRate = rate * on / (on + off) * float64(len(s.sources))
	p := &ParetoOnOff{schedSource: s, shape: shape, on: on, off: off, rate: rate}
	p.nodes = make([]paretoNode, len(s.sources))
	for i := range p.nodes {
		st := &p.nodes[i]
		st.on = s.r.Float64() < on/(on+off)
		if st.on {
			st.phaseEnd = p.phase(p.on)
		} else {
			st.phaseEnd = p.phase(p.off)
		}
	}
	s.next = p.nextArrival
	s.initHeap(func(idx int) int64 { return p.nextArrival(idx, 0) })
	return p, nil
}

// phase draws one Pareto phase duration with the given mean: the scale is
// mean·(shape-1)/shape, so E[Pareto(shape, scale)] = mean.
func (p *ParetoOnOff) phase(mean float64) float64 {
	return p.r.Pareto(p.shape, mean*(p.shape-1)/p.shape)
}

// nextArrival advances node idx's phase process to its next arrival. An
// ON-phase inter-arrival draw that overshoots the phase boundary is
// discarded and redrawn in the next ON phase — unbiased, because the
// exponential arrival process (unlike the Pareto phases) is memoryless.
func (p *ParetoOnOff) nextArrival(idx int, _ int64) int64 {
	st := &p.nodes[idx]
	for {
		if !st.on {
			st.t = st.phaseEnd
			st.on = true
			st.phaseEnd = st.t + p.phase(p.on)
			continue
		}
		gap := p.r.Exp(1 / p.rate)
		if st.t+gap <= st.phaseEnd {
			st.t += gap
			return int64(st.t)
		}
		st.t = st.phaseEnd
		st.on = false
		st.phaseEnd = st.t + p.phase(p.off)
	}
}

// --- registry wiring ---

type paretoParams struct{ shape, on, off, rate float64 }

func parsePareto(spec Spec) (paretoParams, error) {
	a := newArgs(spec)
	p := paretoParams{
		shape: a.PositiveFloat("shape", 1.5),
		on:    a.PositiveFloat("on", 50),
		off:   a.PositiveFloat("off", 200),
		rate:  a.PositiveFloat("rate", 0), // 0: derive from env.Lambda
	}
	if err := a.finish(); err != nil {
		return p, err
	}
	if p.shape <= 1 {
		return p, fmt.Errorf("traffic: spec %q: shape must be > 1, got %g", spec.String(), p.shape)
	}
	return p, nil
}

func init() {
	RegisterSource(Info{
		Name:        "pareto",
		Usage:       "pareto[:shape=<alpha>,on=<cycles>,off=<cycles>,rate=<msgs/node/cycle>]",
		Description: "heavy-tailed Pareto on/off arrivals (self-similar for shape<=2); rate defaults to λ·(on+off)/on",
		Aliases:     []string{"pareto-onoff"},
	}, func(spec Spec) error {
		_, err := parsePareto(spec)
		return err
	}, func(env Env, spec Spec) (Source, error) {
		p, err := parsePareto(spec)
		if err != nil {
			return nil, err
		}
		if p.rate == 0 {
			if env.Lambda <= 0 {
				return nil, fmt.Errorf("traffic: pareto needs rate=<λ> or a positive λ")
			}
			p.rate = env.Lambda * (p.on + p.off) / p.on
		}
		return NewParetoOnOff(env, p.shape, p.on, p.off, p.rate)
	})
}
