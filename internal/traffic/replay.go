package traffic

import (
	"fmt"
	"sort"

	"repro/internal/fault"
	"repro/internal/message"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Replay re-drives a captured workload: the exact (cycle, src, dst, len)
// records of a previous run (or a synthetic trace) are emitted at their
// recorded cycles, making the offered traffic rng-free and byte-for-byte
// repeatable across configurations — the workload analogue of replaying a
// packet capture.
type Replay struct {
	t       topology.Network
	mode    message.Mode
	recs    []trace.WorkloadRecord
	pos     int
	nextID  uint64
	created uint64
}

// NewReplay builds a replay source over the records of w. Records are
// validated against the network (endpoints in range, healthy, distinct;
// positive length) and sorted by cycle, preserving the order of records
// within a cycle.
func NewReplay(t topology.Network, f *fault.Set, w *trace.Workload, mode message.Mode) (*Replay, error) {
	if t == nil {
		return nil, fmt.Errorf("traffic: replay needs a topology")
	}
	if w == nil || len(w.Records) == 0 {
		return nil, fmt.Errorf("traffic: replay workload is empty")
	}
	total := t.Nodes()
	recs := append([]trace.WorkloadRecord(nil), w.Records...)
	for i, r := range recs {
		switch {
		case r.Cycle < 0:
			return nil, fmt.Errorf("traffic: replay record %d: negative cycle %d", i, r.Cycle)
		case int(r.Src) < 0 || int(r.Src) >= total || int(r.Dst) < 0 || int(r.Dst) >= total:
			return nil, fmt.Errorf("traffic: replay record %d: endpoints %d->%d out of range [0,%d)", i, r.Src, r.Dst, total)
		case r.Src == r.Dst:
			return nil, fmt.Errorf("traffic: replay record %d: self-addressed message at node %d", i, r.Src)
		case r.Len < 1:
			return nil, fmt.Errorf("traffic: replay record %d: message length %d < 1", i, r.Len)
		}
		if f != nil && (f.NodeFaulty(r.Src) || f.NodeFaulty(r.Dst)) {
			return nil, fmt.Errorf("traffic: replay record %d: endpoint of %d->%d is faulty", i, r.Src, r.Dst)
		}
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Cycle < recs[j].Cycle })
	return &Replay{t: t, mode: mode, recs: recs}, nil
}

// Name implements Source.
func (rp *Replay) Name() string { return "replay" }

// Created returns the number of messages emitted so far.
func (rp *Replay) Created() uint64 { return rp.created }

// Remaining returns the number of records not yet emitted.
func (rp *Replay) Remaining() int { return len(rp.recs) - rp.pos }

// MeanRate implements MeanRater: records per cycle over the captured span,
// so the run bound scales with the trace's actual length rather than λ.
func (rp *Replay) MeanRate() float64 {
	span := rp.recs[len(rp.recs)-1].Cycle
	if span < 1 {
		span = 1
	}
	return float64(len(rp.recs)) / float64(span)
}

// Poll implements Source: every record with a cycle <= now that has not
// been emitted yet becomes a message created at now.
func (rp *Replay) Poll(now int64) []*message.Message {
	var out []*message.Message
	for rp.pos < len(rp.recs) && rp.recs[rp.pos].Cycle <= now {
		r := rp.recs[rp.pos]
		rp.pos++
		m := message.New(rp.nextID, r.Src, r.Dst, r.Len, rp.t.N(), rp.mode, now)
		rp.nextID++
		rp.created++
		out = append(out, m)
	}
	return out
}

// Capture wraps a Source and records every message it emits into a
// trace.Workload, which can later be written out and re-driven by Replay.
type Capture struct {
	inner Source
	w     *trace.Workload
}

// NewCapture wraps src so its output is appended to w.
func NewCapture(src Source, w *trace.Workload) *Capture {
	if src == nil || w == nil {
		panic("traffic: NewCapture needs a source and a workload")
	}
	return &Capture{inner: src, w: w}
}

// Name implements Source.
func (c *Capture) Name() string { return c.inner.Name() }

// MeanRate implements MeanRater by delegating to the wrapped source;
// 0 when the source does not report a rate.
func (c *Capture) MeanRate() float64 {
	if mr, ok := c.inner.(MeanRater); ok {
		return mr.MeanRate()
	}
	return 0
}

// Poll implements Source.
func (c *Capture) Poll(now int64) []*message.Message {
	out := c.inner.Poll(now)
	for _, m := range out {
		c.w.Append(trace.WorkloadRecord{Cycle: now, Src: m.Src, Dst: m.Dst, Len: m.Len})
	}
	return out
}
