package traffic

import (
	"math"
	"math/bits"
	"testing"

	"repro/internal/fault"
	"repro/internal/rng"
	"repro/internal/topology"
)

func TestBitReversalPermutation(t *testing.T) {
	tor := topology.New(8, 2) // 64 nodes, 6 bits
	fs := fault.NewSet(tor)
	p, err := NewPattern("bitrev", tor, fs)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	for src := 0; src < tor.Nodes(); src++ {
		want := topology.NodeID(bits.Reverse64(uint64(src)) >> (64 - 6))
		got := p.Pick(topology.NodeID(src), r)
		if want != topology.NodeID(src) && got != want {
			t.Fatalf("bitrev(%d) = %d, want %d", src, got, want)
		}
		if got == topology.NodeID(src) {
			t.Fatalf("bitrev picked the source %d", src)
		}
	}
}

func TestBitReversalFallsBackOnFaulty(t *testing.T) {
	tor := topology.New(8, 2)
	fs := fault.NewSet(tor)
	src := topology.NodeID(1) // reverses to 32
	fs.MarkNode(topology.NodeID(32))
	p, err := NewPattern("bitrev", tor, fs)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	for i := 0; i < 200; i++ {
		dst := p.Pick(src, r)
		if dst == src || fs.NodeFaulty(dst) {
			t.Fatal("bitrev fallback picked source or faulty node")
		}
	}
}

func TestBitReversalNeedsPowerOfTwo(t *testing.T) {
	tor := topology.New(6, 2) // 36 nodes
	if _, err := NewPattern("bitrev", tor, fault.NewSet(tor)); err == nil {
		t.Fatal("non-power-of-two node count accepted")
	}
}

func TestWeightedRespectsWeights(t *testing.T) {
	tor := topology.New(4, 2)
	fs := fault.NewSet(tor)
	// Node 3 three times the weight of node 9; nothing else.
	p, err := NewPattern("weights:3=3,9=1", tor, fs)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	const draws = 60_000
	counts := map[topology.NodeID]int{}
	for i := 0; i < draws; i++ {
		counts[p.Pick(0, r)]++
	}
	if len(counts) != 2 {
		t.Fatalf("weighted drew outside the map: %v", counts)
	}
	ratio := float64(counts[3]) / float64(counts[9])
	if math.Abs(ratio-3) > 0.25 {
		t.Fatalf("weight ratio %.2f, want ~3", ratio)
	}
}

func TestWeightedRestAndSourceExclusion(t *testing.T) {
	tor := topology.New(4, 2)
	fs := fault.NewSet(tor)
	p, err := NewPattern("weights:5=10,rest=1", tor, fs)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	hits := 0
	const draws = 30_000
	for i := 0; i < draws; i++ {
		dst := p.Pick(5, r) // source is the hot node itself
		if dst == 5 {
			t.Fatal("weighted picked the source")
		}
		hits++
	}
	if hits != draws {
		t.Fatal("draws lost")
	}
	// With src=5 excluded, the remaining 15 nodes are uniform-ish.
	src := topology.NodeID(0)
	hot := 0
	for i := 0; i < draws; i++ {
		if p.Pick(src, r) == 5 {
			hot++
		}
	}
	want := 10.0 / 25.0 // weight 10 of total 10 + 15·1
	got := float64(hot) / draws
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("hot fraction %.3f, want ~%.3f", got, want)
	}
}

func TestHotspotNodeParam(t *testing.T) {
	tor := topology.New(8, 2)
	fs := fault.NewSet(tor)
	p, err := NewPattern("hotspot:frac=0.5,node=12", tor, fs)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	hits := 0
	const draws = 40_000
	for i := 0; i < draws; i++ {
		if p.Pick(0, r) == 12 {
			hits++
		}
	}
	got := float64(hits) / draws
	want := 0.5 + 0.5/63
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("hotspot fraction at node 12 = %.3f, want ~%.3f", got, want)
	}
}

func TestHotspotDefaultNodeIsMiddleHealthy(t *testing.T) {
	tor := topology.New(8, 2)
	fs := fault.NewSet(tor)
	p, err := NewPattern("hotspot:frac=1", tor, fs)
	if err != nil {
		t.Fatal(err)
	}
	healthy := fs.HealthyNodes()
	want := healthy[len(healthy)/2]
	r := rng.New(6)
	src := topology.NodeID(0)
	if got := p.Pick(src, r); got != want {
		t.Fatalf("default hotspot node %d, want %d (middle healthy)", got, want)
	}
}

func TestHotspotRejectsFaultyNode(t *testing.T) {
	tor := topology.New(8, 2)
	fs := fault.NewSet(tor)
	fs.MarkNode(12)
	if _, err := NewPattern("hotspot:node=12", tor, fs); err == nil {
		t.Fatal("faulty hotspot node accepted")
	}
}
