package traffic

import (
	"math"
	"testing"

	"repro/internal/fault"
	"repro/internal/message"
	"repro/internal/rng"
	"repro/internal/topology"
)

func TestUniformNeverSelfOrFaulty(t *testing.T) {
	tor := topology.New(8, 2)
	fs, err := fault.Random(tor, 5, rng.New(1), fault.DefaultRandomOptions())
	if err != nil {
		t.Fatal(err)
	}
	u := NewUniform(fs)
	r := rng.New(2)
	healthy := fs.HealthyNodes()
	for i := 0; i < 5000; i++ {
		src := healthy[r.Intn(len(healthy))]
		dst := u.Pick(src, r)
		if dst == src {
			t.Fatal("uniform picked the source")
		}
		if fs.NodeFaulty(dst) {
			t.Fatal("uniform picked a faulty destination")
		}
	}
}

func TestUniformIsUniform(t *testing.T) {
	tor := topology.New(4, 2) // 16 nodes
	fs := fault.NewSet(tor)
	u := NewUniform(fs)
	r := rng.New(3)
	src := topology.NodeID(5)
	const draws = 150000
	counts := make(map[topology.NodeID]int)
	for i := 0; i < draws; i++ {
		counts[u.Pick(src, r)]++
	}
	want := float64(draws) / 15
	for id, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("node %d: %d draws, expected ~%.0f", id, c, want)
		}
	}
	if counts[src] != 0 {
		t.Error("source drawn")
	}
}

func TestTranspose(t *testing.T) {
	tor := topology.New(8, 2)
	fs := fault.NewSet(tor)
	p := NewTranspose(tor, fs)
	r := rng.New(4)
	src := tor.FromCoords([]int{2, 5})
	dst := p.Pick(src, r)
	if got := tor.Coords(dst); got[0] != 5 || got[1] != 2 {
		t.Fatalf("transpose of (2,5) = %v", got)
	}
	// Self-transpose (diagonal) falls back to uniform, never self.
	diag := tor.FromCoords([]int{3, 3})
	for i := 0; i < 100; i++ {
		if p.Pick(diag, r) == diag {
			t.Fatal("diagonal transposed to itself")
		}
	}
}

func TestTransposeRotatesHigherDims(t *testing.T) {
	tor := topology.New(4, 3)
	fs := fault.NewSet(tor)
	p := NewTranspose(tor, fs)
	src := tor.FromCoords([]int{1, 2, 3})
	dst := p.Pick(src, rng.New(5))
	if got := tor.Coords(dst); got[0] != 2 || got[1] != 3 || got[2] != 1 {
		t.Fatalf("rotation of (1,2,3) = %v", got)
	}
}

func TestHotspotFraction(t *testing.T) {
	tor := topology.New(8, 2)
	fs := fault.NewSet(tor)
	spot := tor.FromCoords([]int{4, 4})
	p := NewHotspot(NewUniform(fs), spot, 0.3, fs)
	r := rng.New(6)
	src := topology.NodeID(0)
	hits := 0
	const draws = 50000
	for i := 0; i < draws; i++ {
		if p.Pick(src, r) == spot {
			hits++
		}
	}
	got := float64(hits) / draws
	// 0.3 direct + ~1/63 of the uniform remainder.
	want := 0.3 + 0.7/63
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("hotspot fraction = %.3f, want ~%.3f", got, want)
	}
}

func TestGeneratorRate(t *testing.T) {
	tor := topology.New(8, 2)
	fs := fault.NewSet(tor)
	u := NewUniform(fs)
	lambda := 0.01
	g := NewGenerator(tor, fs.HealthyNodes(), lambda, 32, message.Deterministic, u, rng.New(7))
	const horizon = 20000
	var total int
	for now := int64(1); now <= horizon; now++ {
		total += len(g.Poll(now))
	}
	want := lambda * float64(tor.Nodes()) * horizon
	if math.Abs(float64(total)-want)/want > 0.05 {
		t.Fatalf("generated %d messages, want ~%.0f (±5%%)", total, want)
	}
	if g.Created() != uint64(total) {
		t.Fatal("Created() mismatch")
	}
}

func TestGeneratorMonotoneAndComplete(t *testing.T) {
	tor := topology.New(4, 2)
	fs := fault.NewSet(tor)
	g := NewGenerator(tor, fs.HealthyNodes(), 0.05, 8, message.Adaptive, NewUniform(fs), rng.New(8))
	last := int64(0)
	ids := map[uint64]bool{}
	for now := int64(1); now <= 5000; now++ {
		for _, m := range g.Poll(now) {
			if m.CreatedAt != now {
				t.Fatalf("message stamped %d at cycle %d", m.CreatedAt, now)
			}
			if m.CreatedAt < last {
				t.Fatal("non-monotone creation times")
			}
			last = m.CreatedAt
			if ids[m.ID] {
				t.Fatal("duplicate message ID")
			}
			ids[m.ID] = true
			if m.Len != 8 || m.Mode != message.Adaptive {
				t.Fatal("message parameters wrong")
			}
			if m.Src == m.Dst {
				t.Fatal("self-addressed message")
			}
		}
	}
	if len(ids) == 0 {
		t.Fatal("no messages generated")
	}
}

func TestGeneratorSourcesOnly(t *testing.T) {
	tor := topology.New(4, 2)
	fs := fault.NewSet(tor)
	sources := []topology.NodeID{1, 2}
	g := NewGenerator(tor, sources, 0.1, 4, message.Deterministic, NewUniform(fs), rng.New(9))
	for now := int64(1); now <= 2000; now++ {
		for _, m := range g.Poll(now) {
			if m.Src != 1 && m.Src != 2 {
				t.Fatalf("message from non-source node %d", m.Src)
			}
		}
	}
}

func TestGeneratorPanicsOnBadParams(t *testing.T) {
	tor := topology.New(4, 2)
	fs := fault.NewSet(tor)
	u := NewUniform(fs)
	for _, fn := range []func(){
		func() { NewGenerator(tor, fs.HealthyNodes(), 0, 8, message.Deterministic, u, rng.New(1)) },
		func() { NewGenerator(tor, fs.HealthyNodes(), 0.1, 0, message.Deterministic, u, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad generator params did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestPatternNames(t *testing.T) {
	tor := topology.New(4, 2)
	fs := fault.NewSet(tor)
	if NewUniform(fs).Name() != "uniform" {
		t.Error("uniform name")
	}
	if NewTranspose(tor, fs).Name() != "transpose" {
		t.Error("transpose name")
	}
	if NewHotspot(NewUniform(fs), 0, 0.1, fs).Name() == "" {
		t.Error("hotspot name empty")
	}
}
