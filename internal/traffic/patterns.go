package traffic

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/fault"
	"repro/internal/rng"
	"repro/internal/topology"
)

// BitReversal sends node i to the node whose index is i's bit string
// reversed — the classic FFT-communication permutation, adversarial for
// dimension-order routing. It requires a power-of-two node count; faulty
// or self destinations fall back to uniform.
type BitReversal struct {
	f        *fault.Set
	fallback *Uniform
	bits     int
}

// NewBitReversal builds the bit-reversal pattern.
func NewBitReversal(t topology.Network, f *fault.Set) (*BitReversal, error) {
	n := t.Nodes()
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("traffic: bitrev needs a power-of-two node count, got %d", n)
	}
	return &BitReversal{f: f, fallback: NewUniform(f), bits: bits.TrailingZeros(uint(n))}, nil
}

// Name implements Pattern.
func (p *BitReversal) Name() string { return "bitrev" }

// Pick implements Pattern.
func (p *BitReversal) Pick(src topology.NodeID, r *rng.Stream) topology.NodeID {
	dst := topology.NodeID(bits.Reverse64(uint64(src)) >> (64 - p.bits))
	if dst == src || p.f.NodeFaulty(dst) {
		return p.fallback.Pick(src, r)
	}
	return dst
}

// Weighted draws destinations from an explicit per-node weight map — the
// fully general spatial distribution (skewed servers, multi-hotspot,
// rack-local mixes). Unlisted nodes receive the rest weight. Draws landing
// on the source are redrawn; a source holding all the weight falls back to
// uniform.
type Weighted struct {
	f        *fault.Set
	nodes    []topology.NodeID // healthy nodes with weight > 0, ascending
	cum      []float64         // cumulative weights over nodes
	weight   map[topology.NodeID]float64
	total    float64
	fallback *Uniform
}

// NewWeighted builds the weighted pattern. weights maps node id -> weight
// (>= 0); rest is the weight of unlisted healthy nodes.
func NewWeighted(t topology.Network, f *fault.Set, weights map[int]float64, rest float64) (*Weighted, error) {
	if rest < 0 {
		return nil, fmt.Errorf("traffic: weights rest must be >= 0, got %g", rest)
	}
	total := t.Nodes()
	ids := make([]int, 0, len(weights))
	for id := range weights {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if id < 0 || id >= total {
			return nil, fmt.Errorf("traffic: weights node %d out of range [0,%d)", id, total)
		}
		if weights[id] < 0 {
			return nil, fmt.Errorf("traffic: weights node %d: weight must be >= 0, got %g", id, weights[id])
		}
		if weights[id] > 0 && f.NodeFaulty(topology.NodeID(id)) {
			return nil, fmt.Errorf("traffic: weights node %d is faulty", id)
		}
	}
	w := &Weighted{f: f, weight: map[topology.NodeID]float64{}, fallback: NewUniform(f)}
	for _, id := range f.HealthyNodes() {
		wt := rest
		if v, ok := weights[int(id)]; ok {
			wt = v
		}
		if wt > 0 {
			w.nodes = append(w.nodes, id)
			w.total += wt
			w.cum = append(w.cum, w.total)
			w.weight[id] = wt
		}
	}
	if len(w.nodes) == 0 {
		return nil, fmt.Errorf("traffic: weights leave no healthy node with positive weight")
	}
	return w, nil
}

// Name implements Pattern.
func (w *Weighted) Name() string { return "weights" }

// Pick implements Pattern.
func (w *Weighted) Pick(src topology.NodeID, r *rng.Stream) topology.NodeID {
	if w.total-w.weight[src] <= 0 {
		// src holds all the weight; no legal weighted draw exists.
		return w.fallback.Pick(src, r)
	}
	for tries := 0; tries < 64; tries++ {
		x := r.Float64() * w.total
		i := sort.SearchFloat64s(w.cum, x)
		if i >= len(w.nodes) {
			i = len(w.nodes) - 1
		}
		if dst := w.nodes[i]; dst != src {
			return dst
		}
	}
	return w.fallback.Pick(src, r)
}

// --- registry wiring ---

func noParams(spec Spec) error { return newArgs(spec).finish() }

type hotspotParams struct {
	frac float64
	node int // -1: default (middle healthy node)
}

func parseHotspot(spec Spec) (hotspotParams, error) {
	a := newArgs(spec)
	p := hotspotParams{frac: a.Fraction("frac", 0.1), node: a.Int("node", -1)}
	if err := a.finish(); err != nil {
		return p, err
	}
	if _, ok := spec.Get("node"); ok && p.node < 0 {
		return p, fmt.Errorf("traffic: spec %q: node must be >= 0, got %d", spec.String(), p.node)
	}
	return p, nil
}

type weightsParams struct {
	weights map[int]float64
	rest    float64
}

func parseWeights(spec Spec) (weightsParams, error) {
	a := newArgs(spec)
	p := weightsParams{weights: a.NodeFloats(), rest: a.Float("rest", 0)}
	if err := a.finish(); err != nil {
		return p, err
	}
	if !(p.rest >= 0) { // negated to reject NaN
		return p, fmt.Errorf("traffic: spec %q: rest must be >= 0, got %g", spec.String(), p.rest)
	}
	if len(p.weights) == 0 && p.rest == 0 {
		return p, fmt.Errorf("traffic: spec %q: weights needs at least one <node>=<weight> entry or rest=<weight>", spec.String())
	}
	return p, nil
}

func init() {
	RegisterPattern(Info{
		Name:        "uniform",
		Usage:       "uniform",
		Description: "uniformly random healthy destination != source (the paper's workload)",
	}, noParams, func(t topology.Network, f *fault.Set, spec Spec) (Pattern, error) {
		if err := noParams(spec); err != nil {
			return nil, err
		}
		return NewUniform(f), nil
	})

	RegisterPattern(Info{
		Name:        "transpose",
		Usage:       "transpose",
		Description: "coordinate rotation (a0,...,an-1) -> (a1,...,a0); adversarial for e-cube",
	}, noParams, func(t topology.Network, f *fault.Set, spec Spec) (Pattern, error) {
		if err := noParams(spec); err != nil {
			return nil, err
		}
		return NewTranspose(t, f), nil
	})

	RegisterPattern(Info{
		Name:        "hotspot",
		Usage:       "hotspot[:frac=<(0,1]>,node=<id>]",
		Description: "uniform mixed with a fixed hot node (default: middle healthy node, frac 0.1)",
		NodeIDKeys:  []string{"node"},
	}, func(spec Spec) error {
		_, err := parseHotspot(spec)
		return err
	}, func(t topology.Network, f *fault.Set, spec Spec) (Pattern, error) {
		p, err := parseHotspot(spec)
		if err != nil {
			return nil, err
		}
		healthy := f.HealthyNodes()
		if len(healthy) == 0 {
			return nil, fmt.Errorf("traffic: hotspot needs at least one healthy node")
		}
		spot := healthy[len(healthy)/2]
		if p.node >= 0 {
			if p.node >= t.Nodes() {
				return nil, fmt.Errorf("traffic: hotspot node %d out of range [0,%d)", p.node, t.Nodes())
			}
			spot = topology.NodeID(p.node)
			if f.NodeFaulty(spot) {
				return nil, fmt.Errorf("traffic: hotspot node %d is faulty", p.node)
			}
		}
		return NewHotspot(NewUniform(f), spot, p.frac, f), nil
	})

	RegisterPattern(Info{
		Name:        "bitrev",
		Usage:       "bitrev",
		Description: "bit-reversal permutation (needs a power-of-two node count)",
		Aliases:     []string{"bit-reversal"},
	}, noParams, func(t topology.Network, f *fault.Set, spec Spec) (Pattern, error) {
		if err := noParams(spec); err != nil {
			return nil, err
		}
		return NewBitReversal(t, f)
	})

	RegisterPattern(Info{
		Name:        "weights",
		Usage:       "weights:<node>=<weight>,...[,rest=<weight>]",
		Description: "per-node weighted destination map; rest weights the unlisted nodes",
		Aliases:     []string{"weighted"},
	}, func(spec Spec) error {
		_, err := parseWeights(spec)
		return err
	}, func(t topology.Network, f *fault.Set, spec Spec) (Pattern, error) {
		p, err := parseWeights(spec)
		if err != nil {
			return nil, err
		}
		return NewWeighted(t, f, p.weights, p.rest)
	})
}
