package traffic

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/fault"
	"repro/internal/message"
	"repro/internal/rng"
	"repro/internal/topology"
)

// Source is the pluggable temporal side of the workload: an arrival process
// producing the messages generated at (or before) each polled cycle. The
// engine polls it once per cycle; implementations pre-schedule arrivals so
// Poll cost is proportional to the number of arrivals, not nodes.
type Source interface {
	// Name identifies the configured source in reports.
	Name() string
	// Poll returns the messages generated at cycle now (creation times
	// <= now not returned before). Implementations must return them in a
	// deterministic order for a fixed rng seed. The returned slice is only
	// valid until the next Poll call — implementations may reuse it.
	Poll(now int64) []*message.Message
}

// Env bundles everything a source factory may need: the bound network, the
// generating nodes, the configured default rate and message shape, the
// spatial destination pattern, and the rng stream the source owns.
type Env struct {
	T topology.Network
	F *fault.Set
	// Sources are the traffic-generating nodes (normally the healthy set).
	Sources []topology.NodeID
	// Lambda is the default per-node rate in messages/node/cycle; sources
	// with their own rate parameters treat it as the offered-load target.
	Lambda float64
	// MsgLen is the fixed message length in flits.
	MsgLen int
	// Mode is the routing discipline injected headers start in.
	Mode message.Mode
	// Pattern picks destinations for sources that generate (rather than
	// replay) traffic.
	Pattern Pattern
	// R is the rng stream owned by the source.
	R *rng.Stream
	// Pool, when non-nil, is the engine's message pool: generating sources
	// allocate through it so delivered messages recycle (see
	// network.Params.Pool — the two must be the same pool). Nil keeps
	// allocations on the heap; the engine then Adopt-registers each polled
	// message.
	Pool *message.Pool
}

// check validates the parts of the environment every generating source
// needs; replay-style sources validate their own inputs.
func (e Env) check() error {
	switch {
	case e.T == nil:
		return fmt.Errorf("traffic: source env needs a topology")
	case len(e.Sources) == 0:
		return fmt.Errorf("traffic: source env has no generating nodes")
	case e.MsgLen < 1:
		return fmt.Errorf("traffic: message length must be >= 1, got %d", e.MsgLen)
	case e.Pattern == nil:
		return fmt.Errorf("traffic: source env needs a destination pattern")
	case e.R == nil:
		return fmt.Errorf("traffic: source env needs an rng stream")
	}
	return nil
}

// MeanRater is implemented by sources that know their long-run aggregate
// arrival rate (messages/cycle summed over all generating nodes). The run
// layer uses it to derive its default cycle bound, so a source whose actual
// rate differs from the configured λ (nodemap, explicit rate= or period=
// parameters, replay) is not cut off spuriously.
type MeanRater interface {
	MeanRate() float64
}

// SourceFactory builds a configured Source from its parsed spec.
type SourceFactory func(env Env, spec Spec) (Source, error)

// PatternFactory builds a configured Pattern from its parsed spec.
type PatternFactory func(t topology.Network, f *fault.Set, spec Spec) (Pattern, error)

// Info describes a registered pattern or source for listings and
// validation.
type Info struct {
	// Name is the primary registry key.
	Name string
	// Usage is the spec grammar, e.g. "burst:on=<cycles>,off=<cycles>".
	Usage string
	// Description is a one-line summary for -list style output.
	Description string
	// Aliases are additional keys resolving to the same factory.
	Aliases []string
	// NodeIDKeys lists parameter keys whose values are node ids (e.g.
	// hotspot's "node"), so callers that know the network size can
	// range-check them statically alongside the decimal per-node keys.
	NodeIDKeys []string
}

// entry pairs an Info with its factory and static parameter check.
type entry[F any] struct {
	info    Info
	check   func(Spec) error
	factory F
}

// table is a string-keyed registry shared by patterns and sources,
// mirroring the routing-algorithm registry.
type table[F any] struct {
	kind    string
	mu      sync.RWMutex
	m       map[string]*entry[F]
	primary []string
}

func (tb *table[F]) register(info Info, check func(Spec) error, factory F) {
	if info.Name == "" {
		panic(fmt.Sprintf("traffic: Register%s with empty name", tb.kind))
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	e := &entry[F]{info: info, check: check, factory: factory}
	for _, key := range append([]string{info.Name}, info.Aliases...) {
		if _, dup := tb.m[key]; dup {
			panic(fmt.Sprintf("traffic: duplicate registration of %s %q", tb.kind, key))
		}
		tb.m[key] = e
	}
	tb.primary = append(tb.primary, info.Name)
}

func (tb *table[F]) lookup(name string) (*entry[F], bool) {
	tb.mu.RLock()
	defer tb.mu.RUnlock()
	e, ok := tb.m[name]
	return e, ok
}

func (tb *table[F]) names() []string {
	tb.mu.RLock()
	out := append([]string(nil), tb.primary...)
	tb.mu.RUnlock()
	sort.Strings(out)
	return out
}

func (tb *table[F]) infos() []Info {
	tb.mu.RLock()
	out := make([]Info, 0, len(tb.primary))
	for _, name := range tb.primary {
		out = append(out, tb.m[name].info)
	}
	tb.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// resolve parses a spec string and finds its registry entry.
func (tb *table[F]) resolve(specStr string) (*entry[F], Spec, error) {
	spec, err := ParseSpec(specStr)
	if err != nil {
		return nil, Spec{}, err
	}
	e, ok := tb.lookup(spec.Name)
	if !ok {
		return nil, Spec{}, fmt.Errorf("traffic: unknown %s %q (registered: %v)", tb.kind, spec.Name, tb.names())
	}
	return e, spec, nil
}

// check statically validates a spec string — parseable, registered name,
// well-formed parameters — and returns the parsed Spec with the resolved
// entry's Info so callers can continue without re-parsing. Environment-
// dependent checks (node healthiness, replay file contents) happen at
// construction.
func (tb *table[F]) check(specStr string) (Spec, Info, error) {
	e, spec, err := tb.resolve(specStr)
	if err != nil {
		return Spec{}, Info{}, err
	}
	if e.check != nil {
		if err := e.check(spec); err != nil {
			return Spec{}, Info{}, err
		}
	}
	return spec, e.info, nil
}

var (
	patternReg = &table[PatternFactory]{kind: "pattern", m: map[string]*entry[PatternFactory]{}}
	sourceReg  = &table[SourceFactory]{kind: "source", m: map[string]*entry[SourceFactory]{}}
)

// RegisterPattern adds a destination pattern to the registry under
// info.Name and every alias. check statically validates a parsed spec's
// parameters (nil for none). Panics on duplicates — registration happens in
// init functions where a panic is a build-time bug.
func RegisterPattern(info Info, check func(Spec) error, factory PatternFactory) {
	if factory == nil {
		panic(fmt.Sprintf("traffic: RegisterPattern(%q) with nil factory", info.Name))
	}
	patternReg.register(info, check, factory)
}

// RegisterSource adds an arrival-process source to the registry under
// info.Name and every alias; see RegisterPattern.
func RegisterSource(info Info, check func(Spec) error, factory SourceFactory) {
	if factory == nil {
		panic(fmt.Sprintf("traffic: RegisterSource(%q) with nil factory", info.Name))
	}
	sourceReg.register(info, check, factory)
}

// NewPattern builds the destination pattern described by a spec string
// ("uniform", "hotspot:frac=0.1,node=12", ...) over the given network.
func NewPattern(specStr string, t topology.Network, f *fault.Set) (Pattern, error) {
	e, spec, err := patternReg.resolve(specStr)
	if err != nil {
		return nil, err
	}
	return e.factory(t, f, spec)
}

// NewSource builds the arrival-process source described by a spec string
// ("poisson", "burst:on=50,off=200,rate=0.02", "replay:file=w.csv", ...).
func NewSource(specStr string, env Env) (Source, error) {
	e, spec, err := sourceReg.resolve(specStr)
	if err != nil {
		return nil, err
	}
	return e.factory(env, spec)
}

// CheckPatternSpec statically checks a pattern spec string and returns the
// parsed Spec and the resolved registry Info.
func CheckPatternSpec(specStr string) (Spec, Info, error) { return patternReg.check(specStr) }

// CheckSourceSpec statically checks a source spec string and returns the
// parsed Spec and the resolved registry Info.
func CheckSourceSpec(specStr string) (Spec, Info, error) { return sourceReg.check(specStr) }

// ValidatePatternSpec statically checks a pattern spec string.
func ValidatePatternSpec(specStr string) error {
	_, _, err := patternReg.check(specStr)
	return err
}

// ValidateSourceSpec statically checks a source spec string.
func ValidateSourceSpec(specStr string) error {
	_, _, err := sourceReg.check(specStr)
	return err
}

// LookupPattern returns the Info of a registered pattern (primary or alias).
func LookupPattern(name string) (Info, bool) {
	e, ok := patternReg.lookup(name)
	if !ok {
		return Info{}, false
	}
	return e.info, true
}

// LookupSource returns the Info of a registered source (primary or alias).
func LookupSource(name string) (Info, bool) {
	e, ok := sourceReg.lookup(name)
	if !ok {
		return Info{}, false
	}
	return e.info, true
}

// Patterns returns the Info of every registered pattern, sorted by name.
func Patterns() []Info { return patternReg.infos() }

// Sources returns the Info of every registered source, sorted by name.
func Sources() []Info { return sourceReg.infos() }

// PatternNames returns the primary registered pattern names, sorted.
func PatternNames() []string { return patternReg.names() }

// SourceNames returns the primary registered source names, sorted.
func SourceNames() []string { return sourceReg.names() }
