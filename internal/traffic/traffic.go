// Package traffic generates the simulator's workloads. A workload is the
// product of two pluggable, string-keyed pieces mirroring the routing
// registry:
//
//   - a Pattern — the spatial destination distribution (uniform, transpose,
//     hotspot, bit-reversal, per-node weighted map), and
//   - a Source — the temporal arrival process (poisson, deterministic
//     interval, MMPP on/off bursty, per-node heterogeneous rates, and
//     trace replay of captured (cycle,src,dst,len) records).
//
// Both sides parse from specs like "hotspot:frac=0.1,node=12" and
// "burst:on=50,off=200,rate=0.02" (see ParseSpec) and are built through
// NewPattern/NewSource; new patterns and sources plug in with a
// RegisterPattern/RegisterSource call.
//
// The paper's evaluation workload (§5.1) is the default pairing: every
// healthy node generates messages independently following a Poisson process
// with mean rate λ messages/node/cycle, fixed message length, uniformly
// random destinations.
package traffic

import (
	"container/heap"
	"fmt"

	"repro/internal/fault"
	"repro/internal/message"
	"repro/internal/rng"
	"repro/internal/topology"
)

// Pattern selects a destination for a message generated at src. Pick must
// return a healthy node different from src; patterns are constructed with
// the fault configuration so they can honour that contract.
type Pattern interface {
	Name() string
	Pick(src topology.NodeID, r *rng.Stream) topology.NodeID
}

// Uniform picks destinations uniformly at random among healthy nodes other
// than the source — the paper's workload.
type Uniform struct {
	healthy []topology.NodeID
	index   map[topology.NodeID]int
}

// NewUniform builds the uniform pattern over the healthy nodes of f.
func NewUniform(f *fault.Set) *Uniform {
	h := f.HealthyNodes()
	idx := make(map[topology.NodeID]int, len(h))
	for i, id := range h {
		idx[id] = i
	}
	return &Uniform{healthy: h, index: idx}
}

// Name implements Pattern.
func (u *Uniform) Name() string { return "uniform" }

// Pick implements Pattern. It draws from healthy nodes excluding src by
// remapping the last element onto src's slot, keeping the draw single-shot
// and uniform.
func (u *Uniform) Pick(src topology.NodeID, r *rng.Stream) topology.NodeID {
	n := len(u.healthy)
	si, srcHealthy := u.index[src]
	if !srcHealthy {
		return u.healthy[r.Intn(n)]
	}
	j := r.Intn(n - 1)
	if j == si {
		j = n - 1
	}
	return u.healthy[j]
}

// Transpose sends (a0, a1, ..., a(n-1)) to (a1, ..., a(n-1), a0): the
// classic adversarial permutation generalised to n dimensions. Faulty or
// self destinations fall back to uniform.
type Transpose struct {
	t        topology.Network
	f        *fault.Set
	fallback *Uniform
}

// NewTranspose builds the transpose pattern.
func NewTranspose(t topology.Network, f *fault.Set) *Transpose {
	return &Transpose{t: t, f: f, fallback: NewUniform(f)}
}

// Name implements Pattern.
func (p *Transpose) Name() string { return "transpose" }

// Pick implements Pattern.
func (p *Transpose) Pick(src topology.NodeID, r *rng.Stream) topology.NodeID {
	c := p.t.Coords(src)
	rot := make([]int, len(c))
	copy(rot, c[1:])
	rot[len(c)-1] = c[0]
	dst := p.t.FromCoords(rot)
	if dst == src || p.f.NodeFaulty(dst) {
		return p.fallback.Pick(src, r)
	}
	return dst
}

// Hotspot mixes a base pattern with a fixed hot node: with probability Frac
// the destination is the hotspot (unless it equals src or is faulty).
type Hotspot struct {
	Base Pattern
	Spot topology.NodeID
	Frac float64
	f    *fault.Set
}

// NewHotspot builds a hotspot pattern over base.
func NewHotspot(base Pattern, spot topology.NodeID, frac float64, f *fault.Set) *Hotspot {
	return &Hotspot{Base: base, Spot: spot, Frac: frac, f: f}
}

// Name implements Pattern.
func (p *Hotspot) Name() string { return fmt.Sprintf("hotspot(%d,%.2f)", p.Spot, p.Frac) }

// Pick implements Pattern.
func (p *Hotspot) Pick(src topology.NodeID, r *rng.Stream) topology.NodeID {
	if r.Float64() < p.Frac && p.Spot != src && !p.f.NodeFaulty(p.Spot) {
		return p.Spot
	}
	return p.Base.Pick(src, r)
}

// arrival is a scheduled message generation event at a node. idx is the
// node's position in the source's generating-node slice (used by sources
// with per-node state; the Poisson generator ignores it).
type arrival struct {
	at   int64
	node topology.NodeID
	idx  int
}

// arrivalHeap is a min-heap of scheduled arrivals ordered by cycle; the
// exported-looking methods below are the container/heap.Interface
// contract plus a non-popping Peek.
type arrivalHeap []arrival

// Len implements heap.Interface.
func (h arrivalHeap) Len() int { return len(h) }

// Less implements heap.Interface: earlier arrivals first.
func (h arrivalHeap) Less(i, j int) bool { return h[i].at < h[j].at }

// Swap implements heap.Interface.
func (h arrivalHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

// Push implements heap.Interface; use heap.Push, never call directly.
func (h *arrivalHeap) Push(x any) { *h = append(*h, x.(arrival)) }

// Pop implements heap.Interface; use heap.Pop, never call directly.
func (h *arrivalHeap) Pop() any { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// Peek returns the earliest scheduled arrival without removing it.
func (h arrivalHeap) Peek() (arrival, bool) {
	if len(h) == 0 {
		return arrival{}, false
	}
	return h[0], true
}

// The unexported push/pop/init operations below are the engine-facing heap
// interface: container/heap's algorithms restated directly over the slice,
// because heap.Push/heap.Pop box every arrival through an interface value —
// one allocation per scheduled event, which is exactly the hot path the
// zero-allocation Step contract forbids. They reproduce container/heap's
// sift order operation for operation, so a source switching from heap.* to
// these emits bit-identical arrival sequences; the legacy Generator stays
// on container/heap as the reference, and the network package's
// TestRegistrySourceMatchesLegacyGenerator holds the two equal.

// push inserts an arrival, mirroring heap.Push.
func (h *arrivalHeap) push(a arrival) {
	*h = append(*h, a)
	h.up(len(*h) - 1)
}

// pop removes and returns the earliest arrival, mirroring heap.Pop.
func (h *arrivalHeap) pop() arrival {
	old := *h
	n := len(old) - 1
	old.Swap(0, n)
	old[:n].down(0)
	a := old[n]
	*h = old[:n]
	return a
}

// init establishes the heap invariant, mirroring heap.Init.
func (h arrivalHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

func (h arrivalHeap) up(j int) {
	for j > 0 {
		i := (j - 1) / 2 // parent
		if !h.Less(j, i) {
			break
		}
		h.Swap(i, j)
		j = i
	}
}

func (h arrivalHeap) down(i int) {
	n := len(h)
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && h.Less(j2, j1) {
			j = j2
		}
		if !h.Less(j, i) {
			break
		}
		h.Swap(i, j)
		i = j
	}
}

// Generator produces messages: each healthy node is an independent Poisson
// source of rate Lambda messages/cycle. Arrival times are pre-scheduled per
// node on an event heap, so per-cycle cost is proportional to the number of
// arrivals, not the number of nodes.
//
// It is the seed's pre-registry implementation, kept as the reference the
// registry's "poisson" source (NewPoisson, on the schedSource chassis) is
// proven bit-identical against by TestRegistrySourceMatchesLegacyGenerator.
type Generator struct {
	t       topology.Network
	lambda  float64
	msgLen  int
	mode    message.Mode
	pattern Pattern
	r       *rng.Stream
	heap    arrivalHeap
	nextID  uint64
	created uint64
}

// NewGenerator builds a generator. lambda is the per-node rate in
// messages/node/cycle; msgLen the fixed message length in flits; sources are
// the healthy nodes that generate traffic.
func NewGenerator(t topology.Network, sources []topology.NodeID, lambda float64, msgLen int, mode message.Mode, pattern Pattern, r *rng.Stream) *Generator {
	if lambda <= 0 {
		panic(fmt.Sprintf("traffic: lambda must be positive, got %g", lambda))
	}
	if msgLen < 1 {
		panic(fmt.Sprintf("traffic: message length must be >= 1, got %d", msgLen))
	}
	g := &Generator{t: t, lambda: lambda, msgLen: msgLen, mode: mode, pattern: pattern, r: r}
	mean := 1.0 / lambda
	for i, src := range sources {
		// First arrival at an exponential offset: stationary start.
		g.heap = append(g.heap, arrival{at: int64(r.Exp(mean)) + 1, node: src, idx: i})
	}
	heap.Init(&g.heap)
	return g
}

// Poll returns the messages generated at cycle `now` (creation times <= now
// that have not been returned yet) and schedules each source's next arrival.
func (g *Generator) Poll(now int64) []*message.Message {
	var out []*message.Message
	mean := 1.0 / g.lambda
	for {
		top, ok := g.heap.Peek()
		if !ok || top.at > now {
			return out
		}
		heap.Pop(&g.heap)
		dst := g.pattern.Pick(top.node, g.r)
		m := message.New(g.nextID, top.node, dst, g.msgLen, g.t.N(), g.mode, now)
		g.nextID++
		g.created++
		out = append(out, m)
		gap := int64(g.r.Exp(mean))
		if gap < 1 {
			gap = 1
		}
		heap.Push(&g.heap, arrival{at: top.at + gap, node: top.node, idx: top.idx})
	}
}

// Name implements Source.
func (g *Generator) Name() string { return "poisson" }

// Created returns the total number of messages generated so far.
func (g *Generator) Created() uint64 { return g.created }
