// Package coord turns the sweep subsystem into a service: a
// long-running HTTP/JSON coordinator that accepts sweep plans, leases
// point IDs to pull-based workers on any host, streams completed
// records into the standard checkpoint journal, and serves a
// digest-keyed result cache so a repeated request for any
// already-computed point returns instantly instead of re-simulating.
//
// The primitives are all inherited from repro/internal/sweep, which is
// what makes a distributed coordinator safe to bolt on:
//
//   - Point identity is the stable content digest sweep.PointID, so the
//     same point submitted by any process, host or restart is recognised
//     as the same work — the cache key and the dedup key are one thing.
//   - Completed records append to a standard JSONL checkpoint journal
//     (single writer, O_APPEND, torn-tail recovery), so a coordinator
//     journal is a sweep journal: renderable by swsim/figures
//     -checkpoint, mergeable by MergeJournals.
//   - Result consistency is sweep.RecordsAgree — engine runs are
//     deterministic, so two workers computing one point must agree
//     bit-for-bit; a conflicting submission is rejected as a
//     determinism violation (version-skewed fleet), never silently
//     overwritten.
//
// Work distribution is pull-based: workers poll POST /v1/lease and the
// coordinator hands out queued points under heartbeat-renewed leases
// (sweep.LeaseTable). A worker that dies mid-point simply stops
// renewing; the lease expires and the point re-queues for another
// worker, a bounded number of times. Queued state survives coordinator
// restarts through a second JSONL file (the plan journal,
// <checkpoint>.plan): on startup every journalled plan point without a
// completed record re-queues.
//
// The package has three faces: Server (the coordinator state machine +
// HTTP handler), Client (typed API calls with jittered-exponential
// retry, plus RunPlan — the submit-and-poll loop that lets swsim -sweep
// and figures run any existing sweep against a fleet), and Worker (the
// lease/run/submit loop behind swsim -worker).
package coord

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/sweep"
)

// DefaultLeaseTTL is the lease duration when ServerOptions.LeaseTTL is
// zero: long enough for a heartbeat cadence of TTL/3 to tolerate two
// missed beats, short enough that a dead worker's point re-queues
// promptly.
const DefaultLeaseTTL = 15 * time.Second

// DefaultMaxRetries is the default bound on lease re-assignments per
// point (ServerOptions.MaxRetries < 0 selects it... see field doc).
const DefaultMaxRetries = 3

// ServerOptions configures a coordinator.
type ServerOptions struct {
	// Checkpoint is the JSONL journal completed records append to
	// (required). The plan journal, which persists queued work across
	// restarts, lives alongside it at Checkpoint+".plan".
	Checkpoint string
	// LeaseTTL is the worker lease duration; 0 means DefaultLeaseTTL.
	LeaseTTL time.Duration
	// MaxRetries bounds lease re-assignments per point; a point whose
	// lease expires MaxRetries+1 times is failed. 0 is honoured (fail on
	// the first expiry); negative means DefaultMaxRetries.
	MaxRetries int
	// Now supplies wall-clock time and is required (cmd layers pass
	// time.Now; tests pass a fake). The simulator proper is forbidden
	// ambient clock reads by the rngpurity contract, so the service
	// layer takes its clock explicitly too.
	Now func() time.Time
	// Log, when non-nil, receives one-line operational notes.
	Log io.Writer
}

// Status is the /statusz document: gauges over the point table, the
// service counters, and the per-worker lease table.
type Status struct {
	// Points is the number of known plan points (queued, leased, failed
	// or completed-with-definition); Done additionally counts journal
	// records for points this incarnation never saw a definition for.
	Points int `json:"points"`
	// Queued, Leased, Failed gauge the lease table.
	Queued int `json:"queued"`
	Leased int `json:"leased"`
	Failed int `json:"failed"`
	// Done is the number of cached records (the digest-keyed cache).
	Done int `json:"done"`
	// Drained reports no queued and no leased work: a fleet started for
	// a batch can exit (worker exit=drain watches this).
	Drained bool `json:"drained"`
	// Plans counts plan submissions; CacheHits counts already-computed
	// points served back (at submission and via /v1/results) without
	// re-simulation; ResultsAccepted counts records accepted from
	// workers — the "how much was actually simulated" counter the
	// coordinator-smoke CI job asserts on.
	Plans           uint64 `json:"plans"`
	CacheHits       uint64 `json:"cache_hits"`
	ResultsAccepted uint64 `json:"results_accepted"`
	// Duplicates counts agreeing re-submissions (accepted once, by the
	// first writer); Conflicts counts disagreeing ones (rejected as
	// determinism violations); LateResults counts results accepted from
	// a lease that had already expired; Expired counts lease expiries.
	Duplicates  uint64 `json:"duplicates"`
	Conflicts   uint64 `json:"conflicts"`
	LateResults uint64 `json:"late_results"`
	Expired     uint64 `json:"expired"`
	// Leases is the held-lease table, sorted by point ID.
	Leases []sweep.LeaseInfo `json:"leases,omitempty"`
}

// Server is the coordinator: the point/record/lease state machine with
// its journals, exposed over HTTP by Handler. All state transitions
// serialise on one mutex; journal appends happen inside it, preserving
// the single-writer contract.
type Server struct {
	opt ServerOptions

	mu          sync.Mutex
	journal     *sweep.Journal
	planJournal *sweep.JSONL[sweep.PlanPoint]
	points      map[string]sweep.PlanPoint
	records     map[string]sweep.Record
	leases      *sweep.LeaseTable

	plans, cacheHits, resultsAccepted uint64
	duplicates, conflicts             uint64
	lateResults, expired              uint64
}

// NewServer opens (creating if absent) the record and plan journals and
// recovers the coordinator's state: every journalled record seeds the
// result cache, and every journalled plan point without a record
// re-queues — a restarted coordinator resumes exactly where the fleet
// left off, with in-flight leases (which are ephemeral by design)
// degraded to queued.
func NewServer(opt ServerOptions) (*Server, error) {
	if opt.Checkpoint == "" {
		return nil, fmt.Errorf("coord: ServerOptions.Checkpoint is required")
	}
	if opt.Now == nil {
		return nil, fmt.Errorf("coord: ServerOptions.Now is required (pass time.Now from the cmd layer)")
	}
	if opt.LeaseTTL <= 0 {
		opt.LeaseTTL = DefaultLeaseTTL
	}
	if opt.MaxRetries < 0 {
		opt.MaxRetries = DefaultMaxRetries
	}
	journal, err := sweep.OpenJournal(opt.Checkpoint)
	if err != nil {
		return nil, err
	}
	planJournal, err := sweep.OpenJSONL[sweep.PlanPoint](opt.Checkpoint + ".plan")
	if err != nil {
		_ = journal.Close()
		return nil, err
	}
	s := &Server{
		opt:         opt,
		journal:     journal,
		planJournal: planJournal,
		points:      map[string]sweep.PlanPoint{},
		records:     map[string]sweep.Record{},
		leases:      sweep.NewLeaseTable(opt.LeaseTTL, opt.MaxRetries),
	}
	for _, rec := range journal.Records() {
		s.records[rec.ID] = rec
	}
	queued := 0
	for _, pp := range planJournal.Records() {
		if _, ok := s.points[pp.ID]; ok {
			continue
		}
		if err := pp.Verify(); err != nil {
			_ = journal.Close()
			_ = planJournal.Close()
			return nil, fmt.Errorf("coord: plan journal %s.plan: %w (delete the plan journal to discard its queued work)", opt.Checkpoint, err)
		}
		s.points[pp.ID] = pp
		if _, done := s.records[pp.ID]; !done {
			s.leases.Add(pp.ID)
			queued++
		}
	}
	if len(s.records) > 0 || queued > 0 {
		s.logf("coord: recovered %d completed records, re-queued %d points from %s", len(s.records), queued, opt.Checkpoint)
	}
	return s, nil
}

// Close closes both journals.
func (s *Server) Close() error {
	err := s.journal.Close()
	if perr := s.planJournal.Close(); err == nil {
		err = perr
	}
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.opt.Log != nil {
		fmt.Fprintf(s.opt.Log, format+"\n", args...)
	}
}

// expireLocked sweeps stale leases (requeue or fail) and updates the
// counters. Callers hold s.mu.
func (s *Server) expireLocked(now time.Time) {
	requeued, failed := s.leases.Expire(now)
	s.expired += uint64(len(requeued) + len(failed))
	for _, id := range requeued {
		s.logf("coord: lease on %s expired; re-queued", id)
	}
	for _, id := range failed {
		s.logf("coord: point %s failed: %s", id, s.leases.FailReason(id))
	}
}

// SubmitPlan registers a plan's points: already-computed points count
// as cache hits, already-known ones are left in place, and new ones are
// journalled to the plan journal and queued. Every point is
// digest-verified before any state changes, so a version-skewed
// submission is rejected atomically.
func (s *Server) SubmitPlan(req PlanRequest) (PlanResponse, error) {
	for _, pp := range req.Points {
		if err := pp.Verify(); err != nil {
			return PlanResponse{}, &httpError{http.StatusBadRequest, err.Error()}
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.plans++
	var resp PlanResponse
	resp.Total = len(req.Points)
	for _, pp := range req.Points {
		if _, done := s.records[pp.ID]; done {
			resp.Done++
			s.cacheHits++
			continue
		}
		if _, known := s.points[pp.ID]; known {
			if s.leases.FailReason(pp.ID) != "" {
				resp.Failed++
			} else {
				resp.Queued++
			}
			continue
		}
		if err := s.planJournal.Append(pp); err != nil {
			return PlanResponse{}, &httpError{http.StatusInternalServerError, err.Error()}
		}
		s.points[pp.ID] = pp
		s.leases.Add(pp.ID)
		resp.Queued++
	}
	s.logf("coord: plan %q: %d points (%d cached, %d queued/known, %d failed)", req.Name, resp.Total, resp.Done, resp.Queued, resp.Failed)
	return resp, nil
}

// Lease hands the queue head to a worker, or reports idle (and whether
// the coordinator is fully drained) when nothing is queued.
func (s *Server) Lease(req LeaseRequest) LeaseResponse {
	worker := req.Worker
	if worker == "" {
		worker = "anonymous"
	}
	now := s.opt.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(now)
	id, token, ok := s.leases.Acquire(now, worker)
	if !ok {
		queued, leased, _ := s.leases.Counts()
		return LeaseResponse{Drained: queued == 0 && leased == 0}
	}
	pp := s.points[id]
	return LeaseResponse{Point: &pp, Token: token, TTLMs: s.opt.LeaseTTL.Milliseconds()}
}

// Renew extends a worker's lease (the heartbeat).
func (s *Server) Renew(req RenewRequest) error {
	now := s.opt.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(now)
	if err := s.leases.Renew(req.ID, req.Token, now); err != nil {
		return &httpError{http.StatusConflict, err.Error()}
	}
	return nil
}

// SubmitResult accepts one completed record. A record for an
// already-cached point is checked against the cache: agreement (under
// sweep.RecordsAgree) is an idempotent duplicate, disagreement is a
// determinism violation and is rejected. New records append to the
// checkpoint journal before entering the cache. The lease token is
// advisory: a correct result from an expired lease is still a correct
// result (the engine is deterministic) and is accepted, counted as
// late.
func (s *Server) SubmitResult(req ResultRequest) (ResultResponse, error) {
	rec := req.Record
	if rec.ID == "" {
		rec.ID = req.ID
	}
	if rec.ID != req.ID {
		return ResultResponse{}, &httpError{http.StatusBadRequest,
			fmt.Sprintf("coord: result ID %s does not match record ID %s", req.ID, rec.ID)}
	}
	now := s.opt.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(now)
	if prev, done := s.records[rec.ID]; done {
		if !sweep.RecordsAgree(prev, rec) {
			s.conflicts++
			return ResultResponse{}, &httpError{http.StatusConflict,
				fmt.Sprintf("coord: conflicting result for point %s (%q): determinism violation — records from diverging code or data", rec.ID, rec.Label)}
		}
		s.duplicates++
		return ResultResponse{Status: "duplicate"}, nil
	}
	if _, known := s.points[rec.ID]; !known {
		return ResultResponse{}, &httpError{http.StatusNotFound,
			fmt.Sprintf("coord: result for unknown point %s (no plan submitted it)", rec.ID)}
	}
	if err := s.journal.Append(rec); err != nil {
		return ResultResponse{}, &httpError{http.StatusInternalServerError, err.Error()}
	}
	s.records[rec.ID] = rec
	s.resultsAccepted++
	if _, token, held := s.leases.Holder(rec.ID); !held || token != req.Token {
		s.lateResults++
		s.logf("coord: late result for %s accepted (lease moved on)", rec.ID)
	}
	s.leases.Remove(rec.ID)
	return ResultResponse{Status: "accepted"}, nil
}

// Results answers a batch lookup: cached records (cache hits), failure
// reasons for retry-exhausted points, and the IDs still pending.
func (s *Server) Results(req ResultsRequest) ResultsResponse {
	now := s.opt.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(now)
	resp := ResultsResponse{Records: map[string]sweep.Record{}, Failed: map[string]string{}}
	for _, id := range req.IDs {
		if rec, ok := s.records[id]; ok {
			resp.Records[id] = rec
			s.cacheHits++
			continue
		}
		if reason := s.leases.FailReason(id); reason != "" {
			resp.Failed[id] = reason
			continue
		}
		resp.Pending = append(resp.Pending, id)
	}
	sort.Strings(resp.Pending)
	return resp
}

// Status assembles the /statusz document.
func (s *Server) Status() Status {
	now := s.opt.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(now)
	queued, leased, failed := s.leases.Counts()
	return Status{
		Points:          len(s.points),
		Queued:          queued,
		Leased:          leased,
		Failed:          failed,
		Done:            len(s.records),
		Drained:         queued == 0 && leased == 0,
		Plans:           s.plans,
		CacheHits:       s.cacheHits,
		ResultsAccepted: s.resultsAccepted,
		Duplicates:      s.duplicates,
		Conflicts:       s.conflicts,
		LateResults:     s.lateResults,
		Expired:         s.expired,
		Leases:          s.leases.Leases(),
	}
}
