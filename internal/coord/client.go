package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sweep"
)

// APIError is a coordinator-level rejection (a decoded {"error": ...}
// response). Transport failures stay ordinary errors; the distinction
// drives retry policy — transport errors and 5xx retry with backoff,
// 4xx/409 are definitive.
type APIError struct {
	// StatusCode is the HTTP status of the rejection.
	StatusCode int
	// Msg is the coordinator's error message.
	Msg string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("coordinator: %s (HTTP %d)", e.Msg, e.StatusCode)
}

// Retryable reports whether an error from a Client call is worth
// retrying: transport failures (coordinator unreachable, connection
// reset) and 5xx responses are; 4xx rejections — bad request, unknown
// point, lost lease, conflicting result — are definitive.
func Retryable(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.StatusCode >= 500
	}
	return err != nil
}

// Client is a typed coordinator API client. Methods are single-shot
// (one HTTP round trip); the retry loops with jittered exponential
// backoff live in RunPlan and Worker, built on Backoff.
type Client struct {
	// URL is the coordinator base URL, e.g. "http://host:8080".
	URL string
	// HTTP is the underlying client; nil uses a 30s-timeout default.
	HTTP *http.Client
	// PollInterval is RunPlan's result-poll cadence; 0 means 250ms.
	PollInterval time.Duration
	// Log, when non-nil, receives one-line progress notes.
	Log io.Writer
}

// NewClient returns a client for the coordinator at url.
func NewClient(url string) *Client {
	return &Client{URL: url}
}

func (c *Client) logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

// do POSTs req as JSON to path and decodes the response into resp.
func (c *Client) do(path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("coord: marshal request: %w", err)
	}
	hc := c.HTTP
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	r, err := hc.Post(c.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("coord: %s: %w", path, err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		msg := fmt.Sprintf("%s: unexpected status", path)
		if json.NewDecoder(r.Body).Decode(&e) == nil && e.Error != "" {
			msg = e.Error
		}
		return &APIError{StatusCode: r.StatusCode, Msg: msg}
	}
	if resp == nil {
		return nil
	}
	if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
		return fmt.Errorf("coord: %s: decode response: %w", path, err)
	}
	return nil
}

// SubmitPlan registers the plan's points with the coordinator.
func (c *Client) SubmitPlan(plan sweep.Plan) (PlanResponse, error) {
	var resp PlanResponse
	err := c.do("/v1/plan", PlanRequest{Name: plan.Name, Points: plan.Wire()}, &resp)
	return resp, err
}

// Lease requests one point of work for the named worker.
func (c *Client) Lease(worker string) (LeaseResponse, error) {
	var resp LeaseResponse
	err := c.do("/v1/lease", LeaseRequest{Worker: worker}, &resp)
	return resp, err
}

// Renew heartbeats a held lease.
func (c *Client) Renew(id, token string) error {
	return c.do("/v1/renew", RenewRequest{ID: id, Token: token}, nil)
}

// SubmitResult delivers one completed record.
func (c *Client) SubmitResult(id, token string, rec sweep.Record) (ResultResponse, error) {
	var resp ResultResponse
	err := c.do("/v1/result", ResultRequest{ID: id, Token: token, Record: rec}, &resp)
	return resp, err
}

// Results looks up the given point IDs in the coordinator's cache.
func (c *Client) Results(ids []string) (ResultsResponse, error) {
	var resp ResultsResponse
	err := c.do("/v1/results", ResultsRequest{IDs: ids}, &resp)
	return resp, err
}

// Status fetches /statusz.
func (c *Client) Status() (Status, error) {
	hc := c.HTTP
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	r, err := hc.Get(c.URL + "/statusz")
	if err != nil {
		return Status{}, fmt.Errorf("coord: /statusz: %w", err)
	}
	defer r.Body.Close()
	var st Status
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		return Status{}, fmt.Errorf("coord: /statusz: decode: %w", err)
	}
	return st, nil
}

// RunPlan is the fleet-served analogue of sweep.Run: submit the plan,
// then poll the result cache until every point is completed or failed,
// returning results in plan order. Already-computed points come back on
// the first poll without any simulation (the cache path); fresh points
// wait on the worker fleet. Transport failures retry forever with
// jittered exponential backoff — a restarting coordinator resumes the
// same queue, so waiting is correct — until ctx is cancelled;
// coordinator rejections (version skew, conflicts) abort.
func (c *Client) RunPlan(ctx context.Context, plan sweep.Plan) ([]core.PointResult, error) {
	bo := NewBackoff("runplan")
	var submitted PlanResponse
	for {
		var err error
		submitted, err = c.SubmitPlan(plan)
		if err == nil {
			break
		}
		if !Retryable(err) {
			return nil, err
		}
		c.logf("coord: submit plan %s: %v (retrying)", plan.Name, err)
		if !sleepCtx(ctx, bo.Next()) {
			return nil, ctx.Err()
		}
	}
	c.logf("coord: plan %s: %d points (%d cached, %d queued, %d failed)",
		plan.Name, submitted.Total, submitted.Done, submitted.Queued, submitted.Failed)

	ids := plan.IDs()
	positions := map[string][]int{} // a plan may repeat a point; fill every slot
	for i, id := range ids {
		positions[id] = append(positions[id], i)
	}
	results := make([]core.PointResult, len(plan.Points))
	pending := make([]string, 0, len(positions))
	for id := range positions {
		pending = append(pending, id)
	}
	poll := c.PollInterval
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	bo.Reset()
	for len(pending) > 0 {
		resp, err := c.Results(pending)
		if err != nil {
			if !Retryable(err) {
				return nil, err
			}
			c.logf("coord: poll results: %v (retrying)", err)
			if !sleepCtx(ctx, bo.Next()) {
				return nil, ctx.Err()
			}
			continue
		}
		bo.Reset()
		var still []string
		for _, id := range pending {
			if rec, ok := resp.Records[id]; ok {
				for _, i := range positions[id] {
					results[i] = rec.Result(plan.Points[i])
				}
				continue
			}
			if reason, ok := resp.Failed[id]; ok {
				for _, i := range positions[id] {
					results[i] = core.PointResult{Point: plan.Points[i],
						Err: fmt.Errorf("coordinator: point failed: %s", reason)}
				}
				continue
			}
			still = append(still, id)
		}
		pending = still
		if len(pending) > 0 && !sleepCtx(ctx, poll) {
			return nil, ctx.Err()
		}
	}
	return results, nil
}

// Backoff produces jittered exponential retry delays: 100ms doubling to
// a 5s cap, each multiplied by a uniform factor in [0.5, 1.5) so a
// fleet of workers losing the coordinator together does not reconnect
// in lockstep. The jitter stream is seeded from the label (worker
// name), which keeps the service layer off ambient entropy (the
// rngpurity contract) while de-phasing distinct workers.
type Backoff struct {
	attempt   int
	base, cap time.Duration
	stream    *rng.Stream
}

// NewBackoff returns a backoff sequence seeded from label.
func NewBackoff(label string) *Backoff {
	h := fnv.New64a()
	_, _ = io.WriteString(h, label)
	return &Backoff{base: 100 * time.Millisecond, cap: 5 * time.Second, stream: rng.New(h.Sum64())}
}

// Next returns the next delay and advances the sequence.
func (b *Backoff) Next() time.Duration {
	d := b.base << b.attempt
	if d > b.cap || d <= 0 {
		d = b.cap
	} else {
		b.attempt++
	}
	jitter := 0.5 + b.stream.Float64()
	return time.Duration(float64(d) * jitter)
}

// Reset rewinds to the initial delay after a success.
func (b *Backoff) Reset() { b.attempt = 0 }

// sleepCtx sleeps for d unless ctx ends first, reporting whether the
// full sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
