package coord

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sweep"
)

// Worker is the pull loop behind swsim -worker: lease a point, simulate
// it through the standard sweep machinery (panic-recovering, exactly
// what a local sweep pool runs), submit the record, repeat. Coordinator
// unavailability is absorbed by jittered exponential backoff; a held
// lease is heartbeat-renewed at a third of its TTL while the point
// runs.
//
// Shutdown is graceful by contract: cancelling the context (SIGTERM in
// the CLI) stops the worker from taking new leases, but a point already
// running is finished and its result submitted — killing a drain-phase
// worker loses at most lease-renewal politeness, never computed work.
// SIGKILL is the impolite case the coordinator's lease expiry exists
// for.
type Worker struct {
	// Client connects to the coordinator (required).
	Client *Client
	// Name identifies the worker in the coordinator's lease table.
	Name string
	// IdlePoll is the wait between lease requests when the coordinator
	// has no queued work; 0 means 500ms.
	IdlePoll time.Duration
	// ExitOnDrain makes Run return once the coordinator reports itself
	// drained (no queued or leased work anywhere). For batch fleets
	// started after plan submission; the default (false) keeps polling
	// forever, serving any plan that arrives later.
	ExitOnDrain bool
	// Stall injects a pause between leasing a point and simulating it —
	// a chaos knob for exercising lease expiry and reassignment (the
	// coordinator-smoke CI job stalls its victim past the TTL before
	// SIGKILLing it). 0 (the default) disables.
	Stall time.Duration
	// EngineWorkers sets Config.Workers for each simulated point
	// (execution detail, not point identity); 0 keeps engines serial —
	// the right default when several worker processes share a host.
	EngineWorkers int
	// Log, when non-nil, receives one-line progress notes.
	Log io.Writer

	// run substitutes the simulator in tests; nil uses the sweep
	// machinery (core.RunSweepFunc on a one-point slice, which recovers
	// panics into PointResult.Err exactly like a local sweep).
	run func(core.Config) (metrics.Results, error)
}

func (w *Worker) logf(format string, args ...any) {
	if w.Log != nil {
		fmt.Fprintf(w.Log, format+"\n", args...)
	}
}

// Run executes the worker loop until ctx is cancelled (graceful drain)
// or, with ExitOnDrain, until the coordinator reports no remaining
// work. It returns the number of points completed.
func (w *Worker) Run(ctx context.Context) (completed int, err error) {
	if w.Client == nil {
		return 0, fmt.Errorf("coord: worker needs a Client")
	}
	name := w.Name
	if name == "" {
		name = "worker"
	}
	idle := w.IdlePoll
	if idle <= 0 {
		idle = 500 * time.Millisecond
	}
	bo := NewBackoff(name)
	for {
		if ctx.Err() != nil {
			w.logf("worker %s: drained after %d points (shutdown requested)", name, completed)
			return completed, nil
		}
		grant, err := w.Client.Lease(name)
		if err != nil {
			if !Retryable(err) {
				return completed, err
			}
			d := bo.Next()
			w.logf("worker %s: coordinator unavailable: %v (backing off %v)", name, err, d.Round(time.Millisecond))
			if !sleepCtx(ctx, d) {
				return completed, nil
			}
			continue
		}
		bo.Reset()
		if grant.Point == nil {
			if grant.Drained && w.ExitOnDrain {
				w.logf("worker %s: coordinator drained; exiting after %d points", name, completed)
				return completed, nil
			}
			if !sleepCtx(ctx, idle) {
				return completed, nil
			}
			continue
		}
		if w.runPoint(ctx, name, grant) {
			completed++
		}
	}
}

// runPoint simulates one leased point and submits its record, reporting
// whether a record was delivered (accepted or duplicate).
func (w *Worker) runPoint(ctx context.Context, name string, grant LeaseResponse) bool {
	pp := *grant.Point
	if err := pp.Verify(); err != nil {
		// Version skew between this worker and the coordinator: refuse
		// the point rather than cache a result under a wrong identity.
		// The lease expires and the point goes to a compatible worker.
		w.logf("worker %s: refusing point: %v", name, err)
		return false
	}
	if w.Stall > 0 {
		w.logf("worker %s: stalling %v on %s (chaos knob)", name, w.Stall, pp.ID)
		if !sleepCtx(ctx, w.Stall) {
			return false
		}
	}

	// Heartbeat at a third of the lease TTL while the point runs. A
	// failed renewal means the lease expired and moved on; the result is
	// still submitted (and accepted as late) — the engine is
	// deterministic, so the work is not wasted unless another worker
	// finished first, in which case submission reports a duplicate.
	stop := make(chan struct{})
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		interval := time.Duration(grant.TTLMs) * time.Millisecond / 3
		if interval <= 0 {
			interval = time.Second
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if err := w.Client.Renew(pp.ID, grant.Token); err != nil && !Retryable(err) {
					w.logf("worker %s: lease on %s lost: %v (finishing anyway)", name, pp.ID, err)
					return
				}
			}
		}
	}()

	w.logf("worker %s: running %s (%s)", name, pp.ID, pp.Label)
	cfg := pp.Config
	cfg.Workers = w.EngineWorkers // execution detail; not part of point identity
	run := w.run
	if run == nil {
		run = core.Run
	}
	pr := runSinglePoint(core.Point{Label: pp.Label, Config: cfg}, run)
	close(stop)
	<-hbDone

	// Submission must survive a graceful drain: the context may already
	// be cancelled (SIGTERM mid-point), but the computed result should
	// still reach the coordinator, so retries here use their own bounded
	// budget instead of ctx.
	rec := sweep.NewRecord(pp.ID, pr)
	bo := NewBackoff(name + "/submit")
	for attempt := 0; ; attempt++ {
		resp, err := w.Client.SubmitResult(pp.ID, grant.Token, rec)
		if err == nil {
			w.logf("worker %s: %s %s", name, pp.ID, resp.Status)
			return true
		}
		if !Retryable(err) {
			w.logf("worker %s: result for %s rejected: %v", name, pp.ID, err)
			return false
		}
		if attempt >= 10 {
			w.logf("worker %s: giving up submitting %s: %v (lease will expire and re-queue it)", name, pp.ID, err)
			return false
		}
		time.Sleep(bo.Next())
	}
}

// runSinglePoint runs one point through the sweep worker-pool machinery
// (one-point pool), inheriting its panic recovery: a crashing config
// becomes PointResult.Err, journalled like any deterministic failure,
// instead of killing the worker process.
func runSinglePoint(pt core.Point, run func(core.Config) (metrics.Results, error)) core.PointResult {
	return core.RunPointFunc(pt, run)
}
