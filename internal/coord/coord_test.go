package coord

import (
	"net/http"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sweep"
)

// fakeClock is the injected coordinator clock: time only moves when a
// test advances it, making lease expiry deterministic and instant.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// testPlan builds a small plan of distinct λ points (never simulated in
// the server-level tests; records are fabricated).
func testPlan(t *testing.T, n int) sweep.Plan {
	t.Helper()
	plan := sweep.Plan{Name: "coordtest"}
	for i := 0; i < n; i++ {
		cfg := core.DefaultConfig(4, 2, 0.002+0.002*float64(i))
		cfg.WarmupMessages = 20
		cfg.MeasureMessages = 100
		plan.Points = append(plan.Points, core.Point{Label: "pt", Config: cfg})
	}
	return plan
}

func record(id string, latency float64) sweep.Record {
	return sweep.Record{ID: id, Label: "pt", Results: metrics.Results{MeanLatency: latency, Delivered: 100}}
}

func newTestServer(t *testing.T, clock *fakeClock, ttl time.Duration, retries int) *Server {
	t.Helper()
	s, err := NewServer(ServerOptions{
		Checkpoint: filepath.Join(t.TempDir(), "coord.jsonl"),
		LeaseTTL:   ttl,
		MaxRetries: retries,
		Now:        clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func mustSubmitPlan(t *testing.T, s *Server, plan sweep.Plan) PlanResponse {
	t.Helper()
	resp, err := s.SubmitPlan(PlanRequest{Name: plan.Name, Points: plan.Wire()})
	if err != nil {
		t.Fatalf("SubmitPlan: %v", err)
	}
	return resp
}

func TestPlanLeaseResultRoundTrip(t *testing.T) {
	clock := newFakeClock()
	s := newTestServer(t, clock, 10*time.Second, 3)
	plan := testPlan(t, 3)
	ids := plan.IDs()

	resp := mustSubmitPlan(t, s, plan)
	if resp.Total != 3 || resp.Queued != 3 || resp.Done != 0 {
		t.Fatalf("submit = %+v, want 3 queued", resp)
	}

	grant := s.Lease(LeaseRequest{Worker: "w1"})
	if grant.Point == nil || grant.Point.ID != ids[0] {
		t.Fatalf("lease = %+v, want first plan point %s", grant, ids[0])
	}
	if grant.TTLMs != 10_000 {
		t.Fatalf("TTLMs = %d, want 10000", grant.TTLMs)
	}

	if _, err := s.SubmitResult(ResultRequest{ID: ids[0], Token: grant.Token, Record: record(ids[0], 25)}); err != nil {
		t.Fatalf("SubmitResult: %v", err)
	}
	res := s.Results(ResultsRequest{IDs: ids})
	if len(res.Records) != 1 || res.Records[ids[0]].Results.MeanLatency != 25 {
		t.Fatalf("Results records = %v", res.Records)
	}
	if !reflect.DeepEqual(res.Pending, []string{min2(ids[1], ids[2]), max2(ids[1], ids[2])}) {
		t.Fatalf("Pending = %v, want sorted remaining ids", res.Pending)
	}

	st := s.Status()
	if st.Points != 3 || st.Done != 1 || st.Queued != 2 || st.Leased != 0 || st.ResultsAccepted != 1 {
		t.Fatalf("Status = %+v", st)
	}
	if st.Drained {
		t.Fatal("Drained with queued work")
	}

	// A result for a point no plan ever submitted is rejected.
	if _, err := s.SubmitResult(ResultRequest{ID: "feedfacefeedface", Record: record("feedfacefeedface", 1)}); err == nil {
		t.Fatal("result for unknown point accepted")
	} else if he, ok := err.(*httpError); !ok || he.status != http.StatusNotFound {
		t.Fatalf("unknown point error = %v, want 404", err)
	}
}

func min2(a, b string) string {
	if a < b {
		return a
	}
	return b
}

func max2(a, b string) string {
	if a < b {
		return b
	}
	return a
}

func TestLeaseExpiryReassignsPoint(t *testing.T) {
	clock := newFakeClock()
	s := newTestServer(t, clock, 5*time.Second, 3)
	plan := testPlan(t, 1)
	id := plan.IDs()[0]
	mustSubmitPlan(t, s, plan)

	g1 := s.Lease(LeaseRequest{Worker: "victim"})
	if g1.Point == nil {
		t.Fatal("no lease granted")
	}
	// Heartbeats keep it alive...
	clock.Advance(4 * time.Second)
	if err := s.Renew(RenewRequest{ID: id, Token: g1.Token}); err != nil {
		t.Fatalf("Renew: %v", err)
	}
	clock.Advance(4 * time.Second)
	if g := s.Lease(LeaseRequest{Worker: "other"}); g.Point != nil {
		t.Fatal("renewed lease was handed out again")
	}
	// ...until the victim dies (no renewal past TTL).
	clock.Advance(2 * time.Second)
	g2 := s.Lease(LeaseRequest{Worker: "rescuer"})
	if g2.Point == nil || g2.Point.ID != id {
		t.Fatalf("expired point not re-leased: %+v", g2)
	}
	if g2.Token == g1.Token {
		t.Fatal("re-lease reused the dead token")
	}
	// The dead worker's heartbeat now tells it the lease moved on.
	if err := s.Renew(RenewRequest{ID: id, Token: g1.Token}); err == nil {
		t.Fatal("stale token renewed")
	}
	st := s.Status()
	if st.Expired != 1 || st.Leased != 1 {
		t.Fatalf("Status after reassignment = %+v", st)
	}
	if len(st.Leases) != 1 || st.Leases[0].Worker != "rescuer" || st.Leases[0].Retries != 1 {
		t.Fatalf("lease table = %+v", st.Leases)
	}

	// The slow victim's result, arriving after reassignment, is still a
	// correct deterministic result: accepted, counted late.
	if resp, err := s.SubmitResult(ResultRequest{ID: id, Token: g1.Token, Record: record(id, 30)}); err != nil || resp.Status != "accepted" {
		t.Fatalf("late result: %v %+v", err, resp)
	}
	if st := s.Status(); st.LateResults != 1 || st.Done != 1 || st.Leased != 0 {
		t.Fatalf("Status after late result = %+v", st)
	}
}

func TestBoundedRetriesFailPoint(t *testing.T) {
	clock := newFakeClock()
	s := newTestServer(t, clock, time.Second, 1)
	plan := testPlan(t, 1)
	id := plan.IDs()[0]
	mustSubmitPlan(t, s, plan)

	for i := 0; i < 2; i++ {
		g := s.Lease(LeaseRequest{Worker: "crashy"})
		if g.Point == nil {
			t.Fatalf("round %d: no lease", i)
		}
		clock.Advance(2 * time.Second)
	}
	if g := s.Lease(LeaseRequest{Worker: "crashy"}); g.Point != nil {
		t.Fatal("retry-exhausted point leased again")
	}
	res := s.Results(ResultsRequest{IDs: []string{id}})
	if len(res.Failed) != 1 || res.Failed[id] == "" {
		t.Fatalf("Results.Failed = %v, want reason for %s", res.Failed, id)
	}
	if len(res.Pending) != 0 {
		t.Fatalf("failed point still pending: %v", res.Pending)
	}
	st := s.Status()
	if st.Failed != 1 || st.Expired != 2 {
		t.Fatalf("Status = %+v", st)
	}
	if !st.Drained {
		t.Fatal("coordinator with only a failed point should report drained")
	}
	// Re-submitting the plan reports the failure, not a re-queue.
	if resp := mustSubmitPlan(t, s, plan); resp.Failed != 1 || resp.Queued != 0 {
		t.Fatalf("resubmit = %+v", resp)
	}
}

func TestDuplicateAcceptedOnceConflictRejected(t *testing.T) {
	clock := newFakeClock()
	s := newTestServer(t, clock, 10*time.Second, 3)
	plan := testPlan(t, 1)
	id := plan.IDs()[0]
	mustSubmitPlan(t, s, plan)
	g := s.Lease(LeaseRequest{Worker: "w1"})

	if resp, err := s.SubmitResult(ResultRequest{ID: id, Token: g.Token, Record: record(id, 40)}); err != nil || resp.Status != "accepted" {
		t.Fatalf("first submit: %v %+v", err, resp)
	}
	// Identical record again (another worker raced the same point):
	// idempotent duplicate.
	if resp, err := s.SubmitResult(ResultRequest{ID: id, Record: record(id, 40)}); err != nil || resp.Status != "duplicate" {
		t.Fatalf("duplicate submit: %v %+v", err, resp)
	}
	// A *different* record for the same ID is a determinism violation.
	if _, err := s.SubmitResult(ResultRequest{ID: id, Record: record(id, 41)}); err == nil {
		t.Fatal("conflicting result accepted")
	} else if he, ok := err.(*httpError); !ok || he.status != http.StatusConflict {
		t.Fatalf("conflict error = %v, want 409", err)
	}
	st := s.Status()
	if st.Duplicates != 1 || st.Conflicts != 1 || st.ResultsAccepted != 1 {
		t.Fatalf("Status = %+v", st)
	}
	// The original record survives the conflicting attempt.
	res := s.Results(ResultsRequest{IDs: []string{id}})
	if res.Records[id].Results.MeanLatency != 40 {
		t.Fatalf("cache overwritten: %v", res.Records[id])
	}
}

func TestRepeatPlanServedFromCache(t *testing.T) {
	clock := newFakeClock()
	s := newTestServer(t, clock, 10*time.Second, 3)
	plan := testPlan(t, 2)
	ids := plan.IDs()
	mustSubmitPlan(t, s, plan)
	for _, id := range ids {
		g := s.Lease(LeaseRequest{Worker: "w"})
		if _, err := s.SubmitResult(ResultRequest{ID: g.Point.ID, Token: g.Token, Record: record(g.Point.ID, 10)}); err != nil {
			t.Fatal(err)
		}
		_ = id
	}
	accepted := s.Status().ResultsAccepted

	// The whole plan again: everything cached, nothing queued.
	resp := mustSubmitPlan(t, s, plan)
	if resp.Done != 2 || resp.Queued != 0 {
		t.Fatalf("repeat submit = %+v, want all done", resp)
	}
	res := s.Results(ResultsRequest{IDs: ids})
	if len(res.Records) != 2 || len(res.Pending) != 0 {
		t.Fatalf("repeat results = %+v", res)
	}
	st := s.Status()
	if st.ResultsAccepted != accepted {
		t.Fatalf("re-simulation happened: accepted %d -> %d", accepted, st.ResultsAccepted)
	}
	if st.CacheHits < 4 { // 2 at submission + 2 lookups
		t.Fatalf("CacheHits = %d, want >= 4", st.CacheHits)
	}
	if g := s.Lease(LeaseRequest{Worker: "w"}); g.Point != nil || !g.Drained {
		t.Fatalf("lease after full completion = %+v, want drained idle", g)
	}
}

func TestVersionSkewedPlanRejectedAtomically(t *testing.T) {
	clock := newFakeClock()
	s := newTestServer(t, clock, 10*time.Second, 3)
	wire := testPlan(t, 2).Wire()
	wire[1].ID = "0000000000000000" // digest no longer matches the config
	if _, err := s.SubmitPlan(PlanRequest{Name: "skewed", Points: wire}); err == nil {
		t.Fatal("skewed plan accepted")
	}
	if st := s.Status(); st.Points != 0 || st.Queued != 0 {
		t.Fatalf("partial state after rejected plan: %+v", st)
	}
}

func TestRestartRecoversQueuedAndDoneState(t *testing.T) {
	clock := newFakeClock()
	checkpoint := filepath.Join(t.TempDir(), "coord.jsonl")
	opts := ServerOptions{Checkpoint: checkpoint, LeaseTTL: 5 * time.Second, MaxRetries: 3, Now: clock.Now}
	plan := testPlan(t, 3)
	ids := plan.IDs()

	s1, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.SubmitPlan(PlanRequest{Name: plan.Name, Points: plan.Wire()}); err != nil {
		t.Fatal(err)
	}
	// Complete the first point; lease (but never finish) the second —
	// then the coordinator "crashes".
	g := s1.Lease(LeaseRequest{Worker: "w"})
	if _, err := s1.SubmitResult(ResultRequest{ID: g.Point.ID, Token: g.Token, Record: record(g.Point.ID, 10)}); err != nil {
		t.Fatal(err)
	}
	if g2 := s1.Lease(LeaseRequest{Worker: "w"}); g2.Point == nil {
		t.Fatal("second lease empty")
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.Status()
	// The completed record is cached; the leased-but-unfinished point
	// degraded to queued (leases are ephemeral), alongside the
	// never-leased one.
	if st.Done != 1 || st.Queued != 2 || st.Leased != 0 || st.Points != 3 {
		t.Fatalf("recovered Status = %+v", st)
	}
	res := s2.Results(ResultsRequest{IDs: ids})
	if len(res.Records) != 1 || res.Records[ids[0]].Results.MeanLatency != 10 {
		t.Fatalf("recovered Results = %+v", res)
	}
	// Remaining work is servable: both points lease out in plan order.
	ga := s2.Lease(LeaseRequest{Worker: "w2"})
	gb := s2.Lease(LeaseRequest{Worker: "w2"})
	if ga.Point == nil || gb.Point == nil || ga.Point.ID != ids[1] || gb.Point.ID != ids[2] {
		t.Fatalf("recovered leases = %v, %v; want %s, %s", ga.Point, gb.Point, ids[1], ids[2])
	}
}
