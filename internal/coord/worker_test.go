package coord

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sweep"
)

func TestBackoffBoundsAndJitter(t *testing.T) {
	bo := NewBackoff("w1")
	prevMax := time.Duration(0)
	for i := 0; i < 12; i++ {
		want := 100 * time.Millisecond << i
		if want > 5*time.Second {
			want = 5 * time.Second
		}
		d := bo.Next()
		lo, hi := want/2, want+want/2
		if d < lo || d >= hi {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", i, d, lo, hi)
		}
		if want == 5*time.Second {
			prevMax = d
		}
	}
	if prevMax == 0 {
		t.Fatal("backoff never reached its cap in 12 attempts")
	}
	bo.Reset()
	if d := bo.Next(); d >= 150*time.Millisecond {
		t.Fatalf("post-Reset delay %v, want back at the 100ms base", d)
	}
	// Distinct labels de-phase: the two sequences should not be identical.
	a, b := NewBackoff("w1"), NewBackoff("w2")
	same := true
	for i := 0; i < 4; i++ {
		if a.Next() != b.Next() {
			same = false
		}
	}
	if same {
		t.Fatal("backoff jitter identical across worker names")
	}
}

// startServer spins up a coordinator on real time behind httptest and
// returns a client for it. _test.go files are outside the rngpurity
// contract, so time.Now is fine here.
func startServer(t *testing.T, ttl time.Duration, retries int) (*Server, *Client) {
	t.Helper()
	s, err := NewServer(ServerOptions{
		Checkpoint: filepath.Join(t.TempDir(), "coord.jsonl"),
		LeaseTTL:   ttl,
		MaxRetries: retries,
		Now:        time.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() { hs.Close(); s.Close() })
	c := NewClient(hs.URL)
	c.PollInterval = 10 * time.Millisecond
	return s, c
}

// TestFleetMatchesLocalRun is the end-to-end check: a plan served by a
// coordinator and completed by real Workers running the real engine must
// produce byte-for-byte the results of a direct local sweep.
func TestFleetMatchesLocalRun(t *testing.T) {
	plan := sweep.Plan{Name: "e2e"}
	for _, lambda := range []float64{0.002, 0.004, 0.006} {
		cfg := core.DefaultConfig(4, 2, lambda)
		cfg.WarmupMessages = 50
		cfg.MeasureMessages = 300
		plan.Points = append(plan.Points, core.Point{Label: "e2e", Config: cfg})
	}
	want := core.RunSweep(plan.Points, 1)

	s, c := startServer(t, 10*time.Second, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	workerDone := make(chan error, 2)
	for i := 0; i < 2; i++ {
		w := &Worker{Client: c, Name: "w" + string(rune('A'+i)), ExitOnDrain: true, IdlePoll: 10 * time.Millisecond}
		go func() {
			_, err := w.Run(ctx)
			workerDone <- err
		}()
	}
	got, err := c.RunPlan(ctx, plan)
	if err != nil {
		t.Fatalf("RunPlan: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := <-workerDone; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fleet results diverge from local sweep:\n got %+v\nwant %+v", got, want)
	}

	// Re-running the whole plan must be pure cache: no workers are alive,
	// yet the plan completes, and the accepted-results counter is frozen.
	st := s.Status()
	again, err := c.RunPlan(ctx, plan)
	if err != nil {
		t.Fatalf("cached RunPlan: %v", err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Fatal("cached results diverge")
	}
	st2 := s.Status()
	if st2.ResultsAccepted != st.ResultsAccepted {
		t.Fatalf("cache re-simulated: accepted %d -> %d", st.ResultsAccepted, st2.ResultsAccepted)
	}
}

func TestWorkerGracefulDrain(t *testing.T) {
	s, c := startServer(t, 10*time.Second, 3)
	plan := testPlan(t, 1)
	id := plan.IDs()[0]
	if _, err := c.SubmitPlan(plan); err != nil {
		t.Fatal(err)
	}

	started := make(chan struct{})
	release := make(chan struct{})
	w := &Worker{Client: c, Name: "drainer", IdlePoll: 5 * time.Millisecond,
		run: func(core.Config) (metrics.Results, error) {
			close(started)
			<-release
			return metrics.Results{MeanLatency: 7, Delivered: 100}, nil
		}}
	done := make(chan int, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		n, _ := w.Run(ctx)
		done <- n
	}()

	<-started
	cancel() // SIGTERM equivalent: arrives while the point is mid-simulation
	close(release)
	if n := <-done; n != 1 {
		t.Fatalf("drained worker completed %d points, want 1", n)
	}
	// The in-flight result reached the coordinator despite the cancel.
	res := s.Results(ResultsRequest{IDs: []string{id}})
	if rec, ok := res.Records[id]; !ok || rec.Results.MeanLatency != 7 {
		t.Fatalf("in-flight result lost on drain: %+v", res)
	}
}

func TestWorkerBacksOffWhenCoordinatorDown(t *testing.T) {
	// Nothing listens on this URL: every lease attempt is a transport
	// error, which the worker must absorb (backoff) instead of returning.
	c := NewClient("http://127.0.0.1:1")
	w := &Worker{Client: c, Name: "patient"}
	ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer cancel()
	start := time.Now()
	n, err := w.Run(ctx)
	if err != nil {
		t.Fatalf("worker returned transport error instead of retrying: %v", err)
	}
	if n != 0 {
		t.Fatalf("completed %d points against a dead coordinator", n)
	}
	if elapsed := time.Since(start); elapsed < 300*time.Millisecond {
		t.Fatalf("worker gave up after %v; want it to keep retrying until ctx end", elapsed)
	}
}

func TestWorkerStallLosesLeaseButResultAccepted(t *testing.T) {
	s, c := startServer(t, 200*time.Millisecond, 3)
	plan := testPlan(t, 1)
	id := plan.IDs()[0]
	if _, err := c.SubmitPlan(plan); err != nil {
		t.Fatal(err)
	}

	// The stalled worker sits on its lease far past the TTL without
	// heartbeating (Stall happens before the heartbeat starts), so the
	// coordinator re-queues the point while the worker still computes.
	w := &Worker{Client: c, Name: "sloth", ExitOnDrain: true, IdlePoll: 10 * time.Millisecond,
		Stall: 700 * time.Millisecond,
		run: func(core.Config) (metrics.Results, error) {
			return metrics.Results{MeanLatency: 3, Delivered: 100}, nil
		}}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := w.Run(ctx); err != nil {
		t.Fatal(err)
	}
	st := s.Status()
	if st.Expired == 0 {
		t.Fatalf("stall never tripped lease expiry: %+v", st)
	}
	res := s.Results(ResultsRequest{IDs: []string{id}})
	if rec, ok := res.Records[id]; !ok || rec.Results.MeanLatency != 3 {
		t.Fatalf("stalled worker's result not recorded: %+v", res)
	}
}
