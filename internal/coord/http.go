package coord

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/sweep"
)

// The wire protocol is JSON over POST (reads included: batch lookups
// carry bodies), plus two GET observability endpoints. Every error
// response is {"error": "..."} with a meaningful status code; 409 marks
// the two coordination-specific rejections (lost lease on renew,
// conflicting result on submit) that clients must handle distinctly.

// PlanRequest is the body of POST /v1/plan.
type PlanRequest struct {
	// Name labels the plan in coordinator logs.
	Name string `json:"name"`
	// Points are the plan's points in wire form (sweep.Plan.Wire).
	Points []sweep.PlanPoint `json:"points"`
}

// PlanResponse reports the submission outcome per point category.
type PlanResponse struct {
	// Total = Done + Queued + Failed.
	Total int `json:"total"`
	// Done points already had cached records (served without simulation).
	Done int `json:"done"`
	// Queued points await (or are under) a worker lease — newly queued
	// and already-known alike.
	Queued int `json:"queued"`
	// Failed points previously exhausted their lease retries.
	Failed int `json:"failed"`
}

// LeaseRequest is the body of POST /v1/lease.
type LeaseRequest struct {
	// Worker is the requester's self-reported name, for the /statusz
	// lease table.
	Worker string `json:"worker"`
}

// LeaseResponse carries a work assignment, or idleness.
type LeaseResponse struct {
	// Point is the leased point; nil when nothing is queued.
	Point *sweep.PlanPoint `json:"point,omitempty"`
	// Token identifies this lease in Renew and result submission.
	Token string `json:"token,omitempty"`
	// TTLMs is the lease duration in milliseconds; workers heartbeat at
	// a fraction of it.
	TTLMs int64 `json:"ttl_ms,omitempty"`
	// Drained is set on idle responses when no work is queued or leased
	// anywhere — a batch fleet can exit (worker exit=drain).
	Drained bool `json:"drained,omitempty"`
}

// RenewRequest is the body of POST /v1/renew (the worker heartbeat).
type RenewRequest struct {
	ID    string `json:"id"`
	Token string `json:"token"`
}

// ResultRequest is the body of POST /v1/result.
type ResultRequest struct {
	// ID is the completed point; Token the lease it ran under (advisory:
	// late results are accepted, see Server.SubmitResult).
	ID    string `json:"id"`
	Token string `json:"token"`
	// Record is the completed record, exactly as a local sweep would
	// journal it.
	Record sweep.Record `json:"record"`
}

// ResultResponse acknowledges a submission: "accepted" for a new
// record, "duplicate" for an agreeing re-submission.
type ResultResponse struct {
	Status string `json:"status"`
}

// ResultsRequest is the body of POST /v1/results (batch cache lookup).
type ResultsRequest struct {
	IDs []string `json:"ids"`
}

// ResultsResponse partitions the requested IDs: cached records, failure
// reasons for retry-exhausted points, and IDs still pending.
type ResultsResponse struct {
	Records map[string]sweep.Record `json:"records"`
	Failed  map[string]string       `json:"failed,omitempty"`
	Pending []string                `json:"pending,omitempty"`
}

// httpError is an error with an HTTP status; handlers unwrap it to pick
// the response code (plain errors map to 500).
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

// Handler returns the coordinator's HTTP API:
//
//	GET  /healthz     liveness ("ok")
//	GET  /statusz     Status JSON (counters + lease table)
//	POST /v1/plan     PlanRequest    -> PlanResponse
//	POST /v1/lease    LeaseRequest   -> LeaseResponse
//	POST /v1/renew    RenewRequest   -> {} | 409
//	POST /v1/result   ResultRequest  -> ResultResponse | 409 on conflict
//	POST /v1/results  ResultsRequest -> ResultsResponse
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, &httpError{http.StatusMethodNotAllowed, "GET only"})
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, &httpError{http.StatusMethodNotAllowed, "GET only"})
			return
		}
		writeJSON(w, s.Status())
	})
	post(mux, "/v1/plan", func(req PlanRequest) (PlanResponse, error) { return s.SubmitPlan(req) })
	post(mux, "/v1/lease", func(req LeaseRequest) (LeaseResponse, error) { return s.Lease(req), nil })
	post(mux, "/v1/renew", func(req RenewRequest) (struct{}, error) { return struct{}{}, s.Renew(req) })
	post(mux, "/v1/result", func(req ResultRequest) (ResultResponse, error) { return s.SubmitResult(req) })
	post(mux, "/v1/results", func(req ResultsRequest) (ResultsResponse, error) { return s.Results(req), nil })
	return mux
}

// post registers a JSON POST endpoint: decode Req, call fn, encode Resp
// or the error.
func post[Req, Resp any](mux *http.ServeMux, path string, fn func(Req) (Resp, error)) {
	mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, &httpError{http.StatusMethodNotAllowed, "POST only"})
			return
		}
		var req Req
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, &httpError{http.StatusBadRequest, fmt.Sprintf("coord: bad request body: %v", err)})
			return
		}
		resp, err := fn(req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, resp)
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	// Best-effort: an encode failure here means the connection died.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	if he, ok := err.(*httpError); ok {
		status = he.status
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
