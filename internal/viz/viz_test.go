package viz

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/topology"
)

func TestRenderPlaneMarksFaults(t *testing.T) {
	tor := topology.New(8, 2)
	fs := fault.NewSet(tor)
	fs.MarkNode(tor.FromCoords([]int{2, 3}))
	out := RenderPlane(fs, 0, 0, 1)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 9 { // header + 8 rows
		t.Fatalf("line count = %d", len(lines))
	}
	if strings.Count(out, "#") != 1 {
		t.Fatalf("hash count = %d, want 1", strings.Count(out, "#"))
	}
	// Row for y=3 (index 4 with header) must contain the fault at column 2.
	row := lines[4]
	cells := strings.Fields(strings.TrimPrefix(row, "     "))
	if cells[2] != "#" {
		t.Fatalf("fault not at x=2 in row %q", row)
	}
}

func TestRenderPlaneHigherDims(t *testing.T) {
	tor := topology.New(4, 3)
	fs := fault.NewSet(tor)
	base := tor.FromCoords([]int{0, 0, 2})
	fs.MarkNode(tor.FromCoords([]int{1, 1, 2}))
	fs.MarkNode(tor.FromCoords([]int{1, 1, 0})) // different plane: invisible
	out := RenderPlane(fs, base, 0, 1)
	if strings.Count(out, "#") != 1 {
		t.Fatalf("plane slicing broken:\n%s", out)
	}
}

func TestRenderRegions(t *testing.T) {
	tor := topology.New(8, 2)
	fs := fault.NewSet(tor)
	if _, err := fault.StampShape(fs, 0, 0, 1, fault.ShapeSpec{Shape: fault.ShapeU, A: 3, B: 4, AnchorA: 1, AnchorB: 1}); err != nil {
		t.Fatal(err)
	}
	out := RenderRegions(fs)
	if !strings.Contains(out, "concave") {
		t.Fatalf("U region not classified concave:\n%s", out)
	}
	if !strings.Contains(out, "8 nodes") {
		t.Fatalf("region size missing:\n%s", out)
	}
	empty := RenderRegions(fault.NewSet(tor))
	if !strings.Contains(empty, "no fault regions") {
		t.Fatal("empty render wrong")
	}
}
