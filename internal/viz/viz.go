// Package viz renders 2-D planes of a torus as ASCII grids, primarily to
// reproduce Fig. 1 of the paper (examples of coalesced fault regions) and to
// make fault configurations inspectable from the command line.
package viz

import (
	"fmt"
	"strings"

	"repro/internal/fault"
	"repro/internal/topology"
)

// RenderPlane draws the (dimA, dimB) plane through base. Faulty nodes print
// as '#', healthy as '.', with dimA across and dimB down (origin top-left).
func RenderPlane(fs *fault.Set, base topology.NodeID, dimA, dimB int) string {
	t := fs.Net()
	pl := topology.PlaneOf(t, base, dimA, dimB)
	var b strings.Builder
	fmt.Fprintf(&b, "    dim%d ->\n", dimA)
	for y := 0; y < t.K(); y++ {
		if y == 0 {
			fmt.Fprintf(&b, "dim%d ", dimB)
		} else {
			b.WriteString("     ")
		}
		for x := 0; x < t.K(); x++ {
			if fs.NodeFaulty(pl.Node(x, y)) {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderRegions summarises every coalesced region: size, shape class, and
// per-dimension extents.
func RenderRegions(fs *fault.Set) string {
	t := fs.Net()
	regs := fs.Regions()
	if len(regs) == 0 {
		return "no fault regions\n"
	}
	var b strings.Builder
	for i, r := range regs {
		kind := "concave"
		if r.Convex() {
			kind = "convex"
		}
		fmt.Fprintf(&b, "region %d: %d nodes, %s, extents", i, r.Size(), kind)
		for d := 0; d < t.N(); d++ {
			e := r.Extent(d)
			wrap := ""
			if e.Wraps {
				wrap = "w"
			}
			fmt.Fprintf(&b, " d%d:[%d..%d]%s", d, e.Lo, e.Hi, wrap)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
