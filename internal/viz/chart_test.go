package viz

import (
	"math"
	"strings"
	"testing"
)

func TestChartRendersSeries(t *testing.T) {
	xs := []float64{0.002, 0.004, 0.006, 0.008}
	ch := NewChart(xs, 4, 10)
	ch.Add("det", []float64{40, 55, 80, 200})
	ch.Add("adp", []float64{38, 45, 60, 90})
	out := ch.Render()
	if !strings.Contains(out, "a=det") || !strings.Contains(out, "b=adp") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Fatal("marks missing")
	}
	if !strings.Contains(out, "0.002") || !strings.Contains(out, "0.008") {
		t.Fatalf("x labels missing:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Fatalf("too few lines: %d", len(lines))
	}
}

func TestChartSaturatedAndMissing(t *testing.T) {
	xs := []float64{0.01, 0.02}
	ch := NewChart(xs, 3, 6)
	ch.Add("s", []float64{100, math.Inf(1)})
	ch.Add("m", []float64{math.NaN(), 120})
	out := ch.Render()
	if !strings.Contains(out, "^") {
		t.Fatalf("saturated marker missing:\n%s", out)
	}
}

func TestChartAllSaturated(t *testing.T) {
	xs := []float64{1, 2}
	ch := NewChart(xs, 3, 6)
	ch.Add("x", []float64{math.Inf(1), math.Inf(1)})
	out := ch.Render() // must not panic on empty finite range
	if out == "" {
		t.Fatal("empty render")
	}
}

func TestChartMismatchedSeriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched series did not panic")
		}
	}()
	NewChart([]float64{1, 2}, 3, 6).Add("bad", []float64{1})
}
