package viz

import (
	"fmt"
	"math"
	"strings"
)

// Chart renders x/y series as a compact ASCII plot — enough to eyeball the
// latency-vs-traffic curves of Figs. 3-5 in a terminal. Each series gets a
// letter mark; points beyond the y-clip (saturated runs) draw as '^' on the
// top row.
type Chart struct {
	xs     []float64
	series []chartSeries
	width  int
	height int
}

type chartSeries struct {
	name string
	ys   []float64 // NaN = missing; +Inf = saturated
}

// NewChart creates a chart over the given x grid. Width is per-point column
// count (total = len(xs)*width); height is the number of plot rows.
func NewChart(xs []float64, width, height int) *Chart {
	if width < 1 {
		width = 3
	}
	if height < 4 {
		height = 12
	}
	return &Chart{xs: xs, width: width, height: height}
}

// Add appends a series. ys must align with the x grid; use math.NaN for
// missing points and math.Inf(1) for saturated ones.
func (c *Chart) Add(name string, ys []float64) {
	if len(ys) != len(c.xs) {
		panic(fmt.Sprintf("viz: series %q has %d points, chart has %d", name, len(ys), len(c.xs)))
	}
	c.series = append(c.series, chartSeries{name: name, ys: ys})
}

// Render draws the chart with a y-axis scale and a legend.
func (c *Chart) Render() string {
	// y range over finite values.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range c.series {
		for _, y := range s.ys {
			if !math.IsNaN(y) && !math.IsInf(y, 0) {
				lo = math.Min(lo, y)
				hi = math.Max(hi, y)
			}
		}
	}
	if math.IsInf(lo, 1) { // nothing finite
		lo, hi = 0, 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	cols := len(c.xs) * c.width
	grid := make([][]byte, c.height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	mark := func(i int) byte { return byte('a' + i%26) }
	for si, s := range c.series {
		for xi, y := range s.ys {
			col := xi*c.width + c.width/2
			switch {
			case math.IsNaN(y):
				continue
			case math.IsInf(y, 1):
				grid[0][col] = '^'
			default:
				frac := (y - lo) / (hi - lo)
				row := int(math.Round(float64(c.height-1) * (1 - frac)))
				if row < 0 {
					row = 0
				}
				if row >= c.height {
					row = c.height - 1
				}
				if grid[row][col] == ' ' || grid[row][col] == '^' {
					grid[row][col] = mark(si)
				} else {
					grid[row][col] = '*' // collision
				}
			}
		}
	}
	var b strings.Builder
	for r := 0; r < c.height; r++ {
		yVal := hi - (hi-lo)*float64(r)/float64(c.height-1)
		fmt.Fprintf(&b, "%8.1f |%s\n", yVal, string(grid[r]))
	}
	b.WriteString(strings.Repeat(" ", 9) + "+" + strings.Repeat("-", cols) + "\n")
	// x labels: first, middle, last.
	lbl := make([]byte, cols+10)
	for i := range lbl {
		lbl[i] = ' '
	}
	place := func(xi int) {
		s := trimFloat(c.xs[xi])
		at := 10 + xi*c.width
		copy(lbl[min(at, len(lbl)-len(s)):], s)
	}
	place(0)
	if len(c.xs) > 2 {
		place(len(c.xs) / 2)
	}
	place(len(c.xs) - 1)
	b.WriteString(strings.TrimRight(string(lbl), " ") + "\n")
	// Legend in series insertion order.
	names := make([]string, len(c.series))
	for i, s := range c.series {
		names[i] = fmt.Sprintf("%c=%s", mark(i), s.name)
	}
	b.WriteString("legend: " + strings.Join(names, "  ") + "  (^ = saturated)\n")
	return b.String()
}

func trimFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.4f", v), "0"), ".")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
