package lint

import (
	"go/ast"
	"go/types"
)

// RefLife enforces the arena contract: `*message.Message` pointers obtained
// from the pool (Pool.At / Pool.New) are call-local scratch. The only
// durable handle is message.Ref — a pointer stored in a struct field, a
// package variable, a map or a slice survives a Pool.Free of its slot and
// silently aliases the next worm recycled into it.
//
// The check is structural rather than a whole-program escape analysis:
//
//   - any struct field, package-level variable, or named container type
//     under internal/ whose type holds *message.Message is flagged at its
//     declaration (slices, arrays, maps, channels and pointers are
//     traversed; function types are not — callbacks receive pointers
//     call-locally);
//   - any assignment of a *message.Message value into a field selector or
//     an index expression is flagged at the store.
//
// internal/message itself is exempt: the pool's slot table is the arena's
// own implementation. Pre-adoption buffers (messages built by traffic
// sources before Network.Enqueue adopts them) are the legitimate exception
// and carry `//simlint:ignore reflife -- ...` directives.
var RefLife = &Analyzer{
	Name: "reflife",
	Doc:  "arena *message.Message pointers must stay call-local; message.Ref is the durable handle",
	Run:  runRefLife,
}

func runRefLife(pass *Pass) (any, error) {
	path := pass.Pkg.Path()
	if !internalPkg(path) || path == modulePath+"/internal/message" {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				for _, field := range n.Fields.List {
					tv, ok := pass.TypesInfo.Types[field.Type]
					if ok && holdsMessagePtr(tv.Type) {
						pass.Reportf(field.Pos(),
							"struct field holds *message.Message, which dangles after Pool.Free; store a message.Ref and resolve it with Pool.At at use")
					}
				}
			case *ast.GenDecl:
				if n.Tok.String() != "var" {
					return true
				}
				// Only package-level vars: locals are call-local.
				for _, spec := range n.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						obj := pass.TypesInfo.Defs[name]
						if obj == nil || obj.Parent() != pass.Pkg.Scope() {
							continue
						}
						t := obj.Type()
						if holdsMessagePtr(t) || isMessagePtr(t) {
							pass.Reportf(name.Pos(),
								"package variable %s holds *message.Message beyond any call; store a message.Ref instead", name.Name)
						}
					}
				}
			case *ast.TypeSpec:
				obj := pass.TypesInfo.Defs[n.Name]
				if obj == nil {
					return true
				}
				u := obj.Type().Underlying()
				if _, isStruct := u.(*types.Struct); isStruct {
					return true // fields reported individually above
				}
				if holdsMessagePtr(u) {
					pass.Reportf(n.Pos(),
						"type %s is a durable container of *message.Message; key it by message.Ref instead", n.Name.Name)
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break // x, y = f() — tuple RHS is never a bare pointer
					}
					switch ast.Unparen(lhs).(type) {
					case *ast.SelectorExpr, *ast.IndexExpr:
					default:
						continue
					}
					tv, ok := pass.TypesInfo.Types[n.Rhs[i]]
					if !ok || tv.IsNil() || !isMessagePtr(tv.Type) {
						continue
					}
					pass.Reportf(n.Pos(),
						"storing a *message.Message into %s outlives the call; pass a message.Ref and resolve it with Pool.At at use",
						exprString(pass.Fset, lhs))
				}
			}
			return true
		})
	}
	return nil, nil
}

// isMessagePtr reports whether t is exactly *message.Message.
func isMessagePtr(t types.Type) bool {
	p, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := types.Unalias(p.Elem()).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == modulePath+"/internal/message" &&
		named.Obj().Name() == "Message"
}

// holdsMessagePtr reports whether a value of type t durably contains a
// *message.Message: directly, or inside slices, arrays, maps, channels or
// pointers. Named element types are not descended into — their own
// declarations are the right place to report — and function types are
// skipped (a callback parameter is call-local).
func holdsMessagePtr(t types.Type) bool {
	switch u := types.Unalias(t).(type) {
	case *types.Pointer:
		return isMessagePtr(u) || holdsMessagePtrShallow(u.Elem())
	case *types.Slice:
		return holdsMessagePtr(u.Elem())
	case *types.Array:
		return holdsMessagePtr(u.Elem())
	case *types.Map:
		return holdsMessagePtr(u.Key()) || holdsMessagePtr(u.Elem())
	case *types.Chan:
		return holdsMessagePtr(u.Elem())
	}
	return false
}

// holdsMessagePtrShallow continues the traversal one pointer level down
// without re-treating the pointer itself as a candidate (so **Message and
// *[]*Message are caught, but a pointer to a named struct is left to that
// struct's own declaration).
func holdsMessagePtrShallow(t types.Type) bool {
	switch u := types.Unalias(t).(type) {
	case *types.Slice, *types.Array, *types.Map, *types.Chan:
		return holdsMessagePtr(u)
	}
	return false
}
