package lint

import (
	"go/ast"
	"strings"
)

// PhasePurity keeps the parallel engine's two-phase barrier honest.
// Functions that run in the compute phase (phase A: route/switch/inject
// decisions taken concurrently across worker domains) are marked
//
//	//simlint:phase compute
//
// and must never call a commit-only API directly: shared-state mutation is
// staged through worker.emit / worker.emitTrace / worker.stageArrivalW and
// replayed in serial order at the barrier. A direct call to an applyFx-side
// API from compute code is a data race on the serial order — exactly the
// class of bug the phase-barriered engine exists to exclude.
//
// The check is per-function and syntactic over resolved callees: every call
// in a marked function's body (function literals included) is matched
// against the commit-only denylist. Transitive helpers the compute phase
// calls should carry the marker themselves.
var PhasePurity = &Analyzer{
	Name: "phasepurity",
	Doc:  "//simlint:phase compute functions must not call commit-only engine APIs",
	Run:  runPhasePurity,
}

// phaseDirective extracts the phase name from a //simlint:phase directive
// in the doc comment, if any.
func phaseDirective(doc *ast.CommentGroup) (string, *ast.Comment) {
	if doc == nil {
		return "", nil
	}
	for _, c := range doc.List {
		if rest, ok := strings.CutPrefix(c.Text, directivePrefix+"phase"); ok {
			return strings.TrimSpace(rest), c
		}
	}
	return "", nil
}

// commitOnly is the denylist of commit-side APIs, keyed by
// (*types.Func).FullName. Each entry names the sanctioned compute-side
// route in its message.
var commitOnly = map[string]string{
	"(*" + modulePath + "/internal/network.Network).applyFx":       "stage the effect with worker.emit; applyFx is replayed only at commit",
	"(*" + modulePath + "/internal/network.Network).trace":         "stage the event with worker.emitTrace; direct emission bypasses the serial replay order",
	"(*" + modulePath + "/internal/network.Network).stageArrival":  "route transfers through worker.stageArrivalW so they land in the receiver's mailbox",
	"(*" + modulePath + "/internal/network.Network).commitEffects": "the barrier itself; only the step driver may run it",
	"(*" + modulePath + "/internal/network.Network).Enqueue":       "external injection API; compute code must inject via the staged arrival path",
	"(*" + modulePath + "/internal/message.Pool).Free":             "slot recycling must happen in serial commit order (fxDeliver/fxDrop effects)",
	"(*" + modulePath + "/internal/metrics.Collector).Delivered":   "metrics mutate shared counters; emit an fxDeliver effect instead",
	"(*" + modulePath + "/internal/metrics.Collector).Stop":        "metrics mutate shared counters; emit an fxStop effect instead",
	"(*" + modulePath + "/internal/metrics.Collector).Dropped":     "metrics mutate shared counters; emit an fxDrop effect instead",
	"(*" + modulePath + "/internal/metrics.Collector).Reinjected":  "metrics mutate shared counters; stage through the worker effect log",
	"(*" + modulePath + "/internal/metrics.Collector).Lost":        "metrics mutate shared counters; stage through the worker effect log",
	"(" + modulePath + "/internal/trace.Tracer).Trace":             "tracer calls must go through worker.emitTrace to preserve the serial event order",
}

func runPhasePurity(pass *Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			phase, dir := phaseDirective(fn.Doc)
			if dir == nil {
				continue
			}
			switch phase {
			case "compute":
			case "commit":
				continue // commit-side marker is documentation only
			default:
				pass.Reportf(dir.Pos(),
					"unknown //simlint:phase %q: want compute or commit", phase)
				continue
			}
			if fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := funcObj(pass.TypesInfo, call)
				if callee == nil {
					return true
				}
				if why, banned := commitOnly[callee.FullName()]; banned {
					pass.Reportf(call.Pos(),
						"compute-phase function %s calls commit-only %s: %s",
						fn.Name.Name, callee.FullName(), why)
				}
				return true
			})
		}
	}
	return nil, nil
}
