package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestMalformedDirectives: a reasonless //simlint:ignore suppresses
// nothing and is reported itself, and //simlint:phase with an unknown
// phase is reported.
func TestMalformedDirectives(t *testing.T) {
	loader := lint.NewLoader()
	pkg, err := loader.LoadFiles("repro/internal/network", "testdata/bad_directive.go")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{lint.MapRange, lint.PhasePurity})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"maprange":    "nondeterministic order",     // the reasonless ignore must not suppress
		"directive":   "malformed //simlint:ignore", // and is itself a finding
		"phasepurity": `unknown //simlint:phase "quantum"`,
	}
	for _, d := range diags {
		pat, ok := want[d.Analyzer]
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		if !strings.Contains(d.Message, pat) {
			t.Errorf("%s diagnostic %q does not mention %q", d.Analyzer, d.Message, pat)
		}
		delete(want, d.Analyzer)
	}
	for a := range want {
		t.Errorf("missing %s diagnostic", a)
	}
}
