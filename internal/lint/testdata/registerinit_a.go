// Fixture package A for the registerinit analyzer.
package fixture

import (
	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func init() {
	// Well-formed: init(), literal name, literal aliases.
	routing.Register(routing.Info{
		Name:        "fx-good",
		Description: "fixture algorithm",
		Aliases:     []string{"fx-alias"},
	}, nil)
	traffic.RegisterPattern(traffic.Info{Name: "fx-pattern"}, nil, nil)
	fault.RegisterSchedule(fault.ScheduleInfo{Name: "fx-schedule"}, nil, nil)
}

var computed = "fx-" + "computed"

func init() {
	routing.Register(routing.Info{Name: computed}, nil) // want `Name must be a string literal`
	routing.Register(routing.Info{
		Name:    "fx-aliased",
		Aliases: []string{"fx-ok-alias", computed}, // want `alias must be a string literal`
	}, nil)
}

func lateRegistration() {
	topology.Register(topology.Info{Name: "fx-late"}, nil, nil) // want `topology registration outside init\(\)`
}

func suppressedLate() {
	topology.Register(topology.Info{Name: "fx-plugin"}, nil, nil) //simlint:ignore registerinit -- test-only registry mutation, unwound by t.Cleanup
}
