// Fixture for the reflife analyzer; type-checked under an internal/-scoped
// import path other than repro/internal/message.
package fixture

import (
	"repro/internal/message"
	"repro/internal/topology"
)

type holder struct {
	cur  *message.Message            // want `struct field holds \*message.Message`
	all  []*message.Message          // want `struct field holds \*message.Message`
	byID map[uint64]*message.Message // want `struct field holds \*message.Message`

	// Ref is the sanctioned durable handle.
	ref  message.Ref
	refs []message.Ref
}

var stash *message.Message // want `package variable stash holds \*message.Message`

type cache map[message.Ref]*message.Message // want `type cache is a durable container`

type refList []message.Ref // fine: refs are durable by design

func callLocal(p *message.Pool, r message.Ref) topology.NodeID {
	m := p.At(r) // pointers are fine while the call lasts
	return m.Src
}

type anySink struct{ v any }

func storeIntoInterface(s *anySink, p *message.Pool, r message.Ref) {
	s.v = p.At(r) // want `storing a \*message.Message into s.v`
}

func storeIntoMap(p *message.Pool, r message.Ref) {
	m := map[message.Ref]*message.Message{} // the type is anonymous here; the store below is the finding
	m[r] = p.At(r)                          // want `storing a \*message.Message into m\[r\]`
	_ = m
}

type pollBuf struct {
	// The traffic-source idiom: pre-adoption scratch reset every Poll.
	out []*message.Message //simlint:ignore reflife -- pre-adoption scratch, reset at the top of every Poll
}

func (b *pollBuf) take(m *message.Message) {
	b.out = append(b.out, m) // appending keeps the slice type; the field decl above is the contract point
}
