// Fixture for the maprange analyzer; type-checked under the import path
// repro/internal/network so it counts as determinism-critical.
package fixture

import "sort"

func flaggedKeyValue(m map[string]int, sink func(string, int)) {
	for k, v := range m { // want `maprange: iteration over map m has nondeterministic order`
		sink(k, v)
	}
}

func flaggedKeyOnly(m map[string]int) int {
	s := 0
	for k := range m { // want `nondeterministic order`
		s += len(k)
	}
	return s
}

func flaggedValueOnly(m map[string]int, sink func(int)) {
	for _, v := range m { // want `nondeterministic order`
		sink(v)
	}
}

// The canonical rewrite: the key-collection loop and the sorted re-range
// are both order-free.
func sortedRewrite(m map[string]int, sink func(string, int)) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		sink(k, m[k])
	}
}

// Counting iterations binds no iteration variable; order cannot leak.
func keyless(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// A collect loop whose body does more than append is still flagged.
func flaggedCollectPlus(m map[string]int, sink func(string)) []string {
	var keys []string
	for k := range m { // want `nondeterministic order`
		keys = append(keys, k)
		sink(k)
	}
	return keys
}

func suppressedTrailing(m map[string]int) int {
	max := 0
	for k := range m { //simlint:ignore maprange -- max over an unordered set commutes
		if len(k) > max {
			max = len(k)
		}
	}
	return max
}

func suppressedStanding(m map[string]int) int {
	sum := 0
	//simlint:ignore maprange -- integer sum over an unordered set commutes
	for _, v := range m {
		sum += v
	}
	return sum
}

// Slices are ordered; never flagged.
func sliceRange(s []int, sink func(int)) {
	for _, v := range s {
		sink(v)
	}
}
