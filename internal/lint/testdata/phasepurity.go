// Fixture for the phasepurity analyzer.
package fixture

import (
	"repro/internal/message"
	"repro/internal/metrics"
	"repro/internal/trace"
)

//simlint:phase compute
func computeBad(p *message.Pool, c *metrics.Collector, r message.Ref) {
	m := p.At(r)               // reading through the pool is fine
	c.Delivered(m, 0)          // want `commit-only \(\*repro/internal/metrics.Collector\).Delivered`
	p.Free(r)                  // want `commit-only \(\*repro/internal/message.Pool\).Free`
	c.Stop(m, metrics.StopVia) // want `commit-only`
}

//simlint:phase compute
func computeTracer(tr trace.Tracer, ev trace.Event) {
	tr.Trace(ev) // want `commit-only \(repro/internal/trace.Tracer\).Trace`
}

//simlint:phase compute
func computeInLiteral(p *message.Pool, r message.Ref) func() {
	return func() {
		p.Free(r) // want `commit-only`
	}
}

//simlint:phase compute
func computeGood(p *message.Pool, r message.Ref) int {
	return p.At(r).Len
}

//simlint:phase commit
func commitSide(p *message.Pool, r message.Ref) {
	p.Free(r) // commit code may free
}

// Unmarked functions are out of scope: the marker is the contract.
func unmarked(p *message.Pool, r message.Ref) {
	p.Free(r)
}

//simlint:phase compute
func computeSuppressed(p *message.Pool, r message.Ref) {
	p.Free(r) //simlint:ignore phasepurity -- serial-only path, worker.direct guards it
}
