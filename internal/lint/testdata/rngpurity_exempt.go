// Fixture proving rngpurity scoping: loaded once under the import path
// repro/internal/rng (the exempt package) and once under repro/cmd/fixture
// (outside internal/); in both cases it must produce no findings.
package fixture

import "time"

func seedFromClock() int64 {
	return time.Now().UnixNano()
}
