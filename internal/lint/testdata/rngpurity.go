// Fixture for the rngpurity analyzer; type-checked under an
// internal/-scoped import path (anything but internal/rng).
package fixture

import (
	"crypto/rand"     // want `rngpurity: import of crypto/rand`
	mrand "math/rand" // want `rngpurity: import of math/rand`
	"os"
	"time"
)

func draws(buf []byte) int64 {
	_, _ = rand.Read(buf)
	return mrand.Int63()
}

func clockReads() time.Duration {
	start := time.Now()      // want `call to time.Now`
	return time.Since(start) // want `call to time.Since`
}

func pid() int {
	return os.Getpid() // want `call to os.Getpid`
}

// Duration arithmetic and formatting use the time package without reading
// the wall clock; only Now/Since/Until are ambient.
func allowedDuration(d time.Duration) string {
	return (2 * d).String()
}

// Non-entropy os calls stay allowed.
func allowedOS(name string) error {
	return os.Remove(name)
}

func suppressed() int64 {
	return time.Now().UnixNano() //simlint:ignore rngpurity -- wall clock feeds the journal header, never the simulation
}
