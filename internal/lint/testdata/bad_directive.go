// Fixture for malformed suppression directives: an ignore without a
// reason must not suppress, and is a finding itself; an unknown phase name
// is a finding.
package fixture

func reasonless(m map[string]int) int {
	s := 0
	for _, v := range m { //simlint:ignore maprange
		s += v
	}
	return s
}

//simlint:phase quantum
func unknownPhase() {}
