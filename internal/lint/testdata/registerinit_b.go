// Fixture package B for the registerinit analyzer: registers a name and an
// alias that package A already claimed, which the cross-package duplicate
// check must reject.
package fixtureb

import "repro/internal/routing"

func init() {
	routing.Register(routing.Info{Name: "fx-good"}, nil)  // want `duplicate routing registration "fx-good"`
	routing.Register(routing.Info{Name: "fx-fresh"}, nil) // unique: fine
	routing.Register(routing.Info{
		Name:    "fx-shadow",
		Aliases: []string{"fx-alias"}, // want `duplicate routing registration "fx-alias"`
	}, nil)
}
