package lint

import (
	"fmt"
	"go/ast"
	"sort"
)

// Run executes the analyzers over the packages, applies //simlint:ignore
// suppression, folds in the cross-package registry duplicate check, and
// returns position-sorted diagnostics. A non-nil error means an analyzer
// itself failed, not that it found something.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	var entries []RegEntry
	filesByName := map[string][]*ast.File{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			filesByName[name] = append(filesByName[name], f)
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				diags:     &diags,
			}
			res, err := a.Run(pass)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
			}
			if regs, ok := res.([]RegEntry); ok {
				entries = append(entries, regs...)
			}
		}
	}
	diags = append(diags, RegistryDuplicates(entries)...)
	return suppress(pkgs[0].Fset, filesByName, diags), nil
}

// RegistryDuplicates reports every registry name registered more than once
// across the analyzed packages: at runtime a duplicate either panics or
// silently shadows, depending on package initialisation order.
func RegistryDuplicates(entries []RegEntry) []Diagnostic {
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.Registry != b.Registry {
			return a.Registry < b.Registry
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	var out []Diagnostic
	for i := 1; i < len(entries); i++ {
		prev, cur := entries[i-1], entries[i]
		if cur.Registry == prev.Registry && cur.Name == prev.Name {
			out = append(out, Diagnostic{
				Analyzer: RegisterInit.Name,
				Pos:      cur.Pos,
				Message: fmt.Sprintf("duplicate %s registration %q (first registered at %s); initialisation order decides which wins",
					cur.Registry, cur.Name, prev.Pos),
			})
		}
	}
	return out
}
