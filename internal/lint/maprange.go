package lint

import (
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// MapRange flags `for range` over a map in the determinism-critical
// packages. Go randomises map iteration order per run, so any map walk
// whose iteration order can reach a trace event, a metrics counter, an rng
// draw or a routing decision breaks the bit-identical-for-a-fixed-seed
// contract.
//
// Two shapes are recognised as safe and not flagged:
//
//   - `for range m { ... }` with neither key nor value bound: every
//     iteration is identical, so order cannot leak.
//   - the key-collection idiom `for k := range m { keys = append(keys, k) }`
//     whose single statement appends the key to a slice — the canonical
//     first half of a sort-then-range rewrite.
//
// Everything else needs either the sorted-keys rewrite or a justified
// `//simlint:ignore maprange -- <reason>` directive.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc:  "forbid nondeterministic map iteration in determinism-critical packages",
	Run:  runMapRange,
}

func runMapRange(pass *Pass) (any, error) {
	if !criticalPackages[pass.Pkg.Path()] {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if rng.Key == nil && rng.Value == nil {
				return true // order-free: no iteration variable bound
			}
			if isKeyCollect(pass, rng) {
				return true
			}
			pass.Reportf(rng.For,
				"iteration over map %s has nondeterministic order in determinism-critical package %s; range over sorted keys instead, or annotate `//simlint:ignore maprange -- <why order cannot leak>`",
				exprString(pass.Fset, rng.X), pass.Pkg.Path())
			return true
		})
	}
	return nil, nil
}

// isKeyCollect recognises `for k := range m { s = append(s, k) }` (value
// unbound, single append of the key into a slice).
func isKeyCollect(pass *Pass, rng *ast.RangeStmt) bool {
	key, ok := ast.Unparen(rng.Key).(*ast.Ident)
	if !ok || rng.Value != nil || key.Name == "_" {
		return false
	}
	if len(rng.Body.List) != 1 {
		return false
	}
	asg, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 || asg.Tok != token.ASSIGN {
		return false
	}
	call, ok := ast.Unparen(asg.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 || call.Ellipsis != token.NoPos {
		return false
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	if b, ok := pass.TypesInfo.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	// append's target must be the assignment's own LHS ...
	if exprString(pass.Fset, asg.Lhs[0]) != exprString(pass.Fset, call.Args[0]) {
		return false
	}
	// ... and the appended element exactly the key variable.
	arg, ok := ast.Unparen(call.Args[1]).(*ast.Ident)
	if !ok {
		return false
	}
	return pass.TypesInfo.Uses[arg] == pass.TypesInfo.Defs[key]
}

// exprString renders an expression compactly for diagnostics.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var sb strings.Builder
	if err := printer.Fprint(&sb, fset, e); err != nil {
		return "<expr>"
	}
	return sb.String()
}
