package lint

import (
	"go/ast"
	"strconv"
)

// RNGPurity forbids ambient entropy anywhere under internal/ except
// internal/rng. All randomness must flow through the namespaced split
// streams (rng.Split), which is what makes per-router draws independent of
// scheduling and worker count; a stray math/rand call or wall-clock read
// silently decouples a run from its seed.
//
// Banned: importing math/rand, math/rand/v2 or crypto/rand, and calling
// time.Now / time.Since / time.Until or os.Getpid / os.Getppid /
// os.Environ. (time.Duration arithmetic, timers in CLIs under cmd/, and
// test files are all out of scope.)
var RNGPurity = &Analyzer{
	Name: "rngpurity",
	Doc:  "forbid ambient entropy outside internal/rng",
	Run:  runRNGPurity,
}

// bannedImports are package imports that smuggle unseeded entropy.
var bannedImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

// bannedCalls maps package path -> function names that read ambient
// machine state (wall clock, pid, environment).
var bannedCalls = map[string]map[string]bool{
	"time": {"Now": true, "Since": true, "Until": true},
	"os":   {"Getpid": true, "Getppid": true, "Environ": true},
}

func runRNGPurity(pass *Pass) (any, error) {
	path := pass.Pkg.Path()
	if !internalPkg(path) || path == modulePath+"/internal/rng" {
		return nil, nil
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if bannedImports[p] {
				pass.Reportf(imp.Pos(),
					"import of %s in %s: ambient entropy is forbidden under internal/; draw from a repro/internal/rng split stream instead",
					p, path)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := funcObj(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if names := bannedCalls[fn.Pkg().Path()]; names[fn.Name()] {
				pass.Reportf(call.Pos(),
					"call to %s.%s in %s: ambient entropy is forbidden under internal/; thread cycle counts and seeds explicitly",
					fn.Pkg().Path(), fn.Name(), path)
			}
			return true
		})
	}
	return nil, nil
}
