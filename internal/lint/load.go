package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
)

// A Package is one loaded, type-checked unit of analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks packages from source. It resolves
// imports with the standard library's source importer (go/build shells out
// to the go command for module-aware lookup), so it needs no export data
// and no dependencies beyond the toolchain — but the process working
// directory must be inside the module.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewLoader builds a loader; all packages it loads share one FileSet and
// one importer, so shared dependencies are type-checked once.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load resolves the go-list patterns and type-checks every matched
// package's non-test Go files.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, errb.String())
	}
	var pkgs []*Package
	dec := json.NewDecoder(&out)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list -json decode: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := l.LoadFiles(lp.ImportPath, files...)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadFiles type-checks an explicit set of Go files as a single package
// under the given import path. Fixture tests use it to make a testdata
// package impersonate a determinism-critical path.
func (l *Loader) LoadFiles(path string, filenames ...string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return l.Check(path, files)
}

// Check type-checks already-parsed files (which must come from this
// loader's FileSet) as a package under the given import path.
func (l *Loader) Check(path string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	return &Package{Path: path, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}
