package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// The fixtures impersonate real import paths (LoadFiles type-checks them
// under any path we choose), which is how the package-scoped analyzers are
// driven both in and out of scope.

func TestMapRange(t *testing.T) {
	linttest.Run(t, "testdata", []*lint.Analyzer{lint.MapRange},
		linttest.Fixture{Path: "repro/internal/network", Files: []string{"maprange.go"}})
}

// TestMapRangeOutOfScope proves the same violations pass untouched outside
// the determinism-critical set.
func TestMapRangeOutOfScope(t *testing.T) {
	loader := lint.NewLoader()
	pkg, err := loader.LoadFiles("repro/internal/sweep", "testdata/maprange.go")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{lint.MapRange})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic outside critical packages: %s", d)
	}
}

func TestRNGPurity(t *testing.T) {
	linttest.Run(t, "testdata", []*lint.Analyzer{lint.RNGPurity},
		linttest.Fixture{Path: "repro/internal/traffic", Files: []string{"rngpurity.go"}})
}

// TestRNGPurityExempt drives the same clock-reading code through the two
// exempt scopes: internal/rng itself and anything outside internal/.
func TestRNGPurityExempt(t *testing.T) {
	for _, path := range []string{"repro/internal/rng", "repro/cmd/swsim"} {
		linttest.Run(t, "testdata", []*lint.Analyzer{lint.RNGPurity},
			linttest.Fixture{Path: path, Files: []string{"rngpurity_exempt.go"}})
	}
}

func TestRefLife(t *testing.T) {
	linttest.Run(t, "testdata", []*lint.Analyzer{lint.RefLife},
		linttest.Fixture{Path: "repro/internal/network", Files: []string{"reflife.go"}})
}

// TestRefLifeExemptInMessage proves the arena's own package may keep
// pointer tables.
func TestRefLifeExemptInMessage(t *testing.T) {
	loader := lint.NewLoader()
	pkg, err := loader.LoadFiles("repro/internal/message", "testdata/reflife.go")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{lint.RefLife})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic inside internal/message: %s", d)
	}
}

// TestRegisterInit loads two fixture packages together so the
// cross-package duplicate-name check sees both sides.
func TestRegisterInit(t *testing.T) {
	linttest.Run(t, "testdata", []*lint.Analyzer{lint.RegisterInit},
		linttest.Fixture{Path: "repro/internal/fixturea", Files: []string{"registerinit_a.go"}},
		linttest.Fixture{Path: "repro/internal/fixtureb", Files: []string{"registerinit_b.go"}})
}

func TestPhasePurity(t *testing.T) {
	linttest.Run(t, "testdata", []*lint.Analyzer{lint.PhasePurity},
		linttest.Fixture{Path: "repro/internal/network", Files: []string{"phasepurity.go"}})
}
