// Package linttest is an analysistest-style fixture harness for the
// simlint analyzers (the standard-library analogue of
// golang.org/x/tools/go/analysis/analysistest).
//
// A fixture is a set of Go files under the analyzer's testdata directory.
// Expected findings are marked with trailing comments:
//
//	for k := range m { // want `nondeterministic order`
//
// The comment's backquoted (or double-quoted) argument is a regexp that
// must match an emitted diagnostic on the same line; every diagnostic must
// in turn be covered by a want. Multiple expectations on one line are
// written as repeated arguments: // want `first` `second`.
//
// Fixtures are type-checked under a caller-chosen import path, so a
// testdata package can impersonate a determinism-critical package
// (package-scoped analyzers key off the path, not the directory).
package linttest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint"
)

var wantRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// Fixture names one fixture package: its impersonated import path and its
// files, relative to dir.
type Fixture struct {
	Path  string
	Files []string
}

// Run loads each fixture as one package, runs the analyzers over all of
// them together (so cross-package checks see the full set), and diffs the
// diagnostics against the fixtures' want comments.
func Run(t *testing.T, dir string, analyzers []*lint.Analyzer, fixtures ...Fixture) {
	t.Helper()
	loader := lint.NewLoader()
	var pkgs []*lint.Package
	var wants []*want
	for _, fx := range fixtures {
		var files []string
		for _, f := range fx.Files {
			files = append(files, filepath.Join(dir, f))
		}
		pkg, err := loader.LoadFiles(fx.Path, files...)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", fx.Path, err)
		}
		pkgs = append(pkgs, pkg)
		wants = append(wants, collectWants(t, pkg.Fset, pkg.Files)...)
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var out []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				ms := wantRE.FindAllStringSubmatch(text, -1)
				if len(ms) == 0 {
					t.Fatalf("%s: malformed want comment %q", pos, c.Text)
				}
				for _, m := range ms {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					out = append(out, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}

func claim(wants []*want, d lint.Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(diagText(d)) {
			w.matched = true
			return true
		}
	}
	return false
}

func diagText(d lint.Diagnostic) string {
	return fmt.Sprintf("%s: %s", d.Analyzer, d.Message)
}
