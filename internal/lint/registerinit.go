package lint

import (
	"go/ast"
	"go/token"
	"strconv"
)

// RegisterInit enforces the registry contract shared by the five plug-in
// seams (routing algorithms, topologies, traffic patterns, arrival sources,
// fault schedules):
//
//   - Register calls appear inside init() functions, so a package's
//     capabilities are visible the moment it is imported and never depend
//     on call order at runtime;
//   - the registered Name (and every Alias) is a string literal, so the
//     full capability surface is greppable and statically known;
//   - names are unique across the whole build — the driver aggregates every
//     package's entries and reports duplicates, which at runtime would
//     silently shadow or panic depending on registration order.
//
// Run returns the package's []RegEntry for the cross-package duplicate
// check (see RegistryDuplicates).
var RegisterInit = &Analyzer{
	Name: "registerinit",
	Doc:  "registry Register calls must be in init() with unique string-literal names",
	Run:  runRegisterInit,
}

// registryFuncs maps the fully-qualified registration functions to the
// registry namespace their names live in.
var registryFuncs = map[string]string{
	modulePath + "/internal/routing.Register":        "routing",
	modulePath + "/internal/topology.Register":       "topology",
	modulePath + "/internal/traffic.RegisterPattern": "traffic-pattern",
	modulePath + "/internal/traffic.RegisterSource":  "traffic-source",
	modulePath + "/internal/fault.RegisterSchedule":  "fault-schedule",
}

// A RegEntry is one statically-resolved registry name: primary Name or
// Alias, in the given registry namespace.
type RegEntry struct {
	Registry string
	Name     string
	Pos      token.Position
}

func runRegisterInit(pass *Pass) (any, error) {
	var entries []RegEntry
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, isFunc := decl.(*ast.FuncDecl)
			inInit := isFunc && fn.Recv == nil && fn.Name.Name == "init"
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				obj := funcObj(pass.TypesInfo, call)
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				registry, ok := registryFuncs[obj.Pkg().Path()+"."+obj.Name()]
				if !ok {
					return true
				}
				if !inInit {
					pass.Reportf(call.Pos(),
						"%s registration outside init(): capabilities must be wired at import time, not at call time", registry)
				}
				entries = append(entries, registerNames(pass, registry, call)...)
				return true
			})
		}
	}
	return entries, nil
}

// registerNames extracts the string-literal Name and Aliases from the Info
// composite literal of one Register call, reporting any non-literal name.
func registerNames(pass *Pass, registry string, call *ast.CallExpr) []RegEntry {
	if len(call.Args) == 0 {
		return nil
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.CompositeLit)
	if !ok {
		pass.Reportf(call.Args[0].Pos(),
			"%s registration with a computed Info value; spell the Info literal inline so Name is a string literal", registry)
		return nil
	}
	var out []RegEntry
	sawName := false
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Name":
			sawName = true
			if name, ok := stringLit(kv.Value); ok {
				out = append(out, RegEntry{registry, name, pass.Fset.Position(kv.Value.Pos())})
			} else {
				pass.Reportf(kv.Value.Pos(),
					"%s registration Name must be a string literal, not a computed value", registry)
			}
		case "Aliases":
			al, ok := ast.Unparen(kv.Value).(*ast.CompositeLit)
			if !ok {
				pass.Reportf(kv.Value.Pos(),
					"%s registration Aliases must be a literal []string", registry)
				continue
			}
			for _, a := range al.Elts {
				if name, ok := stringLit(a); ok {
					out = append(out, RegEntry{registry, name, pass.Fset.Position(a.Pos())})
				} else {
					pass.Reportf(a.Pos(),
						"%s registration alias must be a string literal, not a computed value", registry)
				}
			}
		}
	}
	if !sawName {
		pass.Reportf(lit.Pos(), "%s registration Info has no Name field", registry)
	}
	return out
}

func stringLit(e ast.Expr) (string, bool) {
	bl, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || bl.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(bl.Value)
	return s, err == nil
}
