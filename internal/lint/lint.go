// Package lint is simlint's analyzer suite: first-party static analysis
// that turns the simulator's determinism, arena and registry contracts from
// "proven by golden-trace tests" into "rejected at vet time".
//
// The five analyzers:
//
//   - maprange: no `for range` over a map in determinism-critical packages
//     (iteration order would leak into traces and metrics).
//   - rngpurity: no ambient entropy (math/rand, crypto/rand, time.Now,
//     os.Getpid, ...) under internal/ outside internal/rng — all randomness
//     flows through the namespaced split streams.
//   - reflife: *message.Message pointers from the arena are call-local;
//     message.Ref is the only durable handle.
//   - registerinit: registry Register calls live in init() with
//     string-literal names, unique across the whole build.
//   - phasepurity: functions marked `//simlint:phase compute` never call
//     commit-only engine APIs directly, keeping the two-phase barrier honest.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer / Pass / Diagnostic, a multichecker driver, analysistest-style
// fixture tests) but is built on the standard library only — the module has
// no dependencies and stays that way.
//
// Findings are suppressed line-by-line with a justified directive:
//
//	//simlint:ignore maprange -- purge set; order folded through sort below
//
// The directive must name the analyzer(s) and carry a `-- reason`; a bare
// ignore is itself a finding. A directive suppresses findings on its own
// line or, when it stands alone, on the line below.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer so the suite can migrate to the
// upstream framework wholesale if the module ever takes the dependency.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //simlint:ignore directives.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Run performs the check on one package, reporting findings through
	// pass.Reportf. The optional result is collected by the driver for
	// cross-package checks (registerinit returns its []RegEntry).
	Run func(pass *Pass) (any, error)
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// All returns the full suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{MapRange, RNGPurity, RefLife, RegisterInit, PhasePurity}
}

// modulePath is the import-path root of this repository; the analyzers key
// their package scoping off it so fixtures can impersonate real packages.
const modulePath = "repro"

// criticalPackages are the determinism-critical packages: everything whose
// execution order can reach a trace event, a metrics counter or an rng
// draw. maprange applies here.
var criticalPackages = map[string]bool{
	modulePath + "/internal/network": true,
	modulePath + "/internal/router":  true,
	modulePath + "/internal/routing": true,
	modulePath + "/internal/fault":   true,
	modulePath + "/internal/traffic": true,
	modulePath + "/internal/core":    true,
	modulePath + "/internal/metrics": true,
}

// internalPkg reports whether path is under the module's internal/ tree.
func internalPkg(path string) bool {
	return strings.HasPrefix(path, modulePath+"/internal/")
}

// ---- //simlint:ignore directives ----

const (
	directivePrefix = "//simlint:"
	ignoreVerb      = "ignore"
)

// ignoreDirective is one parsed //simlint:ignore comment.
type ignoreDirective struct {
	names     map[string]bool // analyzer names it suppresses
	hasReason bool            // a `-- reason` tail is present
	standing  bool            // comment stands alone on its line
	pos       token.Position
}

// parseIgnores extracts every //simlint:ignore directive of a file, keyed
// by the line it appears on.
func parseIgnores(fset *token.FileSet, file *ast.File) map[int]*ignoreDirective {
	out := map[int]*ignoreDirective{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, directivePrefix)
			if !ok {
				continue
			}
			verb, rest, _ := strings.Cut(text, " ")
			if verb != ignoreVerb {
				continue
			}
			d := &ignoreDirective{names: map[string]bool{}, pos: fset.Position(c.Pos())}
			spec, reason, found := strings.Cut(rest, "--")
			d.hasReason = found && strings.TrimSpace(reason) != ""
			for _, n := range strings.FieldsFunc(spec, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
				d.names[n] = true
			}
			// A directive is "standing" when nothing but whitespace
			// precedes it on its line; it then covers the next line too.
			d.standing = d.pos.Column == 1 || onlyIndentBefore(fset, file, c)
			out[d.pos.Line] = d
		}
	}
	return out
}

// onlyIndentBefore reports whether comment c is the first token on its
// line. It is approximated by checking that no declaration or statement in
// the file starts on the same line before the comment; for directive
// purposes a trailing comment shares its line with the code it suppresses,
// so the distinction only widens coverage to the following line.
func onlyIndentBefore(fset *token.FileSet, file *ast.File, c *ast.Comment) bool {
	line := fset.Position(c.Pos()).Line
	standing := true
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil || !standing {
			return false
		}
		if fset.Position(n.Pos()).Line == line && n.Pos() < c.Pos() {
			if _, isFile := n.(*ast.File); !isFile {
				standing = false
			}
		}
		return true
	})
	return standing
}

// suppress filters diags through the files' ignore directives, and turns
// malformed directives (no analyzer name, or no `-- reason`) into findings
// of their own. Returned diagnostics are position-sorted.
func suppress(fset *token.FileSet, filesByName map[string][]*ast.File, diags []Diagnostic) []Diagnostic {
	type fileKey struct{ name string }
	ignores := map[fileKey]map[int]*ignoreDirective{}
	var out []Diagnostic
	for name, files := range filesByName {
		merged := map[int]*ignoreDirective{}
		for _, f := range files {
			for line, d := range parseIgnores(fset, f) {
				merged[line] = d
			}
		}
		ignores[fileKey{name}] = merged
		for _, d := range merged {
			if len(d.names) == 0 || !d.hasReason {
				out = append(out, Diagnostic{
					Analyzer: "directive",
					Pos:      d.pos,
					Message:  "malformed //simlint:ignore: want `//simlint:ignore <analyzer>[,...] -- <reason>`",
				})
			}
		}
	}
	covered := func(d Diagnostic) bool {
		m := ignores[fileKey{d.Pos.Filename}]
		if ig := m[d.Pos.Line]; ig != nil && ig.hasReason && ig.names[d.Analyzer] {
			return true
		}
		if ig := m[d.Pos.Line-1]; ig != nil && ig.standing && ig.hasReason && ig.names[d.Analyzer] {
			return true
		}
		return false
	}
	for _, d := range diags {
		if !covered(d) {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// funcObj resolves the called function/method object of a call expression,
// or nil for builtins, conversions and indirect calls through variables.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}
