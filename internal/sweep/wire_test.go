package sweep

import (
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
)

func wireTestPlan() Plan {
	mk := func(lambda float64) core.Point {
		cfg := core.DefaultConfig(4, 2, lambda)
		cfg.WarmupMessages = 10
		cfg.MeasureMessages = 50
		return core.Point{Label: "wire", Config: cfg}
	}
	return Plan{Name: "wiretest", Points: []core.Point{mk(0.002), mk(0.004)}}
}

func TestPlanWireRoundTrip(t *testing.T) {
	plan := wireTestPlan()
	wire := plan.Wire()
	if len(wire) != 2 {
		t.Fatalf("Wire len = %d", len(wire))
	}
	ids := plan.IDs()
	for i, pp := range wire {
		if pp.ID != ids[i] {
			t.Fatalf("point %d: wire ID %s != plan ID %s", i, pp.ID, ids[i])
		}
		if err := pp.Verify(); err != nil {
			t.Fatalf("point %d: Verify: %v", i, err)
		}
		// The JSON round trip a coordinator hop implies must preserve
		// identity: a config that re-digests differently after
		// marshal/unmarshal would poison the cache.
		b, err := json.Marshal(pp)
		if err != nil {
			t.Fatal(err)
		}
		var back PlanPoint
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if err := back.Verify(); err != nil {
			t.Fatalf("point %d after JSON round trip: %v", i, err)
		}
		if got := PointID(back.Point()); got != ids[i] {
			t.Fatalf("point %d: round-tripped ID %s != %s", i, got, ids[i])
		}
	}
}

func TestPlanPointVerifyDetectsSkew(t *testing.T) {
	pp := wireTestPlan().Wire()[0]
	pp.Config.Seed++ // simulates a divergent peer re-labelling work
	if err := pp.Verify(); err == nil {
		t.Fatal("Verify accepted a point whose config drifted from its ID")
	}
}

func okResults(latency float64) metrics.Results {
	return metrics.Results{MeanLatency: latency, Delivered: 100}
}

func TestRecordsAgree(t *testing.T) {
	ok := Record{ID: "x", Label: "l", Results: okResults(10)}
	same := Record{ID: "x", Label: "l", Results: okResults(10)}
	diff := Record{ID: "x", Label: "l", Results: okResults(11)}
	failA := Record{ID: "x", Label: "l", Err: "panic at 0xdead"}
	failB := Record{ID: "x", Label: "l", Err: "panic at 0xbeef"}
	if !RecordsAgree(ok, same) {
		t.Fatal("identical successes must agree")
	}
	if RecordsAgree(ok, diff) {
		t.Fatal("diverging successes must conflict")
	}
	if !RecordsAgree(failA, failB) {
		t.Fatal("two failures agree regardless of message text")
	}
	if RecordsAgree(ok, failA) {
		t.Fatal("success vs failure must conflict")
	}
}
