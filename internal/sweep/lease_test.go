package sweep

import (
	"testing"
	"time"
)

func TestLeaseTableFIFOAndRenew(t *testing.T) {
	lt := NewLeaseTable(10*time.Second, 3)
	now := time.Unix(1000, 0)
	for _, id := range []string{"a", "b", "c"} {
		if !lt.Add(id) {
			t.Fatalf("Add(%s) = false, want true", id)
		}
	}
	if lt.Add("a") {
		t.Fatal("re-Add(a) = true, want no-op false")
	}

	id1, tok1, ok := lt.Acquire(now, "w1")
	if !ok || id1 != "a" {
		t.Fatalf("first Acquire = %q, want a", id1)
	}
	id2, _, ok := lt.Acquire(now, "w2")
	if !ok || id2 != "b" {
		t.Fatalf("second Acquire = %q, want b (FIFO)", id2)
	}
	if q, l, f := lt.Counts(); q != 1 || l != 2 || f != 0 {
		t.Fatalf("Counts = %d/%d/%d, want 1 queued, 2 leased, 0 failed", q, l, f)
	}

	// Renew holds the lease across what would otherwise be an expiry.
	now = now.Add(9 * time.Second)
	if err := lt.Renew("a", tok1, now); err != nil {
		t.Fatalf("Renew(a): %v", err)
	}
	if err := lt.Renew("a", "bogus", now); err == nil {
		t.Fatal("Renew with wrong token succeeded")
	}
	if err := lt.Renew("zz", tok1, now); err == nil {
		t.Fatal("Renew of unknown point succeeded")
	}
	now = now.Add(5 * time.Second) // a renewed to t+23s; b expired at t+10s
	requeued, failed := lt.Expire(now)
	if len(requeued) != 1 || requeued[0] != "b" || len(failed) != 0 {
		t.Fatalf("Expire = requeued %v failed %v, want [b] []", requeued, failed)
	}
	// b re-queued behind c (never-attempted work first).
	id3, _, _ := lt.Acquire(now, "w3")
	id4, _, _ := lt.Acquire(now, "w3")
	if id3 != "c" || id4 != "b" {
		t.Fatalf("post-expiry order = %q, %q; want c then b", id3, id4)
	}

	if w, _, held := lt.Holder("a"); !held || w != "w1" {
		t.Fatalf("Holder(a) = %q/%v, want w1 held", w, held)
	}
	if !lt.Remove("a") {
		t.Fatal("Remove(a) = false")
	}
	if _, _, held := lt.Holder("a"); held {
		t.Fatal("Holder(a) held after Remove")
	}
}

func TestLeaseTableBoundedRetries(t *testing.T) {
	lt := NewLeaseTable(time.Second, 1) // one re-assignment allowed
	lt.Add("p")
	now := time.Unix(0, 0)
	for round := 0; round < 2; round++ {
		id, _, ok := lt.Acquire(now, "w")
		if !ok || id != "p" {
			t.Fatalf("round %d: Acquire = %q/%v", round, id, ok)
		}
		now = now.Add(2 * time.Second)
		requeued, failed := lt.Expire(now)
		if round == 0 {
			if len(requeued) != 1 || len(failed) != 0 {
				t.Fatalf("first expiry: requeued %v failed %v, want re-queue", requeued, failed)
			}
		} else {
			if len(requeued) != 0 || len(failed) != 1 || failed[0] != "p" {
				t.Fatalf("second expiry: requeued %v failed %v, want failed [p]", requeued, failed)
			}
		}
	}
	if _, _, ok := lt.Acquire(now, "w"); ok {
		t.Fatal("failed point still acquirable")
	}
	if reason := lt.FailReason("p"); reason == "" {
		t.Fatal("FailReason(p) empty after retry exhaustion")
	}
	if q, l, f := lt.Counts(); q != 0 || l != 0 || f != 1 {
		t.Fatalf("Counts = %d/%d/%d, want 0/0/1", q, l, f)
	}
	// A (late) result for a failed point still retires it.
	if !lt.Remove("p") {
		t.Fatal("Remove of failed point = false")
	}
	if reason := lt.FailReason("p"); reason != "" {
		t.Fatalf("FailReason after Remove = %q, want empty", reason)
	}
}

func TestLeaseTableRemoveQueued(t *testing.T) {
	lt := NewLeaseTable(time.Second, 3)
	lt.Add("a")
	lt.Add("b")
	lt.Add("c")
	if !lt.Remove("b") {
		t.Fatal("Remove(b) = false")
	}
	now := time.Unix(0, 0)
	id1, _, _ := lt.Acquire(now, "w")
	id2, _, _ := lt.Acquire(now, "w")
	if id1 != "a" || id2 != "c" {
		t.Fatalf("Acquire after mid-queue Remove = %q, %q; want a, c", id1, id2)
	}
	if _, _, ok := lt.Acquire(now, "w"); ok {
		t.Fatal("queue should be empty")
	}
}
