package sweep

import (
	"fmt"
	"strconv"
	"strings"
)

// Shard selects a deterministic subset of a plan so independent
// processes or hosts can split one sweep: shard i of n owns every plan
// point whose index is congruent to i mod n (round-robin, which keeps
// shards balanced even when cost varies smoothly along the plan, as it
// does along a λ grid). The zero value owns everything.
//
// Ownership is positional, so every shard must be generated from the
// identical plan; the stable point IDs make any divergence harmless
// rather than silent — a mismatched shard's journal simply fails to
// satisfy the plan's points (they render as skipped) instead of being
// attributed to the wrong configuration.
type Shard struct {
	// Index is this shard's number, in [0, Count).
	Index int
	// Count is the total number of shards; 0 or 1 means unsharded.
	Count int
}

// ParseShard parses the CLI form "i/n" (e.g. "0/2", "1/2"). The empty
// string is the unsharded zero value.
func ParseShard(s string) (Shard, error) {
	if s == "" {
		return Shard{}, nil
	}
	is, ns, ok := strings.Cut(s, "/")
	if !ok {
		return Shard{}, fmt.Errorf("sweep: bad shard %q (want i/n, e.g. 0/2)", s)
	}
	i, ierr := strconv.Atoi(is)
	n, nerr := strconv.Atoi(ns)
	if ierr != nil || nerr != nil {
		return Shard{}, fmt.Errorf("sweep: bad shard %q (want i/n, e.g. 0/2)", s)
	}
	sh := Shard{Index: i, Count: n}
	if err := sh.validate(); err != nil {
		return Shard{}, err
	}
	return sh, nil
}

// String renders the shard in its CLI form; the zero value is "".
func (s Shard) String() string {
	if s.Count <= 1 {
		return ""
	}
	return fmt.Sprintf("%d/%d", s.Index, s.Count)
}

func (s Shard) validate() error {
	if s.Count < 0 || s.Index < 0 || (s.Count == 0 && s.Index > 0) || (s.Count > 0 && s.Index >= s.Count) {
		return fmt.Errorf("sweep: bad shard %d/%d (want 0 <= i < n)", s.Index, s.Count)
	}
	return nil
}

// Owns reports whether this shard executes the plan point at index i.
// Front ends that distribute work outside a Plan (e.g. the saturation
// searches of figures -fig sat, which cannot shard per-probe) use it to
// split their own unit of work the same round-robin way.
func (s Shard) Owns(i int) bool {
	if s.Count <= 1 {
		return true
	}
	return i%s.Count == s.Index
}
