package sweep

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
)

// killPlan is the fixed plan the SIGKILL test runs in both the worker
// subprocess and the in-process reference: points big enough that a
// kill lands mid-sweep, small enough to keep the test quick.
func killPlan() Plan {
	points := make([]core.Point, 6)
	for i := range points {
		c := core.DefaultConfig(8, 2, 0.006)
		c.WarmupMessages = 200
		c.MeasureMessages = 2000
		c.Seed = uint64(100 + i)
		points[i] = core.Point{Label: fmt.Sprintf("kill%d", i), Config: c}
	}
	return Plan{Name: "kill", Points: points}
}

// TestSweepKillWorker is not a test of its own: it is the subprocess
// body TestKillResumeBitIdentical re-executes this test binary into,
// selected by the SWEEP_KILL_CKPT environment variable. It runs
// killPlan serially with a checkpoint journal until killed.
func TestSweepKillWorker(t *testing.T) {
	ckpt := os.Getenv("SWEEP_KILL_CKPT")
	if ckpt == "" {
		t.Skip("subprocess helper; run via TestKillResumeBitIdentical")
	}
	if _, err := Run(killPlan(), Options{Workers: 1, Checkpoint: ckpt}); err != nil {
		t.Fatal(err)
	}
}

// TestKillResumeBitIdentical is the interruption acceptance test: a
// sweep process is SIGKILLed mid-run, its journal is additionally torn
// mid-line, and a resumed run with the same checkpoint file must
// produce results bit-identical to an uninterrupted run.
func TestKillResumeBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills a subprocess")
	}
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt.jsonl")

	ref, err := Run(killPlan(), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Re-exec this test binary as the sweep worker and SIGKILL it once
	// the journal shows at least two completed points.
	cmd := exec.Command(os.Args[0], "-test.run=TestSweepKillWorker$")
	cmd.Env = append(os.Environ(), "SWEEP_KILL_CKPT="+ckpt)
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	killed := false
	deadline := time.After(2 * time.Minute)
	for !killed {
		select {
		case err := <-exited:
			// Worker finished before we killed it (very fast machine):
			// the journal is complete; resume still must reproduce.
			if err != nil {
				t.Fatalf("worker failed before kill: %v\n%s", err, out.String())
			}
			t.Log("worker completed before kill; resuming a complete journal")
			killed = true
		case <-deadline:
			cmd.Process.Kill()
			t.Fatalf("worker made no progress\n%s", out.String())
		default:
			if countLines(ckpt) >= 2 {
				cmd.Process.Kill() // SIGKILL: no cleanup, no flushing
				<-exited
				killed = true
			} else {
				time.Sleep(2 * time.Millisecond)
			}
		}
	}
	if n := countLines(ckpt); n >= len(killPlan().Points) {
		t.Logf("journal already complete (%d records): boundary case only", n)
	}

	// Interruption geometry 1: the journal exactly as the kill left it
	// (single whole-line appends end at a record boundary).
	boundary := filepath.Join(dir, "boundary.jsonl")
	copyFile(t, ckpt, boundary)
	got, err := Run(killPlan(), Options{Workers: 1, Checkpoint: boundary})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, ref, got)

	// Interruption geometry 2: the same journal torn mid-line, as if the
	// process died inside a write. The damaged record is re-run.
	midline := filepath.Join(dir, "midline.jsonl")
	copyFile(t, ckpt, midline)
	data, err := os.ReadFile(midline)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 12 {
		if err := os.WriteFile(midline, data[:len(data)-12], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err = Run(killPlan(), Options{Workers: 1, Checkpoint: midline})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, ref, got)
}

func countLines(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	return bytes.Count(data, []byte{'\n'})
}

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
