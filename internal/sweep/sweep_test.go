package sweep

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
)

// fakePool builds an Options.runSweepFunc that executes points serially
// through run, honouring the completion-callback contract of
// core.RunSweepFunc.
func fakePool(run func(core.Config) (metrics.Results, error)) func([]core.Point, int, func(int, core.PointResult)) []core.PointResult {
	return func(points []core.Point, workers int, done func(int, core.PointResult)) []core.PointResult {
		results := make([]core.PointResult, len(points))
		for i, pt := range points {
			res, err := run(pt.Config)
			results[i] = core.PointResult{Point: pt, Results: res, Err: err}
			if done != nil {
				done(i, results[i])
			}
		}
		return results
	}
}

// lambdaRunner fakes the simulator with a deterministic function of the
// config, so cached and fresh results are comparable.
func lambdaRunner(c core.Config) (metrics.Results, error) {
	return metrics.Results{MeanLatency: 100 * c.Lambda, Delivered: uint64(c.Seed)}, nil
}

func testPlan(n int) Plan {
	points := make([]core.Point, n)
	for i := range points {
		c := core.DefaultConfig(4, 2, 0.002*float64(i+1))
		c.Seed = uint64(i + 1)
		points[i] = core.Point{Label: fmt.Sprintf("p%d", i), Config: c}
	}
	return Plan{Name: "test", Points: points}
}

func TestPointIDStableAndDistinct(t *testing.T) {
	plan := testPlan(4)
	ids := plan.IDs()
	seen := map[string]bool{}
	for i, id := range ids {
		if len(id) != 16 {
			t.Fatalf("id %q: want 16 hex digits", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
		if again := PointID(plan.Points[i]); again != id {
			t.Fatalf("id not stable: %q then %q", id, again)
		}
	}
	// Any config change must change the ID; a label change too.
	pt := plan.Points[0]
	pt.Config.V = 6
	if PointID(pt) == ids[0] {
		t.Fatal("config change did not change the point ID")
	}
	pt = plan.Points[0]
	pt.Label = "renamed"
	if PointID(pt) == ids[0] {
		t.Fatal("label change did not change the point ID")
	}
}

func TestParseShard(t *testing.T) {
	for _, tc := range []struct {
		in      string
		want    Shard
		wantErr bool
	}{
		{"", Shard{}, false},
		{"0/2", Shard{0, 2}, false},
		{"1/2", Shard{1, 2}, false},
		{"3/4", Shard{3, 4}, false},
		{"2/2", Shard{}, true},
		{"-1/2", Shard{}, true},
		{"1/-2", Shard{}, true},
		{"1", Shard{}, true},
		{"a/b", Shard{}, true},
		{"1/2/3", Shard{}, true},
	} {
		got, err := ParseShard(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseShard(%q): want error, got %v", tc.in, got)
			}
			continue
		}
		if err != nil || got != tc.want {
			t.Errorf("ParseShard(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
}

func TestShardPartition(t *testing.T) {
	// Every point is owned by exactly one of the n shards.
	const points, n = 7, 3
	for i := 0; i < points; i++ {
		owners := 0
		for s := 0; s < n; s++ {
			if (Shard{Index: s, Count: n}).Owns(i) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("point %d owned by %d shards", i, owners)
		}
	}
	if !(Shard{}).Owns(5) || !(Shard{0, 1}).Owns(5) {
		t.Fatal("unsharded must own everything")
	}
}

func TestRunShardSkipsForeignPoints(t *testing.T) {
	plan := testPlan(5)
	res, err := Run(plan, Options{Shard: Shard{Index: 1, Count: 2}, runSweepFunc: fakePool(lambdaRunner)})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		mine := i%2 == 1
		if mine && r.Err != nil {
			t.Fatalf("point %d: owned point failed: %v", i, r.Err)
		}
		if !mine && !errors.Is(r.Err, ErrSkipped) {
			t.Fatalf("point %d: foreign point not marked skipped: %v", i, r.Err)
		}
		if r.Label != plan.Points[i].Label {
			t.Fatalf("point %d: result misaligned with plan", i)
		}
	}
}

// TestRunCheckpointResume interrupts a sweep (by sharding it) and
// resumes with the same journal: only missing points run, and the final
// results equal an uninterrupted run exactly.
func TestRunCheckpointResume(t *testing.T) {
	plan := testPlan(6)
	ckpt := filepath.Join(t.TempDir(), "ckpt.jsonl")

	full, err := Run(plan, Options{runSweepFunc: fakePool(lambdaRunner)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(plan, Options{Checkpoint: ckpt, Shard: Shard{0, 2}, runSweepFunc: fakePool(lambdaRunner)}); err != nil {
		t.Fatal(err)
	}
	var ran []string
	counting := fakePool(lambdaRunner)
	resumed, err := Run(plan, Options{Checkpoint: ckpt, runSweepFunc: func(pts []core.Point, w int, done func(int, core.PointResult)) []core.PointResult {
		for _, pt := range pts {
			ran = append(ran, pt.Label)
		}
		return counting(pts, w, done)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"p1", "p3", "p5"}; fmt.Sprint(ran) != fmt.Sprint(want) {
		t.Fatalf("resume ran %v, want only the unjournalled %v", ran, want)
	}
	assertSameResults(t, full, resumed)

	// A third run finds everything journalled and runs nothing.
	ran = nil
	again, err := Run(plan, Options{Checkpoint: ckpt, runSweepFunc: func(pts []core.Point, w int, done func(int, core.PointResult)) []core.PointResult {
		t.Fatalf("fully journalled plan ran points: %v", pts)
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, full, again)
}

// TestShardMergeMatchesUnsharded is the sharding acceptance test:
// -shard 0/2 and -shard 1/2 journals, merged, satisfy the whole plan
// with results identical to an unsharded run — with the real simulator.
func TestShardMergeMatchesUnsharded(t *testing.T) {
	plan := realPlan(5)
	dir := t.TempDir()
	j0 := filepath.Join(dir, "s0.jsonl")
	j1 := filepath.Join(dir, "s1.jsonl")
	merged := filepath.Join(dir, "merged.jsonl")

	unsharded, err := Run(plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(plan, Options{Checkpoint: j0, Shard: Shard{0, 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(plan, Options{Checkpoint: j1, Shard: Shard{1, 2}}); err != nil {
		t.Fatal(err)
	}
	n, err := MergeJournals(merged, j0, j1)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(plan.Points) {
		t.Fatalf("merged %d points, want %d", n, len(plan.Points))
	}
	got, err := Run(plan, Options{Checkpoint: merged, runSweepFunc: func(pts []core.Point, w int, done func(int, core.PointResult)) []core.PointResult {
		t.Fatalf("merged journal incomplete: would re-run %d points", len(pts))
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, unsharded, got)
}

// realPlan builds n small but real simulation points (4-ary 2-cube, a
// few hundred messages each).
func realPlan(n int) Plan {
	points := make([]core.Point, n)
	for i := range points {
		c := core.DefaultConfig(4, 2, 0.004+0.002*float64(i))
		c.WarmupMessages = 50
		c.MeasureMessages = 400
		c.Seed = uint64(10 + i)
		points[i] = core.Point{Label: fmt.Sprintf("real%d", i), Config: c}
	}
	return Plan{Name: "real", Points: points}
}

// assertSameResults compares two result sets bit-for-bit via their
// canonical JSON (floats round-trip exactly through encoding/json, so
// this is equality of every metric, not approximate agreement).
func assertSameResults(t *testing.T, want, got []core.PointResult) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("result count %d != %d", len(got), len(want))
	}
	for i := range want {
		if want[i].Label != got[i].Label {
			t.Fatalf("point %d: label %q != %q", i, got[i].Label, want[i].Label)
		}
		if (want[i].Err == nil) != (got[i].Err == nil) {
			t.Fatalf("point %d: error mismatch: %v vs %v", i, want[i].Err, got[i].Err)
		}
		wj, err := json.Marshal(want[i].Results)
		if err != nil {
			t.Fatal(err)
		}
		gj, err := json.Marshal(got[i].Results)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wj, gj) {
			t.Fatalf("point %d (%s): results differ:\n want %s\n  got %s", i, want[i].Label, wj, gj)
		}
	}
}
