package sweep

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
)

// queueCurve fakes a latency-vs-load curve with the M/M/1-like shape
// real networks show: L(λ) = L0 / (1 - λ/λc), saturated at λ >= λc.
func queueCurve(l0, lambdaC float64) func(core.Config) (metrics.Results, error) {
	return func(c core.Config) (metrics.Results, error) {
		if c.Lambda >= lambdaC {
			return metrics.Results{MeanLatency: 50 * l0, Saturated: true}, nil
		}
		return metrics.Results{MeanLatency: l0 / (1 - c.Lambda/lambdaC)}, nil
	}
}

func TestFindSaturationBracketsKnee(t *testing.T) {
	const l0, lambdaC = 20.0, 0.01
	base := core.DefaultConfig(8, 2, 0.001)
	sat, err := FindSaturation("fake", base, SaturationOptions{
		Factor: 3, LambdaMin: 1e-4, Tol: 0.02,
		Run: Options{runSweepFunc: fakePool(queueCurve(l0, lambdaC))},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Latency crosses 3·L0 at λ = λc·(1 - 1/3) = 2/3·λc.
	want := lambdaC * 2 / 3
	if sat.Lo > want || want > sat.Hi {
		t.Fatalf("bracket [%g, %g] misses true crossing %g", sat.Lo, sat.Hi, want)
	}
	if (sat.Hi-sat.Lo)/sat.Hi > 0.02 {
		t.Fatalf("bracket [%g, %g] wider than Tol", sat.Lo, sat.Hi)
	}
	if math.Abs(sat.Lambda-want)/want > 0.03 {
		t.Fatalf("λ* = %g, want ≈ %g", sat.Lambda, want)
	}
	if sat.ZeroLoad >= l0*1.02 || sat.ZeroLoad < l0 {
		t.Fatalf("zero-load latency %g, want ≈ %g", sat.ZeroLoad, l0)
	}
	if sat.Threshold != 3*sat.ZeroLoad {
		t.Fatalf("threshold %g, want %g", sat.Threshold, 3*sat.ZeroLoad)
	}
	if len(sat.Probes) > 32 {
		t.Fatalf("probe budget exceeded: %d", len(sat.Probes))
	}
}

// TestFindSaturationResumes checkpoints a search, re-runs it, and
// demands the re-run touch the simulator zero times while reproducing
// the identical answer — the deterministic-probe-sequence contract.
func TestFindSaturationResumes(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "sat.jsonl")
	base := core.DefaultConfig(8, 2, 0.001)
	opt := func(run func(core.Config) (metrics.Results, error)) SaturationOptions {
		return SaturationOptions{Run: Options{Checkpoint: ckpt, runSweepFunc: fakePool(run)}}
	}
	first, err := FindSaturation("fake", base, opt(queueCurve(20, 0.01)))
	if err != nil {
		t.Fatal(err)
	}
	poisoned := func(core.Config) (metrics.Results, error) {
		t.Fatal("resumed search re-ran a journalled probe")
		return metrics.Results{}, nil
	}
	second, err := FindSaturation("fake", base, opt(poisoned))
	if err != nil {
		t.Fatal(err)
	}
	if first.Lambda != second.Lambda || first.Lo != second.Lo || first.Hi != second.Hi {
		t.Fatalf("resumed search diverged: %+v vs %+v", first, second)
	}
}

// TestFindSaturationProbesUpToLambdaMax pins the bracketing clamp: a
// knee between the last geometric probe and LambdaMax must be found by
// probing LambdaMax itself, not reported as "not saturated".
func TestFindSaturationProbesUpToLambdaMax(t *testing.T) {
	// Crossing at 2/3·λc = 0.008 — inside (0.0064, 0.01], the gap the
	// geometric doubling from 1e-4 would skip without the clamp.
	sat, err := FindSaturation("clamp", core.DefaultConfig(8, 2, 0.001), SaturationOptions{
		LambdaMax: 0.01, Tol: 0.02,
		Run: Options{runSweepFunc: fakePool(queueCurve(20, 0.012))},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.012 * 2 / 3
	if sat.Lo > want || want > sat.Hi {
		t.Fatalf("bracket [%g, %g] misses crossing %g near LambdaMax", sat.Lo, sat.Hi, want)
	}
}

func TestFindSaturationErrors(t *testing.T) {
	base := core.DefaultConfig(8, 2, 0.001)
	// Flat curve: never saturates below LambdaMax.
	flat := func(core.Config) (metrics.Results, error) {
		return metrics.Results{MeanLatency: 20}, nil
	}
	_, err := FindSaturation("flat", base, SaturationOptions{
		LambdaMax: 0.01,
		Run:       Options{runSweepFunc: fakePool(flat)},
	})
	if err == nil || !strings.Contains(err.Error(), "not saturated") {
		t.Fatalf("flat curve: %v", err)
	}
	// Saturated from the very first probe.
	drowned := func(core.Config) (metrics.Results, error) {
		return metrics.Results{MeanLatency: 1e6, Saturated: true}, nil
	}
	_, err = FindSaturation("drowned", base, SaturationOptions{
		Run: Options{runSweepFunc: fakePool(drowned)},
	})
	if err == nil || !strings.Contains(err.Error(), "already saturated") {
		t.Fatalf("drowned curve: %v", err)
	}
	// An explicit Factor at or below 1 is an error, not silently the default.
	_, err = FindSaturation("factor", base, SaturationOptions{
		Factor: 1,
		Run:    Options{runSweepFunc: fakePool(flat)},
	})
	if err == nil || !strings.Contains(err.Error(), "Factor") {
		t.Fatalf("Factor=1 not rejected: %v", err)
	}
}

// TestFindSaturationReportsNonConvergence pins the Converged flag: a
// probe budget too small to bisect to Tol must be visible to callers.
func TestFindSaturationReportsNonConvergence(t *testing.T) {
	base := core.DefaultConfig(8, 2, 0.001)
	run := Options{runSweepFunc: fakePool(queueCurve(20, 0.01))}
	tight, err := FindSaturation("tight", base, SaturationOptions{Tol: 0.001, MaxProbes: 9, Run: run})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Converged {
		t.Fatalf("9 probes cannot bisect to 0.1%%: %+v", tight)
	}
	loose, err := FindSaturation("loose", base, SaturationOptions{Tol: 0.05, Run: run})
	if err != nil {
		t.Fatal(err)
	}
	if !loose.Converged {
		t.Fatalf("default budget should converge at 5%%: %+v", loose)
	}
}

// TestFindSaturationReal smoke-tests the search against the actual
// simulator on a small network; the only assertions are that it
// converges and lands in a plausible band, since the exact knee is what
// the search exists to discover.
func TestFindSaturationReal(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real probe sequence")
	}
	base := core.DefaultConfig(4, 2, 0.001)
	base.WarmupMessages = 100
	base.MeasureMessages = 1000
	base.Seed = 3
	sat, err := FindSaturation("real", base, SaturationOptions{
		LambdaMin: 0.001, Tol: 0.1, MaxProbes: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sat.Lambda <= 0.001 || sat.Lambda >= 0.5 {
		t.Fatalf("implausible saturation rate %g", sat.Lambda)
	}
	if sat.ZeroLoad <= 0 {
		t.Fatalf("zero-load latency %g", sat.ZeroLoad)
	}
}
