package sweep

import (
	"fmt"
	"sort"
	"time"
)

// LeaseTable is the coordinator's bookkeeping for points that still
// need computing: a FIFO queue of point IDs plus the set of leases
// currently held by workers. It is a pure data structure — every method
// that depends on time takes the current instant as an argument, so the
// coordinator injects a real clock and tests a fake one — and it is not
// concurrency-safe; the owner serialises access (the coordinator holds
// its state mutex).
//
// Lifecycle of a point: Add queues it; Acquire leases the queue head to
// a worker with a TTL; Renew extends a held lease (worker heartbeats);
// Remove retires the point when its result arrives (regardless of who
// holds the lease — results from expired leases are still valid, the
// engine is deterministic). A lease whose TTL passes without renewal is
// expired by Expire: the point re-queues for another worker, up to
// MaxRetries re-assignments, after which it is marked failed — the
// bounded-retry guard that keeps a point whose config crashes every
// worker from looping forever.
type LeaseTable struct {
	// TTL is the lease duration granted by Acquire and restored by Renew.
	TTL time.Duration
	// MaxRetries bounds lease re-assignments per point: a point whose
	// lease expires a (MaxRetries+1)-th time fails instead of re-queuing.
	MaxRetries int

	seq     uint64 // lease token counter
	entries map[string]*leaseEntry
	queue   []string // queued point IDs, FIFO
}

// leaseEntry tracks one point known to the table.
type leaseEntry struct {
	state   leaseState
	worker  string
	token   string
	expiry  time.Time
	retries int // expired-lease count so far
	reason  string
}

type leaseState int

const (
	stateQueued leaseState = iota
	stateLeased
	stateFailed
)

// NewLeaseTable returns an empty table. ttl <= 0 defaults to 10s;
// maxRetries < 0 defaults to 3 (0 is honoured: fail on first expiry).
func NewLeaseTable(ttl time.Duration, maxRetries int) *LeaseTable {
	if ttl <= 0 {
		ttl = 10 * time.Second
	}
	if maxRetries < 0 {
		maxRetries = 3
	}
	return &LeaseTable{TTL: ttl, MaxRetries: maxRetries, entries: map[string]*leaseEntry{}}
}

// Add queues a point for execution. Re-adding a known (queued, leased
// or failed) point is a no-op returning false, so duplicate plan
// submissions cannot double-queue work.
func (t *LeaseTable) Add(id string) bool {
	if _, ok := t.entries[id]; ok {
		return false
	}
	t.entries[id] = &leaseEntry{state: stateQueued}
	t.queue = append(t.queue, id)
	return true
}

// Acquire leases the queue head to worker until now+TTL, returning
// ok=false when nothing is queued. Callers sweep stale leases first
// (Expire); Acquire itself never expires, so the owner controls when
// expiry side effects (counters, logs) happen. The token is returned to
// the worker and must accompany Renew; it is an assignment identifier,
// not a secret.
func (t *LeaseTable) Acquire(now time.Time, worker string) (id, token string, ok bool) {
	if len(t.queue) == 0 {
		return "", "", false
	}
	id = t.queue[0]
	t.queue = t.queue[1:]
	e := t.entries[id]
	t.seq++
	e.state = stateLeased
	e.worker = worker
	e.token = fmt.Sprintf("L%d", t.seq)
	e.expiry = now.Add(t.TTL)
	return id, e.token, true
}

// Renew extends the lease on id held under token until now+TTL. It
// errors when the point is unknown, not leased, or leased under a
// different token — the last is what a worker sees after its lease
// expired and the point moved on (re-queued or re-leased), telling it
// the coordinator no longer counts on it.
func (t *LeaseTable) Renew(id, token string, now time.Time) error {
	e, ok := t.entries[id]
	if !ok {
		return fmt.Errorf("sweep: renew %s: unknown or already completed point", id)
	}
	if e.state != stateLeased || e.token != token {
		return fmt.Errorf("sweep: renew %s: lease %s no longer held (expired and re-assigned?)", id, token)
	}
	e.expiry = now.Add(t.TTL)
	return nil
}

// Expire sweeps every lease whose TTL has passed as of now: requeued
// returns the points handed back to the queue for another worker, and
// failed the points that exhausted MaxRetries instead. Re-queued points
// go to the back of the queue, behind work never attempted — a point
// that already burned one worker's lease should not starve fresh
// points.
func (t *LeaseTable) Expire(now time.Time) (requeued, failed []string) {
	// Collect, then sort: map iteration order must not leak into queue
	// order (the determinism contract extends to lease hand-out order
	// for a fixed request sequence).
	var stale []string
	for id, e := range t.entries {
		if e.state == stateLeased && now.After(e.expiry) {
			stale = append(stale, id)
		}
	}
	sort.Strings(stale)
	for _, id := range stale {
		e := t.entries[id]
		e.retries++
		e.worker, e.token = "", ""
		if e.retries > t.MaxRetries {
			e.state = stateFailed
			e.reason = fmt.Sprintf("lease expired %d times (worker died mid-point?)", e.retries)
			failed = append(failed, id)
			continue
		}
		e.state = stateQueued
		t.queue = append(t.queue, id)
		requeued = append(requeued, id)
	}
	return requeued, failed
}

// Remove retires a point from the table (its result arrived). It
// reports whether the point was known; removal is valid in any state —
// a result computed under an expired lease is still a correct result.
func (t *LeaseTable) Remove(id string) bool {
	e, ok := t.entries[id]
	if !ok {
		return false
	}
	delete(t.entries, id)
	if e.state == stateQueued {
		for i, qid := range t.queue {
			if qid == id {
				t.queue = append(t.queue[:i], t.queue[i+1:]...)
				break
			}
		}
	}
	return true
}

// Holder returns the worker and token currently leasing id; held is
// false when the point is unknown, queued or failed. Result submission
// uses it to classify late results (lease expired or re-assigned before
// the original worker finished).
func (t *LeaseTable) Holder(id string) (worker, token string, held bool) {
	if e, ok := t.entries[id]; ok && e.state == stateLeased {
		return e.worker, e.token, true
	}
	return "", "", false
}

// FailReason returns the failure reason for a point failed by retry
// exhaustion, or "" if the point is not in the failed state.
func (t *LeaseTable) FailReason(id string) string {
	if e, ok := t.entries[id]; ok && e.state == stateFailed {
		return e.reason
	}
	return ""
}

// Counts returns how many known points are queued, leased and failed.
func (t *LeaseTable) Counts() (queued, leased, failed int) {
	for _, e := range t.entries {
		switch e.state {
		case stateQueued:
			queued++
		case stateLeased:
			leased++
		case stateFailed:
			failed++
		}
	}
	return queued, leased, failed
}

// LeaseInfo is one held lease, as reported by Leases (the /statusz
// per-worker table).
type LeaseInfo struct {
	// ID is the leased point.
	ID string `json:"id"`
	// Worker is the holder's self-reported name.
	Worker string `json:"worker"`
	// Expiry is when the lease lapses unless renewed.
	Expiry time.Time `json:"expiry"`
	// Retries counts prior expired leases on this point.
	Retries int `json:"retries,omitempty"`
}

// Leases returns the currently held leases, sorted by point ID for
// deterministic output.
func (t *LeaseTable) Leases() []LeaseInfo {
	var out []LeaseInfo
	for id, e := range t.entries {
		if e.state == stateLeased {
			out = append(out, LeaseInfo{ID: id, Worker: e.worker, Expiry: e.expiry, Retries: e.retries})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
