package sweep

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"sync"

	"repro/internal/metrics"
)

// Record is one completed sweep point in a checkpoint journal: one JSON
// object per line. The ID ties the record back to its plan point
// (PointID); the label is carried for human inspection of journals, not
// for matching.
type Record struct {
	// ID is the stable point identity (PointID).
	ID string `json:"id"`
	// Label is the point's display label at the time it ran.
	Label string `json:"label"`
	// Results is the completed run's metrics summary.
	Results metrics.Results `json:"results"`
	// Err is the run's error message, empty on success. Errors are
	// journalled too: a point that failed deterministically would fail
	// identically on re-run, so recomputing it on resume is waste.
	Err string `json:"err,omitempty"`
}

// JSONL is an append-only file of newline-delimited JSON values of one
// type. Opening it recovers from a crashed writer by discarding a torn
// final line; appends are single whole-line writes, so a process killed
// mid-append (even with SIGKILL) loses at most the value being written,
// never a previously completed one. Append is safe for concurrent use.
//
// Journal (the sweep checkpoint) is JSONL[Record]; the coordinator's
// plan journal is JSONL[PlanPoint]. Both inherit the same single-writer
// torn-tail contract.
type JSONL[T any] struct {
	mu     sync.Mutex
	f      *os.File
	loaded []T
}

// OpenJSONL opens (creating if absent) the JSONL file at path, loads
// its valid values, and truncates any torn final line so subsequent
// appends start on a clean line boundary. The file is opened with
// O_APPEND so every write lands at end-of-file rather than at a stale
// tracked offset. A file still has exactly one writer at a time —
// shards journal into separate files — because the recovery truncate on
// open can clip another writer's in-flight record; O_APPEND merely
// bounds the damage of a mistaken double-open to torn lines instead of
// interleaved overwrites.
func OpenJSONL[T any](path string) (*JSONL[T], error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: open journal: %w", err)
	}
	loaded, valid, err := scanJSONL[T](f)
	if err != nil {
		_ = f.Close() // best-effort: the scan/truncate error is the one to report
		return nil, fmt.Errorf("sweep: read journal %s: %w", path, err)
	}
	// Drop any torn tail; O_APPEND then directs every write to the new
	// end-of-file, so no seek is needed.
	if err := f.Truncate(valid); err != nil {
		_ = f.Close() // best-effort: the scan/truncate error is the one to report
		return nil, fmt.Errorf("sweep: recover journal %s: %w", path, err)
	}
	return &JSONL[T]{f: f, loaded: loaded}, nil
}

// scanJSONL parses newline-terminated values from r and returns them
// with the byte offset just past the last valid one. A final line that
// is unterminated or fails to parse — a writer died mid-append — is
// dropped. A malformed line in the middle of the file is corruption,
// not a torn write, and is an error.
func scanJSONL[T any](r io.Reader) (values []T, valid int64, err error) {
	br := bufio.NewReader(r)
	for {
		line, err := br.ReadBytes('\n')
		if err == io.EOF {
			// Unterminated tail (possibly empty): torn write, drop it.
			return values, valid, nil
		}
		if err != nil {
			return nil, 0, err
		}
		var v T
		if jerr := json.Unmarshal(line, &v); jerr != nil {
			if _, peekErr := br.ReadByte(); peekErr == io.EOF {
				// Torn final line that happens to end in '\n' garbage is
				// indistinguishable from corruption; but a parse failure on
				// the very last line is overwhelmingly a torn write — drop.
				return values, valid, nil
			}
			return nil, 0, fmt.Errorf("corrupt record at byte %d: %w", valid, jerr)
		}
		values = append(values, v)
		valid += int64(len(line))
	}
}

// Records returns the values loaded when the file was opened. It does
// not include values appended since; Run loads before running.
func (j *JSONL[T]) Records() []T { return j.loaded }

// Append journals one value as a single whole-line write.
func (j *JSONL[T]) Append(v T) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("sweep: marshal record: %w", err)
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("sweep: append record: %w", err)
	}
	return nil
}

// Close closes the underlying file.
func (j *JSONL[T]) Close() error { return j.f.Close() }

// Journal is the sweep checkpoint: an append-only JSONL file of
// completed-point Records.
type Journal = JSONL[Record]

// OpenJournal opens (creating if absent) the checkpoint journal at
// path; see OpenJSONL for the recovery and single-writer contract.
func OpenJournal(path string) (*Journal, error) {
	return OpenJSONL[Record](path)
}

// ReadJournal loads the valid records of the journal at path without
// opening it for writing; a torn final line is silently dropped, as in
// OpenJournal.
func ReadJournal(path string) ([]Record, error) {
	return ReadJSONL[Record](path)
}

// ReadJSONL loads the valid values of the JSONL file at path without
// opening it for writing; a torn final line is silently dropped, as in
// OpenJSONL.
func ReadJSONL[T any](path string) ([]T, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sweep: open journal: %w", err)
	}
	defer f.Close()
	values, _, err := scanJSONL[T](f)
	if err != nil {
		return nil, fmt.Errorf("sweep: read journal %s: %w", path, err)
	}
	return values, nil
}

// MergeJournals combines the records of srcs into the journal at dst
// (appending to whatever valid records dst already holds) and reports
// how many distinct points dst holds afterwards. Records are
// deduplicated by point ID; two successful records for the same ID must
// agree exactly — engine runs are deterministic, so a disagreement
// means the journals came from diverging code or data and the merge
// fails rather than silently picking one. Two *failed* records for one
// ID are treated as agreeing regardless of message text, because error
// strings legitimately vary between runs of the same deterministic
// failure (panic reports embed stack addresses); the first is kept.
func MergeJournals(dst string, srcs ...string) (int, error) {
	j, err := OpenJournal(dst)
	if err != nil {
		return 0, err
	}
	defer j.Close()
	seen := map[string]Record{}
	for _, rec := range j.Records() {
		seen[rec.ID] = rec
	}
	for _, src := range srcs {
		records, err := ReadJournal(src)
		if err != nil {
			return 0, err
		}
		for _, rec := range records {
			if prev, ok := seen[rec.ID]; ok {
				if !RecordsAgree(prev, rec) {
					return 0, fmt.Errorf("sweep: merge %s: conflicting results for point %s (%q)", src, rec.ID, rec.Label)
				}
				continue
			}
			if err := j.Append(rec); err != nil {
				return 0, err
			}
			seen[rec.ID] = rec
		}
	}
	return len(seen), nil
}

// RecordsAgree reports whether two records for the same point ID are
// consistent under the determinism contract: engine runs are
// deterministic, so two successful records must match exactly
// (DeepEqual rather than ==, because Results carries slices — chaos
// windows/convergence — since dynamic faults landed). Two *failed*
// records agree regardless of message text, because error strings
// legitimately vary between runs of the same deterministic failure
// (panic reports embed stack addresses). A disagreement means the
// records came from diverging code or data; MergeJournals fails the
// merge on one, and the sweep coordinator rejects the later submission.
func RecordsAgree(a, b Record) bool {
	if a.Err != "" && b.Err != "" {
		return true
	}
	return reflect.DeepEqual(a, b)
}
