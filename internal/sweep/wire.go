package sweep

import (
	"fmt"

	"repro/internal/core"
)

// PlanPoint is the wire form of one sweep point: the stable point ID
// alongside the label and full configuration that define it. It is what
// a plan submission carries to the sweep coordinator and what the
// coordinator hands a worker with a lease; it is also the record type
// of the coordinator's plan journal, which is how queued work survives
// a coordinator restart.
//
// The ID is redundant with (Label, Config) — PointID derives it — and
// that redundancy is the integrity check: both the coordinator and the
// worker recompute the digest and refuse a point whose ID does not
// match, so a version-skewed peer (whose Config serialisation, and
// hence digest, has drifted) is rejected loudly instead of silently
// caching results under the wrong identity.
type PlanPoint struct {
	// ID is the stable point identity (PointID).
	ID string `json:"id"`
	// Label is the point's display label.
	Label string `json:"label"`
	// Config is the full simulation configuration.
	Config core.Config `json:"config"`
}

// Point converts the wire form back to a plan point.
func (pp PlanPoint) Point() core.Point {
	return core.Point{Label: pp.Label, Config: pp.Config}
}

// Verify recomputes the point's digest and errors if it disagrees with
// the carried ID — the wire-level determinism check for version skew
// between fleet processes.
func (pp PlanPoint) Verify() error {
	if got := PointID(pp.Point()); got != pp.ID {
		return fmt.Errorf("sweep: point %q: carried ID %s, recomputed %s (version skew between fleet processes?)", pp.Label, pp.ID, got)
	}
	return nil
}

// Wire returns the plan's points in wire form, IDs computed.
func (p Plan) Wire() []PlanPoint {
	pts := make([]PlanPoint, len(p.Points))
	for i, pt := range p.Points {
		pts[i] = PlanPoint{ID: PointID(pt), Label: pt.Label, Config: pt.Config}
	}
	return pts
}
