package sweep

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func writeJournal(t *testing.T, path string, recs ...Record) {
	t.Helper()
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func rec(id string, lat float64) Record {
	return Record{ID: id, Label: "pt-" + id, Results: metrics.Results{MeanLatency: lat, Delivered: 7}}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	want := []Record{rec("aa", 1.5), rec("bb", 2.25), {ID: "cc", Label: "pt-cc", Err: "boom"}}
	writeJournal(t, path, want...)
	got, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("record %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

// TestJournalRecoversTornTail covers the two interruption geometries:
// a journal cut exactly at a record boundary, and one cut mid-line.
// Both must recover the intact records and let appends resume cleanly.
func TestJournalRecoversTornTail(t *testing.T) {
	for _, tc := range []struct {
		name string
		cut  func(data []byte) []byte
	}{
		{"boundary", func(data []byte) []byte { return data }},
		{"mid-line", func(data []byte) []byte { return data[:len(data)-9] }},
		{"torn-append", func(data []byte) []byte { return append(data, `{"id":"dd","lab`...) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "j.jsonl")
			writeJournal(t, path, rec("aa", 1), rec("bb", 2))
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.cut(data), 0o644); err != nil {
				t.Fatal(err)
			}
			wantIntact := 2
			if tc.name == "mid-line" {
				wantIntact = 1 // the cut destroyed record bb
			}
			j, err := OpenJournal(path)
			if err != nil {
				t.Fatal(err)
			}
			if got := len(j.Records()); got != wantIntact {
				t.Fatalf("recovered %d records, want %d", got, wantIntact)
			}
			// Appending after recovery must yield a clean journal.
			if err := j.Append(rec("ee", 5)); err != nil {
				t.Fatal(err)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			got, err := ReadJournal(path)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != wantIntact+1 || got[len(got)-1].ID != "ee" {
				t.Fatalf("after recovery+append: %+v", got)
			}
		})
	}
}

func TestJournalRejectsMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	writeJournal(t, path, rec("aa", 1))
	data, _ := os.ReadFile(path)
	data = append([]byte("not json at all\n"), data...)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJournal(path); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("mid-file corruption not rejected: %v", err)
	}
}

func TestMergeJournals(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	dst := filepath.Join(dir, "m.jsonl")
	writeJournal(t, a, rec("aa", 1), rec("bb", 2))
	writeJournal(t, b, rec("bb", 2), rec("cc", 3)) // bb duplicated, identical

	n, err := MergeJournals(dst, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("merged %d distinct points, want 3", n)
	}
	got, err := ReadJournal(dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].ID != "aa" || got[1].ID != "bb" || got[2].ID != "cc" {
		t.Fatalf("merged journal: %+v", got)
	}

	// Merging is idempotent: repeating adds nothing.
	n, err = MergeJournals(dst, a, b)
	if err != nil || n != 3 {
		t.Fatalf("re-merge: n=%d err=%v", n, err)
	}

	// A conflicting record for a known ID must fail the merge.
	c := filepath.Join(dir, "c.jsonl")
	writeJournal(t, c, rec("bb", 99))
	if _, err := MergeJournals(dst, c); err == nil || !strings.Contains(err.Error(), "conflicting") {
		t.Fatalf("conflicting merge not rejected: %v", err)
	}

	// Two failed records for one ID agree regardless of message text:
	// error strings of the same deterministic failure vary between runs
	// (panic reports embed stack addresses). The first is kept.
	e1 := filepath.Join(dir, "e1.jsonl")
	e2 := filepath.Join(dir, "e2.jsonl")
	writeJournal(t, e1, Record{ID: "ff", Label: "pt-ff", Err: "panicked at 0xc0000a1234"})
	writeJournal(t, e2, Record{ID: "ff", Label: "pt-ff", Err: "panicked at 0xc0000b9876"})
	edst := filepath.Join(dir, "em.jsonl")
	if n, err := MergeJournals(edst, e1, e2); err != nil || n != 1 {
		t.Fatalf("errored-record merge: n=%d err=%v", n, err)
	}
	got, err = ReadJournal(edst)
	if err != nil || len(got) != 1 || got[0].Err != "panicked at 0xc0000a1234" {
		t.Fatalf("errored-record merge kept wrong record: %+v (err %v)", got, err)
	}
}
