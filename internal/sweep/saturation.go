package sweep

import (
	"fmt"

	"repro/internal/core"
)

// SaturationOptions tunes FindSaturation. The zero value uses the
// defaults documented on each field.
type SaturationOptions struct {
	// Factor is the latency threshold as a multiple of the zero-load
	// latency: the search finds the λ where mean latency first exceeds
	// Factor × L₀ (or the run saturates outright). Zero means the
	// default, 3; an explicit Factor must exceed 1 (a threshold at or
	// below zero-load latency is crossed before the search starts).
	Factor float64
	// LambdaMin is the probe that measures zero-load latency L₀ and the
	// initial lower bracket. Default 1e-4.
	LambdaMin float64
	// LambdaMax caps the upward bracketing phase; if latency never
	// crosses the threshold below it, the search fails. Default 0.5
	// (messages/node/cycle — far past any wormhole network's capacity).
	LambdaMax float64
	// Tol is the relative width of the final bracket: bisection stops
	// when (hi-lo)/hi <= Tol. Default 0.05.
	Tol float64
	// MaxProbes caps the total number of simulation points. Default 32.
	MaxProbes int
	// Run passes checkpoint/worker options through to each probe. The
	// probe sequence is deterministic, so a checkpointed search resumes
	// after interruption exactly like a grid sweep: finished probes are
	// replayed from the journal, unfinished ones re-run.
	Run Options
}

func (o SaturationOptions) withDefaults() SaturationOptions {
	if o.Factor == 0 {
		o.Factor = 3
	}
	if o.LambdaMin <= 0 {
		o.LambdaMin = 1e-4
	}
	if o.LambdaMax <= 0 {
		o.LambdaMax = 0.5
	}
	if o.Tol <= 0 {
		o.Tol = 0.05
	}
	if o.MaxProbes <= 0 {
		o.MaxProbes = 32
	}
	return o
}

// Saturation is the result of a saturation-point auto-search.
type Saturation struct {
	// Lambda is the estimated saturation rate: the midpoint of the final
	// bracket around the λ where latency crosses the threshold.
	Lambda float64
	// Lo and Hi bound the crossing: the highest λ probed below the
	// threshold and the lowest probed above (or saturated).
	Lo, Hi float64
	// ZeroLoad is the zero-load latency L₀ measured at LambdaMin.
	ZeroLoad float64
	// Threshold is the latency bound used, Factor × L₀.
	Threshold float64
	// Converged reports that the final bracket reached the requested
	// relative width Tol. False means the probe budget ran out first:
	// Lambda is still the best available estimate, but its bracket is
	// wider than asked for.
	Converged bool
	// Probes are every simulation point run, in probe order.
	Probes []core.PointResult
}

// FindSaturation locates the knee of the latency-vs-load curve for one
// configuration by adaptive probing instead of a fixed λ grid: it
// measures zero-load latency at LambdaMin, grows λ geometrically until
// mean latency crosses Factor × L₀ (or the engine's saturation guard
// trips), then bisects the bracket to relative width Tol. base supplies
// every Config field except Lambda, which the search owns; name labels
// the probes ("name|sat|l<λ>") in journals and logs.
//
// The probe sequence is a deterministic function of base and opt, so a
// search given a checkpoint journal (opt.Run.Checkpoint) is resumable:
// re-running replays finished probes from the journal and continues
// where it was killed. (Sharding does not apply — each probe depends on
// the previous one; opt.Run.Shard is ignored.)
func FindSaturation(name string, base core.Config, opt SaturationOptions) (Saturation, error) {
	opt = opt.withDefaults()
	sat := Saturation{}
	if opt.Factor <= 1 {
		return sat, fmt.Errorf("sweep: %s: Factor %g must exceed 1 (threshold is Factor × zero-load latency)", name, opt.Factor)
	}
	if opt.LambdaMax <= opt.LambdaMin {
		return sat, fmt.Errorf("sweep: %s: LambdaMax %g must exceed LambdaMin %g", name, opt.LambdaMax, opt.LambdaMin)
	}

	runOpt := opt.Run
	runOpt.Shard = Shard{} // meaningless for a sequential search
	probe := func(lambda float64) (core.PointResult, error) {
		cfg := base
		cfg.Lambda = lambda
		pt := core.Point{Label: fmt.Sprintf("%s|sat|l%g", name, lambda), Config: cfg}
		res, err := Run(Plan{Name: name + "|sat", Points: []core.Point{pt}}, runOpt)
		if err != nil {
			return core.PointResult{}, err
		}
		sat.Probes = append(sat.Probes, res[0])
		return res[0], nil
	}
	// over reports whether a probe is past the knee: saturated, or mean
	// latency above the threshold. A probe that failed outright (config
	// error, panic) aborts the search — unlike a grid sweep there is no
	// way to interpolate around a missing probe.
	over := func(r core.PointResult) (bool, error) {
		if r.Err != nil {
			return false, fmt.Errorf("sweep: saturation probe %s: %w", r.Label, r.Err)
		}
		return r.Results.Saturated || r.Results.MeanLatency > sat.Threshold, nil
	}

	r0, err := probe(opt.LambdaMin)
	if err != nil {
		return sat, err
	}
	if r0.Err != nil {
		return sat, fmt.Errorf("sweep: zero-load probe %s: %w", r0.Label, r0.Err)
	}
	if r0.Results.Saturated {
		return sat, fmt.Errorf("sweep: %s already saturated at λ=%g; lower LambdaMin", name, opt.LambdaMin)
	}
	sat.ZeroLoad = r0.Results.MeanLatency
	sat.Threshold = opt.Factor * sat.ZeroLoad

	// Bracket: grow λ geometrically until the curve crosses the
	// threshold. The last step clamps to LambdaMax so the whole range up
	// to (and including) the cap is actually probed before giving up.
	lo := opt.LambdaMin
	hi := 2 * opt.LambdaMin
	for {
		if hi > opt.LambdaMax {
			hi = opt.LambdaMax
		}
		if len(sat.Probes) >= opt.MaxProbes {
			return sat, fmt.Errorf("sweep: %s: probe budget %d exhausted while bracketing", name, opt.MaxProbes)
		}
		r, err := probe(hi)
		if err != nil {
			return sat, err
		}
		crossed, err := over(r)
		if err != nil {
			return sat, err
		}
		if crossed {
			break
		}
		if hi >= opt.LambdaMax {
			return sat, fmt.Errorf("sweep: %s not saturated up to λ=%g (latency never crossed %.1f)",
				name, opt.LambdaMax, sat.Threshold)
		}
		lo = hi
		hi *= 2
	}

	// Bisect [lo, hi]: lo is always below the threshold, hi above.
	for (hi-lo)/hi > opt.Tol && len(sat.Probes) < opt.MaxProbes {
		mid := (lo + hi) / 2
		r, err := probe(mid)
		if err != nil {
			return sat, err
		}
		crossed, err := over(r)
		if err != nil {
			return sat, err
		}
		if crossed {
			hi = mid
		} else {
			lo = mid
		}
	}
	sat.Lo, sat.Hi = lo, hi
	sat.Lambda = (lo + hi) / 2
	sat.Converged = (hi-lo)/hi <= opt.Tol
	return sat, nil
}
