package deadlock

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/message"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestTrivialCycleDetected(t *testing.T) {
	g := NewGraph()
	a := VC{Ch: topology.ChannelID{Src: 0, Port: 0}, Class: 0}
	b := VC{Ch: topology.ChannelID{Src: 1, Port: 0}, Class: 0}
	g.AddEdge(a, b)
	if !g.Acyclic() {
		t.Fatal("single edge reported cyclic")
	}
	g.AddEdge(b, a)
	if g.Acyclic() {
		t.Fatal("2-cycle not detected")
	}
	cyc := g.Cycle()
	if len(cyc) != 3 || cyc[0] != cyc[len(cyc)-1] {
		t.Fatalf("cycle witness malformed: %v", cyc)
	}
}

func TestLongerCycleWitness(t *testing.T) {
	g := NewGraph()
	mk := func(i int) VC { return VC{Ch: topology.ChannelID{Src: topology.NodeID(i), Port: 0}} }
	for i := 0; i < 5; i++ {
		g.AddEdge(mk(i), mk((i+1)%5))
	}
	cyc := g.Cycle()
	if cyc == nil {
		t.Fatal("5-cycle not found")
	}
	if len(cyc) != 6 {
		t.Fatalf("witness length = %d, want 6", len(cyc))
	}
}

// Without dateline classes a torus ring's e-cube CDG is cyclic; with them it
// must be acyclic. This is the heart of the Dally-Seitz construction the
// paper's deterministic base relies on.
func TestRingWithoutClassesIsCyclic(t *testing.T) {
	tor := topology.New(4, 1)
	g := NewGraph()
	// Force all traffic onto one class: emulate class-less channels by
	// mapping every hop to class 0 manually.
	for s := 0; s < 4; s++ {
		for d := 0; d < 4; d++ {
			if s == d {
				continue
			}
			path := tor.EcubePath(topology.NodeID(s), topology.NodeID(d))
			var prev *VC
			for i := 1; i < len(path); i++ {
				dimDirPort := func(a, b topology.NodeID) topology.Port {
					if tor.Neighbor(a, 0, topology.Plus) == b {
						return topology.PortFor(0, topology.Plus)
					}
					return topology.PortFor(0, topology.Minus)
				}
				v := VC{Ch: topology.ChannelID{Src: path[i-1], Port: dimDirPort(path[i-1], path[i])}, Class: 0}
				if prev != nil {
					g.AddEdge(*prev, v)
				}
				pv := v
				prev = &pv
			}
		}
	}
	if g.Acyclic() {
		t.Fatal("class-less ring CDG should be cyclic")
	}
}

func TestEcubeCDGAcyclicFaultFree(t *testing.T) {
	for _, tor := range []*topology.Torus{
		topology.New(4, 1),
		topology.New(8, 2),
		topology.New(4, 3),
	} {
		g, err := BuildEcube(tor, nil)
		if err != nil {
			t.Fatal(err)
		}
		if cyc := g.Cycle(); cyc != nil {
			t.Fatalf("%v: e-cube CDG cyclic: %v", tor, cyc)
		}
		v, e := g.Size()
		if v == 0 || e == 0 {
			t.Fatalf("%v: empty graph", tor)
		}
	}
}

func TestEcubeCDGAcyclicWithFaults(t *testing.T) {
	tor := topology.New(8, 2)
	fs, err := fault.Random(tor, 5, rng.New(9), fault.DefaultRandomOptions())
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildEcube(tor, func(id topology.NodeID) bool { return !fs.NodeFaulty(id) })
	if err != nil {
		t.Fatal(err)
	}
	if cyc := g.Cycle(); cyc != nil {
		t.Fatalf("faulted e-cube CDG cyclic: %v", cyc)
	}
}

func TestClassifyPathWrap(t *testing.T) {
	tor := topology.New(4, 1)
	// 2 -> 3 -> 0 -> 1: hops classes 0, 1 (crossing), 1 (after).
	path := []topology.NodeID{2, 3, 0, 1}
	classes, err := ClassifyPath(tor, path)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 1}
	for i := range want {
		if classes[i] != want[i] {
			t.Fatalf("classes = %v, want %v", classes, want)
		}
	}
	if _, err := ClassifyPath(tor, []topology.NodeID{0, 2}); err == nil {
		t.Fatal("non-adjacent hop not rejected")
	}
}

// The strongest empirical check: run the actual Software-Based walker over
// random fault patterns, collect every in-network worm segment (between
// software stops), and assert the dependency graph of everything that was
// actually used stays acyclic.
func TestSWBasedSegmentsCDGAcyclic(t *testing.T) {
	tor := topology.New(8, 2)
	r := rng.New(4242)
	for trial := 0; trial < 10; trial++ {
		nf := 1 + r.Intn(8)
		fs, err := fault.Random(tor, nf, r.Split(uint64(trial)), fault.DefaultRandomOptions())
		if err != nil {
			continue
		}
		alg, err := routing.NewDeterministic(tor, fs, 4)
		if err != nil {
			t.Fatal(err)
		}
		g := NewGraph()
		healthy := fs.HealthyNodes()
		for i := 0; i < 150; i++ {
			src := healthy[r.Intn(len(healthy))]
			dst := healthy[r.Intn(len(healthy))]
			if src == dst {
				continue
			}
			m := message.New(uint64(i), src, dst, 16, tor.N(), message.Deterministic, 0)
			segs := collectSegments(t, alg, m, 20*tor.Nodes())
			for _, seg := range segs {
				if len(seg) >= 2 {
					if err := g.AddWormPath(tor, seg); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		if cyc := g.Cycle(); cyc != nil {
			t.Fatalf("trial %d (nf=%d): used-segment CDG cyclic: %v", trial, nf, cyc)
		}
	}
}

// collectSegments replays the routing algorithm hop by hop and slices the
// trajectory at software stops (via arrivals and fault absorptions), where
// the worm leaves the network and channel dependencies are broken.
func collectSegments(tb testing.TB, a *routing.Algorithm, m *message.Message, maxSteps int) [][]topology.NodeID {
	tb.Helper()
	tor := a.Topology()
	cur := m.Src
	seg := []topology.NodeID{cur}
	var segs [][]topology.NodeID
	for step := 0; step < maxSteps; step++ {
		dec := a.Route(cur, m)
		switch dec.Outcome {
		case routing.Deliver:
			segs = append(segs, seg)
			return segs
		case routing.ViaArrived:
			segs = append(segs, seg)
			seg = []topology.NodeID{cur}
			m.PopViasAt(cur)
			m.ResetForReinjection()
		case routing.AbsorbFault:
			segs = append(segs, seg)
			seg = []topology.NodeID{cur}
			if !a.Plan(cur, m, dec.BlockedDim, dec.BlockedDir) {
				tb.Fatal("planner failed")
			}
			m.ResetForReinjection()
		case routing.Progress:
			cand := dec.Preferred
			if len(cand) == 0 {
				cand = dec.Fallback
			}
			port := cand[0].Port
			if tor.WrapsAround(tor.Coord(cur, port.Dim()), port.Dir()) {
				m.Crossed[port.Dim()] = true
			}
			cur = tor.Neighbor(cur, port.Dim(), port.Dir())
			seg = append(seg, cur)
		}
	}
	tb.Fatal("walker did not finish")
	return nil
}
