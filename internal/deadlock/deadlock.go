// Package deadlock mechanically checks the deadlock-freedom argument of §4
// of the paper: the (extended) channel dependency graph of the routing
// relation must be acyclic (Dally & Seitz; Duato).
//
// Vertices are (physical channel, virtual-channel class) pairs. A wormhole
// message holding one channel and requesting the next creates a dependency
// edge between consecutive (channel, class) pairs along its path. The
// checker ingests concrete paths — fault-free e-cube paths, reversed ring
// runs, via-chain segments produced by the Software-Based planner — and
// reports acyclicity, with a cycle witness for diagnostics.
package deadlock

import (
	"fmt"
	"sort"

	"repro/internal/topology"
)

// VC is a vertex of the extended channel dependency graph: one dateline
// class bank of one unidirectional physical channel.
type VC struct {
	Ch    topology.ChannelID
	Class int
}

func (v VC) String() string { return fmt.Sprintf("%v/c%d", v.Ch, v.Class) }

// Graph is a channel dependency graph under construction. Not safe for
// concurrent mutation.
type Graph struct {
	adj map[VC]map[VC]struct{}
}

// NewGraph returns an empty dependency graph.
func NewGraph() *Graph { return &Graph{adj: make(map[VC]map[VC]struct{})} }

// AddEdge records a dependency a -> b (holding a while requesting b).
func (g *Graph) AddEdge(a, b VC) {
	if g.adj[a] == nil {
		g.adj[a] = make(map[VC]struct{})
	}
	g.adj[a][b] = struct{}{}
	if g.adj[b] == nil {
		g.adj[b] = make(map[VC]struct{})
	}
}

// Size returns the number of vertices and edges.
func (g *Graph) Size() (vertices, edges int) {
	for _, out := range g.adj {
		edges += len(out)
	}
	return len(g.adj), edges
}

// ClassifyPath computes, for each hop of a worm's path, the dateline
// virtual-channel class the routing algorithms assign: class 0 until the
// worm crosses a ring's wraparound edge in that dimension, class 1 on and
// after the crossing. A worm's dateline state is per dimension and resets
// only at (re-)injection, so a single call corresponds to a single worm
// segment between software stops.
func ClassifyPath(t *topology.Torus, path []topology.NodeID) ([]int, error) {
	classes := make([]int, 0, len(path)-1)
	crossed := make([]bool, t.N())
	for i := 1; i < len(path); i++ {
		dim, dir, ok := hop(t, path[i-1], path[i])
		if !ok {
			return nil, fmt.Errorf("deadlock: nodes %d and %d not adjacent", path[i-1], path[i])
		}
		wrap := t.WrapsAround(t.Coord(path[i-1], dim), dir)
		if crossed[dim] || wrap {
			classes = append(classes, 1)
		} else {
			classes = append(classes, 0)
		}
		if wrap {
			crossed[dim] = true
		}
	}
	return classes, nil
}

// AddWormPath ingests a worm segment: consecutive hops become dependency
// edges between their (channel, class) vertices.
func (g *Graph) AddWormPath(t *topology.Torus, path []topology.NodeID) error {
	classes, err := ClassifyPath(t, path)
	if err != nil {
		return err
	}
	var prev *VC
	for i := 1; i < len(path); i++ {
		dim, dir, _ := hop(t, path[i-1], path[i])
		v := VC{
			Ch:    topology.ChannelID{Src: path[i-1], Port: topology.PortFor(dim, dir)},
			Class: classes[i-1],
		}
		if prev != nil {
			g.AddEdge(*prev, v)
		} else if g.adj[v] == nil {
			g.adj[v] = make(map[VC]struct{})
		}
		pv := v
		prev = &pv
	}
	return nil
}

func hop(t *topology.Torus, a, b topology.NodeID) (int, topology.Dir, bool) {
	for d := 0; d < t.N(); d++ {
		if t.Neighbor(a, d, topology.Plus) == b {
			return d, topology.Plus, true
		}
		if t.Neighbor(a, d, topology.Minus) == b {
			return d, topology.Minus, true
		}
	}
	return 0, 0, false
}

// Cycle returns a dependency cycle as a vertex sequence (first == last), or
// nil if the graph is acyclic. Iteration order is made deterministic by
// sorting vertices.
func (g *Graph) Cycle() []VC {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[VC]int, len(g.adj))
	parent := make(map[VC]VC)

	vertices := make([]VC, 0, len(g.adj))
	for v := range g.adj {
		vertices = append(vertices, v)
	}
	sort.Slice(vertices, func(i, j int) bool {
		a, b := vertices[i], vertices[j]
		if a.Ch.Src != b.Ch.Src {
			return a.Ch.Src < b.Ch.Src
		}
		if a.Ch.Port != b.Ch.Port {
			return a.Ch.Port < b.Ch.Port
		}
		return a.Class < b.Class
	})

	var cycle []VC
	var dfs func(v VC) bool
	dfs = func(v VC) bool {
		color[v] = grey
		outs := make([]VC, 0, len(g.adj[v]))
		for w := range g.adj[v] {
			outs = append(outs, w)
		}
		sort.Slice(outs, func(i, j int) bool {
			a, b := outs[i], outs[j]
			if a.Ch.Src != b.Ch.Src {
				return a.Ch.Src < b.Ch.Src
			}
			if a.Ch.Port != b.Ch.Port {
				return a.Ch.Port < b.Ch.Port
			}
			return a.Class < b.Class
		})
		for _, w := range outs {
			switch color[w] {
			case white:
				parent[w] = v
				if dfs(w) {
					return true
				}
			case grey:
				// Reconstruct the cycle w -> ... -> v -> w.
				cycle = []VC{w}
				for at := v; at != w; at = parent[at] {
					cycle = append(cycle, at)
				}
				cycle = append(cycle, w)
				// Reverse into forward edge order.
				for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return true
			}
		}
		color[v] = black
		return false
	}
	for _, v := range vertices {
		if color[v] == white && dfs(v) {
			return cycle
		}
	}
	return nil
}

// Acyclic reports whether the dependency graph has no cycle.
func (g *Graph) Acyclic() bool { return g.Cycle() == nil }

// BuildEcube constructs the full e-cube dependency graph of a torus: every
// ordered healthy (src, dst) pair contributes its dimension-order path.
// This is the relation the deterministic algorithm uses between software
// stops; its acyclicity is the §4 deadlock-freedom claim for the
// deterministic base.
func BuildEcube(t *topology.Torus, healthy func(topology.NodeID) bool) (*Graph, error) {
	g := NewGraph()
	for s := 0; s < t.Nodes(); s++ {
		src := topology.NodeID(s)
		if healthy != nil && !healthy(src) {
			continue
		}
		for d := 0; d < t.Nodes(); d++ {
			dst := topology.NodeID(d)
			if src == dst || (healthy != nil && !healthy(dst)) {
				continue
			}
			if err := g.AddWormPath(t, t.EcubePath(src, dst)); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}
