package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Fatalf("count = %d", w.Count())
	}
	if !almost(w.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %v", w.Mean())
	}
	// Population variance is 4; sample variance = 32/7.
	if !almost(w.Var(), 32.0/7.0, 1e-12) {
		t.Fatalf("var = %v", w.Var())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("min/max = %v/%v", w.Min(), w.Max())
	}
	if w.CI95() <= 0 {
		t.Fatal("CI95 should be positive")
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.CI95() != 0 {
		t.Fatal("empty accumulator not zero")
	}
	w.Add(42)
	if w.Mean() != 42 || w.Var() != 0 || w.Min() != 42 || w.Max() != 42 {
		t.Fatal("single observation wrong")
	}
}

func TestWelfordMergeEqualsSequential(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		var all, a, b Welford
		n := 10 + r.Intn(100)
		for i := 0; i < n; i++ {
			x := r.Float64()*1000 - 500
			all.Add(x)
			if i%2 == 0 {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(&b)
		return a.Count() == all.Count() &&
			almost(a.Mean(), all.Mean(), 1e-9) &&
			almost(a.Var(), all.Var(), 1e-6) &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Merge(&b) // merging empty: no-op
	if a.Count() != 1 {
		t.Fatal("merge with empty changed count")
	}
	var c Welford
	c.Merge(&a) // merging into empty: copy
	if c.Count() != 1 || c.Mean() != 1 {
		t.Fatal("merge into empty failed")
	}
}

func TestSampleQuantiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Fatalf("q1 = %v", got)
	}
	if got := s.Quantile(0.5); !almost(got, 50.5, 1e-9) {
		t.Fatalf("median = %v", got)
	}
	if got := s.Quantile(0.9); !almost(got, 90.1, 1e-9) {
		t.Fatalf("p90 = %v", got)
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Quantile(0.5) != 0 || s.Count() != 0 {
		t.Fatal("empty sample not zero")
	}
}

func TestSampleInterleavedAddQuery(t *testing.T) {
	var s Sample
	s.Add(3)
	s.Add(1)
	if s.Quantile(0) != 1 {
		t.Fatal("min wrong")
	}
	s.Add(0.5) // add after query must re-sort
	if s.Quantile(0) != 0.5 {
		t.Fatal("re-sort after add failed")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 5)
	for _, x := range []float64{0, 5, 9.99, 10, 25, 49, 1000, -3} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Bin(0) != 4 { // 0, 5, 9.99, -3 (clamped)
		t.Fatalf("bin0 = %d", h.Bin(0))
	}
	if h.Bin(4) != 2 { // 49 and 1000 (overflow clamped)
		t.Fatalf("bin4 = %d", h.Bin(4))
	}
	if h.Render(20) == "" {
		t.Fatal("render empty")
	}
	empty := NewHistogram(1, 1)
	if empty.Render(10) != "(empty)\n" {
		t.Fatal("empty render wrong")
	}
}

func TestHistogramPanicsOnBadParams(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 5) },
		func() { NewHistogram(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad histogram params did not panic")
				}
			}()
			fn()
		}()
	}
}
