// Package stats provides the small statistical toolkit the simulator's
// metrics are built on: numerically stable streaming moments (Welford),
// normal-approximation confidence intervals, and exact quantiles over
// retained samples.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates count, mean and variance in one pass using Welford's
// online algorithm, which stays numerically stable for the long latency
// streams a saturated network produces. The zero value is ready to use.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() uint64 { return w.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest observation (0 when empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 when empty).
func (w *Welford) Max() float64 { return w.max }

// CI95 returns the half-width of the 95% confidence interval for the mean
// under the normal approximation (z = 1.96).
func (w *Welford) CI95() float64 {
	if w.n < 2 {
		return 0
	}
	return 1.96 * w.Std() / math.Sqrt(float64(w.n))
}

// Merge folds another accumulator into this one (parallel sweep reduction),
// using Chan et al.'s pairwise update.
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.mean += delta * float64(o.n) / float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n = n
}

func (w *Welford) String() string {
	return fmt.Sprintf("n=%d mean=%.2f std=%.2f min=%.0f max=%.0f", w.n, w.Mean(), w.Std(), w.Min(), w.Max())
}

// Sample retains observations for exact quantile queries. For the
// simulator's scale (<= a few hundred thousand samples per point) exact
// retention is cheaper than sketching and exactly reproducible.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// Count returns the number of retained observations.
func (s *Sample) Count() int { return len(s.xs) }

// Quantile returns the q-quantile (0 <= q <= 1) using nearest-rank
// interpolation; 0 when empty.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[len(s.xs)-1]
	}
	pos := q * float64(len(s.xs)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s.xs) {
		return s.xs[len(s.xs)-1]
	}
	return s.xs[lo]*(1-frac) + s.xs[lo+1]*frac
}

// Histogram counts observations in fixed-width bins over [0, width*bins);
// overflow lands in the last bin. It renders compact ASCII for reports.
type Histogram struct {
	width float64
	bins  []uint64
	total uint64
}

// NewHistogram builds a histogram with the given bin width and count.
func NewHistogram(width float64, bins int) *Histogram {
	if width <= 0 || bins < 1 {
		panic(fmt.Sprintf("stats: invalid histogram %gx%d", width, bins))
	}
	return &Histogram{width: width, bins: make([]uint64, bins)}
}

// Add counts one observation.
func (h *Histogram) Add(x float64) {
	i := int(x / h.width)
	if i < 0 {
		i = 0
	}
	if i >= len(h.bins) {
		i = len(h.bins) - 1
	}
	h.bins[i]++
	h.total++
}

// Bin returns the count of bin i.
func (h *Histogram) Bin(i int) uint64 { return h.bins[i] }

// Total returns the number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// Render draws one line per non-empty bin with a proportional bar.
func (h *Histogram) Render(barWidth int) string {
	if h.total == 0 {
		return "(empty)\n"
	}
	var peak uint64
	for _, b := range h.bins {
		if b > peak {
			peak = b
		}
	}
	out := ""
	for i, b := range h.bins {
		if b == 0 {
			continue
		}
		n := int(float64(b) / float64(peak) * float64(barWidth))
		bar := make([]byte, n)
		for j := range bar {
			bar[j] = '#'
		}
		out += fmt.Sprintf("[%6.0f,%6.0f) %8d %s\n", float64(i)*h.width, float64(i+1)*h.width, b, bar)
	}
	return out
}
