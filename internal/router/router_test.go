package router

import (
	"testing"
	"testing/quick"

	"repro/internal/message"
)

func TestFlitQueueFIFO(t *testing.T) {
	q := NewFlitQueue(4)
	m := message.New(1, 0, 1, 4, 2, message.Deterministic, 0)
	for i := 0; i < 4; i++ {
		q.Push(m.Flit(i))
	}
	if q.Len() != 4 || q.Space() != 0 || q.Cap() != 4 {
		t.Fatalf("len/space/cap = %d/%d/%d", q.Len(), q.Space(), q.Cap())
	}
	for i := 0; i < 4; i++ {
		f, ok := q.Front()
		if !ok || f.Seq != i {
			t.Fatalf("front seq = %d, want %d", f.Seq, i)
		}
		if got := q.Pop(); got.Seq != i {
			t.Fatalf("pop seq = %d, want %d", got.Seq, i)
		}
	}
	if _, ok := q.Front(); ok {
		t.Fatal("front on empty queue succeeded")
	}
}

func TestFlitQueueWrapsRing(t *testing.T) {
	q := NewFlitQueue(2)
	m := message.New(1, 0, 1, 8, 2, message.Deterministic, 0)
	// Interleave push/pop so head wraps around the ring repeatedly.
	seq := 0
	q.Push(m.Flit(seq))
	seq++
	for i := 0; i < 20; i++ {
		q.Push(m.Flit(seq % 8))
		seq++
		want := (seq - 2) % 8
		if got := q.Pop(); got.Seq != want {
			t.Fatalf("iteration %d: pop seq %d, want %d", i, got.Seq, want)
		}
	}
}

func TestFlitQueueOverflowPanics(t *testing.T) {
	q := NewFlitQueue(1)
	m := message.New(1, 0, 1, 4, 2, message.Deterministic, 0)
	q.Push(m.Flit(0))
	defer func() {
		if recover() == nil {
			t.Fatal("overflow did not panic")
		}
	}()
	q.Push(m.Flit(1))
}

func TestFlitQueueUnderflowPanics(t *testing.T) {
	q := NewFlitQueue(1)
	defer func() {
		if recover() == nil {
			t.Fatal("underflow did not panic")
		}
	}()
	q.Pop()
}

func TestNewFlitQueueValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity did not panic")
		}
	}()
	NewFlitQueue(0)
}

func TestRouterLayout(t *testing.T) {
	r := New(5, 3, 10, 2)
	if len(r.In) != 7 { // 6 network + injection
		t.Fatalf("in ports = %d, want 7", len(r.In))
	}
	if len(r.Out) != 6 {
		t.Fatalf("out ports = %d, want 6", len(r.Out))
	}
	if r.InjectionPort() != 6 {
		t.Fatalf("injection port = %d", r.InjectionPort())
	}
	for p := range r.In {
		if len(r.In[p]) != 10 {
			t.Fatalf("port %d has %d VCs", p, len(r.In[p]))
		}
	}
	for p := range r.Out {
		for vc := range r.Out[p] {
			if r.Out[p][vc].Credits != 2 {
				t.Fatalf("initial credits = %d, want bufDepth 2", r.Out[p][vc].Credits)
			}
			if r.Out[p][vc].Busy {
				t.Fatal("output VC born busy")
			}
		}
	}
	if len(r.RROut) != 7 { // network ports + ejection arbiter slot
		t.Fatalf("rr slots = %d", len(r.RROut))
	}
}

func TestActivityCounter(t *testing.T) {
	r := New(0, 2, 4, 2)
	m := message.New(1, 0, 1, 4, 2, message.Deterministic, 0)
	if r.Flits != 0 {
		t.Fatal("new router not idle")
	}
	r.Push(0, 1, m.Flit(0))
	r.Push(2, 3, m.Flit(1))
	if r.Flits != 2 {
		t.Fatalf("flits = %d, want 2", r.Flits)
	}
	r.Pop(0, 1)
	if r.Flits != 1 {
		t.Fatalf("flits = %d, want 1", r.Flits)
	}
}

func TestFlitQueuePropertyConservation(t *testing.T) {
	// Random interleavings of pushes and pops preserve FIFO order and
	// counts.
	if err := quick.Check(func(ops []bool, capRaw uint8) bool {
		capacity := 1 + int(capRaw)%8
		q := NewFlitQueue(capacity)
		m := message.New(1, 0, 1, 1024, 2, message.Deterministic, 0)
		pushed, popped := 0, 0
		for _, isPush := range ops {
			if isPush {
				if q.Space() > 0 {
					q.Push(m.Flit(pushed % 1024))
					pushed++
				}
			} else if q.Len() > 0 {
				f := q.Pop()
				if f.Seq != popped%1024 {
					return false
				}
				popped++
			}
		}
		return q.Len() == pushed-popped
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
