package router

import (
	"testing"
	"testing/quick"

	"repro/internal/message"
)

// poolMsg builds a pool-registered message of the given flit length (flits
// carry pool Refs, so a bare message.New cannot materialise them).
func poolMsg(length int) *message.Message {
	return message.NewPool(2, false).New(1, 0, 1, length, message.Deterministic, 0)
}

func TestFlitQueueFIFO(t *testing.T) {
	q := NewFlitQueue(4)
	m := poolMsg(4)
	for i := 0; i < 4; i++ {
		q.Push(m.Flit(i))
	}
	if q.Len() != 4 || q.Space() != 0 || q.Cap() != 4 {
		t.Fatalf("len/space/cap = %d/%d/%d", q.Len(), q.Space(), q.Cap())
	}
	for i := 0; i < 4; i++ {
		f, ok := q.Front()
		if !ok || f.Seq() != i {
			t.Fatalf("front seq = %d, want %d", f.Seq(), i)
		}
		if got := q.Pop(); got.Seq() != i {
			t.Fatalf("pop seq = %d, want %d", got.Seq(), i)
		}
	}
	if _, ok := q.Front(); ok {
		t.Fatal("front on empty queue succeeded")
	}
}

func TestFlitQueueWrapsRing(t *testing.T) {
	q := NewFlitQueue(2)
	m := poolMsg(8)
	// Interleave push/pop so head wraps around the ring repeatedly.
	seq := 0
	q.Push(m.Flit(seq))
	seq++
	for i := 0; i < 20; i++ {
		q.Push(m.Flit(seq % 8))
		seq++
		want := (seq - 2) % 8
		if got := q.Pop(); got.Seq() != want {
			t.Fatalf("iteration %d: pop seq %d, want %d", i, got.Seq(), want)
		}
	}
}

func TestFlitQueueOverflowPanics(t *testing.T) {
	q := NewFlitQueue(1)
	m := poolMsg(4)
	q.Push(m.Flit(0))
	defer func() {
		if recover() == nil {
			t.Fatal("overflow did not panic")
		}
	}()
	q.Push(m.Flit(1))
}

func TestFlitQueueUnderflowPanics(t *testing.T) {
	q := NewFlitQueue(1)
	defer func() {
		if recover() == nil {
			t.Fatal("underflow did not panic")
		}
	}()
	q.Pop()
}

func TestNewFlitQueueValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity did not panic")
		}
	}()
	NewFlitQueue(0)
}

func TestRouterLayout(t *testing.T) {
	r := New(5, 3, 10, 2)
	if len(r.In) != 7 { // 6 network + injection
		t.Fatalf("in ports = %d, want 7", len(r.In))
	}
	if len(r.Out) != 6 {
		t.Fatalf("out ports = %d, want 6", len(r.Out))
	}
	if r.InjectionPort() != 6 {
		t.Fatalf("injection port = %d", r.InjectionPort())
	}
	for p := range r.In {
		if len(r.In[p]) != 10 {
			t.Fatalf("port %d has %d VCs", p, len(r.In[p]))
		}
	}
	for p := range r.Out {
		for vc := range r.Out[p] {
			if r.Out[p][vc].Credits != 2 {
				t.Fatalf("initial credits = %d, want bufDepth 2", r.Out[p][vc].Credits)
			}
			if r.Out[p][vc].Busy {
				t.Fatal("output VC born busy")
			}
		}
	}
	if len(r.RROut) != 7 { // network ports + ejection arbiter slot
		t.Fatalf("rr slots = %d", len(r.RROut))
	}
}

func TestActivityCounter(t *testing.T) {
	r := New(0, 2, 4, 2)
	m := poolMsg(4)
	if r.Flits != 0 {
		t.Fatal("new router not idle")
	}
	r.Push(0, 1, m.Flit(0))
	r.Push(2, 3, m.Flit(1))
	if r.Flits != 2 {
		t.Fatalf("flits = %d, want 2", r.Flits)
	}
	r.Pop(0, 1)
	if r.Flits != 1 {
		t.Fatalf("flits = %d, want 1", r.Flits)
	}
}

func TestLaneWorklistOrderAndRetire(t *testing.T) {
	r := New(0, 2, 4, 2) // degree 4 + injection port, V=4
	r.EnableLaneTracking()
	m := poolMsg(8)

	// Mark lanes out of order, with a duplicate push into one of them.
	r.Push(2, 3, m.Flit(0))
	r.Push(0, 1, m.Flit(1))
	r.Push(r.InjectionPort(), 0, m.Flit(2))
	r.Push(2, 3, m.Flit(3)) // same lane again: must not double-mark
	if got := r.LaneCount(); got != 3 {
		t.Fatalf("lane count before merge = %d, want 3", got)
	}
	if got := len(r.Lanes()); got != 0 {
		t.Fatalf("lanes visible before merge: %d", got)
	}

	r.MergeLanes()
	want := []Lane{Lane(0*4 + 1), Lane(2*4 + 3), Lane(r.InjectionPort() * 4)}
	got := r.Lanes()
	if len(got) != len(want) {
		t.Fatalf("merged lanes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged lanes = %v, want %v (port-major ascending)", got, want)
		}
		port, vc := r.LanePortVC(got[i])
		if Lane(port*4+vc) != got[i] {
			t.Fatalf("LanePortVC(%d) = (%d,%d): does not round-trip", got[i], port, vc)
		}
	}

	// Drain lane (0,1); retire must drop exactly it and report the rest.
	r.Pop(0, 1)
	if n := r.RetireLanes(); n != 2 {
		t.Fatalf("retire count = %d, want 2", n)
	}
	if lanes := r.Lanes(); len(lanes) != 2 || lanes[0] != Lane(2*4+3) {
		t.Fatalf("lanes after retire = %v", lanes)
	}

	// A retired lane re-arms on the next push.
	r.Push(0, 1, m.Flit(4))
	if got := r.LaneCount(); got != 3 {
		t.Fatalf("lane count after re-push = %d, want 3", got)
	}
	r.MergeLanes()
	if lanes := r.Lanes(); len(lanes) != 3 || lanes[0] != Lane(0*4+1) {
		t.Fatalf("lanes after re-merge = %v", lanes)
	}
}

func TestLaneRetireCountsPendingMarks(t *testing.T) {
	// Lanes marked after the last merge (as applyStaged does late in a
	// cycle) must still count as activity in the retire path, or the
	// engine would retire a router holding fresh flits.
	r := New(0, 2, 4, 2)
	r.EnableLaneTracking()
	m := poolMsg(8)
	r.Push(1, 2, m.Flit(0))
	if n := r.RetireLanes(); n != 1 {
		t.Fatalf("retire count with only a pending mark = %d, want 1", n)
	}
}

func TestLaneTrackingOffByDefault(t *testing.T) {
	r := New(0, 2, 4, 2)
	m := poolMsg(8)
	r.Push(0, 0, m.Flit(0))
	if got := r.LaneCount(); got != 0 {
		t.Fatalf("untracked router recorded %d lanes", got)
	}
}

func TestFlitQueuePropertyConservation(t *testing.T) {
	// Random interleavings of pushes and pops preserve FIFO order and
	// counts.
	if err := quick.Check(func(ops []bool, capRaw uint8) bool {
		capacity := 1 + int(capRaw)%8
		q := NewFlitQueue(capacity)
		m := poolMsg(1024)
		pushed, popped := 0, 0
		for _, isPush := range ops {
			if isPush {
				if q.Space() > 0 {
					q.Push(m.Flit(pushed % 1024))
					pushed++
				}
			} else if q.Len() > 0 {
				f := q.Pop()
				if f.Seq() != popped%1024 {
					return false
				}
				popped++
			}
		}
		return q.Len() == pushed-popped
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
