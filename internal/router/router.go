// Package router models the wormhole router microarchitecture of §2 of the
// paper: per-virtual-channel flit FIFOs on every input port, output virtual
// channels with credit-based flow control, and the crossbar constraint of
// one flit per physical channel per cycle.
//
// The package holds state and per-router operations only; the cycle-level
// engine that wires routers together and applies the routing algorithms
// lives in internal/network.
package router

import (
	"fmt"
	"slices"

	"repro/internal/message"
	"repro/internal/topology"
)

// FlitQueue is a fixed-capacity FIFO of flits (one virtual channel's
// buffer).
type FlitQueue struct {
	items []message.Flit
	head  int
	size  int
}

// NewFlitQueue builds a queue of the given capacity.
func NewFlitQueue(capacity int) FlitQueue {
	if capacity < 1 {
		panic(fmt.Sprintf("router: buffer capacity must be >= 1, got %d", capacity))
	}
	return FlitQueue{items: make([]message.Flit, capacity)}
}

// Len returns the number of buffered flits.
func (q *FlitQueue) Len() int { return q.size }

// Cap returns the buffer capacity in flits.
func (q *FlitQueue) Cap() int { return len(q.items) }

// Space returns the number of free slots.
func (q *FlitQueue) Space() int { return len(q.items) - q.size }

// Push appends a flit; it panics on overflow (credits must prevent it).
func (q *FlitQueue) Push(f message.Flit) {
	if q.size == len(q.items) {
		panic("router: flit buffer overflow (credit accounting broken)")
	}
	q.items[(q.head+q.size)%len(q.items)] = f
	q.size++
}

// Front returns the flit at the head without removing it; ok is false when
// empty.
func (q *FlitQueue) Front() (message.Flit, bool) {
	if q.size == 0 {
		return message.Flit{}, false
	}
	return q.items[q.head], true
}

// Pop removes and returns the head flit; it panics when empty.
func (q *FlitQueue) Pop() message.Flit {
	if q.size == 0 {
		panic("router: pop from empty flit buffer")
	}
	f := q.items[q.head]
	q.items[q.head] = message.Flit{}
	q.head = (q.head + 1) % len(q.items)
	q.size--
	return f
}

// Each calls fn on every buffered flit in FIFO order.
func (q *FlitQueue) Each(fn func(message.Flit)) {
	for i := 0; i < q.size; i++ {
		fn(q.items[(q.head+i)%len(q.items)])
	}
}

// Filter removes every buffered flit for which drop returns true,
// preserving FIFO order of the survivors, and returns the number removed.
// The fault-transition purge uses it to pull a dead worm's flits out of
// shared buffers without disturbing interleaved worms.
func (q *FlitQueue) Filter(drop func(message.Flit) bool) int {
	if q.size == 0 {
		return 0
	}
	kept := 0
	for i := 0; i < q.size; i++ {
		f := q.items[(q.head+i)%len(q.items)]
		if drop(f) {
			continue
		}
		q.items[(q.head+kept)%len(q.items)] = f
		kept++
	}
	removed := q.size - kept
	for i := kept; i < q.size; i++ {
		q.items[(q.head+i)%len(q.items)] = message.Flit{}
	}
	q.size = kept
	return removed
}

// InVC is one input virtual channel: a flit buffer plus the route held by
// the worm currently at its front. The route persists from head-flit
// allocation until the tail flit leaves (wormhole channel reservation).
type InVC struct {
	Buf FlitQueue
	// OutPort/OutVC are the allocated route while HasRoute && !ToEject.
	OutPort topology.Port
	OutVC   int
	// ReadyAt is the earliest cycle the head may take its routing decision
	// (models the router decision time Td of assumption (f)).
	ReadyAt int64
	// Owner is the worm holding the route — valid only while HasRoute. The
	// fault-transition purge uses it to find every lane a dying worm has
	// reserved; steady-state routing never reads it. (The word-aligned
	// fields above precede the narrow ones so each lane packs into 72
	// bytes instead of 80.)
	Owner message.Ref
	// HasRoute marks an allocated route for the front worm.
	HasRoute bool
	// ToEject routes the worm to the local ejection port (delivery or
	// software absorption); OutPort/OutVC are meaningful otherwise.
	ToEject bool
}

// OutVC is one output virtual channel: ownership (a worm holds it from head
// allocation to tail traversal) and the credit count mirroring free space in
// the downstream input buffer.
type OutVC struct {
	Busy    bool
	Credits int
}

// Lane identifies one input virtual channel of a router as port*V + vc.
// The encoding makes ascending lane order identical to the
// port-major/VC-minor order of a dense nested scan over In, which is what
// keeps the engine's lane worklist rng-transparent.
type Lane int32

// Router is the per-node switching element. Ports are indexed as in
// internal/topology: network ports 0..2n-1, then the injection input port
// (index 2n). The ejection output port needs no per-VC state (it drains to
// the PE) and is represented implicitly.
type Router struct {
	ID topology.NodeID
	// In[port][vc]; port 2n is the injection port.
	In [][]InVC
	// Out[port][vc]; network ports only.
	Out [][]OutVC
	// Flits counts buffered flits across all input VCs — the activity
	// signal the engine uses to skip idle routers.
	Flits int
	// RROut holds the round-robin arbitration pointer per output port; the
	// extra last slot is the ejection port's.
	RROut []int

	// Per-lane activity worklist (the engine's second scheduler level; the
	// first is the router-level active set in internal/network). Enabled
	// by EnableLaneTracking; Push marks the receiving lane, MergeLanes
	// folds marks into the sorted worklist at cycle start, RetireLanes
	// drops drained lanes at cycle end. laneActive deduplicates marks.
	v           int
	laneTrack   bool
	laneActive  []bool
	lanes       []Lane
	lanePending []Lane
}

// New builds a router for a node of an n-dimensional torus with v virtual
// channels per port and per-VC buffers of depth bufDepth flits.
func New(id topology.NodeID, n, v, bufDepth int) *Router {
	degree := 2 * n
	r := &Router{
		ID:    id,
		In:    make([][]InVC, degree+1),
		Out:   make([][]OutVC, degree),
		RROut: make([]int, degree+1),
		v:     v,
	}
	for p := range r.In {
		r.In[p] = make([]InVC, v)
		for vc := range r.In[p] {
			r.In[p][vc] = InVC{Buf: NewFlitQueue(bufDepth)}
		}
	}
	for p := range r.Out {
		r.Out[p] = make([]OutVC, v)
		for vc := range r.Out[p] {
			// Credits start at the downstream buffer depth; symmetric
			// network, so it equals our own bufDepth.
			r.Out[p][vc] = OutVC{Credits: bufDepth}
		}
	}
	return r
}

// InjectionPort returns the index of this router's injection input port.
func (r *Router) InjectionPort() int { return len(r.In) - 1 }

// EnableLaneTracking arms the per-lane worklist: from now on Push marks
// the receiving lane active. The engine enables it when running the
// per-VC scheduler; the dense-VC ablation leaves it off so the old scan
// pays none of the bookkeeping and the A/B benchmark stays honest.
// Both worklists are pre-sized to the lane count: their growth is bounded
// by it, and first-touch append growth spread across tens of thousands of
// routers would otherwise show up as steady-state Step allocations long
// after warm-up (each router allocates the first time traffic reaches it).
func (r *Router) EnableLaneTracking() {
	r.laneTrack = true
	n := len(r.In) * r.v
	r.laneActive = make([]bool, n)
	r.lanes = make([]Lane, 0, n)
	r.lanePending = make([]Lane, 0, n)
}

// LanePortVC decodes a lane id into its (port, vc) pair.
func (r *Router) LanePortVC(l Lane) (port, vc int) {
	return int(l) / r.v, int(l) % r.v
}

// Lanes returns the merged worklist of active lanes in ascending
// (port, vc) order. Valid between MergeLanes and the next Push.
func (r *Router) Lanes() []Lane { return r.lanes }

// LaneCount returns the number of active lanes, merged and pending.
func (r *Router) LaneCount() int { return len(r.lanes) + len(r.lanePending) }

// MergeLanes folds lanes marked since the last cycle into the sorted
// worklist. Ascending lane order is the determinism contract: the engine
// visits lanes exactly as a dense port-major scan would, so rng draws
// happen in the same sequence.
func (r *Router) MergeLanes() {
	if len(r.lanePending) == 0 {
		return
	}
	r.lanes = append(r.lanes, r.lanePending...)
	r.lanePending = r.lanePending[:0]
	slices.Sort(r.lanes)
}

// RetireLanes drops drained lanes (empty buffer) from the worklist and
// reports how many lanes remain active, counting unmerged marks — the
// per-lane counter the engine's retire path consults instead of
// re-scanning all ports×V buffers. A lane holding only a worm's route
// (HasRoute, buffer drained mid-worm) retires too: every lane action
// needs a buffered flit, and the next arrival re-marks it.
func (r *Router) RetireLanes() int {
	keep := r.lanes[:0]
	for _, lane := range r.lanes {
		if r.In[int(lane)/r.v][int(lane)%r.v].Buf.Len() > 0 {
			keep = append(keep, lane)
		} else {
			r.laneActive[lane] = false
		}
	}
	r.lanes = keep
	return len(keep) + len(r.lanePending)
}

// Push places a flit into input (port, vc), updating the activity counter
// and, when lane tracking is on, marking the lane for the next merge.
func (r *Router) Push(port, vc int, f message.Flit) {
	r.In[port][vc].Buf.Push(f)
	r.Flits++
	if r.laneTrack {
		lane := Lane(port*r.v + vc)
		if !r.laneActive[lane] {
			r.laneActive[lane] = true
			r.lanePending = append(r.lanePending, lane)
		}
	}
}

// Pop removes the front flit from input (port, vc), updating the activity
// counter.
func (r *Router) Pop(port, vc int) message.Flit {
	f := r.In[port][vc].Buf.Pop()
	r.Flits--
	return f
}

// FilterLane removes every flit of input (port, vc) for which drop returns
// true, keeping the activity counter consistent, and returns the number
// removed. See FlitQueue.Filter.
func (r *Router) FilterLane(port, vc int, drop func(message.Flit) bool) int {
	removed := r.In[port][vc].Buf.Filter(drop)
	r.Flits -= removed
	return removed
}
