package topology

import "fmt"

// Port identifies one of a router's physical channel endpoints. Network
// ports are numbered 0..2n-1 with port 2*dim for the Plus direction and
// 2*dim+1 for Minus; the two local ports (injection from and ejection to the
// processing element) follow.
type Port int

// PortFor returns the network output port leaving a node along dim towards
// dir.
func PortFor(dim int, dir Dir) Port {
	if dir == Plus {
		return Port(2 * dim)
	}
	return Port(2*dim + 1)
}

// Dim returns the dimension a network port travels along.
func (p Port) Dim() int { return int(p) / 2 }

// Dir returns the direction a network port travels.
func (p Port) Dir() Dir {
	if int(p)%2 == 0 {
		return Plus
	}
	return Minus
}

// Opposite returns the port on the neighbouring router that receives what
// this output port sends (same dimension, reverse direction).
func (p Port) Opposite() Port { return PortFor(p.Dim(), p.Dir().Opposite()) }

func (p Port) String() string {
	return fmt.Sprintf("d%d%s", p.Dim(), p.Dir())
}

// InjectionPort returns the index of the injection (PE -> router) port for a
// torus of n dimensions; EjectionPort the (router -> PE) port. They share the
// index space with network ports so arbiter tables can be flat arrays.
func InjectionPort(n int) Port { return Port(2 * n) }

// EjectionPort returns the ejection port index for an n-dimensional torus.
func EjectionPort(n int) Port { return Port(2 * n) }

// ChannelID names a unidirectional physical channel: the output port `Port`
// of node `Src`. Virtual channels are (ChannelID, vc index) pairs; packages
// that need them (deadlock analysis) build their own composite keys.
type ChannelID struct {
	Src  NodeID
	Port Port
}

// Dst returns the node this channel delivers to, or -1 when the network
// has no such link (mesh edges).
func (c ChannelID) Dst(net Network) NodeID {
	return net.Neighbor(c.Src, c.Port.Dim(), c.Port.Dir())
}

func (c ChannelID) String() string {
	return fmt.Sprintf("ch[%d:%s]", c.Src, c.Port)
}

// Channels enumerates every unidirectional network channel of the torus in a
// deterministic order (node-major, then port).
func (t *Torus) Channels() []ChannelID {
	out := make([]ChannelID, 0, t.Nodes()*t.Degree())
	for id := 0; id < t.Nodes(); id++ {
		for p := 0; p < t.Degree(); p++ {
			out = append(out, ChannelID{Src: NodeID(id), Port: Port(p)})
		}
	}
	return out
}

// ChannelsOf enumerates every unidirectional network channel of net in a
// deterministic order (node-major, then port), skipping the unwired edge
// ports of non-wrapping topologies.
func ChannelsOf(net Network) []ChannelID {
	out := make([]ChannelID, 0, net.Nodes()*net.Degree())
	for id := 0; id < net.Nodes(); id++ {
		for p := 0; p < net.Degree(); p++ {
			port := Port(p)
			if !net.HasLink(NodeID(id), port.Dim(), port.Dir()) {
				continue
			}
			out = append(out, ChannelID{Src: NodeID(id), Port: port})
		}
	}
	return out
}
