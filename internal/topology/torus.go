// Package topology models k-ary n-cube (torus) interconnection networks:
// node addressing, channel/port naming, neighbourhood, and minimal-path
// geometry, exactly as described in Section 2 of Safaei et al. (IPDPS 2006).
//
// A k-ary n-cube consists of N = k^n nodes arranged in an n-dimensional cube
// with k nodes along each dimension. Each node carries an n-digit radix-k
// address and is connected by a pair of unidirectional channels (one per
// direction) to the nodes whose address differs by ±1 (mod k) in exactly one
// digit. The topology is regular and edge-symmetric.
package topology

import (
	"fmt"
	"strings"
)

// NodeID identifies a node as the radix-k integer encoding of its address:
// id = a0 + a1*k + a2*k^2 + ... for address digits a0..a(n-1).
type NodeID int

// Dir is a direction along a dimension: Plus moves towards increasing
// coordinates (with wraparound), Minus towards decreasing.
type Dir int8

const (
	// Plus is the +1 (mod k) direction along a dimension.
	Plus Dir = +1
	// Minus is the -1 (mod k) direction along a dimension.
	Minus Dir = -1
)

// Opposite returns the reverse direction.
func (d Dir) Opposite() Dir { return -d }

func (d Dir) String() string {
	if d == Plus {
		return "+"
	}
	return "-"
}

// Torus is an immutable k-ary n-cube descriptor. All methods are safe for
// concurrent use.
type Torus struct {
	k int // radix: nodes per dimension
	n int // number of dimensions
	// pow[i] = k^i, cached for fast address arithmetic.
	pow []int
}

// New constructs a k-ary n-cube. It panics on degenerate parameters
// (k < 2 or n < 1): those are programming errors, not runtime conditions.
func New(k, n int) *Torus {
	if k < 2 {
		panic(fmt.Sprintf("topology: radix k must be >= 2, got %d", k))
	}
	if n < 1 {
		panic(fmt.Sprintf("topology: dimension n must be >= 1, got %d", n))
	}
	pow := make([]int, n+1)
	pow[0] = 1
	for i := 1; i <= n; i++ {
		pow[i] = pow[i-1] * k
	}
	return &Torus{k: k, n: n, pow: pow}
}

// Kind implements Network.
func (t *Torus) Kind() string { return "torus" }

// Spec implements Network.
func (t *Torus) Spec() string { return fmt.Sprintf("torus:k=%d,n=%d", t.k, t.n) }

// Wraps implements Network: tori close every ring with wraparound links,
// which is what makes the dateline virtual-channel classes necessary.
func (t *Torus) Wraps() bool { return true }

// HasLink implements Network: every ±1 move of a torus carries a channel.
func (t *Torus) HasLink(id NodeID, dim int, dir Dir) bool { return dim < t.n }

// LinkLatency implements Network: base tori defer every link to the
// engine's configured default (overlay with a latmap for non-uniform wires).
func (t *Torus) LinkLatency(src NodeID, port Port) int64 { return 0 }

// K returns the radix (nodes per dimension).
func (t *Torus) K() int { return t.k }

// N returns the number of dimensions.
func (t *Torus) N() int { return t.n }

// Nodes returns the total node count k^n.
func (t *Torus) Nodes() int { return t.pow[t.n] }

// Degree returns the number of network ports per router (2 per dimension).
func (t *Torus) Degree() int { return 2 * t.n }

// Coord returns the address digit of node id along dimension dim.
func (t *Torus) Coord(id NodeID, dim int) int {
	return (int(id) / t.pow[dim]) % t.k
}

// Coords decomposes a node id into its full address {a0, ..., a(n-1)}.
func (t *Torus) Coords(id NodeID) []int {
	c := make([]int, t.n)
	v := int(id)
	for i := 0; i < t.n; i++ {
		c[i] = v % t.k
		v /= t.k
	}
	return c
}

// FromCoords composes a node id from an address. Digits are reduced mod k so
// callers may pass unnormalised (e.g. negative) coordinates.
func (t *Torus) FromCoords(c []int) NodeID {
	if len(c) != t.n {
		panic(fmt.Sprintf("topology: FromCoords got %d digits, want %d", len(c), t.n))
	}
	id := 0
	for i := t.n - 1; i >= 0; i-- {
		d := c[i] % t.k
		if d < 0 {
			d += t.k
		}
		id = id*t.k + d
	}
	return NodeID(id)
}

// Neighbor returns the node adjacent to id along dim in direction dir,
// with wraparound.
func (t *Torus) Neighbor(id NodeID, dim int, dir Dir) NodeID {
	c := t.Coord(id, dim)
	nc := c + int(dir)
	if nc < 0 {
		nc += t.k
	} else if nc >= t.k {
		nc -= t.k
	}
	return NodeID(int(id) + (nc-c)*t.pow[dim])
}

// RingOffset returns the minimal signed hop offset from coordinate a to b on
// a k-node ring: the value o with |o| minimal such that a+o ≡ b (mod k).
// Ties (|o| = k/2 for even k) resolve to the positive direction, matching the
// usual dimension-order convention.
func (t *Torus) RingOffset(a, b int) int {
	d := b - a
	if d < 0 {
		d += t.k
	}
	if 2*d <= t.k {
		return d
	}
	return d - t.k
}

// RingDist returns the minimal hop count between two coordinates on a ring.
func (t *Torus) RingDist(a, b int) int {
	o := t.RingOffset(a, b)
	if o < 0 {
		return -o
	}
	return o
}

// Distance returns the minimal hop count between two nodes (sum of per-
// dimension ring distances).
func (t *Torus) Distance(a, b NodeID) int {
	d := 0
	for i := 0; i < t.n; i++ {
		d += t.RingDist(t.Coord(a, i), t.Coord(b, i))
	}
	return d
}

// MinimalDirs returns, for each dimension, the direction(s) of minimal
// progress from src towards dst: Plus, Minus, 0 if the coordinate already
// matches. When both ways around the ring are equal length (even k, offset
// exactly k/2), the positive direction is reported; adaptive routers treat
// either as profitable via BothMinimal.
func (t *Torus) MinimalDirs(src, dst NodeID) []Dir {
	dirs := make([]Dir, t.n)
	for i := 0; i < t.n; i++ {
		o := t.RingOffset(t.Coord(src, i), t.Coord(dst, i))
		switch {
		case o > 0:
			dirs[i] = Plus
		case o < 0:
			dirs[i] = Minus
		default:
			dirs[i] = 0
		}
	}
	return dirs
}

// BothMinimal reports whether, along dimension dim, both ring directions from
// src to dst are minimal (possible only for even k at offset k/2).
func (t *Torus) BothMinimal(src, dst NodeID, dim int) bool {
	d := t.RingDist(t.Coord(src, dim), t.Coord(dst, dim))
	return d*2 == t.k
}

// Valid reports whether id is a legal node identifier for this torus.
func (t *Torus) Valid(id NodeID) bool {
	return id >= 0 && int(id) < t.Nodes()
}

// String renders, e.g., "8-ary 2-cube (64 nodes)".
func (t *Torus) String() string {
	return fmt.Sprintf("%d-ary %d-cube (%d nodes)", t.k, t.n, t.Nodes())
}

// FormatNode renders a node address as "(a0,a1,...)" for logs and traces.
func (t *Torus) FormatNode(id NodeID) string {
	c := t.Coords(id)
	parts := make([]string, len(c))
	for i, v := range c {
		parts[i] = fmt.Sprint(v)
	}
	return "(" + strings.Join(parts, ",") + ")"
}
