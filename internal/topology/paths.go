package topology

// This file contains path geometry helpers shared by the routing algorithms
// and the test suite: dimension-order path enumeration, wraparound (dateline)
// detection, and 2-D plane extraction used by the Software-Based rerouting
// layer, which always reasons about a pair of consecutive dimensions.

// WrapsAround reports whether one hop from coordinate c in direction dir
// crosses the ring's wraparound edge (between coordinates k-1 and 0). The
// wraparound edge doubles as the dateline for deadlock-free virtual-channel
// class assignment (Dally & Seitz).
func (t *Torus) WrapsAround(c int, dir Dir) bool {
	if dir == Plus {
		return c == t.k-1
	}
	return c == 0
}

// EcubePath returns the dimension-order (e-cube) path from src to dst,
// inclusive of both endpoints: dimensions corrected in increasing order,
// minimal direction within each ring. This is the fault-free trajectory of
// the deterministic routing algorithm, used by tests and by the rerouting
// planner to probe candidate paths for faults.
func (t *Torus) EcubePath(src, dst NodeID) []NodeID {
	path := []NodeID{src}
	cur := src
	for dim := 0; dim < t.n; dim++ {
		o := t.RingOffset(t.Coord(cur, dim), t.Coord(dst, dim))
		dir := Plus
		if o < 0 {
			dir = Minus
			o = -o
		}
		for s := 0; s < o; s++ {
			cur = t.Neighbor(cur, dim, dir)
			path = append(path, cur)
		}
	}
	return path
}

// RingPath returns the nodes visited travelling from src along dim in
// direction dir until the coordinate in dim equals destCoord, inclusive of
// both endpoints. Unlike EcubePath it honours a forced (possibly non-minimal)
// direction, which is exactly what a reversed Software-Based message does.
func (t *Torus) RingPath(src NodeID, dim int, dir Dir, destCoord int) []NodeID {
	path := []NodeID{src}
	cur := src
	for t.Coord(cur, dim) != destCoord {
		cur = t.Neighbor(cur, dim, dir)
		path = append(path, cur)
		if len(path) > t.k+1 {
			panic("topology: RingPath failed to terminate (corrupt coordinates)")
		}
	}
	return path
}

// Plane describes the 2-D sub-grid spanned by dimensions (DimA, DimB)
// through a base node of any Network: all other coordinates are frozen to
// the base node's. SW-Based-nD routes every message through a sequence of
// such planes; fault shapes are stamped into them.
type Plane struct {
	net        Network
	DimA, DimB int
	base       NodeID
}

// PlaneOf returns the plane of net spanned by (dimA, dimB) through base.
func PlaneOf(net Network, base NodeID, dimA, dimB int) Plane {
	if dimA == dimB {
		panic("topology: plane requires two distinct dimensions")
	}
	return Plane{net: net, DimA: dimA, DimB: dimB, base: base}
}

// PlaneThrough returns the plane spanned by (dimA, dimB) through node base.
func (t *Torus) PlaneThrough(base NodeID, dimA, dimB int) Plane {
	return PlaneOf(t, base, dimA, dimB)
}

// Node returns the plane member with coordinates (a, b) along (DimA, DimB).
func (p Plane) Node(a, b int) NodeID {
	c := p.net.Coords(p.base)
	c[p.DimA] = a
	c[p.DimB] = b
	return p.net.FromCoords(c)
}

// Contains reports whether id lies in the plane (all frozen coordinates
// match the base node's).
func (p Plane) Contains(id NodeID) bool {
	for d := 0; d < p.net.N(); d++ {
		if d == p.DimA || d == p.DimB {
			continue
		}
		if p.net.Coord(id, d) != p.net.Coord(p.base, d) {
			return false
		}
	}
	return true
}

// Nodes enumerates all k*k members of the plane in (a-major, b-minor) order.
func (p Plane) Nodes() []NodeID {
	k := p.net.K()
	out := make([]NodeID, 0, k*k)
	for a := 0; a < k; a++ {
		for b := 0; b < k; b++ {
			out = append(out, p.Node(a, b))
		}
	}
	return out
}

// Neighbors4 returns the four in-plane neighbours of id (±DimA, ±DimB);
// entries are -1 where the underlying network has no link (mesh edges).
func (p Plane) Neighbors4(id NodeID) [4]NodeID {
	return [4]NodeID{
		p.net.Neighbor(id, p.DimA, Plus),
		p.net.Neighbor(id, p.DimA, Minus),
		p.net.Neighbor(id, p.DimB, Plus),
		p.net.Neighbor(id, p.DimB, Minus),
	}
}
