package topology

import (
	"fmt"
	"strconv"
	"strings"
)

// Spec is a parsed topology specifier of the form
//
//	name
//	name:key=value,key=value,...
//
// sharing the grammar of the routing and traffic registries, e.g.
// "torus:k=8,n=2", "mesh:k=16,n=2" or "hypercube:n=10". The reserved
// latmap=<file> parameter applies a per-link latency overlay to any
// topology and is consumed by New before the factory sees the spec.
type Spec struct {
	Name   string
	Params []Param
}

// Param is one key=value pair of a Spec, in written order.
type Param struct {
	Key, Value string
}

// Get returns the value of key and whether it was present.
func (s Spec) Get(key string) (string, bool) {
	for _, p := range s.Params {
		if p.Key == key {
			return p.Value, true
		}
	}
	return "", false
}

// String renders the spec back into its parseable form.
func (s Spec) String() string {
	if len(s.Params) == 0 {
		return s.Name
	}
	parts := make([]string, len(s.Params))
	for i, p := range s.Params {
		parts[i] = p.Key + "=" + p.Value
	}
	return s.Name + ":" + strings.Join(parts, ",")
}

// validSpecName reports whether s is a legal spec name or parameter key:
// non-empty, lower-case letters, digits, '-' or '_'.
func validSpecName(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '-' && c != '_' {
			return false
		}
	}
	return true
}

// ParseSpec parses a "name[:key=val,...]" topology specifier.
func ParseSpec(s string) (Spec, error) {
	s = strings.TrimSpace(s)
	name, rest, hasParams := strings.Cut(s, ":")
	if !validSpecName(name) {
		return Spec{}, fmt.Errorf("topology: bad spec name %q in %q", name, s)
	}
	spec := Spec{Name: name}
	if !hasParams {
		return spec, nil
	}
	if rest == "" {
		return Spec{}, fmt.Errorf("topology: spec %q has an empty parameter list", s)
	}
	seen := map[string]bool{}
	for _, kv := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(kv, "=")
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if !ok || !validSpecName(key) || val == "" {
			return Spec{}, fmt.Errorf("topology: bad parameter %q in spec %q (want key=value)", kv, s)
		}
		if seen[key] {
			return Spec{}, fmt.Errorf("topology: duplicate parameter %q in spec %q", key, s)
		}
		seen[key] = true
		spec.Params = append(spec.Params, Param{Key: key, Value: val})
	}
	return spec, nil
}

// specArgs is the typed accessor over a Spec's parameters used by topology
// factories: every accessor marks its key as consumed and records the first
// conversion or range error; finish reports that error, or complains about
// keys no accessor asked for. The same accessors back the static check
// functions, so spec validation and construction cannot drift.
type specArgs struct {
	spec Spec
	used map[string]bool
	err  error
}

func newSpecArgs(spec Spec) *specArgs {
	return &specArgs{spec: spec, used: make(map[string]bool, len(spec.Params))}
}

func (a *specArgs) fail(format string, v ...any) {
	if a.err == nil {
		a.err = fmt.Errorf("topology: spec %q: %s", a.spec.String(), fmt.Sprintf(format, v...))
	}
}

// Int returns the value of key as an int, or def when absent.
func (a *specArgs) Int(key string, def int) int {
	a.used[key] = true
	s, ok := a.spec.Get(key)
	if !ok {
		return def
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		a.fail("parameter %s=%q is not an integer", key, s)
		return def
	}
	return v
}

// finish returns the first recorded error, or an unknown-parameter error
// for any key no accessor consumed.
func (a *specArgs) finish() error {
	if a.err != nil {
		return a.err
	}
	for _, p := range a.spec.Params {
		if !a.used[p.Key] {
			return fmt.Errorf("topology: spec %q: unknown parameter %q", a.spec.String(), p.Key)
		}
	}
	return nil
}
