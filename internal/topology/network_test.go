package topology

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRegistryBuildsRegisteredTopologies checks the happy paths of the
// registry: names, aliases, parameters and defaults all resolve to the
// expected concrete networks.
func TestRegistryBuildsRegisteredTopologies(t *testing.T) {
	for _, tc := range []struct {
		spec        string
		kind        string
		k, n, nodes int
		wraps       bool
	}{
		{"torus", "torus", 8, 2, 64, true},
		{"torus:k=4,n=3", "torus", 4, 3, 64, true},
		{"k-ary-n-cube:k=6,n=2", "torus", 6, 2, 36, true},
		{"mesh", "mesh", 8, 2, 64, false},
		{"mesh:k=5,n=2", "mesh", 5, 2, 25, false},
		{"hypercube:n=4", "torus", 2, 4, 16, true},
		{"binary-n-cube:n=3", "torus", 2, 3, 8, true},
	} {
		net, err := NewNetwork(tc.spec)
		if err != nil {
			t.Errorf("NewNetwork(%q): %v", tc.spec, err)
			continue
		}
		if net.Kind() != tc.kind || net.K() != tc.k || net.N() != tc.n ||
			net.Nodes() != tc.nodes || net.Wraps() != tc.wraps {
			t.Errorf("NewNetwork(%q) = %s (kind %s, k=%d, n=%d, nodes=%d, wraps=%v)",
				tc.spec, net, net.Kind(), net.K(), net.N(), net.Nodes(), net.Wraps())
		}
		// The canonical spec must rebuild an identical network.
		again, err := NewNetwork(net.Spec())
		if err != nil {
			t.Errorf("round-trip NewNetwork(%q): %v", net.Spec(), err)
		} else if again.Kind() != net.Kind() || again.Nodes() != net.Nodes() {
			t.Errorf("spec round trip %q changed the network", net.Spec())
		}
	}
}

// TestRegistryRejectsBadSpecs pins the registry's error paths: unknown
// names, malformed grammar, out-of-range and unknown parameters.
func TestRegistryRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"moebius",         // unknown name
		"torus:k=1",       // radix below 2
		"torus:n=0",       // dimension below 1
		"torus:k=abc",     // not an integer
		"torus:radix=8",   // unknown parameter
		"mesh:k=9999,n=9", // over the node limit
		"hypercube:k=3",   // hypercube has no radix parameter
		"torus:",          // empty parameter list
		"torus:k",         // not key=value
		"torus:k=8,k=9",   // duplicate key
		"Torus",           // upper case name
	} {
		if _, err := NewNetwork(spec); err == nil {
			t.Errorf("NewNetwork(%q) accepted", spec)
		}
		if _, _, err := Check(spec); err == nil {
			t.Errorf("Check(%q) accepted", spec)
		}
	}
	if _, ok := Lookup("moebius"); ok {
		t.Error("Lookup found an unregistered topology")
	}
	if _, err := NewNetwork("moebius"); err == nil || !strings.Contains(err.Error(), "registered:") {
		t.Errorf("unknown-topology error does not list the registry: %v", err)
	}
}

// TestRegistryDuplicatePanics pins the build-time contract: double
// registration and nil factories are programming errors.
func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(Info{Name: "torus"}, nil, func(spec Spec) (Network, error) { return New(8, 2), nil })
}

func TestRegistryNilFactoryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil factory did not panic")
		}
	}()
	Register(Info{Name: "brand-new"}, nil, nil)
}

// TestMeshGeometry checks the mesh against the torus where they must agree
// (interior geometry) and differ (edges, distances, datelines).
func TestMeshGeometry(t *testing.T) {
	m := NewMesh(4, 2)
	if m.Degree() != 4 || m.Nodes() != 16 {
		t.Fatalf("mesh shape: degree %d, nodes %d", m.Degree(), m.Nodes())
	}
	// Edge behaviour: node (0,0) has no -d0/-d1 links, (3,3) no +d0/+d1.
	origin := m.FromCoords([]int{0, 0})
	corner := m.FromCoords([]int{3, 3})
	if m.HasLink(origin, 0, Minus) || m.HasLink(origin, 1, Minus) {
		t.Error("origin has outward minus links")
	}
	if m.HasLink(corner, 0, Plus) || m.HasLink(corner, 1, Plus) {
		t.Error("corner has outward plus links")
	}
	if nb := m.Neighbor(origin, 0, Minus); nb != -1 {
		t.Errorf("Neighbor off the edge = %d, want -1", nb)
	}
	if nb := m.Neighbor(origin, 0, Plus); nb != m.FromCoords([]int{1, 0}) {
		t.Errorf("interior Neighbor = %d", nb)
	}
	// Distances are Manhattan: corner to corner is 2(k-1), not 2 as on the
	// torus.
	if d := m.Distance(origin, corner); d != 6 {
		t.Errorf("mesh corner distance = %d, want 6", d)
	}
	if d := New(4, 2).Distance(origin, corner); d != 2 {
		t.Errorf("torus corner distance = %d, want 2 (wraparound)", d)
	}
	// No datelines, no double-minimal ties.
	for c := 0; c < 4; c++ {
		if m.WrapsAround(c, Plus) || m.WrapsAround(c, Minus) {
			t.Errorf("mesh WrapsAround(%d) true", c)
		}
	}
	if m.BothMinimal(origin, corner, 0) {
		t.Error("mesh BothMinimal true")
	}
	if m.RingOffset(3, 0) != -3 || m.RingOffset(0, 3) != 3 {
		t.Error("mesh RingOffset wraps")
	}
	// ChannelsOf skips unwired edge ports: a k-ary n-mesh has 2n(k-1)k^(n-1)
	// unidirectional channels, the torus the full 2nk^n.
	if got, want := len(ChannelsOf(m)), 2*2*3*4; got != want {
		t.Errorf("mesh channels = %d, want %d", got, want)
	}
	if got, want := len(ChannelsOf(New(4, 2))), 2*2*16; got != want {
		t.Errorf("torus channels = %d, want %d", got, want)
	}
}

// TestLatencyOverlay checks the latmap decorator: file parsing, per-link
// override, pass-through of unmapped links, and validation of nonexistent
// channels and degenerate latencies.
func TestLatencyOverlay(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "lat.csv")
	content := "# src,port,latency\n5,0,3\n5,1,4\n\n12,2,7\n"
	if err := os.WriteFile(file, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork("torus:k=8,n=2,latmap=" + file)
	if err != nil {
		t.Fatal(err)
	}
	if got := net.LinkLatency(5, 0); got != 3 {
		t.Errorf("LinkLatency(5,0) = %d, want 3", got)
	}
	if got := net.LinkLatency(5, 1); got != 4 {
		t.Errorf("LinkLatency(5,1) = %d, want 4", got)
	}
	if got := net.LinkLatency(12, 2); got != 7 {
		t.Errorf("LinkLatency(12,2) = %d, want 7", got)
	}
	if got := net.LinkLatency(6, 0); got != 0 {
		t.Errorf("unmapped LinkLatency = %d, want 0 (engine default)", got)
	}
	// The overlay must keep the base geometry and advertise itself in Spec.
	if net.Kind() != "torus" || net.Nodes() != 64 {
		t.Errorf("overlay changed the base network: %s", net)
	}
	if !strings.Contains(net.Spec(), "latmap=") {
		t.Errorf("overlay spec lost the latmap: %q", net.Spec())
	}

	// Error paths: missing file, malformed line, nonexistent channel
	// (mesh edge), latency below 1.
	if _, err := NewNetwork("torus:k=8,n=2,latmap=" + filepath.Join(dir, "absent.csv")); err == nil {
		t.Error("missing latmap file accepted")
	}
	bad := filepath.Join(dir, "bad.csv")
	os.WriteFile(bad, []byte("1,2\n"), 0o644)
	if _, err := NewNetwork("torus:k=8,n=2,latmap=" + bad); err == nil {
		t.Error("malformed latmap line accepted")
	}
	edge := filepath.Join(dir, "edge.csv")
	os.WriteFile(edge, []byte("0,1,2\n"), 0o644) // port d0- off node 0: mesh edge
	if _, err := NewNetwork("mesh:k=8,n=2,latmap=" + edge); err == nil {
		t.Error("latmap on a nonexistent mesh-edge channel accepted")
	}
	if _, err := NewNetwork("torus:k=8,n=2,latmap=" + edge); err != nil {
		t.Errorf("the same channel exists on the torus: %v", err)
	}
	zero := filepath.Join(dir, "zero.csv")
	os.WriteFile(zero, []byte("0,0,0\n"), 0o644)
	if _, err := NewNetwork("torus:k=8,n=2,latmap=" + zero); err == nil {
		t.Error("zero latency accepted")
	}
}

// TestHypercubeIsBinaryTorus pins the alias semantics: a hypercube:n spec
// is the 2-ary n-torus, with both directions along a dimension reaching
// the same neighbour.
func TestHypercubeIsBinaryTorus(t *testing.T) {
	net, err := NewNetwork("hypercube:n=3")
	if err != nil {
		t.Fatal(err)
	}
	if net.Nodes() != 8 || net.Degree() != 6 {
		t.Fatalf("hypercube: nodes %d, degree %d", net.Nodes(), net.Degree())
	}
	for id := 0; id < net.Nodes(); id++ {
		for d := 0; d < net.N(); d++ {
			plus := net.Neighbor(NodeID(id), d, Plus)
			minus := net.Neighbor(NodeID(id), d, Minus)
			if plus != minus {
				t.Fatalf("node %d dim %d: +/- neighbours differ (%d vs %d)", id, d, plus, minus)
			}
			if net.Coords(plus)[d] == net.Coord(NodeID(id), d) {
				t.Fatalf("node %d dim %d: neighbour does not flip the bit", id, d)
			}
		}
	}
}
