package topology

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Network is the pluggable topology interface: everything the routing
// algorithms, the flit-level engine, the fault model and the workload
// generators need from an interconnection network goes through it, so new
// topologies plug in by registration alone, exactly like routing algorithms
// and traffic patterns.
//
// The model is a regular direct network laid out on an n-dimensional grid:
// every node carries an n-digit radix-k address, and the only hops are ±1
// moves along one dimension. Implementations differ in which of those hops
// carry links (torus: all, with wraparound; mesh: interior only) and in the
// per-dimension distance geometry that follows. Port numbering, flit
// buffering and virtual-channel structure are shared across topologies (see
// Port).
//
// All methods must be safe for concurrent use; networks are immutable after
// construction.
type Network interface {
	// Kind is the primary registry name of the topology family ("torus",
	// "mesh"); aliases (hypercube) report their underlying family.
	Kind() string
	// Spec renders the canonical spec string reconstructing this network,
	// e.g. "torus:k=8,n=2".
	Spec() string
	// K is the radix (nodes per dimension) and N the number of dimensions.
	K() int
	N() int
	// Nodes is the total node count.
	Nodes() int
	// Degree is the number of network ports per router (2 per dimension;
	// edge routers of non-wrapping topologies simply leave ports unwired).
	Degree() int
	// Wraps reports whether the topology has wraparound links. Routing uses
	// it to decide whether dateline virtual-channel classes are required
	// and whether direction-reversal detours can succeed.
	Wraps() bool
	// Coord returns the address digit of id along dim; Coords the full
	// address; FromCoords its inverse (digits reduced mod k so callers may
	// pass unnormalised coordinates).
	Coord(id NodeID, dim int) int
	Coords(id NodeID) []int
	FromCoords(c []int) NodeID
	// Valid reports whether id is a legal node identifier.
	Valid(id NodeID) bool
	// HasLink reports whether a physical channel leaves id along dim in
	// direction dir. Tori always have one; meshes lack them at the edges.
	HasLink(id NodeID, dim int, dir Dir) bool
	// Neighbor returns the node one hop from id along dim towards dir, or
	// -1 when no such link exists (query HasLink first on possibly-edge
	// moves; indexing by a -1 node id is a programming error).
	Neighbor(id NodeID, dim int, dir Dir) NodeID
	// RingOffset returns the signed minimal hop offset from coordinate a to
	// b along one dimension (wraparound-aware on tori, plain difference on
	// meshes); RingDist its absolute value.
	RingOffset(a, b int) int
	RingDist(a, b int) int
	// Distance returns the minimal hop count between two nodes.
	Distance(a, b NodeID) int
	// BothMinimal reports whether both directions along dim are minimal
	// from src to dst (possible only on tori with even k at offset k/2).
	BothMinimal(src, dst NodeID, dim int) bool
	// WrapsAround reports whether one hop from coordinate c towards dir
	// crosses the wraparound (dateline) edge. Always false on meshes.
	WrapsAround(c int, dir Dir) bool
	// LinkLatency returns the flit time across the channel leaving src
	// through port, or 0 to defer to the engine's configured default. Base
	// topologies return 0 everywhere; the latmap overlay overrides
	// individual links (non-uniform wires).
	LinkLatency(src NodeID, port Port) int64
	// String renders a human-readable summary; FormatNode one address.
	String() string
	FormatNode(id NodeID) string
}

// Factory builds a configured Network from its parsed spec (the reserved
// latmap parameter is stripped before the factory runs). Factories validate
// their own parameters so New surfaces per-topology errors directly.
type Factory func(spec Spec) (Network, error)

// Info describes a registered topology for listings and validation.
type Info struct {
	// Name is the primary registry key.
	Name string
	// Usage is the spec grammar, e.g. "torus[:k=<radix>,n=<dims>]".
	Usage string
	// Description is a one-line summary for -list style output.
	Description string
	// Aliases are additional keys resolving to the same factory.
	Aliases []string
}

type topoEntry struct {
	info    Info
	check   func(Spec) error
	factory Factory
}

var (
	topoMu      sync.RWMutex
	topoReg     = make(map[string]*topoEntry) // primary name and aliases -> entry
	topoPrimary []string                      // primary names, registration order
)

// Register adds a topology to the registry under info.Name and every alias.
// check statically validates a parsed spec's parameters (nil for none). It
// panics on a duplicate key or nil factory — registration happens in
// package init functions where a panic is a build-time bug.
func Register(info Info, check func(Spec) error, factory Factory) {
	if info.Name == "" {
		panic("topology: Register with empty name")
	}
	if factory == nil {
		panic(fmt.Sprintf("topology: Register(%q) with nil factory", info.Name))
	}
	topoMu.Lock()
	defer topoMu.Unlock()
	e := &topoEntry{info: info, check: check, factory: factory}
	for _, key := range append([]string{info.Name}, info.Aliases...) {
		if _, dup := topoReg[key]; dup {
			panic(fmt.Sprintf("topology: duplicate registration of topology %q", key))
		}
		topoReg[key] = e
	}
	topoPrimary = append(topoPrimary, info.Name)
}

// resolve parses a spec string, splits off the reserved latmap parameter,
// and finds the registry entry for the remaining spec.
func resolve(specStr string) (*topoEntry, Spec, string, error) {
	spec, err := ParseSpec(specStr)
	if err != nil {
		return nil, Spec{}, "", err
	}
	latmap := ""
	kept := spec.Params[:0]
	for _, p := range spec.Params {
		if p.Key == "latmap" {
			latmap = p.Value
			continue
		}
		kept = append(kept, p)
	}
	spec.Params = kept
	topoMu.RLock()
	e, ok := topoReg[spec.Name]
	topoMu.RUnlock()
	if !ok {
		return nil, Spec{}, "", fmt.Errorf("topology: unknown topology %q (registered: %v)", spec.Name, Names())
	}
	return e, spec, latmap, nil
}

// NewNetwork builds the network described by a spec string ("torus:k=8,n=2",
// "mesh:k=8,n=2", "hypercube:n=10", any of them with ",latmap=<file>").
func NewNetwork(specStr string) (Network, error) {
	e, spec, latmap, err := resolve(specStr)
	if err != nil {
		return nil, err
	}
	net, err := e.factory(spec)
	if err != nil {
		return nil, err
	}
	if latmap != "" {
		return LoadLatencyOverlay(net, latmap)
	}
	return net, nil
}

// Check statically validates a topology spec string — parseable, registered
// name, well-formed parameters — without building the network or touching
// the latmap file (an environmental input checked at construction).
func Check(specStr string) (Spec, Info, error) {
	e, spec, _, err := resolve(specStr)
	if err != nil {
		return Spec{}, Info{}, err
	}
	if e.check != nil {
		if err := e.check(spec); err != nil {
			return Spec{}, Info{}, err
		}
	}
	return spec, e.info, nil
}

// Lookup returns the Info for a registered name (primary or alias).
func Lookup(name string) (Info, bool) {
	topoMu.RLock()
	defer topoMu.RUnlock()
	e, ok := topoReg[name]
	if !ok {
		return Info{}, false
	}
	return e.info, true
}

// Names returns the primary registered topology names, sorted.
func Names() []string {
	topoMu.RLock()
	out := append([]string(nil), topoPrimary...)
	topoMu.RUnlock()
	sort.Strings(out)
	return out
}

// Topologies returns the Info of every registered topology, sorted by
// primary name.
func Topologies() []Info {
	topoMu.RLock()
	out := make([]Info, 0, len(topoPrimary))
	for _, name := range topoPrimary {
		out = append(out, topoReg[name].info)
	}
	topoMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// maxNodes bounds constructible networks so a typo'd spec cannot allocate
// the machine away (engines allocate per-node state eagerly).
const maxNodes = 1 << 24

// checkDims validates the shared (k, n) parameters of grid topologies.
func checkDims(k, n int) error {
	if k < 2 {
		return fmt.Errorf("topology: radix k must be >= 2, got %d", k)
	}
	if n < 1 {
		return fmt.Errorf("topology: dimension n must be >= 1, got %d", n)
	}
	nodes := 1
	for i := 0; i < n; i++ {
		if nodes > maxNodes/k {
			return fmt.Errorf("topology: %d-ary %d-grid exceeds the %d-node limit", k, n, maxNodes)
		}
		nodes *= k
	}
	return nil
}

func parseGridSpec(spec Spec) (k, n int, err error) {
	a := newSpecArgs(spec)
	k = a.Int("k", 8)
	n = a.Int("n", 2)
	if err := a.finish(); err != nil {
		return 0, 0, err
	}
	return k, n, checkDims(k, n)
}

func parseHypercubeSpec(spec Spec) (n int, err error) {
	a := newSpecArgs(spec)
	n = a.Int("n", 10)
	if err := a.finish(); err != nil {
		return 0, err
	}
	return n, checkDims(2, n)
}

func init() {
	Register(Info{
		Name:        "torus",
		Usage:       "torus[:k=<radix>,n=<dims>]",
		Description: "k-ary n-cube with wraparound links (the paper's networks); defaults k=8,n=2",
		Aliases:     []string{"k-ary-n-cube"},
	}, func(spec Spec) error {
		_, _, err := parseGridSpec(spec)
		return err
	}, func(spec Spec) (Network, error) {
		k, n, err := parseGridSpec(spec)
		if err != nil {
			return nil, err
		}
		return New(k, n), nil
	})

	Register(Info{
		Name:        "mesh",
		Usage:       "mesh[:k=<radix>,n=<dims>]",
		Description: "k-ary n-mesh: no wraparound links, so no dateline VC classes; defaults k=8,n=2",
	}, func(spec Spec) error {
		_, _, err := parseGridSpec(spec)
		return err
	}, func(spec Spec) (Network, error) {
		k, n, err := parseGridSpec(spec)
		if err != nil {
			return nil, err
		}
		return NewMesh(k, n), nil
	})

	Register(Info{
		Name:        "hypercube",
		Usage:       "hypercube[:n=<dims>]",
		Description: "binary n-cube (2-ary n-torus alias); defaults n=10",
		Aliases:     []string{"binary-n-cube"},
	}, func(spec Spec) error {
		_, err := parseHypercubeSpec(spec)
		return err
	}, func(spec Spec) (Network, error) {
		n, err := parseHypercubeSpec(spec)
		if err != nil {
			return nil, err
		}
		return New(2, n), nil
	})
}

// LatencyOverlay decorates a base network with a per-link latency map
// (non-uniform wires: long backplane hops, optical links, chiplet
// boundaries). Links absent from the map keep latency 0, i.e. the engine's
// configured default.
type LatencyOverlay struct {
	Network
	lat  map[ChannelID]int64
	file string
}

// NewLatencyOverlay wraps base with explicit per-link latencies. Every
// mapped channel must exist in base and carry a latency >= 1.
func NewLatencyOverlay(base Network, lat map[ChannelID]int64) (*LatencyOverlay, error) {
	for ch, l := range lat {
		if !base.Valid(ch.Src) || !base.HasLink(ch.Src, ch.Port.Dim(), ch.Port.Dir()) {
			return nil, fmt.Errorf("topology: latmap names nonexistent channel %v", ch)
		}
		if l < 1 {
			return nil, fmt.Errorf("topology: latmap channel %v: latency must be >= 1, got %d", ch, l)
		}
	}
	return &LatencyOverlay{Network: base, lat: lat}, nil
}

// LoadLatencyOverlay reads a latmap CSV (lines "src,port,latency"; '#'
// comments and blank lines ignored) and wraps base with it. Each line sets
// the latency of the unidirectional channel leaving node src through port.
func LoadLatencyOverlay(base Network, file string) (*LatencyOverlay, error) {
	f, err := os.Open(file)
	if err != nil {
		return nil, fmt.Errorf("topology: latmap: %w", err)
	}
	defer f.Close()
	lat := make(map[ChannelID]int64)
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("topology: latmap %s:%d: want src,port,latency", file, lineNo)
		}
		src, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
		port, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
		l, err3 := strconv.ParseInt(strings.TrimSpace(parts[2]), 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("topology: latmap %s:%d: want integer src,port,latency", file, lineNo)
		}
		if port < 0 || port >= base.Degree() {
			return nil, fmt.Errorf("topology: latmap %s:%d: port %d out of range [0,%d)", file, lineNo, port, base.Degree())
		}
		lat[ChannelID{Src: NodeID(src), Port: Port(port)}] = l
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("topology: latmap: %w", err)
	}
	ov, err := NewLatencyOverlay(base, lat)
	if err != nil {
		return nil, err
	}
	ov.file = file
	return ov, nil
}

// LinkLatency returns the mapped latency, or 0 (engine default) for
// unmapped links.
func (o *LatencyOverlay) LinkLatency(src NodeID, port Port) int64 {
	return o.lat[ChannelID{Src: src, Port: port}]
}

// Spec renders the base spec with the latmap parameter re-attached.
func (o *LatencyOverlay) Spec() string {
	if o.file == "" {
		return o.Network.Spec()
	}
	return o.Network.Spec() + ",latmap=" + o.file
}

// String summarises the base network plus the overlay size.
func (o *LatencyOverlay) String() string {
	return fmt.Sprintf("%s with %d-link latency overlay", o.Network.String(), len(o.lat))
}

// Compile-time conformance checks: every shipped topology satisfies Network.
var (
	_ Network = (*Torus)(nil)
	_ Network = (*Mesh)(nil)
	_ Network = (*LatencyOverlay)(nil)
)
