package topology

import (
	"fmt"
	"strings"
)

// Mesh is an immutable k-ary n-mesh descriptor: the k-ary n-cube grid
// without the wraparound links. Edge routers simply leave their outward
// ports unwired (HasLink reports false; Neighbor returns -1). Because no
// ring closes, there is no dateline: WrapsAround is constantly false, so
// routing algorithms built on the dateline virtual-channel discipline
// collapse to a single VC class, and direction-reversal detours (which rely
// on reaching a coordinate "the other way around") are never profitable.
// All methods are safe for concurrent use.
type Mesh struct {
	k int // radix: nodes per dimension
	n int // number of dimensions
	// pow[i] = k^i, cached for fast address arithmetic.
	pow []int
}

// NewMesh constructs a k-ary n-mesh. It panics on degenerate parameters
// (k < 2 or n < 1): those are programming errors, not runtime conditions.
func NewMesh(k, n int) *Mesh {
	if k < 2 {
		panic(fmt.Sprintf("topology: radix k must be >= 2, got %d", k))
	}
	if n < 1 {
		panic(fmt.Sprintf("topology: dimension n must be >= 1, got %d", n))
	}
	pow := make([]int, n+1)
	pow[0] = 1
	for i := 1; i <= n; i++ {
		pow[i] = pow[i-1] * k
	}
	return &Mesh{k: k, n: n, pow: pow}
}

// Kind implements Network.
func (m *Mesh) Kind() string { return "mesh" }

// Spec implements Network.
func (m *Mesh) Spec() string { return fmt.Sprintf("mesh:k=%d,n=%d", m.k, m.n) }

// K returns the radix (nodes per dimension).
func (m *Mesh) K() int { return m.k }

// N returns the number of dimensions.
func (m *Mesh) N() int { return m.n }

// Nodes returns the total node count k^n.
func (m *Mesh) Nodes() int { return m.pow[m.n] }

// Degree returns the number of network ports per router (2 per dimension;
// edge routers leave outward ports unwired).
func (m *Mesh) Degree() int { return 2 * m.n }

// Wraps implements Network: meshes have no wraparound links.
func (m *Mesh) Wraps() bool { return false }

// Coord returns the address digit of node id along dimension dim.
func (m *Mesh) Coord(id NodeID, dim int) int {
	return (int(id) / m.pow[dim]) % m.k
}

// Coords decomposes a node id into its full address {a0, ..., a(n-1)}.
func (m *Mesh) Coords(id NodeID) []int {
	c := make([]int, m.n)
	v := int(id)
	for i := 0; i < m.n; i++ {
		c[i] = v % m.k
		v /= m.k
	}
	return c
}

// FromCoords composes a node id from an address. Digits are reduced mod k
// so callers may pass unnormalised coordinates, matching the torus
// contract the shared plane/shape helpers rely on.
func (m *Mesh) FromCoords(c []int) NodeID {
	if len(c) != m.n {
		panic(fmt.Sprintf("topology: FromCoords got %d digits, want %d", len(c), m.n))
	}
	id := 0
	for i := m.n - 1; i >= 0; i-- {
		d := c[i] % m.k
		if d < 0 {
			d += m.k
		}
		id = id*m.k + d
	}
	return NodeID(id)
}

// Valid reports whether id is a legal node identifier for this mesh.
func (m *Mesh) Valid(id NodeID) bool {
	return id >= 0 && int(id) < m.Nodes()
}

// HasLink reports whether a channel leaves id along dim towards dir: false
// exactly at the mesh edges (coordinate 0 going Minus, k-1 going Plus).
func (m *Mesh) HasLink(id NodeID, dim int, dir Dir) bool {
	c := m.Coord(id, dim)
	if dir == Plus {
		return c < m.k-1
	}
	return c > 0
}

// Neighbor returns the node adjacent to id along dim in direction dir, or
// -1 at the mesh edge where no link exists.
func (m *Mesh) Neighbor(id NodeID, dim int, dir Dir) NodeID {
	c := m.Coord(id, dim)
	nc := c + int(dir)
	if nc < 0 || nc >= m.k {
		return -1
	}
	return NodeID(int(id) + (nc-c)*m.pow[dim])
}

// RingOffset returns the signed hop offset from coordinate a to b: with no
// wraparound there is exactly one way along the line, the plain difference.
func (m *Mesh) RingOffset(a, b int) int { return b - a }

// RingDist returns the hop count between two coordinates on the line.
func (m *Mesh) RingDist(a, b int) int {
	if b < a {
		return a - b
	}
	return b - a
}

// Distance returns the minimal hop count between two nodes (sum of
// per-dimension line distances — the Manhattan distance).
func (m *Mesh) Distance(a, b NodeID) int {
	d := 0
	for i := 0; i < m.n; i++ {
		d += m.RingDist(m.Coord(a, i), m.Coord(b, i))
	}
	return d
}

// BothMinimal implements Network: a line has a unique minimal direction.
func (m *Mesh) BothMinimal(src, dst NodeID, dim int) bool { return false }

// WrapsAround implements Network: no hop crosses a dateline on a mesh.
func (m *Mesh) WrapsAround(c int, dir Dir) bool { return false }

// LinkLatency implements Network: base meshes defer every link to the
// engine's configured default (overlay with a latmap for non-uniform wires).
func (m *Mesh) LinkLatency(src NodeID, port Port) int64 { return 0 }

// String renders, e.g., "8-ary 2-mesh (64 nodes)".
func (m *Mesh) String() string {
	return fmt.Sprintf("%d-ary %d-mesh (%d nodes)", m.k, m.n, m.Nodes())
}

// FormatNode renders a node address as "(a0,a1,...)" for logs and traces.
func (m *Mesh) FormatNode(id NodeID) string {
	c := m.Coords(id)
	parts := make([]string, len(c))
	for i, v := range c {
		parts[i] = fmt.Sprint(v)
	}
	return "(" + strings.Join(parts, ",") + ")"
}
