package topology

import (
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadParams(t *testing.T) {
	for _, tc := range []struct{ k, n int }{{1, 2}, {0, 2}, {8, 0}, {4, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", tc.k, tc.n)
				}
			}()
			New(tc.k, tc.n)
		}()
	}
}

func TestNodesAndDegree(t *testing.T) {
	for _, tc := range []struct{ k, n, nodes, deg int }{
		{8, 2, 64, 4},
		{8, 3, 512, 6},
		{16, 2, 256, 4},
		{4, 4, 256, 8},
		{2, 5, 32, 10},
	} {
		tor := New(tc.k, tc.n)
		if tor.Nodes() != tc.nodes {
			t.Errorf("%v: Nodes=%d want %d", tor, tor.Nodes(), tc.nodes)
		}
		if tor.Degree() != tc.deg {
			t.Errorf("%v: Degree=%d want %d", tor, tor.Degree(), tc.deg)
		}
	}
}

func TestCoordsRoundTrip(t *testing.T) {
	tor := New(5, 3)
	for id := 0; id < tor.Nodes(); id++ {
		c := tor.Coords(NodeID(id))
		if got := tor.FromCoords(c); got != NodeID(id) {
			t.Fatalf("roundtrip %d -> %v -> %d", id, c, got)
		}
		for d := 0; d < 3; d++ {
			if tor.Coord(NodeID(id), d) != c[d] {
				t.Fatalf("Coord(%d,%d) = %d, Coords gave %d", id, d, tor.Coord(NodeID(id), d), c[d])
			}
		}
	}
}

func TestFromCoordsNormalises(t *testing.T) {
	tor := New(8, 2)
	if got, want := tor.FromCoords([]int{-1, 9}), tor.FromCoords([]int{7, 1}); got != want {
		t.Fatalf("normalisation: got %d want %d", got, want)
	}
}

func TestNeighborWraps(t *testing.T) {
	tor := New(8, 2)
	n0 := tor.FromCoords([]int{7, 3})
	if got := tor.Neighbor(n0, 0, Plus); tor.Coord(got, 0) != 0 || tor.Coord(got, 1) != 3 {
		t.Fatalf("wrap+ broken: got %v", tor.Coords(got))
	}
	n1 := tor.FromCoords([]int{0, 3})
	if got := tor.Neighbor(n1, 0, Minus); tor.Coord(got, 0) != 7 {
		t.Fatalf("wrap- broken: got %v", tor.Coords(got))
	}
}

func TestNeighborSymmetry(t *testing.T) {
	tor := New(6, 3)
	if err := quick.Check(func(raw uint32, dimRaw uint8, plus bool) bool {
		id := NodeID(int(raw) % tor.Nodes())
		dim := int(dimRaw) % tor.N()
		dir := Plus
		if !plus {
			dir = Minus
		}
		nb := tor.Neighbor(id, dim, dir)
		return tor.Neighbor(nb, dim, dir.Opposite()) == id
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestRingOffsetProperties(t *testing.T) {
	for _, k := range []int{2, 3, 4, 7, 8, 16} {
		tor := New(k, 1)
		for a := 0; a < k; a++ {
			for b := 0; b < k; b++ {
				o := tor.RingOffset(a, b)
				if (a+o%k+k)%k != b%k && (a+o+k*10)%k != b {
					t.Fatalf("k=%d offset(%d,%d)=%d does not reach", k, a, b, o)
				}
				if d := tor.RingDist(a, b); d > k/2 {
					t.Fatalf("k=%d dist(%d,%d)=%d exceeds k/2", k, a, b, d)
				}
				if tor.RingDist(a, b) != tor.RingDist(b, a) {
					t.Fatalf("ring distance not symmetric at k=%d (%d,%d)", k, a, b)
				}
			}
		}
	}
}

func TestDistanceMetric(t *testing.T) {
	tor := New(8, 3)
	if err := quick.Check(func(ra, rb uint32) bool {
		a := NodeID(int(ra) % tor.Nodes())
		b := NodeID(int(rb) % tor.Nodes())
		d := tor.Distance(a, b)
		if d != tor.Distance(b, a) {
			return false
		}
		if (d == 0) != (a == b) {
			return false
		}
		// One hop changes distance by exactly 1 in some direction.
		if a != b {
			found := false
			for dim := 0; dim < tor.N(); dim++ {
				for _, dir := range []Dir{Plus, Minus} {
					if tor.Distance(tor.Neighbor(a, dim, dir), b) == d-1 {
						found = true
					}
				}
			}
			if !found {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceMax(t *testing.T) {
	tor := New(8, 2)
	// Diameter of 8-ary 2-cube is 4+4 = 8.
	max := 0
	for a := 0; a < tor.Nodes(); a++ {
		d := tor.Distance(0, NodeID(a))
		if d > max {
			max = d
		}
	}
	if max != 8 {
		t.Fatalf("diameter = %d, want 8", max)
	}
}

func TestMinimalDirsConsistency(t *testing.T) {
	tor := New(8, 2)
	src := tor.FromCoords([]int{1, 1})
	dst := tor.FromCoords([]int{3, 7})
	dirs := tor.MinimalDirs(src, dst)
	if dirs[0] != Plus {
		t.Errorf("dim0 dir = %v, want +", dirs[0])
	}
	if dirs[1] != Minus { // 1 -> 7 is shorter via wraparound (-2) than +6
		t.Errorf("dim1 dir = %v, want -", dirs[1])
	}
	if got := tor.MinimalDirs(src, src); got[0] != 0 || got[1] != 0 {
		t.Errorf("self dirs = %v, want zeros", got)
	}
}

func TestBothMinimal(t *testing.T) {
	tor := New(8, 2)
	a := tor.FromCoords([]int{0, 0})
	b := tor.FromCoords([]int{4, 2})
	if !tor.BothMinimal(a, b, 0) {
		t.Error("offset 4 on k=8 ring should be both-minimal")
	}
	if tor.BothMinimal(a, b, 1) {
		t.Error("offset 2 on k=8 ring should not be both-minimal")
	}
}

func TestEcubePathProperties(t *testing.T) {
	tor := New(8, 3)
	if err := quick.Check(func(ra, rb uint32) bool {
		a := NodeID(int(ra) % tor.Nodes())
		b := NodeID(int(rb) % tor.Nodes())
		p := tor.EcubePath(a, b)
		if p[0] != a || p[len(p)-1] != b {
			return false
		}
		if len(p)-1 != tor.Distance(a, b) {
			return false // e-cube is minimal
		}
		// consecutive nodes adjacent; dimensions visited in increasing order
		lastDim := -1
		for i := 1; i < len(p); i++ {
			if tor.Distance(p[i-1], p[i]) != 1 {
				return false
			}
			dim := -1
			for d := 0; d < tor.N(); d++ {
				if tor.Coord(p[i-1], d) != tor.Coord(p[i], d) {
					dim = d
				}
			}
			if dim < lastDim {
				return false
			}
			lastDim = dim
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestRingPathForcedDirection(t *testing.T) {
	tor := New(8, 2)
	src := tor.FromCoords([]int{1, 0})
	// Forced Minus from 1 to destination coordinate 3: must go the long way
	// (1 -> 0 -> 7 -> ... -> 3), 6 hops.
	p := tor.RingPath(src, 0, Minus, 3)
	if len(p)-1 != 6 {
		t.Fatalf("forced ring path length = %d, want 6", len(p)-1)
	}
	if tor.Coord(p[len(p)-1], 0) != 3 {
		t.Fatalf("forced ring path ends at coord %d, want 3", tor.Coord(p[len(p)-1], 0))
	}
}

func TestPortMapping(t *testing.T) {
	for dim := 0; dim < 4; dim++ {
		for _, dir := range []Dir{Plus, Minus} {
			p := PortFor(dim, dir)
			if p.Dim() != dim || p.Dir() != dir {
				t.Fatalf("port roundtrip failed for (%d,%v)", dim, dir)
			}
			if p.Opposite().Dim() != dim || p.Opposite().Dir() != dir.Opposite() {
				t.Fatalf("opposite port wrong for (%d,%v)", dim, dir)
			}
		}
	}
}

func TestChannelsEnumeration(t *testing.T) {
	tor := New(4, 2)
	chs := tor.Channels()
	if len(chs) != tor.Nodes()*tor.Degree() {
		t.Fatalf("channel count = %d, want %d", len(chs), tor.Nodes()*tor.Degree())
	}
	seen := make(map[ChannelID]bool)
	for _, c := range chs {
		if seen[c] {
			t.Fatalf("duplicate channel %v", c)
		}
		seen[c] = true
		// Channel destination must be a real neighbour.
		if tor.Distance(c.Src, c.Dst(tor)) != 1 {
			t.Fatalf("channel %v connects non-adjacent nodes", c)
		}
	}
}

func TestWrapsAround(t *testing.T) {
	tor := New(8, 1)
	if !tor.WrapsAround(7, Plus) || !tor.WrapsAround(0, Minus) {
		t.Error("wrap edges not detected")
	}
	if tor.WrapsAround(3, Plus) || tor.WrapsAround(3, Minus) {
		t.Error("interior hop misreported as wrap")
	}
}

func TestPlane(t *testing.T) {
	tor := New(4, 3)
	base := tor.FromCoords([]int{1, 2, 3})
	pl := tor.PlaneThrough(base, 0, 1)
	nodes := pl.Nodes()
	if len(nodes) != 16 {
		t.Fatalf("plane size = %d, want 16", len(nodes))
	}
	for _, id := range nodes {
		if !pl.Contains(id) {
			t.Fatalf("plane does not contain its own node %d", id)
		}
		if tor.Coord(id, 2) != 3 {
			t.Fatalf("frozen coordinate violated at node %v", tor.Coords(id))
		}
	}
	if !pl.Contains(base) {
		t.Error("plane must contain its base")
	}
	out := tor.FromCoords([]int{1, 2, 0})
	if pl.Contains(out) {
		t.Error("node with different frozen coord reported in plane")
	}
	got := pl.Node(3, 1)
	if tor.Coord(got, 0) != 3 || tor.Coord(got, 1) != 1 || tor.Coord(got, 2) != 3 {
		t.Fatalf("plane Node(3,1) = %v", tor.Coords(got))
	}
	nb := pl.Neighbors4(base)
	for _, x := range nb {
		if tor.Distance(base, x) != 1 || !pl.Contains(x) {
			t.Fatalf("bad in-plane neighbour %v", tor.Coords(x))
		}
	}
}

func TestStringFormats(t *testing.T) {
	tor := New(8, 2)
	if tor.String() != "8-ary 2-cube (64 nodes)" {
		t.Errorf("String() = %q", tor.String())
	}
	if got := tor.FormatNode(tor.FromCoords([]int{3, 5})); got != "(3,5)" {
		t.Errorf("FormatNode = %q", got)
	}
	if PortFor(1, Minus).String() != "d1-" {
		t.Errorf("port string = %q", PortFor(1, Minus).String())
	}
}
