// Package message defines the unit of communication in the simulator: fixed
// length wormhole messages, their flits, and the routing header that the
// Software-Based messaging layer rewrites when a message is absorbed at an
// intermediate node.
//
// Per the paper's assumptions (§5.1): message length is fixed (M flits), a
// message is generated at a node by a Poisson process, and when a message
// encounters a faulty component it is removed from the network, its header
// modified in software, and the message re-injected with priority at the
// absorbing node.
//
// Messages live in a Pool (see pool.go): an index-addressed arena keyed by
// compact Ref handles, so the engine's hot path carries 8-byte flits instead
// of pointers and delivered messages are recycled instead of collected. The
// per-dimension header state is held in fixed-size arrays (MaxDims), so
// constructing a message allocates nothing beyond the Message itself — and
// with the arena, not even that.
package message

import (
	"fmt"

	"repro/internal/topology"
)

// MaxDims is the largest network dimensionality a message header can carry.
// The per-dimension rerouting state (DirOverride/Reversed/Crossed) is stored
// in fixed-size arrays of this length so message construction performs no
// per-dimension allocations; 16 dimensions covers a 65536-node hypercube.
const MaxDims = 16

// Mode selects the base routing discipline of a message, mirroring the
// paper's routing_type variable.
type Mode uint8

const (
	// Deterministic routes dimension-order (e-cube) paths.
	Deterministic Mode = iota
	// Adaptive routes Duato-protocol fully adaptive paths until the first
	// fault is encountered, then falls back to Deterministic permanently
	// ("From this point, faulted messages are always routed using
	// detRouting2D").
	Adaptive
)

func (m Mode) String() string {
	if m == Deterministic {
		return "deterministic"
	}
	return "adaptive"
}

// FlitType distinguishes the pipeline positions of a worm.
type FlitType uint8

const (
	// HeadFlit carries the header and reserves channels.
	HeadFlit FlitType = iota
	// BodyFlit follows the head through reserved channels.
	BodyFlit
	// TailFlit releases channels as it passes.
	TailFlit
)

// tailBit marks the tail flit in Flit's packed seq word, so IsTail needs no
// pool lookup.
const tailBit = 1 << 31

// Flit is one flow-control digit of a message: an 8-byte value carrying the
// owning message's pool Ref and the flit's sequence number (tail flag packed
// into the top bit). Flits exist only inside router buffers; Seq runs
// 0 (head) .. Len-1 (tail). Single-flit messages have a flit that is
// simultaneously head and tail; Type() reports HeadFlit for it and callers
// check IsTail separately. Because a Flit holds no pointer, buffered flits
// are invisible to the garbage collector.
type Flit struct {
	ref Ref
	seq uint32
}

// MakeFlit materialises flit seq of a worm of msgLen flits registered under
// ref.
func MakeFlit(ref Ref, seq, msgLen int) Flit {
	s := uint32(seq)
	if seq == msgLen-1 {
		s |= tailBit
	}
	return Flit{ref: ref, seq: s}
}

// Ref returns the pool handle of the owning message.
func (f Flit) Ref() Ref { return f.ref }

// Seq returns the flit's position in the worm (0 = head).
func (f Flit) Seq() int { return int(f.seq &^ tailBit) }

// Type classifies the flit by position.
func (f Flit) Type() FlitType {
	switch {
	case f.seq&^tailBit == 0:
		return HeadFlit
	case f.seq&tailBit != 0:
		return TailFlit
	default:
		return BodyFlit
	}
}

// IsHead reports whether this is the header flit.
func (f Flit) IsHead() bool { return f.seq&^tailBit == 0 }

// IsTail reports whether this is the last flit of the worm.
func (f Flit) IsTail() bool { return f.seq&tailBit != 0 }

// Header is the software-rewritable routing state carried by the head flit.
// Fields other than Dst are manipulated exclusively by the Software-Based
// messaging layer (internal/routing) when the message is absorbed. The
// per-dimension tables are fixed-size arrays (dimensions >= the network's N
// are simply unused) so a header never allocates.
type Header struct {
	// Dst is the final destination.
	Dst topology.NodeID
	// Via is a stack of intermediate destinations (last element on top).
	// The message routes to the top of the stack first; reaching it pops.
	// The backing store is retained across pool recycles, so a steady-state
	// workload stops allocating once the worst-case chain depth is reached.
	Via []topology.NodeID
	// Mode is the current routing discipline.
	Mode Mode
	// Faulted marks a message that has been absorbed at least once; such
	// messages route deterministically forever after.
	Faulted bool
	// DirOverride forces a (possibly non-minimal) ring direction per
	// dimension; 0 means route minimally. Set by rerouting table T1
	// (reverse on first fault in a dimension).
	DirOverride [MaxDims]topology.Dir
	// Reversed records dimensions in which T1 has already been applied, so
	// a second fault in the same dimension escalates to the orthogonal
	// detour (table T2).
	Reversed [MaxDims]bool
	// Crossed records, per dimension, whether the worm has crossed the
	// ring's wraparound edge since (re-)injection; it selects the dateline
	// virtual-channel class. Reset on re-injection (a re-injected message
	// is a fresh worm).
	Crossed [MaxDims]bool
	// Detoured marks headers that have been given their load-balancing
	// intermediate destination (set once by two-phase algorithms such as
	// valiant); it survives via pops and re-injection so the detour is
	// never re-installed.
	Detoured bool
}

// StopReason records why a worm is being ejected at its current node; it is
// transient engine state, set when the routing decision is taken and
// consumed when the tail flit reaches the local PE or messaging layer.
type StopReason uint8

const (
	// StopNone: not ejecting.
	StopNone StopReason = iota
	// StopDeliver: final destination reached.
	StopDeliver
	// StopVia: intermediate destination reached; pop and re-inject.
	StopVia
	// StopFault: outgoing channel leads to a fault; replan and re-inject.
	StopFault
	// StopDrop: the planner found no route (disconnecting fault pattern);
	// discard on ejection.
	StopDrop
)

// Message is a fixed-length wormhole message plus bookkeeping for the
// statistics the paper reports (latency from generation to last-flit
// ejection; absorption counts for Fig. 7).
type Message struct {
	ID  uint64
	Src topology.NodeID
	Len int // flits
	Header

	// CreatedAt is the cycle the message was generated at the source PE
	// (latency is measured from here, source queueing included).
	CreatedAt int64
	// Absorptions counts how many times the message was removed from the
	// network due to faults; each absorption also increments the network
	// wide "messages queued" counter of Fig. 7.
	Absorptions int
	// DeliveredAt is the cycle the tail flit reached the destination PE;
	// -1 while in flight.
	DeliveredAt int64

	// refp1 is the message's Pool handle plus one; 0 means the message is
	// not registered in a pool. The +1 shift keeps the zero Message safely
	// unregistered. (Declared before the byte-wide tail fields so the
	// trailing scalars pack into one word: 152 -> 144 bytes per arena
	// slot.)
	refp1 int32
	// Pending is the engine's transient ejection reason for the worm.
	Pending StopReason
	// owned marks messages whose storage belongs to a Pool's arena and is
	// recycled on Free; adopted foreign messages stay false and are simply
	// unregistered.
	owned bool
}

// New constructs a heap-allocated message of length flits from src to dst in
// the given mode for an n-dimensional network. Engine-driven runs allocate
// through a Pool instead (see Pool.New / NewIn); this constructor remains
// for tests, analysis tools and callers that hand messages to
// Network.Enqueue, which registers them in the engine's pool via Adopt.
func New(id uint64, src, dst topology.NodeID, length, n int, mode Mode, createdAt int64) *Message {
	if length < 1 {
		panic(fmt.Sprintf("message: length must be >= 1, got %d", length))
	}
	if n > MaxDims {
		panic(fmt.Sprintf("message: %d dimensions exceed MaxDims=%d", n, MaxDims))
	}
	return &Message{
		ID:  id,
		Src: src,
		Len: length,
		Header: Header{
			Dst:  dst,
			Mode: mode,
		},
		CreatedAt:   createdAt,
		DeliveredAt: -1,
	}
}

// Ref returns the message's pool handle; ok is false when the message is
// not registered in a Pool.
func (m *Message) Ref() (Ref, bool) {
	if m.refp1 == 0 {
		return NilRef, false
	}
	return Ref(m.refp1 - 1), true
}

// Target returns the node the message is currently routing towards: the top
// intermediate destination if any, else the final destination.
func (m *Message) Target() topology.NodeID {
	if n := len(m.Via); n > 0 {
		return m.Via[n-1]
	}
	return m.Dst
}

// AtFinal reports whether node is the message's final destination.
func (m *Message) AtFinal(node topology.NodeID) bool { return node == m.Dst }

// PushVia adds an intermediate destination on top of the stack.
func (m *Message) PushVia(v topology.NodeID) { m.Via = append(m.Via, v) }

// PopVia removes the top intermediate destination. It panics if the stack is
// empty — popping without a via is a routing-layer bug.
func (m *Message) PopVia() {
	if len(m.Via) == 0 {
		panic("message: PopVia on empty via stack")
	}
	m.Via = m.Via[:len(m.Via)-1]
}

// PopViasAt pops every via entry equal to node (the message may have been
// handed a chain whose corner it reached).
func (m *Message) PopViasAt(node topology.NodeID) {
	for len(m.Via) > 0 && m.Via[len(m.Via)-1] == node {
		m.Via = m.Via[:len(m.Via)-1]
	}
}

// ResetForReinjection prepares the header for re-injection after absorption:
// the worm re-enters the network fresh, so dateline-crossing state clears.
// Direction overrides and reversal history persist — they are the rerouting
// decision.
func (m *Message) ResetForReinjection() {
	m.Crossed = [MaxDims]bool{}
}

// ResetForRequeue rewinds the header to its as-generated state for a full
// restart from the source, used when a dynamic fault transition purges the
// worm from the network. Unlike ResetForReinjection, every piece of
// accumulated rerouting state clears — the fault pattern that produced it
// no longer exists — and the base routing mode is restored. Statistics
// fields (ID, CreatedAt, Absorptions) persist: the retry is the same
// message, and its latency is measured from original generation.
func (m *Message) ResetForRequeue(mode Mode) {
	m.Via = m.Via[:0]
	m.Mode = mode
	m.Faulted = false
	m.DirOverride = [MaxDims]topology.Dir{}
	m.Reversed = [MaxDims]bool{}
	m.Crossed = [MaxDims]bool{}
	m.Detoured = false
	m.Pending = StopNone
}

// Flit materialises flit seq of the worm. The message must be registered in
// a Pool (flits carry the pool Ref, not a pointer).
func (m *Message) Flit(seq int) Flit {
	if seq < 0 || seq >= m.Len {
		panic(fmt.Sprintf("message: flit seq %d out of range [0,%d)", seq, m.Len))
	}
	if m.refp1 == 0 {
		panic("message: Flit on a message not registered in a Pool")
	}
	return MakeFlit(Ref(m.refp1-1), seq, m.Len)
}

func (m *Message) String() string {
	return fmt.Sprintf("msg#%d %d->%d len=%d mode=%v via=%v", m.ID, m.Src, m.Dst, m.Len, m.Mode, m.Via)
}
