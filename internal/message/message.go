// Package message defines the unit of communication in the simulator: fixed
// length wormhole messages, their flits, and the routing header that the
// Software-Based messaging layer rewrites when a message is absorbed at an
// intermediate node.
//
// Per the paper's assumptions (§5.1): message length is fixed (M flits), a
// message is generated at a node by a Poisson process, and when a message
// encounters a faulty component it is removed from the network, its header
// modified in software, and the message re-injected with priority at the
// absorbing node.
package message

import (
	"fmt"

	"repro/internal/topology"
)

// Mode selects the base routing discipline of a message, mirroring the
// paper's routing_type variable.
type Mode uint8

const (
	// Deterministic routes dimension-order (e-cube) paths.
	Deterministic Mode = iota
	// Adaptive routes Duato-protocol fully adaptive paths until the first
	// fault is encountered, then falls back to Deterministic permanently
	// ("From this point, faulted messages are always routed using
	// detRouting2D").
	Adaptive
)

func (m Mode) String() string {
	if m == Deterministic {
		return "deterministic"
	}
	return "adaptive"
}

// FlitType distinguishes the pipeline positions of a worm.
type FlitType uint8

const (
	// HeadFlit carries the header and reserves channels.
	HeadFlit FlitType = iota
	// BodyFlit follows the head through reserved channels.
	BodyFlit
	// TailFlit releases channels as it passes.
	TailFlit
)

// Flit is one flow-control digit of a message. Flits exist only inside
// router buffers; Seq runs 0 (head) .. Msg.Len-1 (tail). Single-flit
// messages have a flit that is simultaneously head and tail; Type() reports
// HeadFlit for it and callers check IsTail separately.
type Flit struct {
	Msg *Message
	Seq int
}

// Type classifies the flit by position.
func (f Flit) Type() FlitType {
	switch {
	case f.Seq == 0:
		return HeadFlit
	case f.Seq == f.Msg.Len-1:
		return TailFlit
	default:
		return BodyFlit
	}
}

// IsHead reports whether this is the header flit.
func (f Flit) IsHead() bool { return f.Seq == 0 }

// IsTail reports whether this is the last flit of the worm.
func (f Flit) IsTail() bool { return f.Seq == f.Msg.Len-1 }

// Header is the software-rewritable routing state carried by the head flit.
// Fields other than Dst are manipulated exclusively by the Software-Based
// messaging layer (internal/routing) when the message is absorbed.
type Header struct {
	// Dst is the final destination.
	Dst topology.NodeID
	// Via is a stack of intermediate destinations (last element on top).
	// The message routes to the top of the stack first; reaching it pops.
	Via []topology.NodeID
	// Mode is the current routing discipline.
	Mode Mode
	// Faulted marks a message that has been absorbed at least once; such
	// messages route deterministically forever after.
	Faulted bool
	// DirOverride forces a (possibly non-minimal) ring direction per
	// dimension; 0 means route minimally. Set by rerouting table T1
	// (reverse on first fault in a dimension).
	DirOverride []topology.Dir
	// Reversed records dimensions in which T1 has already been applied, so
	// a second fault in the same dimension escalates to the orthogonal
	// detour (table T2).
	Reversed []bool
	// Crossed records, per dimension, whether the worm has crossed the
	// ring's wraparound edge since (re-)injection; it selects the dateline
	// virtual-channel class. Reset on re-injection (a re-injected message
	// is a fresh worm).
	Crossed []bool
	// Detoured marks headers that have been given their load-balancing
	// intermediate destination (set once by two-phase algorithms such as
	// valiant); it survives via pops and re-injection so the detour is
	// never re-installed.
	Detoured bool
}

// StopReason records why a worm is being ejected at its current node; it is
// transient engine state, set when the routing decision is taken and
// consumed when the tail flit reaches the local PE or messaging layer.
type StopReason uint8

const (
	// StopNone: not ejecting.
	StopNone StopReason = iota
	// StopDeliver: final destination reached.
	StopDeliver
	// StopVia: intermediate destination reached; pop and re-inject.
	StopVia
	// StopFault: outgoing channel leads to a fault; replan and re-inject.
	StopFault
	// StopDrop: the planner found no route (disconnecting fault pattern);
	// discard on ejection.
	StopDrop
)

// Message is a fixed-length wormhole message plus bookkeeping for the
// statistics the paper reports (latency from generation to last-flit
// ejection; absorption counts for Fig. 7).
type Message struct {
	ID  uint64
	Src topology.NodeID
	Len int // flits
	Header

	// CreatedAt is the cycle the message was generated at the source PE
	// (latency is measured from here, source queueing included).
	CreatedAt int64
	// Absorptions counts how many times the message was removed from the
	// network due to faults; each absorption also increments the network
	// wide "messages queued" counter of Fig. 7.
	Absorptions int
	// DeliveredAt is the cycle the tail flit reached the destination PE;
	// -1 while in flight.
	DeliveredAt int64
	// Pending is the engine's transient ejection reason for the worm.
	Pending StopReason
}

// New constructs a message of length flits from src to dst in the given
// mode for an n-dimensional torus.
func New(id uint64, src, dst topology.NodeID, length, n int, mode Mode, createdAt int64) *Message {
	if length < 1 {
		panic(fmt.Sprintf("message: length must be >= 1, got %d", length))
	}
	return &Message{
		ID:  id,
		Src: src,
		Len: length,
		Header: Header{
			Dst:         dst,
			Mode:        mode,
			DirOverride: make([]topology.Dir, n),
			Reversed:    make([]bool, n),
			Crossed:     make([]bool, n),
		},
		CreatedAt:   createdAt,
		DeliveredAt: -1,
	}
}

// Target returns the node the message is currently routing towards: the top
// intermediate destination if any, else the final destination.
func (m *Message) Target() topology.NodeID {
	if n := len(m.Via); n > 0 {
		return m.Via[n-1]
	}
	return m.Dst
}

// AtFinal reports whether node is the message's final destination.
func (m *Message) AtFinal(node topology.NodeID) bool { return node == m.Dst }

// PushVia adds an intermediate destination on top of the stack.
func (m *Message) PushVia(v topology.NodeID) { m.Via = append(m.Via, v) }

// PopVia removes the top intermediate destination. It panics if the stack is
// empty — popping without a via is a routing-layer bug.
func (m *Message) PopVia() {
	if len(m.Via) == 0 {
		panic("message: PopVia on empty via stack")
	}
	m.Via = m.Via[:len(m.Via)-1]
}

// PopViasAt pops every via entry equal to node (the message may have been
// handed a chain whose corner it reached).
func (m *Message) PopViasAt(node topology.NodeID) {
	for len(m.Via) > 0 && m.Via[len(m.Via)-1] == node {
		m.Via = m.Via[:len(m.Via)-1]
	}
}

// ResetForReinjection prepares the header for re-injection after absorption:
// the worm re-enters the network fresh, so dateline-crossing state clears.
// Direction overrides and reversal history persist — they are the rerouting
// decision.
func (m *Message) ResetForReinjection() {
	for i := range m.Crossed {
		m.Crossed[i] = false
	}
}

// Flit materialises flit seq of the worm.
func (m *Message) Flit(seq int) Flit {
	if seq < 0 || seq >= m.Len {
		panic(fmt.Sprintf("message: flit seq %d out of range [0,%d)", seq, m.Len))
	}
	return Flit{Msg: m, Seq: seq}
}

func (m *Message) String() string {
	return fmt.Sprintf("msg#%d %d->%d len=%d mode=%v via=%v", m.ID, m.Src, m.Dst, m.Len, m.Mode, m.Via)
}
