package message

import "testing"

func TestPoolRecyclesStorageAndSlots(t *testing.T) {
	p := NewPool(2, false)
	m1 := p.New(1, 0, 5, 4, Deterministic, 10)
	ref1, ok := m1.Ref()
	if !ok {
		t.Fatal("pool-allocated message reports no Ref")
	}
	if p.At(ref1) != m1 {
		t.Fatal("At does not resolve to the allocated message")
	}
	if p.Live() != 1 {
		t.Fatalf("live = %d, want 1", p.Live())
	}
	p.Free(ref1)
	if p.Live() != 0 {
		t.Fatalf("live after free = %d, want 0", p.Live())
	}
	if _, ok := m1.Ref(); ok {
		t.Fatal("freed message still reports a Ref")
	}

	// Arena mode recycles both the slot and the storage, LIFO.
	m2 := p.New(2, 3, 7, 4, Adaptive, 20)
	if m2 != m1 {
		t.Fatal("arena did not recycle the freed message storage")
	}
	ref2, _ := m2.Ref()
	if ref2 != ref1 {
		t.Fatalf("slot not recycled: ref %d, want %d", ref2, ref1)
	}
	// The recycled message must be fully reset — no state from the
	// previous occupant.
	if m2.ID != 2 || m2.Src != 3 || m2.Dst != 7 || m2.Mode != Adaptive || m2.CreatedAt != 20 {
		t.Fatalf("recycled message not reinitialised: %+v", m2)
	}
	if m2.DeliveredAt != -1 || m2.Absorptions != 0 || m2.Pending != StopNone || len(m2.Via) != 0 {
		t.Fatalf("recycled message carries stale state: %+v", m2)
	}
}

func TestPoolNoArenaFreshStorage(t *testing.T) {
	p := NewPool(2, true)
	m1 := p.New(1, 0, 5, 4, Deterministic, 0)
	ref1, _ := m1.Ref()
	p.Free(ref1)
	m2 := p.New(2, 0, 5, 4, Deterministic, 0)
	if m2 == m1 {
		t.Fatal("noArena pool recycled storage")
	}
	if ref2, _ := m2.Ref(); ref2 != ref1 {
		t.Fatalf("noArena pool must still recycle slots: ref %d, want %d", ref2, ref1)
	}
	if p.Chunks() != 0 {
		t.Fatalf("noArena pool allocated %d arena chunks", p.Chunks())
	}
}

func TestPoolViaBackingRetained(t *testing.T) {
	p := NewPool(2, false)
	m := p.New(1, 0, 5, 4, Deterministic, 0)
	m.PushVia(3)
	m.PushVia(7)
	grown := cap(m.Via)
	if grown < 2 {
		t.Fatalf("via cap = %d after two pushes", grown)
	}
	ref, _ := m.Ref()
	p.Free(ref)
	m2 := p.New(2, 0, 5, 4, Deterministic, 0)
	if m2 != m {
		t.Fatal("expected storage recycle")
	}
	if len(m2.Via) != 0 {
		t.Fatalf("recycled via stack not empty: %v", m2.Via)
	}
	if cap(m2.Via) != grown {
		t.Fatalf("via backing not retained: cap %d, want %d", cap(m2.Via), grown)
	}
}

func TestPoolChunkExhaustionGrows(t *testing.T) {
	p := NewPool(2, false)
	live := make([]*Message, 0, chunkSize+1)
	for i := 0; i <= chunkSize; i++ {
		live = append(live, p.New(uint64(i), 0, 5, 4, Deterministic, 0))
	}
	if p.Chunks() != 2 {
		t.Fatalf("chunks = %d after %d live messages, want 2", p.Chunks(), chunkSize+1)
	}
	if p.Live() != chunkSize+1 || p.Cap() != chunkSize+1 {
		t.Fatalf("live/cap = %d/%d, want %d/%d", p.Live(), p.Cap(), chunkSize+1, chunkSize+1)
	}
	// Distinct storage for every live message.
	seen := make(map[*Message]bool, len(live))
	for _, m := range live {
		if seen[m] {
			t.Fatal("pool handed out the same storage twice while live")
		}
		seen[m] = true
	}
	// Free everything; reallocating the same count must not grow further.
	for _, m := range live {
		ref, _ := m.Ref()
		p.Free(ref)
	}
	for i := 0; i <= chunkSize; i++ {
		p.New(uint64(i), 0, 5, 4, Deterministic, 0)
	}
	if p.Chunks() != 2 || p.Cap() != chunkSize+1 {
		t.Fatalf("pool grew on reuse: chunks=%d cap=%d", p.Chunks(), p.Cap())
	}
}

func TestPoolAdoptForeignMessage(t *testing.T) {
	p := NewPool(2, false)
	m := New(1, 0, 5, 4, 2, Deterministic, 0)
	ref := p.Adopt(m)
	if p.At(ref) != m {
		t.Fatal("adopted message does not resolve")
	}
	if again := p.Adopt(m); again != ref {
		t.Fatalf("re-adopt returned %d, want existing %d", again, ref)
	}
	if p.Live() != 1 {
		t.Fatalf("live = %d, want 1", p.Live())
	}
	// Flits of an adopted message carry the pool ref.
	if f := m.Flit(3); f.Ref() != ref || !f.IsTail() {
		t.Fatalf("flit = %+v, want ref %d tail", f, ref)
	}
	p.Free(ref)
	// Foreign storage is unregistered, never recycled: the caller's
	// pointer stays inspectable and the next allocation is fresh.
	if m.DeliveredAt != -1 {
		t.Fatal("freed foreign message was clobbered")
	}
	if m2 := p.New(2, 0, 5, 4, Deterministic, 0); m2 == m {
		t.Fatal("pool recycled foreign storage")
	}
}

func TestPoolFreeDeadRefPanics(t *testing.T) {
	p := NewPool(2, false)
	m := p.New(1, 0, 5, 4, Deterministic, 0)
	ref, _ := m.Ref()
	p.Free(ref)
	defer func() {
		if recover() == nil {
			t.Fatal("double Free did not panic")
		}
	}()
	p.Free(ref)
}

func TestFlitOnUnregisteredMessagePanics(t *testing.T) {
	m := New(1, 0, 5, 4, 2, Deterministic, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("Flit on unregistered message did not panic")
		}
	}()
	m.Flit(0)
}

func TestNewPoolValidatesDims(t *testing.T) {
	for _, n := range []int{0, MaxDims + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPool(%d) did not panic", n)
				}
			}()
			NewPool(n, false)
		}()
	}
}
