package message

import (
	"testing"

	"repro/internal/topology"
)

func TestFlitTypes(t *testing.T) {
	pool := NewPool(2, false)
	m := pool.New(1, 0, 5, 4, Deterministic, 0)
	if m.Flit(0).Type() != HeadFlit || !m.Flit(0).IsHead() {
		t.Error("flit 0 should be head")
	}
	if m.Flit(1).Type() != BodyFlit {
		t.Error("flit 1 should be body")
	}
	if m.Flit(3).Type() != TailFlit || !m.Flit(3).IsTail() {
		t.Error("flit 3 should be tail")
	}
	single := pool.New(2, 0, 5, 1, Adaptive, 0)
	f := single.Flit(0)
	if !f.IsHead() || !f.IsTail() {
		t.Error("single-flit message must be both head and tail")
	}
}

func TestFlitRangePanics(t *testing.T) {
	m := NewPool(2, false).New(1, 0, 5, 4, Deterministic, 0)
	for _, seq := range []int{-1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Flit(%d) did not panic", seq)
				}
			}()
			m.Flit(seq)
		}()
	}
}

func TestNewPanicsOnZeroLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-length message did not panic")
		}
	}()
	New(1, 0, 5, 0, 2, Deterministic, 0)
}

func TestViaStack(t *testing.T) {
	m := New(1, 0, topology.NodeID(9), 4, 2, Deterministic, 0)
	if m.Target() != 9 {
		t.Fatalf("target = %d, want final 9", m.Target())
	}
	m.PushVia(3)
	m.PushVia(7)
	if m.Target() != 7 {
		t.Fatalf("target = %d, want top via 7", m.Target())
	}
	m.PopVia()
	if m.Target() != 3 {
		t.Fatalf("target = %d, want 3", m.Target())
	}
	m.PopVia()
	if m.Target() != 9 {
		t.Fatalf("target = %d, want final 9 after pops", m.Target())
	}
}

func TestPopViaEmptyPanics(t *testing.T) {
	m := New(1, 0, 9, 4, 2, Deterministic, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("PopVia on empty stack did not panic")
		}
	}()
	m.PopVia()
}

func TestPopViasAt(t *testing.T) {
	m := New(1, 0, 9, 4, 2, Deterministic, 0)
	m.PushVia(3)
	m.PushVia(5)
	m.PushVia(5)
	m.PopViasAt(5)
	if m.Target() != 3 {
		t.Fatalf("target = %d after PopViasAt(5), want 3", m.Target())
	}
	m.PopViasAt(7) // no-op
	if m.Target() != 3 {
		t.Fatal("PopViasAt with non-matching node must not pop")
	}
}

func TestResetForReinjection(t *testing.T) {
	m := New(1, 0, 9, 4, 3, Adaptive, 0)
	m.Crossed[0] = true
	m.Crossed[2] = true
	m.Reversed[1] = true
	m.DirOverride[1] = topology.Minus
	m.ResetForReinjection()
	for i, c := range m.Crossed {
		if c {
			t.Errorf("Crossed[%d] not reset", i)
		}
	}
	if !m.Reversed[1] || m.DirOverride[1] != topology.Minus {
		t.Error("rerouting decision must survive re-injection")
	}
}

func TestAtFinalIgnoresVia(t *testing.T) {
	m := New(1, 0, 9, 4, 2, Deterministic, 0)
	m.PushVia(3)
	if m.AtFinal(3) {
		t.Error("via node is not the final destination")
	}
	if !m.AtFinal(9) {
		t.Error("final destination not recognised")
	}
}

func TestModeString(t *testing.T) {
	if Deterministic.String() != "deterministic" || Adaptive.String() != "adaptive" {
		t.Error("mode strings wrong")
	}
}

func TestMessageString(t *testing.T) {
	m := New(7, 1, 2, 32, 2, Adaptive, 0)
	if got := m.String(); got == "" {
		t.Error("empty String()")
	}
}
