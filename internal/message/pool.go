package message

import (
	"fmt"

	"repro/internal/topology"
)

// Ref is a compact pool handle addressing one live Message. The engine's
// hot paths (flit buffers, software queues, injection streams) carry Refs
// instead of pointers, so the flit-level state the garbage collector has to
// scan is empty and delivered messages recycle instead of being collected.
type Ref int32

// NilRef is the invalid handle.
const NilRef Ref = -1

// chunkSize is the arena growth quantum: Messages are allocated in chunks
// of this many so pool growth is O(live worms / chunkSize) allocations over
// a run, and recycled messages stay cache-adjacent.
const chunkSize = 256

// Pool is an index-addressed message arena with a free-list. One Pool
// serves one engine run: the traffic source allocates from it (Pool.New),
// the engine threads Refs end-to-end, and delivery/drop returns the slot —
// and, for arena-owned messages, the storage — for reuse.
//
// Recycling preserves determinism by construction: slot assignment is a
// LIFO over the free-list, every allocation and free happens at a fixed
// point of the simulation's sequential event order, and no engine decision
// ever reads a Ref's numeric value — so arena and no-arena runs take
// bit-identical trajectories (see Config.NoArena and TestArenaMatchesHeap).
//
// With noArena set, Free still recycles slots but never storage: every New
// gets a fresh heap Message, reproducing the collected-per-message
// behaviour the arena replaces (the ablation baseline).
type Pool struct {
	n       int
	noArena bool
	// slots maps Ref -> live message; freed slots hold nil until reused.
	slots []*Message
	// freeSlots is the LIFO free-list of slot indices.
	freeSlots []Ref
	// freeMsgs holds recycled arena-owned Message storage (empty in
	// noArena mode).
	freeMsgs []*Message
	live     int
	chunks   int
}

// NewPool builds a pool for messages of an n-dimensional network. noArena
// selects the heap ablation path (fresh Message per New, nothing recycled
// but the slot table).
func NewPool(n int, noArena bool) *Pool {
	if n < 1 || n > MaxDims {
		panic(fmt.Sprintf("message: pool dimensionality %d outside [1,%d]", n, MaxDims))
	}
	return &Pool{n: n, noArena: noArena}
}

// Dims returns the dimensionality the pool was built for.
func (p *Pool) Dims() int { return p.n }

// NoArena reports whether the pool runs the heap ablation path.
func (p *Pool) NoArena() bool { return p.noArena }

// Live returns the number of registered (allocated or adopted, not yet
// freed) messages.
func (p *Pool) Live() int { return p.live }

// Chunks returns how many arena chunks have been allocated (0 in noArena
// mode) — growth observability for tests and profiling.
func (p *Pool) Chunks() int { return p.chunks }

// Cap returns the slot-table size: the high-water mark of simultaneously
// live messages.
func (p *Pool) Cap() int { return len(p.slots) }

// New allocates and initialises a message of length flits from src to dst,
// registered in the pool. In arena mode the storage comes from the
// free-list (growing the arena by a chunk when exhausted) and the Via
// backing store is retained from the slot's previous occupant.
func (p *Pool) New(id uint64, src, dst topology.NodeID, length int, mode Mode, createdAt int64) *Message {
	if length < 1 {
		panic(fmt.Sprintf("message: length must be >= 1, got %d", length))
	}
	m := p.take()
	via := m.Via[:0]
	*m = Message{
		ID:  id,
		Src: src,
		Len: length,
		Header: Header{
			Dst:  dst,
			Mode: mode,
			Via:  via,
		},
		CreatedAt:   createdAt,
		DeliveredAt: -1,
		owned:       !p.noArena,
	}
	p.bind(m)
	return m
}

// take produces uninitialised message storage: recycled, freshly grown, or
// (noArena) a fresh heap allocation.
func (p *Pool) take() *Message {
	if p.noArena {
		return &Message{}
	}
	if n := len(p.freeMsgs); n > 0 {
		m := p.freeMsgs[n-1]
		p.freeMsgs[n-1] = nil
		p.freeMsgs = p.freeMsgs[:n-1]
		return m
	}
	chunk := make([]Message, chunkSize)
	p.chunks++
	for i := chunkSize - 1; i > 0; i-- {
		p.freeMsgs = append(p.freeMsgs, &chunk[i])
	}
	return &chunk[0]
}

// bind registers m under a slot, reusing the most recently freed one.
func (p *Pool) bind(m *Message) Ref {
	var ref Ref
	if n := len(p.freeSlots); n > 0 {
		ref = p.freeSlots[n-1]
		p.freeSlots = p.freeSlots[:n-1]
		p.slots[ref] = m
	} else {
		ref = Ref(len(p.slots))
		p.slots = append(p.slots, m)
	}
	m.refp1 = int32(ref) + 1
	p.live++
	return ref
}

// Adopt registers a caller-constructed message (message.New, replayed or
// test-built) and returns its Ref; a message already registered returns its
// existing Ref. Adopted storage is foreign: Free unregisters it without
// recycling, so the caller's pointer stays valid (and inspectable)
// afterwards.
func (p *Pool) Adopt(m *Message) Ref {
	if m.refp1 != 0 {
		return Ref(m.refp1 - 1)
	}
	return p.bind(m)
}

// At resolves a Ref to its live message. Resolving a freed Ref returns nil
// (and any dereference panics) — holding a Ref across Free is a bug.
func (p *Pool) At(ref Ref) *Message { return p.slots[ref] }

// Free returns a message's slot — and, for arena-owned storage, the
// Message itself — to the free-lists. The caller must hold no flits or
// Refs for it afterwards.
func (p *Pool) Free(ref Ref) {
	m := p.slots[ref]
	if m == nil {
		panic(fmt.Sprintf("message: Free of dead ref %d", ref))
	}
	p.slots[ref] = nil
	p.freeSlots = append(p.freeSlots, ref)
	m.refp1 = 0
	p.live--
	if m.owned {
		m.owned = false
		p.freeMsgs = append(p.freeMsgs, m)
	}
}

// NewIn allocates from pool when non-nil, else from the heap via New —
// the bridge for traffic sources that run with or without an engine pool.
func NewIn(pool *Pool, id uint64, src, dst topology.NodeID, length, n int, mode Mode, createdAt int64) *Message {
	if pool == nil {
		return New(id, src, dst, length, n, mode, createdAt)
	}
	return pool.New(id, src, dst, length, mode, createdAt)
}
