package metrics

// Chaos metrics for dynamic-fault runs: fixed-length measurement windows
// (Welford means per interval), fault-transition counters, purge
// loss/re-injection counts, rerouting convergence time, and per-interval
// availability. All of it is inert — zero branches taken, zero extra
// state — unless the engine arms windows for a scheduled run, so static
// runs keep their exact collector behaviour.

import (
	"fmt"

	"repro/internal/message"
)

// Window is one closed measurement interval [Start, End) of a dynamic run.
type Window struct {
	Start, End int64
	// Generated and Delivered count measured messages attributed to the
	// window: generation by creation cycle, delivery by delivery cycle.
	Generated, Delivered uint64
	latSum               float64
}

// MeanLatency returns the mean latency of messages delivered in the
// window, or 0 when none were.
func (w Window) MeanLatency() float64 {
	if w.Delivered == 0 {
		return 0
	}
	return w.latSum / float64(w.Delivered)
}

// Availability is the window's delivered/generated ratio, the per-interval
// service level of a run under churn. An idle window (nothing generated)
// counts as fully available.
func (w Window) Availability() float64 {
	if w.Generated == 0 {
		return 1
	}
	return float64(w.Delivered) / float64(w.Generated)
}

// convergenceBand is the recovery criterion: after a failure, the network
// has re-converged once a window's mean latency drops back within this
// factor of the pre-failure baseline.
const convergenceBand = 1.2

// EnableWindows arms per-interval statistics with the given window length
// in cycles. The engine calls it once, before the run, when a fault
// schedule is configured.
func (c *Collector) EnableWindows(length int64) {
	if length < 1 {
		length = 1
	}
	c.winLen = length
	c.cur = Window{Start: 0, End: length}
}

// roll closes windows until cycle now falls inside the current one.
func (c *Collector) roll(now int64) {
	if c.winLen == 0 {
		return
	}
	for now >= c.cur.End {
		c.closed = append(c.closed, c.cur)
		c.cur = Window{Start: c.cur.End, End: c.cur.End + c.winLen}
	}
}

// Transition records one applied fault transition at cycle now; fail
// distinguishes failures (tracked for convergence measurement) from heals.
func (c *Collector) Transition(now int64, fail bool) {
	c.transitions++
	c.roll(now)
	if fail {
		c.failCycles = append(c.failCycles, now)
	}
}

// Reinjected records a worm purged by a fault transition and requeued for
// re-injection at its source.
func (c *Collector) Reinjected(*message.Message) { c.reinjected++ }

// Lost records a worm purged by a fault transition that could not be
// salvaged (its source failed). Purge losses are counted separately from
// Dropped: a drop is a routing verdict, a loss is violence done to an
// in-flight worm.
func (c *Collector) Lost(*message.Message) { c.lost++ }

// windowGenerated attributes a measured generation to its window.
func (c *Collector) windowGenerated(at int64) {
	if c.winLen == 0 {
		return
	}
	c.roll(at)
	c.cur.Generated++
}

// windowDelivered attributes a measured delivery to its window.
func (c *Collector) windowDelivered(now int64, latency float64) {
	if c.winLen == 0 {
		return
	}
	c.roll(now)
	c.cur.Delivered++
	c.cur.latSum += latency
}

// finalizeChaos folds the chaos state into the results at cycle now.
func (c *Collector) finalizeChaos(r *Results, now int64) {
	r.Reinjected = c.reinjected
	r.Lost = c.lost
	r.Transitions = c.transitions
	if c.winLen == 0 {
		return
	}
	c.roll(now) // close every window the run outlived
	windows := append([]Window(nil), c.closed...)
	if c.cur.Generated > 0 || c.cur.Delivered > 0 {
		partial := c.cur
		if now < partial.End {
			partial.End = now
		}
		windows = append(windows, partial)
	}
	r.Windows = windows

	r.MinAvailability = 1
	for _, w := range windows {
		if a := w.Availability(); a < r.MinAvailability {
			r.MinAvailability = a
		}
	}

	r.Convergence = make([]int64, len(c.failCycles))
	sum, n := int64(0), 0
	for i, fc := range c.failCycles {
		r.Convergence[i] = convergenceAfter(windows, fc)
		if r.Convergence[i] >= 0 {
			sum += r.Convergence[i]
			n++
		}
	}
	if n > 0 {
		r.MeanConvergence = float64(sum) / float64(n)
	} else if len(c.failCycles) > 0 {
		r.MeanConvergence = -1
	}
}

// convergenceAfter measures the rerouting convergence time of the failure
// at cycle fc: cycles from the failure until the end of the first
// subsequent window whose mean latency is back within convergenceBand of
// the pre-failure baseline (the last window closed before the failure that
// delivered anything). -1 means unrecovered within the run, or no
// baseline to compare against.
func convergenceAfter(windows []Window, fc int64) int64 {
	baseline := 0.0
	for _, w := range windows {
		if w.End > fc {
			break
		}
		if w.Delivered > 0 {
			baseline = w.MeanLatency()
		}
	}
	if baseline == 0 {
		return -1
	}
	for _, w := range windows {
		if w.End <= fc || w.Delivered == 0 {
			continue
		}
		if w.MeanLatency() <= baseline*convergenceBand {
			return w.End - fc
		}
	}
	return -1
}

// ChaosString renders the chaos metrics as a one-line summary fragment;
// empty for static runs.
func (r Results) ChaosString() string {
	if r.Transitions == 0 {
		return ""
	}
	conv := "n/a"
	if r.MeanConvergence >= 0 {
		conv = fmt.Sprintf("%.0f", r.MeanConvergence)
	}
	return fmt.Sprintf("transitions=%d reinjected=%d lost=%d convergence=%s avail_min=%.3f",
		r.Transitions, r.Reinjected, r.Lost, conv, r.MinAvailability)
}
