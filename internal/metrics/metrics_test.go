package metrics

import (
	"testing"

	"repro/internal/message"
)

func mkMsg(id uint64, created int64) *message.Message {
	return message.New(id, 0, 1, 8, 2, message.Deterministic, created)
}

func TestWarmupExclusion(t *testing.T) {
	c := NewCollector(10)
	for i := uint64(0); i < 20; i++ {
		m := mkMsg(i, int64(i))
		c.Generated(m)
		c.Delivered(m, int64(i)+100)
	}
	if c.DeliveredCount() != 10 {
		t.Fatalf("measured deliveries = %d, want 10", c.DeliveredCount())
	}
	r := c.Finalize(200, 64, false)
	if r.Delivered != 10 || r.Generated != 10 {
		t.Fatalf("results counts = %d/%d", r.Delivered, r.Generated)
	}
	if r.MeanLatency != 100 {
		t.Fatalf("latency = %v, want 100", r.MeanLatency)
	}
}

func TestMeasurementWindowOpensAtFirstMeasuredGeneration(t *testing.T) {
	c := NewCollector(5)
	for i := uint64(0); i < 10; i++ {
		c.Generated(mkMsg(i, int64(i*10)))
	}
	// First measured message is ID 5 created at cycle 50.
	r := c.Finalize(150, 4, false)
	if r.Cycles != 100 {
		t.Fatalf("window = %d, want 100", r.Cycles)
	}
}

func TestThroughputComputation(t *testing.T) {
	c := NewCollector(0)
	for i := uint64(0); i < 50; i++ {
		m := mkMsg(i, 0)
		c.Generated(m)
		c.Delivered(m, 10)
	}
	r := c.Finalize(1000, 10, false)
	want := 50.0 / (1000.0 * 10.0)
	if r.Throughput != want {
		t.Fatalf("throughput = %v, want %v", r.Throughput, want)
	}
	if r.AcceptedFraction != 1.0 {
		t.Fatalf("accepted = %v", r.AcceptedFraction)
	}
}

func TestQueuedCounters(t *testing.T) {
	c := NewCollector(2)
	warm := mkMsg(0, 0)
	c.Generated(warm)
	c.Stop(warm, StopFault) // warm-up: not counted
	m := mkMsg(5, 0)
	c.Generated(m)
	c.Stop(m, StopFault)
	c.Stop(m, StopFault)
	c.Stop(m, StopVia)
	r := c.Finalize(100, 4, false)
	if r.QueuedFault != 2 || r.QueuedVia != 1 || r.QueuedTotal() != 3 {
		t.Fatalf("queued = %d/%d", r.QueuedFault, r.QueuedVia)
	}
}

func TestQuantilesOrdered(t *testing.T) {
	c := NewCollector(0)
	for i := uint64(0); i < 1000; i++ {
		m := mkMsg(i, 0)
		c.Generated(m)
		c.Delivered(m, int64(i))
	}
	r := c.Finalize(2000, 8, false)
	if !(r.P50 <= r.P95 && r.P95 <= r.P99 && r.P99 <= r.MaxLatency) {
		t.Fatalf("quantiles disordered: %v %v %v %v", r.P50, r.P95, r.P99, r.MaxLatency)
	}
}

func TestSaturatedFlagAndDropped(t *testing.T) {
	c := NewCollector(0)
	m := mkMsg(0, 0)
	c.Generated(m)
	c.Dropped(m)
	r := c.Finalize(10, 4, true)
	if !r.Saturated || r.Dropped != 1 {
		t.Fatalf("flags: %+v", r)
	}
	if r.String() == "" {
		t.Fatal("empty string")
	}
}

func TestDeliveredStampsMessage(t *testing.T) {
	c := NewCollector(0)
	m := mkMsg(0, 7)
	c.Generated(m)
	c.Delivered(m, 19)
	if m.DeliveredAt != 19 {
		t.Fatalf("DeliveredAt = %d", m.DeliveredAt)
	}
}

func TestNegativeWarmupClamped(t *testing.T) {
	c := NewCollector(-5)
	m := mkMsg(0, 0)
	if !c.Measured(m) {
		t.Fatal("clamped warmup should measure everything")
	}
}

func TestEmptyFinalize(t *testing.T) {
	c := NewCollector(0)
	r := c.Finalize(100, 4, false)
	if r.MeanLatency != 0 || r.Throughput != 0 || r.AcceptedFraction != 0 {
		t.Fatalf("empty results not zero: %+v", r)
	}
}
