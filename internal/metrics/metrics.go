// Package metrics collects the performance measures the paper reports:
// mean message latency (generation to last-flit ejection, §5.2), network
// throughput (delivered messages per node per cycle, Fig. 6), and the
// "messages queued" absorption counter (Fig. 7).
//
// Warm-up follows the paper's protocol: "Statistics gathering was inhibited
// for the first 10,000 messages to avoid distortions due to the startup
// transient." A message participates in statistics iff its generation index
// is at or past the warm-up count.
package metrics

import (
	"fmt"

	"repro/internal/message"
	"repro/internal/stats"
)

// StopKind classifies software-layer stops for the queued counter.
type StopKind uint8

const (
	// StopFault is an absorption because the outgoing channel leads to a
	// fault (the event Fig. 7 counts).
	StopFault StopKind = iota
	// StopVia is a scheduled stop at an intermediate destination installed
	// by the rerouting tables — software overhead caused by earlier faults.
	StopVia
)

// Collector accumulates one simulation run's statistics. It is used by a
// single-goroutine engine; Results snapshots are value copies.
type Collector struct {
	warmup uint64

	latency    stats.Welford
	sample     stats.Sample
	hops       stats.Welford
	generated  uint64
	delivered  uint64
	measuredAt int64 // cycle the measurement window opened (first measured generation)

	queuedFault uint64
	queuedVia   uint64
	dropped     uint64

	// Chaos state for dynamic-fault runs (see chaos.go); winLen == 0 means
	// windows are disarmed and every chaos path short-circuits.
	winLen      int64
	cur         Window
	closed      []Window
	transitions uint64
	reinjected  uint64
	lost        uint64
	failCycles  []int64
}

// NewCollector builds a collector that ignores the first warmup generated
// messages.
func NewCollector(warmup int) *Collector {
	if warmup < 0 {
		warmup = 0
	}
	return &Collector{warmup: uint64(warmup), measuredAt: -1}
}

// Measured reports whether message m participates in statistics.
func (c *Collector) Measured(m *message.Message) bool { return m.ID >= c.warmup }

// Generated records a message creation.
func (c *Collector) Generated(m *message.Message) {
	c.generated++
	if c.Measured(m) {
		if c.measuredAt < 0 {
			c.measuredAt = m.CreatedAt
		}
		c.windowGenerated(m.CreatedAt)
	}
}

// Delivered records final delivery at cycle now (the tail flit reached the
// destination PE).
func (c *Collector) Delivered(m *message.Message, now int64) {
	m.DeliveredAt = now
	if !c.Measured(m) {
		return
	}
	c.delivered++
	lat := float64(now - m.CreatedAt)
	c.latency.Add(lat)
	c.sample.Add(lat)
	c.windowDelivered(now, lat)
}

// Stop records a software-layer stop (absorption or via arrival).
func (c *Collector) Stop(m *message.Message, kind StopKind) {
	if !c.Measured(m) {
		return
	}
	switch kind {
	case StopFault:
		c.queuedFault++
	case StopVia:
		c.queuedVia++
	}
}

// Dropped records an undeliverable message (possible only for fault
// patterns that disconnect the destination, which the injectors exclude).
func (c *Collector) Dropped(*message.Message) { c.dropped++ }

// DeliveredCount returns the number of measured deliveries so far.
func (c *Collector) DeliveredCount() uint64 { return c.delivered }

// GeneratedCount returns the number of generated messages (including
// warm-up).
func (c *Collector) GeneratedCount() uint64 { return c.generated }

// Results is an immutable summary of one run.
type Results struct {
	// MeanLatency is the mean message latency in cycles: generation to last
	// data flit at the destination PE.
	MeanLatency float64
	// LatencyCI95 is the 95% confidence half-width of MeanLatency.
	LatencyCI95 float64
	// P50/P95/P99 latency quantiles in cycles.
	P50, P95, P99 float64
	// MaxLatency is the worst measured latency.
	MaxLatency float64
	// Throughput is delivered messages per node per cycle over the
	// measurement window (Fig. 6's measure).
	Throughput float64
	// AcceptedFraction is delivered/generated over the measurement window —
	// 1.0 means the network kept up with the offered load.
	AcceptedFraction float64
	// Delivered and Generated are measured-message counts.
	Delivered, Generated uint64
	// QueuedFault counts fault absorptions (Fig. 7's "messages queued");
	// QueuedVia counts scheduled intermediate-destination stops.
	QueuedFault, QueuedVia uint64
	// Dropped counts undeliverable messages (expected 0).
	Dropped uint64
	// Cycles is the measurement window length; Nodes the traffic sources.
	Cycles int64
	Nodes  int
	// Saturated flags a run that hit its cycle limit with a growing backlog
	// instead of delivering its message quota.
	Saturated bool

	// Chaos metrics, populated only for dynamic-fault runs (see chaos.go).
	// Transitions counts applied fault-state changes; Reinjected and Lost
	// count purged in-flight worms by outcome.
	Transitions, Reinjected, Lost uint64
	// Windows holds the per-interval statistics when windows were armed.
	Windows []Window
	// Convergence is the rerouting convergence time of each failure in
	// cycles (-1: unrecovered); MeanConvergence averages the recovered ones
	// (-1 when no failure recovered).
	Convergence     []int64
	MeanConvergence float64
	// MinAvailability is the worst per-window delivered/generated ratio.
	MinAvailability float64
}

// Finalize computes the summary at cycle now for a network of nodes traffic
// sources. generatedMeasured is the number of measured messages generated
// (for the accepted fraction).
func (c *Collector) Finalize(now int64, nodes int, saturated bool) Results {
	window := int64(0)
	if c.measuredAt >= 0 && now > c.measuredAt {
		window = now - c.measuredAt
	}
	r := Results{
		MeanLatency: c.latency.Mean(),
		LatencyCI95: c.latency.CI95(),
		P50:         c.sample.Quantile(0.50),
		P95:         c.sample.Quantile(0.95),
		P99:         c.sample.Quantile(0.99),
		MaxLatency:  c.latency.Max(),
		Delivered:   c.delivered,
		QueuedFault: c.queuedFault,
		QueuedVia:   c.queuedVia,
		Dropped:     c.dropped,
		Cycles:      window,
		Nodes:       nodes,
		Saturated:   saturated,
	}
	if c.generated > c.warmup {
		r.Generated = c.generated - c.warmup
	}
	if window > 0 && nodes > 0 {
		r.Throughput = float64(c.delivered) / (float64(window) * float64(nodes))
	}
	if r.Generated > 0 {
		r.AcceptedFraction = float64(r.Delivered) / float64(r.Generated)
	}
	c.finalizeChaos(&r, now)
	return r
}

// QueuedTotal returns total software-queue stops (fault + via), the
// quantity plotted in Fig. 7 under the paper's convention that one message
// absorbed multiple times contributes multiple counts.
func (r Results) QueuedTotal() uint64 { return r.QueuedFault + r.QueuedVia }

// String renders the headline metrics as a one-line summary; saturated
// runs are flagged with a trailing SATURATED marker.
func (r Results) String() string {
	sat := ""
	if r.Saturated {
		sat = " SATURATED"
	}
	chaos := ""
	if cs := r.ChaosString(); cs != "" {
		chaos = " " + cs
	}
	return fmt.Sprintf("latency=%.1f±%.1f p99=%.0f thr=%.5f msg/node/cyc delivered=%d queued=%d%s%s",
		r.MeanLatency, r.LatencyCI95, r.P99, r.Throughput, r.Delivered, r.QueuedTotal(), sat, chaos)
}
