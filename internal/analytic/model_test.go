package analytic

import (
	"math"
	"testing"

	"repro/internal/core"
)

func TestMeanRingDist(t *testing.T) {
	cases := map[int]float64{
		2: 0.5, // offsets {0,1} -> {0,1}
		4: 1.0, // {0,1,2,1}
		8: 2.0, // {0,1,2,3,4,3,2,1}
		3: 2.0 / 3.0,
	}
	for k, want := range cases {
		if got := MeanRingDist(k); math.Abs(got-want) > 1e-12 {
			t.Errorf("MeanRingDist(%d) = %v, want %v", k, got, want)
		}
	}
}

func TestMeanDistance(t *testing.T) {
	m := Model{K: 8, N: 2}
	if got := m.MeanDistance(); got != 4 {
		t.Fatalf("8-ary 2-cube mean distance = %v, want 4", got)
	}
	m3 := Model{K: 8, N: 3}
	if got := m3.MeanDistance(); got != 6 {
		t.Fatalf("8-ary 3-cube mean distance = %v, want 6", got)
	}
}

func TestZeroLoadLimit(t *testing.T) {
	m := Model{K: 8, N: 2, V: 4, M: 32, Lambda: 1e-6}
	lat, err := m.MeanLatency()
	if err != nil {
		t.Fatal(err)
	}
	// At vanishing load the latency must approach M + D = 36.
	if lat < 35 || lat > 40 {
		t.Fatalf("zero-load latency = %v, want ~36", lat)
	}
}

func TestMonotoneInLoad(t *testing.T) {
	prev := 0.0
	for _, l := range []float64{0.001, 0.004, 0.008, 0.012, 0.016} {
		m := Model{K: 8, N: 2, V: 4, M: 32, Lambda: l}
		lat, err := m.MeanLatency()
		if err != nil {
			// Saturation encountered: acceptable for the highest rates only.
			if l < 0.01 {
				t.Fatalf("saturated already at λ=%v", l)
			}
			return
		}
		if lat < prev {
			t.Fatalf("latency not monotone at λ=%v: %v < %v", l, lat, prev)
		}
		prev = lat
	}
}

func TestMonotoneInMessageLength(t *testing.T) {
	short := Model{K: 8, N: 2, V: 4, M: 32, Lambda: 0.004}
	long := Model{K: 8, N: 2, V: 4, M: 64, Lambda: 0.004}
	ls, err := short.MeanLatency()
	if err != nil {
		t.Fatal(err)
	}
	ll, err := long.MeanLatency()
	if err != nil {
		t.Fatal(err)
	}
	if ll <= ls {
		t.Fatalf("M=64 latency %v not above M=32 latency %v", ll, ls)
	}
}

func TestFaultsIncreaseLatency(t *testing.T) {
	clean := Model{K: 8, N: 2, V: 4, M: 32, Lambda: 0.004}
	faulty := clean
	faulty.Nf = 5
	lc, err := clean.MeanLatency()
	if err != nil {
		t.Fatal(err)
	}
	lf, err := faulty.MeanLatency()
	if err != nil {
		t.Fatal(err)
	}
	if lf <= lc {
		t.Fatalf("faulty latency %v not above clean %v", lf, lc)
	}
	// Delta adds linearly to the absorption cost.
	withDelta := faulty
	withDelta.Delta = 100
	ld, err := withDelta.MeanLatency()
	if err != nil {
		t.Fatal(err)
	}
	if ld <= lf {
		t.Fatal("Delta did not increase faulty latency")
	}
}

func TestAdaptiveNeverWorseThanDeterministic(t *testing.T) {
	for _, l := range []float64{0.002, 0.006, 0.010} {
		det := Model{K: 8, N: 2, V: 4, M: 32, Lambda: l}
		adp := det
		adp.Adaptive = true
		ld, errD := det.MeanLatency()
		la, errA := adp.MeanLatency()
		if errA != nil && errD == nil {
			t.Fatalf("adaptive saturated before deterministic at λ=%v", l)
		}
		if errD != nil || errA != nil {
			continue
		}
		if la > ld+1e-9 {
			t.Fatalf("λ=%v: adaptive %v above deterministic %v", l, la, ld)
		}
	}
	det := Model{K: 8, N: 2, V: 6, M: 32, Lambda: 0.001}
	adp := det
	adp.Adaptive = true
	if adp.SaturationRate() < det.SaturationRate() {
		t.Fatal("adaptive saturation below deterministic")
	}
}

func TestMoreVCsRaiseSaturation(t *testing.T) {
	v4 := Model{K: 8, N: 2, V: 4, M: 32, Lambda: 0.001}
	v10 := Model{K: 8, N: 2, V: 10, M: 32, Lambda: 0.001}
	if v10.SaturationRate() < v4.SaturationRate() {
		t.Fatalf("V=10 saturation %v below V=4 %v", v10.SaturationRate(), v4.SaturationRate())
	}
}

func TestSaturationDetected(t *testing.T) {
	m := Model{K: 8, N: 2, V: 4, M: 32, Lambda: 0.05}
	if _, err := m.MeanLatency(); err == nil {
		t.Fatal("λ=0.05 (flit load > 1) not flagged saturated")
	}
	sat := m.SaturationRate()
	if sat <= 0 || sat >= 1.0/32 {
		t.Fatalf("saturation rate %v out of range", sat)
	}
}

func TestInvalidParams(t *testing.T) {
	for _, m := range []Model{
		{K: 1, N: 2, V: 4, M: 32, Lambda: 0.001},
		{K: 8, N: 0, V: 4, M: 32, Lambda: 0.001},
		{K: 8, N: 2, V: 0, M: 32, Lambda: 0.001},
		{K: 8, N: 2, V: 4, M: 0, Lambda: 0.001},
		{K: 8, N: 2, V: 4, M: 32, Lambda: 0},
	} {
		if _, err := m.MeanLatency(); err == nil {
			t.Errorf("invalid model %+v accepted", m)
		}
	}
}

// The headline validation: the model must track the simulator below
// saturation. We allow a generous envelope (40% relative error) — models of
// this family predict trends and knee positions, not exact cycle counts.
func TestModelTracksSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation comparison")
	}
	for _, tc := range []struct {
		lambda float64
	}{{0.002}, {0.004}, {0.006}} {
		cfg := core.DefaultConfig(8, 2, tc.lambda)
		cfg.V = 4
		cfg.WarmupMessages = 300
		cfg.MeasureMessages = 4000
		res, err := core.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m := Model{K: 8, N: 2, V: 4, M: 32, Lambda: tc.lambda}
		lat, err := m.MeanLatency()
		if err != nil {
			t.Fatalf("model saturated at λ=%v where simulator did not", tc.lambda)
		}
		relErr := math.Abs(lat-res.MeanLatency) / res.MeanLatency
		if relErr > 0.40 {
			t.Errorf("λ=%v: model %v vs sim %v (rel err %.0f%%)",
				tc.lambda, lat, res.MeanLatency, relErr*100)
		}
	}
}
