// Package analytic implements the paper's stated future work ("Our next
// object is to develop an analytical modeling approach to investigate the
// performance behavior of Software-Based fault-tolerant routing"): a
// fixed-point mean-value model of message latency in wormhole-switched
// k-ary n-cubes under deterministic routing, extended with the software
// absorption overhead of SW-Based routing.
//
// The construction follows the standard queueing treatment of wormhole
// tori (Draper & Ghosh; Ould-Khaoua): mean network latency is the sum of
// the pipeline term (M + D), per-hop blocking waits from an M/G/1
// approximation of channel contention, a virtual-channel multiplexing
// factor, and an M/G/1 source-queue wait. Faults add the expected number of
// absorptions per message times the cost of one software stop (drain +
// re-injection + overhead Δ).
//
// The model is intentionally approximate: it tracks the simulator within
// tens of percent below saturation and predicts the position of the latency
// knee, which is what analytical models of this family are used for. The
// comparison harness is cmd/analyze; accuracy is recorded in
// EXPERIMENTS.md.
package analytic

import (
	"errors"
	"math"
)

// Model holds the parameters of one analytical evaluation.
type Model struct {
	// K, N: k-ary n-cube.
	K, N int
	// V: virtual channels per physical channel.
	V int
	// M: message length in flits.
	M int
	// Lambda: per-node generation rate (messages/node/cycle).
	Lambda float64
	// Nf: number of random faulty nodes.
	Nf int
	// Delta: software re-injection overhead in cycles.
	Delta float64
	// Adaptive models Duato-based fully adaptive routing: a message waits
	// only when the virtual channels of every profitable direction are
	// busy, so the per-hop blocking probability is raised to the expected
	// number of alternative directions remaining at that hop.
	Adaptive bool
}

// ErrSaturated is returned when the offered load exceeds the model's
// stability region (channel or source utilisation >= 1).
var ErrSaturated = errors.New("analytic: offered load beyond saturation")

// MeanRingDist returns the expected minimal ring distance between two
// uniformly random coordinates on a k-ring (self-pairs included).
func MeanRingDist(k int) float64 {
	sum := 0
	for o := 0; o < k; o++ {
		d := o
		if k-o < d {
			d = k - o
		}
		sum += d
	}
	return float64(sum) / float64(k)
}

// MeanDistance returns the expected hop count D of a uniformly addressed
// message.
func (m Model) MeanDistance() float64 {
	return float64(m.N) * MeanRingDist(m.K)
}

// nodes returns k^n.
func (m Model) nodes() int {
	total := 1
	for i := 0; i < m.N; i++ {
		total *= m.K
	}
	return total
}

// ChannelRate returns the per-directed-channel message arrival rate:
// each message occupies D channels of the 2n per node.
func (m Model) ChannelRate() float64 {
	return m.Lambda * m.MeanDistance() / float64(2*m.N)
}

// multiplexingFactor is Dally's virtual-channel multiplexing degree: the
// expected number of active VCs weighted by their bandwidth share, from a
// binomial occupancy approximation at channel utilisation rho.
func multiplexingFactor(v int, rho float64) float64 {
	if rho <= 0 {
		return 1
	}
	if rho > 1 {
		rho = 1
	}
	var num, den float64
	for i := 1; i <= v; i++ {
		p := binom(v, i) * math.Pow(rho, float64(i)) * math.Pow(1-rho, float64(v-i))
		num += float64(i*i) * p
		den += float64(i) * p
	}
	if den == 0 {
		return 1
	}
	return num / den
}

func binom(n, k int) float64 {
	res := 1.0
	for i := 0; i < k; i++ {
		res *= float64(n-i) / float64(k-i)
	}
	return res
}

// NetworkLatency solves the fixed point for the mean in-network latency of
// a message (head injection to tail ejection), excluding source queueing
// and fault overhead. It returns ErrSaturated when no stable solution
// exists.
func (m Model) NetworkLatency() (float64, error) {
	d := m.MeanDistance()
	lch := m.ChannelRate()
	base := float64(m.M) + d
	t := base
	for iter := 0; iter < 500; iter++ {
		// A blocked message waits for a channel whose holder needs, on
		// average, the residual downstream service: approximate the channel
		// service time as the message pipeline plus half the accumulated
		// blocking beyond it.
		s := float64(m.M) + (t-float64(m.M))/2
		rhoFlit := lch * float64(m.M) // flit utilisation of the physical link
		if rhoFlit >= 1 {
			return 0, ErrSaturated
		}
		// Wait only when all V virtual channels are held: geometric-ish
		// penalty rho^V on the M/G/1 wait.
		pBlockOne := math.Pow(rhoFlit, float64(m.V))
		wait := pBlockOne * lch * s * s / (1 - rhoFlit)
		totalWait := d * wait
		if m.Adaptive {
			// A hop blocks only when every profitable direction is held.
			// Early hops see ~n unfinished dimensions, the last hop one;
			// the expected alternative count decays linearly along the
			// path.
			totalWait = 0
			hops := int(math.Ceil(d))
			for j := 1; j <= hops; j++ {
				alts := 1 + float64(m.N-1)*float64(hops-j)/float64(hops)
				totalWait += math.Pow(pBlockOne, alts) * lch * s * s / (1 - rhoFlit)
			}
		}
		// Virtual-channel multiplexing stretches flit delivery.
		vbar := multiplexingFactor(m.V, rhoFlit)
		next := (base + totalWait) * vbar
		if math.IsInf(next, 0) || math.IsNaN(next) || next > 1e7 {
			return 0, ErrSaturated
		}
		if math.Abs(next-t) < 1e-9 {
			return next, nil
		}
		t = 0.5*t + 0.5*next // damped iteration
	}
	return t, nil
}

// AbsorptionsPerMessage estimates the expected number of software
// absorptions a message suffers: at each of its D hops the required next
// node is faulty with probability ~nf/N; the first reversal usually clears
// a lone fault, so concave pile-ups contribute a small second-order term.
func (m Model) AbsorptionsPerMessage() float64 {
	if m.Nf == 0 {
		return 0
	}
	pf := float64(m.Nf) / float64(m.nodes())
	d := m.MeanDistance()
	first := d * pf
	// Second absorption (other direction also blocked / detour blocked):
	// proportional to the chance a second fault sits adjacent, ~ (nf-1)
	// among the ~2n neighbours of the region.
	second := first * float64(m.Nf-1) * float64(2*m.N) / float64(m.nodes())
	return first + second
}

// StopCost returns the mean cost of one software stop: draining M flits
// through the ejection channel, the software overhead Δ, re-injection
// streaming, and a couple of extra hops for the detour.
func (m Model) StopCost() float64 {
	return float64(m.M) + m.Delta + 2 + MeanRingDist(m.K)
}

// SourceWait returns the M/G/1 waiting time at the injection queue, whose
// server is the injection channel streaming M flits per message.
func (m Model) SourceWait() (float64, error) {
	s := float64(m.M)
	rho := m.Lambda * s
	if rho >= 1 {
		return 0, ErrSaturated
	}
	// M/D/1 wait (deterministic service: fixed message length).
	return rho * s / (2 * (1 - rho)), nil
}

// MeanLatency returns the model's end-to-end mean message latency:
// source wait + network fixed point + expected absorption overhead.
func (m Model) MeanLatency() (float64, error) {
	if m.K < 2 || m.N < 1 || m.V < 1 || m.M < 1 || m.Lambda <= 0 {
		return 0, errors.New("analytic: invalid model parameters")
	}
	tnet, err := m.NetworkLatency()
	if err != nil {
		return 0, err
	}
	ws, err := m.SourceWait()
	if err != nil {
		return 0, err
	}
	return ws + tnet + m.AbsorptionsPerMessage()*m.StopCost(), nil
}

// SaturationRate estimates the offered load at which the model diverges, by
// bisection on MeanLatency stability.
func (m Model) SaturationRate() float64 {
	lo, hi := 0.0, 1.0/float64(m.M) // flit-bandwidth upper bound at the source
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		probe := m
		probe.Lambda = mid
		if _, err := probe.MeanLatency(); err != nil {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo
}
