package routing

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/message"
	"repro/internal/rng"
	"repro/internal/topology"
)

// The regression scenario behind the T2 corner-via rule: faults at (7,1)
// and (7,4) block column x=7 in both ring directions. A message crossing
// that column vertically must sidestep AND ride past the region before
// returning, or e-cube order walks it straight back (ping-pong).
func TestT2CornerViaNoPingPong(t *testing.T) {
	tor := topology.New(8, 2)
	fs := fault.NewSet(tor)
	fs.MarkNode(tor.FromCoords([]int{7, 1}))
	fs.MarkNode(tor.FromCoords([]int{7, 4}))
	fs.MarkNode(tor.FromCoords([]int{2, 4}))
	a := mustDet(t, tor, fs, 4)
	src := tor.FromCoords([]int{5, 6})
	dst := tor.FromCoords([]int{7, 3})
	m := message.New(1, src, dst, 64, 2, message.Deterministic, 0)
	_, stops, ok := walk(t, a, m, 2000)
	if !ok {
		t.Fatal("not delivered")
	}
	if stops > 5 {
		t.Fatalf("message needed %d software stops; the corner via should "+
			"resolve this in a handful", stops)
	}
}

// Blocked in the plane's second dimension (d=1, partner o=0): the installed
// via must advance past the region in dimension 1, not merely sidestep in
// dimension 0.
func TestOrthoDetourAdvancesPastRegionInBlockedDim(t *testing.T) {
	tor := topology.New(8, 2)
	fs := fault.NewSet(tor)
	blocker := tor.FromCoords([]int{3, 4})
	fs.MarkNode(blocker)
	a := mustDet(t, tor, fs, 4)
	cur := tor.FromCoords([]int{3, 3})
	dst := tor.FromCoords([]int{3, 6})
	m := message.New(1, cur, dst, 8, 2, message.Deterministic, 0)
	// Force the T2 path: pretend dimension 1 was already reversed.
	m.Reversed[1] = true
	if !a.Plan(cur, m, 1, topology.Plus) {
		t.Fatal("plan failed")
	}
	if len(m.Via) == 0 {
		t.Fatal("no via installed")
	}
	via := m.Target()
	// Via must clear x=3 (region extent in dim0 is [3,3]) and sit past y=4
	// in dim 1 (region extent [4,4] -> y=5).
	vx, vy := tor.Coord(via, 0), tor.Coord(via, 1)
	if vx == 3 {
		t.Errorf("via x=%d does not clear the region column", vx)
	}
	if vy != 5 {
		t.Errorf("via y=%d, want 5 (just past the region in the blocked dim)", vy)
	}
	if _, stops, ok := walk(t, a, m, 500); !ok || stops > 3 {
		t.Fatalf("delivery failed or ping-ponged (ok=%v stops=%d)", ok, stops)
	}
}

// Blocked in the plane's first dimension (d=0, partner o=1): the classic
// sidestep via keeps the current dim-0 coordinate.
func TestOrthoDetourSidestepInFirstDim(t *testing.T) {
	tor := topology.New(8, 2)
	fs := fault.NewSet(tor)
	fs.MarkNode(tor.FromCoords([]int{4, 3}))
	a := mustDet(t, tor, fs, 4)
	cur := tor.FromCoords([]int{3, 3})
	dst := tor.FromCoords([]int{6, 3})
	m := message.New(1, cur, dst, 8, 2, message.Deterministic, 0)
	m.Reversed[0] = true
	if !a.Plan(cur, m, 0, topology.Plus) {
		t.Fatal("plan failed")
	}
	via := m.Target()
	if tor.Coord(via, 0) != 3 {
		t.Errorf("via x=%d, want unchanged 3", tor.Coord(via, 0))
	}
	if y := tor.Coord(via, 1); y != 2 && y != 4 {
		t.Errorf("via y=%d, want 2 or 4 (one row off the region)", y)
	}
}

// Link faults (no node failures): T2's pure-link branch sizes the detour
// from the blocking endpoint alone.
func TestPlanAroundLinkFault(t *testing.T) {
	tor := topology.New(8, 2)
	fs := fault.NewSet(tor)
	src := tor.FromCoords([]int{2, 2})
	fs.MarkLink(src, topology.PortFor(0, topology.Plus))
	fs.MarkLink(src, topology.PortFor(0, topology.Minus))
	a := mustDet(t, tor, fs, 4)
	dst := tor.FromCoords([]int{5, 2})
	m := message.New(1, src, dst, 8, 2, message.Deterministic, 0)
	_, _, ok := walk(t, a, m, 500)
	if !ok {
		t.Fatal("message not delivered around link faults")
	}
}

// Escalation override: with SetEscalation(1) every second absorption uses
// the exact planner, so even hostile patterns deliver within tight step
// bounds.
func TestEscalationOverride(t *testing.T) {
	tor := topology.New(8, 2)
	fs, err := fault.Random(tor, 10, rng.New(5), fault.DefaultRandomOptions())
	if err != nil {
		t.Fatal(err)
	}
	a := mustDet(t, tor, fs, 4)
	a.SetEscalation(1)
	healthy := fs.HealthyNodes()
	r := rng.New(6)
	for i := 0; i < 60; i++ {
		src := healthy[r.Intn(len(healthy))]
		dst := healthy[r.Intn(len(healthy))]
		if src == dst {
			continue
		}
		m := message.New(uint64(i), src, dst, 16, 2, message.Deterministic, 0)
		_, stops, ok := walk(t, a, m, 1500)
		if !ok {
			t.Fatalf("not delivered with escalation=1 (src=%v dst=%v)",
				tor.Coords(src), tor.Coords(dst))
		}
		if stops > 12 {
			t.Fatalf("escalation=1 allowed %d stops", stops)
		}
	}
}

// One-dimensional tori have no orthogonal partner: only reversal and the
// exact planner apply, and delivery must still be guaranteed.
func TestOneDimensionalTorus(t *testing.T) {
	tor := topology.New(8, 1)
	fs := fault.NewSet(tor)
	fs.MarkNode(3)
	a := mustDet(t, tor, fs, 4)
	m := message.New(1, 1, 5, 8, 1, message.Deterministic, 0)
	_, _, ok := walk(t, a, m, 200)
	if !ok {
		t.Fatal("1-D reversal failed")
	}
}

// Small odd radix: exercises ring arithmetic away from the power-of-two
// comfort zone.
func TestOddRadixDelivery(t *testing.T) {
	tor := topology.New(5, 2)
	fs, err := fault.Random(tor, 3, rng.New(4), fault.DefaultRandomOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, adaptive := range []bool{false, true} {
		var a *Algorithm
		if adaptive {
			a = mustAdap(t, tor, fs, 3)
		} else {
			a = mustDet(t, tor, fs, 2)
		}
		healthy := fs.HealthyNodes()
		r := rng.New(9)
		mode := message.Deterministic
		if adaptive {
			mode = message.Adaptive
		}
		for i := 0; i < 40; i++ {
			src := healthy[r.Intn(len(healthy))]
			dst := healthy[r.Intn(len(healthy))]
			if src == dst {
				continue
			}
			m := message.New(uint64(i), src, dst, 4, 2, mode, 0)
			if _, _, ok := walk(t, a, m, 1000); !ok {
				t.Fatalf("k=5 delivery failed (adaptive=%v)", adaptive)
			}
		}
	}
}
