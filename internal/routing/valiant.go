package routing

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/message"
	"repro/internal/topology"
)

// Valiant is Valiant's two-phase randomized routing realised on top of the
// Software-Based machinery: every message first routes to a healthy
// intermediate node chosen pseudo-randomly from its ID, then on to its
// destination. The intermediate is installed as an ordinary via stop, so
// both phases are plain SW-Based worms — the deadlock and delivery
// arguments of the base algorithm carry over unchanged, and the fault
// planner still handles any absorption in either phase.
//
// The point of the algorithm is load balancing: adversarial patterns
// (transpose, hotspot) that saturate minimal routing early are spread over
// the whole network at the cost of roughly doubling the fault-free path
// length. It is the classic baseline the ROADMAP's scenario-diversity goal
// calls for, and it exercises the registry seam with an algorithm whose
// header behaviour differs from both seed variants.
type Valiant struct {
	*Algorithm
	healthy []topology.NodeID
}

// NewValiant builds Valiant two-phase routing over the deterministic
// (adaptiveBase false, V >= 2) or Duato adaptive (adaptiveBase true,
// V >= 3) SW-Based base.
func NewValiant(t topology.Network, f *fault.Set, v int, adaptiveBase bool) (*Valiant, error) {
	var base *Algorithm
	var err error
	if adaptiveBase {
		base, err = NewAdaptive(t, f, v)
	} else {
		base, err = NewDeterministic(t, f, v)
	}
	if err != nil {
		return nil, err
	}
	healthy := f.HealthyNodes()
	if len(healthy) == 0 {
		return nil, fmt.Errorf("routing: valiant needs at least one healthy node")
	}
	return &Valiant{Algorithm: base, healthy: healthy}, nil
}

// RefreshFaults rebuilds the base algorithm's region index and this
// layer's healthy-node list after a dynamic fault transition. The list
// must track the live set: intermediate() indexes into it, and a stale
// entry would route messages via a failed node.
func (va *Valiant) RefreshFaults() {
	va.Algorithm.RefreshFaults()
	va.healthy = va.Faults().HealthyNodes()
}

// Name identifies the algorithm in reports.
func (va *Valiant) Name() string {
	if va.Adaptive() {
		return "valiant-adaptive"
	}
	return "valiant"
}

// Route installs the random intermediate destination the first time the
// header is routed (which happens at the source, before injection), then
// defers to the base algorithm. The Detoured flag keeps the detour from
// being re-installed when a later path segment happens to pass back
// through the source.
func (va *Valiant) Route(cur topology.NodeID, m *message.Message) Decision {
	if !m.Detoured {
		m.Detoured = true
		if w := va.intermediate(m); w != cur && w != m.Dst {
			m.PushVia(w)
		}
	}
	return va.Algorithm.Route(cur, m)
}

// intermediate picks the message's random intermediate node: a splitmix64
// hash of the message ID over the healthy nodes. Hashing (rather than
// drawing from a stream) keeps the algorithm stateless and the choice
// reproducible regardless of routing order.
func (va *Valiant) intermediate(m *message.Message) topology.NodeID {
	x := m.ID + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return va.healthy[x%uint64(len(va.healthy))]
}
