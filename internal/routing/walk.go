package routing

import (
	"fmt"

	"repro/internal/message"
	"repro/internal/topology"
)

// WalkResult summarises one contention-free traversal of the routing
// algorithm (see Walk).
type WalkResult struct {
	// Hops is the number of link traversals.
	Hops int
	// Stops is the number of software-layer stops (fault absorptions plus
	// intermediate-destination arrivals).
	Stops int
	// Absorptions is the fault-triggered subset of Stops.
	Absorptions int
	// Delivered reports whether the walk reached the destination within
	// the step budget.
	Delivered bool
}

// Walk drives a message from its source to its destination assuming zero
// contention: Route decides, the walk applies the first candidate, and
// software stops run the planner exactly as the engine's messaging layer
// does. It is the algorithm-level executable semantics used by the
// livelock analysis and the test suite.
func Walk(a Router, m *message.Message, maxSteps int) WalkResult {
	var res WalkResult
	cur := m.Src
	t := a.Topology()
	for step := 0; step < maxSteps; step++ {
		dec := a.Route(cur, m)
		switch dec.Outcome {
		case Deliver:
			res.Delivered = true
			return res
		case ViaArrived:
			m.PopViasAt(cur)
			m.ResetForReinjection()
			res.Stops++
		case AbsorbFault:
			if !a.Plan(cur, m, dec.BlockedDim, dec.BlockedDir) {
				return res // unroutable; Delivered stays false
			}
			m.ResetForReinjection()
			res.Stops++
			res.Absorptions++
		case Progress:
			cand := dec.Preferred
			if len(cand) == 0 {
				cand = dec.Fallback
			}
			if len(cand) == 0 {
				return res
			}
			port := cand[0].Port
			if t.WrapsAround(t.Coord(cur, port.Dim()), port.Dir()) {
				m.Crossed[port.Dim()] = true
			}
			cur = t.Neighbor(cur, port.Dim(), port.Dir())
			res.Hops++
		}
	}
	return res
}

// LivelockReport is the exhaustive bound check behind §4's livelock-freedom
// discussion: every healthy ordered (src, dst) pair is walked and the
// worst-case misrouting quantified.
type LivelockReport struct {
	// Pairs walked.
	Pairs int
	// Undelivered counts pairs that failed the step budget (must be 0 for
	// connected fault patterns).
	Undelivered int
	// MaxStops and MaxHops are worst cases over all pairs.
	MaxStops, MaxHops int
	// MeanStops and MeanHops are averaged over all pairs.
	MeanStops, MeanHops float64
	// WorstSrc and WorstDst identify the pair attaining MaxStops.
	WorstSrc, WorstDst topology.NodeID
}

// AnalyzeLivelock walks every healthy ordered pair of the algorithm's
// network. msgLen only affects header construction, not the walk. maxSteps
// bounds each walk; 0 derives a generous budget from the network size.
func AnalyzeLivelock(a Router, msgLen, maxSteps int) LivelockReport {
	t := a.Topology()
	f := a.Faults()
	if maxSteps <= 0 {
		maxSteps = 40 * t.Nodes()
	}
	mode := a.BaseMode()
	var rep LivelockReport
	var totStops, totHops int
	id := uint64(0)
	for s := 0; s < t.Nodes(); s++ {
		src := topology.NodeID(s)
		if f.NodeFaulty(src) {
			continue
		}
		for d := 0; d < t.Nodes(); d++ {
			dst := topology.NodeID(d)
			if src == dst || f.NodeFaulty(dst) {
				continue
			}
			m := message.New(id, src, dst, msgLen, t.N(), mode, 0)
			id++
			res := Walk(a, m, maxSteps)
			rep.Pairs++
			if !res.Delivered {
				rep.Undelivered++
				continue
			}
			totStops += res.Stops
			totHops += res.Hops
			if res.Stops > rep.MaxStops {
				rep.MaxStops = res.Stops
				rep.WorstSrc, rep.WorstDst = src, dst
			}
			if res.Hops > rep.MaxHops {
				rep.MaxHops = res.Hops
			}
		}
	}
	delivered := rep.Pairs - rep.Undelivered
	if delivered > 0 {
		rep.MeanStops = float64(totStops) / float64(delivered)
		rep.MeanHops = float64(totHops) / float64(delivered)
	}
	return rep
}

// String renders the report as a one-line summary naming the worst
// source→destination pair.
func (r LivelockReport) String() string {
	return fmt.Sprintf("pairs=%d undelivered=%d stops(max=%d mean=%.3f) hops(max=%d mean=%.2f) worst=%d->%d",
		r.Pairs, r.Undelivered, r.MaxStops, r.MeanStops, r.MaxHops, r.MeanHops, r.WorstSrc, r.WorstDst)
}
