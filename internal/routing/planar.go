package routing

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/message"
	"repro/internal/topology"
)

// PlanarAdaptive is Chien & Kim's planar-adaptive routing for meshes,
// realised over the Software-Based machinery. Adaptivity is restricted to a
// sliding 2-D plane: at every hop the message may advance along d0, the
// lowest still-uncorrected dimension, or along d1, the next uncorrected
// dimension — never any other. Once d0 is corrected the plane slides up,
// so planes are visited in strictly increasing dimension order.
//
// Deadlock freedom comes from the increasing/decreasing virtual-channel
// split of the plane's second dimension: d1 hops taken while the message
// travels +d0 use the "increasing" VC bank, those taken while travelling
// -d0 the "decreasing" bank. Within one subnetwork all d0 hops share one
// direction, so a channel-dependency cycle would have to close inside a
// single d1 line, which minimal routing (no direction reversal on a mesh
// line) cannot do; first-dimension hops ride a third, dedicated bank. The
// discipline needs V >= 3 (one VC per bank) and a non-wrapping topology —
// on a torus the wraparound links re-close the rings and the argument
// fails, so construction is refused (the registry entry declares
// Topologies: mesh).
//
// Like Valiant and NegativeFirst it is a pure registry algorithm: fault
// absorptions hand the header to the unchanged SW-Based planner, and a
// message that has been absorbed once (Faulted) follows the planner's
// deterministic e-cube path, so delivery in connected fault patterns
// carries over without core edits.
type PlanarAdaptive struct {
	*Algorithm
}

// NewPlanarAdaptive builds planar-adaptive routing over the deterministic
// SW-Based base on a non-wrapping network. V >= 3: one VC bank per role
// (first-dimension, increasing, decreasing).
func NewPlanarAdaptive(t topology.Network, f *fault.Set, v int) (*PlanarAdaptive, error) {
	if t.Wraps() {
		return nil, fmt.Errorf("routing: planar-adaptive requires a non-wrapping (mesh) topology, got %s", t)
	}
	if v < 3 {
		return nil, fmt.Errorf("routing: planar-adaptive needs V >= 3 (first/increasing/decreasing banks), got %d", v)
	}
	base, err := NewDeterministic(t, f, v)
	if err != nil {
		return nil, err
	}
	return &PlanarAdaptive{Algorithm: base}, nil
}

// Name identifies the algorithm in reports.
func (pa *PlanarAdaptive) Name() string { return "planar-adaptive" }

// planarBanks splits V virtual channels into the three planar-adaptive
// banks: first-dimension [0, f), increasing [f, f+s), decreasing [f+s, v),
// each of size >= 1 for v >= 3 with the spare channels going to the
// first-dimension bank (it carries every message's mandatory progress).
func planarBanks(v int) (firstHi, incHi int) {
	s := v / 3
	return v - 2*s, v - s
}

// planarDims returns the two dimensions of the message's current adaptive
// plane: d0 the lowest uncorrected dimension, d1 the next (or -1), with
// their minimal directions. ok is false at the target.
func planarDims(t topology.Network, cur, target topology.NodeID) (d0 int, dir0 topology.Dir, d1 int, dir1 topology.Dir, ok bool) {
	d0, d1 = -1, -1
	for d := 0; d < t.N(); d++ {
		o := t.RingOffset(t.Coord(cur, d), t.Coord(target, d))
		if o == 0 {
			continue
		}
		dir := topology.Plus
		if o < 0 {
			dir = topology.Minus
		}
		if d0 < 0 {
			d0, dir0 = d, dir
		} else {
			d1, dir1 = d, dir
			break
		}
	}
	return d0, dir0, d1, dir1, d0 >= 0
}

// Route computes the planar-adaptive decision for msg's head flit at cur.
// Messages that have been absorbed (Faulted) defer to the deterministic
// base so the planner's header rewrites are honoured.
func (pa *PlanarAdaptive) Route(cur topology.NodeID, m *message.Message) Decision {
	if cur == m.Dst {
		return Decision{Outcome: Deliver}
	}
	if cur == m.Target() {
		return Decision{Outcome: ViaArrived}
	}
	if m.Faulted {
		return pa.Algorithm.Route(cur, m)
	}
	d0, dir0, d1, dir1, ok := planarDims(pa.t, cur, m.Target())
	if !ok {
		// Defensive: the Target checks above make this unreachable.
		return Decision{Outcome: ViaArrived}
	}
	firstHi, incHi := planarBanks(pa.v)
	var dec Decision
	dec.Outcome = Progress
	if port := topology.PortFor(d0, dir0); !pa.f.LinkFaulty(cur, port) {
		for vc := 0; vc < firstHi; vc++ {
			dec.Preferred = append(dec.Preferred, CandidateVC{Port: port, VC: vc})
		}
	}
	if d1 >= 0 {
		if port := topology.PortFor(d1, dir1); !pa.f.LinkFaulty(cur, port) {
			lo, hi := firstHi, incHi // increasing bank: travelling +d0
			if dir0 == topology.Minus {
				lo, hi = incHi, pa.v // decreasing bank
			}
			for vc := lo; vc < hi; vc++ {
				dec.Preferred = append(dec.Preferred, CandidateVC{Port: port, VC: vc})
			}
		}
	}
	if len(dec.Preferred) == 0 {
		// Every plane channel leads to a fault: absorb and let the
		// messaging layer replan around the region.
		return Decision{Outcome: AbsorbFault, BlockedDim: d0, BlockedDir: dir0}
	}
	return dec
}

func init() {
	Register(Info{
		Name:        "planar-adaptive",
		MinV:        3,
		Description: "Chien&Kim planar-adaptive (sliding 2-D plane, inc/dec VC banks) over SW-Based routing",
		Aliases:     []string{"planar"},
		Topologies:  []string{"mesh"},
	}, func(t topology.Network, f *fault.Set, v int) (Router, error) {
		return NewPlanarAdaptive(t, f, v)
	})
}
