package routing

import (
	"repro/internal/fault"
	"repro/internal/message"
	"repro/internal/topology"
)

// Planner is the messaging-layer half of Software-Based routing: it rewrites
// the header of an absorbed message so that, once re-injected, the message
// follows an alternative path around the fault region (paper §4 and
// assumption (i)).
//
// The paper summarises the decision tables as: "When a message encounters a
// fault, it is first re-routed in the same dimension in the opposite
// direction. If another fault is encountered, the message is routed in an
// orthogonal dimension in an attempt to route around the faulty regions."
// Planner realises that as three escalating tables:
//
//	T1 (reverse):    first fault in dimension d travelling s — force
//	                 direction -s in d (the torus ring reaches the same
//	                 coordinate the other way around).
//	T2 (orthogonal): repeated fault in d — consult the coalesced region of
//	                 the blocking node and set an intermediate destination
//	                 in the plane-partner dimension just clearing the
//	                 region's extent.
//	T3 (history):    the per-message absorption history bounds livelock:
//	                 when the heuristics run out, compute an exact detour
//	                 (breadth-first search in the current 2-D plane, falling
//	                 back to the full healthy network) and install it as a
//	                 chain of intermediate destinations. T3 is what makes
//	                 delivery guaranteed for any fault pattern that does not
//	                 disconnect the network (assumption (h)).
//
// All intermediate destinations are realised as absorb-and-reinject stops,
// so every in-network worm is a plain e-cube worm: the channel dependency
// graph stays acyclic exactly as in the 2-D proof the paper inherits.
type Planner struct {
	t   topology.Network
	f   *fault.Set
	idx *fault.Index
	// escalateAfter bounds the heuristic phase: once a message has been
	// absorbed more than this many times, Plan goes straight to the exact
	// detour. The paper notes livelock freedom "depends on the location and
	// shape of the fault patterns"; this is the history table (T3) bound
	// that turns that caveat into a guarantee. Zero means DefaultEscalation.
	escalateAfter int
}

// DefaultEscalation is the default absorption count after which the exact
// planner takes over from the reverse/orthogonal heuristics. T1 uses one
// absorption and each T2 detour one more; six tries covers every benign
// pattern in the paper while bounding pathological concave combinations.
const DefaultEscalation = 6

// NewPlanner builds a planner for the given topology and fault
// configuration. Algorithm embeds one; standalone construction is exposed
// for tests and analysis tools.
func NewPlanner(t topology.Network, f *fault.Set, idx *fault.Index) *Planner {
	if idx == nil {
		idx = fault.NewIndex(f)
	}
	return &Planner{t: t, f: f, idx: idx}
}

// partner returns the orthogonal dimension paired with d by the SW-Based-nD
// pairwise plane discipline (the loop "for i = 1..n-1: route2D(dim i, dim
// i+1)"): the successor dimension, except for the last dimension whose
// partner is its predecessor. Returns -1 for 1-dimensional networks.
func partner(d, n int) int {
	if n < 2 {
		return -1
	}
	if d+1 < n {
		return d + 1
	}
	return d - 1
}

// maxRun is the longest straight run installed per via-chain segment. On a
// torus it is strictly less than k/2 so the minimal-direction rule
// reproduces the intended direction exactly; a mesh line has a unique
// direction, so whole-line runs are safe.
func (p *Planner) maxRun() int {
	if !p.t.Wraps() {
		return p.t.K() - 1
	}
	return (p.t.K() - 1) / 2
}

// escalation is the absorption count past which Plan skips the heuristics
// and installs an exact detour immediately.
func (p *Planner) escalation() int {
	if p.escalateAfter > 0 {
		return p.escalateAfter
	}
	return DefaultEscalation
}

// Plan rewrites m's header after absorption at cur, where the move along
// (blockedDim, blockedDir) led to a fault. It reports false when no route
// exists (the fault pattern disconnects cur from the destination, which
// assumption (h) excludes); the caller should then drop the message.
func (p *Planner) Plan(cur topology.NodeID, m *message.Message, blockedDim int, blockedDir topology.Dir) bool {
	m.Faulted = true
	m.Absorptions++

	if m.Absorptions > p.escalation() {
		return p.planExact(cur, m)
	}

	d, s := blockedDim, blockedDir
	// T1: reverse within the same dimension. Reversal relies on the ring
	// closing — the opposite way around reaches the same coordinate — so it
	// is skipped entirely on non-wrapping topologies (mesh), where walking
	// away from the target can only end at a dead edge.
	if p.t.Wraps() && !m.Reversed[d] {
		m.Reversed[d] = true
		m.DirOverride[d] = s.Opposite()
		if !p.f.LinkFaulty(cur, topology.PortFor(d, s.Opposite())) {
			return true
		}
		// Both directions blocked right here: escalate immediately.
	}
	// T2: orthogonal detour around the blocking region.
	o := partner(d, p.t.N())
	if o >= 0 && p.orthoDetour(cur, m, d, s, o) {
		return true
	}
	// T3: exact in-plane detour, then whole-network fallback.
	if o >= 0 && p.planePath(cur, m, d, o) {
		return true
	}
	return p.planExact(cur, m)
}

// orthoDetour implements table T2: install an intermediate destination that
// steers the message around the blocking region through the plane-partner
// dimension o.
//
// The via's o-coordinate sits just past the region's extent in o (nearer
// side first). Its d-coordinate depends on the e-cube dimension order:
//
//   - o > d (the blocked dimension is corrected first): the via keeps the
//     current d-coordinate. After the via pops, the d-walk resumes in the
//     cleared o-row.
//
//   - o < d (the partner is corrected first, e.g. blocked in the plane's
//     second dimension): the via must also advance past the region in d,
//     otherwise e-cube walks o straight back and re-blocks — the message
//     sidesteps into the cleared o-column, rides it past the region in d,
//     and only then returns in o.
//
// The original direction in d is re-imposed so the message continues past
// the region the way it was going.
func (p *Planner) orthoDetour(cur topology.NodeID, m *message.Message, d int, s topology.Dir, o int) bool {
	k := p.t.K()
	blocking := p.t.Neighbor(cur, d, s)
	if blocking < 0 {
		// The blocked move points off a mesh edge: there is no region to
		// steer around, only the heuristics' dead end. Defer to T3.
		return false
	}
	var ivO, ivD fault.Interval
	if reg := p.idx.Of(blocking); reg != nil {
		ivO = reg.Extent(o)
		ivD = reg.Extent(d)
	} else {
		// Pure link fault: the "region" is the blocking endpoint alone.
		ivO = fault.Interval{Lo: p.t.Coord(cur, o), Hi: p.t.Coord(cur, o)}
		c := p.t.Coord(blocking, d)
		ivD = fault.Interval{Lo: c, Hi: c}
	}
	if ivO.Len(k) >= k || ivD.Len(k) >= k {
		return false // region spans a whole ring; the heuristic can't clear it
	}
	dCoord := p.t.Coord(cur, d)
	if o < d {
		// Ride past the region in d within the cleared column.
		if s == topology.Plus {
			dCoord = (ivD.Hi + 1) % k
		} else {
			dCoord = (ivD.Lo - 1 + k) % k
		}
	}
	rowAboveHi := (ivO.Hi + 1) % k
	rowBelowLo := (ivO.Lo - 1 + k) % k
	curRow := p.t.Coord(cur, o)
	rows := []int{rowAboveHi, rowBelowLo}
	if p.t.RingDist(curRow, rowBelowLo) < p.t.RingDist(curRow, rowAboveHi) {
		rows[0], rows[1] = rows[1], rows[0]
	}
	savedDir := m.DirOverride[d]
	savedRev := m.Reversed[d]
	for _, row := range rows {
		coords := p.t.Coords(cur)
		coords[o] = row
		coords[d] = dCoord
		via := p.t.FromCoords(coords)
		if via == cur || p.f.NodeFaulty(via) {
			continue
		}
		// Check the exact walk the router will take under the overrides as
		// they will be at re-injection.
		m.DirOverride[d] = s
		m.Reversed[d] = true
		path := p.segmentPath(cur, via, &m.DirOverride)
		if path == nil || !p.f.PathFaultFree(path, true) {
			m.DirOverride[d] = savedDir
			m.Reversed[d] = savedRev
			continue
		}
		m.PushVia(via)
		return true
	}
	return false
}

// segmentPath simulates the deterministic router from 'from' to 'to' under
// the given direction overrides and returns the node sequence, or nil if the
// walk fails to converge (defensive; cannot happen with consistent state).
func (p *Planner) segmentPath(from, to topology.NodeID, override *[message.MaxDims]topology.Dir) []topology.NodeID {
	path := []topology.NodeID{from}
	cur := from
	limit := p.t.N()*p.t.K() + 1
	for cur != to {
		dim, dir, ok := detNextMove(p.t, cur, to, override)
		if !ok {
			return nil
		}
		if !p.t.HasLink(cur, dim, dir) {
			return nil // override walked off a mesh edge: no such path
		}
		cur = p.t.Neighbor(cur, dim, dir)
		path = append(path, cur)
		if len(path) > limit {
			return nil
		}
	}
	return path
}

// planePath implements the in-plane half of table T3: an exact shortest
// detour within the 2-D plane spanned by (d, o) through cur, targeting the
// projection of the message's target onto the plane.
func (p *Planner) planePath(cur topology.NodeID, m *message.Message, d, o int) bool {
	target := m.Target()
	coords := p.t.Coords(cur)
	coords[d] = p.t.Coord(target, d)
	coords[o] = p.t.Coord(target, o)
	proj := p.t.FromCoords(coords)
	if p.f.NodeFaulty(proj) {
		return false
	}
	if proj == cur {
		return false
	}
	pl := topology.PlaneOf(p.t, cur, d, o)
	path := p.bfs(cur, proj, func(id topology.NodeID) bool { return pl.Contains(id) })
	if path == nil {
		return false
	}
	p.installChain(m, path)
	return true
}

// planExact is the whole-network half of T3: discard accumulated header
// state and install an exact fault-free route to the final destination.
func (p *Planner) planExact(cur topology.NodeID, m *message.Message) bool {
	m.Via = m.Via[:0]
	path := p.bfs(cur, m.Dst, func(topology.NodeID) bool { return true })
	if path == nil {
		return false
	}
	p.installChain(m, path)
	return true
}

// bfs finds a shortest healthy path cur -> goal over non-faulty links,
// restricted to nodes satisfying admit. Returns nil when unreachable.
func (p *Planner) bfs(cur, goal topology.NodeID, admit func(topology.NodeID) bool) []topology.NodeID {
	if p.f.NodeFaulty(goal) {
		return nil
	}
	if goal == cur {
		return []topology.NodeID{cur}
	}
	prev := make(map[topology.NodeID]topology.NodeID)
	prev[cur] = cur
	queue := []topology.NodeID{cur}
	found := false
	for len(queue) > 0 && !found {
		head := queue[0]
		queue = queue[1:]
		for pt := 0; pt < p.t.Degree() && !found; pt++ {
			port := topology.Port(pt)
			if p.f.LinkFaulty(head, port) {
				continue
			}
			nb := p.t.Neighbor(head, port.Dim(), port.Dir())
			if !admit(nb) || p.f.NodeFaulty(nb) {
				continue
			}
			if _, seen := prev[nb]; !seen {
				prev[nb] = head
				queue = append(queue, nb)
				found = nb == goal
			}
		}
	}
	if !found {
		return nil
	}
	// Reconstruct.
	var rev []topology.NodeID
	for at := goal; ; at = prev[at] {
		rev = append(rev, at)
		if at == cur {
			break
		}
	}
	path := make([]topology.NodeID, len(rev))
	for i := range rev {
		path[i] = rev[len(rev)-1-i]
	}
	return path
}

// installChain converts an explicit node path into a stack of intermediate
// destinations: one via per straight-run corner, runs capped at maxRun so
// each segment is strictly minimal and the deterministic router reproduces
// the path exactly. Accumulated direction overrides are discarded — the
// chain supersedes the heuristics that produced them.
func (p *Planner) installChain(m *message.Message, path []topology.NodeID) {
	for i := range m.DirOverride {
		m.DirOverride[i] = 0
		m.Reversed[i] = false
	}
	var corners []topology.NodeID
	runDim, runLen := -1, 0
	for i := 1; i < len(path); i++ {
		dim := -1
		for dd := 0; dd < p.t.N(); dd++ {
			if p.t.Coord(path[i-1], dd) != p.t.Coord(path[i], dd) {
				dim = dd
				break
			}
		}
		if dim != runDim || runLen >= p.maxRun() {
			if i > 1 {
				corners = append(corners, path[i-1])
			}
			runDim, runLen = dim, 0
		}
		runLen++
	}
	corners = append(corners, path[len(path)-1])
	// Push in reverse so the first corner ends up on top of the stack.
	for i := len(corners) - 1; i >= 0; i-- {
		if corners[i] == m.Dst {
			continue
		}
		m.PushVia(corners[i])
	}
}
