package routing

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/message"
	"repro/internal/rng"
	"repro/internal/topology"
)

func TestWalkFaultFreeMatchesDistance(t *testing.T) {
	tor := topology.New(8, 2)
	fs := fault.NewSet(tor)
	a := mustDet(t, tor, fs, 4)
	src := tor.FromCoords([]int{0, 0})
	dst := tor.FromCoords([]int{3, 6})
	m := message.New(1, src, dst, 16, 2, message.Deterministic, 0)
	res := Walk(a, m, 1000)
	if !res.Delivered {
		t.Fatal("not delivered")
	}
	if res.Hops != tor.Distance(src, dst) {
		t.Fatalf("hops = %d, want minimal %d", res.Hops, tor.Distance(src, dst))
	}
	if res.Stops != 0 || res.Absorptions != 0 {
		t.Fatal("stops in a fault-free walk")
	}
}

// The paper's livelock-freedom claim, made exhaustive: for every random
// connected fault pattern tried, every healthy ordered pair delivers with
// a small bounded number of software stops.
func TestAnalyzeLivelockBounded(t *testing.T) {
	tor := topology.New(8, 2)
	for seed := uint64(0); seed < 6; seed++ {
		nf := 3 + int(seed)
		fs, err := fault.Random(tor, nf, rng.New(100+seed), fault.DefaultRandomOptions())
		if err != nil {
			continue
		}
		for _, adaptive := range []bool{false, true} {
			var a *Algorithm
			if adaptive {
				a = mustAdap(t, tor, fs, 4)
			} else {
				a = mustDet(t, tor, fs, 4)
			}
			rep := AnalyzeLivelock(a, 16, 0)
			if rep.Undelivered != 0 {
				t.Fatalf("seed %d nf=%d adaptive=%v: %d pairs undelivered",
					seed, nf, adaptive, rep.Undelivered)
			}
			// The T3 escalation bound (6) plus the via chain caps stops.
			if rep.MaxStops > 20 {
				t.Fatalf("seed %d nf=%d adaptive=%v: max stops %d (%v)",
					seed, nf, adaptive, rep.MaxStops, rep)
			}
			if rep.Pairs != (64-nf)*(64-nf-1) {
				t.Fatalf("pair count %d wrong", rep.Pairs)
			}
		}
	}
}

func TestAnalyzeLivelockRegionWorseThanRandom(t *testing.T) {
	tor := topology.New(8, 2)
	// Concave U region: the worst-case stop count must exceed the
	// fault-free case (0) and stay bounded.
	fs := fault.NewSet(tor)
	if _, err := fault.StampShape(fs, 0, 0, 1, fault.PaperFig5Specs()["U-shaped"]); err != nil {
		t.Fatal(err)
	}
	a := mustDet(t, tor, fs, 4)
	rep := AnalyzeLivelock(a, 16, 0)
	if rep.Undelivered != 0 {
		t.Fatalf("undelivered pairs: %v", rep)
	}
	if rep.MaxStops < 1 {
		t.Fatal("U region caused no stops at all")
	}
	if rep.MeanHops < rep.MeanHops*0 { // sanity on numeric fields
		t.Fatal("impossible")
	}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
}

func TestWalkUnroutableReportsUndelivered(t *testing.T) {
	// Disconnect a node deliberately (bypassing the injector) and confirm
	// the walk reports failure rather than spinning.
	tor := topology.New(4, 2)
	fs := fault.NewSet(tor)
	for _, c := range [][]int{{1, 0}, {3, 0}, {0, 1}, {0, 3}} {
		fs.MarkNode(tor.FromCoords(c))
	}
	if !fs.Disconnects() {
		t.Fatal("premise: (0,0) should be isolated")
	}
	a := mustDet(t, tor, fs, 4)
	m := message.New(1, tor.FromCoords([]int{0, 0}), tor.FromCoords([]int{2, 2}), 8, 2, message.Deterministic, 0)
	res := Walk(a, m, 2000)
	if res.Delivered {
		t.Fatal("delivered across a disconnection")
	}
}
