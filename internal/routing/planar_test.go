package routing

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/message"
	"repro/internal/rng"
	"repro/internal/topology"
)

// TestPlanarAdaptiveTurnOrder checks the defining planar invariant on a
// fault-free mesh: every hop advances the lowest uncorrected dimension d0
// or the next uncorrected dimension d1 — never a dimension above the
// current plane — d1 hops ride the correct increasing/decreasing VC bank,
// and paths stay minimal.
func TestPlanarAdaptiveTurnOrder(t *testing.T) {
	msh := topology.NewMesh(4, 3)
	f := fault.NewSet(msh)
	alg, err := NewPlanarAdaptive(msh, f, 3)
	if err != nil {
		t.Fatal(err)
	}
	firstHi, incHi := planarBanks(3)
	r := rng.New(7)
	for s := 0; s < msh.Nodes(); s++ {
		for d := 0; d < msh.Nodes(); d++ {
			if s == d {
				continue
			}
			src, dst := topology.NodeID(s), topology.NodeID(d)
			m := message.New(0, src, dst, 4, msh.N(), alg.BaseMode(), 0)
			cur := src
			hops := 0
			for cur != dst {
				d0, dir0, d1, _, ok := planarDims(msh, cur, dst)
				if !ok {
					t.Fatalf("%d->%d: planarDims failed before arrival at %d", s, d, cur)
				}
				dec := alg.Route(cur, m)
				if dec.Outcome != Progress {
					t.Fatalf("%d->%d: unexpected outcome %v at %d", s, d, dec.Outcome, cur)
				}
				c := dec.Preferred[r.Intn(len(dec.Preferred))]
				switch c.Port.Dim() {
				case d0:
					if c.VC >= firstHi {
						t.Fatalf("%d->%d: d0 hop on non-first bank VC %d", s, d, c.VC)
					}
				case d1:
					wantLo, wantHi := firstHi, incHi
					if dir0 == topology.Minus {
						wantLo, wantHi = incHi, 3
					}
					if c.VC < wantLo || c.VC >= wantHi {
						t.Fatalf("%d->%d: d1 hop (dir0 %v) on VC %d, want bank [%d,%d)",
							s, d, dir0, c.VC, wantLo, wantHi)
					}
				default:
					t.Fatalf("%d->%d: hop in dim %d outside plane (%d,%d)", s, d, c.Port.Dim(), d0, d1)
				}
				next := msh.Neighbor(cur, c.Port.Dim(), c.Port.Dir())
				if next < 0 {
					t.Fatalf("%d->%d: hop off the mesh edge at %d via %v", s, d, cur, c.Port)
				}
				if msh.Distance(next, dst) != msh.Distance(cur, dst)-1 {
					t.Fatalf("%d->%d: non-minimal hop at %d via %v", s, d, cur, c.Port)
				}
				cur = next
				hops++
				if hops > msh.Nodes() {
					t.Fatalf("%d->%d: walk did not terminate", s, d)
				}
			}
			if want := msh.Distance(src, dst); hops != want {
				t.Fatalf("%d->%d: %d hops, minimal distance %d", s, d, hops, want)
			}
		}
	}
}

// TestPlanarAdaptiveFaultFreeWalks drives the registry-level executable
// semantics: every pair delivered with zero software stops and minimal hop
// counts in a fault-free 8x8 mesh.
func TestPlanarAdaptiveFaultFreeWalks(t *testing.T) {
	msh := topology.NewMesh(8, 2)
	f := fault.NewSet(msh)
	alg, err := New("planar-adaptive", msh, f, 4)
	if err != nil {
		t.Fatal(err)
	}
	rep := AnalyzeLivelock(alg, 8, 0)
	if rep.Undelivered != 0 {
		t.Fatalf("fault-free undelivered pairs: %v", rep)
	}
	if rep.MaxStops != 0 {
		t.Fatalf("fault-free software stops: %v", rep)
	}
}

// TestPlanarAdaptiveFaultedWalks proves the SW-Based planner carries over
// to the mesh: with random (connected) fault patterns, every healthy pair
// must still be delivered within the walker's budget — no livelock, no
// drops, and no wraparound shortcuts to lean on.
func TestPlanarAdaptiveFaultedWalks(t *testing.T) {
	for _, seed := range []uint64{3, 11, 29} {
		msh := topology.NewMesh(8, 2)
		f, err := fault.Random(msh, 5, rng.New(seed), fault.DefaultRandomOptions())
		if err != nil {
			t.Fatal(err)
		}
		alg, err := New("planar", msh, f, 4) // alias on purpose
		if err != nil {
			t.Fatal(err)
		}
		rep := AnalyzeLivelock(alg, 8, 0)
		if rep.Undelivered != 0 {
			t.Fatalf("seed %d: undelivered pairs with faults: %v", seed, rep)
		}
	}
}

// TestPlanarAdaptiveRejectsTorus pins the declared topology support: both
// the constructor and the registry must refuse wrapping networks.
func TestPlanarAdaptiveRejectsTorus(t *testing.T) {
	tor := topology.New(8, 2)
	f := fault.NewSet(tor)
	if _, err := NewPlanarAdaptive(tor, f, 4); err == nil {
		t.Fatal("constructor accepted a torus")
	}
	if _, err := New("planar-adaptive", tor, f, 4); err == nil {
		t.Fatal("registry accepted a torus")
	}
}
