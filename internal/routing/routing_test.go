package routing

import (
	"testing"
	"testing/quick"

	"repro/internal/fault"
	"repro/internal/message"
	"repro/internal/rng"
	"repro/internal/topology"
)

// walk drives a message through the network one hop at a time with no
// contention: Route decides, the walker applies the move, via stops and
// absorptions run the planner exactly as the engine's messaging layer would.
// It returns (hops, softwareStops, delivered).
func walk(tb testing.TB, a *Algorithm, m *message.Message, maxSteps int) (int, int, bool) {
	tb.Helper()
	cur := m.Src
	hops, stops := 0, 0
	for step := 0; step < maxSteps; step++ {
		dec := a.Route(cur, m)
		switch dec.Outcome {
		case Deliver:
			return hops, stops, true
		case ViaArrived:
			m.PopViasAt(cur)
			m.ResetForReinjection()
			stops++
		case AbsorbFault:
			if !a.Plan(cur, m, dec.BlockedDim, dec.BlockedDir) {
				tb.Fatalf("planner found no route at node %d for %v", cur, m)
			}
			m.ResetForReinjection()
			stops++
		case Progress:
			if len(dec.Preferred) == 0 && len(dec.Fallback) == 0 {
				tb.Fatalf("progress with no candidates at node %d", cur)
			}
			cand := dec.Preferred
			if len(cand) == 0 {
				cand = dec.Fallback
			}
			port := cand[0].Port
			if a.Faults().LinkFaulty(cur, port) {
				tb.Fatalf("router chose faulty channel %v at node %d", port, cur)
			}
			if a.Topology().WrapsAround(a.Topology().Coord(cur, port.Dim()), port.Dir()) {
				m.Crossed[port.Dim()] = true
			}
			next := a.Topology().Neighbor(cur, port.Dim(), port.Dir())
			if a.Faults().NodeFaulty(next) {
				tb.Fatalf("router sent message into faulty node %d", next)
			}
			cur = next
			hops++
		}
	}
	return hops, stops, false
}

func mustDet(tb testing.TB, t *topology.Torus, f *fault.Set, v int) *Algorithm {
	tb.Helper()
	a, err := NewDeterministic(t, f, v)
	if err != nil {
		tb.Fatal(err)
	}
	return a
}

func mustAdap(tb testing.TB, t *topology.Torus, f *fault.Set, v int) *Algorithm {
	tb.Helper()
	a, err := NewAdaptive(t, f, v)
	if err != nil {
		tb.Fatal(err)
	}
	return a
}

func TestConstructorValidation(t *testing.T) {
	tor := topology.New(8, 2)
	f := fault.NewSet(tor)
	if _, err := NewDeterministic(tor, f, 1); err == nil {
		t.Error("V=1 deterministic accepted")
	}
	if _, err := NewAdaptive(tor, f, 2); err == nil {
		t.Error("V=2 adaptive accepted")
	}
	if a, err := NewDeterministic(tor, f, 2); err != nil || a.Name() != "sw-based-deterministic" || a.Adaptive() {
		t.Error("V=2 deterministic rejected or misnamed")
	}
	if a, err := NewAdaptive(tor, f, 3); err != nil || a.Name() != "sw-based-adaptive" || !a.Adaptive() {
		t.Error("V=3 adaptive rejected or misnamed")
	}
}

func TestDetVCSplit(t *testing.T) {
	for _, tc := range []struct{ v, lo0, hi0, lo1, hi1 int }{
		{2, 0, 1, 1, 2},
		{4, 0, 2, 2, 4},
		{6, 0, 3, 3, 6},
		{10, 0, 5, 5, 10},
		{5, 0, 3, 3, 5},
	} {
		lo, hi := detVCs(tc.v, 0)
		if lo != tc.lo0 || hi != tc.hi0 {
			t.Errorf("V=%d class0 = [%d,%d), want [%d,%d)", tc.v, lo, hi, tc.lo0, tc.hi0)
		}
		lo, hi = detVCs(tc.v, 1)
		if lo != tc.lo1 || hi != tc.hi1 {
			t.Errorf("V=%d class1 = [%d,%d), want [%d,%d)", tc.v, lo, hi, tc.lo1, tc.hi1)
		}
	}
}

// In a fault-free network, deterministic SW-Based routing follows exactly
// the e-cube path (paper §2: "the behaviour ... is identical to
// dimension-order (e-cube) routing").
func TestFaultFreeDetIsEcube(t *testing.T) {
	tor := topology.New(8, 3)
	f := fault.NewSet(tor)
	a := mustDet(t, tor, f, 4)
	r := rng.New(1)
	for trial := 0; trial < 200; trial++ {
		src := topology.NodeID(r.Intn(tor.Nodes()))
		dst := topology.NodeID(r.Intn(tor.Nodes()))
		if src == dst {
			continue
		}
		m := message.New(uint64(trial), src, dst, 32, tor.N(), message.Deterministic, 0)
		want := tor.EcubePath(src, dst)
		cur := src
		for i := 1; i < len(want); i++ {
			dec := a.Route(cur, m)
			if dec.Outcome != Progress {
				t.Fatalf("unexpected outcome %v at hop %d", dec.Outcome, i)
			}
			port := dec.Preferred[0].Port
			next := tor.Neighbor(cur, port.Dim(), port.Dir())
			if next != want[i] {
				t.Fatalf("hop %d: got %v want %v", i, tor.Coords(next), tor.Coords(want[i]))
			}
			if tor.WrapsAround(tor.Coord(cur, port.Dim()), port.Dir()) {
				m.Crossed[port.Dim()] = true
			}
			cur = next
		}
		if dec := a.Route(cur, m); dec.Outcome != Deliver {
			t.Fatalf("at destination outcome = %v", dec.Outcome)
		}
		if m.Absorptions != 0 {
			t.Fatal("fault-free walk absorbed")
		}
	}
}

func TestDatelineClassSelection(t *testing.T) {
	tor := topology.New(8, 2)
	f := fault.NewSet(tor)
	a := mustDet(t, tor, f, 4)
	// Hop 7 -> 0 in dim 0 is the dateline crossing: class 1 VCs {2,3}.
	src := tor.FromCoords([]int{7, 0})
	dst := tor.FromCoords([]int{1, 0})
	m := message.New(1, src, dst, 8, 2, message.Deterministic, 0)
	dec := a.Route(src, m)
	if dec.Outcome != Progress {
		t.Fatalf("outcome %v", dec.Outcome)
	}
	for _, c := range dec.Preferred {
		if c.VC < 2 {
			t.Fatalf("dateline-crossing hop offered class-0 VC %d", c.VC)
		}
	}
	// After crossing, class 1 persists.
	m.Crossed[0] = true
	at := tor.FromCoords([]int{0, 0})
	dec = a.Route(at, m)
	for _, c := range dec.Preferred {
		if c.VC < 2 {
			t.Fatalf("post-crossing hop offered class-0 VC %d", c.VC)
		}
	}
	// A fresh message before the dateline gets class 0.
	m2 := message.New(2, tor.FromCoords([]int{1, 0}), tor.FromCoords([]int{3, 0}), 8, 2, message.Deterministic, 0)
	dec = a.Route(m2.Src, m2)
	for _, c := range dec.Preferred {
		if c.VC >= 2 {
			t.Fatalf("pre-dateline hop offered class-1 VC %d", c.VC)
		}
	}
}

func TestAdaptiveCandidatesMinimalAndHealthy(t *testing.T) {
	tor := topology.New(8, 2)
	f := fault.NewSet(tor)
	a := mustAdap(t, tor, f, 6)
	src := tor.FromCoords([]int{0, 0})
	dst := tor.FromCoords([]int{2, 3})
	m := message.New(1, src, dst, 8, 2, message.Adaptive, 0)
	dec := a.Route(src, m)
	if dec.Outcome != Progress {
		t.Fatalf("outcome %v", dec.Outcome)
	}
	// Profitable ports: d0+ and d1+. Adaptive VCs are 2..5 on each => 8.
	if len(dec.Preferred) != 8 {
		t.Fatalf("preferred count = %d, want 8", len(dec.Preferred))
	}
	for _, c := range dec.Preferred {
		if c.VC < adaptiveLowTorus {
			t.Errorf("adaptive candidate on escape VC %d", c.VC)
		}
		if c.Port.Dir() != topology.Plus {
			t.Errorf("non-minimal direction offered: %v", c.Port)
		}
	}
	// Escape on the e-cube move d0+, class 0.
	if len(dec.Fallback) != 1 || dec.Fallback[0].Port != topology.PortFor(0, topology.Plus) || dec.Fallback[0].VC != escapeVC0 {
		t.Fatalf("fallback = %+v", dec.Fallback)
	}
}

func TestAdaptiveBothMinimal(t *testing.T) {
	tor := topology.New(8, 2)
	f := fault.NewSet(tor)
	a := mustAdap(t, tor, f, 4)
	src := tor.FromCoords([]int{0, 0})
	dst := tor.FromCoords([]int{4, 0}) // offset 4 on k=8: both directions minimal
	m := message.New(1, src, dst, 8, 2, message.Adaptive, 0)
	dec := a.Route(src, m)
	ports := map[topology.Port]bool{}
	for _, c := range dec.Preferred {
		ports[c.Port] = true
	}
	if !ports[topology.PortFor(0, topology.Plus)] || !ports[topology.PortFor(0, topology.Minus)] {
		t.Fatalf("both-minimal directions not both offered: %+v", dec.Preferred)
	}
}

func TestDetAbsorbOnFault(t *testing.T) {
	tor := topology.New(8, 2)
	f := fault.NewSet(tor)
	blocker := tor.FromCoords([]int{2, 0})
	f.MarkNode(blocker)
	a := mustDet(t, tor, f, 4)
	src := tor.FromCoords([]int{1, 0})
	dst := tor.FromCoords([]int{4, 0})
	m := message.New(1, src, dst, 8, 2, message.Deterministic, 0)
	dec := a.Route(src, m)
	if dec.Outcome != AbsorbFault {
		t.Fatalf("outcome = %v, want absorb", dec.Outcome)
	}
	if dec.BlockedDim != 0 || dec.BlockedDir != topology.Plus {
		t.Fatalf("blocked move = (%d,%v)", dec.BlockedDim, dec.BlockedDir)
	}
}

func TestAdaptiveAbsorbOnlyWhenAllMinimalFaulty(t *testing.T) {
	tor := topology.New(8, 2)
	f := fault.NewSet(tor)
	// Message at (0,0) to (2,3): block d0+ only; adaptive must still progress via d1+.
	f.MarkNode(tor.FromCoords([]int{1, 0}))
	a := mustAdap(t, tor, f, 4)
	src := tor.FromCoords([]int{0, 0})
	dst := tor.FromCoords([]int{2, 3})
	m := message.New(1, src, dst, 8, 2, message.Adaptive, 0)
	dec := a.Route(src, m)
	if dec.Outcome != Progress {
		t.Fatalf("outcome = %v, want progress around the fault", dec.Outcome)
	}
	for _, c := range dec.Preferred {
		if c.Port.Dim() == 0 {
			t.Error("faulty d0+ offered as candidate")
		}
	}
	// Now block d1+ too: every minimal path faulty -> absorb.
	f2 := fault.NewSet(tor)
	f2.MarkNode(tor.FromCoords([]int{1, 0}))
	f2.MarkNode(tor.FromCoords([]int{0, 1}))
	a2 := mustAdap(t, tor, f2, 4)
	m2 := message.New(2, src, dst, 8, 2, message.Adaptive, 0)
	if dec := a2.Route(src, m2); dec.Outcome != AbsorbFault {
		t.Fatalf("outcome = %v, want absorb when all minimal faulty", dec.Outcome)
	}
}

func TestPlanT1Reversal(t *testing.T) {
	tor := topology.New(8, 2)
	f := fault.NewSet(tor)
	f.MarkNode(tor.FromCoords([]int{2, 0}))
	a := mustDet(t, tor, f, 4)
	src := tor.FromCoords([]int{1, 0})
	dst := tor.FromCoords([]int{4, 0})
	m := message.New(1, src, dst, 8, 2, message.Deterministic, 0)
	if ok := a.Plan(src, m, 0, topology.Plus); !ok {
		t.Fatal("plan failed")
	}
	if !m.Faulted || m.Absorptions != 1 {
		t.Error("fault bookkeeping wrong")
	}
	if m.DirOverride[0] != topology.Minus || !m.Reversed[0] {
		t.Fatalf("T1 did not reverse: override=%v reversed=%v", m.DirOverride[0], m.Reversed[0])
	}
	// The reversed walk must now deliver (1 -> 0 -> 7 -> 6 -> 5 -> 4).
	hops, _, ok := walk(t, a, m, 100)
	if !ok {
		t.Fatal("reversed message not delivered")
	}
	if hops != 5 {
		t.Fatalf("reversed path hops = %d, want 5", hops)
	}
}

func TestPlanT2OrthogonalDetour(t *testing.T) {
	tor := topology.New(8, 2)
	f := fault.NewSet(tor)
	// Vertical bar blocking column x=2, rows y in [0..2]; message along y=1.
	for y := 0; y <= 2; y++ {
		f.MarkNode(tor.FromCoords([]int{2, y}))
	}
	a := mustDet(t, tor, f, 4)
	src := tor.FromCoords([]int{1, 1})
	dst := tor.FromCoords([]int{5, 1})
	m := message.New(1, src, dst, 8, 2, message.Deterministic, 0)
	// Simulate: already reversed once in dim 0 (both sides blocked story);
	// force T2 by marking Reversed.
	m.Reversed[0] = true
	if ok := a.Plan(src, m, 0, topology.Plus); !ok {
		t.Fatal("plan failed")
	}
	if len(m.Via) == 0 {
		t.Fatal("T2 installed no via")
	}
	via := m.Target()
	// Via must clear the region's y-extent [0,2]: y=3 (above hi, nearer) and
	// keep x=1.
	if tor.Coord(via, 0) != 1 {
		t.Errorf("via x = %d, want 1", tor.Coord(via, 0))
	}
	if y := tor.Coord(via, 1); y != 3 && y != 7 {
		t.Errorf("via y = %d, want 3 (or 7)", y)
	}
	if m.DirOverride[0] != topology.Plus {
		t.Error("T2 should re-impose the original direction in the blocked dim")
	}
	_, _, ok := walk(t, a, m, 200)
	if !ok {
		t.Fatal("detoured message not delivered")
	}
}

func TestPlanConcaveUPocket(t *testing.T) {
	tor := topology.New(8, 2)
	f := fault.NewSet(tor)
	// U-shape opening towards -x: message heading +x into the pocket.
	if _, err := fault.StampShape(f, 0, 0, 1, fault.ShapeSpec{Shape: fault.ShapeU, A: 3, B: 3, AnchorA: 3, AnchorB: 2}); err != nil {
		t.Fatal(err)
	}
	a := mustDet(t, tor, f, 4)
	// Destination (4,3) sits inside the pocket (healthy, reachable only from
	// +y); the minimal +x approach from (0,3) hits the left arm at (3,3).
	src := tor.FromCoords([]int{0, 3})
	dst := tor.FromCoords([]int{4, 3})
	m := message.New(1, src, dst, 8, 2, message.Deterministic, 0)
	hops, stops, ok := walk(t, a, m, 500)
	if !ok {
		t.Fatal("message trapped by concave region")
	}
	if stops == 0 {
		t.Fatal("expected at least one software stop")
	}
	if hops < tor.Distance(src, dst) {
		t.Fatalf("hops %d below minimal distance", hops)
	}
}

// The central delivery property: for random connected fault patterns and
// random healthy (src, dst) pairs, both modes always deliver, never visit a
// faulty node, and never exceed a generous step bound.
func TestPropertyDeliveryUnderRandomFaults(t *testing.T) {
	tors := []*topology.Torus{topology.New(8, 2), topology.New(8, 3), topology.New(4, 4)}
	if err := quick.Check(func(seed uint64, nfRaw, pick uint8, adaptive bool) bool {
		tor := tors[int(pick)%len(tors)]
		r := rng.New(seed)
		nf := int(nfRaw) % 13
		fs, err := fault.Random(tor, nf, r, fault.DefaultRandomOptions())
		if err != nil {
			return true // impossible placement; skip
		}
		var a *Algorithm
		if adaptive {
			a = mustAdap(t, tor, fs, 4)
		} else {
			a = mustDet(t, tor, fs, 4)
		}
		healthy := fs.HealthyNodes()
		src := healthy[r.Intn(len(healthy))]
		dst := healthy[r.Intn(len(healthy))]
		if src == dst {
			return true
		}
		mode := message.Deterministic
		if adaptive {
			mode = message.Adaptive
		}
		m := message.New(1, src, dst, 32, tor.N(), mode, 0)
		_, _, ok := walk(t, a, m, 20*tor.Nodes())
		return ok
	}, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Via-stop bookkeeping: reaching an intermediate destination reports
// ViaArrived, and after popping the message continues to the final
// destination.
func TestViaArrivedFlow(t *testing.T) {
	tor := topology.New(8, 2)
	f := fault.NewSet(tor)
	a := mustDet(t, tor, f, 4)
	src := tor.FromCoords([]int{0, 0})
	dst := tor.FromCoords([]int{4, 4})
	via := tor.FromCoords([]int{0, 2})
	m := message.New(1, src, dst, 8, 2, message.Deterministic, 0)
	m.PushVia(via)
	cur := src
	sawVia := false
	for steps := 0; steps < 100; steps++ {
		dec := a.Route(cur, m)
		if dec.Outcome == Deliver {
			if cur != dst {
				t.Fatal("delivered at wrong node")
			}
			if !sawVia {
				t.Fatal("delivery without passing via")
			}
			return
		}
		if dec.Outcome == ViaArrived {
			if cur != via {
				t.Fatalf("via stop at %v, want %v", tor.Coords(cur), tor.Coords(via))
			}
			sawVia = true
			m.PopViasAt(cur)
			m.ResetForReinjection()
			continue
		}
		port := dec.Preferred[0].Port
		cur = tor.Neighbor(cur, port.Dim(), port.Dir())
	}
	t.Fatal("never delivered")
}

func TestPartner(t *testing.T) {
	for _, tc := range []struct{ d, n, want int }{
		{0, 2, 1}, {1, 2, 0},
		{0, 3, 1}, {1, 3, 2}, {2, 3, 1},
		{0, 1, -1},
		{3, 4, 2},
	} {
		if got := partner(tc.d, tc.n); got != tc.want {
			t.Errorf("partner(%d,%d) = %d, want %d", tc.d, tc.n, got, tc.want)
		}
	}
}

func TestPlannerExactFallbackRespectsFaults(t *testing.T) {
	tor := topology.New(8, 2)
	f := fault.NewSet(tor)
	// Dense wall with a single gap at y=6: heuristics will struggle; the
	// exact planner must thread the gap.
	for y := 0; y < 6; y++ {
		f.MarkNode(tor.FromCoords([]int{4, y}))
	}
	f.MarkNode(tor.FromCoords([]int{4, 7}))
	if f.Disconnects() {
		t.Fatal("test premise broken: wall disconnects")
	}
	a := mustDet(t, tor, f, 4)
	src := tor.FromCoords([]int{2, 0})
	dst := tor.FromCoords([]int{6, 0})
	m := message.New(1, src, dst, 8, 2, message.Deterministic, 0)
	_, _, ok := walk(t, a, m, 1000)
	if !ok {
		t.Fatal("message not delivered through the gap")
	}
}

func TestOutcomeString(t *testing.T) {
	for o, want := range map[Outcome]string{
		Progress: "progress", Deliver: "deliver", ViaArrived: "via", AbsorbFault: "absorb",
	} {
		if o.String() != want {
			t.Errorf("%v", o)
		}
	}
}
