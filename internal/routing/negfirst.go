package routing

import (
	"repro/internal/fault"
	"repro/internal/message"
	"repro/internal/topology"
)

// NegativeFirst is the negative-first turn-model routing discipline
// realised over the Software-Based machinery: a message first takes every
// minimal hop whose ring direction is negative (in ascending dimension
// order), then every positive hop. Forbidding the positive→negative turns
// is what makes the turn model deadlock-free in meshes; on the torus the
// per-dimension dateline virtual-channel classes handle the wraparound
// edges exactly as they do for e-cube.
//
// Like Valiant, it is a pure registry algorithm: fault absorptions hand
// the header to the unchanged SW-Based planner, and a message that has
// been absorbed once (Faulted) follows the planner's deterministic e-cube
// path with its direction overrides — so the fault-tolerance and delivery
// guarantees of the base scheme carry over without core edits.
type NegativeFirst struct {
	*Algorithm
}

// NewNegativeFirst builds negative-first routing over the deterministic
// SW-Based base (V >= 2 for the torus dateline classes).
func NewNegativeFirst(t topology.Network, f *fault.Set, v int) (*NegativeFirst, error) {
	base, err := NewDeterministic(t, f, v)
	if err != nil {
		return nil, err
	}
	return &NegativeFirst{Algorithm: base}, nil
}

// Name identifies the algorithm in reports.
func (nf *NegativeFirst) Name() string { return "negative-first" }

// negFirstMove returns the next negative-first minimal move from cur
// towards target: the first dimension (ascending) whose minimal direction
// is Minus, else the first needing Plus. ok is false at the target.
func negFirstMove(t topology.Network, cur, target topology.NodeID) (dim int, dir topology.Dir, ok bool) {
	posDim := -1
	for d := 0; d < t.N(); d++ {
		c, tc := t.Coord(cur, d), t.Coord(target, d)
		if c == tc {
			continue
		}
		if t.RingOffset(c, tc) < 0 {
			return d, topology.Minus, true
		}
		if posDim < 0 {
			posDim = d
		}
	}
	if posDim < 0 {
		return 0, 0, false
	}
	return posDim, topology.Plus, true
}

// Route computes the negative-first decision for msg's head flit at cur.
// Messages that have been absorbed (Faulted) defer to the deterministic
// base so the planner's direction overrides and via chains are honoured.
func (nf *NegativeFirst) Route(cur topology.NodeID, m *message.Message) Decision {
	if cur == m.Dst {
		return Decision{Outcome: Deliver}
	}
	if cur == m.Target() {
		return Decision{Outcome: ViaArrived}
	}
	if m.Faulted {
		return nf.Algorithm.Route(cur, m)
	}
	dim, dir, ok := negFirstMove(nf.t, cur, m.Target())
	if !ok {
		// Defensive: the Target checks above make this unreachable.
		return Decision{Outcome: ViaArrived}
	}
	port := topology.PortFor(dim, dir)
	if nf.f.LinkFaulty(cur, port) {
		return Decision{Outcome: AbsorbFault, BlockedDim: dim, BlockedDir: dir}
	}
	class := nf.datelineClass(cur, m, dim, dir)
	lo, hi := nf.detVCRange(class)
	d := Decision{Outcome: Progress, Preferred: make([]CandidateVC, 0, hi-lo)}
	for vc := lo; vc < hi; vc++ {
		d.Preferred = append(d.Preferred, CandidateVC{Port: port, VC: vc})
	}
	return d
}

func init() {
	Register(Info{
		Name:        "negative-first",
		MinV:        2,
		MinVNoWrap:  1,
		Description: "turn-model negative-first (all minus-direction hops before plus) over SW-Based routing",
		Aliases:     []string{"negfirst"},
	}, func(t topology.Network, f *fault.Set, v int) (Router, error) {
		return NewNegativeFirst(t, f, v)
	})
}
