package routing

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/message"
	"repro/internal/rng"
	"repro/internal/topology"
)

func TestRegistryUnknownName(t *testing.T) {
	tor := topology.New(4, 2)
	f := fault.NewSet(tor)
	_, err := New("no-such-algorithm", tor, f, 4)
	if err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if !strings.Contains(err.Error(), "unknown algorithm") {
		t.Fatalf("error does not identify the problem: %v", err)
	}
	// The error must tell the user what IS available.
	if !strings.Contains(err.Error(), "det") {
		t.Fatalf("error does not list registered algorithms: %v", err)
	}
}

func TestRegistryDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(Info{Name: "det", MinV: 2}, func(tor topology.Network, f *fault.Set, v int) (Router, error) {
		return NewDeterministic(tor, f, v)
	})
}

func TestRegistryNilFactoryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil factory did not panic")
		}
	}()
	Register(Info{Name: "test-nil-factory", MinV: 2}, nil)
}

func TestRegistryAliases(t *testing.T) {
	tor := topology.New(4, 2)
	f := fault.NewSet(tor)
	for alias, want := range map[string]string{
		"deterministic":          "sw-based-deterministic",
		"sw-based-deterministic": "sw-based-deterministic",
		"duato":                  "sw-based-adaptive",
	} {
		r, err := New(alias, tor, f, 4)
		if err != nil {
			t.Fatalf("alias %q: %v", alias, err)
		}
		if r.Name() != want {
			t.Fatalf("alias %q resolved to %q, want %q", alias, r.Name(), want)
		}
	}
}

// testNetFor returns a network the algorithm declares support for: the
// torus by default, a same-sized mesh for mesh-only algorithms.
func testNetFor(info Info, k, n int) topology.Network {
	if info.Supports("torus") {
		return topology.New(k, n)
	}
	return topology.NewMesh(k, n)
}

func TestRegistryMinVEnforced(t *testing.T) {
	for _, info := range Algorithms() {
		net := testNetFor(info, 4, 2)
		f := fault.NewSet(net)
		if _, err := New(info.Name, net, f, info.MinV-1); err == nil {
			t.Errorf("%s: V=%d below MinV=%d accepted", info.Name, info.MinV-1, info.MinV)
		}
		r, err := New(info.Name, net, f, info.MinV)
		if err != nil {
			t.Errorf("%s: V=MinV=%d rejected: %v", info.Name, info.MinV, err)
			continue
		}
		if r.V() != info.MinV {
			t.Errorf("%s: V() = %d, want %d", info.Name, r.V(), info.MinV)
		}
	}
}

// TestRegistryAllRouteFaultFree is the registry's executable contract:
// every registered algorithm must route every (src, dst) pair of a
// fault-free 8-ary 2-grid of a topology it supports to delivery within
// the walker's step budget (no livelock), with zero fault absorptions.
func TestRegistryAllRouteFaultFree(t *testing.T) {
	for _, info := range Algorithms() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			net := testNetFor(info, 8, 2)
			f := fault.NewSet(net)
			v := info.MinV
			if v < 4 {
				v = 4
			}
			a, err := New(info.Name, net, f, v)
			if err != nil {
				t.Fatal(err)
			}
			rep := AnalyzeLivelock(a, 16, 0)
			if rep.Pairs == 0 {
				t.Fatal("no pairs walked")
			}
			if rep.Undelivered > 0 {
				t.Fatalf("%d/%d pairs undelivered (livelock): worst %d->%d",
					rep.Undelivered, rep.Pairs, rep.WorstSrc, rep.WorstDst)
			}
			// Fault-free, no algorithm may absorb; two-phase algorithms may
			// stop once at their intermediate destination, the base ones not
			// at all.
			maxStops := 0
			if strings.HasPrefix(info.Name, "valiant") {
				maxStops = 1
			}
			if rep.MaxStops > maxStops {
				t.Fatalf("max stops %d > %d in a fault-free network", rep.MaxStops, maxStops)
			}
		})
	}
}

// TestRegistryAllRouteWithFaults repeats the contract under a connected
// random fault pattern: every registered algorithm must still deliver
// every healthy pair (the SW-Based planner guarantees this for any
// non-disconnecting pattern).
func TestRegistryAllRouteWithFaults(t *testing.T) {
	for _, info := range Algorithms() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			net := testNetFor(info, 8, 2)
			f := mustRandomFaults(t, net, 5, 9)
			v := info.MinV
			if v < 4 {
				v = 4
			}
			a, err := New(info.Name, net, f, v)
			if err != nil {
				t.Fatal(err)
			}
			rep := AnalyzeLivelock(a, 16, 0)
			if rep.Undelivered > 0 {
				t.Fatalf("%d/%d pairs undelivered: worst %d->%d",
					rep.Undelivered, rep.Pairs, rep.WorstSrc, rep.WorstDst)
			}
		})
	}
}

// TestValiantDetourInstalledOnce drives one message header through the
// valiant algorithm and checks the detour discipline: the intermediate is
// pushed exactly once, survives re-walks, and differs across message IDs.
func TestValiantDetourInstalledOnce(t *testing.T) {
	tor := topology.New(8, 2)
	f := fault.NewSet(tor)
	va, err := NewValiant(tor, f, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := topology.NodeID(0), topology.NodeID(27)
	m := message.New(7, src, dst, 16, tor.N(), va.BaseMode(), 0)
	va.Route(src, m)
	viasAfterFirst := len(m.Via)
	if !m.Detoured {
		t.Fatal("Detoured not set by first Route")
	}
	va.Route(src, m)
	if len(m.Via) != viasAfterFirst {
		t.Fatalf("second Route changed the via stack: %d -> %d", viasAfterFirst, len(m.Via))
	}
	// Different IDs should (overwhelmingly) spread across intermediates.
	seen := make(map[topology.NodeID]bool)
	for id := uint64(0); id < 32; id++ {
		mm := message.New(id, src, dst, 16, tor.N(), va.BaseMode(), 0)
		va.Route(src, mm)
		if len(mm.Via) > 0 {
			seen[mm.Via[len(mm.Via)-1]] = true
		}
	}
	if len(seen) < 8 {
		t.Fatalf("32 messages hit only %d distinct intermediates", len(seen))
	}
}

func mustRandomFaults(t *testing.T, tor topology.Network, nf int, seed uint64) *fault.Set {
	t.Helper()
	fs, err := fault.Random(tor, nf, rng.New(seed), fault.DefaultRandomOptions())
	if err != nil {
		t.Fatal(err)
	}
	return fs
}
