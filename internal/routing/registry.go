package routing

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/fault"
	"repro/internal/message"
	"repro/internal/topology"
)

// Router is the pluggable routing-algorithm interface. Everything the
// engine, the walker, and the sweep façade need from an algorithm goes
// through it, so new algorithms plug in by registration alone:
//
//   - Route is the per-hop router-hardware decision for a head flit;
//   - Plan is the messaging-layer rewrite after a fault absorption;
//   - Name/V identify the configured instance in reports;
//   - BaseMode is the message-header routing discipline injected worms
//     start in (it parameterises the traffic generator);
//   - Topology/Faults expose the bound network for analysis tools.
//
// Algorithms are built against any registered topology.Network; an
// algorithm that only supports some topology families declares them in
// Info.Topologies and New rejects the rest.
//
// Implementations must be stateless with respect to messages (all
// per-message state lives in the header) so a single-threaded engine and
// the exhaustive walkers can share one instance.
type Router interface {
	Route(cur topology.NodeID, m *message.Message) Decision
	Plan(cur topology.NodeID, m *message.Message, blockedDim int, blockedDir topology.Dir) bool
	Name() string
	V() int
	BaseMode() message.Mode
	Topology() topology.Network
	Faults() *fault.Set
}

// EscalationSetter is an optional capability: algorithms built on the
// Software-Based planner expose the heuristic-phase bound as an ablation
// knob (see Planner.escalateAfter).
type EscalationSetter interface {
	SetEscalation(n int)
}

// FaultRefresher is an optional capability: algorithms that precompute
// state from the fault set (region index, healthy-node lists) rebuild it
// here after a dynamic fault transition mutates the set. The engine calls
// it at the serial transition point, once per algorithm instance, on every
// state-changing transition.
type FaultRefresher interface {
	RefreshFaults()
}

// Factory builds a configured Router bound to one topology, fault set and
// virtual-channel count. Factories validate v themselves (and anything
// else they need) so New surfaces per-algorithm errors directly.
type Factory func(t topology.Network, f *fault.Set, v int) (Router, error)

// Info describes a registered algorithm for listings and validation.
type Info struct {
	// Name is the primary registry key.
	Name string
	// MinV is the smallest legal virtual-channel count (on wrapping
	// topologies, where the dateline VC classes apply).
	MinV int
	// MinVNoWrap is the smallest legal count on non-wrapping topologies
	// (mesh), where dropping the dateline classes usually frees one VC;
	// 0 means the same as MinV.
	MinVNoWrap int
	// Description is a one-line summary for -list style output.
	Description string
	// Aliases are additional keys resolving to the same factory.
	Aliases []string
	// Topologies lists the topology kinds (topology.Network.Kind values)
	// the algorithm supports; empty means every registered topology.
	Topologies []string
}

// MinVFor returns the smallest legal virtual-channel count on the given
// network: MinVNoWrap on non-wrapping topologies when declared, MinV
// otherwise.
func (i Info) MinVFor(t topology.Network) int {
	if !t.Wraps() && i.MinVNoWrap > 0 {
		return i.MinVNoWrap
	}
	return i.MinV
}

// Supports reports whether the algorithm runs on the given topology kind.
func (i Info) Supports(kind string) bool {
	if len(i.Topologies) == 0 {
		return true
	}
	for _, k := range i.Topologies {
		if k == kind {
			return true
		}
	}
	return false
}

type regEntry struct {
	info    Info
	factory Factory
}

var (
	regMu      sync.RWMutex
	registry   = make(map[string]*regEntry) // primary name and aliases -> entry
	regPrimary []string                     // primary names, registration order
)

// Register adds an algorithm to the registry under info.Name and every
// alias. It panics on a duplicate key or a nil factory — registration
// happens in package init functions where a panic is a build-time bug.
func Register(info Info, factory Factory) {
	if info.Name == "" {
		panic("routing: Register with empty name")
	}
	if factory == nil {
		panic(fmt.Sprintf("routing: Register(%q) with nil factory", info.Name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	e := &regEntry{info: info, factory: factory}
	for _, key := range append([]string{info.Name}, info.Aliases...) {
		if _, dup := registry[key]; dup {
			panic(fmt.Sprintf("routing: duplicate registration of algorithm %q", key))
		}
		registry[key] = e
	}
	regPrimary = append(regPrimary, info.Name)
}

// New builds the registered algorithm called name (primary or alias) over
// the given topology, fault set and virtual-channel count. Unknown names
// report the available set; algorithms that declare supported topologies
// reject networks outside them.
func New(name string, t topology.Network, f *fault.Set, v int) (Router, error) {
	regMu.RLock()
	e, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("routing: unknown algorithm %q (registered: %v)", name, Names())
	}
	if !e.info.Supports(t.Kind()) {
		return nil, fmt.Errorf("routing: algorithm %q supports topologies %v, not %q",
			name, e.info.Topologies, t.Kind())
	}
	return e.factory(t, f, v)
}

// Lookup returns the Info for a registered name (primary or alias).
func Lookup(name string) (Info, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := registry[name]
	if !ok {
		return Info{}, false
	}
	return e.info, true
}

// Names returns the primary registered algorithm names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := append([]string(nil), regPrimary...)
	sort.Strings(out)
	return out
}

// Algorithms returns the Info of every registered algorithm, sorted by
// primary name.
func Algorithms() []Info {
	regMu.RLock()
	out := make([]Info, 0, len(regPrimary))
	for _, name := range regPrimary {
		out = append(out, registry[name].info)
	}
	regMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func init() {
	Register(Info{
		Name:        "det",
		MinV:        2,
		MinVNoWrap:  1,
		Description: "SW-Based-nD over dimension-order (e-cube) deterministic routing",
		Aliases:     []string{"deterministic", "sw-based-deterministic"},
	}, func(t topology.Network, f *fault.Set, v int) (Router, error) {
		return NewDeterministic(t, f, v)
	})
	Register(Info{
		Name:        "adaptive",
		MinV:        3,
		MinVNoWrap:  2,
		Description: "SW-Based-nD over Duato-protocol fully adaptive routing",
		Aliases:     []string{"duato", "sw-based-adaptive"},
	}, func(t topology.Network, f *fault.Set, v int) (Router, error) {
		return NewAdaptive(t, f, v)
	})
	Register(Info{
		Name:        "valiant",
		MinV:        2,
		MinVNoWrap:  1,
		Description: "Valiant two-phase load balancing over deterministic SW-Based routing",
	}, func(t topology.Network, f *fault.Set, v int) (Router, error) {
		return NewValiant(t, f, v, false)
	})
	Register(Info{
		Name:        "valiant-adaptive",
		MinV:        3,
		MinVNoWrap:  2,
		Description: "Valiant two-phase load balancing over adaptive SW-Based routing",
	}, func(t topology.Network, f *fault.Set, v int) (Router, error) {
		return NewValiant(t, f, v, true)
	})
}
