package routing

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/message"
	"repro/internal/rng"
	"repro/internal/topology"
)

// TestNegativeFirstTurnOrder checks the defining turn-model invariant on a
// fault-free torus: along every walked path, no negative-direction hop
// ever follows a positive-direction hop, and paths stay minimal.
func TestNegativeFirstTurnOrder(t *testing.T) {
	tor := topology.New(6, 2)
	f := fault.NewSet(tor)
	alg, err := NewNegativeFirst(tor, f, 2)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < tor.Nodes(); s++ {
		for d := 0; d < tor.Nodes(); d++ {
			if s == d {
				continue
			}
			src, dst := topology.NodeID(s), topology.NodeID(d)
			m := message.New(0, src, dst, 4, tor.N(), alg.BaseMode(), 0)
			cur := src
			hops, seenPlus := 0, false
			for cur != dst {
				dec := alg.Route(cur, m)
				if dec.Outcome != Progress {
					t.Fatalf("%d->%d: unexpected outcome %v at %d", s, d, dec.Outcome, cur)
				}
				port := dec.Preferred[0].Port
				if port.Dir() == topology.Minus && seenPlus {
					t.Fatalf("%d->%d: negative hop after positive hop at %d", s, d, cur)
				}
				if port.Dir() == topology.Plus {
					seenPlus = true
				}
				if tor.WrapsAround(tor.Coord(cur, port.Dim()), port.Dir()) {
					m.Crossed[port.Dim()] = true
				}
				cur = tor.Neighbor(cur, port.Dim(), port.Dir())
				hops++
				if hops > tor.Nodes() {
					t.Fatalf("%d->%d: walk did not terminate", s, d)
				}
			}
			if want := tor.Distance(src, dst); hops != want {
				t.Fatalf("%d->%d: %d hops, minimal distance %d", s, d, hops, want)
			}
		}
	}
}

// TestNegativeFirstFaultFreeWalks drives the registry-level executable
// semantics: every pair delivered with zero software stops and minimal
// hop counts in a fault-free 8-ary 2-cube.
func TestNegativeFirstFaultFreeWalks(t *testing.T) {
	tor := topology.New(8, 2)
	f := fault.NewSet(tor)
	alg, err := New("negative-first", tor, f, 4)
	if err != nil {
		t.Fatal(err)
	}
	rep := AnalyzeLivelock(alg, 8, 0)
	if rep.Undelivered != 0 {
		t.Fatalf("fault-free undelivered pairs: %v", rep)
	}
	if rep.MaxStops != 0 {
		t.Fatalf("fault-free software stops: %v", rep)
	}
}

// TestNegativeFirstFaultedWalks proves the SW-Based planner carries over:
// with random (connected) fault patterns, every healthy pair must still be
// delivered within the walker's budget — no livelock, no drops.
func TestNegativeFirstFaultedWalks(t *testing.T) {
	for _, seed := range []uint64{3, 11, 29} {
		tor := topology.New(8, 2)
		f, err := fault.Random(tor, 6, rng.New(seed), fault.DefaultRandomOptions())
		if err != nil {
			t.Fatal(err)
		}
		alg, err := New("negfirst", tor, f, 4) // alias on purpose
		if err != nil {
			t.Fatal(err)
		}
		rep := AnalyzeLivelock(alg, 8, 0)
		if rep.Undelivered != 0 {
			t.Fatalf("seed %d: undelivered pairs with faults: %v", seed, rep)
		}
	}
}
