// Package routing implements the routing algorithms of Safaei et al.
// (IPDPS 2006): dimension-order (e-cube) deterministic routing, Duato's
// Protocol fully adaptive routing, and on top of both the Software-Based
// fault-tolerant routing scheme extended to n-dimensional tori
// (SW-Based-nD).
//
// The split of responsibilities mirrors the paper's architecture:
//
//   - Route is the *router hardware*: a per-hop decision for the head flit.
//     It knows only the local channel fault states and the message header.
//     In a fault-free network it behaves exactly like e-cube (deterministic
//     mode) or Duato's fully adaptive protocol (adaptive mode).
//
//   - Plan is the *messaging layer software*: invoked when a message has
//     been absorbed because its outgoing channel leads to a fault. It
//     rewrites the header (direction reversal, orthogonal detours via
//     intermediate destinations) following the three-table scheme summarised
//     in the paper, and the message is then re-injected with priority.
//
// Messages route towards their current Target (top intermediate destination
// or final destination). Reaching an intermediate destination ejects the
// message to the local messaging layer, which pops the via and re-injects:
// every in-network worm therefore follows a plain e-cube (or plain Duato)
// path, which is what keeps the channel dependency graph acyclic (§4,
// "Deadlock freedom") — see internal/deadlock for the mechanical check.
package routing

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/message"
	"repro/internal/topology"
)

// Outcome classifies the router's decision for a head flit.
type Outcome uint8

const (
	// Progress: the message can request the listed output virtual channels.
	Progress Outcome = iota
	// Deliver: the head is at its final destination; eject to the PE.
	Deliver
	// ViaArrived: the head is at an intermediate destination; eject to the
	// messaging layer, pop the via, re-inject.
	ViaArrived
	// AbsorbFault: every usable outgoing channel leads to a fault; eject to
	// the messaging layer and invoke Plan (Software-Based rerouting).
	AbsorbFault
)

// String returns the outcome's short lower-case name as used in event
// traces ("progress", "deliver", "via", "absorb").
func (o Outcome) String() string {
	switch o {
	case Progress:
		return "progress"
	case Deliver:
		return "deliver"
	case ViaArrived:
		return "via"
	case AbsorbFault:
		return "absorb"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// CandidateVC is one (output port, virtual channel) pair a head flit may
// request.
type CandidateVC struct {
	Port topology.Port
	VC   int
}

// Decision is the routing function's verdict for a head flit at a node.
type Decision struct {
	Outcome Outcome
	// Preferred virtual channels (adaptive channels for adaptive mode; the
	// dateline-classed channels for deterministic mode). The engine picks
	// uniformly at random among the free ones (paper assumption (e)).
	Preferred []CandidateVC
	// Fallback channels tried only when no Preferred channel is free: the
	// escape channel of Duato's protocol. Empty in deterministic mode.
	Fallback []CandidateVC
	// BlockedDim/BlockedDir describe the e-cube move that was blocked when
	// Outcome == AbsorbFault; they seed the rerouting planner.
	BlockedDim int
	BlockedDir topology.Dir
}

// Algorithm is a configured routing function bound to one topology, fault
// configuration and virtual-channel count. It is stateless with respect to
// messages (all per-message state lives in the header), but Route returns
// Decisions whose candidate slices alias per-Algorithm scratch storage
// (reused call to call so the hot path never allocates): a Decision is
// valid only until the next Route call on the same Algorithm, and one
// Algorithm must not be shared across concurrently running engines. The
// single-threaded engine and the test suite both consume each Decision
// before deciding again.
type Algorithm struct {
	t        topology.Network
	f        *fault.Set
	idx      *fault.Index
	v        int
	adaptive bool
	// wraps caches t.Wraps(): with wraparound links the dateline VC-class
	// discipline applies (two banks, two escape channels); without them
	// (mesh) every VC collapses into a single class.
	wraps   bool
	planner *Planner
	// pref/fall back the Preferred/Fallback slices of the Decision under
	// construction; see the aliasing contract above.
	pref, fall []CandidateVC
}

// NewDeterministic returns the SW-Based-nD algorithm over deterministic
// (e-cube) base routing. V is the number of virtual channels per physical
// channel; wrapping topologies (torus) require at least 2 for the dateline
// classes, meshes at least 1.
func NewDeterministic(t topology.Network, f *fault.Set, v int) (*Algorithm, error) {
	min := 1
	if t.Wraps() {
		min = 2
	}
	if v < min {
		return nil, fmt.Errorf("routing: deterministic routing on %s needs V >= %d, got %d", t, min, v)
	}
	return newAlgorithm(t, f, v, false), nil
}

// NewAdaptive returns the SW-Based-nD algorithm over Duato-protocol fully
// adaptive base routing. Wrapping topologies (torus) need V >= 3: two
// escape channels (dateline classes) plus at least one adaptive channel;
// meshes need V >= 2 (single escape channel).
func NewAdaptive(t topology.Network, f *fault.Set, v int) (*Algorithm, error) {
	min := 2
	if t.Wraps() {
		min = 3
	}
	if v < min {
		return nil, fmt.Errorf("routing: adaptive routing on %s needs V >= %d, got %d", t, min, v)
	}
	return newAlgorithm(t, f, v, true), nil
}

func newAlgorithm(t topology.Network, f *fault.Set, v int, adaptive bool) *Algorithm {
	a := &Algorithm{t: t, f: f, idx: fault.NewIndex(f), v: v, adaptive: adaptive, wraps: t.Wraps()}
	a.planner = &Planner{t: t, f: f, idx: a.idx}
	return a
}

// SetEscalation overrides the planner's heuristic-phase bound: after this
// many absorptions a message's next plan is computed exactly. Values < 1
// restore the default. Used by the ablation benchmarks.
func (a *Algorithm) SetEscalation(n int) { a.planner.escalateAfter = n }

// RefreshFaults rebuilds the fault-region index after a dynamic transition
// mutated the shared fault set (see fault.View). The planner holds the
// same index, so both re-derive their view of the regions together.
func (a *Algorithm) RefreshFaults() {
	a.idx = fault.NewIndex(a.f)
	a.planner.idx = a.idx
}

// Name identifies the algorithm in reports.
func (a *Algorithm) Name() string {
	if a.adaptive {
		return "sw-based-adaptive"
	}
	return "sw-based-deterministic"
}

// Adaptive reports whether the base routing is Duato fully adaptive.
func (a *Algorithm) Adaptive() bool { return a.adaptive }

// BaseMode returns the header mode injected messages start in.
func (a *Algorithm) BaseMode() message.Mode {
	if a.adaptive {
		return message.Adaptive
	}
	return message.Deterministic
}

// V returns the configured virtual channel count per physical channel.
func (a *Algorithm) V() int { return a.v }

// Topology returns the bound network.
func (a *Algorithm) Topology() topology.Network { return a.t }

// Faults returns the bound fault configuration.
func (a *Algorithm) Faults() *fault.Set { return a.f }

// detVCs returns the virtual channels of the given dateline class for
// deterministic routing: the V channels are split into two banks,
// class 0 = [0, ceil(V/2)), class 1 = [ceil(V/2), V).
func detVCs(v, class int) (lo, hi int) {
	half := (v + 1) / 2
	if class == 0 {
		return 0, half
	}
	return half, v
}

// detVCRange returns the usable deterministic-mode VC bank for a dateline
// class on this algorithm's topology. Non-wrapping networks have no
// dateline, so the split disappears and every VC is usable — the mesh
// dividend of dropping the wraparound VC-class requirement.
func (a *Algorithm) detVCRange(class int) (lo, hi int) {
	if !a.wraps {
		return 0, a.v
	}
	return detVCs(a.v, class)
}

// adaptiveLow returns the first fully adaptive VC index: above the two
// dateline escape channels on wrapping topologies, above the single escape
// channel on meshes.
func (a *Algorithm) adaptiveLow() int {
	if !a.wraps {
		return 1
	}
	return adaptiveLowTorus
}

// Escape channel indices for adaptive routing on wrapping topologies:
// VC 0 carries dateline class 0, VC 1 class 1; VCs [2, V) are fully
// adaptive. Meshes have a single escape channel (VC 0) and adapt on [1, V).
const (
	escapeVC0        = 0
	escapeVC1        = 1
	adaptiveLowTorus = 2
)

// datelineClass computes the dateline virtual-channel class for a hop from
// cur along (dim, dir): class 1 on and after the wraparound crossing.
func (a *Algorithm) datelineClass(cur topology.NodeID, m *message.Message, dim int, dir topology.Dir) int {
	if m.Crossed[dim] || a.t.WrapsAround(a.t.Coord(cur, dim), dir) {
		return 1
	}
	return 0
}

// detNextMove returns the e-cube move (first unfinished dimension in
// increasing order) from cur towards target, honouring per-dimension
// direction overrides from the rerouting tables (nil means no overrides).
// ok is false when cur equals target.
func detNextMove(t topology.Network, cur, target topology.NodeID, override *[message.MaxDims]topology.Dir) (dim int, dir topology.Dir, ok bool) {
	for d := 0; d < t.N(); d++ {
		c, tc := t.Coord(cur, d), t.Coord(target, d)
		if c == tc {
			continue
		}
		if override != nil && override[d] != 0 {
			return d, override[d], true
		}
		if o := t.RingOffset(c, tc); o < 0 {
			return d, topology.Minus, true
		}
		return d, topology.Plus, true
	}
	return 0, 0, false
}

// Route computes the routing decision for msg's head flit at node cur.
func (a *Algorithm) Route(cur topology.NodeID, m *message.Message) Decision {
	if cur == m.Dst {
		return Decision{Outcome: Deliver}
	}
	if cur == m.Target() {
		return Decision{Outcome: ViaArrived}
	}
	if a.adaptive && !m.Faulted {
		return a.routeAdaptive(cur, m)
	}
	return a.routeDeterministic(cur, m)
}

func (a *Algorithm) routeDeterministic(cur topology.NodeID, m *message.Message) Decision {
	dim, dir, ok := detNextMove(a.t, cur, m.Target(), &m.DirOverride)
	if !ok {
		// Defensive: Target checks above make this unreachable.
		return Decision{Outcome: ViaArrived}
	}
	port := topology.PortFor(dim, dir)
	if a.f.LinkFaulty(cur, port) {
		return Decision{Outcome: AbsorbFault, BlockedDim: dim, BlockedDir: dir}
	}
	class := a.datelineClass(cur, m, dim, dir)
	lo, hi := a.detVCRange(class)
	a.pref = a.pref[:0]
	for vc := lo; vc < hi; vc++ {
		a.pref = append(a.pref, CandidateVC{Port: port, VC: vc})
	}
	return Decision{Outcome: Progress, Preferred: a.pref}
}

func (a *Algorithm) routeAdaptive(cur topology.NodeID, m *message.Message) Decision {
	target := m.Target()
	var dec Decision
	dec.Outcome = Progress
	dec.Preferred = a.pref[:0]
	anyProfitable := false
	// Adaptive channels on every healthy minimal-progress port.
	for d := 0; d < a.t.N(); d++ {
		c, tc := a.t.Coord(cur, d), a.t.Coord(target, d)
		if c == tc {
			continue
		}
		o := a.t.RingOffset(c, tc)
		dirs := make([]topology.Dir, 0, 2)
		if o > 0 {
			dirs = append(dirs, topology.Plus)
		} else {
			dirs = append(dirs, topology.Minus)
		}
		if a.t.BothMinimal(cur, target, d) {
			dirs = append(dirs, dirs[0].Opposite())
		}
		for _, dir := range dirs {
			port := topology.PortFor(d, dir)
			if a.f.LinkFaulty(cur, port) {
				continue
			}
			anyProfitable = true
			for vc := a.adaptiveLow(); vc < a.v; vc++ {
				dec.Preferred = append(dec.Preferred, CandidateVC{Port: port, VC: vc})
			}
		}
	}
	// Escape channel: the e-cube move, if healthy.
	edim, edir, ok := detNextMove(a.t, cur, target, nil)
	if ok {
		eport := topology.PortFor(edim, edir)
		if !a.f.LinkFaulty(cur, eport) {
			vc := escapeVC0
			if a.datelineClass(cur, m, edim, edir) == 1 {
				vc = escapeVC1
			}
			a.fall = append(a.fall[:0], CandidateVC{Port: eport, VC: vc})
			dec.Fallback = a.fall
			anyProfitable = true
		}
		if !anyProfitable {
			// "...a message is delivered to the current node when all
			// available paths are faulty" (§5).
			return Decision{Outcome: AbsorbFault, BlockedDim: edim, BlockedDir: edir}
		}
	}
	a.pref = dec.Preferred
	return dec
}

// Plan invokes the messaging-layer rerouting planner for a message absorbed
// at cur because its move along (blockedDim, blockedDir) leads to a fault.
// The header is rewritten in place; the caller re-injects the message. It
// reports false when no route exists (fault pattern disconnects the
// destination), in which case the caller should drop the message.
func (a *Algorithm) Plan(cur topology.NodeID, m *message.Message, blockedDim int, blockedDir topology.Dir) bool {
	return a.planner.Plan(cur, m, blockedDim, blockedDir)
}
