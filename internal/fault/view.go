package fault

import (
	"fmt"

	"repro/internal/topology"
)

// Transition is one fault-state change of a dynamic run: a node or link
// failing or healing at a cycle. Link transitions always act on the
// bidirectional physical link (both channels), matching MarkLink.
type Transition struct {
	Cycle int64
	// Fail selects between failure (true) and repair (false).
	Fail bool
	// IsLink selects between a link transition (Link meaningful) and a node
	// transition (Node meaningful).
	IsLink bool
	Node   topology.NodeID
	Link   topology.ChannelID
}

func (tr Transition) String() string {
	op := "heal"
	if tr.Fail {
		op = "fail"
	}
	if tr.IsLink {
		return fmt.Sprintf("@%d %s link %v", tr.Cycle, op, tr.Link)
	}
	return fmt.Sprintf("@%d %s node %d", tr.Cycle, op, tr.Node)
}

// View is the engine's mutable handle over a run's fault Set. All readers
// (routing, the planner, traffic sources) keep their *Set pointer; the View
// mutates that same Set in place, strictly at the engine's serial
// transition point, so between transitions the Set behaves exactly like
// the static model it was.
type View struct {
	s *Set
}

// NewView wraps a live fault set for dynamic mutation.
func NewView(s *Set) *View { return &View{s: s} }

// Set returns the wrapped live fault set.
func (v *View) Set() *Set { return v.s }

// Apply performs one transition on the live set. It reports whether the
// state actually changed: failing an already-faulty element or healing a
// healthy one is a no-op (false), so replayed traces are idempotent and a
// generative schedule's heal of a since-re-failed element cannot corrupt
// state. Link transitions on nonexistent channels (mesh edges) are
// rejected as no-ops too — parsers validate against the topology, so this
// is pure defence.
func (v *View) Apply(tr Transition) bool {
	s := v.s
	if tr.IsLink {
		ch := tr.Link
		if !s.t.Valid(ch.Src) || !s.t.HasLink(ch.Src, ch.Port.Dim(), ch.Port.Dir()) {
			return false
		}
		if tr.Fail {
			if s.link[ch] {
				return false
			}
			s.MarkLink(ch.Src, ch.Port)
			return true
		}
		if !s.link[ch] {
			return false
		}
		s.healLink(ch.Src, ch.Port)
		return true
	}
	if !s.t.Valid(tr.Node) {
		return false
	}
	if tr.Fail {
		if s.node[tr.Node] {
			return false
		}
		s.MarkNode(tr.Node)
		return true
	}
	if !s.node[tr.Node] {
		return false
	}
	s.healNode(tr.Node)
	return true
}

// Equal reports whether two fault sets over the same topology agree on
// every node and channel fault. Used by the net-effect property tests.
func Equal(a, b *Set) bool {
	if a.t.Nodes() != b.t.Nodes() || a.t.Degree() != b.t.Degree() {
		return false
	}
	for id := 0; id < a.t.Nodes(); id++ {
		if a.node[id] != b.node[id] {
			return false
		}
	}
	if len(a.link) != len(b.link) {
		return false
	}
	//simlint:ignore maprange -- commutative conjunction over an unordered set; any order yields the same bool
	for ch := range a.link {
		if !b.link[ch] {
			return false
		}
	}
	return true
}
