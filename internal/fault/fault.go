// Package fault models component failures in k-ary n-cube networks as
// described in Section 3 of Safaei et al. (IPDPS 2006): static permanent
// faults, node and link failures, random fault placement, and coalesced
// fault regions of convex (block) and concave shapes.
//
// The paper's assumption (h) — faults never disconnect the network — is
// enforced by the random injectors in this package and checkable explicitly
// via Set.Disconnects.
package fault

import (
	"fmt"
	"sort"

	"repro/internal/rng"
	"repro/internal/topology"
)

// Set is a static fault configuration over one network: which nodes have
// failed, plus individually failed links. Per the paper, a node failure
// marks every physical link and virtual channel incident on the failed node
// faulty at the adjacent routers; Set implements that implication in
// LinkFaulty. On non-wrapping topologies (mesh), a channel that does not
// exist at all (edge port) also reports faulty: "unusable" is the single
// property routing needs, whether the cause is a failure or a missing wire.
//
// Sets are built once before a simulation starts and, in the paper's static
// fault model (MTTR >> simulation horizon), never change afterwards, so all
// query methods are safe for concurrent readers. Dynamic-fault runs mutate
// a Set through a View (see view.go), which the engine drives only at the
// serial transition point of a cycle — between cycles every reader still
// sees a frozen Set.
type Set struct {
	t     topology.Network
	node  []bool // indexed by NodeID
	nodes []topology.NodeID
	link  map[topology.ChannelID]bool
}

// NewSet returns an empty fault configuration for the given network.
func NewSet(t topology.Network) *Set {
	return &Set{
		t:    t,
		node: make([]bool, t.Nodes()),
		link: make(map[topology.ChannelID]bool),
	}
}

// Net returns the topology this fault set applies to.
func (s *Set) Net() topology.Network { return s.t }

// Clone returns an independent copy of the fault configuration. Schedules
// use clones to test candidate transitions (connectivity preservation)
// without touching the live set.
func (s *Set) Clone() *Set {
	c := &Set{
		t:     s.t,
		node:  make([]bool, len(s.node)),
		nodes: append([]topology.NodeID(nil), s.nodes...),
		link:  make(map[topology.ChannelID]bool, len(s.link)),
	}
	copy(c.node, s.node)
	//simlint:ignore maprange -- map-to-map set copy; the destination is itself unordered, so no order can leak
	for ch := range s.link {
		c.link[ch] = true
	}
	return c
}

// MarkNode marks one node (PE + router) failed. Marking twice is a no-op.
func (s *Set) MarkNode(id topology.NodeID) {
	if !s.t.Valid(id) {
		panic(fmt.Sprintf("fault: invalid node %d", id))
	}
	if !s.node[id] {
		s.node[id] = true
		s.nodes = append(s.nodes, id)
	}
}

// MarkNodes marks a batch of nodes failed.
func (s *Set) MarkNodes(ids []topology.NodeID) {
	for _, id := range ids {
		s.MarkNode(id)
	}
}

// MarkLink marks the physical link leaving src through port failed in both
// directions (the paired channel of the neighbouring router fails too). It
// panics when the network has no such link (mesh edge): callers with
// untrusted link lists validate against HasLink first (core's Validate).
func (s *Set) MarkLink(src topology.NodeID, port topology.Port) {
	if !s.t.Valid(src) || !s.t.HasLink(src, port.Dim(), port.Dir()) {
		panic(fmt.Sprintf("fault: no link %v on %s", topology.ChannelID{Src: src, Port: port}, s.t))
	}
	ch := topology.ChannelID{Src: src, Port: port}
	s.link[ch] = true
	dst := ch.Dst(s.t)
	s.link[topology.ChannelID{Src: dst, Port: port.Opposite()}] = true
}

// healNode clears a node failure. View-only: heals apply at the engine's
// serial transition point.
func (s *Set) healNode(id topology.NodeID) {
	if !s.node[id] {
		return
	}
	s.node[id] = false
	for i, n := range s.nodes {
		if n == id {
			s.nodes = append(s.nodes[:i], s.nodes[i+1:]...)
			break
		}
	}
}

// healLink clears an individual link failure in both directions. View-only.
func (s *Set) healLink(src topology.NodeID, port topology.Port) {
	ch := topology.ChannelID{Src: src, Port: port}
	if !s.link[ch] {
		return
	}
	delete(s.link, ch)
	dst := ch.Dst(s.t)
	delete(s.link, topology.ChannelID{Src: dst, Port: port.Opposite()})
}

// NodeFaulty reports whether node id has failed.
func (s *Set) NodeFaulty(id topology.NodeID) bool { return s.node[id] }

// LinkMarked reports whether the channel itself carries an individual link
// failure mark (endpoint node failures and missing mesh-edge wires do not
// count; LinkFaulty folds those in).
func (s *Set) LinkMarked(ch topology.ChannelID) bool { return s.link[ch] }

// LinkFaulty reports whether the unidirectional channel leaving src through
// port is unusable: the link does not exist (mesh edge), the link itself
// failed, or an endpoint node failed.
func (s *Set) LinkFaulty(src topology.NodeID, port topology.Port) bool {
	if s.node[src] {
		return true
	}
	if !s.t.HasLink(src, port.Dim(), port.Dir()) {
		return true
	}
	ch := topology.ChannelID{Src: src, Port: port}
	if s.link[ch] {
		return true
	}
	return s.node[ch.Dst(s.t)]
}

// NumNodeFaults returns the count of failed nodes.
func (s *Set) NumNodeFaults() int { return len(s.nodes) }

// FaultyNodes returns the failed nodes in ascending order.
func (s *Set) FaultyNodes() []topology.NodeID {
	out := make([]topology.NodeID, len(s.nodes))
	copy(out, s.nodes)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HealthyNodes returns all non-failed nodes in ascending order.
func (s *Set) HealthyNodes() []topology.NodeID {
	out := make([]topology.NodeID, 0, s.t.Nodes()-len(s.nodes))
	for id := 0; id < s.t.Nodes(); id++ {
		if !s.node[id] {
			out = append(out, topology.NodeID(id))
		}
	}
	return out
}

// Disconnects reports whether the healthy sub-network is disconnected: some
// pair of healthy nodes has no fault-free path. It runs a BFS from the first
// healthy node over non-faulty links.
func (s *Set) Disconnects() bool {
	start := topology.NodeID(-1)
	healthy := 0
	for id := 0; id < s.t.Nodes(); id++ {
		if !s.node[id] {
			healthy++
			if start < 0 {
				start = topology.NodeID(id)
			}
		}
	}
	if healthy == 0 {
		return true
	}
	seen := make([]bool, s.t.Nodes())
	queue := []topology.NodeID{start}
	seen[start] = true
	reached := 1
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for p := 0; p < s.t.Degree(); p++ {
			port := topology.Port(p)
			if s.LinkFaulty(cur, port) {
				continue
			}
			nb := s.t.Neighbor(cur, port.Dim(), port.Dir())
			if !seen[nb] {
				seen[nb] = true
				reached++
				queue = append(queue, nb)
			}
		}
	}
	return reached != healthy
}

// PlaneConnected reports whether the healthy nodes of the given 2-D plane
// form a connected subgraph using only in-plane links. SW-Based-2D rerouting
// operates within a plane, so plane connectivity is the natural sufficient
// condition for guaranteed in-plane delivery; the routing layer has an
// out-of-plane escape for the (rare) violation.
func (s *Set) PlaneConnected(pl topology.Plane) bool {
	nodes := pl.Nodes()
	healthy := make(map[topology.NodeID]bool)
	var start topology.NodeID = -1
	for _, id := range nodes {
		if !s.node[id] {
			healthy[id] = true
			if start < 0 {
				start = id
			}
		}
	}
	if start < 0 {
		return false
	}
	seen := map[topology.NodeID]bool{start: true}
	queue := []topology.NodeID{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, dimDir := range [][2]int{{pl.DimA, 1}, {pl.DimA, -1}, {pl.DimB, 1}, {pl.DimB, -1}} {
			port := topology.PortFor(dimDir[0], topology.Dir(dimDir[1]))
			if s.LinkFaulty(cur, port) {
				continue
			}
			nb := s.t.Neighbor(cur, dimDir[0], topology.Dir(dimDir[1]))
			if healthy[nb] && !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	return len(seen) == len(healthy)
}

// PathFaultFree reports whether every node and hop of path is healthy.
// The first node is exempt from the node check when exemptFirst is set (a
// message can depart from the node it currently occupies).
func (s *Set) PathFaultFree(path []topology.NodeID, exemptFirst bool) bool {
	for i, id := range path {
		if i == 0 && exemptFirst {
			continue
		}
		if s.node[id] {
			return false
		}
	}
	for i := 1; i < len(path); i++ {
		dim, dir, ok := hopDir(s.t, path[i-1], path[i])
		if !ok {
			return false
		}
		if i == 1 && exemptFirst {
			// The exemption covers the first node entirely, including its
			// role as the source endpoint of the first hop; only a
			// link-specific fault or the far endpoint can fail this hop.
			ch := topology.ChannelID{Src: path[0], Port: topology.PortFor(dim, dir)}
			if s.link[ch] || s.node[path[1]] {
				return false
			}
			continue
		}
		if s.LinkFaulty(path[i-1], topology.PortFor(dim, dir)) {
			return false
		}
	}
	return true
}

// hopDir identifies the (dimension, direction) of a single hop a -> b.
// Missing links (mesh edges) never match: Neighbor returns -1 there, and b
// is a valid node id.
func hopDir(t topology.Network, a, b topology.NodeID) (int, topology.Dir, bool) {
	for d := 0; d < t.N(); d++ {
		if t.Neighbor(a, d, topology.Plus) == b {
			return d, topology.Plus, true
		}
		if t.Neighbor(a, d, topology.Minus) == b {
			return d, topology.Minus, true
		}
	}
	return 0, 0, false
}

// RandomOptions tunes random fault placement.
type RandomOptions struct {
	// KeepConnected retries placements that disconnect the healthy network
	// (paper assumption (h)). Default true via DefaultRandomOptions.
	KeepConnected bool
	// Avoid lists nodes that must stay healthy (e.g. sources/sinks used by a
	// specific experiment).
	Avoid []topology.NodeID
	// MaxAttempts bounds the rejection-sampling loop; 0 means 1000.
	MaxAttempts int
}

// DefaultRandomOptions matches the paper's assumptions.
func DefaultRandomOptions() RandomOptions {
	return RandomOptions{KeepConnected: true}
}

// Random places nf random node faults ("Random faulty nodes are determined
// using a uniform random number generator", §5.2), rejecting configurations
// that disconnect the network when opts.KeepConnected is set. It returns the
// resulting fault set or an error if no admissible placement was found.
func Random(t topology.Network, nf int, r *rng.Stream, opts RandomOptions) (*Set, error) {
	if nf < 0 || nf >= t.Nodes() {
		return nil, fmt.Errorf("fault: cannot place %d faults in %d nodes", nf, t.Nodes())
	}
	avoid := make(map[topology.NodeID]bool, len(opts.Avoid))
	for _, id := range opts.Avoid {
		avoid[id] = true
	}
	maxAttempts := opts.MaxAttempts
	if maxAttempts == 0 {
		maxAttempts = 1000
	}
	for attempt := 0; attempt < maxAttempts; attempt++ {
		s := NewSet(t)
		perm := r.Perm(t.Nodes())
		placed := 0
		for _, v := range perm {
			if placed == nf {
				break
			}
			id := topology.NodeID(v)
			if avoid[id] {
				continue
			}
			s.MarkNode(id)
			placed++
		}
		if placed < nf {
			return nil, fmt.Errorf("fault: avoid-list leaves no room for %d faults", nf)
		}
		if !opts.KeepConnected || !s.Disconnects() {
			return s, nil
		}
	}
	return nil, fmt.Errorf("fault: no connected placement of %d faults found in %d attempts", nf, maxAttempts)
}
