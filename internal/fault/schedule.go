package fault

// Dynamic fault schedules: time-varying fail/heal transitions over a run's
// fault Set, selected by the same "name:key=val,..." spec grammar as the
// topology, routing and traffic registries. Two schedules are built in:
//
//	trace:file=<events>     replay a CSV/JSONL event file
//	mtbf:mtbf=<c>,mttr=<c>  generative MTBF/MTTR renewal process
//
// The engine calls Advance exactly once per cycle, serially, before any
// per-router computation (see internal/network's transition point), so a
// schedule's draws happen in the same order at every worker count — the
// bit-identity contract extends to dynamic runs. The paper itself models
// only static faults (MTTR >> simulation horizon); schedules relax exactly
// that assumption and are measured by the chaos metrics in
// internal/metrics.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/rng"
	"repro/internal/topology"
)

// Schedule produces the fault transitions of a dynamic run. Advance
// returns every transition due at or before cycle now, in application
// order; cur is the live fault state (already reflecting previously
// returned transitions), which generative schedules consult for victim
// selection. Advance must be called with non-decreasing now; the engine
// calls it once per cycle from exactly one goroutine.
type Schedule interface {
	Advance(now int64, cur *Set) []Transition
	Name() string
}

// ScheduleEnv is everything a schedule factory may bind: the topology, the
// run's base (static) fault set, and the dedicated schedule rng stream
// (rng.ScheduleLabel; nil for schedules that never draw).
type ScheduleEnv struct {
	T    topology.Network
	Base *Set
	R    *rng.Stream
}

// ScheduleSpec is a parsed schedule specifier, sharing the registry
// grammar "name[:key=val,...]".
type ScheduleSpec struct {
	Name   string
	Params []ScheduleParam
}

// ScheduleParam is one key=value pair of a ScheduleSpec, in written order.
type ScheduleParam struct {
	Key, Value string
}

// Get returns the value of key and whether it was present.
func (s ScheduleSpec) Get(key string) (string, bool) {
	for _, p := range s.Params {
		if p.Key == key {
			return p.Value, true
		}
	}
	return "", false
}

// String renders the spec back into its parseable form.
func (s ScheduleSpec) String() string {
	if len(s.Params) == 0 {
		return s.Name
	}
	parts := make([]string, len(s.Params))
	for i, p := range s.Params {
		parts[i] = p.Key + "=" + p.Value
	}
	return s.Name + ":" + strings.Join(parts, ",")
}

// validScheduleName reports whether s is a legal spec name or parameter
// key: non-empty, lower-case letters, digits, '-' or '_'.
func validScheduleName(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '-' && c != '_' {
			return false
		}
	}
	return true
}

// normalizeScheduleSpec accepts the two shorthand spellings used by the
// CLIs ("trace=events.csv", "mtbf=20000,mttr=2000") alongside the full
// registry grammar: a spec whose head segment already contains '=' infers
// its name from the first key, with "trace=<file>" mapping onto
// "trace:file=<file>".
func normalizeScheduleSpec(s string) string {
	s = strings.TrimSpace(s)
	head, _, _ := strings.Cut(s, ":")
	if !strings.Contains(head, "=") {
		return s
	}
	firstKey, _, _ := strings.Cut(s, "=")
	firstKey = strings.TrimSpace(firstKey)
	if firstKey == "trace" {
		return "trace:file" + strings.TrimPrefix(s, firstKey)
	}
	return firstKey + ":" + s
}

// ParseScheduleSpec parses a "name[:key=val,...]" schedule specifier,
// accepting the shorthand forms (see normalizeScheduleSpec).
func ParseScheduleSpec(s string) (ScheduleSpec, error) {
	s = normalizeScheduleSpec(s)
	name, rest, hasParams := strings.Cut(s, ":")
	if !validScheduleName(name) {
		return ScheduleSpec{}, fmt.Errorf("fault: bad schedule spec name %q in %q", name, s)
	}
	spec := ScheduleSpec{Name: name}
	if !hasParams {
		return spec, nil
	}
	if rest == "" {
		return ScheduleSpec{}, fmt.Errorf("fault: schedule spec %q has an empty parameter list", s)
	}
	seen := map[string]bool{}
	for _, kv := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(kv, "=")
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if !ok || !validScheduleName(key) || val == "" {
			return ScheduleSpec{}, fmt.Errorf("fault: bad parameter %q in schedule spec %q (want key=value)", kv, s)
		}
		if seen[key] {
			return ScheduleSpec{}, fmt.Errorf("fault: duplicate parameter %q in schedule spec %q", key, s)
		}
		seen[key] = true
		spec.Params = append(spec.Params, ScheduleParam{Key: key, Value: val})
	}
	return spec, nil
}

// scheduleArgs is the typed accessor over a spec's parameters used by
// schedule factories, mirroring the other registries: every accessor marks
// its key consumed and records the first error; finish reports it, or
// complains about unconsumed keys. The static check functions share the
// accessors so validation and construction cannot drift.
type scheduleArgs struct {
	spec ScheduleSpec
	used map[string]bool
	err  error
}

func newScheduleArgs(spec ScheduleSpec) *scheduleArgs {
	return &scheduleArgs{spec: spec, used: make(map[string]bool, len(spec.Params))}
}

func (a *scheduleArgs) fail(format string, v ...any) {
	if a.err == nil {
		a.err = fmt.Errorf("fault: schedule spec %q: %s", a.spec.String(), fmt.Sprintf(format, v...))
	}
}

// Str returns the value of key, or def when absent.
func (a *scheduleArgs) Str(key, def string) string {
	a.used[key] = true
	s, ok := a.spec.Get(key)
	if !ok {
		return def
	}
	return s
}

// Float returns the value of key as a float64, or def when absent.
func (a *scheduleArgs) Float(key string, def float64) float64 {
	a.used[key] = true
	s, ok := a.spec.Get(key)
	if !ok {
		return def
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		a.fail("parameter %s=%q is not a finite number", key, s)
		return def
	}
	return v
}

func (a *scheduleArgs) finish() error {
	if a.err != nil {
		return a.err
	}
	for _, p := range a.spec.Params {
		if !a.used[p.Key] {
			return fmt.Errorf("fault: schedule spec %q: unknown parameter %q", a.spec.String(), p.Key)
		}
	}
	return nil
}

// ScheduleInfo describes a registered schedule for listings.
type ScheduleInfo struct {
	Name        string
	Usage       string
	Description string
	Aliases     []string
}

// ScheduleFactory builds a configured schedule; ScheduleCheck statically
// validates a spec's parameters without side effects (no file IO), for
// config validation ahead of construction.
type (
	ScheduleFactory func(env ScheduleEnv, spec ScheduleSpec) (Schedule, error)
	ScheduleCheck   func(spec ScheduleSpec) error
)

type schedEntry struct {
	info    ScheduleInfo
	factory ScheduleFactory
	check   ScheduleCheck
}

var (
	schedMu      sync.RWMutex
	schedReg     = make(map[string]*schedEntry)
	schedPrimary []string
)

// RegisterSchedule adds a schedule to the registry under info.Name and
// every alias. It panics on duplicates or nil factories — registration
// happens in init functions where a panic is a build-time bug.
func RegisterSchedule(info ScheduleInfo, factory ScheduleFactory, check ScheduleCheck) {
	if info.Name == "" {
		panic("fault: RegisterSchedule with empty name")
	}
	if factory == nil {
		panic(fmt.Sprintf("fault: RegisterSchedule(%q) with nil factory", info.Name))
	}
	schedMu.Lock()
	defer schedMu.Unlock()
	e := &schedEntry{info: info, factory: factory, check: check}
	for _, key := range append([]string{info.Name}, info.Aliases...) {
		if _, dup := schedReg[key]; dup {
			panic(fmt.Sprintf("fault: duplicate registration of schedule %q", key))
		}
		schedReg[key] = e
	}
	schedPrimary = append(schedPrimary, info.Name)
}

// NewSchedule builds the registered schedule the spec names.
func NewSchedule(spec string, env ScheduleEnv) (Schedule, error) {
	parsed, e, err := lookupSchedule(spec)
	if err != nil {
		return nil, err
	}
	return e.factory(env, parsed)
}

// CheckScheduleSpec statically validates a schedule spec: parseable, a
// registered name, well-formed parameters. It performs no IO (a trace
// file's contents are validated at construction).
func CheckScheduleSpec(spec string) (ScheduleSpec, error) {
	parsed, e, err := lookupSchedule(spec)
	if err != nil {
		return ScheduleSpec{}, err
	}
	if e.check != nil {
		if err := e.check(parsed); err != nil {
			return ScheduleSpec{}, err
		}
	}
	return parsed, nil
}

func lookupSchedule(spec string) (ScheduleSpec, *schedEntry, error) {
	parsed, err := ParseScheduleSpec(spec)
	if err != nil {
		return ScheduleSpec{}, nil, err
	}
	schedMu.RLock()
	e, ok := schedReg[parsed.Name]
	schedMu.RUnlock()
	if !ok {
		return ScheduleSpec{}, nil, fmt.Errorf("fault: unknown schedule %q (registered: %v)", parsed.Name, ScheduleNames())
	}
	return parsed, e, nil
}

// ScheduleNames returns the primary registered schedule names, sorted.
func ScheduleNames() []string {
	schedMu.RLock()
	defer schedMu.RUnlock()
	out := append([]string(nil), schedPrimary...)
	sort.Strings(out)
	return out
}

// Schedules returns the ScheduleInfo of every registered schedule, sorted
// by primary name.
func Schedules() []ScheduleInfo {
	schedMu.RLock()
	out := make([]ScheduleInfo, 0, len(schedPrimary))
	for _, name := range schedPrimary {
		out = append(out, schedReg[name].info)
	}
	schedMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// traceSchedule replays a pre-validated, cycle-sorted transition list.
type traceSchedule struct {
	evs []Transition
	pos int
}

func (s *traceSchedule) Name() string { return "trace" }

func (s *traceSchedule) Advance(now int64, _ *Set) []Transition {
	start := s.pos
	for s.pos < len(s.evs) && s.evs[s.pos].Cycle <= now {
		s.pos++
	}
	if s.pos == start {
		return nil
	}
	return s.evs[start:s.pos]
}

// NewTraceSchedule wraps an explicit transition list (already sorted by
// cycle, as ParseScheduleTrace guarantees) as a Schedule. Exposed for
// tests and tools that build transition lists programmatically.
func NewTraceSchedule(evs []Transition) Schedule {
	return &traceSchedule{evs: evs}
}

// ParseScheduleTrace reads a fault-transition event file and validates it
// against the topology. Two line formats may be mixed freely:
//
//	CSV:    cycle,fail|heal,node,<id>
//	        cycle,fail|heal,link,<src>,<port>
//	JSONL:  {"cycle":N,"op":"fail","elem":"node","id":5}
//	        {"cycle":N,"op":"heal","elem":"link","src":3,"port":1}
//
// Blank lines and '#' comments are skipped. Cycles must be >= 0 and
// non-decreasing; node ids must be in range; link channels must exist on
// the topology. Violations are reported as errors with line numbers —
// never panics — so untrusted trace files fail closed.
func ParseScheduleTrace(r io.Reader, t topology.Network) ([]Transition, error) {
	var out []Transition
	sc := bufio.NewScanner(r)
	lastCycle := int64(-1)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var tr Transition
		var err error
		if strings.HasPrefix(line, "{") {
			tr, err = parseTraceJSON(line, t)
		} else {
			tr, err = parseTraceCSV(line, t)
		}
		if err != nil {
			return nil, fmt.Errorf("fault: schedule trace line %d: %w", lineNo, err)
		}
		if tr.Cycle < lastCycle {
			return nil, fmt.Errorf("fault: schedule trace line %d: cycle %d out of order (previous %d)", lineNo, tr.Cycle, lastCycle)
		}
		lastCycle = tr.Cycle
		out = append(out, tr)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fault: schedule trace: %w", err)
	}
	return out, nil
}

func parseTraceOp(op string) (fail bool, err error) {
	switch op {
	case "fail":
		return true, nil
	case "heal":
		return false, nil
	}
	return false, fmt.Errorf("bad op %q (want fail|heal)", op)
}

func traceNode(t topology.Network, id int64) (topology.NodeID, error) {
	if id < 0 || id >= int64(t.Nodes()) {
		return 0, fmt.Errorf("node id %d out of range [0,%d)", id, t.Nodes())
	}
	return topology.NodeID(id), nil
}

func traceLink(t topology.Network, src, port int64) (topology.ChannelID, error) {
	if src < 0 || src >= int64(t.Nodes()) {
		return topology.ChannelID{}, fmt.Errorf("link source %d out of range [0,%d)", src, t.Nodes())
	}
	if port < 0 || port >= int64(t.Degree()) {
		return topology.ChannelID{}, fmt.Errorf("link port %d out of range [0,%d)", port, t.Degree())
	}
	p := topology.Port(port)
	if !t.HasLink(topology.NodeID(src), p.Dim(), p.Dir()) {
		return topology.ChannelID{}, fmt.Errorf("link %v does not exist on %s",
			topology.ChannelID{Src: topology.NodeID(src), Port: p}, t)
	}
	return topology.ChannelID{Src: topology.NodeID(src), Port: p}, nil
}

func parseTraceCSV(line string, t topology.Network) (Transition, error) {
	fields := strings.Split(line, ",")
	for i := range fields {
		fields[i] = strings.TrimSpace(fields[i])
	}
	if len(fields) < 4 {
		return Transition{}, fmt.Errorf("torn record %q (want cycle,op,node,<id> or cycle,op,link,<src>,<port>)", line)
	}
	cycle, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil || cycle < 0 {
		return Transition{}, fmt.Errorf("bad cycle %q", fields[0])
	}
	fail, err := parseTraceOp(fields[1])
	if err != nil {
		return Transition{}, err
	}
	tr := Transition{Cycle: cycle, Fail: fail}
	switch fields[2] {
	case "node":
		if len(fields) != 4 {
			return Transition{}, fmt.Errorf("node record %q has %d fields (want 4)", line, len(fields))
		}
		id, err := strconv.ParseInt(fields[3], 10, 64)
		if err != nil {
			return Transition{}, fmt.Errorf("bad node id %q", fields[3])
		}
		tr.Node, err = traceNode(t, id)
		if err != nil {
			return Transition{}, err
		}
	case "link":
		if len(fields) != 5 {
			return Transition{}, fmt.Errorf("link record %q has %d fields (want 5)", line, len(fields))
		}
		src, err1 := strconv.ParseInt(fields[3], 10, 64)
		port, err2 := strconv.ParseInt(fields[4], 10, 64)
		if err1 != nil || err2 != nil {
			return Transition{}, fmt.Errorf("bad link endpoint in %q", line)
		}
		tr.IsLink = true
		tr.Link, err = traceLink(t, src, port)
		if err != nil {
			return Transition{}, err
		}
	default:
		return Transition{}, fmt.Errorf("bad element %q (want node|link)", fields[2])
	}
	return tr, nil
}

func parseTraceJSON(line string, t topology.Network) (Transition, error) {
	var rec struct {
		Cycle *int64 `json:"cycle"`
		Op    string `json:"op"`
		Elem  string `json:"elem"`
		ID    *int64 `json:"id"`
		Src   *int64 `json:"src"`
		Port  *int64 `json:"port"`
	}
	dec := json.NewDecoder(strings.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rec); err != nil {
		return Transition{}, fmt.Errorf("bad JSON record: %v", err)
	}
	if rec.Cycle == nil || *rec.Cycle < 0 {
		return Transition{}, fmt.Errorf("missing or negative cycle")
	}
	fail, err := parseTraceOp(rec.Op)
	if err != nil {
		return Transition{}, err
	}
	tr := Transition{Cycle: *rec.Cycle, Fail: fail}
	switch rec.Elem {
	case "node":
		if rec.ID == nil {
			return Transition{}, fmt.Errorf("node record missing id")
		}
		tr.Node, err = traceNode(t, *rec.ID)
		if err != nil {
			return Transition{}, err
		}
	case "link":
		if rec.Src == nil || rec.Port == nil {
			return Transition{}, fmt.Errorf("link record missing src/port")
		}
		tr.IsLink = true
		tr.Link, err = traceLink(t, *rec.Src, *rec.Port)
		if err != nil {
			return Transition{}, err
		}
	default:
		return Transition{}, fmt.Errorf("bad element %q (want node|link)", rec.Elem)
	}
	return tr, nil
}

// Victim-element selection modes of the mtbf schedule.
const (
	elemsLinks = "links"
	elemsNodes = "nodes"
	elemsMixed = "mixed"
)

// mtbfSchedule is a generative renewal process: failures arrive with
// exponential inter-arrival times of mean mtbf cycles; each failed element
// heals after an exponential repair time of mean mttr cycles. Victims are
// drawn uniformly from the currently healthy elements, rejecting picks
// that would disconnect the healthy sub-network (the dynamic analogue of
// paper assumption (h)); a failure with no admissible victim is skipped.
// All draws happen inside Advance — the engine's serial transition point —
// from the dedicated schedule stream, so the process is deterministic for
// a seed at any worker count.
type mtbfSchedule struct {
	t        topology.Network
	r        *rng.Stream
	mtbf     float64
	mttr     float64
	elems    string
	nextFail int64
	heals    []Transition // pending repairs, ascending cycle
	out      []Transition
}

func (s *mtbfSchedule) Name() string { return "mtbf" }

func (s *mtbfSchedule) gap(mean float64) int64 {
	g := int64(math.Ceil(s.r.Exp(mean)))
	if g < 1 {
		g = 1
	}
	return g
}

func (s *mtbfSchedule) Advance(now int64, cur *Set) []Transition {
	s.out = s.out[:0]
	for {
		healDue := len(s.heals) > 0 && s.heals[0].Cycle <= now
		failDue := s.nextFail <= now
		switch {
		// Repairs before failures at the same cycle: healing first can only
		// widen the victim pool the same-batch failure draws from.
		case healDue && (!failDue || s.heals[0].Cycle <= s.nextFail):
			s.out = append(s.out, s.heals[0])
			s.heals = s.heals[1:]
		case failDue:
			at := s.nextFail
			if tr, ok := s.pickVictim(at, cur); ok {
				s.out = append(s.out, tr)
				s.scheduleHeal(tr)
			}
			s.nextFail = at + s.gap(s.mtbf)
		default:
			return s.out
		}
	}
}

// pickVictim draws a healthy element whose failure keeps the healthy
// sub-network connected. Bounded rejection sampling: a pathological state
// (almost everything down) skips the failure rather than looping.
func (s *mtbfSchedule) pickVictim(at int64, cur *Set) (Transition, bool) {
	for attempt := 0; attempt < 64; attempt++ {
		link := s.elems == elemsLinks || (s.elems == elemsMixed && s.r.Bool())
		if link {
			src := topology.NodeID(s.r.Intn(s.t.Nodes()))
			port := topology.Port(s.r.Intn(s.t.Degree()))
			if cur.NodeFaulty(src) || !s.t.HasLink(src, port.Dim(), port.Dir()) {
				continue
			}
			ch := topology.ChannelID{Src: src, Port: port}
			if cur.LinkMarked(ch) || cur.NodeFaulty(ch.Dst(s.t)) {
				continue
			}
			probe := cur.Clone()
			probe.MarkLink(src, port)
			if probe.Disconnects() {
				continue
			}
			return Transition{Cycle: at, Fail: true, IsLink: true, Link: ch}, true
		}
		id := topology.NodeID(s.r.Intn(s.t.Nodes()))
		if cur.NodeFaulty(id) {
			continue
		}
		probe := cur.Clone()
		probe.MarkNode(id)
		if probe.Disconnects() {
			continue
		}
		return Transition{Cycle: at, Fail: true, Node: id}, true
	}
	return Transition{}, false
}

// scheduleHeal inserts the repair of a just-failed element into the
// pending-heal list at its due position (stable on ties).
func (s *mtbfSchedule) scheduleHeal(failed Transition) {
	heal := failed
	heal.Fail = false
	heal.Cycle = failed.Cycle + s.gap(s.mttr)
	i := sort.Search(len(s.heals), func(i int) bool { return s.heals[i].Cycle > heal.Cycle })
	s.heals = append(s.heals, Transition{})
	copy(s.heals[i+1:], s.heals[i:])
	s.heals[i] = heal
	return
}

func mtbfArgs(spec ScheduleSpec) (mtbf, mttr float64, elems string, err error) {
	a := newScheduleArgs(spec)
	mtbf = a.Float("mtbf", 0)
	mttr = a.Float("mttr", 0)
	elems = a.Str("elems", elemsLinks)
	if err := a.finish(); err != nil {
		return 0, 0, "", err
	}
	if mtbf <= 0 {
		return 0, 0, "", fmt.Errorf("fault: schedule spec %q: mtbf must be a positive cycle count", spec.String())
	}
	if mttr <= 0 {
		return 0, 0, "", fmt.Errorf("fault: schedule spec %q: mttr must be a positive cycle count", spec.String())
	}
	switch elems {
	case elemsLinks, elemsNodes, elemsMixed:
	default:
		return 0, 0, "", fmt.Errorf("fault: schedule spec %q: elems must be links|nodes|mixed, got %q", spec.String(), elems)
	}
	return mtbf, mttr, elems, nil
}

func init() {
	RegisterSchedule(ScheduleInfo{
		Name:        "trace",
		Usage:       "trace:file=<events> (or trace=<events>)",
		Description: "replay fail/heal events from a CSV/JSONL file (cycle,fail|heal,node,<id> / ...,link,<src>,<port>)",
	}, func(env ScheduleEnv, spec ScheduleSpec) (Schedule, error) {
		a := newScheduleArgs(spec)
		file := a.Str("file", "")
		if err := a.finish(); err != nil {
			return nil, err
		}
		if file == "" {
			return nil, fmt.Errorf("fault: schedule spec %q: missing file parameter", spec.String())
		}
		f, err := os.Open(file)
		if err != nil {
			return nil, fmt.Errorf("fault: schedule trace: %w", err)
		}
		defer f.Close()
		evs, err := ParseScheduleTrace(f, env.T)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", file, err)
		}
		return NewTraceSchedule(evs), nil
	}, func(spec ScheduleSpec) error {
		a := newScheduleArgs(spec)
		file := a.Str("file", "")
		if err := a.finish(); err != nil {
			return err
		}
		if file == "" {
			return fmt.Errorf("fault: schedule spec %q: missing file parameter", spec.String())
		}
		return nil
	})
	RegisterSchedule(ScheduleInfo{
		Name:        "mtbf",
		Usage:       "mtbf:mtbf=<cycles>,mttr=<cycles>[,elems=links|nodes|mixed]",
		Description: "generative renewal process: exponential failures (mean mtbf) healing after exponential repairs (mean mttr), connectivity-preserving",
	}, func(env ScheduleEnv, spec ScheduleSpec) (Schedule, error) {
		mtbf, mttr, elems, err := mtbfArgs(spec)
		if err != nil {
			return nil, err
		}
		if env.R == nil {
			return nil, fmt.Errorf("fault: mtbf schedule needs an rng stream (ScheduleEnv.R)")
		}
		s := &mtbfSchedule{t: env.T, r: env.R, mtbf: mtbf, mttr: mttr, elems: elems}
		s.nextFail = s.gap(mtbf)
		return s, nil
	}, func(spec ScheduleSpec) error {
		_, _, _, err := mtbfArgs(spec)
		return err
	})
}
