package fault

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/topology"
)

func TestMarkNodeIdempotent(t *testing.T) {
	tor := topology.New(8, 2)
	s := NewSet(tor)
	s.MarkNode(5)
	s.MarkNode(5)
	if s.NumNodeFaults() != 1 {
		t.Fatalf("double mark counted twice: %d", s.NumNodeFaults())
	}
	if !s.NodeFaulty(5) || s.NodeFaulty(6) {
		t.Fatal("NodeFaulty wrong")
	}
}

func TestNodeFaultImpliesLinkFaults(t *testing.T) {
	tor := topology.New(8, 2)
	s := NewSet(tor)
	id := tor.FromCoords([]int{3, 3})
	s.MarkNode(id)
	// Every channel into the failed node is faulty at the adjacent router.
	for p := 0; p < tor.Degree(); p++ {
		port := topology.Port(p)
		nb := tor.Neighbor(id, port.Dim(), port.Dir())
		if !s.LinkFaulty(nb, port.Opposite()) {
			t.Errorf("link from %v into failed node not faulty", tor.Coords(nb))
		}
		// And every channel out of the failed node is faulty too.
		if !s.LinkFaulty(id, port) {
			t.Errorf("link out of failed node via %v not faulty", port)
		}
	}
	// Unrelated link stays healthy.
	if s.LinkFaulty(tor.FromCoords([]int{0, 0}), topology.PortFor(0, topology.Plus)) {
		t.Error("unrelated link marked faulty")
	}
}

func TestMarkLinkBidirectional(t *testing.T) {
	tor := topology.New(8, 2)
	s := NewSet(tor)
	src := tor.FromCoords([]int{2, 2})
	port := topology.PortFor(0, topology.Plus)
	s.MarkLink(src, port)
	dst := tor.Neighbor(src, 0, topology.Plus)
	if !s.LinkFaulty(src, port) {
		t.Error("forward link not faulty")
	}
	if !s.LinkFaulty(dst, port.Opposite()) {
		t.Error("reverse link not faulty")
	}
	if s.NodeFaulty(src) || s.NodeFaulty(dst) {
		t.Error("link fault must not fail nodes")
	}
}

func TestDisconnects(t *testing.T) {
	tor := topology.New(4, 2)
	s := NewSet(tor)
	if s.Disconnects() {
		t.Fatal("empty fault set reported disconnected")
	}
	// Isolate node (0,0) by failing its four neighbours.
	for _, c := range [][]int{{1, 0}, {3, 0}, {0, 1}, {0, 3}} {
		s.MarkNode(tor.FromCoords(c))
	}
	if !s.Disconnects() {
		t.Fatal("isolated node not detected")
	}
}

func TestDisconnectsViaLinks(t *testing.T) {
	tor := topology.New(4, 1) // simple 4-ring
	s := NewSet(tor)
	// Cut both links of node 0: 0-1 and 3-0.
	s.MarkLink(0, topology.PortFor(0, topology.Plus))
	s.MarkLink(0, topology.PortFor(0, topology.Minus))
	if !s.Disconnects() {
		t.Fatal("ring cut in two places with node isolated not detected")
	}
}

func TestRandomPlacesExactCount(t *testing.T) {
	tor := topology.New(8, 2)
	r := rng.New(1)
	for _, nf := range []int{0, 1, 3, 5, 12} {
		s, err := Random(tor, nf, r, DefaultRandomOptions())
		if err != nil {
			t.Fatalf("nf=%d: %v", nf, err)
		}
		if s.NumNodeFaults() != nf {
			t.Fatalf("nf=%d: placed %d", nf, s.NumNodeFaults())
		}
		if s.Disconnects() {
			t.Fatalf("nf=%d: disconnected placement returned", nf)
		}
	}
}

func TestRandomHonoursAvoid(t *testing.T) {
	tor := topology.New(4, 2)
	r := rng.New(2)
	avoid := []topology.NodeID{0, 1, 2, 3}
	for trial := 0; trial < 20; trial++ {
		s, err := Random(tor, 5, r, RandomOptions{KeepConnected: true, Avoid: avoid})
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range avoid {
			if s.NodeFaulty(id) {
				t.Fatalf("avoided node %d failed", id)
			}
		}
	}
}

func TestRandomRejectsImpossible(t *testing.T) {
	tor := topology.New(2, 1)
	r := rng.New(3)
	if _, err := Random(tor, 2, r, DefaultRandomOptions()); err == nil {
		t.Fatal("expected error when nf >= node count")
	}
}

func TestRandomDeterministicGivenSeed(t *testing.T) {
	tor := topology.New(8, 3)
	a, err := Random(tor, 12, rng.New(77), DefaultRandomOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(tor, 12, rng.New(77), DefaultRandomOptions())
	if err != nil {
		t.Fatal(err)
	}
	an, bn := a.FaultyNodes(), b.FaultyNodes()
	for i := range an {
		if an[i] != bn[i] {
			t.Fatal("same seed produced different placements")
		}
	}
}

func TestHealthyNodesComplement(t *testing.T) {
	tor := topology.New(4, 2)
	s := NewSet(tor)
	s.MarkNodes([]topology.NodeID{1, 5, 9})
	h := s.HealthyNodes()
	if len(h)+s.NumNodeFaults() != tor.Nodes() {
		t.Fatalf("healthy+faulty != total")
	}
	for _, id := range h {
		if s.NodeFaulty(id) {
			t.Fatalf("healthy list contains faulty node %d", id)
		}
	}
}

func TestPathFaultFree(t *testing.T) {
	tor := topology.New(8, 2)
	s := NewSet(tor)
	mid := tor.FromCoords([]int{2, 0})
	s.MarkNode(mid)
	src := tor.FromCoords([]int{0, 0})
	dst := tor.FromCoords([]int{4, 0})
	path := tor.EcubePath(src, dst)
	if s.PathFaultFree(path, true) {
		t.Fatal("path through faulty node reported clean")
	}
	clean := tor.EcubePath(src, tor.FromCoords([]int{0, 4}))
	if !s.PathFaultFree(clean, true) {
		t.Fatal("clean path reported faulty")
	}
	// exemptFirst: a message may start at a node adjacent to faults; starting
	// AT a faulty node is tolerated only when exempted.
	p2 := []topology.NodeID{mid, tor.FromCoords([]int{3, 0})}
	if s.PathFaultFree(p2, false) {
		t.Fatal("path starting at faulty node with no exemption reported clean")
	}
	if !s.PathFaultFree(p2, true) {
		t.Fatal("exemptFirst not honoured")
	}
}

func TestPlaneConnected(t *testing.T) {
	tor := topology.New(8, 3)
	s := NewSet(tor)
	base := tor.FromCoords([]int{0, 0, 2})
	pl := tor.PlaneThrough(base, 0, 1)
	if !s.PlaneConnected(pl) {
		t.Fatal("fault-free plane reported disconnected")
	}
	// Ring of faults around (4,4) inside the plane isolates it.
	for _, c := range [][]int{{3, 4}, {5, 4}, {4, 3}, {4, 5}} {
		s.MarkNode(pl.Node(c[0], c[1]))
	}
	if s.PlaneConnected(pl) {
		t.Fatal("plane with isolated node reported connected")
	}
	// A different parallel plane is unaffected.
	other := tor.PlaneThrough(tor.FromCoords([]int{0, 0, 5}), 0, 1)
	if !s.PlaneConnected(other) {
		t.Fatal("unrelated plane affected")
	}
}

func TestPropertyRandomNeverDisconnects(t *testing.T) {
	tor := topology.New(8, 2)
	if err := quick.Check(func(seed uint64, nfRaw uint8) bool {
		nf := int(nfRaw) % 10
		s, err := Random(tor, nf, rng.New(seed), DefaultRandomOptions())
		if err != nil {
			return false
		}
		return !s.Disconnects() && s.NumNodeFaults() == nf
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
