package fault

import (
	"fmt"

	"repro/internal/topology"
)

// Shape identifies one of the coalesced fault-region silhouettes of Fig. 1
// and Fig. 5 of the paper. Shapes are stamped into a 2-D plane of the torus
// (dimension pair of the caller's choosing); the bar/box family is convex,
// the letter family concave.
type Shape int

const (
	// ShapeBar is a 1×L |-shaped bar (convex).
	ShapeBar Shape = iota
	// ShapeDoubleBar is two parallel bars separated by one healthy column
	// (||-shaped; each bar is its own convex region).
	ShapeDoubleBar
	// ShapeRect is a solid W×H block (□-shaped, convex).
	ShapeRect
	// ShapeL is an L: vertical arm plus horizontal arm (concave).
	ShapeL
	// ShapeU is a U: two vertical arms joined by a bottom bar (concave).
	ShapeU
	// ShapeT is a T: horizontal top bar with a centred vertical stem (concave).
	ShapeT
	// ShapePlus is a +: crossing horizontal and vertical bars (concave).
	ShapePlus
	// ShapeH is an H: two vertical bars joined by a middle rung (concave).
	ShapeH
)

var shapeNames = map[Shape]string{
	ShapeBar:       "bar",
	ShapeDoubleBar: "double-bar",
	ShapeRect:      "rect",
	ShapeL:         "L",
	ShapeU:         "U",
	ShapeT:         "T",
	ShapePlus:      "plus",
	ShapeH:         "H",
}

func (s Shape) String() string {
	if n, ok := shapeNames[s]; ok {
		return n
	}
	return fmt.Sprintf("shape(%d)", int(s))
}

// Concave reports whether the silhouette is concave (U/+/T/H/L) rather than
// convex (bar/double-bar/rect), per §3's classification.
func (s Shape) Concave() bool {
	switch s {
	case ShapeL, ShapeU, ShapeT, ShapePlus, ShapeH:
		return true
	}
	return false
}

// ShapeSpec describes a concrete stamping of a shape: silhouette, size
// parameters A and B (meaning depends on the shape, see StampShape), the
// plane to stamp into, and the anchor coordinates (the minimum corner of the
// silhouette's bounding box within the plane).
type ShapeSpec struct {
	Shape            Shape
	A, B             int
	AnchorA, AnchorB int
	// T is the bar thickness for ShapePlus (0 or 1 = the classic one-node-
	// wide cross). Thickness lets large-nf crosses fit small radixes: the
	// paper's Fig. 5 uses a 16-node plus inside an 8×8 plane, realised here
	// as a 2-thick 5×5 cross.
	T int
}

// cells enumerates a silhouette as (a, b) offsets from the anchor. Offsets
// stay small relative to k so the stamped region never self-wraps.
func (sp ShapeSpec) cells() ([][2]int, error) {
	a, b := sp.A, sp.B
	bad := func(cond bool, form string, args ...any) error {
		if cond {
			return fmt.Errorf("fault: invalid %v shape: "+form, append([]any{sp.Shape}, args...)...)
		}
		return nil
	}
	var out [][2]int
	add := func(x, y int) { out = append(out, [2]int{x, y}) }
	switch sp.Shape {
	case ShapeBar: // A = length (vertical bar of height A)
		if err := bad(a < 1, "length %d", a); err != nil {
			return nil, err
		}
		for i := 0; i < a; i++ {
			add(0, i)
		}
	case ShapeDoubleBar: // A = length of each bar, gap of one column
		if err := bad(a < 1, "length %d", a); err != nil {
			return nil, err
		}
		for i := 0; i < a; i++ {
			add(0, i)
			add(2, i)
		}
	case ShapeRect: // A×B solid block
		if err := bad(a < 1 || b < 1, "size %dx%d", a, b); err != nil {
			return nil, err
		}
		for x := 0; x < a; x++ {
			for y := 0; y < b; y++ {
				add(x, y)
			}
		}
	case ShapeL: // vertical arm height A, horizontal arm width B, sharing the corner
		if err := bad(a < 2 || b < 2, "arms %dx%d", a, b); err != nil {
			return nil, err
		}
		for y := 0; y < a; y++ {
			add(0, y)
		}
		for x := 1; x < b; x++ {
			add(x, 0)
		}
	case ShapeU: // two vertical arms height A, bottom bar width B (>= 2 columns apart)
		if err := bad(a < 2 || b < 3, "arms height %d, width %d", a, b); err != nil {
			return nil, err
		}
		for x := 0; x < b; x++ {
			add(x, 0)
		}
		for y := 1; y < a; y++ {
			add(0, y)
			add(b-1, y)
		}
	case ShapeT: // top bar width A (odd preferred), stem height B below the centre
		if err := bad(a < 3 || b < 1, "bar %d, stem %d", a, b); err != nil {
			return nil, err
		}
		for x := 0; x < a; x++ {
			add(x, b)
		}
		mid := a / 2
		for y := 0; y < b; y++ {
			add(mid, y)
		}
	case ShapePlus: // horizontal bar width A, vertical bar height B, thickness T, crossing at centres
		th := sp.T
		if th < 1 {
			th = 1
		}
		if err := bad(a < 3 || b < 3 || th > a-2 || th > b-2, "bars %dx%d thickness %d", a, b, th); err != nil {
			return nil, err
		}
		cy := (b - th) / 2
		cx := (a - th) / 2
		seen := make(map[[2]int]bool)
		dedupAdd := func(x, y int) {
			if !seen[[2]int{x, y}] {
				seen[[2]int{x, y}] = true
				add(x, y)
			}
		}
		for x := 0; x < a; x++ {
			for dy := 0; dy < th; dy++ {
				dedupAdd(x, cy+dy)
			}
		}
		for y := 0; y < b; y++ {
			for dx := 0; dx < th; dx++ {
				dedupAdd(cx+dx, y)
			}
		}
	case ShapeH: // two vertical bars height A, middle rung width B between them
		if err := bad(a < 3 || b < 3, "bars height %d, rung span %d", a, b); err != nil {
			return nil, err
		}
		for y := 0; y < a; y++ {
			add(0, y)
			add(b-1, y)
		}
		ry := a / 2
		for x := 1; x < b-1; x++ {
			add(x, ry)
		}
	default:
		return nil, fmt.Errorf("fault: unknown shape %v", sp.Shape)
	}
	return out, nil
}

// CellCount returns the number of faulty nodes the spec stamps (the paper's
// nf for region experiments), without touching a torus.
func (sp ShapeSpec) CellCount() (int, error) {
	cs, err := sp.cells()
	if err != nil {
		return 0, err
	}
	return len(cs), nil
}

// StampShape marks the silhouette into the fault set, within the plane
// spanned by (dimA, dimB) through base. The plane dimensions must be
// distinct and inside the network's dimensionality, and base a valid node.
// On wrapping topologies (torus) coordinates are taken mod k; on meshes,
// where relocating an overflowing cell across the missing wraparound edge
// would tear the region apart, the silhouette must fit inside [0, k) along
// both axes. It returns the stamped nodes, or an error for invalid
// parameters, a silhouette that self-overlaps after wrapping (shape larger
// than the ring), or one that does not fit the selected topology.
func StampShape(s *Set, base topology.NodeID, dimA, dimB int, sp ShapeSpec) ([]topology.NodeID, error) {
	cs, err := sp.cells()
	if err != nil {
		return nil, err
	}
	t := s.Net()
	if dimA < 0 || dimA >= t.N() || dimB < 0 || dimB >= t.N() {
		return nil, fmt.Errorf("fault: shape plane (%d,%d) out of range for %s", dimA, dimB, t)
	}
	if dimA == dimB {
		return nil, fmt.Errorf("fault: shape plane requires two distinct dimensions, got (%d,%d)", dimA, dimB)
	}
	if !t.Valid(base) {
		return nil, fmt.Errorf("fault: shape base node %d out of range [0,%d)", base, t.Nodes())
	}
	pl := topology.PlaneOf(t, base, dimA, dimB)
	seen := make(map[topology.NodeID]bool, len(cs))
	out := make([]topology.NodeID, 0, len(cs))
	for _, c := range cs {
		a, b := sp.AnchorA+c[0], sp.AnchorB+c[1]
		if !t.Wraps() && (a < 0 || a >= t.K() || b < 0 || b >= t.K()) {
			return nil, fmt.Errorf("fault: shape %v at (%d,%d) does not fit %s (cell (%d,%d) outside [0,%d))",
				sp.Shape, sp.AnchorA, sp.AnchorB, t, a, b, t.K())
		}
		id := pl.Node(a%t.K(), b%t.K())
		if seen[id] {
			return nil, fmt.Errorf("fault: shape %v at (%d,%d) self-overlaps after wraparound (k=%d)",
				sp.Shape, sp.AnchorA, sp.AnchorB, t.K())
		}
		seen[id] = true
		out = append(out, id)
	}
	s.MarkNodes(out)
	return out, nil
}

// PaperFig5Specs returns the five fault-region configurations evaluated in
// Fig. 5 of the paper with their exact faulty-node counts:
// rect-shaped nf=20, T-shaped nf=10, +-shaped nf=16, L-shaped nf=9,
// U-shaped nf=8.
func PaperFig5Specs() map[string]ShapeSpec {
	return map[string]ShapeSpec{
		"rect-shaped": {Shape: ShapeRect, A: 5, B: 4, AnchorA: 2, AnchorB: 2},       // 20
		"T-shaped":    {Shape: ShapeT, A: 7, B: 3, AnchorA: 1, AnchorB: 2},          // 7 + 3 = 10
		"Plus-shaped": {Shape: ShapePlus, A: 5, B: 5, T: 2, AnchorA: 1, AnchorB: 1}, // 5*2 + 5*2 - 4 = 16
		"L-shaped":    {Shape: ShapeL, A: 5, B: 5, AnchorA: 2, AnchorB: 2},          // 5 + 4 = 9
		"U-shaped":    {Shape: ShapeU, A: 3, B: 4, AnchorA: 2, AnchorB: 2},          // 4 + 2*2 = 8
	}
}
