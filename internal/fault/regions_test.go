package fault

import (
	"testing"

	"repro/internal/topology"
)

func TestRegionsCoalesceAdjacent(t *testing.T) {
	tor := topology.New(8, 2)
	s := NewSet(tor)
	// Two clusters: a 2x1 pair and a distant singleton.
	a1 := tor.FromCoords([]int{1, 1})
	a2 := tor.FromCoords([]int{2, 1})
	b := tor.FromCoords([]int{6, 6})
	s.MarkNodes([]topology.NodeID{a1, a2, b})
	regs := s.Regions()
	if len(regs) != 2 {
		t.Fatalf("regions = %d, want 2", len(regs))
	}
	if regs[0].Size()+regs[1].Size() != 3 {
		t.Fatalf("region sizes wrong")
	}
	// RegionOf builds fresh Region values per call, so compare membership,
	// not pointers.
	if !s.RegionOf(a1).Contains(a2) {
		t.Error("adjacent faults in different regions")
	}
	if s.RegionOf(a1).Contains(b) {
		t.Error("distant fault coalesced")
	}
	if s.RegionOf(tor.FromCoords([]int{0, 0})) != nil {
		t.Error("healthy node has a region")
	}
}

func TestRegionsCoalesceAcrossWrap(t *testing.T) {
	tor := topology.New(8, 2)
	s := NewSet(tor)
	// Nodes at x=7 and x=0 are adjacent through the wraparound edge.
	s.MarkNode(tor.FromCoords([]int{7, 4}))
	s.MarkNode(tor.FromCoords([]int{0, 4}))
	regs := s.Regions()
	if len(regs) != 1 {
		t.Fatalf("wraparound-adjacent faults not coalesced: %d regions", len(regs))
	}
	ext := regs[0].Extent(0)
	if !ext.Wraps {
		t.Fatalf("extent should wrap: %+v", ext)
	}
	if ext.Len(8) != 2 {
		t.Fatalf("extent len = %d, want 2", ext.Len(8))
	}
	if !ext.ContainsCoord(7) || !ext.ContainsCoord(0) || ext.ContainsCoord(3) {
		t.Fatalf("extent membership wrong: %+v", ext)
	}
}

func TestExtentNonWrapping(t *testing.T) {
	tor := topology.New(8, 2)
	s := NewSet(tor)
	for x := 2; x <= 5; x++ {
		s.MarkNode(tor.FromCoords([]int{x, 3}))
	}
	reg := s.Regions()[0]
	e0 := reg.Extent(0)
	if e0.Wraps || e0.Lo != 2 || e0.Hi != 5 || e0.Len(8) != 4 {
		t.Fatalf("extent dim0 = %+v", e0)
	}
	e1 := reg.Extent(1)
	if e1.Lo != 3 || e1.Hi != 3 || e1.Len(8) != 1 {
		t.Fatalf("extent dim1 = %+v", e1)
	}
}

func TestConvexClassification(t *testing.T) {
	tor := topology.New(8, 2)
	cases := []struct {
		spec   ShapeSpec
		convex bool
	}{
		{ShapeSpec{Shape: ShapeRect, A: 3, B: 2, AnchorA: 1, AnchorB: 1}, true},
		{ShapeSpec{Shape: ShapeBar, A: 4, AnchorA: 1, AnchorB: 1}, true},
		{ShapeSpec{Shape: ShapeL, A: 3, B: 3, AnchorA: 1, AnchorB: 1}, false},
		{ShapeSpec{Shape: ShapeU, A: 3, B: 4, AnchorA: 1, AnchorB: 1}, false},
		{ShapeSpec{Shape: ShapeT, A: 5, B: 2, AnchorA: 1, AnchorB: 1}, false},
		{ShapeSpec{Shape: ShapePlus, A: 5, B: 5, AnchorA: 1, AnchorB: 1}, false},
		{ShapeSpec{Shape: ShapeH, A: 5, B: 4, AnchorA: 1, AnchorB: 1}, false},
	}
	for _, tc := range cases {
		s := NewSet(tor)
		if _, err := StampShape(s, 0, 0, 1, tc.spec); err != nil {
			t.Fatalf("%v: %v", tc.spec.Shape, err)
		}
		regs := s.Regions()
		if len(regs) != 1 {
			t.Fatalf("%v: expected one region, got %d", tc.spec.Shape, len(regs))
		}
		if got := regs[0].Convex(); got != tc.convex {
			t.Errorf("%v: Convex() = %v, want %v", tc.spec.Shape, got, tc.convex)
		}
		if tc.spec.Shape.Concave() == tc.convex {
			t.Errorf("%v: Shape.Concave() inconsistent with geometry", tc.spec.Shape)
		}
	}
}

func TestDoubleBarIsTwoConvexRegions(t *testing.T) {
	tor := topology.New(8, 2)
	s := NewSet(tor)
	if _, err := StampShape(s, 0, 0, 1, ShapeSpec{Shape: ShapeDoubleBar, A: 3, AnchorA: 1, AnchorB: 1}); err != nil {
		t.Fatal(err)
	}
	regs := s.Regions()
	if len(regs) != 2 {
		t.Fatalf("double bar coalesced into %d regions, want 2", len(regs))
	}
	for _, r := range regs {
		if !r.Convex() {
			t.Error("bar region should be convex")
		}
	}
}

func TestIndexLookup(t *testing.T) {
	tor := topology.New(8, 2)
	s := NewSet(tor)
	nodes, err := StampShape(s, 0, 0, 1, ShapeSpec{Shape: ShapeU, A: 3, B: 4, AnchorA: 2, AnchorB: 2})
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex(s)
	if len(ix.Regions()) != 1 {
		t.Fatalf("index regions = %d", len(ix.Regions()))
	}
	for _, id := range nodes {
		if ix.Of(id) != ix.Regions()[0] {
			t.Fatalf("index lookup failed for %d", id)
		}
	}
	if ix.Of(tor.FromCoords([]int{7, 7})) != nil {
		t.Error("healthy node indexed")
	}
}

func TestPaperFig5SpecCounts(t *testing.T) {
	want := map[string]int{
		"rect-shaped": 20,
		"T-shaped":    10,
		"Plus-shaped": 16,
		"L-shaped":    9,
		"U-shaped":    8,
	}
	tor := topology.New(8, 2)
	for name, spec := range PaperFig5Specs() {
		n, err := spec.CellCount()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if n != want[name] {
			t.Errorf("%s: %d cells, paper says %d", name, n, want[name])
		}
		// Must stamp cleanly into the paper's 8-ary 2-cube and stay connected.
		s := NewSet(tor)
		if _, err := StampShape(s, 0, 0, 1, spec); err != nil {
			t.Errorf("%s: stamp failed: %v", name, err)
			continue
		}
		if s.NumNodeFaults() != n {
			t.Errorf("%s: stamped %d faults, want %d", name, s.NumNodeFaults(), n)
		}
		if s.Disconnects() {
			t.Errorf("%s: disconnects the 8-ary 2-cube", name)
		}
		convexWant := !spec.Shape.Concave()
		regs := s.Regions()
		if len(regs) != 1 {
			t.Errorf("%s: %d regions, want 1", name, len(regs))
			continue
		}
		if regs[0].Convex() != convexWant {
			t.Errorf("%s: convexity mismatch", name)
		}
	}
}

func TestShapeErrors(t *testing.T) {
	tor := topology.New(8, 2)
	s := NewSet(tor)
	bad := []ShapeSpec{
		{Shape: ShapeBar, A: 0},
		{Shape: ShapeRect, A: 0, B: 3},
		{Shape: ShapeL, A: 1, B: 3},
		{Shape: ShapeU, A: 2, B: 2},
		{Shape: ShapeT, A: 2, B: 1},
		{Shape: ShapePlus, A: 2, B: 5},
		{Shape: ShapeH, A: 2, B: 2},
		{Shape: Shape(99), A: 3, B: 3},
	}
	for _, sp := range bad {
		if _, err := StampShape(s, 0, 0, 1, sp); err == nil {
			t.Errorf("spec %+v did not error", sp)
		}
	}
	// Self-overlap after wraparound: bar longer than the ring.
	if _, err := StampShape(s, 0, 0, 1, ShapeSpec{Shape: ShapeBar, A: 9}); err == nil {
		t.Error("bar of 9 in k=8 ring did not error")
	}
}

func TestShapeStrings(t *testing.T) {
	for sh, want := range map[Shape]string{
		ShapeBar: "bar", ShapeRect: "rect", ShapeU: "U", ShapePlus: "plus",
	} {
		if sh.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(sh), sh.String(), want)
		}
	}
	if Shape(42).String() != "shape(42)" {
		t.Errorf("unknown shape string: %q", Shape(42).String())
	}
}
