package fault

import (
	"sort"

	"repro/internal/topology"
)

// Region is a coalesced set of adjacent faulty nodes ("Adjacent faulty nodes
// may be coalesced into fault regions", §3). The Software-Based messaging
// layer consults the region containing a blocking node to size its
// orthogonal detours.
type Region struct {
	t topology.Network
	// Nodes are the member faulty nodes, ascending.
	Nodes []topology.NodeID
	set   map[topology.NodeID]bool
}

// Regions coalesces the fault set's failed nodes into maximal connected
// regions (adjacency along any dimension). Regions are returned sorted by
// their smallest member for determinism.
func (s *Set) Regions() []*Region {
	visited := make(map[topology.NodeID]bool, len(s.nodes))
	var regions []*Region
	ordered := s.FaultyNodes()
	for _, seed := range ordered {
		if visited[seed] {
			continue
		}
		// BFS across faulty nodes only.
		reg := &Region{t: s.t, set: make(map[topology.NodeID]bool)}
		queue := []topology.NodeID{seed}
		visited[seed] = true
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			reg.Nodes = append(reg.Nodes, cur)
			reg.set[cur] = true
			for d := 0; d < s.t.N(); d++ {
				for _, dir := range []topology.Dir{topology.Plus, topology.Minus} {
					nb := s.t.Neighbor(cur, d, dir)
					if nb < 0 { // mesh edge: no link, no adjacency
						continue
					}
					if s.node[nb] && !visited[nb] {
						visited[nb] = true
						queue = append(queue, nb)
					}
				}
			}
		}
		sort.Slice(reg.Nodes, func(i, j int) bool { return reg.Nodes[i] < reg.Nodes[j] })
		regions = append(regions, reg)
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i].Nodes[0] < regions[j].Nodes[0] })
	return regions
}

// RegionOf returns the coalesced region containing node id, or nil if id is
// healthy. It is a convenience over Regions for one-off queries; hot paths
// should precompute a node -> region index (see Index).
func (s *Set) RegionOf(id topology.NodeID) *Region {
	if !s.node[id] {
		return nil
	}
	for _, r := range s.Regions() {
		if r.Contains(id) {
			return r
		}
	}
	return nil
}

// Contains reports whether id belongs to the region.
func (r *Region) Contains(id topology.NodeID) bool { return r.set[id] }

// Size returns the number of faulty nodes in the region.
func (r *Region) Size() int { return len(r.Nodes) }

// Interval is a covering arc [Lo, Hi] of ring coordinates, inclusive; Wraps
// marks an arc passing through the k-1 -> 0 edge (then Lo > Hi numerically).
type Interval struct {
	Lo, Hi int
	Wraps  bool
}

// Len returns the number of coordinates covered by the interval on a k-ring.
func (iv Interval) Len(k int) int {
	if !iv.Wraps {
		return iv.Hi - iv.Lo + 1
	}
	return (k - iv.Lo) + iv.Hi + 1
}

// ContainsCoord reports whether coordinate c lies in the interval.
func (iv Interval) ContainsCoord(c int) bool {
	if !iv.Wraps {
		return c >= iv.Lo && c <= iv.Hi
	}
	return c >= iv.Lo || c <= iv.Hi
}

// Extent returns the minimal ring interval covering the region's coordinates
// along dim. For regions narrower than the full ring this is unique; a
// region spanning every coordinate returns the full ring as a non-wrapping
// interval.
func (r *Region) Extent(dim int) Interval {
	k := r.t.K()
	present := make([]bool, k)
	count := 0
	for _, id := range r.Nodes {
		c := r.t.Coord(id, dim)
		if !present[c] {
			present[c] = true
			count++
		}
	}
	if count == k {
		return Interval{Lo: 0, Hi: k - 1}
	}
	// Find the longest run of absent coordinates; the complement is the
	// minimal covering arc.
	bestGapStart, bestGapLen := -1, -1
	for start := 0; start < k; start++ {
		if present[start] {
			continue
		}
		length := 0
		for length < k && !present[(start+length)%k] {
			length++
		}
		if length > bestGapLen {
			bestGapLen, bestGapStart = length, start
		}
	}
	lo := (bestGapStart + bestGapLen) % k
	hi := (bestGapStart - 1 + k) % k
	return Interval{Lo: lo, Hi: hi, Wraps: lo > hi}
}

// Convex reports whether the region is a block fault: its node set equals
// the full cartesian product of its per-dimension extents (□-, |-, ||-shaped
// single bars are convex; U, +, T, H, L are concave). This is the
// convex/concave distinction of §3 and Fig. 1.
func (r *Region) Convex() bool {
	boxSize := 1
	for d := 0; d < r.t.N(); d++ {
		boxSize *= r.Extent(d).Len(r.t.K())
	}
	return boxSize == len(r.Nodes)
}

// Index maps every faulty node to its coalesced region for O(1) lookup in
// the rerouting hot path.
type Index struct {
	regions []*Region
	byNode  map[topology.NodeID]*Region
}

// NewIndex precomputes the region index for a fault set.
func NewIndex(s *Set) *Index {
	idx := &Index{byNode: make(map[topology.NodeID]*Region)}
	idx.regions = s.Regions()
	for _, r := range idx.regions {
		for _, id := range r.Nodes {
			idx.byNode[id] = r
		}
	}
	return idx
}

// Regions returns all coalesced regions.
func (ix *Index) Regions() []*Region { return ix.regions }

// Of returns the region containing id, or nil for healthy nodes.
func (ix *Index) Of(id topology.NodeID) *Region { return ix.byNode[id] }
