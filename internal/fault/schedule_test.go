package fault

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/rng"
	"repro/internal/topology"
)

func TestParseScheduleSpecNormalization(t *testing.T) {
	for _, tc := range []struct {
		in   string
		name string
		want map[string]string
	}{
		{"trace:file=events.csv", "trace", map[string]string{"file": "events.csv"}},
		{"trace=events.csv", "trace", map[string]string{"file": "events.csv"}},
		{"mtbf:mtbf=20000,mttr=2000", "mtbf", map[string]string{"mtbf": "20000", "mttr": "2000"}},
		{"mtbf=20000,mttr=2000", "mtbf", map[string]string{"mtbf": "20000", "mttr": "2000"}},
	} {
		spec, err := ParseScheduleSpec(tc.in)
		if err != nil {
			t.Fatalf("ParseScheduleSpec(%q): %v", tc.in, err)
		}
		if spec.Name != tc.name {
			t.Fatalf("ParseScheduleSpec(%q).Name = %q, want %q", tc.in, spec.Name, tc.name)
		}
		for k, v := range tc.want {
			if got, ok := spec.Get(k); !ok || got != v {
				t.Fatalf("ParseScheduleSpec(%q): param %s = %q/%v, want %q", tc.in, k, got, ok, v)
			}
		}
	}
	for _, bad := range []string{"", "Trace:file=x", "mtbf:", "mtbf:mtbf", "mtbf:mtbf=1,mtbf=2", "mtbf:=3"} {
		if _, err := ParseScheduleSpec(bad); err == nil {
			t.Fatalf("ParseScheduleSpec(%q) accepted", bad)
		}
	}
}

func TestCheckScheduleSpec(t *testing.T) {
	for _, good := range []string{"trace:file=x.csv", "mtbf:mtbf=100,mttr=10", "mtbf:mtbf=100,mttr=10,elems=mixed"} {
		if _, err := CheckScheduleSpec(good); err != nil {
			t.Fatalf("CheckScheduleSpec(%q): %v", good, err)
		}
	}
	for _, bad := range []string{
		"bogus:x=1",                     // unregistered name
		"trace",                         // missing file
		"mtbf:mtbf=100",                 // missing mttr
		"mtbf:mtbf=0,mttr=10",           // non-positive mtbf
		"mtbf:mtbf=100,mttr=-1",         // non-positive mttr
		"mtbf:mtbf=100,mttr=10,elems=x", // bad victim class
		"mtbf:mtbf=100,mttr=10,bogus=1", // unconsumed key
		"trace:file=x.csv,unexpected=1", // unconsumed key
	} {
		if _, err := CheckScheduleSpec(bad); err == nil {
			t.Fatalf("CheckScheduleSpec(%q) accepted", bad)
		}
	}
	// The static check must not touch the filesystem: a trace spec naming a
	// nonexistent file passes CheckScheduleSpec (IO happens in NewSchedule).
	if _, err := CheckScheduleSpec("trace:file=/definitely/not/there.csv"); err != nil {
		t.Fatalf("CheckScheduleSpec must stay IO-free: %v", err)
	}
	if _, err := NewSchedule("trace:file=/definitely/not/there.csv", ScheduleEnv{T: topology.New(4, 2)}); err == nil {
		t.Fatal("NewSchedule accepted a nonexistent trace file")
	}
}

func TestParseScheduleTrace(t *testing.T) {
	tor := topology.New(4, 2)
	in := strings.Join([]string{
		"# mixed CSV and JSONL, comments and blanks skipped",
		"",
		"100,fail,node,5",
		"150,fail,link,3,1",
		`{"cycle":200,"op":"heal","elem":"node","id":5}`,
		`{"cycle":220,"op":"heal","elem":"link","src":3,"port":1}`,
	}, "\n")
	evs, err := ParseScheduleTrace(strings.NewReader(in), tor)
	if err != nil {
		t.Fatal(err)
	}
	want := []Transition{
		{Cycle: 100, Fail: true, Node: 5},
		{Cycle: 150, Fail: true, IsLink: true, Link: topology.ChannelID{Src: 3, Port: 1}},
		{Cycle: 200, Node: 5},
		{Cycle: 220, IsLink: true, Link: topology.ChannelID{Src: 3, Port: 1}},
	}
	if !reflect.DeepEqual(evs, want) {
		t.Fatalf("parsed %+v, want %+v", evs, want)
	}
	for _, bad := range []string{
		"100,fail,node",                                      // torn record
		"100,fail,node,99",                                   // node out of range
		"100,fail,link,3,9",                                  // port out of range
		"100,fail,link,3",                                    // torn link record
		"100,explode,node,5",                                 // bad op
		"-5,fail,node,1",                                     // negative cycle
		"200,fail,node,1\n100,fail,node,2",                   // out-of-order cycles
		`{"cycle":100,"op":"fail","elem":"node"}`,            // missing id
		`{"cycle":100,"op":"fail","elem":"node","id":1,`,     // torn JSON
		`{"op":"fail","elem":"node","id":1}`,                 // missing cycle
		`{"cycle":1,"op":"fail","elem":"node","id":1,"x":2}`, // unknown field
	} {
		if _, err := ParseScheduleTrace(strings.NewReader(bad), tor); err == nil {
			t.Fatalf("ParseScheduleTrace accepted %q", bad)
		}
	}
	// Mesh edge channels do not exist and must be rejected, not panic.
	msh := topology.NewMesh(4, 2)
	if _, err := ParseScheduleTrace(strings.NewReader("5,fail,link,3,0"), msh); err == nil {
		t.Fatal("ParseScheduleTrace accepted a nonexistent mesh edge link")
	}
}

// FuzzParseScheduleTrace hardens the trace parser against untrusted
// input: any byte soup must come back as an error or a well-formed,
// cycle-ordered transition list — never a panic.
func FuzzParseScheduleTrace(f *testing.F) {
	f.Add("100,fail,node,5\n200,heal,node,5")
	f.Add("1,fail,link,3,1")
	f.Add(`{"cycle":9,"op":"fail","elem":"link","src":3,"port":1}`)
	f.Add("# comment\n\n7,heal,node,0")
	f.Add("100,fail,node")
	f.Add("{")
	f.Add("☃,fail,node,1")
	f.Add("9223372036854775807,fail,node,1")
	tor := topology.New(4, 2)
	f.Fuzz(func(t *testing.T, in string) {
		evs, err := ParseScheduleTrace(strings.NewReader(in), tor)
		if err != nil {
			return
		}
		last := int64(-1)
		for _, tr := range evs {
			if tr.Cycle < last {
				t.Fatalf("accepted out-of-order cycles: %+v", evs)
			}
			last = tr.Cycle
			if !tr.IsLink && !tor.Valid(tr.Node) {
				t.Fatalf("accepted invalid node: %+v", tr)
			}
			if tr.IsLink && !tor.HasLink(tr.Link.Src, tr.Link.Port.Dim(), tr.Link.Port.Dir()) {
				t.Fatalf("accepted invalid link: %+v", tr)
			}
		}
	})
}

// canonChan maps a directed channel onto its physical link's canonical
// representative, so the net-effect model below tracks links the way
// MarkLink/healLink mutate them (both directions at once).
func canonChan(t topology.Network, ch topology.ChannelID) topology.ChannelID {
	rev := topology.ChannelID{Src: ch.Dst(t), Port: ch.Port.Opposite()}
	if rev.Src < ch.Src || (rev.Src == ch.Src && rev.Port < ch.Port) {
		return rev
	}
	return ch
}

// TestViewNetEffectProperty is the mutable view's correctness property:
// after any interleaving of fail/heal transitions (including redundant
// ones Apply rejects), the live set must equal a fresh Set built from
// the net effect alone. A drift here — a heal that forgets a direction,
// a fail that leaks state — would silently corrupt every dynamic run
// that re-fails a healed element.
func TestViewNetEffectProperty(t *testing.T) {
	tor := topology.New(4, 2)
	chans := topology.ChannelsOf(tor)
	r := rng.New(77)
	for trial := 0; trial < 50; trial++ {
		live := NewSet(tor)
		view := NewView(live)
		nodes := map[topology.NodeID]bool{}
		links := map[topology.ChannelID]bool{}
		for step := 0; step < 120; step++ {
			fail := r.Bool()
			if r.Bool() {
				n := topology.NodeID(r.Intn(tor.Nodes()))
				if view.Apply(Transition{Fail: fail, Node: n}) != (nodes[n] != fail) {
					t.Fatalf("trial %d step %d: node %d fail=%v: change report disagrees with model", trial, step, n, fail)
				}
				nodes[n] = fail
			} else {
				ch := chans[r.Intn(len(chans))]
				key := canonChan(tor, ch)
				if view.Apply(Transition{Fail: fail, IsLink: true, Link: ch}) != (links[key] != fail) {
					t.Fatalf("trial %d step %d: link %v fail=%v: change report disagrees with model", trial, step, ch, fail)
				}
				links[key] = fail
			}
		}
		fresh := NewSet(tor)
		for n, down := range nodes {
			if down {
				fresh.MarkNode(n)
			}
		}
		for ch, down := range links {
			if down {
				fresh.MarkLink(ch.Src, ch.Port)
			}
		}
		if !Equal(live, fresh) {
			t.Fatalf("trial %d: live set diverged from net-effect rebuild", trial)
		}
	}
}

// TestMTBFScheduleDeterministic pins the generative schedule's contract:
// identical seeds yield identical transition sequences, every emitted
// failure has a matching later heal scheduled, and no accepted failure
// ever disconnects the healthy sub-network.
func TestMTBFScheduleDeterministic(t *testing.T) {
	tor := topology.New(8, 2)
	run := func(seed uint64) []Transition {
		base := NewSet(tor)
		sched, err := NewSchedule("mtbf:mtbf=300,mttr=80,elems=mixed", ScheduleEnv{
			T: tor, Base: base, R: rng.New(seed).Split(rng.ScheduleLabel()),
		})
		if err != nil {
			t.Fatal(err)
		}
		view := NewView(base)
		var all []Transition
		for now := int64(0); now < 20000; now++ {
			for _, tr := range sched.Advance(now, base) {
				if tr.Cycle > now {
					t.Fatalf("transition %v emitted before its cycle (now %d)", tr, now)
				}
				if !view.Apply(tr) {
					continue
				}
				all = append(all, tr)
				if tr.Fail && base.Disconnects() {
					t.Fatalf("transition %v disconnected the network", tr)
				}
			}
		}
		return all
	}
	a, b := run(9), run(9)
	if len(a) == 0 {
		t.Fatal("mtbf schedule emitted no transitions in 20k cycles at mtbf=300")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different transition sequences")
	}
	fails, heals := 0, 0
	for _, tr := range a {
		if tr.Fail {
			fails++
		} else {
			heals++
		}
	}
	if fails == 0 || heals == 0 {
		t.Fatalf("expected both failures and repairs, got %d fails / %d heals", fails, heals)
	}
}
